// Package cli is the shared scaffolding of the repository's commands: a
// single-exit-point runner that installs a signal-aware context, maps
// errors to conventional exit codes, and routes diagnostics to stderr.
//
// Every command's main is a one-liner:
//
//	func main() { cli.Main("tool", run) }
//	func run(ctx context.Context) error { ... }
//
// The context is cancelled on the first SIGINT/SIGTERM, giving run a
// chance to stop simulations between events and flush partial outputs; a
// second signal kills the process the usual way (the handler is removed
// once the context fires). Exit codes follow shell conventions:
//
//	0   success
//	1   error (printed to stderr as "tool: error")
//	2   usage error (run returned ErrUsage, after printing usage itself)
//	130 cancelled by signal (128 + SIGINT)
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// Exit codes returned by Run.
const (
	ExitOK        = 0
	ExitError     = 1
	ExitUsage     = 2
	ExitCancelled = 130
)

// ErrUsage marks a command-line usage error: Run exits with ExitUsage and
// prints nothing (the command prints its own usage first). Wrap it with
// Usagef to also emit a one-line diagnostic.
var ErrUsage = errors.New("usage")

// Usagef builds a usage error carrying a printable message.
func Usagef(format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

type usageError struct{ msg string }

func (e *usageError) Error() string        { return e.msg }
func (e *usageError) Is(target error) bool { return target == ErrUsage }

// Main executes run under a signal-aware context and exits the process
// with the resulting code. It is the only exit point a command needs.
func Main(tool string, run func(ctx context.Context) error) {
	os.Exit(Run(tool, run))
}

// Run is Main without the os.Exit, for tests: it executes run with a
// context cancelled on SIGINT/SIGTERM and maps the returned error to an
// exit code, printing diagnostics to stderr.
func Run(tool string, run func(ctx context.Context) error) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx)
	stop() // restore default signal handling before exiting
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, ErrUsage):
		if err != ErrUsage {
			fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		}
		return ExitUsage
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintf(os.Stderr, "%s: cancelled\n", tool)
		return ExitCancelled
	default:
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		return ExitError
	}
}
