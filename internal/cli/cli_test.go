package cli

import (
	"context"
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"
)

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"ok", nil, ExitOK},
		{"error", errors.New("boom"), ExitError},
		{"wrapped error", fmt.Errorf("ctx: %w", errors.New("boom")), ExitError},
		{"usage", ErrUsage, ExitUsage},
		{"usagef", Usagef("bad flag %q", "-x"), ExitUsage},
		{"cancelled", context.Canceled, ExitCancelled},
		{"wrapped cancelled", fmt.Errorf("sweep: %w", context.Canceled), ExitCancelled},
		{"deadline", context.DeadlineExceeded, ExitCancelled},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Run("test", func(ctx context.Context) error { return tc.err })
			if got != tc.want {
				t.Errorf("Run(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}

func TestUsagefMatchesErrUsage(t *testing.T) {
	err := Usagef("need a -platform")
	if !errors.Is(err, ErrUsage) {
		t.Fatalf("Usagef error does not match ErrUsage")
	}
	if err.Error() != "need a -platform" {
		t.Errorf("message = %q", err.Error())
	}
}

// TestRunSignalCancelsContext delivers a real SIGTERM to the process and
// checks the run context observes it and the exit code is 130.
func TestRunSignalCancelsContext(t *testing.T) {
	got := Run("test", func(ctx context.Context) error {
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			return fmt.Errorf("self-signal: %v", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return errors.New("context never cancelled after SIGTERM")
		}
	})
	if got != ExitCancelled {
		t.Errorf("exit code = %d, want %d", got, ExitCancelled)
	}
}
