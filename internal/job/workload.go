package job

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/unit"
)

// Workload is an ordered collection of jobs.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Jobs is sorted by submit time (ties by ID).
	Jobs []*Job
}

// Validate checks every job against the machine size and verifies that the
// dependency graph is well-formed (references exist, no self-dependency,
// acyclic).
func (w *Workload) Validate(totalNodes int) error {
	for _, j := range w.Jobs {
		if err := j.Validate(totalNodes); err != nil {
			return err
		}
	}
	return w.validateDependencies()
}

func (w *Workload) validateDependencies() error {
	byID := make(map[ID]*Job, len(w.Jobs))
	for _, j := range w.Jobs {
		byID[j.ID] = j
	}
	for _, j := range w.Jobs {
		for _, dep := range j.Dependencies {
			if dep == j.ID {
				return fmt.Errorf("job %s depends on itself", j.Label())
			}
			if _, ok := byID[dep]; !ok {
				return fmt.Errorf("job %s depends on unknown job %d", j.Label(), dep)
			}
		}
	}
	// Cycle detection: iterative DFS with colors.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[ID]int, len(w.Jobs))
	var visit func(id ID) error
	visit = func(id ID) error {
		switch color[id] {
		case gray:
			return fmt.Errorf("dependency cycle involving job %d", id)
		case black:
			return nil
		}
		color[id] = gray
		for _, dep := range byID[id].Dependencies {
			if err := visit(dep); err != nil {
				return err
			}
		}
		color[id] = black
		return nil
	}
	for _, j := range w.Jobs {
		if err := visit(j.ID); err != nil {
			return err
		}
	}
	return nil
}

// Sort orders jobs by (submit time, ID) and reassigns dense IDs in that
// order, remapping dependency references accordingly. Call after
// assembling a workload by hand; IDs must be unique beforehand when
// dependencies are used.
func (w *Workload) Sort() {
	sort.SliceStable(w.Jobs, func(i, j int) bool {
		if w.Jobs[i].SubmitTime != w.Jobs[j].SubmitTime {
			return w.Jobs[i].SubmitTime < w.Jobs[j].SubmitTime
		}
		return w.Jobs[i].ID < w.Jobs[j].ID
	})
	remap := make(map[ID]ID, len(w.Jobs))
	for i, j := range w.Jobs {
		remap[j.ID] = ID(i)
	}
	for _, j := range w.Jobs {
		for k, dep := range j.Dependencies {
			if newID, ok := remap[dep]; ok {
				j.Dependencies[k] = newID
			}
		}
	}
	for i, j := range w.Jobs {
		j.ID = ID(i)
	}
}

// CountByType tallies the jobs per flexibility class.
func (w *Workload) CountByType() map[Type]int {
	out := map[Type]int{}
	for _, j := range w.Jobs {
		out[j.Type]++
	}
	return out
}

// --- JSON form -----------------------------------------------------------

// taskJSON is the serialized form of a Task. The cost field name depends on
// the kind (flops/bytes/seconds/nodes), which keeps workload files readable.
type taskJSON struct {
	Type    TaskKind    `json:"type"`
	Name    string      `json:"name,omitempty"`
	Flops   *Model      `json:"flops,omitempty"`
	Bytes   *Model      `json:"bytes,omitempty"`
	Seconds *Model      `json:"seconds,omitempty"`
	Nodes   *Model      `json:"nodes,omitempty"`
	Pattern CommPattern `json:"pattern,omitempty"`
	Target  IOTarget    `json:"target,omitempty"`
}

type phaseJSON struct {
	Name            string     `json:"name,omitempty"`
	Iterations      int        `json:"iterations,omitempty"`
	SchedulingPoint bool       `json:"scheduling_point,omitempty"`
	Tasks           []taskJSON `json:"tasks"`
}

type jobJSON struct {
	Name         string                   `json:"name,omitempty"`
	Type         Type                     `json:"type"`
	SubmitTime   unit.Quantity            `json:"submit_time"`
	NumNodes     int                      `json:"num_nodes,omitempty"`
	NumNodesMin  int                      `json:"num_nodes_min,omitempty"`
	NumNodesMax  int                      `json:"num_nodes_max,omitempty"`
	WallTime     unit.Quantity            `json:"walltime,omitempty"`
	User         string                   `json:"user,omitempty"`
	Args         map[string]unit.Quantity `json:"args,omitempty"`
	ReconfigCost *Model                   `json:"reconfig_cost,omitempty"`
	// CheckpointInterval bounds node-failure badput (see Job).
	CheckpointInterval *Model `json:"checkpoint_interval,omitempty"`
	// Dependencies reference other jobs by name ("afterany" semantics).
	Dependencies []string    `json:"dependencies,omitempty"`
	Phases       []phaseJSON `json:"phases"`
}

type workloadJSON struct {
	Name string    `json:"name,omitempty"`
	Jobs []jobJSON `json:"jobs"`
}

func (t *taskJSON) model() (*Model, error) {
	var set []*Model
	for _, m := range []*Model{t.Flops, t.Bytes, t.Seconds, t.Nodes} {
		if m != nil {
			set = append(set, m)
		}
	}
	if len(set) != 1 {
		return nil, fmt.Errorf("job: task %q must have exactly one of flops/bytes/seconds/nodes", t.Type)
	}
	// Check the field name matches the kind.
	want := map[TaskKind]*Model{
		TaskCompute:         t.Flops,
		TaskComm:            t.Bytes,
		TaskRead:            t.Bytes,
		TaskWrite:           t.Bytes,
		TaskDelay:           t.Seconds,
		TaskEvolvingRequest: t.Nodes,
	}[t.Type]
	if want == nil {
		return nil, fmt.Errorf("job: task kind %q given the wrong cost field", t.Type)
	}
	return want, nil
}

// ParseWorkload decodes and validates a JSON workload for a machine of
// totalNodes nodes.
func ParseWorkload(data []byte, totalNodes int) (*Workload, error) {
	var wj workloadJSON
	if err := json.Unmarshal(data, &wj); err != nil {
		return nil, fmt.Errorf("job: decoding workload: %w", err)
	}
	w := &Workload{Name: wj.Name}
	for i := range wj.Jobs {
		jj := &wj.Jobs[i]
		j := &Job{
			ID:                 ID(i),
			Name:               jj.Name,
			Type:               jj.Type,
			SubmitTime:         float64(jj.SubmitTime),
			NumNodes:           jj.NumNodes,
			NumNodesMin:        jj.NumNodesMin,
			NumNodesMax:        jj.NumNodesMax,
			WallTimeLimit:      float64(jj.WallTime),
			User:               jj.User,
			ReconfigCost:       jj.ReconfigCost,
			CheckpointInterval: jj.CheckpointInterval,
			App:                &Application{},
		}
		if len(jj.Args) > 0 {
			j.Args = make(map[string]float64, len(jj.Args))
			for k, v := range jj.Args {
				j.Args[k] = float64(v)
			}
		}
		for pi := range jj.Phases {
			pj := &jj.Phases[pi]
			phase := Phase{
				Name:            pj.Name,
				Iterations:      pj.Iterations,
				SchedulingPoint: pj.SchedulingPoint,
			}
			for ti := range pj.Tasks {
				tj := &pj.Tasks[ti]
				model, err := tj.model()
				if err != nil {
					return nil, fmt.Errorf("job %s phase %d task %d: %w", j.Label(), pi, ti, err)
				}
				phase.Tasks = append(phase.Tasks, Task{
					Kind:    tj.Type,
					Name:    tj.Name,
					Model:   model,
					Pattern: tj.Pattern,
					Target:  tj.Target,
				})
			}
			j.App.Phases = append(j.App.Phases, phase)
		}
		w.Jobs = append(w.Jobs, j)
	}
	// Resolve name-based dependencies before sorting (IDs still match the
	// file order here).
	byName := map[string]ID{}
	for _, j := range w.Jobs {
		label := j.Label()
		if _, dup := byName[label]; dup {
			byName[label] = -1 // ambiguous
		} else {
			byName[label] = j.ID
		}
	}
	for i := range wj.Jobs {
		for _, depName := range wj.Jobs[i].Dependencies {
			id, ok := byName[depName]
			if !ok {
				return nil, fmt.Errorf("job %s depends on unknown job %q", w.Jobs[i].Label(), depName)
			}
			if id < 0 {
				return nil, fmt.Errorf("job %s dependency %q is ambiguous (duplicate name)", w.Jobs[i].Label(), depName)
			}
			w.Jobs[i].Dependencies = append(w.Jobs[i].Dependencies, id)
		}
	}
	w.Sort()
	if err := w.Validate(totalNodes); err != nil {
		return nil, err
	}
	return w, nil
}

// jobToJSON converts one job into its serialized form. depLabel resolves
// dependency IDs to job labels; it may be nil when the job has no
// dependencies.
func jobToJSON(j *Job, depLabel func(ID) string) jobJSON {
	jj := jobJSON{
		Name:               j.Name,
		Type:               j.Type,
		SubmitTime:         unit.Quantity(j.SubmitTime),
		NumNodes:           j.NumNodes,
		NumNodesMin:        j.NumNodesMin,
		NumNodesMax:        j.NumNodesMax,
		WallTime:           unit.Quantity(j.WallTimeLimit),
		User:               j.User,
		ReconfigCost:       j.ReconfigCost,
		CheckpointInterval: j.CheckpointInterval,
	}
	for _, dep := range j.Dependencies {
		jj.Dependencies = append(jj.Dependencies, depLabel(dep))
	}
	if len(j.Args) > 0 {
		jj.Args = make(map[string]unit.Quantity, len(j.Args))
		for k, v := range j.Args {
			jj.Args[k] = unit.Quantity(v)
		}
	}
	for _, p := range j.App.Phases {
		pj := phaseJSON{
			Name:            p.Name,
			Iterations:      p.Iterations,
			SchedulingPoint: p.SchedulingPoint,
		}
		for _, t := range p.Tasks {
			tj := taskJSON{Type: t.Kind, Name: t.Name, Pattern: t.Pattern, Target: t.Target}
			switch t.Kind {
			case TaskCompute:
				tj.Flops = t.Model
			case TaskComm, TaskRead, TaskWrite:
				tj.Bytes = t.Model
			case TaskDelay:
				tj.Seconds = t.Model
			case TaskEvolvingRequest:
				tj.Nodes = t.Model
			}
			pj.Tasks = append(pj.Tasks, tj)
		}
		jj.Phases = append(jj.Phases, pj)
	}
	return jj
}

// MarshalJSON serializes the workload into its canonical JSON form.
func (w *Workload) MarshalJSON() ([]byte, error) {
	wj := workloadJSON{Name: w.Name}
	for _, j := range w.Jobs {
		wj.Jobs = append(wj.Jobs, jobToJSON(j, func(dep ID) string {
			return w.Jobs[dep].Label()
		}))
	}
	return json.MarshalIndent(&wj, "", "  ")
}

// WorkloadWriter emits the canonical workload JSON one job at a time, so
// a million-job workload serializes in constant memory. For dependency-free
// workloads the output is byte-identical to Workload.MarshalJSON
// (dependencies need the whole job list to resolve labels, so streamed
// jobs must not have any).
type WorkloadWriter struct {
	dst     io.Writer
	name    string
	n       int
	started bool
}

// NewWorkloadWriter starts writing a workload named name to dst.
func NewWorkloadWriter(dst io.Writer, name string) *WorkloadWriter {
	return &WorkloadWriter{dst: dst, name: name}
}

func (ww *WorkloadWriter) begin() error {
	if ww.started {
		return nil
	}
	ww.started = true
	if ww.name != "" {
		label, err := json.Marshal(ww.name)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(ww.dst, "{\n  \"name\": %s,\n  \"jobs\": [", label)
		return err
	}
	_, err := io.WriteString(ww.dst, "{\n  \"jobs\": [")
	return err
}

// WriteJob appends one job to the stream.
func (ww *WorkloadWriter) WriteJob(j *Job) error {
	if len(j.Dependencies) > 0 {
		return fmt.Errorf("job: streamed job %s has dependencies; use Workload.MarshalJSON", j.Label())
	}
	if err := ww.begin(); err != nil {
		return err
	}
	jj := jobToJSON(j, nil)
	data, err := json.MarshalIndent(&jj, "    ", "  ")
	if err != nil {
		return err
	}
	sep := ",\n    "
	if ww.n == 0 {
		sep = "\n    "
	}
	ww.n++
	if _, err := io.WriteString(ww.dst, sep); err != nil {
		return err
	}
	_, err = ww.dst.Write(data)
	return err
}

// Close terminates the JSON document. It does not close the underlying
// writer.
func (ww *WorkloadWriter) Close() error {
	if err := ww.begin(); err != nil {
		return err
	}
	trailer := "\n  ]\n}"
	if ww.n == 0 {
		trailer = "]\n}"
	}
	_, err := io.WriteString(ww.dst, trailer)
	return err
}
