package job

import (
	"fmt"
	"io"
	"sort"
)

// Stats summarizes a workload's composition; it backs the workinfo tool
// and sanity checks in experiments.
type Stats struct {
	// Jobs is the total count.
	Jobs int
	// ByType tallies flexibility classes.
	ByType map[Type]int
	// ByUser tallies accounts ("" = unattributed).
	ByUser map[string]int
	// Span is the submission window (last - first submit time).
	Span float64
	// ArrivalRate is Jobs/Span (0 for a single instant).
	ArrivalRate float64
	// NodesHistogram counts jobs per base allocation size.
	NodesHistogram map[int]int
	// MinNodes/MaxNodes/MeanNodes describe base allocations.
	MinNodes  int
	MaxNodes  int
	MeanNodes float64
	// WithWalltime counts jobs carrying runtime estimates.
	WithWalltime int
	// WithDependencies counts jobs gated on other jobs.
	WithDependencies int
	// SchedulingPoints sums the reconfiguration opportunities the
	// applications expose.
	SchedulingPoints int
	// EvolvingRequests counts jobs that issue evolving requests.
	EvolvingRequests int
}

// baseNodes is the job's starting allocation preference.
func baseNodes(j *Job) int {
	if j.NumNodes > 0 {
		return j.NumNodes
	}
	return j.MinNodes()
}

// Stats computes summary statistics.
func (w *Workload) Stats() Stats {
	s := Stats{
		Jobs:           len(w.Jobs),
		ByType:         map[Type]int{},
		ByUser:         map[string]int{},
		NodesHistogram: map[int]int{},
	}
	if len(w.Jobs) == 0 {
		return s
	}
	first, last := w.Jobs[0].SubmitTime, w.Jobs[0].SubmitTime
	totalNodes := 0
	s.MinNodes = baseNodes(w.Jobs[0])
	for _, j := range w.Jobs {
		s.ByType[j.Type]++
		s.ByUser[j.User]++
		n := baseNodes(j)
		s.NodesHistogram[n]++
		totalNodes += n
		if n < s.MinNodes {
			s.MinNodes = n
		}
		if n > s.MaxNodes {
			s.MaxNodes = n
		}
		if j.SubmitTime < first {
			first = j.SubmitTime
		}
		if j.SubmitTime > last {
			last = j.SubmitTime
		}
		if j.WallTimeLimit > 0 {
			s.WithWalltime++
		}
		if len(j.Dependencies) > 0 {
			s.WithDependencies++
		}
		s.SchedulingPoints += j.App.TotalSchedulingPoints()
		if j.App.HasEvolvingRequests() {
			s.EvolvingRequests++
		}
	}
	s.Span = last - first
	if s.Span > 0 {
		s.ArrivalRate = float64(len(w.Jobs)) / s.Span
	}
	s.MeanNodes = float64(totalNodes) / float64(len(w.Jobs))
	return s
}

// Fprint renders the stats as a human-readable report.
func (s *Stats) Fprint(w io.Writer, name string) {
	fmt.Fprintf(w, "workload      %s\n", name)
	fmt.Fprintf(w, "jobs          %d\n", s.Jobs)
	fmt.Fprintf(w, "span          %.1f s (%.4f jobs/s)\n", s.Span, s.ArrivalRate)
	fmt.Fprintf(w, "nodes         min %d  mean %.1f  max %d\n", s.MinNodes, s.MeanNodes, s.MaxNodes)
	fmt.Fprintf(w, "walltimes     %d/%d jobs\n", s.WithWalltime, s.Jobs)
	fmt.Fprintf(w, "dependencies  %d jobs gated\n", s.WithDependencies)
	fmt.Fprintf(w, "sched points  %d total\n", s.SchedulingPoints)
	fmt.Fprintf(w, "evolving      %d jobs issue requests\n", s.EvolvingRequests)

	fmt.Fprintln(w, "by type:")
	types := make([]string, 0, len(s.ByType))
	for t := range s.ByType {
		types = append(types, string(t))
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Fprintf(w, "  %-10s %d\n", t, s.ByType[Type(t)])
	}

	if len(s.ByUser) > 1 || (len(s.ByUser) == 1 && s.ByUser[""] == 0) {
		fmt.Fprintln(w, "by user:")
		users := make([]string, 0, len(s.ByUser))
		for u := range s.ByUser {
			users = append(users, u)
		}
		sort.Strings(users)
		for _, u := range users {
			label := u
			if label == "" {
				label = "(none)"
			}
			fmt.Fprintf(w, "  %-10s %d\n", label, s.ByUser[u])
		}
	}

	fmt.Fprintln(w, "allocation histogram:")
	sizes := make([]int, 0, len(s.NodesHistogram))
	for n := range s.NodesHistogram {
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)
	for _, n := range sizes {
		count := s.NodesHistogram[n]
		bar := ""
		for i := 0; i < count && i < 60; i++ {
			bar += "#"
		}
		fmt.Fprintf(w, "  %4d nodes %4d %s\n", n, count, bar)
	}
}
