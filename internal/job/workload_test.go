package job

import (
	"strings"
	"testing"
)

const workloadJSONExample = `{
  "name": "demo",
  "jobs": [
    {
      "name": "late",
      "type": "rigid",
      "submit_time": 100,
      "num_nodes": 2,
      "phases": [
        {"tasks": [{"type": "compute", "flops": "1T / num_nodes"}]}
      ]
    },
    {
      "name": "early",
      "type": "malleable",
      "submit_time": 10,
      "num_nodes_min": 2,
      "num_nodes_max": 8,
      "walltime": 3600,
      "args": {"flops": "50T", "io": "4G"},
      "reconfig_cost": "0.5 + io/(num_nodes_new*10G)",
      "phases": [
        {"name": "load", "tasks": [{"type": "read", "target": "pfs", "bytes": "io"}]},
        {"name": "main", "iterations": 20, "scheduling_point": true, "tasks": [
          {"type": "compute", "flops": "flops/20/num_nodes"},
          {"type": "comm", "pattern": "allreduce", "bytes": "64M"}
        ]},
        {"name": "save", "tasks": [{"type": "write", "target": "pfs", "bytes": "io"}]}
      ]
    }
  ]
}`

func TestParseWorkload(t *testing.T) {
	w, err := ParseWorkload([]byte(workloadJSONExample), 16)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "demo" || len(w.Jobs) != 2 {
		t.Fatalf("name=%q jobs=%d", w.Name, len(w.Jobs))
	}
	// Sorted by submit time: "early" first with ID 0.
	if w.Jobs[0].Name != "early" || w.Jobs[0].ID != 0 {
		t.Errorf("first job %q id %d", w.Jobs[0].Name, w.Jobs[0].ID)
	}
	early := w.Jobs[0]
	if early.Type != Malleable || early.NumNodesMin != 2 || early.NumNodesMax != 8 {
		t.Errorf("early: %+v", early)
	}
	if early.WallTimeLimit != 3600 {
		t.Errorf("walltime %v", early.WallTimeLimit)
	}
	if early.Args["flops"] != 50e12 || early.Args["io"] != 4e9 {
		t.Errorf("args %v", early.Args)
	}
	if early.ReconfigCost == nil {
		t.Fatal("reconfig cost missing")
	}
	if len(early.App.Phases) != 3 {
		t.Fatalf("phases %d", len(early.App.Phases))
	}
	main := early.App.Phases[1]
	if main.Iterations != 20 || !main.SchedulingPoint || len(main.Tasks) != 2 {
		t.Errorf("main phase: %+v", main)
	}
	if main.Tasks[1].Kind != TaskComm || main.Tasks[1].Pattern != PatternAllReduce {
		t.Errorf("comm task: %+v", main.Tasks[1])
	}
	if counts := w.CountByType(); counts[Rigid] != 1 || counts[Malleable] != 1 {
		t.Errorf("counts %v", counts)
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	cases := []struct {
		name, src, substr string
	}{
		{"garbage", "{", "decoding"},
		{"wrong cost field", `{"jobs":[{"type":"rigid","submit_time":0,"num_nodes":1,
			"phases":[{"tasks":[{"type":"compute","bytes":1}]}]}]}`, "wrong cost field"},
		{"two cost fields", `{"jobs":[{"type":"rigid","submit_time":0,"num_nodes":1,
			"phases":[{"tasks":[{"type":"compute","flops":1,"bytes":1}]}]}]}`, "exactly one"},
		{"too big", `{"jobs":[{"type":"rigid","submit_time":0,"num_nodes":64,
			"phases":[{"tasks":[{"type":"compute","flops":1}]}]}]}`, "machine"},
		{"undefined var", `{"jobs":[{"type":"rigid","submit_time":0,"num_nodes":1,
			"phases":[{"tasks":[{"type":"compute","flops":"zork"}]}]}]}`, "zork"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseWorkload([]byte(tc.src), 16)
			if err == nil {
				t.Fatal("parse succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Errorf("error %q does not mention %q", err, tc.substr)
			}
		})
	}
}

func TestWorkloadJSONRoundTrip(t *testing.T) {
	w, err := ParseWorkload([]byte(workloadJSONExample), 16)
	if err != nil {
		t.Fatal(err)
	}
	out, err := w.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ParseWorkload(out, 16)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if len(w2.Jobs) != len(w.Jobs) {
		t.Fatalf("job count changed: %d -> %d", len(w.Jobs), len(w2.Jobs))
	}
	for i := range w.Jobs {
		a, b := w.Jobs[i], w2.Jobs[i]
		if a.Name != b.Name || a.Type != b.Type || a.SubmitTime != b.SubmitTime ||
			a.NumNodes != b.NumNodes || a.NumNodesMin != b.NumNodesMin ||
			a.NumNodesMax != b.NumNodesMax || a.WallTimeLimit != b.WallTimeLimit {
			t.Errorf("job %d changed: %+v vs %+v", i, a, b)
		}
		if len(a.App.Phases) != len(b.App.Phases) {
			t.Errorf("job %d phase count changed", i)
		}
	}
}

func TestWorkloadSortStability(t *testing.T) {
	w := &Workload{Jobs: []*Job{
		{ID: 0, Name: "b", SubmitTime: 5},
		{ID: 1, Name: "c", SubmitTime: 5},
		{ID: 2, Name: "a", SubmitTime: 1},
	}}
	w.Sort()
	if w.Jobs[0].Name != "a" || w.Jobs[1].Name != "b" || w.Jobs[2].Name != "c" {
		t.Errorf("sort order: %s %s %s", w.Jobs[0].Name, w.Jobs[1].Name, w.Jobs[2].Name)
	}
	for i, j := range w.Jobs {
		if j.ID != ID(i) {
			t.Errorf("job %d has ID %d", i, j.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{
		Seed: 42, Count: 50,
		Arrival:      Arrival{Kind: ArrivalPoisson, Rate: 0.05},
		Nodes:        [2]int{2, 32},
		MachineNodes: 64,
		NodeSpeed:    1e11,
		TypeShares:   map[Type]float64{Rigid: 0.5, Malleable: 0.5},
	}
	w1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Jobs) != 50 || len(w2.Jobs) != 50 {
		t.Fatalf("counts %d, %d", len(w1.Jobs), len(w2.Jobs))
	}
	for i := range w1.Jobs {
		a, b := w1.Jobs[i], w2.Jobs[i]
		if a.Name != b.Name || a.SubmitTime != b.SubmitTime || a.Type != b.Type ||
			a.NumNodes != b.NumNodes || a.Args["flops_iter"] != b.Args["flops_iter"] {
			t.Fatalf("job %d differs between identical seeds", i)
		}
	}
	// A different seed must differ somewhere.
	cfg.Seed = 43
	w3, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range w1.Jobs {
		if w1.Jobs[i].SubmitTime != w3.Jobs[i].SubmitTime || w1.Jobs[i].NumNodes != w3.Jobs[i].NumNodes {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGenerateTypeMix(t *testing.T) {
	cfg := Config{
		Seed: 7, Count: 400,
		Arrival:      Arrival{Kind: ArrivalPoisson, Rate: 0.1},
		Nodes:        [2]int{2, 16},
		MachineNodes: 128,
		NodeSpeed:    1e11,
		TypeShares:   map[Type]float64{Rigid: 1, Malleable: 1},
	}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := w.CountByType()
	if counts[Rigid] < 120 || counts[Malleable] < 120 {
		t.Errorf("mix far from 50/50: %v", counts)
	}
	// Malleable jobs must have scheduling points and reconfig cost.
	for _, j := range w.Jobs {
		if j.Type == Malleable {
			if j.App.TotalSchedulingPoints() == 0 {
				t.Fatalf("malleable job %s has no scheduling points", j.Label())
			}
			if j.ReconfigCost == nil {
				t.Fatalf("malleable job %s has no reconfig cost", j.Label())
			}
		}
	}
}

func TestGenerateValidates(t *testing.T) {
	// All generated jobs must pass validation against the machine.
	cfg := Config{
		Seed: 1, Count: 100,
		Arrival:      Arrival{Kind: ArrivalWeibull, Shape: 0.7, Scale: 30},
		Nodes:        [2]int{1, 64},
		MachineNodes: 64,
		NodeSpeed:    1e11,
		TypeShares:   map[Type]float64{Rigid: 1, Moldable: 1, Malleable: 1, Evolving: 1},
	}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(64); err != nil {
		t.Fatal(err)
	}
	// Evolving jobs carry evolving requests.
	sawEvolving := false
	for _, j := range w.Jobs {
		if j.Type == Evolving {
			sawEvolving = true
			if !j.App.HasEvolvingRequests() {
				t.Fatalf("evolving job %s has no requests", j.Label())
			}
		}
	}
	if !sawEvolving {
		t.Error("no evolving jobs generated")
	}
}

func TestGenerateArrivalKinds(t *testing.T) {
	base := Config{
		Seed: 5, Count: 20, Nodes: [2]int{1, 4}, MachineNodes: 8, NodeSpeed: 1e11,
	}
	// uniform: exact spacing.
	cfg := base
	cfg.Arrival = Arrival{Kind: ArrivalUniform, Rate: 0.5}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(w.Jobs); i++ {
		if d := w.Jobs[i].SubmitTime - w.Jobs[i-1].SubmitTime; d != 2 {
			t.Fatalf("uniform spacing %v, want 2", d)
		}
	}
	// all: everything at zero.
	cfg = base
	cfg.Arrival = Arrival{Kind: ArrivalAll}
	w, err = Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range w.Jobs {
		if j.SubmitTime != 0 {
			t.Fatalf("ArrivalAll produced submit %v", j.SubmitTime)
		}
	}
	// poisson: strictly increasing.
	cfg = base
	cfg.Arrival = Arrival{Kind: ArrivalPoisson, Rate: 1}
	w, err = Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(w.Jobs); i++ {
		if w.Jobs[i].SubmitTime < w.Jobs[i-1].SubmitTime {
			t.Fatal("poisson submits not monotone")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	good := Config{Count: 1, Nodes: [2]int{1, 2}, NodeSpeed: 1, MachineNodes: 4}
	bad := good
	bad.Count = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero count accepted")
	}
	bad = good
	bad.Nodes = [2]int{0, 2}
	if _, err := Generate(bad); err == nil {
		t.Error("zero min nodes accepted")
	}
	bad = good
	bad.NodeSpeed = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero node speed accepted")
	}
}

func TestSWFParse(t *testing.T) {
	trace := `; Comment header
; MaxNodes: 128
  1  0   10  3600  64 -1 -1  64  7200 -1 1 1 1 1 1 1 -1 -1
  2  60  5   100   4  -1 -1  4   200  -1 1 1 1 1 1 1 -1 -1
  3  120 0   0     4  -1 -1  4   200  -1 1 1 1 1 1 1 -1 -1
  4  180 0   50    0  -1 -1  8   100  -1 1 1 1 1 1 1 -1 -1
  5  240 0   500   512 -1 -1 512 900  -1 1 1 1 1 1 1 -1 -1
`
	w, err := ParseSWF(strings.NewReader(trace), SWFOptions{
		CoresPerNode: 4,
		NodeSpeed:    1e9,
		MaxNodes:     32,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Job 3 dropped (zero runtime), job 5 dropped (too big after /4 = 128 > 32).
	if len(w.Jobs) != 3 {
		t.Fatalf("kept %d jobs, want 3", len(w.Jobs))
	}
	j := w.Jobs[0]
	if j.NumNodes != 16 { // 64 procs / 4 cores
		t.Errorf("nodes = %d, want 16", j.NumNodes)
	}
	if j.WallTimeLimit != 7200 {
		t.Errorf("walltime = %v", j.WallTimeLimit)
	}
	// Flops calibrated: runtime * speed * nodes.
	if got := j.Args["flops"]; got != 3600*1e9*16 {
		t.Errorf("flops = %v", got)
	}
	// Job 4: used procs 0 falls back to requested (8/4 = 2 nodes).
	j4 := w.Jobs[2]
	if j4.NumNodes != 2 {
		t.Errorf("fallback nodes = %d, want 2", j4.NumNodes)
	}
}

func TestSWFMalleableConversion(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 10; i++ {
		sb.WriteString("1 0 0 100 8 -1 -1 8 200 -1 1 1 1 1 1 1 -1 -1\n")
	}
	w, err := ParseSWF(strings.NewReader(sb.String()), SWFOptions{
		NodeSpeed:         1e9,
		MalleableFraction: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := w.CountByType()
	if counts[Malleable] != 5 || counts[Rigid] != 5 {
		t.Errorf("conversion counts %v, want 5/5", counts)
	}
	for _, j := range w.Jobs {
		if j.Type == Malleable {
			if j.NumNodesMin != 4 || j.NumNodesMax != 16 {
				t.Errorf("malleable range [%d,%d], want [4,16]", j.NumNodesMin, j.NumNodesMax)
			}
			if j.App.TotalSchedulingPoints() == 0 {
				t.Error("converted malleable job lacks scheduling points")
			}
		}
	}
}

func TestSWFErrors(t *testing.T) {
	if _, err := ParseSWF(strings.NewReader(""), SWFOptions{}); err == nil {
		t.Error("missing node speed accepted")
	}
	if _, err := ParseSWF(strings.NewReader("1 2 3"), SWFOptions{NodeSpeed: 1}); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ParseSWF(strings.NewReader("1 x 0 1 1 0 0 1 1 0 1 1 1 1 1 1 -1 -1"), SWFOptions{NodeSpeed: 1}); err == nil {
		t.Error("non-numeric field accepted")
	}
}

func TestSWFMaxJobs(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		sb.WriteString("1 0 0 100 8 -1 -1 8 200 -1 1 1 1 1 1 1 -1 -1\n")
	}
	w, err := ParseSWF(strings.NewReader(sb.String()), SWFOptions{NodeSpeed: 1, MaxJobs: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 7 {
		t.Errorf("kept %d jobs, want 7", len(w.Jobs))
	}
}
