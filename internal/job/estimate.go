package job

import (
	"fmt"

	"repro/internal/expr"
)

// PlatformRef carries the platform magnitudes the analytic estimator
// needs. It deliberately mirrors the simple homogeneous platform: per-node
// speed and injection bandwidth, aggregate PFS bandwidths, and per-node
// burst-buffer bandwidths.
type PlatformRef struct {
	// NodeSpeed is flops/s per node.
	NodeSpeed float64
	// LinkBW is bytes/s injection bandwidth per node.
	LinkBW float64
	// PFSReadBW and PFSWriteBW are aggregate bytes/s.
	PFSReadBW  float64
	PFSWriteBW float64
	// BBReadBW and BBWriteBW are per-node bytes/s (node-local model).
	BBReadBW  float64
	BBWriteBW float64
	// Latency is the per-communication base latency in seconds.
	Latency float64
}

// CommWeights returns the per-link consumption factors for a pattern on n
// nodes: the weight of non-root links, the root's weight, and the shared
// backbone weight (bytes through the resource per payload byte). The
// simulation engine and the analytic estimator share these definitions.
func CommWeights(p CommPattern, n int) (linkW, rootW, backboneW float64) {
	nf := float64(n)
	switch p {
	case PatternAllToAll:
		w := nf - 1
		return w, w, nf * nf / 4
	case PatternAllReduce:
		w := 2 * (nf - 1) / nf
		return w, w, 2
	case PatternRing:
		return 1, 1, 1
	case PatternBroadcast:
		w := ceilLog2(n)
		return 1, w, w
	case PatternGather:
		return 1, nf - 1, nf / 2
	default:
		return 1, 1, 1
	}
}

// UplinkWeights returns, for a tree topology, the bytes each leaf-switch
// uplink carries per payload byte of the collective, given how many of
// the job's n nodes sit in each group (groupCounts, keyed by group
// index), plus the bytes crossing the shared core. A job contained in a
// single group returns nil (no uplink traffic).
func UplinkWeights(p CommPattern, n int, groupCounts map[int]int) (perGroup map[int]float64, core float64) {
	if len(groupCounts) <= 1 {
		return nil, 0
	}
	perGroup = make(map[int]float64, len(groupCounts))
	nf := float64(n)
	// Identify the root's group deterministically: the lowest group index
	// (the engine allocates lowest node IDs first and treats the first
	// node as the collective root).
	rootGroup := -1
	for g := range groupCounts {
		if rootGroup < 0 || g < rootGroup {
			rootGroup = g
		}
	}
	switch p {
	case PatternAllToAll:
		for g, k := range groupCounts {
			perGroup[g] = float64(k) * (nf - float64(k))
		}
	case PatternAllReduce:
		// Ring ordered by node ID: each direction crosses every group
		// boundary once; two transfers per ring step.
		for g := range groupCounts {
			perGroup[g] = 2
		}
	case PatternRing:
		for g := range groupCounts {
			perGroup[g] = 1
		}
	case PatternBroadcast:
		// The payload enters every non-root group once; the root group
		// sends it out once per other group (tree fan-out collapsed onto
		// its uplink).
		for g := range groupCounts {
			if g == rootGroup {
				perGroup[g] = float64(len(groupCounts) - 1)
			} else {
				perGroup[g] = 1
			}
		}
	case PatternGather:
		for g, k := range groupCounts {
			if g == rootGroup {
				perGroup[g] = nf - float64(groupCounts[rootGroup])
			} else {
				perGroup[g] = float64(k)
			}
		}
	default:
		for g := range groupCounts {
			perGroup[g] = 1
		}
	}
	total := 0.0
	for _, w := range perGroup {
		total += w
	}
	// Every cross-group byte traverses two uplinks (out and in) and the
	// core once.
	return perGroup, total / 2
}

func ceilLog2(n int) float64 {
	k := 0
	v := 1
	for v < n {
		v *= 2
		k++
	}
	return float64(k)
}

// EstimateRuntime computes the job's contention-free runtime on n nodes by
// walking the application model analytically (the same closed forms the
// fluid simulation realizes when the job runs alone). It assumes the
// allocation stays at n for the whole run — reconfigurations, evolving
// requests, and cross-job contention are not modelled, which makes the
// estimate a lower bound in loaded systems.
func EstimateRuntime(j *Job, n int, ref PlatformRef) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("job: estimate with %d nodes", n)
	}
	if ref.NodeSpeed <= 0 {
		return 0, fmt.Errorf("job: estimate needs a node speed")
	}
	total := 0.0
	base := expr.Vars{
		"num_nodes":   float64(n),
		"total_nodes": float64(n),
		"walltime":    j.WallTimeLimit,
	}
	args := expr.Vars{}
	for k, v := range j.Args {
		args[k] = v
	}
	env := expr.ChainEnv{args, base}
	for pi := range j.App.Phases {
		p := &j.App.Phases[pi]
		iters := p.EffectiveIterations()
		base["phase"] = float64(pi)
		base["iterations"] = float64(iters)
		for it := 0; it < iters; it++ {
			base["iteration"] = float64(it)
			for ti := range p.Tasks {
				d, err := estimateTask(&p.Tasks[ti], n, ref, env)
				if err != nil {
					return 0, fmt.Errorf("job %s phase %d task %d: %w", j.Label(), pi, ti, err)
				}
				total += d
			}
		}
	}
	return total, nil
}

func estimateTask(t *Task, n int, ref PlatformRef, env expr.Env) (float64, error) {
	magnitude, err := t.Model.Eval(env, n)
	if err != nil {
		return 0, err
	}
	if magnitude <= 0 {
		return 0, nil
	}
	switch t.Kind {
	case TaskCompute:
		return magnitude / ref.NodeSpeed, nil
	case TaskDelay:
		return magnitude, nil
	case TaskComm:
		if n <= 1 || ref.LinkBW <= 0 {
			return 0, nil
		}
		linkW, rootW, _ := CommWeights(t.Pattern, n)
		w := linkW
		if rootW > w {
			w = rootW
		}
		return ref.Latency + magnitude*w/ref.LinkBW, nil
	case TaskRead, TaskWrite:
		return estimateIO(t, n, ref, magnitude)
	case TaskEvolvingRequest:
		return 0, nil
	default:
		return 0, fmt.Errorf("unknown task kind %q", t.Kind)
	}
}

func estimateIO(t *Task, n int, ref PlatformRef, bytes float64) (float64, error) {
	switch t.Target {
	case TargetPFS:
		var pfs float64
		if t.Kind == TaskRead {
			pfs = ref.PFSReadBW
		} else {
			pfs = ref.PFSWriteBW
		}
		if pfs <= 0 {
			return 0, fmt.Errorf("PFS task but no PFS bandwidth in reference")
		}
		bw := pfs
		if ref.LinkBW > 0 {
			bw = min(pfs, float64(n)*ref.LinkBW)
		}
		return bytes / bw, nil
	case TargetBB:
		var per float64
		if t.Kind == TaskRead {
			per = ref.BBReadBW
		} else {
			per = ref.BBWriteBW
		}
		if per <= 0 {
			return 0, fmt.Errorf("burst-buffer task but no BB bandwidth in reference")
		}
		return bytes / (float64(n) * per), nil
	default:
		return 0, fmt.Errorf("unknown I/O target %q", t.Target)
	}
}

// Efficiency returns the parallel efficiency of running j on n nodes
// relative to its minimum size: T(min)*min / (T(n)*n). A perfectly
// scaling job has efficiency 1 at every size.
func Efficiency(j *Job, n int, ref PlatformRef) (float64, error) {
	minN := j.MinNodes()
	tMin, err := EstimateRuntime(j, minN, ref)
	if err != nil {
		return 0, err
	}
	tN, err := EstimateRuntime(j, n, ref)
	if err != nil {
		return 0, err
	}
	if tN <= 0 || n <= 0 {
		return 1, nil
	}
	return tMin * float64(minN) / (tN * float64(n)), nil
}
