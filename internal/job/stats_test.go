package job

import (
	"bytes"
	"strings"
	"testing"
)

func TestStatsBasics(t *testing.T) {
	w, err := Generate(Config{
		Seed: 3, Count: 60,
		Arrival:      Arrival{Kind: ArrivalPoisson, Rate: 0.1},
		Nodes:        [2]int{2, 16},
		MachineNodes: 32,
		NodeSpeed:    1e11,
		TypeShares:   map[Type]float64{Rigid: 1, Malleable: 1, Evolving: 1},
		Users:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if s.Jobs != 60 {
		t.Errorf("jobs %d", s.Jobs)
	}
	sum := 0
	for _, c := range s.ByType {
		sum += c
	}
	if sum != 60 {
		t.Errorf("type counts sum to %d", sum)
	}
	if len(s.ByUser) != 3 {
		t.Errorf("users %d, want 3", len(s.ByUser))
	}
	if s.Span <= 0 || s.ArrivalRate <= 0 {
		t.Errorf("span %v rate %v", s.Span, s.ArrivalRate)
	}
	if s.MinNodes < 2 || s.MaxNodes > 16 || s.MeanNodes < float64(s.MinNodes) || s.MeanNodes > float64(s.MaxNodes) {
		t.Errorf("node stats %d/%.1f/%d", s.MinNodes, s.MeanNodes, s.MaxNodes)
	}
	if s.WithWalltime != 60 {
		t.Errorf("walltimes %d", s.WithWalltime)
	}
	if s.SchedulingPoints == 0 {
		t.Error("no scheduling points counted")
	}
	if s.EvolvingRequests == 0 {
		t.Error("no evolving jobs counted")
	}
	histSum := 0
	for _, c := range s.NodesHistogram {
		histSum += c
	}
	if histSum != 60 {
		t.Errorf("histogram sums to %d", histSum)
	}
}

func TestStatsEmpty(t *testing.T) {
	w := &Workload{}
	s := w.Stats()
	if s.Jobs != 0 || s.Span != 0 {
		t.Errorf("empty stats: %+v", s)
	}
}

func TestStatsFprint(t *testing.T) {
	w := &Workload{Jobs: []*Job{
		{ID: 0, Name: "a", Type: Rigid, NumNodes: 4, User: "alice", WallTimeLimit: 10, App: simpleApp(),
			Args: map[string]float64{"flops": 1}},
		{ID: 1, Name: "b", Type: Malleable, NumNodesMin: 2, NumNodesMax: 8, NumNodes: 4, User: "bob",
			App: simpleApp(), Args: map[string]float64{"flops": 1}, Dependencies: []ID{0}},
	}}
	var buf bytes.Buffer
	s := w.Stats()
	s.Fprint(&buf, "demo")
	out := buf.String()
	for _, want := range []string{
		"workload      demo",
		"jobs          2",
		"rigid      1",
		"malleable  1",
		"alice",
		"bob",
		"dependencies  1 jobs gated",
		"4 nodes    2 ##",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
