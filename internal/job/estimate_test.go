package job

import (
	"math"
	"testing"
)

var testRef = PlatformRef{
	NodeSpeed:  1e9,
	LinkBW:     1e9,
	PFSReadBW:  2e9,
	PFSWriteBW: 2e9,
	BBReadBW:   2e9,
	BBWriteBW:  2e9,
}

func estJob(phases ...Phase) *Job {
	return &Job{
		Type: Rigid, NumNodes: 4,
		Args: map[string]float64{"flops": 1e10, "bytes": 8e9},
		App:  &Application{Phases: phases},
	}
}

func TestEstimateCompute(t *testing.T) {
	j := estJob(Phase{Tasks: []Task{{Kind: TaskCompute, Model: MustExprModel("flops/num_nodes")}}})
	got, err := EstimateRuntime(j, 4, testRef)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("estimate %v, want 2.5", got)
	}
	// Doubling nodes halves the time under perfect scaling.
	got8, _ := EstimateRuntime(j, 8, testRef)
	if got8 != 1.25 {
		t.Errorf("estimate(8) %v, want 1.25", got8)
	}
}

func TestEstimateMatchesCommWeights(t *testing.T) {
	cases := []struct {
		pattern CommPattern
		n       int
		want    float64 // 1 GB payload
	}{
		{PatternAllReduce, 4, 1.5},
		{PatternAllToAll, 4, 3},
		{PatternRing, 4, 1},
		{PatternBroadcast, 8, 3},
		{PatternGather, 5, 4},
	}
	for _, tc := range cases {
		j := estJob(Phase{Tasks: []Task{{Kind: TaskComm, Model: MustExprModel("1G"), Pattern: tc.pattern}}})
		got, err := EstimateRuntime(j, tc.n, testRef)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s on %d nodes: %v, want %v", tc.pattern, tc.n, got, tc.want)
		}
	}
}

func TestEstimateIO(t *testing.T) {
	j := estJob(Phase{Tasks: []Task{{Kind: TaskRead, Model: MustExprModel("bytes"), Target: TargetPFS}}})
	// 8 GB over min(2 GB/s PFS, 2*1 GB/s links) = 4 s on 2 nodes.
	got, err := EstimateRuntime(j, 2, testRef)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("pfs read estimate %v, want 4", got)
	}
	// Link-bound on 1 node: 8 s.
	got1, _ := EstimateRuntime(j, 1, testRef)
	if got1 != 8 {
		t.Errorf("single-node estimate %v, want 8", got1)
	}
	// Node-local burst buffer: 8 GB over 2 nodes * 2 GB/s = 2 s.
	jb := estJob(Phase{Tasks: []Task{{Kind: TaskWrite, Model: MustExprModel("bytes"), Target: TargetBB}}})
	gotB, err := EstimateRuntime(jb, 2, testRef)
	if err != nil {
		t.Fatal(err)
	}
	if gotB != 2 {
		t.Errorf("bb write estimate %v, want 2", gotB)
	}
}

func TestEstimateIterationsAndPhases(t *testing.T) {
	j := estJob(
		Phase{Tasks: []Task{{Kind: TaskDelay, Model: MustExprModel("1")}}},
		Phase{Iterations: 3, Tasks: []Task{{Kind: TaskDelay, Model: MustExprModel("2")}}},
	)
	got, err := EstimateRuntime(j, 1, testRef)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("estimate %v, want 7", got)
	}
}

func TestEstimateIterationDependentModel(t *testing.T) {
	// Cost shrinking with the iteration index must be summed per
	// iteration, not multiplied.
	j := estJob(Phase{Iterations: 4, Tasks: []Task{
		{Kind: TaskDelay, Model: MustExprModel("iteration + 1")},
	}})
	got, err := EstimateRuntime(j, 1, testRef)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1+2+3+4 {
		t.Errorf("estimate %v, want 10", got)
	}
}

func TestEstimateErrors(t *testing.T) {
	j := estJob(Phase{Tasks: []Task{{Kind: TaskCompute, Model: MustExprModel("flops")}}})
	if _, err := EstimateRuntime(j, 0, testRef); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := EstimateRuntime(j, 2, PlatformRef{}); err == nil {
		t.Error("missing node speed accepted")
	}
	jp := estJob(Phase{Tasks: []Task{{Kind: TaskRead, Model: MustExprModel("1G"), Target: TargetPFS}}})
	if _, err := EstimateRuntime(jp, 2, PlatformRef{NodeSpeed: 1}); err == nil {
		t.Error("missing PFS bandwidth accepted")
	}
}

func TestEfficiency(t *testing.T) {
	// Perfectly scaling job: efficiency 1 everywhere.
	perfect := &Job{
		Type: Malleable, NumNodesMin: 2, NumNodesMax: 16,
		Args: map[string]float64{"flops": 1e10},
		App: &Application{Phases: []Phase{{
			Tasks: []Task{{Kind: TaskCompute, Model: MustExprModel("flops/num_nodes")}},
		}}},
	}
	eff, err := Efficiency(perfect, 16, testRef)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eff-1) > 1e-9 {
		t.Errorf("perfect efficiency %v", eff)
	}
	// Amdahl job with 20% serial fraction: efficiency drops with n.
	amdahl := &Job{
		Type: Malleable, NumNodesMin: 1, NumNodesMax: 16,
		Args: map[string]float64{"flops": 1e10, "serial": 0.2},
		App: &Application{Phases: []Phase{{
			Tasks: []Task{{Kind: TaskCompute, Model: MustExprModel("flops*(serial + (1-serial)/num_nodes)")}},
		}}},
	}
	eff2, err := Efficiency(amdahl, 2, testRef)
	if err != nil {
		t.Fatal(err)
	}
	eff16, err := Efficiency(amdahl, 16, testRef)
	if err != nil {
		t.Fatal(err)
	}
	if !(eff2 > eff16) {
		t.Errorf("efficiency should fall with scale: eff(2)=%v eff(16)=%v", eff2, eff16)
	}
	// Analytic check at n=2: T(1)=10, T(2)=6 -> eff = 10/(6*2) = 0.8333.
	if math.Abs(eff2-10.0/12.0) > 1e-9 {
		t.Errorf("eff(2) = %v, want %v", eff2, 10.0/12.0)
	}
}
