// Package job defines the workload model: jobs, their applications
// (phases and tasks), performance models, workload files, synthetic
// workload generation, and standard-workload-format (SWF) traces.
//
// The taxonomy follows Feitelson's classification, which ElastiSim adopts:
//
//   - rigid: the user fixes the node count; it never changes.
//   - moldable: the scheduler picks the node count at start; it never
//     changes afterwards.
//   - malleable: the scheduler may change the node count while the job
//     runs, but only at application-exposed scheduling points.
//   - evolving: the application itself requests allocation changes at
//     runtime; the scheduler grants or rejects them.
package job

import (
	"fmt"
)

// Type classifies a job's flexibility.
type Type string

// The four job flexibility classes.
const (
	Rigid     Type = "rigid"
	Moldable  Type = "moldable"
	Malleable Type = "malleable"
	Evolving  Type = "evolving"
)

// Adaptive reports whether the job's allocation may change after start.
func (t Type) Adaptive() bool { return t == Malleable || t == Evolving }

// Valid reports whether t is one of the four classes.
func (t Type) Valid() bool {
	switch t {
	case Rigid, Moldable, Malleable, Evolving:
		return true
	}
	return false
}

// ID identifies a job within a workload.
type ID int

// Job is one entry of a workload.
type Job struct {
	// ID is assigned by the workload loader (dense, starting at 0).
	ID ID
	// Name is an optional human-readable label.
	Name string
	// Type is the flexibility class.
	Type Type
	// SubmitTime is when the job enters the queue, in seconds.
	SubmitTime float64
	// NumNodes is the requested node count for rigid jobs.
	NumNodes int
	// NumNodesMin/NumNodesMax bound the allocation for non-rigid jobs.
	NumNodesMin int
	NumNodesMax int
	// WallTimeLimit is the user's runtime estimate in seconds (0 = none).
	// Backfilling schedulers rely on it; the engine kills jobs exceeding it.
	WallTimeLimit float64
	// Args are user-defined variables visible to all of the job's
	// performance-model expressions.
	Args map[string]float64
	// App is the application model executed when the job runs.
	App *Application
	// ReconfigCost models the time (seconds) one reconfiguration takes,
	// with num_nodes_old/num_nodes_new in scope. Nil means reconfiguration
	// is free.
	ReconfigCost *Model
	// CheckpointInterval models the target time (seconds) between
	// program-counter checkpoints taken at iteration boundaries: after a
	// node failure, only work since the last checkpoint is redone. Nil
	// means no checkpoints (a failed job restarts from the beginning);
	// an interval of 0 checkpoints every iteration.
	CheckpointInterval *Model
	// Dependencies lists jobs that must finish (complete or be killed —
	// "afterany" semantics) before this job becomes schedulable. The
	// dependency graph must be acyclic.
	Dependencies []ID
	// User attributes the job to an account for fair-share scheduling
	// (optional).
	User string
}

// Label returns the job's name, or a synthesized one.
func (j *Job) Label() string {
	if j.Name != "" {
		return j.Name
	}
	return fmt.Sprintf("job%d", j.ID)
}

// MinNodes returns the smallest allocation the job accepts.
func (j *Job) MinNodes() int {
	if j.Type == Rigid {
		return j.NumNodes
	}
	return j.NumNodesMin
}

// MaxNodes returns the largest allocation the job accepts.
func (j *Job) MaxNodes() int {
	if j.Type == Rigid {
		return j.NumNodes
	}
	return j.NumNodesMax
}

// Validate checks the job against the given machine size.
func (j *Job) Validate(totalNodes int) error {
	if !j.Type.Valid() {
		return fmt.Errorf("job %s: unknown type %q", j.Label(), j.Type)
	}
	if j.SubmitTime < 0 {
		return fmt.Errorf("job %s: negative submit time", j.Label())
	}
	if j.WallTimeLimit < 0 {
		return fmt.Errorf("job %s: negative walltime limit", j.Label())
	}
	switch j.Type {
	case Rigid:
		if j.NumNodes <= 0 {
			return fmt.Errorf("job %s: rigid job needs num_nodes >= 1", j.Label())
		}
		if j.NumNodes > totalNodes {
			return fmt.Errorf("job %s: requests %d nodes, machine has %d", j.Label(), j.NumNodes, totalNodes)
		}
	default:
		if j.NumNodesMin <= 0 || j.NumNodesMax < j.NumNodesMin {
			return fmt.Errorf("job %s: invalid node range [%d,%d]", j.Label(), j.NumNodesMin, j.NumNodesMax)
		}
		if j.NumNodesMin > totalNodes {
			return fmt.Errorf("job %s: minimum %d nodes exceeds machine size %d", j.Label(), j.NumNodesMin, totalNodes)
		}
	}
	if j.App == nil || len(j.App.Phases) == 0 {
		return fmt.Errorf("job %s: empty application", j.Label())
	}
	if err := j.App.Validate(j.argNames()); err != nil {
		return fmt.Errorf("job %s: %w", j.Label(), err)
	}
	if j.ReconfigCost != nil {
		allowed := engineVars(j.argNames())
		allowed["num_nodes_old"] = true
		allowed["num_nodes_new"] = true
		if err := j.ReconfigCost.Validate(allowed); err != nil {
			return fmt.Errorf("job %s: reconfig cost: %w", j.Label(), err)
		}
	}
	if j.CheckpointInterval != nil {
		if err := j.CheckpointInterval.Validate(engineVars(j.argNames())); err != nil {
			return fmt.Errorf("job %s: checkpoint interval: %w", j.Label(), err)
		}
	}
	return nil
}

func (j *Job) argNames() []string {
	names := make([]string, 0, len(j.Args))
	for k := range j.Args {
		names = append(names, k)
	}
	return names
}

// engineVars returns the set of variables the engine provides to every
// expression, plus the job's own argument names.
func engineVars(argNames []string) map[string]bool {
	allowed := map[string]bool{
		"num_nodes":   true,
		"total_nodes": true,
		"iteration":   true,
		"iterations":  true,
		"phase":       true,
		"walltime":    true,
	}
	for _, a := range argNames {
		allowed[a] = true
	}
	return allowed
}
