package job

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SWFOptions configures conversion of a Standard Workload Format trace
// (Feitelson's SWF, the de-facto interchange format for batch traces) into
// a simulator workload.
type SWFOptions struct {
	// CoresPerNode converts the trace's processor counts into node counts
	// (ceil division). Default 1.
	CoresPerNode int
	// NodeSpeed (flops/s) calibrates compute volume so that a job's
	// simulated runtime on its requested nodes matches the recorded
	// runtime. Required.
	NodeSpeed float64
	// MaxJobs truncates the trace (0 = no limit).
	MaxJobs int
	// MaxNodes drops jobs larger than the machine (0 = keep all).
	MaxNodes int
	// MalleableFraction converts every k-th job (per the fraction) into a
	// malleable job with range [n/2, 2n], modelling the what-if scenarios
	// the malleability literature studies on rigid traces.
	MalleableFraction float64
	// Iterations splits each converted job's work into this many
	// iterations with scheduling points (default 10); only meaningful for
	// jobs converted to malleable.
	Iterations int
}

// SWF field indices (0-based) per the format definition.
const (
	swfJobID = iota
	swfSubmitTime
	swfWaitTime
	swfRunTime
	swfUsedProcs
	swfUsedCPUTime
	swfUsedMemory
	swfReqProcs
	swfReqTime
	swfReqMemory
	swfStatus
	swfUserID
	swfGroupID
	swfAppID
	swfQueueID
	swfPartitionID
	swfPrecedingJob
	swfThinkTime
	swfFieldCount
)

// ParseSWF reads an SWF trace and converts each record into a job whose
// compute volume reproduces the recorded runtime at the requested node
// count. Comment lines (';') carry header metadata and are skipped.
func ParseSWF(r io.Reader, opts SWFOptions) (*Workload, error) {
	if opts.NodeSpeed <= 0 {
		return nil, fmt.Errorf("job: SWF conversion requires a node speed")
	}
	if opts.CoresPerNode <= 0 {
		opts.CoresPerNode = 1
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 10
	}
	w := &Workload{Name: "swf"}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	kept := 0
	malleableAcc := 0.0
	swfIDToJob := map[int]ID{} // trace job id -> our dense ID (pre-sort)
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < swfFieldCount {
			return nil, fmt.Errorf("job: SWF line %d has %d fields, want %d", lineNo, len(fields), swfFieldCount)
		}
		get := func(i int) (float64, error) {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return 0, fmt.Errorf("job: SWF line %d field %d: %w", lineNo, i, err)
			}
			return v, nil
		}
		submit, err := get(swfSubmitTime)
		if err != nil {
			return nil, err
		}
		runTime, err := get(swfRunTime)
		if err != nil {
			return nil, err
		}
		procs, err := get(swfUsedProcs)
		if err != nil {
			return nil, err
		}
		if procs <= 0 {
			if procs, err = get(swfReqProcs); err != nil {
				return nil, err
			}
		}
		reqTime, err := get(swfReqTime)
		if err != nil {
			return nil, err
		}
		status, err := get(swfStatus)
		if err != nil {
			return nil, err
		}
		// Keep only completed jobs with usable size and runtime; this is
		// the standard cleaning step for SWF-driven simulation.
		if runTime <= 0 || procs <= 0 || status == 0 || status == 5 {
			continue
		}
		nodes := int((procs + float64(opts.CoresPerNode) - 1) / float64(opts.CoresPerNode))
		if opts.MaxNodes > 0 && nodes > opts.MaxNodes {
			continue
		}
		if submit < 0 {
			submit = 0
		}
		walltime := reqTime
		if walltime <= 0 {
			walltime = runTime * 2
		}
		j := convertSWFJob(kept, submit, runTime, walltime, nodes, opts, &malleableAcc)
		// Preserve the trace's "preceding job" chains as dependencies
		// (afterany semantics); think times are not modelled.
		if swfID, err := get(swfJobID); err == nil {
			swfIDToJob[int(swfID)] = j.ID
		}
		if prec, err := get(swfPrecedingJob); err == nil && prec > 0 {
			if depID, ok := swfIDToJob[int(prec)]; ok && depID != j.ID {
				j.Dependencies = append(j.Dependencies, depID)
			}
		}
		w.Jobs = append(w.Jobs, j)
		kept++
		if opts.MaxJobs > 0 && kept >= opts.MaxJobs {
			break
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("job: reading SWF: %w", err)
	}
	w.Sort()
	return w, nil
}

func convertSWFJob(idx int, submit, runTime, walltime float64, nodes int, opts SWFOptions, malleableAcc *float64) *Job {
	j := &Job{
		ID:            ID(idx),
		Name:          fmt.Sprintf("swf%d", idx),
		Type:          Rigid,
		SubmitTime:    submit,
		NumNodes:      nodes,
		WallTimeLimit: walltime,
		Args: map[string]float64{
			// Total flops reproducing runTime at the recorded allocation
			// under perfect scaling.
			"flops": runTime * opts.NodeSpeed * float64(nodes),
		},
	}
	// Deterministic fractional rounding: every 1/f-th job is malleable.
	*malleableAcc += opts.MalleableFraction
	if *malleableAcc >= 1 {
		*malleableAcc--
		j.Type = Malleable
		j.NumNodesMin = max(1, nodes/2)
		j.NumNodesMax = min(nodes*2, maxNodesOr(opts.MaxNodes, nodes*2))
		j.App = &Application{Phases: []Phase{{
			Name:            "main",
			Iterations:      opts.Iterations,
			SchedulingPoint: true,
			Tasks: []Task{{
				Kind:  TaskCompute,
				Model: MustExprModel(fmt.Sprintf("flops / %d / num_nodes", opts.Iterations)),
			}},
		}}}
		return j
	}
	j.App = &Application{Phases: []Phase{{
		Name: "main",
		Tasks: []Task{{
			Kind:  TaskCompute,
			Model: MustExprModel("flops / num_nodes"),
		}},
	}}}
	return j
}

func maxNodesOr(limit, v int) int {
	if limit <= 0 {
		return v
	}
	return limit
}
