package job

import (
	"fmt"
)

// TaskKind is the type of work a task performs.
type TaskKind string

// Task kinds supported by the application model.
const (
	// TaskCompute burns flops on every allocated node. The model yields the
	// PER-NODE flop count, so the scaling law is fully in the user's hands:
	// "work/num_nodes" is perfect scaling, "work*(f+(1-f)/num_nodes)" is
	// Amdahl-limited scaling with serial fraction f.
	TaskCompute TaskKind = "compute"
	// TaskComm moves bytes between the allocated nodes following Pattern.
	TaskComm TaskKind = "comm"
	// TaskRead reads bytes from the storage Target, striped over the
	// allocated nodes.
	TaskRead TaskKind = "read"
	// TaskWrite writes bytes to the storage Target.
	TaskWrite TaskKind = "write"
	// TaskDelay sleeps for a model-determined number of seconds
	// (library calls, license waits, ...); it occupies the allocation
	// without using platform resources.
	TaskDelay TaskKind = "delay"
	// TaskEvolvingRequest asks the scheduler for a new allocation size
	// (evolving jobs only). The request is asynchronous: the job keeps
	// running and a granted change is applied at the next scheduling point.
	TaskEvolvingRequest TaskKind = "evolving_request"
)

// CommPattern selects the traffic shape of a TaskComm.
type CommPattern string

// Communication patterns. The model translates each into per-node link
// loads; Bytes always denotes the payload size per node pair step, matching
// how applications report message sizes.
const (
	// PatternAllToAll: every node exchanges Bytes with every other node.
	// Per-node link traffic: Bytes * (n-1).
	PatternAllToAll CommPattern = "alltoall"
	// PatternAllReduce: ring allreduce of a Bytes-sized buffer. Per-node
	// link traffic: 2 * Bytes * (n-1)/n.
	PatternAllReduce CommPattern = "allreduce"
	// PatternRing: each node sends Bytes to its right neighbour. Per-node
	// link traffic: Bytes.
	PatternRing CommPattern = "ring"
	// PatternBroadcast: node 0 sends Bytes to every other node (binomial
	// tree; root link carries Bytes * ceil(log2 n)).
	PatternBroadcast CommPattern = "bcast"
	// PatternGather: every node sends Bytes to node 0 whose link carries
	// Bytes * (n-1).
	PatternGather CommPattern = "gather"
)

// IOTarget selects the storage tier of a TaskRead/TaskWrite.
type IOTarget string

// Storage tiers.
const (
	// TargetPFS is the shared parallel file system.
	TargetPFS IOTarget = "pfs"
	// TargetBB is the burst-buffer tier (node-local or shared, per the
	// platform).
	TargetBB IOTarget = "bb"
)

// Task is one step inside a phase. Tasks of a phase run sequentially on the
// job's current allocation.
type Task struct {
	// Kind selects the semantics.
	Kind TaskKind
	// Name is an optional label for traces.
	Name string
	// Model gives the task's magnitude: per-node flops for compute, payload
	// bytes for comm (per the pattern's definition), total bytes for I/O
	// (striped over the allocation), seconds for delay, and the desired
	// node count for evolving requests.
	Model *Model
	// Pattern applies to TaskComm.
	Pattern CommPattern
	// Target applies to TaskRead/TaskWrite.
	Target IOTarget
}

// Validate checks internal consistency; allowed is the permitted variable
// set for model expressions.
func (t *Task) Validate(allowed map[string]bool) error {
	if t.Model == nil {
		return fmt.Errorf("task %q: missing cost model", t.describe())
	}
	if err := t.Model.Validate(allowed); err != nil {
		return fmt.Errorf("task %q: %w", t.describe(), err)
	}
	switch t.Kind {
	case TaskCompute, TaskDelay, TaskEvolvingRequest:
		// No extra fields.
	case TaskComm:
		switch t.Pattern {
		case PatternAllToAll, PatternAllReduce, PatternRing, PatternBroadcast, PatternGather:
		case "":
			return fmt.Errorf("task %q: comm task needs a pattern", t.describe())
		default:
			return fmt.Errorf("task %q: unknown comm pattern %q", t.describe(), t.Pattern)
		}
	case TaskRead, TaskWrite:
		switch t.Target {
		case TargetPFS, TargetBB:
		case "":
			return fmt.Errorf("task %q: I/O task needs a target", t.describe())
		default:
			return fmt.Errorf("task %q: unknown I/O target %q", t.describe(), t.Target)
		}
	default:
		return fmt.Errorf("task %q: unknown kind %q", t.describe(), t.Kind)
	}
	return nil
}

func (t *Task) describe() string {
	if t.Name != "" {
		return t.Name
	}
	return string(t.Kind)
}

// Phase is a stage of the application. A phase's tasks run in order; a
// phase with Iterations > 1 repeats them. If SchedulingPoint is true, the
// job exposes a scheduling point after every iteration — the only places
// where malleable reconfigurations and evolving-request grants are applied.
type Phase struct {
	// Name labels the phase in traces.
	Name string
	// Iterations is how many times the task list runs (default 1).
	Iterations int
	// SchedulingPoint exposes a reconfiguration opportunity after each
	// iteration.
	SchedulingPoint bool
	// Tasks is the body of the phase.
	Tasks []Task
}

// Validate checks the phase.
func (p *Phase) Validate(allowed map[string]bool) error {
	if p.Iterations < 0 {
		return fmt.Errorf("phase %q: negative iterations", p.Name)
	}
	if len(p.Tasks) == 0 {
		return fmt.Errorf("phase %q: no tasks", p.Name)
	}
	for i := range p.Tasks {
		if err := p.Tasks[i].Validate(allowed); err != nil {
			return fmt.Errorf("phase %q: %w", p.Name, err)
		}
	}
	return nil
}

// EffectiveIterations returns Iterations with the default of 1 applied.
func (p *Phase) EffectiveIterations() int {
	if p.Iterations <= 0 {
		return 1
	}
	return p.Iterations
}

// Application is a job's behaviour: an ordered list of phases.
type Application struct {
	Phases []Phase
}

// Validate checks every phase; argNames are the job's argument variables.
func (a *Application) Validate(argNames []string) error {
	allowed := engineVars(argNames)
	for i := range a.Phases {
		if err := a.Phases[i].Validate(allowed); err != nil {
			return fmt.Errorf("application phase %d: %w", i, err)
		}
	}
	return nil
}

// TotalSchedulingPoints counts the scheduling points the application
// exposes over its lifetime.
func (a *Application) TotalSchedulingPoints() int {
	total := 0
	for i := range a.Phases {
		p := &a.Phases[i]
		if p.SchedulingPoint {
			total += p.EffectiveIterations()
		}
	}
	return total
}

// HasEvolvingRequests reports whether any task issues evolving requests.
func (a *Application) HasEvolvingRequests() bool {
	for i := range a.Phases {
		for j := range a.Phases[i].Tasks {
			if a.Phases[i].Tasks[j].Kind == TaskEvolvingRequest {
				return true
			}
		}
	}
	return false
}
