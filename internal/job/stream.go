package job

import (
	"fmt"

	"repro/internal/des"
)

// Stream produces the synthetic workload of Generate one job at a time,
// in submission order, without materialising the whole job list: the
// working set is the generator state plus caches of parsed model
// expressions and application templates, both bounded by the profile mix
// rather than the job count. A million-job workload streams in constant
// memory.
//
// Stream and Generate are the same generator — Generate drains a Stream —
// so a given Config yields identical jobs either way.
type Stream struct {
	cfg        Config
	arrivalRNG *des.RNG
	jobRNG     *des.RNG
	types      []Type
	typeCum    []float64
	profCum    []float64
	ckptModel  *Model

	// models caches parsed expressions and apps caches assembled
	// application templates: jobs differ only through their Args, so the
	// distinct expression strings and phase structures are bounded by the
	// profile mix, not the job count. Sharing is safe — the engine treats
	// applications and models as immutable.
	models map[string]*Model
	apps   map[appKey]*Application

	now float64
	idx int
}

// appKey identifies one shareable application template.
type appKey struct {
	kind       ProfileKind
	iters      int
	schedPoint bool
	// minN/maxN parameterize the evolving request schedule (0 otherwise).
	minN, maxN int
}

// NewStream validates cfg and positions the stream before the first job.
func NewStream(cfg Config) (*Stream, error) {
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("job: generator count must be positive")
	}
	if cfg.Nodes[0] <= 0 || cfg.Nodes[1] < cfg.Nodes[0] {
		return nil, fmt.Errorf("job: invalid node range %v", cfg.Nodes)
	}
	if cfg.MachineNodes <= 0 {
		cfg.MachineNodes = cfg.Nodes[1]
	}
	if cfg.NodeSpeed <= 0 {
		return nil, fmt.Errorf("job: node speed must be positive")
	}
	if cfg.WallTimeFactor == 0 {
		cfg.WallTimeFactor = 2.5
	}
	if len(cfg.Profiles) == 0 {
		cfg.Profiles = DefaultProfiles()
	}
	if cfg.CheckpointTarget == "" {
		cfg.CheckpointTarget = TargetPFS
	}
	s := &Stream{
		cfg:    cfg,
		models: map[string]*Model{},
		apps:   map[appKey]*Application{},
	}
	if cfg.CheckpointInterval != "" {
		m, err := NewExprModel(cfg.CheckpointInterval)
		if err != nil {
			return nil, fmt.Errorf("job: checkpoint interval: %w", err)
		}
		s.ckptModel = m
	}
	rng := des.NewRNG(cfg.Seed)
	s.arrivalRNG = rng.Split()
	s.jobRNG = rng.Split()
	s.types, s.typeCum = normalizeShares(cfg.TypeShares)
	s.profCum = profileCum(s.cfg.Profiles)
	return s, nil
}

// Count returns the total number of jobs the stream produces.
func (s *Stream) Count() int { return s.cfg.Count }

// MachineNodes returns the (defaulted) machine size jobs are sized for.
func (s *Stream) MachineNodes() int { return s.cfg.MachineNodes }

// Next returns the next job, already validated against the machine size,
// or (nil, nil) once the stream is exhausted. Submit times are
// non-decreasing and IDs are assigned densely in stream order, matching
// what Workload.Sort would produce.
func (s *Stream) Next() (*Job, error) {
	if s.idx >= s.cfg.Count {
		return nil, nil
	}
	i := s.idx
	s.idx++
	s.now += interArrival(s.arrivalRNG, s.cfg.Arrival)
	prof := &s.cfg.Profiles[pick(s.jobRNG.Float64(), s.profCum)]
	jtype := Rigid
	if len(s.types) > 0 {
		jtype = s.types[pick(s.jobRNG.Float64(), s.typeCum)]
	}
	j, err := s.synthesize(prof, jtype, i, s.now)
	if err != nil {
		return nil, err
	}
	j.ID = ID(i)
	j.CheckpointInterval = s.ckptModel
	if s.cfg.Users > 0 {
		j.User = fmt.Sprintf("user%d", s.jobRNG.Intn(s.cfg.Users))
	}
	if err := j.Validate(s.cfg.MachineNodes); err != nil {
		return nil, fmt.Errorf("job: generated workload invalid: %w", err)
	}
	return j, nil
}

// model parses expr once and serves it from the cache thereafter.
func (s *Stream) model(expr string) *Model {
	m, ok := s.models[expr]
	if !ok {
		m = MustExprModel(expr)
		s.models[expr] = m
	}
	return m
}

// synthesize builds one job from a profile.
func (s *Stream) synthesize(prof *Profile, jtype Type, idx int, submit float64) (*Job, error) {
	cfg, rng := &s.cfg, s.jobRNG
	base := rng.PowerOfTwo(cfg.Nodes[0], min(cfg.Nodes[1], cfg.MachineNodes))
	iters := drawIntRange(rng, prof.Iterations)
	computeSecs := drawRange(rng, prof.ComputeSecs)
	serial := drawRange(rng, prof.SerialFraction)
	ioBytes := drawRange(rng, prof.IOBytes)
	commBytes := 0.0
	if prof.CommBytes[1] > 0 {
		commBytes = drawRange(rng, prof.CommBytes)
	}

	// Total flops per iteration chosen so the compute task takes
	// computeSecs at the base allocation under the Amdahl model below.
	amdahlBase := serial + (1-serial)/float64(base)
	flopsIter := computeSecs * cfg.NodeSpeed / amdahlBase

	j := &Job{
		Name:       fmt.Sprintf("%s%d", prof.Name, idx),
		Type:       jtype,
		SubmitTime: submit,
		Args: map[string]float64{
			"flops_iter": flopsIter,
			"serial":     serial,
			"io_bytes":   ioBytes,
			"comm_bytes": commBytes,
		},
	}
	switch jtype {
	case Rigid, Moldable:
		j.NumNodes = base
		j.NumNodesMin = max(1, base/4)
		j.NumNodesMax = min(base*2, cfg.MachineNodes)
	case Malleable, Evolving:
		j.NumNodesMin = max(1, base/4)
		j.NumNodesMax = min(base*4, cfg.MachineNodes)
		j.NumNodes = base
		// Malleable reconfigurations redistribute the working set.
		j.ReconfigCost = s.model("0.5 + io_bytes / (num_nodes_new * 10G)")
	}

	key := appKey{kind: prof.Kind, iters: iters, schedPoint: jtype.Adaptive()}
	if jtype == Evolving {
		key.minN, key.maxN = j.NumNodesMin, j.NumNodesMax
	}
	app, ok := s.apps[key]
	if !ok {
		var err error
		app, err = s.buildApp(key)
		if err != nil {
			return nil, err
		}
		s.apps[key] = app
	}
	j.App = app

	if cfg.WallTimeFactor > 0 {
		// Adaptive jobs may be shrunk down to their minimum allocation, so
		// the walltime estimate must cover the worst (smallest) case or a
		// shrink-happy scheduler would get jobs killed.
		worstScale := 1.0
		if jtype.Adaptive() {
			worstScale = float64(base) / float64(j.NumNodesMin)
		}
		j.WallTimeLimit = cfg.WallTimeFactor * estimateRuntime(iters, computeSecs*worstScale, commBytes, ioBytes, prof.Kind)
	}
	return j, nil
}

// buildApp assembles the application template for key.
func (s *Stream) buildApp(key appKey) (*Application, error) {
	computeModel := s.model("flops_iter * (serial + (1-serial)/num_nodes)")
	iters, schedPoint := key.iters, key.schedPoint

	var phases []Phase
	switch key.kind {
	case ProfileComputeBound:
		phases = []Phase{
			{Name: "load", Tasks: []Task{
				{Kind: TaskRead, Model: s.model("io_bytes"), Target: TargetPFS},
			}},
			{Name: "solve", Iterations: iters, SchedulingPoint: schedPoint, Tasks: []Task{
				{Kind: TaskCompute, Model: computeModel},
				{Kind: TaskComm, Model: s.model("comm_bytes"), Pattern: PatternAllReduce},
			}},
			{Name: "store", Tasks: []Task{
				{Kind: TaskWrite, Model: s.model("io_bytes"), Target: TargetPFS},
			}},
		}
	case ProfileIOBound:
		phases = []Phase{
			{Name: "load", Tasks: []Task{
				{Kind: TaskRead, Model: s.model("io_bytes"), Target: TargetPFS},
			}},
			{Name: "step", Iterations: iters, SchedulingPoint: schedPoint, Tasks: []Task{
				{Kind: TaskCompute, Model: computeModel},
				{Kind: TaskWrite, Model: s.model("io_bytes"), Target: s.cfg.CheckpointTarget, Name: "checkpoint"},
			}},
		}
	case ProfileMixed:
		phases = []Phase{
			{Name: "load", Tasks: []Task{
				{Kind: TaskRead, Model: s.model("io_bytes"), Target: TargetPFS},
			}},
			{Name: "step", Iterations: iters, SchedulingPoint: schedPoint, Tasks: []Task{
				{Kind: TaskCompute, Model: computeModel},
				{Kind: TaskComm, Model: s.model("comm_bytes"), Pattern: PatternAllToAll},
				{Kind: TaskWrite, Model: s.model("io_bytes / iterations"), Target: s.cfg.CheckpointTarget},
			}},
			{Name: "store", Tasks: []Task{
				{Kind: TaskWrite, Model: s.model("io_bytes"), Target: TargetPFS},
			}},
		}
	default:
		return nil, fmt.Errorf("job: unknown profile kind %q", key.kind)
	}

	if key.maxN > 0 {
		// The application asks for its maximum halfway through and shrinks
		// back near the end, modelling an AMR-style load curve.
		grow := s.model(fmt.Sprintf("%d", key.maxN))
		shrink := s.model(fmt.Sprintf("%d", key.minN))
		model := s.model(fmt.Sprintf(
			"iteration < %d ? (%s) : (iteration >= %d ? (%s) : num_nodes)",
			max(1, iters/2), grow.String(), iters-max(1, iters/10), shrink.String()))
		for pi := range phases {
			if phases[pi].SchedulingPoint {
				body := phases[pi].Tasks
				phases[pi].Tasks = append([]Task{{Kind: TaskEvolvingRequest, Model: model, Name: "evolve"}}, body...)
				break
			}
		}
	}
	return &Application{Phases: phases}, nil
}
