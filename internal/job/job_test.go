package job

import (
	"strings"
	"testing"

	"repro/internal/expr"
)

func simpleApp() *Application {
	return &Application{Phases: []Phase{{
		Name:  "main",
		Tasks: []Task{{Kind: TaskCompute, Model: MustExprModel("flops / num_nodes")}},
	}}}
}

func validRigid() *Job {
	return &Job{
		Name:       "r",
		Type:       Rigid,
		SubmitTime: 0,
		NumNodes:   4,
		Args:       map[string]float64{"flops": 1e12},
		App:        simpleApp(),
	}
}

func TestTypeHelpers(t *testing.T) {
	if !Malleable.Adaptive() || !Evolving.Adaptive() {
		t.Error("malleable/evolving must be adaptive")
	}
	if Rigid.Adaptive() || Moldable.Adaptive() {
		t.Error("rigid/moldable must not be adaptive")
	}
	for _, typ := range []Type{Rigid, Moldable, Malleable, Evolving} {
		if !typ.Valid() {
			t.Errorf("%s reported invalid", typ)
		}
	}
	if Type("elastic").Valid() {
		t.Error("unknown type reported valid")
	}
}

func TestJobValidate(t *testing.T) {
	j := validRigid()
	if err := j.Validate(16); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Job)
		substr string
	}{
		{"bad type", func(j *Job) { j.Type = "weird" }, "unknown type"},
		{"negative submit", func(j *Job) { j.SubmitTime = -1 }, "submit"},
		{"negative walltime", func(j *Job) { j.WallTimeLimit = -5 }, "walltime"},
		{"zero nodes", func(j *Job) { j.NumNodes = 0 }, "num_nodes"},
		{"too large", func(j *Job) { j.NumNodes = 99 }, "machine"},
		{"no app", func(j *Job) { j.App = nil }, "empty application"},
		{"bad var", func(j *Job) {
			j.App.Phases[0].Tasks[0].Model = MustExprModel("nope / num_nodes")
		}, "nope"},
		{"malleable bad range", func(j *Job) {
			j.Type = Malleable
			j.NumNodesMin = 8
			j.NumNodesMax = 4
		}, "node range"},
		{"malleable min too big", func(j *Job) {
			j.Type = Malleable
			j.NumNodesMin = 99
			j.NumNodesMax = 120
		}, "machine size"},
		{"bad reconfig var", func(j *Job) {
			j.ReconfigCost = MustExprModel("mystery")
		}, "mystery"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := validRigid()
			tc.mutate(j)
			err := j.Validate(16)
			if err == nil {
				t.Fatal("Validate passed, want error")
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Errorf("error %q does not mention %q", err, tc.substr)
			}
		})
	}
}

func TestReconfigVarsAllowed(t *testing.T) {
	j := validRigid()
	j.Type = Malleable
	j.NumNodesMin, j.NumNodesMax = 2, 8
	j.ReconfigCost = MustExprModel("0.1 + flops/(num_nodes_new*1T) + num_nodes_old*0")
	if err := j.Validate(16); err != nil {
		t.Errorf("reconfig vars rejected: %v", err)
	}
}

func TestMinMaxNodes(t *testing.T) {
	j := validRigid()
	if j.MinNodes() != 4 || j.MaxNodes() != 4 {
		t.Errorf("rigid min/max = %d/%d", j.MinNodes(), j.MaxNodes())
	}
	j.Type = Malleable
	j.NumNodesMin, j.NumNodesMax = 2, 8
	if j.MinNodes() != 2 || j.MaxNodes() != 8 {
		t.Errorf("malleable min/max = %d/%d", j.MinNodes(), j.MaxNodes())
	}
}

func TestTaskValidate(t *testing.T) {
	allowed := engineVars([]string{"b"})
	cases := []struct {
		name string
		task Task
		ok   bool
	}{
		{"compute", Task{Kind: TaskCompute, Model: MustExprModel("b/num_nodes")}, true},
		{"comm ok", Task{Kind: TaskComm, Model: ConstModel(1), Pattern: PatternAllReduce}, true},
		{"comm no pattern", Task{Kind: TaskComm, Model: ConstModel(1)}, false},
		{"comm bad pattern", Task{Kind: TaskComm, Model: ConstModel(1), Pattern: "mesh"}, false},
		{"read ok", Task{Kind: TaskRead, Model: ConstModel(1), Target: TargetPFS}, true},
		{"write bb", Task{Kind: TaskWrite, Model: ConstModel(1), Target: TargetBB}, true},
		{"io no target", Task{Kind: TaskRead, Model: ConstModel(1)}, false},
		{"io bad target", Task{Kind: TaskWrite, Model: ConstModel(1), Target: "tape"}, false},
		{"delay", Task{Kind: TaskDelay, Model: ConstModel(5)}, true},
		{"evolve", Task{Kind: TaskEvolvingRequest, Model: ConstModel(8)}, true},
		{"no model", Task{Kind: TaskCompute}, false},
		{"bad kind", Task{Kind: "sleep", Model: ConstModel(1)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.task.Validate(allowed)
			if tc.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestPhaseValidate(t *testing.T) {
	allowed := engineVars(nil)
	p := Phase{Tasks: []Task{{Kind: TaskDelay, Model: ConstModel(1)}}}
	if err := p.Validate(allowed); err != nil {
		t.Errorf("valid phase rejected: %v", err)
	}
	empty := Phase{Name: "e"}
	if err := empty.Validate(allowed); err == nil {
		t.Error("empty phase accepted")
	}
	neg := Phase{Iterations: -1, Tasks: p.Tasks}
	if err := neg.Validate(allowed); err == nil {
		t.Error("negative iterations accepted")
	}
}

func TestEffectiveIterations(t *testing.T) {
	if (&Phase{}).EffectiveIterations() != 1 {
		t.Error("default iterations != 1")
	}
	if (&Phase{Iterations: 7}).EffectiveIterations() != 7 {
		t.Error("explicit iterations lost")
	}
}

func TestApplicationHelpers(t *testing.T) {
	app := &Application{Phases: []Phase{
		{Iterations: 5, SchedulingPoint: true, Tasks: []Task{{Kind: TaskDelay, Model: ConstModel(1)}}},
		{Tasks: []Task{{Kind: TaskDelay, Model: ConstModel(1)}}},
		{Iterations: 3, SchedulingPoint: true, Tasks: []Task{{Kind: TaskDelay, Model: ConstModel(1)}}},
	}}
	if got := app.TotalSchedulingPoints(); got != 8 {
		t.Errorf("TotalSchedulingPoints = %d, want 8", got)
	}
	if app.HasEvolvingRequests() {
		t.Error("no evolving requests present")
	}
	app.Phases[0].Tasks = append(app.Phases[0].Tasks, Task{Kind: TaskEvolvingRequest, Model: ConstModel(4)})
	if !app.HasEvolvingRequests() {
		t.Error("evolving request not detected")
	}
}

func TestModelExpr(t *testing.T) {
	m := MustExprModel("flops / num_nodes")
	env := expr.Vars{"flops": 100.0, "num_nodes": 4}
	v, err := m.Eval(env, 4)
	if err != nil || v != 25 {
		t.Errorf("Eval = %v, %v", v, err)
	}
	if m.IsVector() {
		t.Error("expression model reported vector")
	}
}

func TestModelVector(t *testing.T) {
	m, err := NewVectorModel(map[int]float64{1: 100, 4: 30, 16: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsVector() {
		t.Error("vector model not reported")
	}
	check := func(nodes int, want float64) {
		t.Helper()
		v, err := m.Eval(nil, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Errorf("Eval(%d) = %v, want %v", nodes, v, want)
		}
	}
	check(1, 100)
	check(4, 30)
	check(16, 10)
	// Clamping beyond the ends.
	check(32, 10)
	// Note: 0 nodes errors.
	if _, err := m.Eval(nil, 0); err == nil {
		t.Error("Eval(0) succeeded")
	}
	// Interpolation between points is monotone and in range.
	v8, _ := m.Eval(nil, 8)
	if v8 >= 30 || v8 <= 10 {
		t.Errorf("interpolated Eval(8) = %v, want within (10,30)", v8)
	}
}

func TestVectorModelGeometricInterpolation(t *testing.T) {
	// With points (2,10) and (8,40), geometric interpolation at 4 gives
	// 10 * (40/10)^(log(4/2)/log(8/2)) = 10 * 4^0.5 = 20.
	m, err := NewVectorModel(map[int]float64{2: 10, 8: 40})
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Eval(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v < 19.999 || v > 20.001 {
		t.Errorf("Eval(4) = %v, want 20", v)
	}
}

func TestVectorModelErrors(t *testing.T) {
	if _, err := NewVectorModel(nil); err == nil {
		t.Error("empty vector accepted")
	}
	if _, err := NewVectorModel(map[int]float64{0: 1}); err == nil {
		t.Error("zero node count accepted")
	}
	if _, err := NewVectorModel(map[int]float64{2: -1}); err == nil {
		t.Error("negative value accepted")
	}
}

func TestModelJSON(t *testing.T) {
	var m Model
	if err := m.UnmarshalJSON([]byte(`"a+1"`)); err != nil {
		t.Fatal(err)
	}
	if m.String() != "a+1" {
		t.Errorf("String = %q", m.String())
	}
	if err := m.UnmarshalJSON([]byte(`42`)); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Eval(nil, 1)
	if v != 42 {
		t.Errorf("const model = %v", v)
	}
	if err := m.UnmarshalJSON([]byte(`{"2": 10, "8": 40}`)); err != nil {
		t.Fatal(err)
	}
	if !m.IsVector() {
		t.Error("vector JSON not detected")
	}
	out, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var m2 Model
	if err := m2.UnmarshalJSON(out); err != nil {
		t.Fatal(err)
	}
	v2, _ := m2.Eval(nil, 8)
	if v2 != 40 {
		t.Errorf("round-tripped vector Eval(8) = %v", v2)
	}
	// Errors.
	for _, bad := range []string{`"("`, `{"x": 1}`, `[1]`, `{"2": 1, "0": 5}`} {
		var mm Model
		if err := mm.UnmarshalJSON([]byte(bad)); err == nil {
			t.Errorf("bad model %s accepted", bad)
		}
	}
}
