package job

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/expr"
)

func logf(x float64) float64    { return math.Log(x) }
func powf(a, b float64) float64 { return math.Pow(a, b) }

// Model is a performance model: it maps the evaluation environment (current
// allocation size, iteration number, job arguments, ...) to a magnitude.
//
// Two forms exist, mirroring ElastiSim's expression and vector models:
//
//   - expression models evaluate an arithmetic expression;
//   - vector models tabulate explicit values per node count, with
//     geometric interpolation between listed counts (costs in HPC scale
//     multiplicatively, so interpolation happens in log space).
type Model struct {
	expression *expr.Expr
	vector     []vectorEntry // sorted by nodes
}

type vectorEntry struct {
	nodes int
	value float64
}

// NewExprModel builds a model from expression source.
func NewExprModel(src string) (*Model, error) {
	e, err := expr.Compile(src)
	if err != nil {
		return nil, err
	}
	return &Model{expression: e}, nil
}

// MustExprModel is NewExprModel for sources known correct at build time.
func MustExprModel(src string) *Model {
	m, err := NewExprModel(src)
	if err != nil {
		panic(err)
	}
	return m
}

// ConstModel returns a model that always yields v.
func ConstModel(v float64) *Model {
	return &Model{expression: expr.Constant(v)}
}

// NewVectorModel builds a model from explicit (nodes -> value) points.
func NewVectorModel(points map[int]float64) (*Model, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("job: empty vector model")
	}
	m := &Model{}
	for n, v := range points {
		if n <= 0 {
			return nil, fmt.Errorf("job: vector model with non-positive node count %d", n)
		}
		if v < 0 {
			return nil, fmt.Errorf("job: vector model with negative value %v at %d nodes", v, n)
		}
		m.vector = append(m.vector, vectorEntry{nodes: n, value: v})
	}
	sort.Slice(m.vector, func(i, j int) bool { return m.vector[i].nodes < m.vector[j].nodes })
	return m, nil
}

// IsVector reports whether this is a vector model.
func (m *Model) IsVector() bool { return m.vector != nil }

// Eval computes the magnitude. numNodes must be the job's current
// allocation size; env supplies all expression variables (including
// num_nodes itself, for expression models).
func (m *Model) Eval(env expr.Env, numNodes int) (float64, error) {
	if m.expression != nil {
		return m.expression.Eval(env)
	}
	return m.evalVector(numNodes)
}

func (m *Model) evalVector(numNodes int) (float64, error) {
	if numNodes <= 0 {
		return 0, fmt.Errorf("job: vector model evaluated with %d nodes", numNodes)
	}
	v := m.vector
	// Exact hit or clamp to the ends.
	if numNodes <= v[0].nodes {
		return v[0].value, nil
	}
	if numNodes >= v[len(v)-1].nodes {
		return v[len(v)-1].value, nil
	}
	i := sort.Search(len(v), func(i int) bool { return v[i].nodes >= numNodes })
	if v[i].nodes == numNodes {
		return v[i].value, nil
	}
	lo, hi := v[i-1], v[i]
	// Geometric interpolation in node count.
	frac := (logf(float64(numNodes)) - logf(float64(lo.nodes))) /
		(logf(float64(hi.nodes)) - logf(float64(lo.nodes)))
	if lo.value == 0 || hi.value == 0 {
		// Degenerate: fall back to linear.
		return lo.value + frac*(hi.value-lo.value), nil
	}
	return lo.value * powf(hi.value/lo.value, frac), nil
}

// Validate checks expression variables against the allowed set. Vector
// models are always valid.
func (m *Model) Validate(allowed map[string]bool) error {
	if m.expression != nil {
		return m.expression.Validate(allowed)
	}
	if len(m.vector) == 0 {
		return fmt.Errorf("job: empty model")
	}
	return nil
}

// String renders the model for diagnostics.
func (m *Model) String() string {
	if m.expression != nil {
		return m.expression.Source()
	}
	return fmt.Sprintf("vector(%d points)", len(m.vector))
}

// UnmarshalJSON accepts a number, an expression string, or an object
// {"<nodes>": value, ...} for vector models.
func (m *Model) UnmarshalJSON(data []byte) error {
	var num float64
	if err := json.Unmarshal(data, &num); err == nil {
		*m = *ConstModel(num)
		return nil
	}
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		built, err := NewExprModel(s)
		if err != nil {
			return err
		}
		*m = *built
		return nil
	}
	var table map[string]float64
	if err := json.Unmarshal(data, &table); err == nil {
		points := make(map[int]float64, len(table))
		for k, v := range table {
			n, err := strconv.Atoi(k)
			if err != nil {
				return fmt.Errorf("job: vector model key %q is not a node count", k)
			}
			points[n] = v
		}
		built, err := NewVectorModel(points)
		if err != nil {
			return err
		}
		*m = *built
		return nil
	}
	return fmt.Errorf("job: model must be a number, expression string, or vector object, got %s", data)
}

// MarshalJSON emits the canonical JSON form.
func (m *Model) MarshalJSON() ([]byte, error) {
	if m.expression != nil {
		return json.Marshal(m.expression.Source())
	}
	table := make(map[string]float64, len(m.vector))
	for _, e := range m.vector {
		table[strconv.Itoa(e.nodes)] = e.value
	}
	return json.Marshal(table)
}
