package job

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/des"
)

// ArrivalKind selects the job inter-arrival process.
type ArrivalKind string

// Arrival processes.
const (
	// ArrivalPoisson draws exponential inter-arrival times (rate = Rate).
	ArrivalPoisson ArrivalKind = "poisson"
	// ArrivalWeibull draws Weibull inter-arrival times (Shape, Scale);
	// shape < 1 produces the bursty submissions seen in real traces.
	ArrivalWeibull ArrivalKind = "weibull"
	// ArrivalUniform spaces submissions evenly at 1/Rate.
	ArrivalUniform ArrivalKind = "uniform"
	// ArrivalAll submits every job at time zero (saturation experiments).
	ArrivalAll ArrivalKind = "all"
)

// Arrival configures the submission process.
type Arrival struct {
	Kind ArrivalKind
	// Rate is jobs per second (poisson, uniform).
	Rate float64
	// Shape and Scale parameterize the Weibull inter-arrival distribution.
	Shape float64
	Scale float64
}

// ProfileKind selects an application template.
type ProfileKind string

// Application templates used by the generator.
const (
	// ProfileComputeBound: iterative compute + allreduce, I/O only at the
	// edges (read input, write result).
	ProfileComputeBound ProfileKind = "compute_bound"
	// ProfileIOBound: iterative compute + checkpoint writes; I/O dominates.
	ProfileIOBound ProfileKind = "io_bound"
	// ProfileMixed: compute, communication, and periodic I/O in every
	// iteration.
	ProfileMixed ProfileKind = "mixed"
)

// Profile describes one job class in the synthetic mix. Ranges are drawn
// log-uniformly.
type Profile struct {
	// Name labels jobs from this profile.
	Name string
	// Weight is the profile's relative share of generated jobs.
	Weight float64
	// Kind selects the application template.
	Kind ProfileKind
	// Iterations bounds the iterative phase's iteration count.
	Iterations [2]int
	// ComputeSecs bounds the per-iteration compute time (seconds) at the
	// job's base allocation.
	ComputeSecs [2]float64
	// CommBytes bounds the per-iteration allreduce payload (bytes);
	// ignored by ProfileIOBound.
	CommBytes [2]float64
	// IOBytes bounds the input/output (and checkpoint) volume in bytes.
	IOBytes [2]float64
	// SerialFraction bounds the Amdahl serial fraction of the compute.
	SerialFraction [2]float64
}

// Config drives Generate.
type Config struct {
	// Name labels the workload.
	Name string
	// Seed makes generation reproducible.
	Seed uint64
	// Count is the number of jobs.
	Count int
	// Arrival configures submissions.
	Arrival Arrival
	// Nodes bounds job base allocations (drawn as powers of two).
	Nodes [2]int
	// MachineNodes caps allocation requests (and malleable maxima).
	MachineNodes int
	// NodeSpeed (flops/s) converts target compute seconds into flops.
	NodeSpeed float64
	// TypeShares is the distribution over job flexibility classes. Shares
	// need not sum to 1; they are normalized. Empty means all rigid.
	TypeShares map[Type]float64
	// Profiles is the class mix; empty selects DefaultProfiles.
	Profiles []Profile
	// WallTimeFactor scales the analytic runtime estimate into the
	// user-provided walltime limit (default 2.5; <=0 disables limits).
	WallTimeFactor float64
	// MalleableTarget selects the I/O target for checkpoints: TargetPFS
	// (default) or TargetBB.
	CheckpointTarget IOTarget
	// Users spreads jobs over this many synthetic accounts ("user0"...)
	// for fair-share experiments (0 = no user attribution).
	Users int
	// CheckpointInterval, when non-empty, tags every generated job with
	// this checkpoint_interval expression (seconds between restart
	// checkpoints; "0" checkpoints every iteration). Empty leaves jobs
	// without checkpoints — a node failure restarts them from scratch.
	CheckpointInterval string
}

// DefaultProfiles is a balanced mix inspired by the workload classes HPC
// papers evaluate on: two thirds compute-bound simulation jobs, the rest
// split between I/O-heavy and mixed workloads.
func DefaultProfiles() []Profile {
	return []Profile{
		{
			Name: "sim", Weight: 4, Kind: ProfileComputeBound,
			Iterations:     [2]int{10, 40},
			ComputeSecs:    [2]float64{20, 120},
			CommBytes:      [2]float64{16e6, 256e6},
			IOBytes:        [2]float64{1e9, 32e9},
			SerialFraction: [2]float64{0.01, 0.08},
		},
		{
			Name: "ckpt", Weight: 1, Kind: ProfileIOBound,
			Iterations:     [2]int{5, 20},
			ComputeSecs:    [2]float64{10, 60},
			IOBytes:        [2]float64{32e9, 256e9},
			SerialFraction: [2]float64{0.01, 0.05},
		},
		{
			Name: "mixed", Weight: 1, Kind: ProfileMixed,
			Iterations:     [2]int{8, 30},
			ComputeSecs:    [2]float64{15, 90},
			CommBytes:      [2]float64{32e6, 512e6},
			IOBytes:        [2]float64{4e9, 64e9},
			SerialFraction: [2]float64{0.02, 0.1},
		},
	}
}

// Generate builds a reproducible synthetic workload. It is Stream drained
// into memory: the same Config streams the identical jobs through
// NewStream/Next when the workload is too large to hold at once.
func Generate(cfg Config) (*Workload, error) {
	s, err := NewStream(cfg)
	if err != nil {
		return nil, err
	}
	w := &Workload{Name: cfg.Name, Jobs: make([]*Job, 0, cfg.Count)}
	for {
		j, err := s.Next()
		if err != nil {
			return nil, err
		}
		if j == nil {
			break
		}
		w.Jobs = append(w.Jobs, j)
	}
	w.Sort()
	if err := w.Validate(s.MachineNodes()); err != nil {
		return nil, fmt.Errorf("job: generated workload invalid: %w", err)
	}
	return w, nil
}

func normalizeShares(shares map[Type]float64) ([]Type, []float64) {
	if len(shares) == 0 {
		return nil, nil
	}
	types := make([]Type, 0, len(shares))
	for t := range shares {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	total := 0.0
	for _, t := range types {
		total += shares[t]
	}
	cum := make([]float64, len(types))
	acc := 0.0
	for i, t := range types {
		acc += shares[t] / total
		cum[i] = acc
	}
	return types, cum
}

func profileCum(profiles []Profile) []float64 {
	total := 0.0
	for i := range profiles {
		if profiles[i].Weight <= 0 {
			profiles[i].Weight = 1
		}
		total += profiles[i].Weight
	}
	cum := make([]float64, len(profiles))
	acc := 0.0
	for i := range profiles {
		acc += profiles[i].Weight / total
		cum[i] = acc
	}
	return cum
}

func pick(u float64, cum []float64) int {
	for i, c := range cum {
		if u < c {
			return i
		}
	}
	return len(cum) - 1
}

func interArrival(rng *des.RNG, a Arrival) float64 {
	switch a.Kind {
	case ArrivalPoisson:
		return rng.Exp(a.Rate)
	case ArrivalWeibull:
		return rng.Weibull(a.Shape, a.Scale)
	case ArrivalUniform:
		return 1 / a.Rate
	case ArrivalAll, "":
		return 0
	default:
		panic(fmt.Sprintf("job: unknown arrival kind %q", a.Kind))
	}
}

func drawRange(rng *des.RNG, r [2]float64) float64 {
	if r[0] == r[1] {
		return r[0]
	}
	return rng.LogUniform(r[0], r[1])
}

func drawIntRange(rng *des.RNG, r [2]int) int {
	if r[0] >= r[1] {
		return r[0]
	}
	return r[0] + rng.Intn(r[1]-r[0]+1)
}

// estimateRuntime is a crude analytic bound used only to derive walltime
// limits; it deliberately overestimates I/O (no overlap, full contention
// ignored).
func estimateRuntime(iters int, computeSecs, commBytes, ioBytes float64, kind ProfileKind) float64 {
	ioTime := 3 * ioBytes / 1e9 // assume ~1 GB/s effective per job
	commTime := float64(iters) * (2 * commBytes / 1e9)
	computeTime := float64(iters) * computeSecs
	switch kind {
	case ProfileIOBound:
		ioTime += float64(iters) * ioBytes / 1e9
	case ProfileMixed:
		ioTime += ioBytes / 1e9
	}
	total := computeTime + commTime + ioTime
	return math.Max(total, 60)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
