package job

import (
	"strings"
	"testing"
)

func depJob(id int, name string, submit float64, deps ...ID) *Job {
	j := &Job{
		ID: ID(id), Name: name, Type: Rigid, SubmitTime: submit, NumNodes: 1,
		App:          simpleApp(),
		Args:         map[string]float64{"flops": 1e9},
		Dependencies: deps,
	}
	return j
}

func TestDependencyValidation(t *testing.T) {
	ok := &Workload{Jobs: []*Job{
		depJob(0, "a", 0),
		depJob(1, "b", 0, 0),
		depJob(2, "c", 0, 0, 1),
	}}
	if err := ok.Validate(4); err != nil {
		t.Errorf("valid DAG rejected: %v", err)
	}
	self := &Workload{Jobs: []*Job{depJob(0, "a", 0, 0)}}
	if err := self.Validate(4); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Errorf("self-dependency: %v", err)
	}
	unknown := &Workload{Jobs: []*Job{depJob(0, "a", 0, 7)}}
	if err := unknown.Validate(4); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown dependency: %v", err)
	}
	cycle := &Workload{Jobs: []*Job{
		depJob(0, "a", 0, 1),
		depJob(1, "b", 0, 0),
	}}
	if err := cycle.Validate(4); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle: %v", err)
	}
}

func TestSortRemapsDependencies(t *testing.T) {
	// Job "late" (ID 0) submits later than "early" (ID 1) which depends
	// on it. After Sort, IDs swap and the dependency must follow.
	late := depJob(0, "late", 100)
	early := depJob(1, "early", 10, 0) // depends on "late"
	w := &Workload{Jobs: []*Job{late, early}}
	w.Sort()
	if w.Jobs[0].Name != "early" || w.Jobs[1].Name != "late" {
		t.Fatalf("sort order wrong: %s, %s", w.Jobs[0].Name, w.Jobs[1].Name)
	}
	if len(w.Jobs[0].Dependencies) != 1 || w.Jobs[0].Dependencies[0] != 1 {
		t.Errorf("dependency not remapped: %v", w.Jobs[0].Dependencies)
	}
}

func TestWorkloadJSONDependenciesByName(t *testing.T) {
	src := `{
	  "jobs": [
	    {"name": "prep", "type": "rigid", "submit_time": 0, "num_nodes": 1,
	     "phases": [{"tasks": [{"type": "delay", "seconds": 1}]}]},
	    {"name": "main", "type": "rigid", "submit_time": 0, "num_nodes": 1,
	     "dependencies": ["prep"],
	     "phases": [{"tasks": [{"type": "delay", "seconds": 1}]}]}
	  ]
	}`
	w, err := ParseWorkload([]byte(src), 4)
	if err != nil {
		t.Fatal(err)
	}
	var mainJob *Job
	for _, j := range w.Jobs {
		if j.Name == "main" {
			mainJob = j
		}
	}
	if mainJob == nil || len(mainJob.Dependencies) != 1 {
		t.Fatalf("dependency lost: %+v", mainJob)
	}
	if w.Jobs[mainJob.Dependencies[0]].Name != "prep" {
		t.Errorf("dependency points at %q", w.Jobs[mainJob.Dependencies[0]].Name)
	}
	// Round trip preserves it.
	out, err := w.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ParseWorkload(out, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range w2.Jobs {
		if j.Name == "main" && len(j.Dependencies) != 1 {
			t.Errorf("round trip lost dependency")
		}
	}
	// Unknown dependency name.
	bad := strings.Replace(src, `"prep"]`, `"nope"]`, 1)
	if _, err := ParseWorkload([]byte(bad), 4); err == nil {
		t.Error("unknown dependency name accepted")
	}
}

func TestSWFPrecedingJobDependency(t *testing.T) {
	// Fields 10..17: status user group app queue partition preceding think.
	trace := `
  1  0   0  100  4 -1 -1  4  200 -1 1 1 1 1 1 1 -1 -1
  2  10  0  100  4 -1 -1  4  200 -1 1 1 1 1 1 1  1 -1
  3  20  0  100  4 -1 -1  4  200 -1 1 1 1 1 1 1  2 -1
`
	w, err := ParseSWF(strings.NewReader(trace), SWFOptions{NodeSpeed: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 3 {
		t.Fatalf("jobs %d", len(w.Jobs))
	}
	// Job 3 (index 2) preceded by trace job 2 (index 1).
	if deps := w.Jobs[2].Dependencies; len(deps) != 1 || deps[0] != 1 {
		t.Errorf("deps of third job: %v", deps)
	}
	// Job 2's preceding field is 1 -> depends on first job.
	if deps := w.Jobs[1].Dependencies; len(deps) != 1 || deps[0] != 0 {
		t.Errorf("deps of second job: %v", deps)
	}
	if len(w.Jobs[0].Dependencies) != 0 {
		t.Errorf("first job has deps: %v", w.Jobs[0].Dependencies)
	}
	if err := w.Validate(8); err != nil {
		t.Errorf("SWF deps invalid: %v", err)
	}
}

func TestUserFieldJSON(t *testing.T) {
	src := `{
	  "jobs": [
	    {"name": "j", "type": "rigid", "submit_time": 0, "num_nodes": 1, "user": "alice",
	     "phases": [{"tasks": [{"type": "delay", "seconds": 1}]}]}
	  ]
	}`
	w, err := ParseWorkload([]byte(src), 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Jobs[0].User != "alice" {
		t.Errorf("user = %q", w.Jobs[0].User)
	}
	out, _ := w.MarshalJSON()
	if !strings.Contains(string(out), `"user": "alice"`) {
		t.Error("user not serialized")
	}
}
