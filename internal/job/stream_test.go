package job

import (
	"bytes"
	"testing"
)

func streamTestConfig() Config {
	return Config{
		Name:  "stream-test",
		Seed:  42,
		Count: 300,
		Arrival: Arrival{
			Kind: ArrivalPoisson,
			Rate: 0.1,
		},
		Nodes:        [2]int{2, 32},
		MachineNodes: 64,
		NodeSpeed:    100e9,
		TypeShares: map[Type]float64{
			Rigid: 0.4, Moldable: 0.2, Malleable: 0.3, Evolving: 0.1,
		},
		Users:              3,
		CheckpointInterval: "600",
	}
}

// TestStreamMatchesGenerate pins that draining the stream reproduces
// Generate exactly — same jobs, same order, same serialized bytes.
func TestStreamMatchesGenerate(t *testing.T) {
	cfg := streamTestConfig()
	want, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}

	s, err := NewStream(cfg)
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	if s.Count() != cfg.Count {
		t.Errorf("Count() = %d, want %d", s.Count(), cfg.Count)
	}
	got := &Workload{Name: cfg.Name}
	for {
		j, err := s.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if j == nil {
			break
		}
		got.Jobs = append(got.Jobs, j)
	}
	if len(got.Jobs) != len(want.Jobs) {
		t.Fatalf("streamed %d jobs, Generate produced %d", len(got.Jobs), len(want.Jobs))
	}
	// Exhausted streams keep returning nil.
	if j, err := s.Next(); j != nil || err != nil {
		t.Errorf("Next after exhaustion = (%v, %v), want (nil, nil)", j, err)
	}

	prev := -1.0
	for i, j := range got.Jobs {
		if j.ID != ID(i) {
			t.Fatalf("job %d has ID %d, want dense stream order", i, j.ID)
		}
		if j.SubmitTime < prev {
			t.Fatalf("job %d submit %g before predecessor %g", i, j.SubmitTime, prev)
		}
		prev = j.SubmitTime
	}

	wantJSON, err := want.MarshalJSON()
	if err != nil {
		t.Fatalf("marshal Generate workload: %v", err)
	}
	gotJSON, err := got.MarshalJSON()
	if err != nil {
		t.Fatalf("marshal streamed workload: %v", err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("streamed workload differs from Generate output (lens %d vs %d)", len(gotJSON), len(wantJSON))
	}
}

// TestStreamSharesTemplates checks the constant-memory claim's core
// mechanism: jobs with the same profile shape share one Application.
func TestStreamSharesTemplates(t *testing.T) {
	cfg := streamTestConfig()
	cfg.Count = 1000
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	apps := map[*Application]bool{}
	n := 0
	for {
		j, err := s.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if j == nil {
			break
		}
		apps[j.App] = true
		n++
	}
	// Distinct templates are bounded by profiles x iteration range x
	// flexibility, far below the job count.
	if len(apps) >= n/2 {
		t.Errorf("%d jobs use %d distinct applications; templates are not shared", n, len(apps))
	}
}

func TestStreamRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{Count: 0, Nodes: [2]int{1, 4}, NodeSpeed: 1e9},
		{Count: 10, Nodes: [2]int{0, 4}, NodeSpeed: 1e9},
		{Count: 10, Nodes: [2]int{8, 4}, NodeSpeed: 1e9},
		{Count: 10, Nodes: [2]int{1, 4}, NodeSpeed: 0},
		{Count: 10, Nodes: [2]int{1, 4}, NodeSpeed: 1e9, CheckpointInterval: "(("},
	}
	for i, cfg := range bad {
		if _, err := NewStream(cfg); err == nil {
			t.Errorf("config %d: NewStream accepted invalid config", i)
		}
	}
}

// TestWorkloadWriterMatchesMarshal pins the streaming serializer to the
// buffered one, byte for byte.
func TestWorkloadWriterMatchesMarshal(t *testing.T) {
	cfg := streamTestConfig()
	cfg.Count = 50
	w, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	want, err := w.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}

	var buf bytes.Buffer
	ww := NewWorkloadWriter(&buf, w.Name)
	for _, j := range w.Jobs {
		if err := ww.WriteJob(j); err != nil {
			t.Fatalf("WriteJob: %v", err)
		}
	}
	if err := ww.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Errorf("streamed JSON differs from MarshalJSON\nwant %d bytes:\n%.300s\ngot %d bytes:\n%.300s",
			len(want), want, buf.Len(), buf.Bytes())
	}

	// The round trip must parse back to a valid workload.
	if _, err := ParseWorkload(buf.Bytes(), cfg.MachineNodes); err != nil {
		t.Errorf("streamed output does not parse: %v", err)
	}
}

func TestWorkloadWriterNoName(t *testing.T) {
	j := &Job{
		Type: Rigid, NumNodes: 1,
		App: &Application{Phases: []Phase{{Tasks: []Task{
			{Kind: TaskCompute, Model: MustExprModel("1")},
		}}}},
	}
	w := &Workload{Jobs: []*Job{j}}
	want, err := w.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	var buf bytes.Buffer
	ww := NewWorkloadWriter(&buf, "")
	if err := ww.WriteJob(j); err != nil {
		t.Fatalf("WriteJob: %v", err)
	}
	if err := ww.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Errorf("nameless stream differs:\nwant:\n%s\ngot:\n%s", want, buf.Bytes())
	}
}

func TestWorkloadWriterRejectsDependencies(t *testing.T) {
	j := &Job{
		Type: Rigid, NumNodes: 1, Dependencies: []ID{0},
		App: &Application{Phases: []Phase{{Tasks: []Task{
			{Kind: TaskCompute, Model: MustExprModel("1")},
		}}}},
	}
	ww := NewWorkloadWriter(&bytes.Buffer{}, "x")
	if err := ww.WriteJob(j); err == nil {
		t.Error("WriteJob accepted a job with dependencies")
	}
}
