// Package viz renders simulation results as standalone SVG documents:
// job Gantt charts (allocation over time) and step-function timelines
// (utilization, queue depth). Pure stdlib; the output opens in any
// browser, giving the figures the paper's evaluation plots correspond to.
package viz

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/job"
	"repro/internal/metrics"
)

// Options controls canvas geometry.
type Options struct {
	// Width and Height are the canvas size in pixels (defaults 960x480).
	Width  int
	Height int
	// Title is drawn at the top.
	Title string
	// Outages overlays node failure/repair intervals on the Gantt chart as
	// hatched gray bands on the failed node's lane. Open outages (End < 0)
	// extend to the end of the plotted time range.
	Outages []metrics.Outage
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 960
	}
	if o.Height <= 0 {
		o.Height = 480
	}
	return o
}

const (
	marginLeft   = 60.0
	marginRight  = 20.0
	marginTop    = 40.0
	marginBottom = 40.0
)

// svgBuilder accumulates SVG elements with bounds checking.
type svgBuilder struct {
	sb   strings.Builder
	opts Options
}

func newSVG(opts Options) *svgBuilder {
	b := &svgBuilder{opts: opts}
	fmt.Fprintf(&b.sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Width, opts.Height, opts.Width, opts.Height)
	fmt.Fprintf(&b.sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", opts.Width, opts.Height)
	if opts.Title != "" {
		fmt.Fprintf(&b.sb, `<text x="%d" y="24" font-family="sans-serif" font-size="16" fill="#222">%s</text>`+"\n",
			opts.Width/2-len(opts.Title)*4, escape(opts.Title))
	}
	return b
}

func (b *svgBuilder) rect(x, y, w, h float64, fill, title string) {
	if w <= 0 || h <= 0 {
		return
	}
	fmt.Fprintf(&b.sb, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="#333" stroke-width="0.4">`,
		x, y, w, h, fill)
	if title != "" {
		fmt.Fprintf(&b.sb, `<title>%s</title>`, escape(title))
	}
	b.sb.WriteString("</rect>\n")
}

// shadedRect draws a borderless, semi-transparent rect (overlays).
func (b *svgBuilder) shadedRect(x, y, w, h float64, fill string, opacity float64, title string) {
	if w <= 0 || h <= 0 {
		return
	}
	fmt.Fprintf(&b.sb, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="%.2f">`,
		x, y, w, h, fill, opacity)
	if title != "" {
		fmt.Fprintf(&b.sb, `<title>%s</title>`, escape(title))
	}
	b.sb.WriteString("</rect>\n")
}

func (b *svgBuilder) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&b.sb, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

func (b *svgBuilder) text(x, y float64, size int, anchor, s string) {
	fmt.Fprintf(&b.sb, `<text x="%.2f" y="%.2f" font-family="sans-serif" font-size="%d" fill="#444" text-anchor="%s">%s</text>`+"\n",
		x, y, size, anchor, escape(s))
}

func (b *svgBuilder) polyline(points []point, stroke string, width float64) {
	if len(points) == 0 {
		return
	}
	var coords []string
	for _, p := range points {
		coords = append(coords, fmt.Sprintf("%.2f,%.2f", p.x, p.y))
	}
	fmt.Fprintf(&b.sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.2f"/>`+"\n",
		strings.Join(coords, " "), stroke, width)
}

func (b *svgBuilder) finish(w io.Writer) error {
	b.sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.sb.String())
	return err
}

type point struct{ x, y float64 }

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// jobColor returns a stable pastel color for a job index (golden-angle
// hue walk keeps neighbouring jobs distinguishable).
func jobColor(idx int) string {
	hue := math.Mod(float64(idx)*137.50776405003785, 360)
	return hslToHex(hue, 0.55, 0.65)
}

// hslToHex converts HSL (h in degrees, s/l in [0,1]) to #rrggbb.
func hslToHex(h, s, l float64) string {
	c := (1 - math.Abs(2*l-1)) * s
	hp := h / 60
	x := c * (1 - math.Abs(math.Mod(hp, 2)-1))
	var r, g, b float64
	switch {
	case hp < 1:
		r, g, b = c, x, 0
	case hp < 2:
		r, g, b = x, c, 0
	case hp < 3:
		r, g, b = 0, c, x
	case hp < 4:
		r, g, b = 0, x, c
	case hp < 5:
		r, g, b = x, 0, c
	default:
		r, g, b = c, 0, x
	}
	m := l - c/2
	to := func(v float64) int { return int(math.Round((v + m) * 255)) }
	return fmt.Sprintf("#%02x%02x%02x", to(r), to(g), to(b))
}

// niceTicks picks ~n human-friendly tick values covering [0, max].
func niceTicks(maxV float64, n int) []float64 {
	if maxV <= 0 || n < 1 {
		return []float64{0}
	}
	raw := maxV / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	for _, m := range []float64{1, 2, 5, 10} {
		step = m * mag
		if step >= raw {
			break
		}
	}
	var out []float64
	for v := 0.0; v <= maxV*1.0001; v += step {
		out = append(out, v)
	}
	return out
}

// WriteGantt renders a recorder's allocation history as an SVG Gantt
// chart: one colored band per job, reconfigurations marked at segment
// boundaries, node outages overlaid as hatched bands. It is the single
// Gantt implementation behind both the CLI's -gantt-svg flag and the
// daemon's gantt.svg endpoint. Unless opts.Outages is set explicitly, the
// recorder's outage intervals are used.
func WriteGantt(w io.Writer, rec *metrics.Recorder, opts Options) error {
	if opts.Outages == nil {
		opts.Outages = rec.Outages()
	}
	return Gantt(w, rec.Gantt(), rec.TotalNodes(), opts)
}

// WriteUtilization renders a recorder's busy-nodes timeline as an SVG step
// plot, scaled to the machine size.
func WriteUtilization(w io.Writer, rec *metrics.Recorder, opts Options) error {
	return Timeline(w, rec.BusyTimeline(), "busy nodes", float64(rec.TotalNodes()), opts)
}

// Gantt renders allocation segments as a Gantt chart. Because segments
// record node counts (not identities), lanes are assigned with the same
// lowest-first discipline the simulator's allocator uses, so the picture
// closely matches the real placement.
func Gantt(w io.Writer, entries []metrics.GanttEntry, totalNodes int, opts Options) error {
	if totalNodes <= 0 {
		return fmt.Errorf("viz: totalNodes must be positive")
	}
	opts = opts.withDefaults()
	b := newSVG(opts)
	plotW := float64(opts.Width) - marginLeft - marginRight
	plotH := float64(opts.Height) - marginTop - marginBottom

	maxT := 0.0
	for _, e := range entries {
		if e.End > maxT {
			maxT = e.End
		}
	}
	if maxT == 0 {
		maxT = 1
	}
	xOf := func(t float64) float64 { return marginLeft + t/maxT*plotW }
	yOf := func(lane int) float64 {
		return marginTop + plotH - float64(lane+1)/float64(totalNodes)*plotH
	}
	laneH := plotH / float64(totalNodes)

	// Assign lanes: sweep events in time order, lowest-free-first.
	type ev struct {
		t     float64
		end   bool
		order int
	}
	sorted := append([]metrics.GanttEntry(nil), entries...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].Job < sorted[j].Job
	})
	free := make([]bool, totalNodes)
	for i := range free {
		free[i] = true
	}
	type active struct {
		lanes []int
		end   float64
	}
	var running []active
	release := func(now float64) {
		kept := running[:0]
		for _, a := range running {
			if a.end <= now {
				for _, l := range a.lanes {
					free[l] = true
				}
			} else {
				kept = append(kept, a)
			}
		}
		running = kept
	}
	seen := map[job.ID]bool{}
	for _, e := range sorted {
		release(e.Start)
		var lanes []int
		for l := 0; l < totalNodes && len(lanes) < e.Nodes; l++ {
			if free[l] {
				free[l] = false
				lanes = append(lanes, l)
			}
		}
		running = append(running, active{lanes: lanes, end: e.End})
		// Draw one rect per contiguous lane run.
		for _, runSeg := range contiguous(lanes) {
			x := xOf(e.Start)
			y := yOf(runSeg[len(runSeg)-1])
			h := laneH * float64(len(runSeg))
			b.rect(x, y, xOf(e.End)-x, h,
				jobColor(int(e.Job)),
				fmt.Sprintf("%s: %d nodes, %.1f–%.1f s", e.Name, e.Nodes, e.Start, e.End))
			// A later segment of an already-drawn job starts at a
			// reconfiguration: mark the boundary.
			if seen[e.Job] {
				b.line(x, y, x, y+h, "#b02222", 1.4)
			}
		}
		seen[e.Job] = true
	}

	// Overlay node outages: hatched gray bands on the failed node's lane.
	// The lane-assignment discipline above mirrors the allocator, so the
	// node index doubles as the lane index. Open outages run to the plot
	// edge.
	for _, o := range opts.Outages {
		if o.Node < 0 || o.Node >= totalNodes {
			continue
		}
		end := o.End
		if end < 0 || end > maxT {
			end = maxT
		}
		start := o.Start
		if start > maxT {
			continue
		}
		x := xOf(start)
		y := yOf(o.Node)
		b.shadedRect(x, y, xOf(end)-x, laneH, "#555", 0.55,
			fmt.Sprintf("node %d down, %.1f–%.1f s", o.Node, o.Start, end))
	}

	// Axes.
	b.line(marginLeft, marginTop, marginLeft, marginTop+plotH, "#222", 1)
	b.line(marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH, "#222", 1)
	for _, t := range niceTicks(maxT, 8) {
		x := xOf(t)
		b.line(x, marginTop+plotH, x, marginTop+plotH+4, "#222", 1)
		b.text(x, marginTop+plotH+18, 11, "middle", fmt.Sprintf("%.0f", t))
	}
	for _, v := range niceTicks(float64(totalNodes), 6) {
		y := marginTop + plotH - v/float64(totalNodes)*plotH
		b.line(marginLeft-4, y, marginLeft, y, "#222", 1)
		b.text(marginLeft-8, y+4, 11, "end", fmt.Sprintf("%.0f", v))
	}
	b.text(marginLeft+plotW/2, float64(opts.Height)-6, 12, "middle", "time [s]")
	b.text(14, marginTop+plotH/2, 12, "middle", "nodes")
	return b.finish(w)
}

// contiguous splits a sorted lane list into runs of consecutive lanes.
func contiguous(lanes []int) [][]int {
	if len(lanes) == 0 {
		return nil
	}
	var out [][]int
	cur := []int{lanes[0]}
	for _, l := range lanes[1:] {
		if l == cur[len(cur)-1]+1 {
			cur = append(cur, l)
		} else {
			out = append(out, cur)
			cur = []int{l}
		}
	}
	return append(out, cur)
}

// Timeline renders a step function (e.g. busy nodes over time) as a step
// line with filled area.
func Timeline(w io.Writer, tl *metrics.Timeline, yLabel string, yMax float64, opts Options) error {
	opts = opts.withDefaults()
	b := newSVG(opts)
	plotW := float64(opts.Width) - marginLeft - marginRight
	plotH := float64(opts.Height) - marginTop - marginBottom

	pts := tl.Points()
	maxT := 1.0
	if len(pts) > 0 {
		maxT = pts[len(pts)-1].T
		if maxT <= 0 {
			maxT = 1
		}
	}
	if yMax <= 0 {
		for _, p := range pts {
			if p.V > yMax {
				yMax = p.V
			}
		}
		if yMax <= 0 {
			yMax = 1
		}
	}
	xOf := func(t float64) float64 { return marginLeft + t/maxT*plotW }
	yOf := func(v float64) float64 { return marginTop + plotH - v/yMax*plotH }

	// Step polyline.
	var line []point
	prevV := 0.0
	for _, p := range pts {
		line = append(line, point{xOf(p.T), yOf(prevV)})
		line = append(line, point{xOf(p.T), yOf(p.V)})
		prevV = p.V
	}
	line = append(line, point{xOf(maxT), yOf(prevV)})
	b.polyline(line, "#2060c0", 1.5)

	// Axes.
	b.line(marginLeft, marginTop, marginLeft, marginTop+plotH, "#222", 1)
	b.line(marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH, "#222", 1)
	for _, t := range niceTicks(maxT, 8) {
		x := xOf(t)
		b.line(x, marginTop+plotH, x, marginTop+plotH+4, "#222", 1)
		b.text(x, marginTop+plotH+18, 11, "middle", fmt.Sprintf("%.0f", t))
	}
	for _, v := range niceTicks(yMax, 6) {
		y := yOf(v)
		b.line(marginLeft-4, y, marginLeft, y, "#222", 1)
		b.text(marginLeft-8, y+4, 11, "end", fmt.Sprintf("%.0f", v))
	}
	b.text(marginLeft+plotW/2, float64(opts.Height)-6, 12, "middle", "time [s]")
	b.text(14, marginTop+plotH/2, 12, "middle", yLabel)
	return b.finish(w)
}
