package viz

import (
	"bytes"
	"encoding/xml"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden files")

// parseSVG checks well-formedness and counts elements by local name.
func parseSVG(t *testing.T, data []byte) map[string]int {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(data))
	counts := map[string]int{}
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid SVG: %v", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			counts[se.Name.Local]++
		}
	}
	return counts
}

func sampleGantt() []metrics.GanttEntry {
	return []metrics.GanttEntry{
		{Job: 0, Name: "a", Nodes: 4, Start: 0, End: 10},
		{Job: 1, Name: "b", Nodes: 2, Start: 2, End: 8},
		{Job: 0, Name: "a", Nodes: 8, Start: 10, End: 20}, // expanded
		{Job: 2, Name: "c", Nodes: 3, Start: 12, End: 25},
	}
}

func TestGanttWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := Gantt(&buf, sampleGantt(), 16, Options{Title: "demo"}); err != nil {
		t.Fatal(err)
	}
	counts := parseSVG(t, buf.Bytes())
	if counts["svg"] != 1 {
		t.Errorf("svg elements: %d", counts["svg"])
	}
	// Background + at least one rect per segment.
	if counts["rect"] < 5 {
		t.Errorf("rects: %d, want >= 5", counts["rect"])
	}
	if counts["text"] == 0 || counts["line"] == 0 {
		t.Error("axes missing")
	}
	// Tooltips carry job names.
	if !strings.Contains(buf.String(), "<title>a: ") {
		t.Error("segment tooltip missing")
	}
}

func TestGanttOutagesAndReconfigMarkers(t *testing.T) {
	entries := sampleGantt()
	outages := []metrics.Outage{
		{Node: 6, Start: 5, End: 15},
		{Node: 12, Start: 18, End: -1}, // still down at the end
		{Node: 99, Start: 1, End: 2},   // out of range: dropped
	}
	var buf bytes.Buffer
	err := Gantt(&buf, entries, 16, Options{Title: "failures", Outages: outages})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	parseSVG(t, buf.Bytes())
	if !strings.Contains(out, "node 6 down, 5.0–15.0 s") {
		t.Error("closed outage band missing")
	}
	// The open outage is clamped to the plotted range (maxT = 25).
	if !strings.Contains(out, "node 12 down, 18.0–25.0 s") {
		t.Error("open outage band not clamped to plot edge")
	}
	if strings.Contains(out, "node 99") {
		t.Error("out-of-range outage drawn")
	}
	// Job 0's second segment (the expansion at t=10) gets a marker line.
	if !strings.Contains(out, `stroke="#b02222"`) {
		t.Error("reconfiguration marker missing")
	}

	golden := filepath.Join("testdata", "gantt_golden.svg")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("Gantt output differs from golden; rerun with -update if intended")
	}
}

func TestGanttEmptyEntries(t *testing.T) {
	var buf bytes.Buffer
	if err := Gantt(&buf, nil, 8, Options{}); err != nil {
		t.Fatal(err)
	}
	parseSVG(t, buf.Bytes())
}

func TestGanttRejectsBadMachine(t *testing.T) {
	var buf bytes.Buffer
	if err := Gantt(&buf, sampleGantt(), 0, Options{}); err == nil {
		t.Error("zero-node machine accepted")
	}
}

func TestTimelineWellFormed(t *testing.T) {
	var tl metrics.Timeline
	tl.Add(0, 4)
	tl.Add(10, 4)
	tl.Add(20, -6)
	var buf bytes.Buffer
	if err := Timeline(&buf, &tl, "busy nodes", 16, Options{Title: "utilization"}); err != nil {
		t.Fatal(err)
	}
	counts := parseSVG(t, buf.Bytes())
	if counts["polyline"] != 1 {
		t.Errorf("polylines: %d", counts["polyline"])
	}
	if !strings.Contains(buf.String(), "busy nodes") {
		t.Error("y label missing")
	}
}

func TestTimelineEmpty(t *testing.T) {
	var tl metrics.Timeline
	var buf bytes.Buffer
	if err := Timeline(&buf, &tl, "y", 0, Options{}); err != nil {
		t.Fatal(err)
	}
	parseSVG(t, buf.Bytes())
}

func TestJobColorsStableAndDistinct(t *testing.T) {
	if jobColor(3) != jobColor(3) {
		t.Error("colors not stable")
	}
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		seen[jobColor(i)] = true
	}
	if len(seen) < 18 {
		t.Errorf("only %d distinct colors in 20", len(seen))
	}
}

func TestHSLConversion(t *testing.T) {
	// Pure red, green, blue at full saturation / half lightness.
	if got := hslToHex(0, 1, 0.5); got != "#ff0000" {
		t.Errorf("red = %s", got)
	}
	if got := hslToHex(120, 1, 0.5); got != "#00ff00" {
		t.Errorf("green = %s", got)
	}
	if got := hslToHex(240, 1, 0.5); got != "#0000ff" {
		t.Errorf("blue = %s", got)
	}
	if got := hslToHex(0, 0, 1); got != "#ffffff" {
		t.Errorf("white = %s", got)
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(100, 5)
	if ticks[0] != 0 {
		t.Errorf("first tick %v", ticks[0])
	}
	if ticks[len(ticks)-1] < 100-1e-9 {
		t.Errorf("last tick %v does not reach max", ticks[len(ticks)-1])
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Errorf("ticks not increasing: %v", ticks)
		}
	}
	if got := niceTicks(0, 5); len(got) != 1 || got[0] != 0 {
		t.Errorf("degenerate ticks: %v", got)
	}
}

func TestContiguous(t *testing.T) {
	runs := contiguous([]int{0, 1, 2, 5, 6, 9})
	if len(runs) != 3 {
		t.Fatalf("runs: %v", runs)
	}
	if len(runs[0]) != 3 || len(runs[1]) != 2 || len(runs[2]) != 1 {
		t.Errorf("run lengths wrong: %v", runs)
	}
	if contiguous(nil) != nil {
		t.Error("empty input should give nil")
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c"`); got != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Errorf("escape = %q", got)
	}
}

// TestWriteGanttMatchesGantt pins that the recorder-level WriteGantt entry
// point (used by the daemon's gantt.svg endpoint) and the low-level Gantt
// call (used historically by the CLI) produce identical output for the
// same run, including the recorder's outage overlay.
func TestWriteGanttMatchesGantt(t *testing.T) {
	rec := metrics.NewRecorder(16)
	rec.AddGantt(0, "a", 4, 0, 10)
	rec.AddGantt(1, "b", 2, 2, 8)
	rec.AddGantt(0, "a", 8, 10, 20)
	rec.NodeDown(3, 5)
	rec.NodeUp(3, 9)

	var direct, viaRec bytes.Buffer
	if err := Gantt(&direct, rec.Gantt(), rec.TotalNodes(), Options{Title: "t", Outages: rec.Outages()}); err != nil {
		t.Fatal(err)
	}
	if err := WriteGantt(&viaRec, rec, Options{Title: "t"}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), viaRec.Bytes()) {
		t.Error("WriteGantt diverged from Gantt on the same recorder")
	}

	var util bytes.Buffer
	if err := WriteUtilization(&util, rec, Options{}); err != nil {
		t.Fatal(err)
	}
	if c := parseSVG(t, util.Bytes()); c["svg"] != 1 {
		t.Errorf("utilization svg elements: %d", c["svg"])
	}
}
