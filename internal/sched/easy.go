package sched

import (
	"math"
)

// EASY implements EASY backfilling (Lifka 1995): the head job gets a
// reservation at the earliest time enough nodes free up, and later jobs may
// jump ahead if they fit now without delaying that reservation — either
// they finish before the reservation ("before shadow time") or they use
// only nodes the reservation does not need ("extra nodes").
type EASY struct {
	Sizing SizePolicy
	// SizeFn overrides Sizing when set (e.g. EfficiencySizer).
	SizeFn SizeFunc
}

// Name implements Algorithm.
func (e *EASY) Name() string { return "easy" }

// Schedule implements Algorithm.
func (e *EASY) Schedule(inv *Invocation) []Decision {
	var out []Decision
	free := inv.FreeNodes

	// Greedy FCFS prefix.
	i := 0
	for ; i < len(inv.Pending); i++ {
		v := inv.Pending[i]
		n := pickSize(v, free, e.SizeFn, e.Sizing)
		if n == 0 {
			break
		}
		out = append(out, Start(v.ID, n))
		free -= n
	}
	if i >= len(inv.Pending) {
		return out
	}

	// Head job blocks: compute its shadow time and the extra nodes.
	head := inv.Pending[i]
	headNeed := reservationSize(head)
	if headNeed > inv.TotalNodes {
		headNeed = inv.TotalNodes
	}
	shadow, extra := shadowTime(inv, free, headNeed)

	// Backfill the remainder.
	for _, v := range inv.Pending[i+1:] {
		n := pickSize(v, free, e.SizeFn, e.Sizing)
		if n == 0 {
			continue
		}
		endsBeforeShadow := inv.Now+v.WallTimeOrInf() <= shadow
		fitsExtra := n <= extra
		if !endsBeforeShadow && !fitsExtra {
			continue
		}
		out = append(out, Start(v.ID, n))
		free -= n
		if fitsExtra && !endsBeforeShadow {
			extra -= n
		}
	}
	return out
}

// reservationSize is the node count reserved for a blocked job: its rigid
// request or its minimum acceptable size.
func reservationSize(v *JobView) int {
	return v.Job.MinNodes()
}

// shadowTime computes when `need` nodes will be free given the running
// jobs' expected ends, plus how many nodes remain free at that moment
// beyond the reservation (the "extra" nodes available for backfill past
// the shadow time). Jobs without walltime estimates never release their
// nodes for this computation.
func shadowTime(inv *Invocation, free, need int) (shadow float64, extra int) {
	if need <= free {
		return inv.Now, free - need
	}
	// Sort running jobs by expected end and accumulate releases.
	ends := make([]*JobView, len(inv.Running))
	copy(ends, inv.Running)
	stableSortBy(ends, func(a, b *JobView) bool { return a.ExpectedEnd < b.ExpectedEnd })
	avail := free
	for _, v := range ends {
		if math.IsInf(v.ExpectedEnd, 1) {
			break
		}
		avail += v.Nodes
		if avail >= need {
			return v.ExpectedEnd, avail - need
		}
	}
	return math.Inf(1), avail - need // never: backfill gated only by "extra"
}
