package sched

import (
	"math"
	"testing"

	"repro/internal/job"
)

func TestFirstFitSkipsBlockers(t *testing.T) {
	f := &FirstFit{}
	inv := &Invocation{
		FreeNodes:  10,
		TotalNodes: 16,
		Pending: []*JobView{
			mkPending(0, 12, 0), // too wide
			mkPending(1, 4, 0),
			mkPending(2, 8, 0), // does not fit after job 1
			mkPending(3, 6, 0),
		},
	}
	ds := f.Schedule(inv)
	got := map[job.ID]bool{}
	for _, d := range ds {
		got[d.Job] = true
	}
	if got[0] || got[2] {
		t.Errorf("oversized jobs started: %v", ds)
	}
	if !got[1] || !got[3] {
		t.Errorf("fitting jobs skipped: %v", ds)
	}
}

func withUser(v *JobView, user string) *JobView {
	v.Job.User = user
	return v
}

func TestFairShareOrdersByUsage(t *testing.T) {
	f := &FairShare{}
	// First invocation at t=0: alice's job runs on 8 nodes.
	running := mkRunning(0, 8, 0, math.Inf(1))
	running.Job.User = "alice"
	inv0 := &Invocation{
		Now:        0,
		FreeNodes:  8,
		TotalNodes: 16,
		Running:    []*JobView{running},
	}
	f.Schedule(inv0)
	// Second invocation at t=100: alice has 800 node-seconds; bob has 0.
	// Both queue a 8-node job but only one fits: bob must go first.
	aliceJob := withUser(mkPending(1, 8, 100), "alice")
	bobJob := withUser(mkPending(2, 8, 100), "bob")
	inv1 := &Invocation{
		Now:        100,
		FreeNodes:  8,
		TotalNodes: 16,
		Running:    []*JobView{running},
		Pending:    []*JobView{aliceJob, bobJob}, // alice submitted first
	}
	ds := f.Schedule(inv1)
	if len(ds) != 1 || ds[0].Job != 2 {
		t.Errorf("fair share should start bob first: %v", ds)
	}
	if got := f.Usage("alice"); got != 800 {
		t.Errorf("alice usage %v, want 800", got)
	}
	if got := f.Usage("bob"); got != 0 {
		t.Errorf("bob usage %v, want 0", got)
	}
}

func TestFairShareTiesKeepSubmissionOrder(t *testing.T) {
	f := &FairShare{}
	a := withUser(mkPending(0, 4, 10), "x")
	b := withUser(mkPending(1, 4, 10), "y")
	inv := &Invocation{
		Now: 0, FreeNodes: 4, TotalNodes: 8,
		Pending: []*JobView{a, b},
	}
	ds := f.Schedule(inv)
	if len(ds) != 1 || ds[0].Job != 0 {
		t.Errorf("equal usage should preserve order: %v", ds)
	}
}

func TestFairShareDecay(t *testing.T) {
	f := &FairShare{HalfLife: 100}
	running := mkRunning(0, 10, 0, 100)
	running.Job.User = "alice"
	f.Schedule(&Invocation{Now: 0, Running: []*JobView{running}, FreeNodes: 0, TotalNodes: 10})
	// The job ends at t=100 (completion invocation, running now empty):
	// usage = 10 nodes * 100 s = 1000.
	f.Schedule(&Invocation{Now: 100, FreeNodes: 10, TotalNodes: 10})
	usageAt100 := f.Usage("alice")
	if math.Abs(usageAt100-1000) > 1e-9 {
		t.Fatalf("usage at 100 = %v, want 1000", usageAt100)
	}
	// One half-life later with nothing running: usage halves.
	f.Schedule(&Invocation{Now: 200, FreeNodes: 10, TotalNodes: 10})
	if got := f.Usage("alice"); math.Abs(got-500) > 1e-9 {
		t.Errorf("after one half-life usage %v, want 500", got)
	}
}

func TestFairShareBackfills(t *testing.T) {
	f := &FairShare{}
	// Head (8 nodes, heavy user) blocked by a running job ending at 100;
	// a short narrow job from the same user backfills.
	running := mkRunning(0, 6, 0, 100)
	running.Job.User = "alice"
	head := withUser(mkPending(1, 8, 1000), "alice")
	small := withUser(mkPending(2, 2, 50), "alice")
	// Prime usage.
	f.Schedule(&Invocation{Now: 0, Running: []*JobView{running}, FreeNodes: 4, TotalNodes: 10})
	ds := f.Schedule(&Invocation{
		Now: 10, FreeNodes: 4, TotalNodes: 10,
		Running: []*JobView{running},
		Pending: []*JobView{head, small},
	})
	got := map[job.ID]bool{}
	for _, d := range ds {
		got[d.Job] = true
	}
	if got[1] {
		t.Errorf("blocked head started: %v", ds)
	}
	if !got[2] {
		t.Errorf("backfill candidate skipped: %v", ds)
	}
}

func TestFairShareEndToEnd(t *testing.T) {
	// Integration: two users, user "hog" floods the queue first, "meek"
	// submits one job later. Under FCFS meek waits for the whole flood;
	// under fair share meek's job jumps the residual queue.
	mkWorkload := func() []*job.Job {
		var jobs []*job.Job
		for i := 0; i < 6; i++ {
			j := &job.Job{
				ID: job.ID(i), Type: job.Rigid, NumNodes: 4, User: "hog",
				SubmitTime:    0,
				WallTimeLimit: 400,
				Args:          map[string]float64{"flops": 4e11}, // 100 s on 4 nodes
				App: &job.Application{Phases: []job.Phase{{
					Tasks: []job.Task{{Kind: job.TaskCompute, Model: job.MustExprModel("flops / num_nodes")}},
				}}},
			}
			jobs = append(jobs, j)
		}
		meek := &job.Job{
			ID: 6, Type: job.Rigid, NumNodes: 4, User: "meek",
			SubmitTime:    150,
			WallTimeLimit: 400,
			Args:          map[string]float64{"flops": 4e11},
			App: &job.Application{Phases: []job.Phase{{
				Tasks: []job.Task{{Kind: job.TaskCompute, Model: job.MustExprModel("flops / num_nodes")}},
			}}},
		}
		return append(jobs, meek)
	}
	_ = mkWorkload
	// The engine-level comparison lives in internal/core (import cycle);
	// here we verify ordering directly: after the hog consumed usage, the
	// meek job sorts first.
	f := &FairShare{}
	hogRunning := mkRunning(0, 4, 0, 100)
	hogRunning.Job.User = "hog"
	f.Schedule(&Invocation{Now: 0, Running: []*JobView{hogRunning}, FreeNodes: 0, TotalNodes: 4})
	hogPending := withUser(mkPending(1, 4, 400), "hog")
	meekPending := withUser(mkPending(2, 4, 400), "meek")
	ds := f.Schedule(&Invocation{
		Now: 100, FreeNodes: 4, TotalNodes: 4,
		Pending: []*JobView{hogPending, meekPending},
	})
	if len(ds) == 0 || ds[0].Job != 2 {
		t.Errorf("meek user's job should start first: %v", ds)
	}
}
