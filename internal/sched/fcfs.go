package sched

// FCFS is strict first-come-first-served: jobs start in submission order;
// if the head of the queue does not fit, nothing behind it starts either.
type FCFS struct {
	// Sizing picks moldable sizes (default SizeRequested).
	Sizing SizePolicy
	// SizeFn overrides Sizing when set (e.g. EfficiencySizer).
	SizeFn SizeFunc
}

// Name implements Algorithm.
func (f *FCFS) Name() string { return "fcfs" }

// Schedule implements Algorithm.
func (f *FCFS) Schedule(inv *Invocation) []Decision {
	var out []Decision
	free := inv.FreeNodes
	for _, v := range inv.Pending {
		n := pickSize(v, free, f.SizeFn, f.Sizing)
		if n == 0 {
			break // head blocks the queue
		}
		out = append(out, Start(v.ID, n))
		free -= n
	}
	return out
}

// SJF starts jobs shortest-first by walltime estimate; jobs without an
// estimate sort last. Ties fall back to submission order. Like FCFS it
// does not reserve: if the shortest job does not fit, nothing starts.
type SJF struct {
	Sizing SizePolicy
	SizeFn SizeFunc
}

// Name implements Algorithm.
func (s *SJF) Name() string { return "sjf" }

// Schedule implements Algorithm.
func (s *SJF) Schedule(inv *Invocation) []Decision {
	order := make([]*JobView, len(inv.Pending))
	copy(order, inv.Pending)
	// Insertion sort keeps it stable without importing sort for a slice
	// this small... but clarity wins: use a stable comparison sort.
	stableSortBy(order, func(a, b *JobView) bool {
		return a.WallTimeOrInf() < b.WallTimeOrInf()
	})
	var out []Decision
	free := inv.FreeNodes
	for _, v := range order {
		n := pickSize(v, free, s.SizeFn, s.Sizing)
		if n == 0 {
			break
		}
		out = append(out, Start(v.ID, n))
		free -= n
	}
	return out
}

// stableSortBy is a minimal stable sort (binary insertion) for view slices.
func stableSortBy(xs []*JobView, less func(a, b *JobView) bool) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i
		for j > 0 && less(v, xs[j-1]) {
			xs[j] = xs[j-1]
			j--
		}
		xs[j] = v
	}
}
