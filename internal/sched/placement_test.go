package sched

import (
	"testing"
)

func TestLocalityPackFillsFullestGroup(t *testing.T) {
	// Groups of 4; group 0 has 2 free, group 1 has 4 free, group 2 has 1.
	free := []int{0, 1, 4, 5, 6, 7, 8}
	got := LocalityPack(free, 4, 4)
	want := []int{4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestLocalityPackSpansMinimally(t *testing.T) {
	// 6 nodes needed from groups with 4+2+1 free: use group 1 (4) then
	// group 0 (2), never touching group 2.
	free := []int{0, 1, 4, 5, 6, 7, 8}
	got := LocalityPack(free, 6, 4)
	for _, id := range got {
		if id == 8 {
			t.Errorf("spanned an unnecessary third group: %v", got)
		}
	}
	if len(got) != 6 {
		t.Fatalf("got %d nodes", len(got))
	}
}

func TestLocalityPackNoGroups(t *testing.T) {
	free := []int{3, 1, 7}
	got := LocalityPack(free, 2, 0)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("got %v, want [1 3]", got)
	}
}

func TestLocalityPackInsufficient(t *testing.T) {
	if got := LocalityPack([]int{1, 2}, 3, 4); got != nil {
		t.Errorf("got %v for insufficient free nodes", got)
	}
	if got := LocalityPack(nil, 0, 4); got != nil {
		t.Errorf("got %v for zero request", got)
	}
}

func TestPackedRewritesStarts(t *testing.T) {
	p := &Packed{Base: &FCFS{}}
	inv := &Invocation{
		FreeNodes:  6,
		TotalNodes: 12,
		GroupSize:  4,
		// Group 0: node 2 free; group 1: 4,5,6,7 free; group 2: 9 free.
		FreeList: []int{2, 4, 5, 6, 7, 9},
		Pending:  []*JobView{mkPending(0, 4, 0), mkPending(1, 2, 0)},
	}
	ds := p.Schedule(inv)
	if len(ds) != 2 {
		t.Fatalf("decisions %v", ds)
	}
	// First job packs into group 1 entirely.
	want := []int{4, 5, 6, 7}
	for i, id := range ds[0].Nodes {
		if id != want[i] {
			t.Fatalf("job0 nodes %v, want %v", ds[0].Nodes, want)
		}
	}
	// Second job gets the leftovers without overlapping.
	seen := map[int]bool{}
	for _, id := range ds[0].Nodes {
		seen[id] = true
	}
	for _, id := range ds[1].Nodes {
		if seen[id] {
			t.Fatalf("overlapping placements: %v vs %v", ds[0].Nodes, ds[1].Nodes)
		}
	}
	if p.Name() != "packed+fcfs" {
		t.Errorf("name %q", p.Name())
	}
}

func TestPackedPassthroughWithoutGroups(t *testing.T) {
	p := &Packed{Base: &FCFS{}}
	inv := &Invocation{
		FreeNodes:  4,
		TotalNodes: 4,
		FreeList:   []int{0, 1, 2, 3},
		Pending:    []*JobView{mkPending(0, 2, 0)},
	}
	ds := p.Schedule(inv)
	if len(ds) != 1 || ds[0].Nodes != nil {
		t.Errorf("expected unpinned decision on star: %v", ds)
	}
}
