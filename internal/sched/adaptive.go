package sched

import (
	"sort"

	"repro/internal/job"
)

// Adaptive is the malleability-aware policy this reproduction evaluates
// against rigid baselines. It layers three mechanisms on top of an EASY
// start discipline:
//
//  1. shrink-to-admit: when pending jobs cannot start, running malleable
//     jobs currently at scheduling points are shrunk (largest first, never
//     below their minimum) to free enough nodes;
//  2. expand-to-fill: after starts, leftover free nodes are distributed
//     round-robin to malleable jobs at scheduling points (smallest
//     allocation first, up to each job's maximum) — dynamic
//     equipartitioning;
//  3. evolving arbitration: shrink requests are always granted; grow
//     requests are granted up to what the free pool allows.
type Adaptive struct {
	// Sizing picks start sizes (default SizeRequested).
	Sizing SizePolicy
	// SizeFn overrides Sizing when set (e.g. EfficiencySizer).
	SizeFn SizeFunc
	// NoShrink disables mechanism 1 (for ablations).
	NoShrink bool
	// NoExpand disables mechanism 2 (for ablations).
	NoExpand bool
	// ShrinkReserve keeps this many nodes unreclaimed per malleable job
	// above its minimum (0 = shrink all the way to the minimum).
	ShrinkReserve int
}

// Name implements Algorithm.
func (a *Adaptive) Name() string { return "adaptive" }

// Schedule implements Algorithm.
func (a *Adaptive) Schedule(inv *Invocation) []Decision {
	free := inv.FreeNodes

	// Malleable jobs we may resize right now.
	var resizable []*JobView
	for _, v := range inv.Running {
		if v.Job.Type == job.Malleable && v.AtSchedulingPoint {
			resizable = append(resizable, v)
		}
	}
	// Reclaimable capacity if we shrank everything to minimum (+ reserve).
	reclaimable := 0
	floorOf := func(v *JobView) int {
		f := v.Job.MinNodes() + a.ShrinkReserve
		if f > v.Nodes {
			f = v.Nodes
		}
		return f
	}
	if !a.NoShrink {
		for _, v := range resizable {
			reclaimable += v.Nodes - floorOf(v)
		}
	}

	// Plan starts in FCFS order against free + reclaimable.
	type plannedStart struct {
		view *JobView
		n    int
	}
	var starts []plannedStart
	virtual := free + reclaimable
	blockedAt := -1
	for i, v := range inv.Pending {
		n := pickSize(v, virtual, a.SizeFn, a.Sizing)
		if n == 0 {
			blockedAt = i
			break
		}
		starts = append(starts, plannedStart{v, n})
		virtual -= n
	}

	// How much shrinking do the planned starts actually require?
	needed := 0
	for _, s := range starts {
		needed += s.n
	}
	shrinkBy := needed - free
	if shrinkBy < 0 {
		shrinkBy = 0
	}

	var out []Decision
	// Issue shrinks, largest allocation first, until covered.
	if shrinkBy > 0 {
		order := append([]*JobView(nil), resizable...)
		sort.SliceStable(order, func(i, j int) bool { return order[i].Nodes > order[j].Nodes })
		for _, v := range order {
			if shrinkBy == 0 {
				break
			}
			give := v.Nodes - floorOf(v)
			if give <= 0 {
				continue
			}
			if give > shrinkBy {
				give = shrinkBy
			}
			newSize := v.Nodes - give
			out = append(out, Resize(v.ID, newSize))
			v.Nodes = newSize // track locally for the expand phase
			shrinkBy -= give
			free += give
		}
	}

	// Issue starts.
	for _, s := range starts {
		out = append(out, Start(s.view.ID, s.n))
		free -= s.n
	}

	// EASY-style backfill of the remaining queue against remaining free
	// nodes (no further shrinking for backfilled jobs).
	if blockedAt >= 0 && blockedAt < len(inv.Pending)-1 && free > 0 {
		head := inv.Pending[blockedAt]
		shadow, extra := shadowTime(inv, free, head.Job.MinNodes())
		for _, v := range inv.Pending[blockedAt+1:] {
			n := pickSize(v, free, a.SizeFn, a.Sizing)
			if n == 0 {
				continue
			}
			endsBeforeShadow := inv.Now+v.WallTimeOrInf() <= shadow
			fitsExtra := n <= extra
			if !endsBeforeShadow && !fitsExtra {
				continue
			}
			out = append(out, Start(v.ID, n))
			free -= n
			if fitsExtra && !endsBeforeShadow {
				extra -= n
			}
		}
	}

	// Answer evolving requests before expanding, so grants have priority
	// over opportunistic growth.
	for _, v := range inv.Running {
		if v.EvolvingRequest == 0 {
			continue
		}
		req := v.EvolvingRequest
		cur := v.Nodes
		switch {
		case req <= cur:
			// Shrinking (or no-op) requests always granted.
			out = append(out, Decision{Kind: DecisionGrant, Job: v.ID, NumNodes: req})
		default:
			grow := req - cur
			if grow > free {
				grow = free
			}
			granted := cur + grow
			if granted > v.Job.MaxNodes() {
				granted = v.Job.MaxNodes()
			}
			if granted <= cur {
				out = append(out, Decision{Kind: DecisionDeny, Job: v.ID})
				continue
			}
			out = append(out, Decision{Kind: DecisionGrant, Job: v.ID, NumNodes: granted})
			free -= granted - cur
		}
	}

	// Expand-to-fill: hand leftover nodes to resizable malleable jobs,
	// smallest first, one node at a time (equipartitioning).
	if !a.NoExpand && free > 0 && len(resizable) > 0 {
		grows := map[job.ID]int{}
		for free > 0 {
			// Smallest current allocation with headroom.
			var pickV *JobView
			for _, v := range resizable {
				if v.Nodes+grows[v.ID] >= v.Job.MaxNodes() {
					continue
				}
				if pickV == nil || v.Nodes+grows[v.ID] < pickV.Nodes+grows[pickV.ID] {
					pickV = v
				}
			}
			if pickV == nil {
				break
			}
			grows[pickV.ID]++
			free--
		}
		for _, v := range resizable {
			if g := grows[v.ID]; g > 0 {
				out = append(out, Resize(v.ID, v.Nodes+g))
			}
		}
	}
	return out
}
