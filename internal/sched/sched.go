// Package sched defines the scheduling-algorithm interface and a library
// of algorithms: FCFS, EASY and conservative backfilling, SJF, and an
// adaptive policy that exercises malleability (expand/shrink at scheduling
// points) and evolving-request arbitration.
//
// The design mirrors ElastiSim's decoupling: the simulation engine invokes
// the algorithm with a full snapshot of the cluster and job states (either
// periodically, on events, or both), and the algorithm answers with a list
// of decisions. The engine validates every decision before applying it, so
// a buggy algorithm cannot corrupt simulation state.
package sched

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/job"
)

// State is a job's scheduling state as seen by algorithms.
type State int

// Job states visible to algorithms.
const (
	// StatePending: submitted, not yet started.
	StatePending State = iota
	// StateRunning: executing (possibly at a scheduling point).
	StateRunning
)

// JobView is a read-only snapshot of one job handed to the algorithm.
type JobView struct {
	// ID is the job's identity, used in decisions.
	ID job.ID
	// Job is the immutable job description.
	Job *job.Job
	// State is pending or running.
	State State
	// Nodes is the current allocation size (0 while pending).
	Nodes int
	// AtSchedulingPoint reports that the job is paused at a scheduling
	// point right now; Resize decisions are only legal in this state.
	AtSchedulingPoint bool
	// EvolvingRequest is the allocation size the application asked for
	// (0 = no outstanding request). Grant or Deny decisions answer it.
	EvolvingRequest int
	// SubmitTime and StartTime are simulation timestamps (StartTime is
	// meaningful only when running).
	SubmitTime float64
	StartTime  float64
	// ExpectedEnd estimates completion from the walltime limit
	// (+Inf when the job has no limit). Backfilling relies on it.
	ExpectedEnd float64
}

// WallTimeOrInf returns the job's walltime limit, or +Inf if absent.
func (v *JobView) WallTimeOrInf() float64 {
	if v.Job.WallTimeLimit <= 0 {
		return math.Inf(1)
	}
	return v.Job.WallTimeLimit
}

// Reason is a bitmask of why the scheduler was invoked.
type Reason uint

// Invocation reasons; multiple may be set when events coincide.
const (
	ReasonSubmit Reason = 1 << iota
	ReasonCompletion
	ReasonSchedulingPoint
	ReasonEvolvingRequest
	ReasonPeriodic
	// ReasonNodeDown fires when a node fails: jobs may have been killed,
	// requeued, or shrunk, and the failed node left the free pool.
	ReasonNodeDown
	// ReasonNodeUp fires when a failed node is repaired and returns to the
	// free pool.
	ReasonNodeUp
)

func (r Reason) String() string {
	var parts []string
	for _, e := range []struct {
		bit  Reason
		name string
	}{
		{ReasonSubmit, "submit"},
		{ReasonCompletion, "completion"},
		{ReasonSchedulingPoint, "scheduling-point"},
		{ReasonEvolvingRequest, "evolving-request"},
		{ReasonPeriodic, "periodic"},
		{ReasonNodeDown, "node-down"},
		{ReasonNodeUp, "node-up"},
	} {
		if r&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Invocation is the cluster snapshot an algorithm schedules against.
type Invocation struct {
	// Now is the simulation time.
	Now float64
	// Reasons says which events triggered this invocation.
	Reasons Reason
	// Pending lists queued jobs in submission order.
	Pending []*JobView
	// Running lists executing jobs in start order.
	Running []*JobView
	// FreeNodes and TotalNodes describe the machine.
	FreeNodes  int
	TotalNodes int
	// FreeList names the free nodes (ascending). Algorithms that care
	// about placement (locality on tree topologies) can pass explicit
	// nodes in start decisions. Materialising it costs O(total nodes) per
	// invocation, so the engine only populates it for algorithms that
	// declare they read it by implementing FreeListUser; for everyone else
	// it is nil.
	FreeList []int
	// GroupSize is the tree topology's nodes-per-leaf-switch (0 when the
	// network has no locality structure).
	GroupSize int
	// DownNodes lists failed nodes (ascending). Empty unless the platform
	// has a failure model. Down nodes are never in FreeList and start
	// decisions placing jobs on them are rejected.
	DownNodes []int
}

// DecisionKind discriminates decisions.
type DecisionKind int

// Decision kinds.
const (
	// DecisionStart launches a pending job on NumNodes nodes.
	DecisionStart DecisionKind = iota
	// DecisionResize changes a running adaptive job's allocation to
	// NumNodes. Legal only while the job is at a scheduling point.
	DecisionResize
	// DecisionGrant accepts an evolving request; NumNodes is the granted
	// size (it may differ from the requested size). Applied at the job's
	// next scheduling point.
	DecisionGrant
	// DecisionDeny rejects an outstanding evolving request.
	DecisionDeny
	// DecisionKill terminates a job (pending or running).
	DecisionKill
)

func (k DecisionKind) String() string {
	switch k {
	case DecisionStart:
		return "start"
	case DecisionResize:
		return "resize"
	case DecisionGrant:
		return "grant"
	case DecisionDeny:
		return "deny"
	case DecisionKill:
		return "kill"
	default:
		return fmt.Sprintf("DecisionKind(%d)", int(k))
	}
}

// Decision is one scheduling action. The engine applies decisions in order.
type Decision struct {
	Kind     DecisionKind
	Job      job.ID
	NumNodes int
	// Nodes optionally pins a start decision to specific nodes (they must
	// be free and count NumNodes). Empty lets the engine pick
	// (lowest-numbered free nodes first).
	Nodes []int
}

func (d Decision) String() string {
	return fmt.Sprintf("%s(job%d, %d)", d.Kind, d.Job, d.NumNodes)
}

// Start is shorthand for a start decision.
func Start(id job.ID, nodes int) Decision {
	return Decision{Kind: DecisionStart, Job: id, NumNodes: nodes}
}

// Resize is shorthand for a resize decision.
func Resize(id job.ID, nodes int) Decision {
	return Decision{Kind: DecisionResize, Job: id, NumNodes: nodes}
}

// Algorithm is a scheduling policy.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Schedule inspects the snapshot and returns decisions. It must not
	// retain inv or the views: the engine reuses their storage across
	// invocations.
	Schedule(inv *Invocation) []Decision
}

// FreeListUser is an optional Algorithm extension. Implementations that
// read Invocation.FreeList return true from WantsFreeList; the engine then
// pays the O(total nodes) cost of materialising the list every invocation.
// Algorithms not implementing the interface receive a nil FreeList.
type FreeListUser interface {
	WantsFreeList() bool
}

// SizePolicy chooses allocation sizes for moldable (and initial sizes for
// adaptive) jobs.
type SizePolicy int

// Size policies.
const (
	// SizeRequested starts the job at its preferred size (NumNodes, or
	// the minimum if unset), the conservative choice.
	SizeRequested SizePolicy = iota
	// SizeMax starts the job as large as currently fits (up to its max).
	SizeMax
	// SizeMin starts the job at its minimum size.
	SizeMin
)

// SizeFunc customizes start-size selection beyond the SizePolicy enum
// (e.g. efficiency-aware moldable sizing). It returns the node count to
// start v with given currently free nodes, or 0 if the job cannot start.
// Implementations must respect the job's [min,max] bounds and free.
type SizeFunc func(v *JobView, free int) int

// PolicySizer adapts a SizePolicy enum value to a SizeFunc.
func PolicySizer(policy SizePolicy) SizeFunc {
	return func(v *JobView, free int) int {
		return StartSize(v, free, policy)
	}
}

// EfficiencySizer returns a SizeFunc for moldable (and adaptive) jobs that
// picks the LARGEST size whose analytic parallel efficiency relative to
// the job's minimum stays at or above threshold — the textbook
// "efficiency-bounded" moldable policy. Rigid jobs keep their request;
// jobs whose models cannot be estimated fall back to the requested size.
func EfficiencySizer(ref job.PlatformRef, threshold float64) SizeFunc {
	return func(v *JobView, free int) int {
		j := v.Job
		if j.Type == job.Rigid {
			return StartSize(v, free, SizeRequested)
		}
		minN, maxN := j.MinNodes(), j.MaxNodes()
		if minN > free {
			return 0
		}
		limit := min(maxN, free)
		best := minN
		for n := minN + 1; n <= limit; n++ {
			eff, err := job.Efficiency(j, n, ref)
			if err != nil {
				return StartSize(v, free, SizeRequested)
			}
			if eff >= threshold {
				best = n
			}
		}
		return best
	}
}

// pickSize dispatches to the custom SizeFunc when set, else the enum
// policy.
func pickSize(v *JobView, free int, fn SizeFunc, policy SizePolicy) int {
	if fn != nil {
		return fn(v, free)
	}
	return StartSize(v, free, policy)
}

// StartSize picks the node count to start v with under the policy, given
// free nodes. It returns 0 when the job cannot start now.
func StartSize(v *JobView, free int, policy SizePolicy) int {
	j := v.Job
	if j.Type == job.Rigid {
		if j.NumNodes <= free {
			return j.NumNodes
		}
		return 0
	}
	minN, maxN := j.MinNodes(), j.MaxNodes()
	if minN > free {
		return 0
	}
	var want int
	switch policy {
	case SizeMax:
		want = maxN
	case SizeMin:
		want = minN
	default:
		want = j.NumNodes
		if want == 0 {
			want = minN
		}
	}
	if want > maxN {
		want = maxN
	}
	if want < minN {
		want = minN
	}
	if want > free {
		want = free // still >= minN, checked above
	}
	return want
}
