package sched

import (
	"testing"

	"repro/internal/job"
)

var sizerRef = job.PlatformRef{NodeSpeed: 1e9, LinkBW: 1e9, PFSReadBW: 2e9, PFSWriteBW: 2e9}

func amdahlMoldable(id int, serial float64, minN, maxN int) *JobView {
	return &JobView{
		ID: job.ID(id),
		Job: &job.Job{
			ID: job.ID(id), Type: job.Moldable,
			NumNodesMin: minN, NumNodesMax: maxN, NumNodes: minN,
			Args: map[string]float64{"flops": 1e10, "serial": serial},
			App: &job.Application{Phases: []job.Phase{{
				Tasks: []job.Task{{
					Kind:  job.TaskCompute,
					Model: job.MustExprModel("flops*(serial + (1-serial)/num_nodes)"),
				}},
			}}},
		},
		State: StatePending,
	}
}

func TestEfficiencySizerPerfectScalingTakesMax(t *testing.T) {
	sizer := EfficiencySizer(sizerRef, 0.9)
	v := amdahlMoldable(0, 0, 1, 16) // no serial fraction: perfect scaling
	if got := sizer(v, 32); got != 16 {
		t.Errorf("perfect scaler sized at %d, want 16", got)
	}
}

func TestEfficiencySizerSerialFractionLimits(t *testing.T) {
	sizer := EfficiencySizer(sizerRef, 0.8)
	v := amdahlMoldable(0, 0.2, 1, 16)
	got := sizer(v, 32)
	// eff(n) = T(1)/(T(n)*n); T(n) = 10*(0.2+0.8/n).
	// eff(2)=0.833, eff(3)=0.714 -> largest n with eff >= 0.8 is 2.
	if got != 2 {
		t.Errorf("20%% serial job sized at %d, want 2", got)
	}
}

func TestEfficiencySizerRespectsFree(t *testing.T) {
	sizer := EfficiencySizer(sizerRef, 0.5)
	v := amdahlMoldable(0, 0, 4, 16)
	if got := sizer(v, 6); got != 6 {
		t.Errorf("sized %d with 6 free, want 6", got)
	}
	if got := sizer(v, 3); got != 0 {
		t.Errorf("sized %d below minimum, want 0", got)
	}
}

func TestEfficiencySizerRigidUnchanged(t *testing.T) {
	sizer := EfficiencySizer(sizerRef, 0.9)
	v := mkPending(0, 8, 0)
	if got := sizer(v, 16); got != 8 {
		t.Errorf("rigid job resized to %d", got)
	}
}

func TestPolicySizer(t *testing.T) {
	sizer := PolicySizer(SizeMax)
	v := amdahlMoldable(0, 0, 2, 8)
	if got := sizer(v, 100); got != 8 {
		t.Errorf("PolicySizer(SizeMax) = %d, want 8", got)
	}
}

func TestAlgorithmsAcceptSizeFn(t *testing.T) {
	// An EASY with an efficiency sizer starts the moldable job at its
	// efficiency-bounded size instead of its request.
	e := &EASY{SizeFn: EfficiencySizer(sizerRef, 0.8)}
	v := amdahlMoldable(0, 0.2, 1, 16)
	inv := &Invocation{FreeNodes: 16, TotalNodes: 16, Pending: []*JobView{v}}
	ds := e.Schedule(inv)
	if len(ds) != 1 || ds[0].NumNodes != 2 {
		t.Errorf("EASY with efficiency sizer: %v, want start with 2 nodes", ds)
	}
}
