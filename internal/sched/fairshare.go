package sched

import "math"

// FirstFit is list scheduling: every pending job that fits starts, in
// submission order, skipping any that do not fit. Maximizes instantaneous
// utilization but can starve wide jobs indefinitely — the classic baseline
// that motivates backfilling with reservations.
type FirstFit struct {
	Sizing SizePolicy
	SizeFn SizeFunc
}

// Name implements Algorithm.
func (f *FirstFit) Name() string { return "firstfit" }

// Schedule implements Algorithm.
func (f *FirstFit) Schedule(inv *Invocation) []Decision {
	var out []Decision
	free := inv.FreeNodes
	for _, v := range inv.Pending {
		n := pickSize(v, free, f.SizeFn, f.Sizing)
		if n == 0 {
			continue
		}
		out = append(out, Start(v.ID, n))
		free -= n
	}
	return out
}

// FairShare orders the queue by accumulated per-user resource usage
// (node-seconds, exponentially decayed) — users who consumed less go
// first — and then applies EASY-style backfilling within that order.
//
// Usage is integrated across invocations: because the engine invokes the
// algorithm on every allocation change (event-driven mode), summing
// nodes×Δt of the running jobs between invocations is exact. A FairShare
// value is therefore stateful and must not be shared between simulation
// runs.
type FairShare struct {
	Sizing SizePolicy
	SizeFn SizeFunc
	// HalfLife is the decay half-life of historical usage in seconds
	// (0 = no decay).
	HalfLife float64

	usage    map[string]float64
	prevLoad map[string]int // nodes per user at the previous invocation
	lastNow  float64
}

// Name implements Algorithm.
func (f *FairShare) Name() string { return "fairshare" }

// Usage returns a user's accumulated (decayed) node-seconds so far.
func (f *FairShare) Usage(user string) float64 { return f.usage[user] }

func userOf(v *JobView) string {
	if v.Job.User == "" {
		return "(nobody)"
	}
	return v.Job.User
}

// Schedule implements Algorithm.
func (f *FairShare) Schedule(inv *Invocation) []Decision {
	if f.usage == nil {
		f.usage = map[string]float64{}
		f.prevLoad = map[string]int{}
		f.lastNow = inv.Now
	}
	// Integrate usage since the last invocation using the allocation that
	// held during that interval (the previous invocation's running set —
	// allocations cannot change without an invocation in event-driven
	// mode, so this is exact).
	dt := inv.Now - f.lastNow
	if dt > 0 {
		if f.HalfLife > 0 {
			decay := math.Exp2(-dt / f.HalfLife)
			for u := range f.usage {
				f.usage[u] *= decay
			}
		}
		for u, nodes := range f.prevLoad {
			f.usage[u] += float64(nodes) * dt
		}
		f.lastNow = inv.Now
	}
	clear(f.prevLoad)
	for _, v := range inv.Running {
		f.prevLoad[userOf(v)] += v.Nodes
	}

	// Order pending jobs by user usage, stable within a user.
	order := make([]*JobView, len(inv.Pending))
	copy(order, inv.Pending)
	stableSortBy(order, func(a, b *JobView) bool {
		return f.usage[userOf(a)] < f.usage[userOf(b)]
	})

	// EASY discipline over the fair order.
	var out []Decision
	free := inv.FreeNodes
	i := 0
	for ; i < len(order); i++ {
		n := pickSize(order[i], free, f.SizeFn, f.Sizing)
		if n == 0 {
			break
		}
		out = append(out, Start(order[i].ID, n))
		free -= n
	}
	if i >= len(order) {
		return out
	}
	head := order[i]
	shadow, extra := shadowTime(inv, free, head.Job.MinNodes())
	for _, v := range order[i+1:] {
		n := pickSize(v, free, f.SizeFn, f.Sizing)
		if n == 0 {
			continue
		}
		endsBeforeShadow := inv.Now+v.WallTimeOrInf() <= shadow
		fitsExtra := n <= extra
		if !endsBeforeShadow && !fitsExtra {
			continue
		}
		out = append(out, Start(v.ID, n))
		free -= n
		if fitsExtra && !endsBeforeShadow {
			extra -= n
		}
	}
	return out
}
