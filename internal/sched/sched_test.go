package sched

import (
	"math"
	"testing"

	"repro/internal/job"
)

// mkPending builds a pending view for a rigid job of n nodes.
func mkPending(id int, n int, walltime float64) *JobView {
	return &JobView{
		ID: job.ID(id),
		Job: &job.Job{
			ID: job.ID(id), Type: job.Rigid, NumNodes: n, WallTimeLimit: walltime,
			App: &job.Application{Phases: []job.Phase{{Tasks: []job.Task{{Kind: job.TaskDelay, Model: job.ConstModel(1)}}}}},
		},
		State: StatePending,
	}
}

func mkRunning(id int, n int, start, end float64) *JobView {
	v := mkPending(id, n, 0)
	v.State = StateRunning
	v.Nodes = n
	v.StartTime = start
	v.ExpectedEnd = end
	return v
}

func mkMalleable(id, cur, minN, maxN int, atSP bool) *JobView {
	v := &JobView{
		ID: job.ID(id),
		Job: &job.Job{
			ID: job.ID(id), Type: job.Malleable, NumNodesMin: minN, NumNodesMax: maxN, NumNodes: cur,
		},
		State:             StateRunning,
		Nodes:             cur,
		AtSchedulingPoint: atSP,
		ExpectedEnd:       math.Inf(1),
	}
	return v
}

func decisionsByKind(ds []Decision, k DecisionKind) []Decision {
	var out []Decision
	for _, d := range ds {
		if d.Kind == k {
			out = append(out, d)
		}
	}
	return out
}

func TestStartSize(t *testing.T) {
	rigid := mkPending(0, 8, 0)
	if got := StartSize(rigid, 8, SizeRequested); got != 8 {
		t.Errorf("rigid fits = %d", got)
	}
	if got := StartSize(rigid, 7, SizeRequested); got != 0 {
		t.Errorf("rigid overflows = %d", got)
	}
	mold := &JobView{Job: &job.Job{Type: job.Moldable, NumNodes: 8, NumNodesMin: 2, NumNodesMax: 16}}
	if got := StartSize(mold, 100, SizeRequested); got != 8 {
		t.Errorf("moldable requested = %d", got)
	}
	if got := StartSize(mold, 100, SizeMax); got != 16 {
		t.Errorf("moldable max = %d", got)
	}
	if got := StartSize(mold, 100, SizeMin); got != 2 {
		t.Errorf("moldable min = %d", got)
	}
	if got := StartSize(mold, 5, SizeRequested); got != 5 {
		t.Errorf("moldable clamped to free = %d", got)
	}
	if got := StartSize(mold, 1, SizeRequested); got != 0 {
		t.Errorf("moldable below min = %d", got)
	}
	noPref := &JobView{Job: &job.Job{Type: job.Malleable, NumNodesMin: 3, NumNodesMax: 9}}
	if got := StartSize(noPref, 100, SizeRequested); got != 3 {
		t.Errorf("no preference defaults to min = %d", got)
	}
}

func TestFCFSBasic(t *testing.T) {
	f := &FCFS{}
	inv := &Invocation{
		Now:        0,
		FreeNodes:  10,
		TotalNodes: 10,
		Pending:    []*JobView{mkPending(0, 4, 0), mkPending(1, 4, 0), mkPending(2, 4, 0)},
	}
	ds := f.Schedule(inv)
	// 4 + 4 fit, third blocks.
	if len(ds) != 2 {
		t.Fatalf("decisions %v", ds)
	}
	if ds[0].Job != 0 || ds[1].Job != 1 {
		t.Errorf("wrong jobs started: %v", ds)
	}
}

func TestFCFSHeadBlocks(t *testing.T) {
	f := &FCFS{}
	inv := &Invocation{
		FreeNodes:  10,
		TotalNodes: 16,
		Pending:    []*JobView{mkPending(0, 12, 0), mkPending(1, 2, 0)},
	}
	ds := f.Schedule(inv)
	if len(ds) != 0 {
		t.Errorf("FCFS must not skip the blocked head: %v", ds)
	}
}

func TestSJFOrdersByWalltime(t *testing.T) {
	s := &SJF{}
	inv := &Invocation{
		FreeNodes:  4,
		TotalNodes: 16,
		Pending: []*JobView{
			mkPending(0, 4, 1000),
			mkPending(1, 4, 10),
			mkPending(2, 4, 100),
		},
	}
	ds := s.Schedule(inv)
	if len(ds) != 1 || ds[0].Job != 1 {
		t.Errorf("SJF should start the shortest job: %v", ds)
	}
}

func TestEASYBackfill(t *testing.T) {
	e := &EASY{}
	// 10-node machine. Job A runs on 6 until t=100. Head job needs 8
	// (blocked until A ends). A 2-node job ending before t=100 backfills;
	// a long 4-node job would delay the reservation only if it used more
	// than the extra nodes: after A ends, 10-8=2 extra remain, so a
	// 2-node long job also backfills, but a 4-node long one must not.
	inv := &Invocation{
		Now:        0,
		FreeNodes:  4,
		TotalNodes: 10,
		Running:    []*JobView{mkRunning(0, 6, 0, 100)},
		Pending: []*JobView{
			mkPending(1, 8, 500),  // head, blocked
			mkPending(2, 2, 50),   // fits before shadow
			mkPending(3, 4, 1000), // would delay head
			mkPending(4, 2, 1000), // fits within extra
		},
	}
	ds := e.Schedule(inv)
	starts := decisionsByKind(ds, DecisionStart)
	got := map[job.ID]bool{}
	for _, d := range starts {
		got[d.Job] = true
	}
	if got[1] {
		t.Error("blocked head started")
	}
	if !got[2] {
		t.Error("short job not backfilled")
	}
	if got[3] {
		t.Error("long wide job backfilled, delays reservation")
	}
	if !got[4] {
		t.Error("narrow long job not backfilled into extra nodes")
	}
}

func TestEASYGreedyPrefix(t *testing.T) {
	e := &EASY{}
	inv := &Invocation{
		FreeNodes:  8,
		TotalNodes: 8,
		Pending:    []*JobView{mkPending(0, 4, 10), mkPending(1, 4, 10)},
	}
	ds := e.Schedule(inv)
	if len(ds) != 2 {
		t.Errorf("both jobs should start: %v", ds)
	}
}

func TestConservativeDoesNotDelayReservations(t *testing.T) {
	c := &Conservative{}
	// Machine 10. Running: 6 nodes until t=100. Queue: head 8 nodes
	// (reserved at 100, runtime 100), then a long 4-node job. Starting the
	// 4-node job now (runtime 1000) would overlap [100, 200) when only
	// 10-8 = 2 nodes are spare: must not start. A short 4-node job (ends
	// at 50) must start.
	inv := &Invocation{
		Now:        0,
		FreeNodes:  4,
		TotalNodes: 10,
		Running:    []*JobView{mkRunning(0, 6, 0, 100)},
		Pending: []*JobView{
			mkPending(1, 8, 100),
			mkPending(2, 4, 1000),
			mkPending(3, 4, 50),
		},
	}
	ds := c.Schedule(inv)
	got := map[job.ID]bool{}
	for _, d := range ds {
		got[d.Job] = true
	}
	if got[1] {
		t.Error("head started despite insufficient nodes")
	}
	if got[2] {
		t.Error("long job started, delaying the head reservation")
	}
	if !got[3] {
		t.Error("short job should start (finishes before the reservation)")
	}
}

func TestConservativeLaterJobsGetReservations(t *testing.T) {
	c := &Conservative{}
	// Two successive 8-node jobs on an 8-node machine: the second gets a
	// reservation after the first's reservation, and a third 8-node short
	// job cannot jump either.
	inv := &Invocation{
		Now:        0,
		FreeNodes:  0,
		TotalNodes: 8,
		Running:    []*JobView{mkRunning(0, 8, 0, 10)},
		Pending: []*JobView{
			mkPending(1, 8, 10),
			mkPending(2, 8, 10),
		},
	}
	ds := c.Schedule(inv)
	if len(ds) != 0 {
		t.Errorf("nothing can start now: %v", ds)
	}
}

func TestAdaptiveExpandsIntoFreeNodes(t *testing.T) {
	a := &Adaptive{}
	m := mkMalleable(0, 4, 2, 16, true)
	inv := &Invocation{
		Now:        0,
		FreeNodes:  6,
		TotalNodes: 10,
		Running:    []*JobView{m},
	}
	ds := a.Schedule(inv)
	resizes := decisionsByKind(ds, DecisionResize)
	if len(resizes) != 1 {
		t.Fatalf("want one resize, got %v", ds)
	}
	if resizes[0].NumNodes != 10 {
		t.Errorf("expand to %d, want 10", resizes[0].NumNodes)
	}
}

func TestAdaptiveExpandRespectsMax(t *testing.T) {
	a := &Adaptive{}
	m := mkMalleable(0, 4, 2, 6, true)
	inv := &Invocation{
		FreeNodes:  6,
		TotalNodes: 10,
		Running:    []*JobView{m},
	}
	ds := a.Schedule(inv)
	resizes := decisionsByKind(ds, DecisionResize)
	if len(resizes) != 1 || resizes[0].NumNodes != 6 {
		t.Errorf("expand should stop at max: %v", ds)
	}
}

func TestAdaptiveEquipartition(t *testing.T) {
	a := &Adaptive{}
	m1 := mkMalleable(0, 2, 1, 16, true)
	m2 := mkMalleable(1, 2, 1, 16, true)
	inv := &Invocation{
		FreeNodes:  8,
		TotalNodes: 12,
		Running:    []*JobView{m1, m2},
	}
	ds := a.Schedule(inv)
	resizes := decisionsByKind(ds, DecisionResize)
	if len(resizes) != 2 {
		t.Fatalf("want two resizes: %v", ds)
	}
	for _, d := range resizes {
		if d.NumNodes != 6 {
			t.Errorf("equipartition gave %v, want 6 each", resizes)
		}
	}
}

func TestAdaptiveShrinksToAdmit(t *testing.T) {
	a := &Adaptive{}
	m := mkMalleable(0, 8, 2, 16, true)
	pend := mkPending(1, 6, 100)
	inv := &Invocation{
		FreeNodes:  0,
		TotalNodes: 8,
		Running:    []*JobView{m},
		Pending:    []*JobView{pend},
	}
	ds := a.Schedule(inv)
	if len(ds) < 2 {
		t.Fatalf("want shrink+start, got %v", ds)
	}
	if ds[0].Kind != DecisionResize || ds[0].NumNodes != 2 {
		t.Errorf("first decision should shrink to 2: %v", ds)
	}
	if ds[1].Kind != DecisionStart || ds[1].Job != 1 || ds[1].NumNodes != 6 {
		t.Errorf("second decision should start job 1 on 6: %v", ds)
	}
}

func TestAdaptiveShrinkOnlyAsNeeded(t *testing.T) {
	a := &Adaptive{}
	m := mkMalleable(0, 8, 2, 16, true)
	pend := mkPending(1, 2, 100)
	inv := &Invocation{
		FreeNodes:  0,
		TotalNodes: 8,
		Running:    []*JobView{m},
		Pending:    []*JobView{pend},
	}
	ds := a.Schedule(inv)
	if ds[0].Kind != DecisionResize || ds[0].NumNodes != 6 {
		t.Errorf("should shrink only to 6: %v", ds)
	}
}

func TestAdaptiveNoShrinkOption(t *testing.T) {
	a := &Adaptive{NoShrink: true}
	m := mkMalleable(0, 8, 2, 16, true)
	pend := mkPending(1, 6, 100)
	inv := &Invocation{
		FreeNodes:  0,
		TotalNodes: 8,
		Running:    []*JobView{m},
		Pending:    []*JobView{pend},
	}
	ds := a.Schedule(inv)
	for _, d := range ds {
		if d.Kind == DecisionResize && d.NumNodes < m.Nodes {
			t.Errorf("NoShrink violated: %v", ds)
		}
		if d.Kind == DecisionStart {
			t.Errorf("nothing should start without shrinking: %v", ds)
		}
	}
}

func TestAdaptiveNoExpandOption(t *testing.T) {
	a := &Adaptive{NoExpand: true}
	m := mkMalleable(0, 4, 2, 16, true)
	inv := &Invocation{
		FreeNodes:  6,
		TotalNodes: 10,
		Running:    []*JobView{m},
	}
	if ds := a.Schedule(inv); len(ds) != 0 {
		t.Errorf("NoExpand violated: %v", ds)
	}
}

func TestAdaptiveIgnoresJobsNotAtSchedulingPoint(t *testing.T) {
	a := &Adaptive{}
	m := mkMalleable(0, 4, 2, 16, false)
	inv := &Invocation{
		FreeNodes:  6,
		TotalNodes: 10,
		Running:    []*JobView{m},
	}
	if ds := a.Schedule(inv); len(ds) != 0 {
		t.Errorf("resized a job not at a scheduling point: %v", ds)
	}
}

func TestAdaptiveEvolvingGrants(t *testing.T) {
	a := &Adaptive{}
	ev := mkMalleable(0, 4, 2, 16, false)
	ev.Job.Type = job.Evolving
	ev.EvolvingRequest = 8
	inv := &Invocation{
		FreeNodes:  10,
		TotalNodes: 16,
		Running:    []*JobView{ev},
	}
	ds := a.Schedule(inv)
	grants := decisionsByKind(ds, DecisionGrant)
	if len(grants) != 1 || grants[0].NumNodes != 8 {
		t.Errorf("grow grant wrong: %v", ds)
	}
	// Shrink request always granted.
	ev.EvolvingRequest = 2
	ds = a.Schedule(inv)
	grants = decisionsByKind(ds, DecisionGrant)
	if len(grants) != 1 || grants[0].NumNodes != 2 {
		t.Errorf("shrink grant wrong: %v", ds)
	}
}

func TestAdaptiveEvolvingGrowClampedByFree(t *testing.T) {
	a := &Adaptive{}
	ev := mkMalleable(0, 4, 2, 16, false)
	ev.Job.Type = job.Evolving
	ev.EvolvingRequest = 12
	inv := &Invocation{
		FreeNodes:  3,
		TotalNodes: 16,
		Running:    []*JobView{ev},
	}
	ds := a.Schedule(inv)
	grants := decisionsByKind(ds, DecisionGrant)
	if len(grants) != 1 || grants[0].NumNodes != 7 {
		t.Errorf("partial grant wrong: %v", ds)
	}
	// No free nodes at all: denied.
	inv.FreeNodes = 0
	ds = a.Schedule(inv)
	if denies := decisionsByKind(ds, DecisionDeny); len(denies) != 1 {
		t.Errorf("expected deny: %v", ds)
	}
}

func TestReasonString(t *testing.T) {
	r := ReasonSubmit | ReasonPeriodic
	s := r.String()
	if s != "submit+periodic" {
		t.Errorf("Reason string %q", s)
	}
	if Reason(0).String() != "none" {
		t.Errorf("zero reason %q", Reason(0).String())
	}
}

func TestDecisionString(t *testing.T) {
	d := Start(3, 8)
	if d.String() != "start(job3, 8)" {
		t.Errorf("decision string %q", d.String())
	}
}
