package sched

import "sort"

// LocalityPack picks n nodes from the free list minimizing the number of
// leaf-switch groups the allocation spans (tree topologies): it fills the
// fullest groups first, breaking ties by lower group index. With
// groupSize <= 0 it degrades to lowest-numbered-first, the engine's own
// default. The returned slice is ascending.
func LocalityPack(freeList []int, n, groupSize int) []int {
	if n <= 0 || n > len(freeList) {
		return nil
	}
	if groupSize <= 0 {
		out := append([]int(nil), freeList[:n]...)
		sort.Ints(out)
		return out
	}
	// Bucket free nodes by group.
	groups := map[int][]int{}
	for _, id := range freeList {
		g := id / groupSize
		groups[g] = append(groups[g], id)
	}
	order := make([]int, 0, len(groups))
	for g := range groups {
		order = append(order, g)
	}
	// Fullest groups first; ties by group index for determinism.
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if len(groups[a]) != len(groups[b]) {
			return len(groups[a]) > len(groups[b])
		}
		return a < b
	})
	out := make([]int, 0, n)
	for _, g := range order {
		for _, id := range groups[g] {
			if len(out) == n {
				break
			}
			out = append(out, id)
		}
		if len(out) == n {
			break
		}
	}
	sort.Ints(out)
	return out
}

// Packed wraps another algorithm and rewrites its start decisions to use
// locality-packed placement. It leaves every other decision untouched.
type Packed struct {
	// Base provides the scheduling logic (default: EASY).
	Base Algorithm
}

// Name implements Algorithm.
func (p *Packed) Name() string {
	return "packed+" + p.base().Name()
}

// WantsFreeList implements FreeListUser: locality packing picks explicit
// nodes from the free list.
func (p *Packed) WantsFreeList() bool { return true }

func (p *Packed) base() Algorithm {
	if p.Base == nil {
		return &EASY{}
	}
	return p.Base
}

// Schedule implements Algorithm.
func (p *Packed) Schedule(inv *Invocation) []Decision {
	decisions := p.base().Schedule(inv)
	if inv.GroupSize <= 0 {
		return decisions
	}
	// Track which nodes remain free as we pin placements.
	free := append([]int(nil), inv.FreeList...)
	for i := range decisions {
		d := &decisions[i]
		if d.Kind != DecisionStart || len(d.Nodes) > 0 {
			continue
		}
		nodes := LocalityPack(free, d.NumNodes, inv.GroupSize)
		if nodes == nil {
			continue // let the engine try (and possibly reject) it
		}
		d.Nodes = nodes
		free = removeAll(free, nodes)
	}
	return decisions
}

// removeAll returns xs minus the sorted set rm (both ascending).
func removeAll(xs, rm []int) []int {
	out := xs[:0]
	i := 0
	for _, x := range xs {
		for i < len(rm) && rm[i] < x {
			i++
		}
		if i < len(rm) && rm[i] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}
