package sched

import (
	"math"
	"sort"
)

// Conservative implements conservative backfilling (Mu'alem & Feitelson
// 2001): every queued job receives a reservation in submission order, and a
// job may start now only if doing so does not push back any reservation
// made before it. Compared to EASY it gives predictability at some
// utilization cost.
type Conservative struct {
	Sizing SizePolicy
	SizeFn SizeFunc
}

// Name implements Algorithm.
func (c *Conservative) Name() string { return "conservative" }

// Schedule implements Algorithm.
func (c *Conservative) Schedule(inv *Invocation) []Decision {
	prof := newProfile(inv)
	var out []Decision
	for _, v := range inv.Pending {
		need := v.Job.MinNodes()
		want := pickSize(v, inv.TotalNodes, c.SizeFn, c.Sizing)
		if want == 0 {
			want = need
		}
		dur := v.WallTimeOrInf()
		start := prof.earliest(inv.Now, want, dur)
		if start == inv.Now {
			out = append(out, Start(v.ID, want))
		}
		// Reserve whether started or not, so later jobs cannot delay it.
		prof.reserve(start, dur, want)
	}
	return out
}

// profile tracks free nodes over future time as a step function, seeded
// from running jobs' expected ends.
type profile struct {
	times []float64 // ascending; times[0] == now
	free  []int     // free[i] valid on [times[i], times[i+1])
}

func newProfile(inv *Invocation) *profile {
	p := &profile{times: []float64{inv.Now}, free: []int{inv.FreeNodes}}
	// Collect release events from running jobs (known ends only; a job
	// without an estimate never releases within the profile horizon).
	type release struct {
		t float64
		n int
	}
	var rels []release
	for _, v := range inv.Running {
		if !math.IsInf(v.ExpectedEnd, 1) {
			rels = append(rels, release{v.ExpectedEnd, v.Nodes})
		}
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i].t < rels[j].t })
	for _, r := range rels {
		p.addStep(r.t)
		p.apply(r.t, math.Inf(1), r.n)
	}
	return p
}

// addStep ensures t is a breakpoint.
func (p *profile) addStep(t float64) {
	i := sort.SearchFloat64s(p.times, t)
	if i < len(p.times) && p.times[i] == t {
		return
	}
	if i == 0 {
		// Before now: clamp to now.
		return
	}
	p.times = append(p.times, 0)
	p.free = append(p.free, 0)
	copy(p.times[i+1:], p.times[i:])
	copy(p.free[i+1:], p.free[i:])
	p.times[i] = t
	p.free[i] = p.free[i-1]
}

// apply adds delta free nodes on [from, to).
func (p *profile) apply(from, to float64, delta int) {
	for i := range p.times {
		if p.times[i] >= from && p.times[i] < to {
			p.free[i] += delta
		}
	}
}

// earliest finds the first time >= now at which n nodes stay free for the
// whole duration.
func (p *profile) earliest(now float64, n int, duration float64) float64 {
	for i := range p.times {
		start := p.times[i]
		if start < now {
			continue
		}
		if p.fits(start, duration, n) {
			return start
		}
	}
	// After the last breakpoint everything released is accounted for.
	last := p.times[len(p.times)-1]
	if p.fits(last, duration, n) {
		return last
	}
	return math.Inf(1)
}

// fits reports whether n nodes are free during [start, start+duration).
func (p *profile) fits(start, duration float64, n int) bool {
	end := start + duration
	for i := range p.times {
		segStart := p.times[i]
		segEnd := math.Inf(1)
		if i+1 < len(p.times) {
			segEnd = p.times[i+1]
		}
		if segEnd <= start {
			continue
		}
		if segStart >= end {
			break
		}
		if p.free[i] < n {
			return false
		}
	}
	return true
}

// reserve claims n nodes on [start, start+duration).
func (p *profile) reserve(start, duration float64, n int) {
	if math.IsInf(start, 1) {
		return
	}
	end := start + duration
	p.addStep(start)
	if !math.IsInf(end, 1) {
		p.addStep(end)
	}
	p.apply(start, end, -n)
}
