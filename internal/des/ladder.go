package des

import "math"

// ladderQueue is a ladder queue (Tang & Goh): a three-tier priority queue
// tuned for the near-monotonic timestamps a discrete-event simulation
// produces. Schedule and fire are O(1) amortised instead of the binary
// heap's O(log n), which is what makes million-job simulations tractable.
//
//   - top: an unsorted overflow list for far-future events (time >=
//     topStart). Bulk arrivals (e.g. a million pre-scheduled job
//     submissions) land here with one append each.
//   - rungs: a stack of bucketed arrays, outermost coarsest. When the top
//     is transferred it is spread over a rung with ~one event per bucket;
//     an overloaded bucket is subdivided into a finer child rung.
//   - bottom: the reference eventHeap. Events enter it only when their
//     bucket is next to fire, so it stays small; because it orders with
//     the exact (time, priority, seq) comparator, the ladder's fire order
//     is bit-identical to the plain heap's.
//
// Correctness hinges on one routing invariant: an event reaches the
// bottom only when it is strictly earlier than everything still pending
// in any rung and below topStart, so nothing in a rung or the top can
// ever order before anything in the bottom. Three details keep the
// invariant airtight at timestamp boundaries:
//
//   - Routing and placement share one bucket-index computation
//     (ladderRung.bucketFor) and compare indices against cur instead of
//     comparing times against separately-rounded bucket edges; since the
//     index map is monotone in time, "routed below cur" implies strictly
//     earlier than every pending event of that rung.
//   - After a top transfer, topStart becomes math.Nextafter(maxT, +inf):
//     a later push at exactly maxT must join the tier that already holds
//     its equal-time peers (where the heap breaks the tie by sequence),
//     not sit in the top behind them.
//   - cur advances before a bucket's events are served, so an equal-time
//     push issued by a handler races into the bottom heap with its
//     peers, never into an already-served bucket.
//
// Buckets that cannot be subdivided (all-equal timestamps) fall back to
// the bottom heap, degrading gracefully to O(log n) for that burst.
//
// Cancelled events are dropped eagerly whenever a bucket or the top is
// swept; the onDrop callback lets the kernel keep its tombstone counter
// and free list in sync.
const (
	// ladderSpawnThreshold is the bucket population above which a finer
	// child rung is spawned instead of dumping into the bottom heap.
	ladderSpawnThreshold = 64
	// ladderTopDumpMin is the top population up to which a transfer goes
	// straight to the bottom heap (building a rung would cost more than
	// the heap's log factor saves).
	ladderTopDumpMin = 64
	// ladderMaxRungs bounds subdivision depth.
	ladderMaxRungs = 8
	// ladderMaxBuckets bounds a single rung's bucket array.
	ladderMaxBuckets = 1 << 20
	// ladderBucketPoolCap bounds the recycled-bucket pool. It must cover
	// the bucket count of a full rung spawn (one bucket per live event) or
	// steady-state re-bucketing allocates fresh bucket slices on every
	// spawn; spawns release their source buckets back as they are served,
	// so the pool is self-sustaining once warm.
	ladderBucketPoolCap = 4096
	// ladderBigBucketCap splits recycled buckets into two classes. Spawn
	// redistribution spreads ~one event per bucket and is happy with any
	// tiny slice; live pushes accumulate a whole transient cloud into one
	// bucket per rung step and need their big backing arrays back, or they
	// regrow an undersized slice to thousands of slots every cycle. The
	// threshold must sit above the mid-size buckets a child-rung serve
	// releases, or those pollute the big pool and upgrades keep drawing
	// too-small bases.
	ladderBigBucketCap = 1024
	// ladderBigUpgradeMin is the occupancy from which a live append that
	// is about to grow a bucket swaps in a recycled big array instead of
	// letting append reallocate. Below it, doubling a tiny slice is
	// cheaper than spending one of the few pooled big arrays on a bucket
	// that may never see more than a handful of events.
	ladderBigUpgradeMin = 16
	// ladderBigPoolCap bounds the big-bucket pool.
	ladderBigPoolCap = 64
)

type ladderRung struct {
	start   float64
	width   float64
	buckets [][]*Event
	cur     int // next bucket to serve
}

// bucketFor maps a timestamp to its bucket index with one fixed
// floating-point computation. Routing decisions compare the result
// against cur rather than comparing t against a separately-rounded bucket
// edge: because (t-start)/width and int truncation are monotone in t, an
// event routed below cur (to a deeper rung or the bottom heap) is
// guaranteed strictly earlier than every event still pending in this
// rung — no ulp-level disagreement between two roundings can reorder a
// pair. Out-of-range times clamp to the last bucket (high side) or map
// below zero (low side, routed deeper by the caller).
func (r *ladderRung) bucketFor(t float64) int {
	f := (t - r.start) / r.width
	if f < 0 {
		return -1
	}
	if f >= float64(len(r.buckets)) {
		return len(r.buckets) - 1
	}
	return int(f)
}

type ladderQueue struct {
	top      []*Event
	topStart float64
	rungs    []*ladderRung // outermost (coarsest) first
	bottom   eventHeap
	count    int
	onDrop   func(*Event)  // kernel hook: tombstone discarded
	pool     [][]*Event    // recycled small bucket slices (spawn spreads)
	bigPool  [][]*Event    // recycled large bucket slices (live accumulation)
	rungPool []*ladderRung // recycled exhausted rungs (all-nil bucket arrays)

	// Re-bucketing counters, exported through KernelStats for operational
	// observability. They count structural work (cold paths only — a
	// transfer or spawn touches many events at once) and never influence
	// routing, so the ladder's fire order is untouched.
	topTransfers uint64 // overflow list spread over a rung / the bottom
	rungSpawns   uint64 // overloaded bucket subdivided into a finer rung
}

func newLadderQueue(onDrop func(*Event)) *ladderQueue {
	return &ladderQueue{onDrop: onDrop}
}

func (l *ladderQueue) Len() int { return l.count }

// Push routes ev to the shallowest tier that may still hold its timestamp.
func (l *ladderQueue) Push(ev *Event) {
	l.count++
	t := float64(ev.time)
	if t >= l.topStart {
		ev.index = 0
		l.top = append(l.top, ev)
		return
	}
	// Outermost rung first: the first non-exhausted rung still holding
	// t's bucket is the event's natural home. Exhausted rungs (cur past
	// the last bucket) are skipped — their clamped last bucket has
	// already been served.
	for _, r := range l.rungs {
		if r.cur >= len(r.buckets) {
			continue
		}
		if idx := r.bucketFor(t); idx >= r.cur {
			l.rungInsert(r, idx, ev)
			return
		}
	}
	l.bottom.Push(ev)
}

// rungInsert places ev into r's bucket idx (already validated >= r.cur).
func (l *ladderQueue) rungInsert(r *ladderRung, idx int, ev *Event) {
	ev.index = 0
	b := r.buckets[idx]
	if b == nil {
		b = l.grabBucket()
	} else if len(b) == cap(b) && cap(b) >= ladderBigUpgradeMin {
		// This bucket is accumulating a transient cloud: the next append
		// would reallocate. Swap in a strictly larger recycled array so
		// steady-state accumulation reuses the arrays previous cycles
		// already grew instead of reallocating every cycle.
		if big := l.grabBigger(cap(b)); big != nil {
			big = big[:len(b)]
			copy(big, b)
			l.releaseBucket(b, len(b))
			b = big
		}
	}
	r.buckets[idx] = append(b, ev)
}

// Peek returns the earliest event without removing it, materialising it
// into the bottom heap first if needed.
func (l *ladderQueue) Peek() *Event {
	if l.bottom.Len() == 0 {
		l.advance()
	}
	return l.bottom.Peek()
}

// Pop removes and returns the earliest event, or nil when empty.
func (l *ladderQueue) Pop() *Event {
	if l.bottom.Len() == 0 {
		l.advance()
	}
	ev := l.bottom.Pop()
	if ev != nil {
		l.count--
	}
	return ev
}

// advance refills the bottom heap from the innermost rung, spawning finer
// rungs for overloaded buckets and transferring the top once the rungs are
// exhausted. It returns with the bottom non-empty unless the whole queue
// holds no live events.
func (l *ladderQueue) advance() {
	for l.bottom.Len() == 0 {
		if n := len(l.rungs); n > 0 {
			r := l.rungs[n-1]
			for r.cur < len(r.buckets) && len(r.buckets[r.cur]) == 0 {
				r.cur++
			}
			if r.cur >= len(r.buckets) {
				l.rungs[n-1] = nil
				l.rungs = l.rungs[:n-1]
				l.releaseRung(r)
				continue
			}
			b := r.buckets[r.cur]
			// Advance cur before serving so an equal-time push issued by
			// a handler joins the bottom heap, not this served bucket.
			r.buckets[r.cur] = nil
			r.cur++
			l.serveBucket(b)
			continue
		}
		if len(l.top) == 0 {
			return
		}
		l.transferTop()
	}
}

// serveBucket moves a bucket's live events toward the bottom: into a finer
// child rung when the bucket is overloaded and subdividable, directly into
// the bottom heap otherwise. Tombstones are dropped on the way.
func (l *ladderQueue) serveBucket(b []*Event) {
	live := b[:0]
	minT, maxT := math.Inf(1), math.Inf(-1)
	for _, ev := range b {
		if ev.dead {
			l.drop(ev)
			continue
		}
		t := float64(ev.time)
		if t < minT {
			minT = t
		}
		if t > maxT {
			maxT = t
		}
		live = append(live, ev)
	}
	if len(live) > ladderSpawnThreshold && maxT > minT && len(l.rungs) < ladderMaxRungs {
		if r := l.newRung(minT, maxT, len(live)); r != nil {
			l.rungSpawns++
			l.rungs = append(l.rungs, r)
			for _, ev := range live {
				l.rungInsert(r, r.bucketFor(float64(ev.time)), ev)
			}
			l.releaseBucket(b, len(live))
			return
		}
	}
	for _, ev := range live {
		l.bottom.Push(ev)
	}
	l.releaseBucket(b, len(live))
}

// transferTop spreads the top over a fresh rung (or straight into the
// bottom heap when small) and advances topStart past the largest
// transferred timestamp so equal-time latecomers follow their peers.
func (l *ladderQueue) transferTop() {
	live := l.top[:0]
	minT, maxT := math.Inf(1), math.Inf(-1)
	for _, ev := range l.top {
		if ev.dead {
			l.drop(ev)
			continue
		}
		t := float64(ev.time)
		if t < minT {
			minT = t
		}
		if t > maxT {
			maxT = t
		}
		live = append(live, ev)
	}
	if len(live) == 0 {
		clear(l.top)
		l.top = l.top[:0]
		return
	}
	l.topStart = math.Nextafter(maxT, math.Inf(1))
	l.topTransfers++
	if len(live) > ladderTopDumpMin && maxT > minT {
		if r := l.newRung(minT, maxT, len(live)); r != nil {
			l.rungSpawns++
			l.rungs = append(l.rungs, r)
			for _, ev := range live {
				l.rungInsert(r, r.bucketFor(float64(ev.time)), ev)
			}
			clear(l.top[:len(live)])
			l.top = l.top[:0]
			return
		}
	}
	for _, ev := range live {
		l.bottom.Push(ev)
	}
	clear(l.top[:len(live)])
	l.top = l.top[:0]
}

// newRung builds a rung spanning [minT, maxT] with roughly one bucket per
// event, reusing a recycled rung's storage when one with enough bucket
// capacity is pooled. It returns nil when the span is too narrow to
// subdivide in floating point; the caller falls back to the bottom heap.
func (l *ladderQueue) newRung(minT, maxT float64, n int) *ladderRung {
	nb := n
	if nb > ladderMaxBuckets {
		nb = ladderMaxBuckets
	}
	if nb < 2 {
		nb = 2
	}
	width := (maxT - minT) / float64(nb)
	if width <= 0 || math.IsInf(width, 0) || math.IsNaN(width) {
		return nil
	}
	for i, r := range l.rungPool {
		if cap(r.buckets) >= nb {
			k := len(l.rungPool) - 1
			l.rungPool[i] = l.rungPool[k]
			l.rungPool[k] = nil
			l.rungPool = l.rungPool[:k]
			r.start, r.width, r.cur = minT, width, 0
			r.buckets = r.buckets[:nb]
			return r
		}
	}
	// Allocate with power-of-two capacity headroom: spawn sizes drift
	// upward slowly in steady state (a transient cloud grows by a handful
	// of events per spawn), and exact-size arrays would make every spawn
	// a fresh allocation because no recycled rung is ever quite big
	// enough.
	capHint := 2
	for capHint < nb {
		capHint <<= 1
	}
	if capHint > ladderMaxBuckets {
		capHint = ladderMaxBuckets
	}
	return &ladderRung{start: minT, width: width, buckets: make([][]*Event, nb, capHint)}
}

// releaseRung recycles an exhausted rung so steady-state re-bucketing
// stops allocating: the rung struct and its bucket array are handed to the
// next spawn instead of the garbage collector. Served buckets are already
// nil; skipped empty-but-allocated buckets (Compact can shrink one to
// length zero in place) go back to the bucket pool. When the pool is full
// the smaller of the released rung and the smallest pooled one is dropped,
// so pooled capacities converge upward toward the working set's spawn size.
func (l *ladderQueue) releaseRung(r *ladderRung) {
	for i, b := range r.buckets {
		if b != nil {
			l.releaseBucket(b, len(b))
			r.buckets[i] = nil
		}
	}
	r.buckets = r.buckets[:0]
	r.start, r.width, r.cur = 0, 0, 0
	if len(l.rungPool) < ladderMaxRungs {
		l.rungPool = append(l.rungPool, r)
		return
	}
	small := 0
	for i, p := range l.rungPool {
		if cap(p.buckets) < cap(l.rungPool[small].buckets) {
			small = i
		}
	}
	if cap(l.rungPool[small].buckets) < cap(r.buckets) {
		l.rungPool[small] = r
	}
}

// Compact sweeps every tier, dropping all tombstones.
func (l *ladderQueue) Compact(drop func(*Event)) {
	live := l.top[:0]
	for _, ev := range l.top {
		if ev.dead {
			l.count--
			drop(ev)
			continue
		}
		live = append(live, ev)
	}
	clear(l.top[len(live):])
	l.top = live
	for _, r := range l.rungs {
		for i := r.cur; i < len(r.buckets); i++ {
			b := r.buckets[i]
			if len(b) == 0 {
				continue
			}
			kept := b[:0]
			for _, ev := range b {
				if ev.dead {
					l.count--
					drop(ev)
					continue
				}
				kept = append(kept, ev)
			}
			clear(b[len(kept):])
			r.buckets[i] = kept
		}
	}
	n := l.bottom.Len()
	l.bottom.Compact(drop)
	l.count -= n - l.bottom.Len()
}

// drop discards a tombstone found during a sweep.
func (l *ladderQueue) drop(ev *Event) {
	l.count--
	l.onDrop(ev)
}

// grabBucket reuses a served bucket's backing array when one is spare.
func (l *ladderQueue) grabBucket() []*Event {
	if n := len(l.pool); n > 0 {
		b := l.pool[n-1]
		l.pool[n-1] = nil
		l.pool = l.pool[:n-1]
		return b
	}
	return nil
}

// grabBigger takes the largest recycled big array if it beats min, else
// leaves the pool untouched and returns nil. An upgrading bucket grows to
// the full transient-cloud size, so the best base is the biggest one a
// previous cycle already grew; the scan is bounded by ladderBigPoolCap
// and upgrades are rare (one per accumulation bucket, not one per push).
func (l *ladderQueue) grabBigger(min int) []*Event {
	n := len(l.bigPool)
	if n == 0 {
		return nil
	}
	best := 0
	for i, b := range l.bigPool {
		if cap(b) > cap(l.bigPool[best]) {
			best = i
		}
	}
	if cap(l.bigPool[best]) <= min {
		return nil
	}
	b := l.bigPool[best]
	l.bigPool[best] = l.bigPool[n-1]
	l.bigPool[n-1] = nil
	l.bigPool = l.bigPool[:n-1]
	return b
}

// releaseBucket returns a served bucket's storage to the size-matched pool.
func (l *ladderQueue) releaseBucket(b []*Event, used int) {
	if cap(b) == 0 {
		return
	}
	clear(b[:used])
	if cap(b) >= ladderBigBucketCap {
		if len(l.bigPool) < ladderBigPoolCap {
			l.bigPool = append(l.bigPool, b[:0])
			return
		}
		// Full: evict the smallest so pooled capacities converge upward
		// toward the working set's cloud size instead of churning.
		small := 0
		for i, p := range l.bigPool {
			if cap(p) < cap(l.bigPool[small]) {
				small = i
			}
		}
		if cap(l.bigPool[small]) < cap(b) {
			l.bigPool[small] = b[:0]
		}
		return
	}
	if len(l.pool) < ladderBucketPoolCap {
		l.pool = append(l.pool, b[:0])
	}
}
