package des

import (
	"math/rand"
	"sort"
	"testing"
)

// TestKernelTombstoneOrdering is the lazy-deletion kernel contract: under
// heavy random cancellation (enough to trigger bulk compaction several
// times), no cancelled event ever fires and the survivors still run in
// exact (time, priority, insertion) order.
func TestKernelTombstoneOrdering(t *testing.T) {
	k := NewKernel()
	rng := rand.New(rand.NewSource(42))
	const n = 4096
	type rec struct {
		time Time
		prio Priority
		id   int
	}
	events := make([]*Event, n)
	var fired []rec
	var want []rec
	cancelled := make([]bool, n)
	for i := 0; i < n; i++ {
		r := rec{Time(rng.Intn(200)), Priority(rng.Intn(3)), i}
		events[i] = k.Schedule(r.time, r.prio, func() {
			if cancelled[r.id] {
				t.Errorf("cancelled event %d fired", r.id)
			}
			fired = append(fired, r)
		})
		want = append(want, r)
	}
	// Cancel ~60% of the backlog in random order: more than enough to
	// cross the tombs*2 > len threshold and force compaction.
	for _, i := range rng.Perm(n) {
		if rng.Float64() < 0.6 {
			k.Cancel(events[i])
			cancelled[i] = true
		}
	}
	live := want[:0]
	for _, r := range want {
		if !cancelled[r.id] {
			live = append(live, r)
		}
	}
	sort.SliceStable(live, func(i, j int) bool {
		if live[i].time != live[j].time {
			return live[i].time < live[j].time
		}
		if live[i].prio != live[j].prio {
			return live[i].prio < live[j].prio
		}
		return live[i].id < live[j].id
	})
	if got := k.Pending(); got != len(live) {
		t.Fatalf("Pending() = %d, want %d live events", got, len(live))
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != len(live) {
		t.Fatalf("fired %d events, want %d", len(fired), len(live))
	}
	for i := range live {
		if fired[i] != live[i] {
			t.Fatalf("position %d: fired %+v, want %+v", i, fired[i], live[i])
		}
	}
}

// Cancelling mid-run (from handlers) must also suppress execution, even
// for events at the very front of the queue.
func TestKernelTombstoneCancelDuringRun(t *testing.T) {
	k := NewKernel()
	var events []*Event
	firedAt := make(map[int]bool)
	for i := 0; i < 128; i++ {
		i := i
		events = append(events, k.Schedule(Time(10+i), PriorityDefault, func() { firedAt[i] = true }))
	}
	// At t=5, cancel every even event.
	k.Schedule(5, PriorityDefault, func() {
		for i := 0; i < len(events); i += 2 {
			k.Cancel(events[i])
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if i%2 == 0 && firedAt[i] {
			t.Errorf("event %d cancelled mid-run but fired", i)
		}
		if i%2 == 1 && !firedAt[i] {
			t.Errorf("event %d never fired", i)
		}
	}
}

// Pending must count only live events while tombstones linger in the queue.
func TestKernelPendingExcludesTombstones(t *testing.T) {
	k := NewKernel()
	var evs []*Event
	for i := 0; i < 10; i++ {
		evs = append(evs, k.Schedule(Time(i+1), PriorityDefault, func() {}))
	}
	k.Cancel(evs[3])
	k.Cancel(evs[7])
	if got := k.Pending(); got != 8 {
		t.Errorf("Pending() = %d, want 8", got)
	}
	k.Cancel(evs[3]) // double cancel must not double count
	if got := k.Pending(); got != 8 {
		t.Errorf("Pending() after double cancel = %d, want 8", got)
	}
}

// Release recycles the allocation: a Schedule following Cancel+Release (or
// fire+Release) must reuse the same Event without leaking stale state.
func TestKernelReleaseReusesAllocation(t *testing.T) {
	k := NewKernel()
	ev := k.Schedule(1, PriorityActivity, func() {})
	k.Cancel(ev)
	k.Release(ev)
	// The tombstone is still queued; draining it feeds the free list.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	fired := false
	ev2 := k.Schedule(2, PriorityDefault, func() { fired = true })
	if ev2 != ev {
		t.Errorf("Schedule did not reuse the released event allocation")
	}
	if ev2.Time() != 2 || ev2.Cancelled() {
		t.Errorf("recycled event carries stale state: time %v cancelled %v", ev2.Time(), ev2.Cancelled())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("recycled event did not fire")
	}
}

// Releasing an event that already fired recycles it immediately.
func TestKernelReleaseAfterFire(t *testing.T) {
	k := NewKernel()
	ev := k.Schedule(1, PriorityDefault, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Release(ev)
	k.Release(ev) // double release is a no-op
	ev2 := k.Schedule(5, PriorityDefault, func() {})
	if ev2 != ev {
		t.Errorf("fired+released event was not reused")
	}
}

// Releasing a live scheduled event is an ownership bug and must panic.
func TestKernelReleaseLivePanics(t *testing.T) {
	k := NewKernel()
	ev := k.Schedule(1, PriorityDefault, func() {})
	defer func() {
		if recover() == nil {
			t.Error("Release of a live event did not panic")
		}
	}()
	k.Release(ev)
}

// Reschedule of a cancelled (tombstoned) event must create a fresh live
// event with the same handler and priority.
func TestKernelRescheduleCancelled(t *testing.T) {
	k := NewKernel()
	var at Time
	ev := k.Schedule(10, PriorityActivity, func() { at = k.Now() })
	k.Cancel(ev)
	ev2 := k.Reschedule(ev, 4)
	if ev2 == nil || ev2.Cancelled() {
		t.Fatal("reschedule of cancelled event yielded no live event")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 4 {
		t.Errorf("fired at %v, want 4", at)
	}
}

// Compaction must preserve live events exactly even when interleaved with
// new schedules, and must reset the tombstone count.
func TestKernelCompactionInterleaved(t *testing.T) {
	k := NewKernel()
	var got []Time
	handler := func(tm Time) func() {
		return func() { got = append(got, tm) }
	}
	var evs []*Event
	for i := 0; i < compactMinQueue*2; i++ {
		evs = append(evs, k.Schedule(Time(i), PriorityDefault, handler(Time(i))))
	}
	var want []Time
	for i, ev := range evs {
		if i%4 != 0 {
			k.Cancel(ev) // 75% dead: guarantees a compaction fires
		} else {
			want = append(want, Time(i))
		}
	}
	// Schedule more events after compaction; they interleave with survivors.
	for i := 0; i < 8; i++ {
		tm := Time(i*16) + 0.5
		k.Schedule(tm, PriorityDefault, handler(tm))
		want = append(want, tm)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: fired at %v, want %v", i, got[i], want[i])
		}
	}
	if k.tombs != 0 {
		t.Errorf("tombstone count %d after drain, want 0", k.tombs)
	}
}
