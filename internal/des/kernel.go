// Package des implements a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of events.
// Events scheduled for the same timestamp are ordered first by an explicit
// priority and then by insertion sequence, which makes simulations
// bit-reproducible across runs regardless of map iteration order or
// scheduling jitter in the host program.
//
// The pending-event store is a ladder queue (O(1) amortised schedule and
// fire for the near-monotonic timestamps a DES produces); the reference
// binary heap remains available via NewHeapKernel and fires events in the
// bit-identical order, which the equivalence tests pin.
//
// Cancellation is lazy: Cancel marks the event dead in O(1) and the queue
// skims tombstones off the top (or compacts in bulk when they accumulate),
// so the heavy cancel/reschedule churn of the fluid solver costs amortised
// constant time instead of a heap removal per cancel. Owners that hold the
// only reference to an event can additionally Release it, letting the
// kernel recycle the allocation for a future Schedule.
package des

import (
	"errors"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Infinity is a time later than any event the kernel will ever execute.
const Infinity = Time(math.MaxFloat64)

// Seconds returns the time as a plain float64 (seconds).
func (t Time) Seconds() float64 { return float64(t) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", float64(t)) }

// Priority orders events that share a timestamp. Lower values run first.
type Priority int

// Well-known priorities used by the simulation engine. Keeping them in the
// kernel package lets every subsystem agree on intra-timestamp ordering.
const (
	// PriorityActivity is used for resource-activity completions. They run
	// before anything else at a timestamp so that job state is up to date
	// when the scheduler observes it.
	PriorityActivity Priority = -20
	// PriorityEngine is used for engine-internal bookkeeping events.
	PriorityEngine Priority = -10
	// PriorityDefault is the priority of ordinary events.
	PriorityDefault Priority = 0
	// PriorityScheduler is used for scheduler invocations, which must
	// observe all state changes that happen at the same timestamp.
	PriorityScheduler Priority = 10
)

// Handler is the callback attached to an event. It runs with the kernel
// clock set to the event's timestamp.
type Handler func()

// Event is a scheduled callback. Events are created by Kernel.Schedule and
// may be cancelled until they fire.
type Event struct {
	time     Time
	priority Priority
	seq      uint64
	index    int // position in the heap, -1 once removed
	fn       Handler
	dead     bool // cancelled but possibly still queued (tombstone)
	released bool // owner relinquished the pointer; recycle when dequeued
}

// Time returns the timestamp the event is scheduled for.
func (e *Event) Time() Time { return e.time }

// Cancelled reports whether the event was cancelled before firing (or has
// already fired).
func (e *Event) Cancelled() bool { return e.dead || e.index < 0 }

// ErrHalted is returned by Run when the simulation was stopped explicitly.
var ErrHalted = errors.New("des: simulation halted")

// ErrStopped is returned by Run and RunUntil when the installed stop check
// (SetStopCheck) requested termination between events. The queue is left
// intact: the kernel can be resumed by calling Run again.
var ErrStopped = errors.New("des: simulation stopped by external request")

// compactMinQueue is the queue size below which tombstones are never
// compacted in bulk; skimming at the top suffices for small queues.
const compactMinQueue = 64

// slabMinPeak is the peak-queue size from which Schedule batch-allocates
// events: once a kernel has proven it queues hundreds of events, the free
// list is pre-sized from the peak counter so per-Schedule allocation
// amortises to (almost) zero. Small kernels keep the one-event-at-a-time
// behaviour, which also keeps allocation-identity semantics trivial for
// tests.
const slabMinPeak = 128

// eventQueue is the kernel's pending-event store. The default is the
// ladder queue; the reference binary heap stays available behind
// NewHeapKernel for debugging and equivalence pinning. Both order events
// by the exact (time, priority, seq) comparator, so the kernel's fire
// order is independent of the implementation.
type eventQueue interface {
	Push(*Event)
	Pop() *Event
	Peek() *Event
	Len() int
	// Compact drops every tombstoned event, handing each to drop.
	Compact(drop func(*Event))
}

// Kernel is a discrete-event simulation driver. The zero value is not
// usable; create kernels with NewKernel.
type Kernel struct {
	now       Time
	queue     eventQueue
	seq       uint64
	halted    bool
	steps     uint64
	maxTime   Time
	tombs     int      // dead events still sitting in the queue
	free      []*Event // released events ready for reuse by Schedule
	cancelled uint64
	recycled  uint64
	peakQueue int

	// Optional progress hook: onProgress runs every progressEvery fired
	// events. Zero progressEvery disables the check's body; the hot loop
	// pays one integer compare either way.
	progressEvery uint64
	onProgress    func()

	// Optional stop check: stopCheck is polled every stopEvery fired
	// events from Run/RunUntil; returning true stops the loop between
	// events with ErrStopped. Batching the poll keeps cancellation off the
	// hot path — the loop pays one integer compare per event when a check
	// is installed and nothing semantically observable when it never fires
	// (events execute in exactly the same order either way).
	stopEvery uint64
	stopCheck func() bool
}

// NewKernel returns an empty kernel with the clock at zero, driven by the
// ladder event queue.
func NewKernel() *Kernel {
	k := &Kernel{maxTime: Infinity}
	k.queue = newLadderQueue(k.dropTombstone)
	return k
}

// NewHeapKernel returns a kernel driven by the reference binary-heap event
// queue. It exists for debugging and equivalence testing (mirroring the
// fluid solver's ForceFullSolve switch): fire order and all observable
// results are bit-identical to NewKernel's ladder queue, just slower at
// scale.
func NewHeapKernel() *Kernel {
	k := &Kernel{maxTime: Infinity}
	k.queue = &eventHeap{}
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Steps returns the number of events executed so far. It is useful for
// simulator-performance experiments.
func (k *Kernel) Steps() uint64 { return k.steps }

// Pending returns the number of live (non-cancelled) events queued.
func (k *Kernel) Pending() int { return k.queue.Len() - k.tombs }

// KernelStats are the kernel's lifetime counters, for self-profiling.
// TopTransfers and RungSpawns describe the ladder queue's re-bucketing
// activity and stay zero on the reference heap kernel; they are exported
// for operational metrics only and are deliberately NOT part of the
// telemetry snapshot, which must stay byte-identical across queue
// implementations.
type KernelStats struct {
	Scheduled    uint64 // events ever enqueued (including recycled allocations)
	Fired        uint64 // events popped and executed
	Cancelled    uint64 // events tombstoned before firing
	Recycled     uint64 // Schedule calls served from the free list
	PeakQueue    int    // high-water mark of the queue, tombstones included
	Pending      int    // live events still queued at sample time
	TopTransfers uint64 // ladder overflow lists spread into rungs/bottom
	RungSpawns   uint64 // ladder buckets subdivided into finer rungs
}

// Stats samples the kernel's counters.
func (k *Kernel) Stats() KernelStats {
	s := KernelStats{
		Scheduled: k.seq,
		Fired:     k.steps,
		Cancelled: k.cancelled,
		Recycled:  k.recycled,
		PeakQueue: k.peakQueue,
		Pending:   k.Pending(),
	}
	if lq, ok := k.queue.(*ladderQueue); ok {
		s.TopTransfers = lq.topTransfers
		s.RungSpawns = lq.rungSpawns
	}
	return s
}

// SetProgress installs a callback invoked after every n fired events.
// n = 0 (or a nil fn) removes the hook.
func (k *Kernel) SetProgress(n uint64, fn func()) {
	if n == 0 || fn == nil {
		k.progressEvery, k.onProgress = 0, nil
		return
	}
	k.progressEvery, k.onProgress = n, fn
}

// SetStopCheck installs a cancellation probe polled every n fired events
// during Run/RunUntil. When fn reports true the loop returns ErrStopped
// with all remaining events queued, so execution can resume later.
// n = 0 (or a nil fn) removes the probe.
func (k *Kernel) SetStopCheck(n uint64, fn func() bool) {
	if n == 0 || fn == nil {
		k.stopEvery, k.stopCheck = 0, nil
		return
	}
	k.stopEvery, k.stopCheck = n, fn
}

// Schedule enqueues fn to run at absolute time t with the given priority.
// Scheduling in the past panics: it always indicates a simulation bug.
func (k *Kernel) Schedule(t Time, p Priority, fn Handler) *Event {
	return k.schedule(t, p, fn, false)
}

// ScheduleTransient enqueues a fire-and-forget event: the caller gets no
// handle, must not cancel it, and the kernel recycles the allocation the
// moment the handler returns. Engine hot paths use it for the
// schedule-now bookkeeping events that dominate large simulations; with
// it, steady-state scheduling allocates nothing.
func (k *Kernel) ScheduleTransient(t Time, p Priority, fn Handler) {
	k.schedule(t, p, fn, true)
}

// ScheduleTransientAfter is ScheduleTransient at now + d.
func (k *Kernel) ScheduleTransientAfter(d Time, p Priority, fn Handler) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	k.schedule(k.now+d, p, fn, true)
}

func (k *Kernel) schedule(t Time, p Priority, fn Handler, transient bool) *Event {
	if t < k.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("des: nil event handler")
	}
	var ev *Event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		*ev = Event{time: t, priority: p, seq: k.seq, fn: fn, released: transient}
		k.recycled++
	} else if k.peakQueue >= slabMinPeak {
		// Batch-allocate from one backing array, pre-sizing the free list
		// from the proven peak so the next thousands of Schedules hit it.
		batch := k.peakQueue / 4
		if batch > 4096 {
			batch = 4096
		}
		slab := make([]Event, batch)
		for i := batch - 1; i >= 1; i-- {
			k.free = append(k.free, &slab[i])
		}
		ev = &slab[0]
		*ev = Event{time: t, priority: p, seq: k.seq, fn: fn, released: transient}
	} else {
		ev = &Event{time: t, priority: p, seq: k.seq, fn: fn, released: transient}
	}
	k.seq++
	k.queue.Push(ev)
	if n := k.queue.Len(); n > k.peakQueue {
		k.peakQueue = n
	}
	return ev
}

// ScheduleAfter enqueues fn to run d seconds after the current time.
func (k *Kernel) ScheduleAfter(d Time, p Priority, fn Handler) *Event {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return k.Schedule(k.now+d, p, fn)
}

// Cancel marks ev dead in O(1); the queue drops the tombstone lazily.
// Cancelling an event that already fired or was cancelled is a no-op.
func (k *Kernel) Cancel(ev *Event) {
	if ev == nil || ev.dead || ev.index < 0 {
		return
	}
	ev.dead = true
	k.tombs++
	k.cancelled++
	// Keep the queue at least half live so skimming stays amortised O(1)
	// and memory is bounded by twice the live event count.
	if n := k.queue.Len(); k.tombs*2 > n && n >= compactMinQueue {
		k.compact()
	}
}

// Release hands an event's allocation back to the kernel for reuse. The
// caller asserts it holds the only remaining reference and will not touch
// the pointer again; the event must already be cancelled or fired.
// Releasing nil is a no-op.
func (k *Kernel) Release(ev *Event) {
	if ev == nil || ev.released {
		return
	}
	if ev.index >= 0 && !ev.dead {
		panic("des: Release of a live scheduled event")
	}
	ev.released = true
	if ev.index < 0 {
		k.recycle(ev)
	}
	// Otherwise the event is a tombstone still in the heap; it is recycled
	// when skimmed or compacted away.
}

// recycle pushes a detached, released event onto the free list.
func (k *Kernel) recycle(ev *Event) {
	ev.fn = nil
	k.free = append(k.free, ev)
}

// skim pops dead events off the top of the queue, recycling released ones.
func (k *Kernel) skim() {
	for {
		ev := k.queue.Peek()
		if ev == nil || !ev.dead {
			return
		}
		k.queue.Pop()
		k.tombs--
		if ev.released {
			k.recycle(ev)
		}
	}
}

// compact rebuilds the queue without tombstones in O(n).
func (k *Kernel) compact() {
	k.queue.Compact(k.dropTombstone)
}

// dropTombstone is the queue's callback for a cancelled event it discards
// outside the normal pop path (bulk compaction, or the ladder queue
// sweeping a bucket). It keeps the tombstone counter exact and recycles
// released allocations.
func (k *Kernel) dropTombstone(ev *Event) {
	ev.index = -1
	k.tombs--
	if ev.released {
		k.recycle(ev)
	}
}

// Reschedule moves an event to a new time, preserving its handler and
// priority. If the event already fired it is re-created.
func (k *Kernel) Reschedule(ev *Event, t Time) *Event {
	if ev == nil {
		panic("des: reschedule of nil event")
	}
	fn, prio := ev.fn, ev.priority
	k.Cancel(ev)
	return k.Schedule(t, prio, fn)
}

// Halt stops the run loop after the current event completes.
func (k *Kernel) Halt() { k.halted = true }

// SetHorizon limits Run to events at or before t. Events beyond the horizon
// remain queued.
func (k *Kernel) SetHorizon(t Time) { k.maxTime = t }

// Step executes the single earliest event. It returns false when the queue
// is empty or the next event lies beyond the horizon.
func (k *Kernel) Step() bool {
	k.skim()
	ev := k.queue.Peek()
	if ev == nil || ev.time > k.maxTime || k.halted {
		return false
	}
	k.queue.Pop()
	k.now = ev.time
	k.steps++
	if k.progressEvery != 0 && k.steps%k.progressEvery == 0 {
		k.onProgress()
	}
	fn := ev.fn
	fn()
	// A transient event goes straight back to the free list — but only if
	// the handler left it detached. The guards matter: the handler may
	// have Released it already (fn is then nil), or Released-and-reused
	// it via Schedule for a brand-new purpose, in which case it is live
	// in the queue again (index >= 0) or even a tombstone (dead) whose
	// allocation the queue still references; recycling those here would
	// alias one Event between the free list and the pending queue.
	if ev.released && !ev.dead && ev.index < 0 && ev.fn != nil {
		k.recycle(ev)
	}
	return true
}

// StepN executes up to n events and returns how many fired. Like Step it
// stops early at an empty queue, the horizon, or a Halt; unlike Run it
// never consults the stop check — the caller is the driver and decides
// between batches. StepN is the primitive session-style drivers build
// single-stepping and bounded bursts on.
func (k *Kernel) StepN(n int) int {
	fired := 0
	for fired < n && k.Step() {
		fired++
	}
	return fired
}

// Run executes events until the queue drains, the horizon is reached, or
// Halt is called. It returns ErrHalted in the latter case, and ErrStopped
// when an installed stop check (SetStopCheck) fired between events.
func (k *Kernel) Run() error {
	for k.Step() {
		if k.stopEvery != 0 && k.steps%k.stopEvery == 0 && k.stopCheck() {
			return ErrStopped
		}
	}
	if k.halted {
		return ErrHalted
	}
	return nil
}

// RunUntil executes events with time <= t and then advances the clock to t
// (if t is later than the last event executed). When the run is stopped
// early (Halt or stop check) the clock is NOT advanced: the simulation has
// not observably reached t and remains resumable.
func (k *Kernel) RunUntil(t Time) error {
	saved := k.maxTime
	if t > saved {
		t = saved // never run past an installed horizon
	}
	k.maxTime = t
	err := k.Run()
	k.maxTime = saved
	if err == nil && k.now < t {
		k.now = t
	}
	return err
}
