package des

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, tm := range []Time{5, 1, 3, 2, 4} {
		tm := tm
		k.Schedule(tm, PriorityDefault, func() { got = append(got, tm) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
	if k.Now() != 5 {
		t.Errorf("clock at %v, want 5", k.Now())
	}
}

func TestKernelPriorityBreaksTies(t *testing.T) {
	k := NewKernel()
	var got []string
	k.Schedule(1, PriorityScheduler, func() { got = append(got, "sched") })
	k.Schedule(1, PriorityActivity, func() { got = append(got, "act") })
	k.Schedule(1, PriorityDefault, func() { got = append(got, "def") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"act", "def", "sched"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestKernelSequenceBreaksRemainingTies(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.Schedule(7, PriorityDefault, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(got) {
		t.Errorf("same-time same-priority events ran out of insertion order: %v", got)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	ev := k.Schedule(1, PriorityDefault, func() { fired = true })
	k.Cancel(ev)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("event not marked cancelled")
	}
	// Double cancel must be harmless.
	k.Cancel(ev)
}

func TestKernelCancelFromHandler(t *testing.T) {
	k := NewKernel()
	fired := false
	var victim *Event
	k.Schedule(1, PriorityDefault, func() { k.Cancel(victim) })
	victim = k.Schedule(2, PriorityDefault, func() { fired = true })
	k.Schedule(3, PriorityDefault, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("event cancelled from handler still fired")
	}
	if k.Now() != 3 {
		t.Errorf("clock at %v, want 3", k.Now())
	}
}

func TestKernelReschedule(t *testing.T) {
	k := NewKernel()
	var at Time
	ev := k.Schedule(10, PriorityDefault, func() { at = k.Now() })
	k.Reschedule(ev, 4)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 4 {
		t.Errorf("rescheduled event fired at %v, want 4", at)
	}
}

func TestKernelScheduleAfter(t *testing.T) {
	k := NewKernel()
	var at Time
	k.Schedule(3, PriorityDefault, func() {
		k.ScheduleAfter(2, PriorityDefault, func() { at = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5 {
		t.Errorf("fired at %v, want 5", at)
	}
}

func TestKernelSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(5, PriorityDefault, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.Schedule(1, PriorityDefault, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestKernelHalt(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i), PriorityDefault, func() {
			count++
			if count == 3 {
				k.Halt()
			}
		})
	}
	if err := k.Run(); err != ErrHalted {
		t.Fatalf("Run returned %v, want ErrHalted", err)
	}
	if count != 3 {
		t.Errorf("ran %d events, want 3", count)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i), PriorityDefault, func() { count++ })
	}
	if err := k.RunUntil(4); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Errorf("ran %d events, want 4", count)
	}
	if k.Now() != 4 {
		t.Errorf("clock at %v, want 4", k.Now())
	}
	// Remaining events still run afterwards.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("ran %d events total, want 10", count)
	}
}

func TestKernelRunUntilAdvancesIdleClock(t *testing.T) {
	k := NewKernel()
	if err := k.RunUntil(42); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 42 {
		t.Errorf("clock at %v, want 42", k.Now())
	}
}

func TestKernelStepsCounter(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 5; i++ {
		k.Schedule(Time(i), PriorityDefault, func() {})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Steps() != 5 {
		t.Errorf("Steps() = %d, want 5", k.Steps())
	}
}

// Property: for any set of (time, priority) pairs, execution order is the
// stable sort by (time, priority).
func TestKernelOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		k := NewKernel()
		type key struct {
			t    Time
			p    Priority
			sequ int
		}
		var want []key
		var got []key
		for i, v := range raw {
			kt := Time(v % 97)
			kp := Priority(int(v/97) % 5)
			kk := key{kt, kp, i}
			want = append(want, kk)
			k.Schedule(kt, kp, func() { got = append(got, kk) })
		}
		sort.SliceStable(want, func(i, j int) bool {
			if want[i].t != want[j].t {
				return want[i].t < want[j].t
			}
			if want[i].p != want[j].p {
				return want[i].p < want[j].p
			}
			return want[i].sequ < want[j].sequ
		})
		if err := k.Run(); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHeapRemoveMiddle(t *testing.T) {
	k := NewKernel()
	var got []Time
	events := make([]*Event, 0, 20)
	for i := 0; i < 20; i++ {
		tm := Time(i)
		events = append(events, k.Schedule(tm, PriorityDefault, func() { got = append(got, tm) }))
	}
	// Remove every third event.
	var want []Time
	for i := 0; i < 20; i++ {
		if i%3 == 0 {
			k.Cancel(events[i])
		} else {
			want = append(want, Time(i))
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRNG(54321)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/1000 identical draws", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	a := NewRNG(7)
	s1 := a.Split()
	v1 := s1.Uint64()
	// A fresh parent advanced identically must produce the same split stream.
	b := NewRNG(7)
	s2 := b.Split()
	if got := s2.Uint64(); got != v1 {
		t.Errorf("split streams not reproducible: %d vs %d", got, v1)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(2)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(0.5)
	}
	mean := sum / n
	if math.Abs(mean-2.0) > 0.05 {
		t.Errorf("Exp(0.5) mean = %v, want ~2.0", mean)
	}
}

func TestRNGWeibullShapeOneIsExponential(t *testing.T) {
	r := NewRNG(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Weibull(1, 3)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.08 {
		t.Errorf("Weibull(1,3) mean = %v, want ~3.0", mean)
	}
}

func TestRNGLogUniformBounds(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		v := r.LogUniform(2, 512)
		if v < 2 || v > 512 {
			t.Fatalf("LogUniform out of bounds: %v", v)
		}
	}
}

func TestRNGPowerOfTwo(t *testing.T) {
	r := NewRNG(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.PowerOfTwo(4, 64)
		if v&(v-1) != 0 || v < 4 || v > 64 {
			t.Fatalf("PowerOfTwo(4,64) = %d", v)
		}
		seen[v] = true
	}
	for _, want := range []int{4, 8, 16, 32, 64} {
		if !seen[want] {
			t.Errorf("PowerOfTwo never produced %d", want)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(6)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("Normal variance = %v, want ~4", variance)
	}
}

func TestRNGIntnUniform(t *testing.T) {
	r := NewRNG(8)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("Intn(10) bucket %d count %d far from %d", i, c, n/10)
		}
	}
}

func TestRNGShuffleIsPermutation(t *testing.T) {
	r := NewRNG(9)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}

func TestKernelAccessors(t *testing.T) {
	k := NewKernel()
	ev := k.Schedule(3, PriorityDefault, func() {})
	if k.Pending() != 1 {
		t.Errorf("Pending = %d", k.Pending())
	}
	if ev.Time() != 3 {
		t.Errorf("Time = %v", ev.Time())
	}
	if Time(2.5).Seconds() != 2.5 {
		t.Errorf("Seconds wrong")
	}
	if Time(1.25).String() != "1.250000s" {
		t.Errorf("String = %q", Time(1.25).String())
	}
	k.SetHorizon(2)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Pending() != 1 {
		t.Error("event beyond horizon should remain queued")
	}
}

func TestKernelStats(t *testing.T) {
	k := NewKernel()
	events := make([]*Event, 0, 10)
	for i := 0; i < 10; i++ {
		events = append(events, k.Schedule(Time(i), PriorityDefault, func() {}))
	}
	k.Cancel(events[3])
	k.Cancel(events[7])
	k.Release(events[3])
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The released tombstone feeds the free list; the next Schedule reuses it.
	k.Schedule(100, PriorityDefault, func() {})
	st := k.Stats()
	if st.Scheduled != 11 {
		t.Errorf("Scheduled = %d, want 11", st.Scheduled)
	}
	if st.Fired != 8 {
		t.Errorf("Fired = %d, want 8", st.Fired)
	}
	if st.Cancelled != 2 {
		t.Errorf("Cancelled = %d, want 2", st.Cancelled)
	}
	if st.Recycled != 1 {
		t.Errorf("Recycled = %d, want 1", st.Recycled)
	}
	if st.PeakQueue != 10 {
		t.Errorf("PeakQueue = %d, want 10", st.PeakQueue)
	}
	if st.Pending != 1 {
		t.Errorf("Pending = %d, want 1", st.Pending)
	}
}

func TestKernelProgressHook(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 10; i++ {
		k.Schedule(Time(i), PriorityDefault, func() {})
	}
	calls := 0
	k.SetProgress(3, func() { calls++ })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if calls != 3 { // after events 3, 6, 9
		t.Errorf("progress hook ran %d times, want 3", calls)
	}
	// Clearing the hook stops callbacks.
	k.SetProgress(0, nil)
	k.Schedule(20, PriorityDefault, func() {})
	k.Schedule(21, PriorityDefault, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("cleared progress hook still ran (%d calls)", calls)
	}
}

func TestKernelInvalidArguments(t *testing.T) {
	k := NewKernel()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("nil handler", func() { k.Schedule(1, PriorityDefault, nil) })
	mustPanic("negative delay", func() { k.ScheduleAfter(-1, PriorityDefault, func() {}) })
	mustPanic("nil reschedule", func() { k.Reschedule(nil, 1) })
}

func TestRNGInvalidArguments(t *testing.T) {
	r := NewRNG(1)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Intn(0)", func() { r.Intn(0) })
	mustPanic("Exp(0)", func() { r.Exp(0) })
	mustPanic("Weibull(0,1)", func() { r.Weibull(0, 1) })
	mustPanic("LogUniform(0,1)", func() { r.LogUniform(0, 1) })
	mustPanic("PowerOfTwo(0,4)", func() { r.PowerOfTwo(0, 4) })
}

func TestRNGLogUniformInt(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := r.LogUniformInt(3, 17)
		if v < 3 || v > 17 {
			t.Fatalf("LogUniformInt out of bounds: %d", v)
		}
	}
}

func TestRNGBool(t *testing.T) {
	r := NewRNG(3)
	trues := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			trues++
		}
	}
	if trues < n/4-n/25 || trues > n/4+n/25 {
		t.Errorf("Bool(0.25) true rate %d/%d", trues, n)
	}
}

func TestKernelStepN(t *testing.T) {
	k := NewKernel()
	fired := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i), PriorityDefault, func() { fired++ })
	}
	if n := k.StepN(3); n != 3 || fired != 3 {
		t.Fatalf("StepN(3) fired %d (counter %d), want 3", n, fired)
	}
	if k.Now() != 3 {
		t.Fatalf("clock at %v after 3 steps, want 3", k.Now())
	}
	if n := k.StepN(0); n != 0 {
		t.Fatalf("StepN(0) fired %d, want 0", n)
	}
	// Asking for more than remains stops at the drained queue.
	if n := k.StepN(100); n != 7 || fired != 10 {
		t.Fatalf("StepN(100) fired %d (counter %d), want 7", n, fired)
	}
	if n := k.StepN(5); n != 0 {
		t.Fatalf("StepN on a drained kernel fired %d", n)
	}
}

func TestKernelStepNStopsAtHorizon(t *testing.T) {
	k := NewKernel()
	fired := 0
	for i := 1; i <= 6; i++ {
		k.Schedule(Time(i), PriorityDefault, func() { fired++ })
	}
	k.SetHorizon(4)
	if n := k.StepN(10); n != 4 || fired != 4 {
		t.Fatalf("StepN under horizon 4 fired %d, want 4", n)
	}
	if k.Pending() != 2 {
		t.Fatalf("%d events pending beyond the horizon, want 2", k.Pending())
	}
	// Raising the horizon resumes exactly where it stopped.
	k.SetHorizon(Time(math.Inf(1)))
	if n := k.StepN(10); n != 2 || fired != 6 {
		t.Fatalf("StepN after raising the horizon fired %d, want 2", n)
	}
}

func TestKernelStopCheckBatching(t *testing.T) {
	k := NewKernel()
	fired := 0
	for i := 1; i <= 20; i++ {
		k.Schedule(Time(i), PriorityDefault, func() { fired++ })
	}
	// Stop check polled every 4 events, trips on the second poll.
	polls := 0
	k.SetStopCheck(4, func() bool { polls++; return polls >= 2 })
	if err := k.Run(); err != ErrStopped {
		t.Fatalf("Run returned %v, want ErrStopped", err)
	}
	if fired != 8 || polls != 2 {
		t.Fatalf("stopped after %d events and %d polls, want 8 and 2", fired, polls)
	}
	if k.Pending() != 12 {
		t.Fatalf("%d events pending after stop, want 12", k.Pending())
	}
	// The stopped kernel resumes: remove the probe and drain.
	k.SetStopCheck(0, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 20 {
		t.Fatalf("resume fired up to %d events, want 20", fired)
	}
}

func TestKernelStopCheckFalseDoesNotStop(t *testing.T) {
	k := NewKernel()
	fired := 0
	for i := 1; i <= 9; i++ {
		k.Schedule(Time(i), PriorityDefault, func() { fired++ })
	}
	polls := 0
	k.SetStopCheck(2, func() bool { polls++; return false })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 9 || polls != 4 {
		t.Fatalf("fired %d events with %d polls, want 9 and 4", fired, polls)
	}
}

func TestKernelRunUntilClampsToHorizon(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, tm := range []Time{10, 20, 30} {
		tm := tm
		k.Schedule(tm, PriorityDefault, func() { got = append(got, tm) })
	}
	k.SetHorizon(25)
	// RunUntil past the horizon is clamped: events at 30 stay queued and
	// the clock parks at the horizon, not the requested time.
	if err := k.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("fired %d events, want 2", len(got))
	}
	if k.Now() != 25 {
		t.Fatalf("clock at %v, want horizon 25", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("%d events pending, want 1", k.Pending())
	}
}

func TestKernelRunUntilStoppedDoesNotAdvanceClock(t *testing.T) {
	k := NewKernel()
	for i := 1; i <= 6; i++ {
		k.Schedule(Time(i), PriorityDefault, func() {})
	}
	k.SetStopCheck(2, func() bool { return true })
	if err := k.RunUntil(50); err != ErrStopped {
		t.Fatalf("RunUntil returned %v, want ErrStopped", err)
	}
	if k.Now() != 2 {
		t.Fatalf("clock at %v after stop, want 2 (time of the last fired event)", k.Now())
	}
	// Resuming to the same target finishes the job and then advances the
	// idle clock to the target.
	k.SetStopCheck(0, nil)
	if err := k.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 50 {
		t.Fatalf("clock at %v after resume, want 50", k.Now())
	}
}
