package des

// eventHeap is a binary min-heap of events ordered by (time, priority, seq).
// It is hand-rolled rather than built on container/heap to avoid interface
// boxing on the hot path; the kernel executes millions of events in the
// simulator-scalability experiments.
type eventHeap struct {
	items []*Event
}

func (h *eventHeap) Len() int { return len(h.items) }

func less(a, b *Event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

// Peek returns the earliest event without removing it, or nil.
func (h *eventHeap) Peek() *Event {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

// Push inserts ev and records its heap index.
func (h *eventHeap) Push(ev *Event) {
	ev.index = len(h.items)
	h.items = append(h.items, ev)
	h.up(ev.index)
}

// Pop removes and returns the earliest event, or nil when empty.
func (h *eventHeap) Pop() *Event {
	if len(h.items) == 0 {
		return nil
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[0].index = 0
	h.items[last] = nil
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	top.index = -1
	return top
}

// Compact rebuilds the heap without tombstones in O(n), handing each
// dropped event to the kernel's callback.
func (h *eventHeap) Compact(drop func(*Event)) {
	live := h.items[:0]
	for _, ev := range h.items {
		if ev.dead {
			drop(ev)
			continue
		}
		live = append(live, ev)
	}
	for i := len(live); i < len(h.items); i++ {
		h.items[i] = nil
	}
	h.items = live
	h.Init()
}

// Init re-establishes the heap invariant over the whole slice in O(n),
// refreshing every event's index. Used after bulk tombstone compaction.
func (h *eventHeap) Init() {
	n := len(h.items)
	for i := range h.items {
		h.items[i].index = i
	}
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h.items[i], h.items[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !less(h.items[smallest], h.items[i]) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}
