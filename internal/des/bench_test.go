package des

import "testing"

// BenchmarkScheduleCancel measures the dominant kernel pattern of the
// fluid solver: schedule a completion event, then cancel and replace it
// when rates change. Each iteration performs one schedule+cancel against a
// backlog of 1024 pending events.
func BenchmarkScheduleCancel(b *testing.B) {
	k := NewKernel()
	for i := 0; i < 1024; i++ {
		k.Schedule(Time(float64(i)+1e6), PriorityDefault, func() {})
	}
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := k.Schedule(Time(float64(i%1000)), PriorityActivity, fn)
		k.Cancel(ev)
	}
}

// BenchmarkScheduleFire measures the engine's hottest pattern: a
// fire-and-forget bookkeeping event scheduled and executed immediately.
// The transient API plus the kernel free list make this allocation-free.
func BenchmarkScheduleFire(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ScheduleTransient(k.Now(), PriorityDefault, fn)
		k.Step()
	}
}

// BenchmarkScheduleFireOwned is the owned-handle variant: the caller keeps
// the *Event (a job walltime kill, a task timer) and hands it back with
// Release after it fires, which keeps this path allocation-free too.
func BenchmarkScheduleFireOwned(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := k.Schedule(k.Now(), PriorityDefault, fn)
		k.Step()
		k.Release(ev)
	}
}

// BenchmarkBacklogFire measures schedule+fire against a deep backlog of
// far-future events — the million-job shape, where the ladder queue's
// O(1) routing beats the heap's O(log n) sift. The backlog events stay
// pending; each iteration pays only for its own event.
func BenchmarkBacklogFire(b *testing.B) {
	benchBacklogFire(b, NewKernel())
}

// BenchmarkBacklogFireHeap is the same workload on the reference
// binary-heap kernel, kept as the comparison point for BENCH reports.
func BenchmarkBacklogFireHeap(b *testing.B) {
	benchBacklogFire(b, NewHeapKernel())
}

func benchBacklogFire(b *testing.B, k *Kernel) {
	for i := 0; i < 1<<17; i++ {
		k.Schedule(Time(float64(i)+1e6), PriorityDefault, func() {})
	}
	// Prime the queue shape (first pop builds the ladder rungs).
	k.ScheduleTransient(k.Now(), PriorityDefault, func() {})
	k.Step()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ScheduleTransientAfter(0.5, PriorityDefault, fn)
		k.Step()
	}
}
