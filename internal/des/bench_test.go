package des

import "testing"

// BenchmarkScheduleCancel measures the dominant kernel pattern of the
// fluid solver: schedule a completion event, then cancel and replace it
// when rates change. Each iteration performs one schedule+cancel against a
// backlog of 1024 pending events.
func BenchmarkScheduleCancel(b *testing.B) {
	k := NewKernel()
	for i := 0; i < 1024; i++ {
		k.Schedule(Time(float64(i)+1e6), PriorityDefault, func() {})
	}
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := k.Schedule(Time(float64(i%1000)), PriorityActivity, fn)
		k.Cancel(ev)
	}
}

// BenchmarkScheduleFire measures the no-cancel path: schedule an event and
// run it to completion, the cost floor for every simulated state change.
func BenchmarkScheduleFire(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(k.Now(), PriorityDefault, fn)
		k.Step()
	}
}
