package des

import "math"

// RNG is a small, fast, deterministic random number generator
// (xoshiro256** seeded via splitmix64). The simulator cannot use
// math/rand's global state because independent subsystems (workload
// generation, jitter models) must draw from independent, reproducible
// streams.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed across the state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent stream from this generator. It is used to
// give each subsystem its own stream so that adding draws in one place does
// not perturb another.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("des: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). Used for Poisson inter-arrival times.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("des: Exp with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Weibull returns a Weibull-distributed value with the given shape and
// scale. Weibull inter-arrivals model the bursty submission patterns seen
// in production batch traces.
func (r *RNG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("des: Weibull with non-positive parameter")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// LogUniform returns a value distributed uniformly in log space over
// [lo, hi]. Job sizes in batch traces are approximately log-uniform.
func (r *RNG) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi < lo {
		panic("des: LogUniform with invalid bounds")
	}
	return math.Exp(r.Range(math.Log(lo), math.Log(hi)))
}

// LogUniformInt returns LogUniform rounded to the nearest integer, clamped
// to [lo, hi].
func (r *RNG) LogUniformInt(lo, hi int) int {
	v := int(math.Round(r.LogUniform(float64(lo), float64(hi))))
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// PowerOfTwo returns a uniformly chosen power of two in [lo, hi]. Node
// requests in HPC traces cluster strongly on powers of two.
func (r *RNG) PowerOfTwo(lo, hi int) int {
	if lo <= 0 || hi < lo {
		panic("des: PowerOfTwo with invalid bounds")
	}
	var choices []int
	for p := 1; p <= hi; p *= 2 {
		if p >= lo {
			choices = append(choices, p)
		}
	}
	if len(choices) == 0 {
		return lo
	}
	return choices[r.Intn(len(choices))]
}

// Normal returns a normally distributed value via the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
