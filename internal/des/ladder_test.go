package des

import (
	"math/rand"
	"testing"
)

// queueScript executes a deterministic op stream against a kernel and
// returns the order in which event serial numbers fired. Running the same
// stream against a ladder kernel and a heap kernel must produce the
// bit-identical log: the two queues promise the same total order.
//
// The op stream exercises everything the engine does: schedules at mixed
// priorities with heavy timestamp ties, far-future bursts (top transfers
// and rung builds), schedule-from-handler at the current timestamp
// (bottom-heap races), cancels, releases, transients, bulk fires, and
// horizon-bounded RunUntil.
func queueScript(k *Kernel, data []byte) []int {
	var log []int
	var live []*Event
	var lastCancelled *Event
	serial := 0
	rd := func(i int) byte {
		if len(data) == 0 {
			return 0
		}
		return data[i%len(data)]
	}
	prios := []Priority{PriorityActivity, PriorityEngine, PriorityDefault, PriorityScheduler}
	for i := 0; i < len(data); i += 2 {
		op, arg := rd(i), rd(i+1)
		delta := Time(arg%16) * 0.25
		prio := prios[arg%4]
		switch op % 8 {
		case 0, 1:
			n := serial
			serial++
			live = append(live, k.ScheduleAfter(delta, prio, func() { log = append(log, n) }))
		case 2:
			// Handler schedules a follow-up at the very timestamp it
			// fires at — the equal-time race the bottom heap must win.
			n := serial
			serial += 2
			m := n + 1
			live = append(live, k.ScheduleAfter(delta, prio, func() {
				log = append(log, n)
				k.ScheduleTransient(k.Now(), prios[(arg>>2)%4], func() { log = append(log, m) })
			}))
		case 3:
			if len(live) > 0 {
				idx := int(arg) % len(live)
				ev := live[idx]
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
				k.Cancel(ev)
				lastCancelled = ev
			}
		case 4:
			if lastCancelled != nil {
				k.Release(lastCancelled)
				lastCancelled = nil
			}
		case 5:
			k.StepN(int(arg%8) + 1)
		case 6:
			// Far-future burst: builds a top worth transferring into a
			// rung, with ties sprinkled in.
			base := k.Now() + Time(arg%32)*7
			for j := 0; j < int(arg%96)+16; j++ {
				n := serial
				serial++
				at := base + Time((j*j)%113)*0.5
				live = append(live, k.Schedule(at, prios[j%4], func() { log = append(log, n) }))
			}
		case 7:
			_ = k.RunUntil(k.Now() + Time(arg%64))
		}
	}
	_ = k.Run()
	return log
}

func diffLogs(t *testing.T, data []byte) {
	t.Helper()
	ladder := queueScript(NewKernel(), data)
	heap := queueScript(NewHeapKernel(), data)
	if len(ladder) != len(heap) {
		t.Fatalf("fire counts diverged: ladder %d, heap %d (script %d bytes)", len(ladder), len(heap), len(data))
	}
	for i := range ladder {
		if ladder[i] != heap[i] {
			t.Fatalf("fire order diverged at event %d: ladder fired #%d, heap fired #%d (script %d bytes)",
				i, ladder[i], heap[i], len(data))
		}
	}
}

// TestLadderHeapEquivalence drives both queue implementations through
// randomized schedule/cancel/release/advance scripts and requires the
// fire order to match event for event.
func TestLadderHeapEquivalence(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(4000)
		data := make([]byte, n)
		rng.Read(data)
		diffLogs(t, data)
	}
}

// TestLadderMassiveMonotonicBurst is the million-submit shape: one huge
// pre-scheduled batch spread over a long span, drained interleaved with
// near-now completions scheduled from handlers.
func TestLadderMassiveMonotonicBurst(t *testing.T) {
	run := func(k *Kernel) []int {
		var log []int
		rng := rand.New(rand.NewSource(7))
		at := 0.0
		for i := 0; i < 50000; i++ {
			n := i
			at += rng.Float64() * 0.3
			tt := Time(at)
			k.Schedule(tt, PriorityEngine, func() {
				log = append(log, n)
				// Near-future completion, like a task finishing.
				k.ScheduleTransientAfter(Time(n%17)*0.125, PriorityActivity, func() { log = append(log, -n) })
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	ladder, heap := run(NewKernel()), run(NewHeapKernel())
	if len(ladder) != len(heap) {
		t.Fatalf("fire counts diverged: %d vs %d", len(ladder), len(heap))
	}
	for i := range ladder {
		if ladder[i] != heap[i] {
			t.Fatalf("fire order diverged at %d: %d vs %d", i, ladder[i], heap[i])
		}
	}
}

// FuzzLadderOrder lets the fuzzer look for op streams where the ladder
// and heap kernels disagree on fire order.
func FuzzLadderOrder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{6, 255, 5, 7, 6, 128, 5, 255})
	rng := rand.New(rand.NewSource(42))
	seed := make([]byte, 512)
	rng.Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		diffLogs(t, data)
	})
}
