package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// JSONLEvent is the line-delimited JSON wire form of an Event. Args become
// a flat object so the stream is greppable/jq-able.
type JSONLEvent struct {
	T     float64        `json:"t"`
	Ph    string         `json:"ph"`
	Track string         `json:"track"`
	Name  string         `json:"name"`
	Args  map[string]any `json:"args,omitempty"`
}

// JSONLSink streams events as one JSON object per line.
type JSONLSink struct {
	w      *bufio.Writer
	closer io.Closer
	enc    *json.Encoder
	err    error
}

// NewJSONLSink writes events to w; the caller keeps ownership of w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// NewJSONLFileSink is NewJSONLSink for an owned writer: Close closes it.
func NewJSONLFileSink(w io.WriteCloser) *JSONLSink {
	s := NewJSONLSink(w)
	s.closer = w
	return s
}

// Emit writes one event line.
func (s *JSONLSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	line := JSONLEvent{T: ev.T, Ph: string(ev.Phase), Track: ev.Track.String(), Name: ev.Name}
	if len(ev.Args) > 0 {
		line.Args = make(map[string]any, len(ev.Args))
		for _, a := range ev.Args {
			line.Args[a.Key] = a.Value
		}
	}
	if err := s.enc.Encode(line); err != nil {
		s.err = err
	}
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error { return s.err }

// Close flushes the stream and closes the underlying writer if owned.
func (s *JSONLSink) Close() error {
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if s.closer != nil {
		if err := s.closer.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// ReadJSONL parses a JSONL trace stream back into events.
func ReadJSONL(r io.Reader) ([]JSONLEvent, error) {
	var out []JSONLEvent
	dec := json.NewDecoder(r)
	for {
		var ev JSONLEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("telemetry: trace line %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
}

// JobSpanSummary aggregates the span time of one job track: how long it
// waited, ran, and spent reconfiguring, plus event counts.
type JobSpanSummary struct {
	Job         int
	Wait        float64
	Run         float64
	Reconfigure float64
	Tasks       int
	SchedPoints int
	Reconfigs   int
	Checkpoints int
	FirstT      float64
	LastT       float64
}

// SummarizeJobSpans folds a JSONL trace into per-job wait/run/reconfigure
// totals, returned in job-id order. Open spans are closed at the last
// timestamp seen on the job's track.
func SummarizeJobSpans(events []JSONLEvent) []JobSpanSummary {
	type openSpans struct {
		wait, run, reconf float64 // begin timestamps; -1 = closed
	}
	sums := map[int]*JobSpanSummary{}
	open := map[int]*openSpans{}
	get := func(track string) (*JobSpanSummary, *openSpans) {
		var id int
		if _, err := fmt.Sscanf(track, "job:%d", &id); err != nil {
			return nil, nil
		}
		s := sums[id]
		if s == nil {
			s = &JobSpanSummary{Job: id, FirstT: -1}
			sums[id] = s
			open[id] = &openSpans{wait: -1, run: -1, reconf: -1}
		}
		return s, open[id]
	}
	for _, ev := range events {
		s, o := get(ev.Track)
		if s == nil {
			continue
		}
		if s.FirstT < 0 {
			s.FirstT = ev.T
		}
		if ev.T > s.LastT {
			s.LastT = ev.T
		}
		switch {
		case ev.Ph == "B" && ev.Name == "wait":
			o.wait = ev.T
		case ev.Ph == "E" && ev.Name == "wait":
			if o.wait >= 0 {
				s.Wait += ev.T - o.wait
				o.wait = -1
			}
		case ev.Ph == "B" && ev.Name == "run":
			o.run = ev.T
		case ev.Ph == "E" && ev.Name == "run":
			if o.run >= 0 {
				s.Run += ev.T - o.run
				o.run = -1
			}
		case ev.Ph == "B" && ev.Name == "reconfigure":
			o.reconf = ev.T
		case ev.Ph == "E" && ev.Name == "reconfigure":
			if o.reconf >= 0 {
				s.Reconfigure += ev.T - o.reconf
				s.Reconfigs++
				o.reconf = -1
			}
		case ev.Ph == "B" && ev.Name == "task":
			s.Tasks++
		case ev.Ph == "i" && ev.Name == "scheduling-point":
			s.SchedPoints++
		case ev.Ph == "i" && ev.Name == "checkpoint":
			s.Checkpoints++
		}
	}
	out := make([]JobSpanSummary, 0, len(sums))
	for id, s := range sums {
		o := open[id]
		if o.wait >= 0 {
			s.Wait += s.LastT - o.wait
		}
		if o.run >= 0 {
			s.Run += s.LastT - o.run
		}
		if o.reconf >= 0 {
			s.Reconfigure += s.LastT - o.reconf
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out
}
