// Package telemetry is the simulator's observability layer: structured
// span tracing, self-profiling counters, scheduler decision audits, and
// live progress reporting.
//
// The design constraint is zero overhead when disabled. Every consumer
// holds a *Tracer that may be nil; all Tracer methods are nil-safe no-ops,
// so the instrumented hot paths pay one pointer comparison and allocate
// nothing (asserted by a benchmark-guarded test). When a tracer is
// attached, events stream to pluggable sinks — a Chrome trace_event JSON
// exporter (openable in Perfetto or chrome://tracing) and a line-delimited
// JSON sink — as the simulation runs.
//
// Simulated time is the only clock that appears in traces; wall-clock
// measurements live exclusively in Snapshot (the self-profiling artifact),
// so simulation outputs stay deterministic whether or not telemetry is on.
package telemetry

import "fmt"

// TrackKind classifies the timeline an event belongs to.
type TrackKind uint8

// Track kinds. Jobs and nodes each get one timeline per entity; the
// scheduler has a single timeline for invocations and queue counters.
const (
	TrackJob TrackKind = iota
	TrackNode
	TrackScheduler
)

func (k TrackKind) String() string {
	switch k {
	case TrackJob:
		return "job"
	case TrackNode:
		return "node"
	case TrackScheduler:
		return "sched"
	default:
		return fmt.Sprintf("TrackKind(%d)", int(k))
	}
}

// Track identifies one timeline: a job, a node, or the scheduler.
type Track struct {
	Kind TrackKind
	ID   int
}

// JobTrack returns the timeline of one job.
func JobTrack(id int) Track { return Track{Kind: TrackJob, ID: id} }

// NodeTrack returns the timeline of one node.
func NodeTrack(id int) Track { return Track{Kind: TrackNode, ID: id} }

// SchedulerTrack is the scheduler's single timeline.
var SchedulerTrack = Track{Kind: TrackScheduler}

func (tr Track) String() string { return fmt.Sprintf("%s:%d", tr.Kind, tr.ID) }

// Phase is the event type, mirroring the Chrome trace_event phases.
type Phase byte

// Phases: span begin/end, instant event, and counter sample.
const (
	PhaseBegin   Phase = 'B'
	PhaseEnd     Phase = 'E'
	PhaseInstant Phase = 'i'
	PhaseCounter Phase = 'C'
)

// Arg is one key/value annotation on an event.
type Arg struct {
	Key   string
	Value any
}

// Event is one telemetry record. T is simulated seconds.
type Event struct {
	T     float64
	Phase Phase
	Track Track
	Name  string
	Args  []Arg
}

// Sink consumes a stream of events. Emit must tolerate being called with
// non-decreasing T per track (the simulator guarantees global time order).
// Sinks buffer their first write error and surface it from Close.
type Sink interface {
	Emit(ev Event)
	Close() error
}

// Tracer fans events out to sinks and carries the optional audit log. A
// nil *Tracer is valid and means "telemetry disabled": every method
// no-ops, so instrumentation sites need no separate guard for correctness
// (they still guard with Enabled() before building argument lists, to keep
// the disabled path allocation-free).
type Tracer struct {
	sinks []Sink
	audit *AuditLog
}

// New builds a tracer emitting to the given sinks.
func New(sinks ...Sink) *Tracer {
	return &Tracer{sinks: sinks}
}

// Enabled reports whether the tracer is live. It is the guard
// instrumentation sites use before assembling event arguments.
func (t *Tracer) Enabled() bool { return t != nil }

// SetAudit attaches a scheduler decision audit log.
func (t *Tracer) SetAudit(a *AuditLog) *Tracer {
	t.audit = a
	return t
}

// Audit returns the attached audit log, or nil.
func (t *Tracer) Audit() *AuditLog {
	if t == nil {
		return nil
	}
	return t.audit
}

// Emit forwards one event to every sink.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	for _, s := range t.sinks {
		s.Emit(ev)
	}
}

// Begin opens a span on a track.
func (t *Tracer) Begin(tr Track, name string, ts float64, args ...Arg) {
	if t == nil {
		return
	}
	t.Emit(Event{T: ts, Phase: PhaseBegin, Track: tr, Name: name, Args: args})
}

// End closes the innermost open span with the given name on a track.
func (t *Tracer) End(tr Track, name string, ts float64, args ...Arg) {
	if t == nil {
		return
	}
	t.Emit(Event{T: ts, Phase: PhaseEnd, Track: tr, Name: name, Args: args})
}

// Instant records a point event on a track.
func (t *Tracer) Instant(tr Track, name string, ts float64, args ...Arg) {
	if t == nil {
		return
	}
	t.Emit(Event{T: ts, Phase: PhaseInstant, Track: tr, Name: name, Args: args})
}

// Counter records a sampled value on a track (rendered as a graph by
// Chrome trace viewers).
func (t *Tracer) Counter(tr Track, name string, ts float64, value float64) {
	if t == nil {
		return
	}
	t.Emit(Event{T: ts, Phase: PhaseCounter, Track: tr, Name: name,
		Args: []Arg{{Key: "value", Value: value}}})
}

// Close closes every sink and the audit log, returning the first error.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	if t.audit != nil {
		if err := t.audit.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
