package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// AuditDecision is one scheduler decision at one scheduling point, with
// the outcome of applying it to the simulation state.
type AuditDecision struct {
	Kind     string `json:"kind"`
	Job      int    `json:"job"`
	NumNodes int    `json:"num_nodes,omitempty"`
	Applied  bool   `json:"applied"`
	Reason   string `json:"reason,omitempty"` // rejection reason when !Applied
}

// AuditRecord captures the full context of one scheduler invocation:
// what the scheduler saw (queue depth, free/down nodes, trigger reasons)
// and what it decided.
type AuditRecord struct {
	T          float64         `json:"t"`
	Invocation uint64          `json:"invocation"`
	Reasons    string          `json:"reasons"`
	QueueDepth int             `json:"queue_depth"`
	Running    int             `json:"running"`
	FreeNodes  int             `json:"free_nodes"`
	DownNodes  int             `json:"down_nodes,omitempty"`
	Decisions  []AuditDecision `json:"decisions,omitempty"`
}

// AuditLog streams scheduler invocation records as JSON lines.
type AuditLog struct {
	w      *bufio.Writer
	closer io.Closer
	enc    *json.Encoder
	n      int
	err    error
}

// NewAuditLog writes audit records to w; the caller keeps ownership of w.
func NewAuditLog(w io.Writer) *AuditLog {
	bw := bufio.NewWriter(w)
	return &AuditLog{w: bw, enc: json.NewEncoder(bw)}
}

// NewAuditFileLog is NewAuditLog for an owned writer: Close closes it.
func NewAuditFileLog(w io.WriteCloser) *AuditLog {
	a := NewAuditLog(w)
	a.closer = w
	return a
}

// Record appends one scheduler invocation record. Nil-safe.
func (a *AuditLog) Record(rec AuditRecord) {
	if a == nil || a.err != nil {
		return
	}
	if err := a.enc.Encode(rec); err != nil {
		a.err = err
		return
	}
	a.n++
}

// Records returns the number of records written so far.
func (a *AuditLog) Records() int {
	if a == nil {
		return 0
	}
	return a.n
}

// Err returns the first write error, if any.
func (a *AuditLog) Err() error {
	if a == nil {
		return nil
	}
	return a.err
}

// Close flushes the log and closes the underlying writer if owned.
func (a *AuditLog) Close() error {
	if a == nil {
		return nil
	}
	if err := a.w.Flush(); err != nil && a.err == nil {
		a.err = err
	}
	if a.closer != nil {
		if err := a.closer.Close(); err != nil && a.err == nil {
			a.err = err
		}
	}
	return a.err
}

// ReadAuditLog parses a JSONL audit stream back into records.
func ReadAuditLog(r io.Reader) ([]AuditRecord, error) {
	var out []AuditRecord
	dec := json.NewDecoder(r)
	for {
		var rec AuditRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("telemetry: audit record %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
}
