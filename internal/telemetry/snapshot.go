package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// KernelStats are the DES kernel's lifetime counters.
type KernelStats struct {
	Scheduled uint64 `json:"scheduled"` // events ever scheduled
	Fired     uint64 `json:"fired"`     // events popped and executed
	Cancelled uint64 `json:"cancelled"` // events tombstoned before firing
	Recycled  uint64 `json:"recycled"`  // events reused from the free list
	PeakQueue int    `json:"peak_queue"`
}

// SolverStats are the fluid solver's counters.
type SolverStats struct {
	Solves           uint64 `json:"solves"`
	SolvedActivities uint64 `json:"solved_activities"`
}

// SchedulerStats count scheduler invocations and decision outcomes.
type SchedulerStats struct {
	Invocations uint64 `json:"invocations"`
	// Elided counts same-timestamp invocations the engine batched away
	// because a prior invocation at that timestamp already saw a
	// bit-identical snapshot.
	Elided   uint64            `json:"elided,omitempty"`
	Applied  uint64            `json:"applied"`
	Rejected uint64            `json:"rejected"`
	ByKind   map[string]uint64 `json:"by_kind,omitempty"`
}

// WallStats hold wall-clock measurements in nanoseconds. They are the only
// non-deterministic fields in a Snapshot; StripWall zeroes them for
// reproducibility comparisons.
type WallStats struct {
	RunNS       int64 `json:"run_ns"`
	SchedulerNS int64 `json:"scheduler_ns"`
}

// MemStats hold heap measurements sampled at snapshot time. Like
// WallStats they are machine-dependent and cleared by StripWall.
type MemStats struct {
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	TotalAllocs    uint64 `json:"total_allocs"`
}

// Snapshot is the self-profiling artifact of one or more simulation runs:
// every internal counter the simulator keeps, in one JSON-serializable
// record. Snapshots from parallel workers aggregate with Add.
type Snapshot struct {
	Runs      int            `json:"runs"`
	Jobs      int            `json:"jobs"`
	Kernel    KernelStats    `json:"kernel"`
	Solver    SolverStats    `json:"solver"`
	Scheduler SchedulerStats `json:"scheduler"`
	Wall      WallStats      `json:"wall"`
	Mem       MemStats       `json:"mem"`
}

// Add folds another snapshot into s: counters sum, gauges take the max.
func (s *Snapshot) Add(o Snapshot) {
	s.Runs += o.Runs
	s.Jobs += o.Jobs
	s.Kernel.Scheduled += o.Kernel.Scheduled
	s.Kernel.Fired += o.Kernel.Fired
	s.Kernel.Cancelled += o.Kernel.Cancelled
	s.Kernel.Recycled += o.Kernel.Recycled
	if o.Kernel.PeakQueue > s.Kernel.PeakQueue {
		s.Kernel.PeakQueue = o.Kernel.PeakQueue
	}
	s.Solver.Solves += o.Solver.Solves
	s.Solver.SolvedActivities += o.Solver.SolvedActivities
	s.Scheduler.Invocations += o.Scheduler.Invocations
	s.Scheduler.Elided += o.Scheduler.Elided
	s.Scheduler.Applied += o.Scheduler.Applied
	s.Scheduler.Rejected += o.Scheduler.Rejected
	for k, v := range o.Scheduler.ByKind {
		if s.Scheduler.ByKind == nil {
			s.Scheduler.ByKind = map[string]uint64{}
		}
		s.Scheduler.ByKind[k] += v
	}
	s.Wall.RunNS += o.Wall.RunNS
	s.Wall.SchedulerNS += o.Wall.SchedulerNS
	if o.Mem.HeapAllocBytes > s.Mem.HeapAllocBytes {
		s.Mem.HeapAllocBytes = o.Mem.HeapAllocBytes
	}
	s.Mem.TotalAllocs += o.Mem.TotalAllocs
}

// StripWall returns a copy with all wall-clock and memory fields zeroed,
// leaving only the deterministic simulation counters.
func (s Snapshot) StripWall() Snapshot {
	s.Wall = WallStats{}
	s.Mem = MemStats{}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadSnapshot parses a snapshot previously written with WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("telemetry: parse snapshot: %w", err)
	}
	return s, nil
}

// DiffRow is one counter's before/after pair in a snapshot diff.
type DiffRow struct {
	Name   string
	A, B   float64
	Change float64 // relative change, B/A - 1; 0 when A == 0
}

// Diff flattens two snapshots into comparable rows, one per counter, in a
// stable order. Rows where both sides are zero are omitted.
func Diff(a, b Snapshot) []DiffRow {
	flat := func(s Snapshot) map[string]float64 {
		m := map[string]float64{
			"runs":                     float64(s.Runs),
			"jobs":                     float64(s.Jobs),
			"kernel.scheduled":         float64(s.Kernel.Scheduled),
			"kernel.fired":             float64(s.Kernel.Fired),
			"kernel.cancelled":         float64(s.Kernel.Cancelled),
			"kernel.recycled":          float64(s.Kernel.Recycled),
			"kernel.peak_queue":        float64(s.Kernel.PeakQueue),
			"solver.solves":            float64(s.Solver.Solves),
			"solver.solved_activities": float64(s.Solver.SolvedActivities),
			"scheduler.invocations":    float64(s.Scheduler.Invocations),
			"scheduler.elided":         float64(s.Scheduler.Elided),
			"scheduler.applied":        float64(s.Scheduler.Applied),
			"scheduler.rejected":       float64(s.Scheduler.Rejected),
			"wall.run_ms":              float64(s.Wall.RunNS) / 1e6,
			"wall.scheduler_ms":        float64(s.Wall.SchedulerNS) / 1e6,
			"mem.heap_alloc_bytes":     float64(s.Mem.HeapAllocBytes),
			"mem.total_allocs":         float64(s.Mem.TotalAllocs),
		}
		for k, v := range s.Scheduler.ByKind {
			m["scheduler.by_kind."+k] = float64(v)
		}
		return m
	}
	fa, fb := flat(a), flat(b)
	names := make([]string, 0, len(fa))
	seen := map[string]bool{}
	for k := range fa {
		names = append(names, k)
		seen[k] = true
	}
	for k := range fb {
		if !seen[k] {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	var rows []DiffRow
	for _, name := range names {
		va, vb := fa[name], fb[name]
		if va == 0 && vb == 0 {
			continue
		}
		row := DiffRow{Name: name, A: va, B: vb}
		if va != 0 {
			row.Change = vb/va - 1
		}
		rows = append(rows, row)
	}
	return rows
}
