package telemetry

import (
	"sync"
	"testing"
)

// TestProgressFanOut pins the multi-subscriber contract: concurrent
// subscribers, pollers, and a late subscriber all observe the stream
// without racing the ticking goroutine (run under -race), every channel
// eventually closes, and the final update carries Done with the last
// sampled state.
func TestProgressFanOut(t *testing.T) {
	fan := &ProgressFanOut{}
	const subscribers = 8
	const ticks = 5000

	var wg sync.WaitGroup
	finals := make([]ProgressUpdate, subscribers)
	for i := 0; i < subscribers; i++ {
		ch, cancel := fan.Subscribe(4)
		wg.Add(1)
		go func(i int, ch <-chan ProgressUpdate) {
			defer wg.Done()
			defer cancel()
			var last ProgressUpdate
			for u := range ch {
				if u.Events < last.Events {
					t.Errorf("subscriber %d: events went backwards: %d after %d", i, u.Events, last.Events)
					return
				}
				last = u
			}
			finals[i] = last
		}(i, ch)
	}
	// A poller hammering Last concurrently with the ticker.
	pollDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-pollDone:
				return
			default:
				fan.Last()
			}
		}
	}()

	for i := 1; i <= ticks; i++ {
		fan.Tick(float64(i), uint64(i))
	}
	fan.Done()
	close(pollDone)
	wg.Wait()

	for i, u := range finals {
		if !u.Done {
			t.Errorf("subscriber %d: final update not marked done: %+v", i, u)
		}
		if u.Events != ticks {
			t.Errorf("subscriber %d: final events = %d, want %d", i, u.Events, ticks)
		}
	}

	// Late subscription after Done: immediately yields the final update.
	ch, cancel := fan.Subscribe(1)
	defer cancel()
	u, ok := <-ch
	if !ok || !u.Done || u.Events != ticks {
		t.Fatalf("late subscriber got %+v (ok=%v), want done update with %d events", u, ok, ticks)
	}
	if _, ok := <-ch; ok {
		t.Fatal("late subscriber channel not closed after final update")
	}

	// Ticks after Done are ignored, not redelivered.
	fan.Tick(99, 99)
	if last, _ := fan.Last(); last.Events != ticks || !last.Done {
		t.Fatalf("tick after done mutated state: %+v", last)
	}
}

// TestProgressFanOutSlowSubscriber pins that a subscriber that never reads
// cannot block the ticking goroutine: latest-wins buffering drops stale
// updates instead.
func TestProgressFanOutSlowSubscriber(t *testing.T) {
	fan := &ProgressFanOut{}
	ch, cancel := fan.Subscribe(1)
	defer cancel()
	for i := 1; i <= 1000; i++ {
		fan.Tick(float64(i), uint64(i)) // must not block despite no reader
	}
	fan.Done()
	var last ProgressUpdate
	for u := range ch {
		last = u
	}
	if !last.Done || last.Events != 1000 {
		t.Fatalf("slow subscriber final update = %+v, want done with 1000 events", last)
	}
}

// TestProgressFanOutStalledAmongActive pins subscriber isolation under
// concurrency (run with -race): one subscriber never reads while others
// consume continuously; the ticker must never block, the active
// subscribers must see a monotone stream ending in Done, and the stalled
// channel must still hold the final update afterwards.
func TestProgressFanOutStalledAmongActive(t *testing.T) {
	fan := &ProgressFanOut{}
	const ticks = 20000

	stalled, cancelStalled := fan.Subscribe(1)
	defer cancelStalled()

	const active = 4
	var wg sync.WaitGroup
	finals := make([]ProgressUpdate, active)
	for i := 0; i < active; i++ {
		ch, cancel := fan.Subscribe(2)
		wg.Add(1)
		go func(i int, ch <-chan ProgressUpdate) {
			defer wg.Done()
			defer cancel()
			var last ProgressUpdate
			for u := range ch {
				if u.Events < last.Events {
					t.Errorf("active subscriber %d: events went backwards", i)
					return
				}
				last = u
			}
			finals[i] = last
		}(i, ch)
	}

	// Tick from a separate goroutine so subscriber reads genuinely race
	// the publisher; the main goroutine bounds the whole run with a
	// test timeout instead of trusting Tick never to block.
	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		for i := 1; i <= ticks; i++ {
			fan.Tick(float64(i), uint64(i))
		}
		fan.Done()
	}()
	<-tickerDone
	wg.Wait()

	for i, u := range finals {
		if !u.Done || u.Events != ticks {
			t.Errorf("active subscriber %d final = %+v, want done at %d", i, u, ticks)
		}
	}
	// The stalled subscriber lost intermediate updates (by design) but its
	// channel delivers the final state and closes.
	var last ProgressUpdate
	for u := range stalled {
		last = u
	}
	if !last.Done || last.Events != ticks {
		t.Errorf("stalled subscriber drained to %+v, want done at %d", last, ticks)
	}
}
