package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Track-kind → Chrome process id. Every job is a thread of the "jobs"
// process, every node a thread of the "nodes" process, and the scheduler a
// single thread of its own process, so Perfetto groups the timelines the
// way a human reads a batch schedule.
const (
	chromePidJobs      = 1
	chromePidNodes     = 2
	chromePidScheduler = 3
)

func chromePid(k TrackKind) int {
	switch k {
	case TrackJob:
		return chromePidJobs
	case TrackNode:
		return chromePidNodes
	default:
		return chromePidScheduler
	}
}

func chromeProcessName(k TrackKind) string {
	switch k {
	case TrackJob:
		return "jobs"
	case TrackNode:
		return "nodes"
	default:
		return "scheduler"
	}
}

// ChromeSink streams events in the Chrome trace_event JSON array format.
// The output loads in Perfetto (ui.perfetto.dev) and chrome://tracing.
// Timestamps are simulated microseconds.
type ChromeSink struct {
	w        *bufio.Writer
	closer   io.Closer // non-nil when the sink owns the underlying writer
	n        int       // events written, to place commas
	seenPid  map[int]bool
	seenTrak map[Track]bool
	err      error
}

// NewChromeSink writes the trace to w. The caller keeps ownership of w;
// Close flushes but does not close it.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{w: bufio.NewWriter(w), seenPid: map[int]bool{}, seenTrak: map[Track]bool{}}
}

// NewChromeFileSink is NewChromeSink for an owned file-like writer: Close
// closes it after flushing.
func NewChromeFileSink(w io.WriteCloser) *ChromeSink {
	s := NewChromeSink(w)
	s.closer = w
	return s
}

func (s *ChromeSink) writeEvent(raw string) {
	if s.err != nil {
		return
	}
	var err error
	if s.n == 0 {
		_, err = s.w.WriteString("[\n" + raw)
	} else {
		_, err = s.w.WriteString(",\n" + raw)
	}
	s.n++
	if err != nil {
		s.err = err
	}
}

// metadata emits the process_name / thread_name metadata events the first
// time a pid or track appears.
func (s *ChromeSink) metadata(tr Track) {
	pid := chromePid(tr.Kind)
	if !s.seenPid[pid] {
		s.seenPid[pid] = true
		s.writeEvent(fmt.Sprintf(
			`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`,
			pid, chromeProcessName(tr.Kind)))
	}
	if !s.seenTrak[tr] {
		s.seenTrak[tr] = true
		name := fmt.Sprintf("%s %d", tr.Kind, tr.ID)
		if tr.Kind == TrackScheduler {
			name = "scheduler"
		}
		s.writeEvent(fmt.Sprintf(
			`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`,
			pid, tr.ID, name))
	}
}

// Emit writes one event.
func (s *ChromeSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	s.metadata(ev.Track)
	pid := chromePid(ev.Track.Kind)
	ts := ev.T * 1e6 // seconds → microseconds
	raw := fmt.Sprintf(`{"name":%q,"ph":%q,"ts":%s,"pid":%d,"tid":%d`,
		ev.Name, string(ev.Phase), formatTS(ts), pid, ev.Track.ID)
	if ev.Phase == PhaseInstant {
		raw += `,"s":"t"` // thread-scoped instant
	}
	if len(ev.Args) > 0 {
		raw += `,"args":` + marshalArgs(ev.Args)
	}
	raw += "}"
	s.writeEvent(raw)
}

// formatTS renders a microsecond timestamp without exponent notation so
// every JSON parser (and eyeball) reads it the same way.
func formatTS(us float64) string {
	return trimZeros(fmt.Sprintf("%.3f", us))
}

func trimZeros(s string) string {
	i := len(s)
	for i > 0 && s[i-1] == '0' {
		i--
	}
	if i > 0 && s[i-1] == '.' {
		i--
	}
	return s[:i]
}

// marshalArgs renders the args as a JSON object in key order.
func marshalArgs(args []Arg) string {
	out := "{"
	for i, a := range args {
		if i > 0 {
			out += ","
		}
		v, err := json.Marshal(a.Value)
		if err != nil {
			v = []byte(fmt.Sprintf("%q", fmt.Sprint(a.Value)))
		}
		out += fmt.Sprintf("%q:%s", a.Key, v)
	}
	return out + "}"
}

// Err returns the first write error, if any.
func (s *ChromeSink) Err() error { return s.err }

// Close terminates the JSON array and flushes.
func (s *ChromeSink) Close() error {
	if s.err == nil {
		if s.n == 0 {
			_, s.err = s.w.WriteString("[")
		}
		if s.err == nil {
			_, s.err = s.w.WriteString("\n]\n")
		}
	}
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if s.closer != nil {
		if err := s.closer.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// chromeEvent is the decoded form ValidateChromeTrace checks.
type chromeEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	TS   *float64        `json:"ts"`
	Pid  *int            `json:"pid"`
	Tid  *int            `json:"tid"`
	Args json.RawMessage `json:"args"`
}

// TrackKey identifies one Chrome trace timeline.
type TrackKey struct {
	Pid, Tid int
}

// TrackBounds is the timestamp envelope of one timeline, in microseconds.
type TrackBounds struct {
	FirstTS, LastTS float64
	Events          int
	Spans           int // completed begin/end pairs
	OpenSpans       int // begins without a matching end
}

// ChromeTraceStats summarizes a validated trace.
type ChromeTraceStats struct {
	Events int
	Tracks map[TrackKey]*TrackBounds
}

// ValidateChromeTrace machine-checks a Chrome trace_event JSON document:
// it must parse as an event array, every event needs name/ph (and ts, pid,
// tid for non-metadata phases), timestamps must be non-decreasing per
// (pid, tid) track, and begin/end spans must nest. It returns per-track
// statistics so callers can additionally assert coverage.
func ValidateChromeTrace(data []byte) (*ChromeTraceStats, error) {
	var events []chromeEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return nil, fmt.Errorf("telemetry: trace is not a JSON event array: %w", err)
	}
	stats := &ChromeTraceStats{Tracks: map[TrackKey]*TrackBounds{}}
	depth := map[TrackKey]int{}
	for i, ev := range events {
		if ev.Name == "" || ev.Ph == "" {
			return nil, fmt.Errorf("telemetry: event %d missing name or ph", i)
		}
		if ev.Ph == "M" {
			continue // metadata carries no timestamp
		}
		if ev.TS == nil || ev.Pid == nil || ev.Tid == nil {
			return nil, fmt.Errorf("telemetry: event %d (%s %q) missing ts/pid/tid", i, ev.Ph, ev.Name)
		}
		key := TrackKey{Pid: *ev.Pid, Tid: *ev.Tid}
		tb := stats.Tracks[key]
		if tb == nil {
			tb = &TrackBounds{FirstTS: *ev.TS, LastTS: *ev.TS}
			stats.Tracks[key] = tb
		}
		if *ev.TS < tb.LastTS {
			return nil, fmt.Errorf("telemetry: event %d (%s %q) goes back in time on track pid=%d tid=%d: ts %g < %g",
				i, ev.Ph, ev.Name, key.Pid, key.Tid, *ev.TS, tb.LastTS)
		}
		tb.LastTS = *ev.TS
		tb.Events++
		stats.Events++
		switch ev.Ph {
		case "B":
			depth[key]++
		case "E":
			if depth[key] == 0 {
				return nil, fmt.Errorf("telemetry: event %d: end %q without open span on pid=%d tid=%d",
					i, ev.Name, key.Pid, key.Tid)
			}
			depth[key]--
			tb.Spans++
		case "i", "C":
			// instants and counters have no pairing constraint
		default:
			return nil, fmt.Errorf("telemetry: event %d has unknown phase %q", i, ev.Ph)
		}
	}
	for key, d := range depth {
		if d > 0 {
			stats.Tracks[key].OpenSpans = d
		}
	}
	return stats, nil
}

// SortedTrackKeys returns the track keys in (pid, tid) order, for
// deterministic reporting.
func (s *ChromeTraceStats) SortedTrackKeys() []TrackKey {
	keys := make([]TrackKey, 0, len(s.Tracks))
	for k := range s.Tracks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Pid != keys[j].Pid {
			return keys[i].Pid < keys[j].Pid
		}
		return keys[i].Tid < keys[j].Tid
	})
	return keys
}

// JobTrackKey maps a job id to its Chrome track key.
func JobTrackKey(job int) TrackKey { return TrackKey{Pid: chromePidJobs, Tid: job} }

// NodeTrackKey maps a node id to its Chrome track key.
func NodeTrackKey(node int) TrackKey { return TrackKey{Pid: chromePidNodes, Tid: node} }
