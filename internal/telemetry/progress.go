package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// RunProgress is an opt-in live ticker for one simulation run. The DES
// kernel calls Tick every EveryEvents fired events; RunProgress rate-limits
// actual terminal writes to Interval of wall-clock time and reports
// simulated time plus events/second to W (conventionally stderr).
//
// Progress output is wall-clock driven and goes to a side channel, so it
// never perturbs simulation outputs.
type RunProgress struct {
	W        io.Writer
	Interval time.Duration // min wall time between writes (default 500ms)
	Label    string        // optional prefix, e.g. the run's name

	start    time.Time
	lastWall time.Time
	lastEv   uint64
	wrote    bool
}

// EveryEvents is the kernel-side sampling stride for progress callbacks:
// coarse enough to stay off the hot path, fine enough for sub-second
// updates on realistic event rates.
const EveryEvents = 4096

// Tick reports progress at simulated time simT after events fired events.
// Writes are throttled to Interval.
func (p *RunProgress) Tick(simT float64, events uint64) {
	now := time.Now()
	if p.start.IsZero() {
		p.start, p.lastWall, p.lastEv = now, now, events
		return
	}
	interval := p.Interval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if now.Sub(p.lastWall) < interval {
		return
	}
	rate := float64(events-p.lastEv) / now.Sub(p.lastWall).Seconds()
	p.lastWall, p.lastEv = now, events
	label := p.Label
	if label != "" {
		label += " "
	}
	fmt.Fprintf(p.W, "\r%st=%.0fs events=%d (%.0f ev/s)   ", label, simT, events, rate)
	p.wrote = true
}

// Done terminates the progress line, if any was written.
func (p *RunProgress) Done() {
	if p.wrote {
		fmt.Fprintln(p.W)
	}
}

// CellProgress tracks completion of a fixed number of experiment cells
// (e.g. sweep points) across concurrent workers and prints done/total
// with an ETA extrapolated from the average cell wall time.
type CellProgress struct {
	W     io.Writer
	Total int

	mu    sync.Mutex
	start time.Time
	done  int
	wrote bool
}

// CellDone marks one cell finished and reprints the status line.
func (p *CellProgress) CellDone() {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if p.start.IsZero() {
		p.start = now
	}
	p.done++
	elapsed := now.Sub(p.start)
	var eta time.Duration
	if p.done > 0 && p.done < p.Total {
		eta = time.Duration(float64(elapsed) / float64(p.done) * float64(p.Total-p.done))
	}
	fmt.Fprintf(p.W, "\rcells %d/%d elapsed=%s eta=%s   ",
		p.done, p.Total, elapsed.Round(time.Second), eta.Round(time.Second))
	p.wrote = true
}

// Done terminates the progress line, if any was written.
func (p *CellProgress) Done() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wrote {
		fmt.Fprintln(p.W)
	}
}
