package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is the sink interface the engine drives with live progress:
// Tick is called from the event loop every EveryEvents fired events, and
// Done exactly once when the run finalizes. Implementations decide what a
// tick means — RunProgress renders a terminal status line, ProgressFanOut
// re-broadcasts to any number of concurrent subscribers.
//
// Tick and Done are always called from the single goroutine driving the
// simulation; implementations that are read from other goroutines (like
// ProgressFanOut) must do their own locking.
type Progress interface {
	Tick(simT float64, events uint64)
	Done()
}

// RunProgress is an opt-in live ticker for one simulation run. The DES
// kernel calls Tick every EveryEvents fired events; RunProgress rate-limits
// actual terminal writes to Interval of wall-clock time and reports
// simulated time plus events/second to W (conventionally stderr).
//
// Progress output is wall-clock driven and goes to a side channel, so it
// never perturbs simulation outputs.
type RunProgress struct {
	W        io.Writer
	Interval time.Duration // min wall time between writes (default 500ms)
	Label    string        // optional prefix, e.g. the run's name

	start    time.Time
	lastWall time.Time
	lastEv   uint64
	wrote    bool
}

// EveryEvents is the kernel-side sampling stride for progress callbacks:
// coarse enough to stay off the hot path, fine enough for sub-second
// updates on realistic event rates.
const EveryEvents = 4096

// Tick reports progress at simulated time simT after events fired events.
// Writes are throttled to Interval.
func (p *RunProgress) Tick(simT float64, events uint64) {
	now := time.Now()
	if p.start.IsZero() {
		p.start, p.lastWall, p.lastEv = now, now, events
		return
	}
	interval := p.Interval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if now.Sub(p.lastWall) < interval {
		return
	}
	rate := float64(events-p.lastEv) / now.Sub(p.lastWall).Seconds()
	p.lastWall, p.lastEv = now, events
	label := p.Label
	if label != "" {
		label += " "
	}
	fmt.Fprintf(p.W, "\r%st=%.0fs events=%d (%.0f ev/s)   ", label, simT, events, rate)
	p.wrote = true
}

// Done terminates the progress line, if any was written.
func (p *RunProgress) Done() {
	if p.wrote {
		fmt.Fprintln(p.W)
	}
}

// ProgressUpdate is one sampled progress point of a running simulation.
type ProgressUpdate struct {
	// SimTime is the simulation clock in seconds at the sample.
	SimTime float64 `json:"sim_time"`
	// Events is the number of events executed so far.
	Events uint64 `json:"events"`
	// Done marks the final update of the run.
	Done bool `json:"done,omitempty"`
}

// ProgressFanOut distributes one engine progress stream to any number of
// concurrent subscribers, so a Peek-polling HTTP handler and an SSE stream
// can observe the same session without racing. The engine calls Tick/Done
// from the simulation goroutine; Subscribe and Last may be called from any
// goroutine at any point in the run's lifetime.
//
// Subscribers receive updates on a buffered channel with latest-wins
// semantics: a slow consumer never blocks the simulation — stale updates
// are dropped in favour of the newest one. The channel is closed after the
// final (Done) update is delivered. A subscription taken after the run
// finished immediately yields the final update and closes.
type ProgressFanOut struct {
	mu   sync.Mutex
	subs map[int]chan ProgressUpdate
	next int
	last ProgressUpdate
	seen bool // at least one Tick or Done happened
	done bool
}

// Tick records and broadcasts a progress sample. It never blocks.
func (f *ProgressFanOut) Tick(simT float64, events uint64) {
	f.publish(ProgressUpdate{SimTime: simT, Events: events})
}

// Done broadcasts a final update (carrying the last sampled clock) and
// closes every subscriber channel. Further Subscribe calls yield the final
// update immediately.
func (f *ProgressFanOut) Done() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return
	}
	f.done = true
	u := f.last
	u.Done = true
	f.last, f.seen = u, true
	for id, ch := range f.subs {
		f.send(ch, u)
		close(ch)
		delete(f.subs, id)
	}
}

func (f *ProgressFanOut) publish(u ProgressUpdate) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return
	}
	f.last, f.seen = u, true
	for _, ch := range f.subs {
		f.send(ch, u)
	}
}

// send delivers u to ch without ever blocking: when the buffer is full the
// oldest queued update is dropped to make room for the newest.
func (f *ProgressFanOut) send(ch chan ProgressUpdate, u ProgressUpdate) {
	for {
		select {
		case ch <- u:
			return
		default:
		}
		select {
		case <-ch:
		default:
		}
	}
}

// Last returns the most recent update and whether any update happened yet.
func (f *ProgressFanOut) Last() (ProgressUpdate, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last, f.seen
}

// Subscribe registers a new subscriber with the given channel buffer
// (minimum 1) and returns its channel plus a cancel function. Cancel is
// idempotent and safe to call after the channel closed.
func (f *ProgressFanOut) Subscribe(buf int) (<-chan ProgressUpdate, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan ProgressUpdate, buf)
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		ch <- f.last
		close(ch)
		return ch, func() {}
	}
	if f.subs == nil {
		f.subs = make(map[int]chan ProgressUpdate)
	}
	id := f.next
	f.next++
	f.subs[id] = ch
	if f.seen {
		f.send(ch, f.last)
	}
	f.mu.Unlock()
	cancel := func() {
		f.mu.Lock()
		if c, ok := f.subs[id]; ok {
			delete(f.subs, id)
			close(c)
		}
		f.mu.Unlock()
	}
	return ch, cancel
}

// CellProgress tracks completion of a fixed number of experiment cells
// (e.g. sweep points) across concurrent workers and prints done/total
// with an ETA extrapolated from the average cell wall time.
type CellProgress struct {
	W     io.Writer
	Total int

	mu    sync.Mutex
	start time.Time
	done  int
	wrote bool
}

// CellDone marks one cell finished and reprints the status line.
func (p *CellProgress) CellDone() {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if p.start.IsZero() {
		p.start = now
	}
	p.done++
	elapsed := now.Sub(p.start)
	var eta time.Duration
	if p.done > 0 && p.done < p.Total {
		eta = time.Duration(float64(elapsed) / float64(p.done) * float64(p.Total-p.done))
	}
	fmt.Fprintf(p.W, "\rcells %d/%d elapsed=%s eta=%s   ",
		p.done, p.Total, elapsed.Round(time.Second), eta.Round(time.Second))
	p.wrote = true
}

// Done terminates the progress line, if any was written.
func (p *CellProgress) Done() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wrote {
		fmt.Fprintln(p.W)
	}
}
