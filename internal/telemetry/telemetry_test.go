package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestNilTracerZeroAllocs pins the zero-overhead-when-disabled contract:
// every Tracer method on a nil receiver must allocate nothing. Variadic
// calls pass no args — that is exactly how instrumentation sites call them
// after an Enabled() guard.
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	track := JobTrack(7)
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Begin(track, "run", 1.0)
		tr.End(track, "run", 2.0)
		tr.Instant(track, "checkpoint", 1.5)
		tr.Counter(SchedulerTrack, "queue_depth", 1.0, 3)
		tr.Emit(Event{})
		_ = tr.Audit()
		_ = tr.Enabled()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f times per run; want 0", allocs)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("nil tracer Close: %v", err)
	}
	var a *AuditLog
	allocs = testing.AllocsPerRun(100, func() {
		a.Record(AuditRecord{})
		_ = a.Records()
	})
	if allocs != 0 {
		t.Fatalf("nil audit log allocated %.1f times per run; want 0", allocs)
	}
}

// emitScenario drives a small fixed event sequence through a tracer.
func emitScenario(tr *Tracer) {
	j := JobTrack(0)
	n := NodeTrack(2)
	tr.Begin(j, "wait", 0)
	tr.End(j, "wait", 10)
	tr.Begin(j, "run", 10, Arg{Key: "nodes", Value: 4})
	tr.Begin(n, "job 0", 10)
	tr.Instant(j, "scheduling-point", 15)
	tr.Begin(j, "reconfigure", 15)
	tr.End(j, "reconfigure", 16)
	tr.End(n, "job 0", 20)
	tr.End(j, "run", 20, Arg{Key: "status", Value: "completed"})
	tr.Counter(SchedulerTrack, "queue_depth", 15, 1)
	tr.Instant(SchedulerTrack, "invoke", 15)
}

func TestChromeSinkValid(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	tr := New(sink)
	emitScenario(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("invalid trace: %v\n%s", err, buf.String())
	}
	jt := stats.Tracks[JobTrackKey(0)]
	if jt == nil {
		t.Fatal("no job 0 track")
	}
	if jt.FirstTS != 0 || jt.LastTS != 20e6 {
		t.Errorf("job 0 bounds = [%g, %g] µs; want [0, 2e7]", jt.FirstTS, jt.LastTS)
	}
	if jt.Spans != 3 || jt.OpenSpans != 0 {
		t.Errorf("job 0 spans = %d open = %d; want 3 closed, 0 open", jt.Spans, jt.OpenSpans)
	}
	if nt := stats.Tracks[NodeTrackKey(2)]; nt == nil || nt.Spans != 1 {
		t.Errorf("node 2 track = %+v; want one span", nt)
	}
	if !strings.Contains(buf.String(), `"process_name"`) || !strings.Contains(buf.String(), `"thread_name"`) {
		t.Error("trace missing metadata events")
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not-array":     `{"name":"x"}`,
		"missing-ph":    `[{"name":"x","ts":1,"pid":1,"tid":1}]`,
		"missing-ts":    `[{"name":"x","ph":"B","pid":1,"tid":1}]`,
		"ts-regression": `[{"name":"a","ph":"i","ts":5,"pid":1,"tid":1},{"name":"b","ph":"i","ts":4,"pid":1,"tid":1}]`,
		"unbalanced-E":  `[{"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]`,
		"bad-phase":     `[{"name":"a","ph":"Z","ts":1,"pid":1,"tid":1}]`,
	}
	for name, doc := range cases {
		if _, err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validation accepted invalid trace", name)
		}
	}
	// Different tracks may interleave out of global order.
	ok := `[{"name":"a","ph":"i","ts":5,"pid":1,"tid":1},{"name":"b","ph":"i","ts":4,"pid":1,"tid":2}]`
	if _, err := ValidateChromeTrace([]byte(ok)); err != nil {
		t.Errorf("per-track monotone trace rejected: %v", err)
	}
}

func TestJSONLRoundtripAndSummary(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONLSink(&buf))
	emitScenario(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 11 {
		t.Fatalf("read %d events; want 11", len(events))
	}
	if events[2].Args["nodes"] != float64(4) {
		t.Errorf("args roundtrip: got %v", events[2].Args)
	}
	sums := SummarizeJobSpans(events)
	if len(sums) != 1 {
		t.Fatalf("got %d job summaries; want 1", len(sums))
	}
	s := sums[0]
	if s.Job != 0 || s.Wait != 10 || s.Run != 10 || s.Reconfigure != 1 {
		t.Errorf("summary = %+v; want wait=10 run=10 reconfigure=1", s)
	}
	if s.SchedPoints != 1 || s.Reconfigs != 1 {
		t.Errorf("summary counts = %+v; want 1 scheduling point, 1 reconfig", s)
	}
}

func TestSnapshotAddStripDiff(t *testing.T) {
	a := Snapshot{
		Runs: 1, Jobs: 10,
		Kernel:    KernelStats{Scheduled: 100, Fired: 90, Cancelled: 10, Recycled: 5, PeakQueue: 30},
		Solver:    SolverStats{Solves: 40, SolvedActivities: 200},
		Scheduler: SchedulerStats{Invocations: 20, Applied: 15, Rejected: 2, ByKind: map[string]uint64{"start": 10, "resize": 5}},
		Wall:      WallStats{RunNS: 1e6},
		Mem:       MemStats{HeapAllocBytes: 1000, TotalAllocs: 50},
	}
	b := Snapshot{
		Runs: 2, Jobs: 5,
		Kernel:    KernelStats{Scheduled: 50, PeakQueue: 45},
		Scheduler: SchedulerStats{ByKind: map[string]uint64{"start": 1, "kill": 3}},
		Mem:       MemStats{HeapAllocBytes: 2000, TotalAllocs: 10},
	}
	sum := a
	sum.Scheduler.ByKind = map[string]uint64{"start": 10, "resize": 5} // fresh map: Add mutates
	sum.Add(b)
	if sum.Runs != 3 || sum.Kernel.Scheduled != 150 || sum.Kernel.PeakQueue != 45 {
		t.Errorf("Add: got %+v", sum)
	}
	if sum.Scheduler.ByKind["start"] != 11 || sum.Scheduler.ByKind["kill"] != 3 {
		t.Errorf("Add by_kind: got %v", sum.Scheduler.ByKind)
	}
	if sum.Mem.HeapAllocBytes != 2000 || sum.Mem.TotalAllocs != 60 {
		t.Errorf("Add mem: got %+v", sum.Mem)
	}

	stripped := sum.StripWall()
	if stripped.Wall != (WallStats{}) || stripped.Mem != (MemStats{}) {
		t.Errorf("StripWall left wall/mem data: %+v", stripped)
	}

	var js bytes.Buffer
	if err := sum.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&js)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kernel != sum.Kernel || back.Solver != sum.Solver {
		t.Errorf("JSON roundtrip: got %+v want %+v", back, sum)
	}

	rows := Diff(a, sum)
	byName := map[string]DiffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	r, ok := byName["kernel.scheduled"]
	if !ok || r.A != 100 || r.B != 150 || math.Abs(r.Change-0.5) > 1e-12 {
		t.Errorf("diff kernel.scheduled = %+v", r)
	}
	if _, ok := byName["scheduler.by_kind.kill"]; !ok {
		t.Error("diff missing scheduler.by_kind.kill (present only on one side)")
	}
}

func TestAuditLogRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	a := NewAuditLog(&buf)
	a.Record(AuditRecord{
		T: 12.5, Invocation: 1, Reasons: "submit", QueueDepth: 3, FreeNodes: 16,
		Decisions: []AuditDecision{
			{Kind: "start", Job: 0, NumNodes: 4, Applied: true},
			{Kind: "start", Job: 1, NumNodes: 32, Applied: false, Reason: "not enough free nodes"},
		},
	})
	a.Record(AuditRecord{T: 20, Invocation: 2, Reasons: "completion"})
	if a.Records() != 2 {
		t.Fatalf("Records() = %d; want 2", a.Records())
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAuditLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || len(recs[0].Decisions) != 2 {
		t.Fatalf("roundtrip: got %+v", recs)
	}
	if recs[0].Decisions[1].Reason != "not enough free nodes" {
		t.Errorf("rejection reason lost: %+v", recs[0].Decisions[1])
	}
}
