package expr

import (
	"fmt"
	"math"
	"sort"
)

// Env supplies variable values during evaluation.
type Env interface {
	Lookup(name string) (float64, bool)
}

// Vars is the simplest Env: a plain map.
type Vars map[string]float64

// Lookup implements Env.
func (v Vars) Lookup(name string) (float64, bool) {
	val, ok := v[name]
	return val, ok
}

// ChainEnv looks up a name in each environment in order. It lets job
// arguments shadow engine-provided variables.
type ChainEnv []Env

// Lookup implements Env.
func (c ChainEnv) Lookup(name string) (float64, bool) {
	for _, e := range c {
		if e == nil {
			continue
		}
		if v, ok := e.Lookup(name); ok {
			return v, true
		}
	}
	return 0, false
}

// UndefinedVarError reports evaluation of an expression whose environment is
// missing a variable.
type UndefinedVarError struct {
	Name string
}

func (e *UndefinedVarError) Error() string {
	return fmt.Sprintf("expr: undefined variable %q", e.Name)
}

// Expr is a compiled expression. Compile once, evaluate many times; an Expr
// is immutable and safe for concurrent use.
type Expr struct {
	src  string
	root node
}

// Compile parses src into an evaluable expression.
func Compile(src string) (*Expr, error) {
	root, err := parse(src)
	if err != nil {
		return nil, err
	}
	return &Expr{src: src, root: root}, nil
}

// MustCompile is Compile for expressions known correct at build time.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

// Constant returns an expression that always evaluates to v.
func Constant(v float64) *Expr {
	return &Expr{src: fmt.Sprintf("%g", v), root: numNode(v)}
}

// Source returns the original expression text.
func (e *Expr) Source() string { return e.src }

// Eval evaluates the expression. It returns an *UndefinedVarError if env is
// missing a variable the expression references.
func (e *Expr) Eval(env Env) (val float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			if uv, ok := r.(*UndefinedVarError); ok {
				err = uv
				return
			}
			panic(r)
		}
	}()
	return e.root.eval(env), nil
}

// MustEval evaluates the expression and panics on missing variables. The
// engine uses it after Validate has proven the variable set complete.
func (e *Expr) MustEval(env Env) float64 {
	return e.root.eval(env)
}

// Vars returns the sorted free variables of the expression.
func (e *Expr) Vars() []string {
	set := map[string]bool{}
	e.root.vars(set)
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Validate checks that every free variable is covered by the given set of
// permitted names; it returns the first missing variable's error.
func (e *Expr) Validate(allowed map[string]bool) error {
	for _, v := range e.Vars() {
		if !allowed[v] {
			return &UndefinedVarError{Name: v}
		}
	}
	return nil
}

// IsConstant reports whether the expression references no variables.
func (e *Expr) IsConstant() bool {
	set := map[string]bool{}
	e.root.vars(set)
	return len(set) == 0
}

func (e *Expr) String() string { return e.src }

// builtin is the implementation of a callable function.
type builtin func(args []float64) float64

type builtinSpec struct {
	impl     builtin
	minArity int
	maxArity int // -1 for variadic
}

func (s builtinSpec) checkArity(n int) string {
	if n < s.minArity {
		return fmt.Sprintf("expected at least %d argument(s), got %d", s.minArity, n)
	}
	if s.maxArity >= 0 && n > s.maxArity {
		return fmt.Sprintf("expected at most %d argument(s), got %d", s.maxArity, n)
	}
	return ""
}

var builtins = map[string]builtinSpec{
	"abs":   {func(a []float64) float64 { return math.Abs(a[0]) }, 1, 1},
	"ceil":  {func(a []float64) float64 { return math.Ceil(a[0]) }, 1, 1},
	"floor": {func(a []float64) float64 { return math.Floor(a[0]) }, 1, 1},
	"round": {func(a []float64) float64 { return math.Round(a[0]) }, 1, 1},
	"sqrt":  {func(a []float64) float64 { return math.Sqrt(a[0]) }, 1, 1},
	"cbrt":  {func(a []float64) float64 { return math.Cbrt(a[0]) }, 1, 1},
	"exp":   {func(a []float64) float64 { return math.Exp(a[0]) }, 1, 1},
	"log":   {func(a []float64) float64 { return math.Log(a[0]) }, 1, 1},
	"log2":  {func(a []float64) float64 { return math.Log2(a[0]) }, 1, 1},
	"log10": {func(a []float64) float64 { return math.Log10(a[0]) }, 1, 1},
	"pow":   {func(a []float64) float64 { return math.Pow(a[0], a[1]) }, 2, 2},
	"min":   {reduce(math.Min), 1, -1},
	"max":   {reduce(math.Max), 1, -1},
	"clamp": {func(a []float64) float64 { return math.Min(math.Max(a[0], a[1]), a[2]) }, 3, 3},
	// if(cond, then, else) — alternative to the ?: operator, convenient in
	// JSON files where ':' reads poorly.
	"if": {func(a []float64) float64 {
		if a[0] != 0 {
			return a[1]
		}
		return a[2]
	}, 3, 3},
	// amdahl(serialFraction, n): classic speedup-limited scaling factor;
	// total work divided by amdahl(...) yields per-node time.
	"amdahl": {func(a []float64) float64 {
		f, n := a[0], a[1]
		if n <= 0 {
			return 1
		}
		return 1 / (f + (1-f)/n)
	}, 2, 2},
}

func reduce(f func(a, b float64) float64) builtin {
	return func(args []float64) float64 {
		acc := args[0]
		for _, v := range args[1:] {
			acc = f(acc, v)
		}
		return acc
	}
}

// fmod and pow are referenced from the parser's binary evaluator.
func fmod(a, b float64) float64 { return math.Mod(a, b) }
func pow(a, b float64) float64  { return math.Pow(a, b) }
