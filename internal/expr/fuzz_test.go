package expr

import (
	"math"
	"testing"
)

// FuzzParse feeds arbitrary strings to the compiler. Compile must never
// panic — malformed input has to surface as an error — and any expression
// that does compile must round-trip: recompiling its Source() yields an
// expression that evaluates to the same value (NaN-aware) under a fixed
// environment.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"1 + 2 * 3",
		"flops / num_nodes",
		"amdahl(0.05, num_nodes) * base",
		"x > 3 ? y : -y",
		"min(a, b, c) % 2 ^ -3",
		"clamp(n, 1, 64) + if(n > 8, 1, 0)",
		"!((x))",
		"((((((((((1))))))))))",
		"100G",
		"-",
		"1 ? 2",
		"unknownfn(1)",
		"\x00\xff",
	} {
		f.Add(seed)
	}
	env := Vars{
		"x": 3.5, "y": -2, "a": 1, "b": 2, "c": 3, "n": 17,
		"base": 100, "flops": 1e12, "num_nodes": 16,
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Compile(src) // must not panic, however hostile src is
		if err != nil {
			return
		}
		v1, err1 := e.Eval(env)
		e2, err := Compile(e.Source())
		if err != nil {
			t.Fatalf("round-trip: Source() %q of valid input %q does not recompile: %v",
				e.Source(), src, err)
		}
		v2, err2 := e2.Eval(env)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("round-trip: eval errors diverge for %q: %v vs %v", src, err1, err2)
		}
		if err1 == nil && v1 != v2 && !(math.IsNaN(v1) && math.IsNaN(v2)) {
			t.Fatalf("round-trip: %q evaluates to %v, recompiled to %v", src, v1, v2)
		}
	})
}

// TestParseDepthLimit pins the recursion guard: pathologically nested input
// is rejected with a SyntaxError rather than a stack overflow.
func TestParseDepthLimit(t *testing.T) {
	deep := ""
	for i := 0; i < 10000; i++ {
		deep += "("
	}
	deep += "1"
	for i := 0; i < 10000; i++ {
		deep += ")"
	}
	if _, err := Compile(deep); err == nil {
		t.Fatal("deeply nested parens compiled")
	}
	if _, err := Compile(string(make([]byte, 0, 1)) + repeat("-", 10000) + "x"); err == nil {
		t.Fatal("long unary chain compiled")
	}
	// A reasonable depth still parses.
	ok := repeat("(", 50) + "1" + repeat(")", 50)
	if _, err := Compile(ok); err != nil {
		t.Fatalf("50-deep parens rejected: %v", err)
	}
}

func repeat(s string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += s
	}
	return out
}
