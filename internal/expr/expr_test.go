package expr

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func evalOK(t *testing.T, src string, env Env) float64 {
	t.Helper()
	e, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"1+2", 3},
		{"2*3+4", 10},
		{"2+3*4", 14},
		{"(2+3)*4", 20},
		{"10-4-3", 3},   // left associative
		{"100/10/2", 5}, // left associative
		{"2^10", 1024},  //
		{"2^3^2", 512},  // right associative
		{"-2^2", -4},    // unary binds looser than ^
		{"7 % 3", 1},
		{"-5 + 10", 5},
		{"--5", 5},
		{"3.5 * 2", 7},
		{"1e3 + 1", 1001},
		{"2.5e-1", 0.25},
		{"1k", 1000},
		{"4M", 4e6},
		{"2G", 2e9},
		{"1T", 1e12},
		{"3P", 3e15},
		{"1 < 2", 1},
		{"2 <= 2", 1},
		{"3 > 4", 0},
		{"3 >= 3", 1},
		{"5 == 5", 1},
		{"5 != 5", 0},
		{"1 && 0", 0},
		{"1 || 0", 1},
		{"!1", 0},
		{"!0", 1},
		{"1 < 2 && 3 < 4", 1},
		{"1 > 2 || 3 < 4", 1},
		{"1 ? 10 : 20", 10},
		{"0 ? 10 : 20", 20},
		{"1 ? 2 : 0 ? 3 : 4", 2}, // right associative ternary
		{"min(3, 1, 2)", 1},
		{"max(3, 1, 2)", 3},
		{"abs(-4)", 4},
		{"ceil(1.2)", 2},
		{"floor(1.8)", 1},
		{"round(2.5)", 3},
		{"sqrt(16)", 4},
		{"log2(8)", 3},
		{"log10(1000)", 3},
		{"pow(3, 4)", 81},
		{"clamp(15, 0, 10)", 10},
		{"clamp(-5, 0, 10)", 0},
		{"clamp(5, 0, 10)", 5},
		{"if(2 > 1, 7, 9)", 7},
		{"exp(0)", 1},
		{"cbrt(27)", 3},
	}
	for _, tc := range cases {
		if got := evalOK(t, tc.src, Vars{}); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%q = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestVariables(t *testing.T) {
	env := Vars{"num_nodes": 8, "flops": 1e12}
	if got := evalOK(t, "flops / num_nodes", env); got != 1.25e11 {
		t.Errorf("got %v", got)
	}
	if got := evalOK(t, "flops / num_nodes * (0.7 + 0.3/num_nodes)", env); math.Abs(got-1.25e11*0.7375) > 1 {
		t.Errorf("got %v", got)
	}
}

func TestAmdahl(t *testing.T) {
	// amdahl(0, n) == n (perfect scaling), amdahl(1, n) == 1 (serial).
	if got := evalOK(t, "amdahl(0, 16)", Vars{}); math.Abs(got-16) > 1e-9 {
		t.Errorf("amdahl(0,16) = %v", got)
	}
	if got := evalOK(t, "amdahl(1, 16)", Vars{}); math.Abs(got-1) > 1e-9 {
		t.Errorf("amdahl(1,16) = %v", got)
	}
	// 10% serial fraction on 8 nodes.
	want := 1 / (0.1 + 0.9/8)
	if got := evalOK(t, "amdahl(0.1, 8)", Vars{}); math.Abs(got-want) > 1e-9 {
		t.Errorf("amdahl(0.1,8) = %v, want %v", got, want)
	}
}

func TestUndefinedVariable(t *testing.T) {
	e := MustCompile("a + b")
	_, err := e.Eval(Vars{"a": 1})
	var uv *UndefinedVarError
	if err == nil {
		t.Fatal("expected error for undefined variable")
	}
	uv, ok := err.(*UndefinedVarError)
	if !ok {
		t.Fatalf("error type %T, want *UndefinedVarError", err)
	}
	if uv.Name != "b" {
		t.Errorf("missing var %q, want b", uv.Name)
	}
}

func TestShortCircuitAvoidsUndefined(t *testing.T) {
	// && and || must short-circuit so guarded variables are legal.
	if got := evalOK(t, "0 && undefined_var", Vars{}); got != 0 {
		t.Errorf("got %v", got)
	}
	if got := evalOK(t, "1 || undefined_var", Vars{}); got != 1 {
		t.Errorf("got %v", got)
	}
}

func TestTernaryLazy(t *testing.T) {
	if got := evalOK(t, "1 ? 5 : undefined_var", Vars{}); got != 5 {
		t.Errorf("got %v", got)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"",
		"1 +",
		"(1",
		"1)",
		"* 2",
		"foo(",
		"nosuchfn(1)",
		"min()",
		"pow(1)",
		"pow(1,2,3)",
		"clamp(1,2)",
		"1 @ 2",
		"1..2",
		"1 ? 2",
		"a b",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Compile("1 + @")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if se.Pos != 4 {
		t.Errorf("error position %d, want 4", se.Pos)
	}
	if !strings.Contains(se.Error(), "offset 4") {
		t.Errorf("error message %q lacks position", se.Error())
	}
}

func TestVarsListing(t *testing.T) {
	e := MustCompile("flops/num_nodes + min(a, b) + a")
	got := e.Vars()
	want := []string{"a", "b", "flops", "num_nodes"}
	if len(got) != len(want) {
		t.Fatalf("Vars() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars() = %v, want %v", got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	e := MustCompile("num_nodes * x")
	err := e.Validate(map[string]bool{"num_nodes": true})
	if err == nil {
		t.Fatal("Validate passed with missing variable")
	}
	if err.(*UndefinedVarError).Name != "x" {
		t.Errorf("missing var %v", err)
	}
	if err := e.Validate(map[string]bool{"num_nodes": true, "x": true}); err != nil {
		t.Errorf("Validate failed: %v", err)
	}
}

func TestIsConstant(t *testing.T) {
	if !MustCompile("1 + 2*3").IsConstant() {
		t.Error("constant expression reported non-constant")
	}
	if MustCompile("1 + n").IsConstant() {
		t.Error("variable expression reported constant")
	}
}

func TestConstant(t *testing.T) {
	e := Constant(42.5)
	v, err := e.Eval(nil)
	if err != nil || v != 42.5 {
		t.Errorf("Constant = %v, %v", v, err)
	}
}

func TestChainEnv(t *testing.T) {
	inner := Vars{"a": 1, "b": 2}
	outer := Vars{"b": 20, "c": 30}
	env := ChainEnv{outer, inner}
	if got := evalOK(t, "a + b + c", env); got != 1+20+30 {
		t.Errorf("chain lookup got %v", got)
	}
}

func TestSuffixNotConfusedWithIdent(t *testing.T) {
	// "5M" is 5e6, but "5Max" must be a syntax error (number then ident).
	if got := evalOK(t, "5M", Vars{}); got != 5e6 {
		t.Errorf("5M = %v", got)
	}
	if _, err := Compile("5Max"); err == nil {
		t.Error("5Max compiled, want error")
	}
}

func TestDivisionByZeroIsInf(t *testing.T) {
	// The fluid model tolerates Inf costs (they mean "never finishes"), so
	// the language follows IEEE semantics instead of erroring.
	if got := evalOK(t, "1/0", Vars{}); !math.IsInf(got, 1) {
		t.Errorf("1/0 = %v, want +Inf", got)
	}
}

func TestWhitespaceInsensitive(t *testing.T) {
	a := evalOK(t, " 1+2 * 3 ", Vars{})
	b := evalOK(t, "1+2*3", Vars{})
	if a != b {
		t.Errorf("whitespace changed result: %v vs %v", a, b)
	}
}

// Property: compiled expressions are pure — evaluating twice with the same
// env yields identical results.
func TestEvalPure(t *testing.T) {
	e := MustCompile("amdahl(f, n) * x + min(x, n) - x^2 % 7")
	f := func(fv, nv, xv float64) bool {
		if math.IsNaN(fv) || math.IsNaN(nv) || math.IsNaN(xv) {
			return true
		}
		env := Vars{"f": fv, "n": nv, "x": xv}
		a, err1 := e.Eval(env)
		b, err2 := e.Eval(env)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		return a == b || (math.IsNaN(a) && math.IsNaN(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: x + y evaluates to the float sum for any finite inputs.
func TestAdditionMatchesGo(t *testing.T) {
	e := MustCompile("x + y")
	f := func(x, y float64) bool {
		got, err := e.Eval(Vars{"x": x, "y": y})
		if err != nil {
			return false
		}
		want := x + y
		return got == want || (math.IsNaN(got) && math.IsNaN(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := tokenize("a + 1.5 * (b)")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokPlus, tokNumber, tokStar, tokLParen, tokIdent, tokRParen, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d kind %d, want %d", i, toks[i].kind, k)
		}
	}
}

func BenchmarkEvalPerfModel(b *testing.B) {
	e := MustCompile("flops / num_nodes * (0.7 + 0.3/num_nodes)")
	env := Vars{"flops": 1e12, "num_nodes": 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Compile("flops / num_nodes * (0.7 + 0.3/num_nodes) + min(a, b, 3)"); err != nil {
			b.Fatal(err)
		}
	}
}
