package expr

import "fmt"

// node is a compiled expression tree node.
type node interface {
	eval(env Env) float64
	// vars appends the free variables of the subtree to dst.
	vars(dst map[string]bool)
}

type numNode float64

func (n numNode) eval(Env) float64     { return float64(n) }
func (n numNode) vars(map[string]bool) {}

type varNode string

func (n varNode) eval(env Env) float64 {
	v, ok := env.Lookup(string(n))
	if !ok {
		panic(&UndefinedVarError{Name: string(n)})
	}
	return v
}
func (n varNode) vars(dst map[string]bool) { dst[string(n)] = true }

type unaryNode struct {
	op    tokenKind
	child node
}

func (n *unaryNode) eval(env Env) float64 {
	v := n.child.eval(env)
	switch n.op {
	case tokMinus:
		return -v
	case tokNot:
		if v == 0 {
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("expr: bad unary op %d", n.op))
}
func (n *unaryNode) vars(dst map[string]bool) { n.child.vars(dst) }

type binaryNode struct {
	op          tokenKind
	left, right node
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (n *binaryNode) eval(env Env) float64 {
	// Short-circuit logical operators.
	switch n.op {
	case tokAnd:
		if n.left.eval(env) == 0 {
			return 0
		}
		return boolToFloat(n.right.eval(env) != 0)
	case tokOr:
		if n.left.eval(env) != 0 {
			return 1
		}
		return boolToFloat(n.right.eval(env) != 0)
	}
	l, r := n.left.eval(env), n.right.eval(env)
	switch n.op {
	case tokPlus:
		return l + r
	case tokMinus:
		return l - r
	case tokStar:
		return l * r
	case tokSlash:
		return l / r
	case tokPercent:
		return fmod(l, r)
	case tokCaret:
		return pow(l, r)
	case tokLT:
		return boolToFloat(l < r)
	case tokLE:
		return boolToFloat(l <= r)
	case tokGT:
		return boolToFloat(l > r)
	case tokGE:
		return boolToFloat(l >= r)
	case tokEQ:
		return boolToFloat(l == r)
	case tokNE:
		return boolToFloat(l != r)
	}
	panic(fmt.Sprintf("expr: bad binary op %d", n.op))
}
func (n *binaryNode) vars(dst map[string]bool) {
	n.left.vars(dst)
	n.right.vars(dst)
}

type condNode struct {
	cond, then, els node
}

func (n *condNode) eval(env Env) float64 {
	if n.cond.eval(env) != 0 {
		return n.then.eval(env)
	}
	return n.els.eval(env)
}
func (n *condNode) vars(dst map[string]bool) {
	n.cond.vars(dst)
	n.then.vars(dst)
	n.els.vars(dst)
}

type callNode struct {
	name string
	fn   builtin
	args []node
}

func (n *callNode) eval(env Env) float64 {
	vals := make([]float64, len(n.args))
	for i, a := range n.args {
		vals[i] = a.eval(env)
	}
	return n.fn(vals)
}
func (n *callNode) vars(dst map[string]bool) {
	for _, a := range n.args {
		a.vars(dst)
	}
}

// maxParseDepth bounds parser recursion so pathological inputs (deeply
// nested parentheses, long unary chains) fail with a SyntaxError instead
// of exhausting the goroutine stack.
const maxParseDepth = 200

type parser struct {
	lex   *lexer
	tok   token
	src   string
	depth int
}

// enter guards each recursive production against unbounded nesting; every
// successful enter is paired with a deferred leave.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return p.errorf(p.tok.pos, "expression nested deeper than %d levels", maxParseDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Expr: p.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) expect(kind tokenKind, what string) error {
	if p.tok.kind != kind {
		return p.errorf(p.tok.pos, "expected %s, found %q", what, p.tok.String())
	}
	return p.advance()
}

func parse(src string) (node, error) {
	p := &parser{lex: &lexer{src: src}, src: src}
	if err := p.advance(); err != nil {
		return nil, err
	}
	n, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf(p.tok.pos, "unexpected %q after expression", p.tok.String())
	}
	return n, nil
}

func (p *parser) parseTernary() (node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	cond, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokQuestion {
		return cond, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	then, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokColon, "':'"); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &condNode{cond: cond, then: then, els: els}, nil
}

func (p *parser) parseOr() (node, error) {
	return p.parseBinaryLevel(
		p.parseAnd,
		tokOr,
	)
}

func (p *parser) parseAnd() (node, error) {
	return p.parseBinaryLevel(
		p.parseCompare,
		tokAnd,
	)
}

func (p *parser) parseBinaryLevel(sub func() (node, error), ops ...tokenKind) (node, error) {
	left, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.tok.kind == op {
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
		op := p.tok.kind
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := sub()
		if err != nil {
			return nil, err
		}
		left = &binaryNode{op: op, left: left, right: right}
	}
}

func (p *parser) parseCompare() (node, error) {
	left, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	switch p.tok.kind {
	case tokLT, tokLE, tokGT, tokGE, tokEQ, tokNE:
		op := p.tok.kind
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		return &binaryNode{op: op, left: left, right: right}, nil
	}
	return left, nil
}

func (p *parser) parseSum() (node, error) {
	return p.parseBinaryLevel(p.parseProduct, tokPlus, tokMinus)
}

func (p *parser) parseProduct() (node, error) {
	return p.parseBinaryLevel(p.parseUnary, tokStar, tokSlash, tokPercent)
}

func (p *parser) parseUnary() (node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch p.tok.kind {
	case tokMinus, tokNot:
		op := p.tok.kind
		if err := p.advance(); err != nil {
			return nil, err
		}
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Constant-fold negated literals so "-5" is a single node.
		if op == tokMinus {
			if num, ok := child.(numNode); ok {
				return numNode(-float64(num)), nil
			}
		}
		return &unaryNode{op: op, child: child}, nil
	}
	return p.parsePower()
}

func (p *parser) parsePower() (node, error) {
	base, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokCaret {
		return base, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	// Right associative: 2^3^2 == 2^(3^2).
	exp, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return &binaryNode{op: tokCaret, left: base, right: exp}, nil
}

func (p *parser) parseAtom() (node, error) {
	switch p.tok.kind {
	case tokNumber:
		n := numNode(p.tok.num)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return n, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil
	case tokIdent:
		name := p.tok.text
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			return varNode(name), nil
		}
		// Function call.
		if err := p.advance(); err != nil {
			return nil, err
		}
		var args []node
		if p.tok.kind != tokRParen {
			for {
				arg, err := p.parseTernary()
				if err != nil {
					return nil, err
				}
				args = append(args, arg)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		fn, ok := builtins[name]
		if !ok {
			return nil, p.errorf(pos, "unknown function %q", name)
		}
		if err := fn.checkArity(len(args)); err != "" {
			return nil, p.errorf(pos, "%s: %s", name, err)
		}
		return &callNode{name: name, fn: fn.impl, args: args}, nil
	}
	return nil, p.errorf(p.tok.pos, "expected value, found %q", p.tok.String())
}
