// Package expr implements the arithmetic expression language used by
// performance models in workload descriptions.
//
// Task costs in a workload file are not plain numbers: they are expressions
// over simulation-time variables such as num_nodes (the current allocation
// size of a malleable job), iteration, or user-defined job arguments. A
// typical compute model looks like
//
//	flops / num_nodes * (0.7 + 0.3/num_nodes)
//
// expressing a payload with a serial fraction. Expressions are compiled once
// when the workload is loaded and evaluated many times during simulation.
//
// Grammar (precedence climbing, loosest to tightest):
//
//	expr   := or
//	or     := and   ( '||' and )*
//	and    := cmp   ( '&&' cmp )*
//	cmp    := sum   ( ('<'|'<='|'>'|'>='|'=='|'!=') sum )?
//	sum    := prod  ( ('+'|'-') prod )*
//	prod   := unary ( ('*'|'/'|'%') unary )*
//	unary  := ('-'|'!') unary | power
//	power  := atom  ( '^' unary )?          // right associative
//	atom   := number | ident | ident '(' args ')' | '(' expr ')'
//
// Booleans are represented as 0 and 1, as in C.
package expr

import (
	"fmt"
	"strconv"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokIdent
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokCaret
	tokLParen
	tokRParen
	tokComma
	tokLT
	tokLE
	tokGT
	tokGE
	tokEQ
	tokNE
	tokAnd
	tokOr
	tokNot
	tokQuestion
	tokColon
)

type token struct {
	kind tokenKind
	pos  int
	num  float64
	text string
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of expression"
	case tokNumber:
		return strconv.FormatFloat(t.num, 'g', -1, 64)
	case tokIdent:
		return t.text
	default:
		return t.text
	}
}

// SyntaxError describes a lexing or parsing failure with its position.
type SyntaxError struct {
	Expr string // the full source expression
	Pos  int    // byte offset of the failure
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: %s at offset %d in %q", e.Msg, e.Pos, e.Expr)
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Expr: l.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c >= '0' && c <= '9' || c == '.':
		return l.lexNumber()
	case c == '_' || unicode.IsLetter(rune(c)):
		for l.pos < len(l.src) {
			r := rune(l.src[l.pos])
			if r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) {
				l.pos++
			} else {
				break
			}
		}
		return token{kind: tokIdent, pos: start, text: l.src[start:l.pos]}, nil
	}
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=":
		l.pos += 2
		return token{kind: tokLE, pos: start, text: two}, nil
	case ">=":
		l.pos += 2
		return token{kind: tokGE, pos: start, text: two}, nil
	case "==":
		l.pos += 2
		return token{kind: tokEQ, pos: start, text: two}, nil
	case "!=":
		l.pos += 2
		return token{kind: tokNE, pos: start, text: two}, nil
	case "&&":
		l.pos += 2
		return token{kind: tokAnd, pos: start, text: two}, nil
	case "||":
		l.pos += 2
		return token{kind: tokOr, pos: start, text: two}, nil
	}
	l.pos++
	one := string(c)
	switch c {
	case '+':
		return token{kind: tokPlus, pos: start, text: one}, nil
	case '-':
		return token{kind: tokMinus, pos: start, text: one}, nil
	case '*':
		return token{kind: tokStar, pos: start, text: one}, nil
	case '/':
		return token{kind: tokSlash, pos: start, text: one}, nil
	case '%':
		return token{kind: tokPercent, pos: start, text: one}, nil
	case '^':
		return token{kind: tokCaret, pos: start, text: one}, nil
	case '(':
		return token{kind: tokLParen, pos: start, text: one}, nil
	case ')':
		return token{kind: tokRParen, pos: start, text: one}, nil
	case ',':
		return token{kind: tokComma, pos: start, text: one}, nil
	case '<':
		return token{kind: tokLT, pos: start, text: one}, nil
	case '>':
		return token{kind: tokGT, pos: start, text: one}, nil
	case '!':
		return token{kind: tokNot, pos: start, text: one}, nil
	case '?':
		return token{kind: tokQuestion, pos: start, text: one}, nil
	case ':':
		return token{kind: tokColon, pos: start, text: one}, nil
	}
	return token{}, l.errorf(start, "unexpected character %q", c)
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	// Allow engineering suffixes common in workload files: k, M, G, T, P
	// (decimal) for flops and byte counts.
	mult := 1.0
	if l.pos < len(l.src) {
		if m, ok := suffixMultiplier(l.src[l.pos]); ok {
			// Only treat it as a suffix when not followed by more letters
			// (so "5m" parses but "5max" is a syntax error downstream).
			if l.pos+1 >= len(l.src) || !isIdentChar(l.src[l.pos+1]) {
				mult = m
				l.pos++
			}
		}
	}
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, l.errorf(start, "malformed number %q", text)
	}
	return token{kind: tokNumber, pos: start, num: v * mult}, nil
}

func suffixMultiplier(c byte) (float64, bool) {
	switch c {
	case 'k', 'K':
		return 1e3, true
	case 'M':
		return 1e6, true
	case 'G':
		return 1e9, true
	case 'T':
		return 1e12, true
	case 'P':
		return 1e15, true
	}
	return 0, false
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// tokenize is used by tests to inspect the token stream.
func tokenize(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.kind == tokEOF {
			return out, nil
		}
	}
}
