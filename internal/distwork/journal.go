package distwork

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// The journal is a JSONL log of task snapshots: every state transition
// appends the task's full record, so the last line per task id is its
// authoritative state. Recovery is a replay keeping the last record of
// each id; compaction rewrites the log with exactly one line per task.
//
// Full-record snapshots (rather than deltas) keep recovery trivial and
// make the journal greppable operational evidence: `grep t000017
// journal.jsonl` is the task's complete history.
//
// # Sharded layout
//
// With Options.Shards == 0 the journal is a single file at path — the
// legacy format, byte-identical to what earlier releases wrote, which
// is what keeps pre-existing daemon journals replaying unchanged.
//
// With Options.Shards == N >= 1 the journal is N files: shard 0 at
// path, shard k at path.s00k. Records are assigned to shards by an FNV
// hash of the task id, so one id's history lives entirely in one file
// and per-file "last record wins" replay stays correct. Every sharded
// file begins with a header line
//
//	{"journal_shards":N,"shard":K,"meta":"..."}
//
// that records the shard count (layout discovery on reopen), the file's
// own index (consistency check), and an optional caller fingerprint of
// the work set (Options.Meta — the sweep grid refuses to resume a
// journal whose meta names a different grid). The header cannot be
// confused with a record: no codec emits a "journal_shards" field.
//
// Reopening with a different shard count is allowed — replay reads the
// layout the files declare, and the compaction rewrite re-hashes every
// record into the newly requested layout (including migrating a legacy
// single-file journal into shards, or collapsing shards back into one
// file).
//
// # Group commit
//
// With Options.GroupCommit == 0 every append is written, flushed, and
// fsynced before the transition returns — the legacy behavior, durable
// against OS crashes at one fsync per settlement. With a window > 0,
// appends are written and flushed to the OS immediately (so a killed
// process still loses nothing) but fsync is batched: a background
// syncer flushes dirty shards every window, amortizing one fsync over
// every settlement that landed inside it. The crash window is the
// group-commit interval against power loss only; torn-tail tolerance
// covers a crash mid-append either way.

// A Codec encodes and decodes one journal record. The default JSONCodec
// marshals Task[P] directly; a consumer with a pre-existing journal
// format (internal/jobqueue) supplies its own so old files keep
// replaying and new lines keep the old shape.
type Codec[P any] interface {
	Encode(t *Task[P]) ([]byte, error)
	Decode(data []byte) (Task[P], error)
}

// JSONCodec is the default Codec: the Task's JSON form, one object per
// line.
type JSONCodec[P any] struct{}

// Encode marshals the task as JSON.
func (JSONCodec[P]) Encode(t *Task[P]) ([]byte, error) { return json.Marshal(t) }

// Decode unmarshals one JSON record.
func (JSONCodec[P]) Decode(data []byte) (Task[P], error) {
	var t Task[P]
	err := json.Unmarshal(data, &t)
	return t, err
}

// RecLoc addresses one record inside the journal: shard index, byte
// offset of the record's first byte, and record length (excluding the
// trailing newline). Terminal records' locations are handed to
// Options.OnSettled so a consumer can stream results back out of the
// compacted journal (ReadRecord) without keeping them resident.
type RecLoc struct {
	Shard int
	Off   int64
	Len   int
}

// shardHeader is the first line of every sharded journal file. Shards
// >= 1 distinguishes it from task records, which never carry the field.
type shardHeader struct {
	Shards int    `json:"journal_shards"`
	Shard  int    `json:"shard"`
	Meta   string `json:"meta,omitempty"`
}

// journalConfig is the layout a journal is (re)written with.
type journalConfig struct {
	path    string
	sharded bool // header + hash-sharded files; false = legacy single file
	nsh     int  // number of shard files (1 when legacy)
	meta    string
	group   time.Duration // group-commit window; 0 = fsync per append
}

// shardPath names shard k of a journal rooted at path. Shard 0 is path
// itself, so the legacy single-file layout and a 1-shard layout share
// the operator-visible name and `grep` habits keep working.
func shardPath(path string, k int) string {
	if k == 0 {
		return path
	}
	return fmt.Sprintf("%s.s%03d", path, k)
}

// shardIndex hashes a task id onto a shard (FNV-1a).
func shardIndex(id string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return int(h % uint32(n))
}

// jshard is one journal shard file opened for appends.
type jshard struct {
	f     *os.File
	w     *bufio.Writer
	size  int64 // bytes written (including header and buffered data)
	dirty bool  // has unfsynced data (group-commit mode)
}

type journal struct {
	mu     sync.Mutex
	cfg    journalConfig
	shards []*jshard
	err    error // first write error; subsequent appends are dropped

	fsync   *obs.Histogram // write+flush+fsync latency per append (or per group commit)
	errs    *obs.Counter   // journaled-write failures (latched once)
	appends *obs.Counter   // records appended across all shards
	commits *obs.Counter   // group-commit fsync rounds

	stop chan struct{} // closes the group-commit syncer
	done chan struct{} // syncer exited
}

// journalLayout is what detectLayout found on disk.
type journalLayout struct {
	exists  bool
	sharded bool
	nsh     int
	meta    string
}

// detectLayout inspects the journal rooted at path: absent (fresh),
// legacy single file, or sharded (the shard-0 header declares the
// layout). The on-disk layout — not the caller's requested one — drives
// replay; compaction then rewrites into the requested layout.
func detectLayout(path string) (journalLayout, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return journalLayout{}, nil
		}
		return journalLayout{}, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 4096)
	first, err := r.ReadString('\n')
	if err != nil && first == "" {
		return journalLayout{exists: true, nsh: 1}, nil // empty legacy file
	}
	if h, ok := parseShardHeader(first); ok {
		if h.Shard != 0 {
			return journalLayout{}, fmt.Errorf("distwork: journal %s header claims shard %d, want 0", path, h.Shard)
		}
		return journalLayout{exists: true, sharded: true, nsh: h.Shards, meta: h.Meta}, nil
	}
	return journalLayout{exists: true, nsh: 1}, nil
}

func parseShardHeader(line string) (shardHeader, bool) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, `{"journal_shards":`) {
		return shardHeader{}, false
	}
	var h shardHeader
	if err := json.Unmarshal([]byte(line), &h); err != nil || h.Shards < 1 {
		return shardHeader{}, false
	}
	return h, true
}

// replayLayout streams every record of the on-disk journal through fn
// in file order (shard by shard), with each record's location. The last
// call per task id carries its authoritative state, because a given id
// hashes to exactly one shard. A torn final line per file (crash
// mid-append) is tolerated; anything else is corruption worth
// surfacing.
func replayLayout[P any](path string, lay journalLayout, codec Codec[P], fn func(t Task[P], loc RecLoc) error) error {
	if !lay.exists {
		return nil
	}
	for k := 0; k < lay.nsh; k++ {
		fp := shardPath(path, k)
		f, err := os.Open(fp)
		if err != nil {
			if os.IsNotExist(err) && k > 0 {
				continue // shard never created (or lost with its records)
			}
			return err
		}
		err = replayShardFile(f, fp, k, lay, codec, fn)
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

func replayShardFile[P any](f *os.File, fp string, k int, lay journalLayout, codec Codec[P], fn func(t Task[P], loc RecLoc) error) error {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // payloads can be large
	line := 0
	var off int64
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		recOff, recLen := off, len(raw)
		off += int64(recLen) + 1
		text := strings.TrimSpace(string(raw))
		if text == "" {
			continue
		}
		if line == 1 && lay.sharded {
			h, ok := parseShardHeader(text)
			if !ok {
				return fmt.Errorf("distwork: journal shard %s: missing shard header", fp)
			}
			if h.Shards != lay.nsh || h.Shard != k {
				return fmt.Errorf("distwork: journal shard %s header (%d of %d) does not match layout (%d of %d)",
					fp, h.Shard, h.Shards, k, lay.nsh)
			}
			continue
		}
		t, err := codec.Decode([]byte(text))
		if err != nil {
			// A torn final line (crash mid-append) is expected; anything
			// else is corruption worth surfacing.
			if line == countLines(fp) {
				break
			}
			return fmt.Errorf("distwork: journal %s line %d: %w", fp, line, err)
		}
		if t.ID == "" || !t.State.Valid() {
			return fmt.Errorf("distwork: journal %s line %d: invalid record", fp, line)
		}
		if err := fn(t, RecLoc{Shard: k, Off: recOff, Len: recLen}); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("distwork: reading journal %s: %w", fp, err)
	}
	return nil
}

// replayJournal reconstructs the resident task set from the journal at
// path (missing file = empty store): the last record per id wins, tasks
// that were active when the writing process died are requeued as
// pending, and the highest id sequence number is returned so new ids
// never collide.
func replayJournal[P any](path string, lay journalLayout, codec Codec[P], idPrefix string) (map[string]*Task[P], uint64, error) {
	tasks := make(map[string]*Task[P])
	var maxSeq uint64
	err := replayLayout(path, lay, codec, func(t Task[P], _ RecLoc) error {
		cp := t
		tasks[t.ID] = &cp
		if seq, ok := parseSeq(t.ID, idPrefix); ok && seq > maxSeq {
			maxSeq = seq
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	// Requeue tasks the dead process still owned.
	for _, t := range tasks {
		if t.State.Active() {
			t.State = StatePending
			t.Worker = ""
			t.Lease = time.Time{}
			t.Note = "recovered after restart; requeued"
		}
	}
	return tasks, maxSeq, nil
}

// countLines counts newline-terminated plus trailing partial lines; used
// only to distinguish a torn final record from mid-file corruption.
func countLines(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return -1
	}
	n := strings.Count(string(data), "\n")
	if len(data) > 0 && !strings.HasSuffix(string(data), "\n") {
		n++
	}
	return n
}

func parseSeq(id, prefix string) (uint64, bool) {
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	n, err := strconv.ParseUint(id[len(prefix):], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// compactor writes a fresh journal layout record by record. Every shard
// is written to a temp file and renamed into place on finish, so a
// crash during compaction never loses the previous journal. add returns
// each record's final location, which is how the streaming open hands
// result offsets to Options.OnSettled without holding results resident.
type compactor struct {
	cfg   journalConfig
	files []*os.File
	ws    []*bufio.Writer
	sizes []int64
}

func newCompactor(cfg journalConfig) (*compactor, error) {
	c := &compactor{cfg: cfg}
	for k := 0; k < cfg.nsh; k++ {
		f, err := os.Create(shardPath(cfg.path, k) + ".tmp")
		if err != nil {
			c.abort()
			return nil, err
		}
		c.files = append(c.files, f)
		c.ws = append(c.ws, bufio.NewWriter(f))
		c.sizes = append(c.sizes, 0)
		if cfg.sharded {
			hdr, err := json.Marshal(shardHeader{Shards: cfg.nsh, Shard: k, Meta: cfg.meta})
			if err != nil {
				c.abort()
				return nil, err
			}
			if err := writeRecord(c.ws[k], hdr); err != nil {
				c.abort()
				return nil, err
			}
			c.sizes[k] = int64(len(hdr)) + 1
		}
	}
	return c, nil
}

func (c *compactor) add(id string, rec []byte) (RecLoc, error) {
	k := shardIndex(id, c.cfg.nsh)
	loc := RecLoc{Shard: k, Off: c.sizes[k], Len: len(rec)}
	if err := writeRecord(c.ws[k], rec); err != nil {
		return RecLoc{}, err
	}
	c.sizes[k] += int64(len(rec)) + 1
	return loc, nil
}

func (c *compactor) abort() {
	for k, f := range c.files {
		f.Close()
		os.Remove(shardPath(c.cfg.path, k) + ".tmp")
	}
	c.files = nil
}

// finish flushes, syncs, and renames every shard into place, removes
// stale shard files a previous (wider) layout left behind, and returns
// the journal reopened for appends.
func (c *compactor) finish() (*journal, error) {
	for k := range c.files {
		if err := c.ws[k].Flush(); err != nil {
			c.abort()
			return nil, err
		}
		if err := c.files[k].Sync(); err != nil {
			c.abort()
			return nil, err
		}
		if err := c.files[k].Close(); err != nil {
			c.files[k] = nil
			c.abort()
			return nil, err
		}
	}
	for k := range c.files {
		if err := os.Rename(shardPath(c.cfg.path, k)+".tmp", shardPath(c.cfg.path, k)); err != nil {
			return nil, err
		}
	}
	// A narrower layout than before leaves higher-numbered shard files
	// orphaned; shard names are contiguous, so remove until the first gap.
	for k := c.cfg.nsh; ; k++ {
		if k == 0 {
			k = 1
		}
		if err := os.Remove(shardPath(c.cfg.path, k)); err != nil {
			break
		}
	}
	jr := &journal{cfg: c.cfg}
	for k := 0; k < c.cfg.nsh; k++ {
		// O_RDWR so ReadRecord can pread settled results back out of the
		// shard the appender still holds open.
		f, err := os.OpenFile(shardPath(c.cfg.path, k), os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			jr.closeFiles()
			return nil, err
		}
		jr.shards = append(jr.shards, &jshard{f: f, w: bufio.NewWriter(f), size: c.sizes[k]})
	}
	return jr, nil
}

// newJournal creates (or compacts) the journal rooted at cfg.path,
// writing one snapshot line per existing task, and returns it ready for
// appends.
func newJournal(cfg journalConfig, ids []string, records [][]byte) (*journal, error) {
	c, err := newCompactor(cfg)
	if err != nil {
		return nil, err
	}
	for i, rec := range records {
		if _, err := c.add(ids[i], rec); err != nil {
			c.abort()
			return nil, err
		}
	}
	return c.finish()
}

func writeRecord(w *bufio.Writer, rec []byte) error {
	if _, err := w.Write(rec); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// start launches the group-commit syncer (no-op without a window).
// Called by Open after the metrics instruments are attached.
func (jr *journal) start() {
	if jr.cfg.group <= 0 || jr.stop != nil {
		return
	}
	jr.stop = make(chan struct{})
	jr.done = make(chan struct{})
	go jr.commitLoop()
}

func (jr *journal) commitLoop() {
	defer close(jr.done)
	tick := time.NewTicker(jr.cfg.group)
	defer tick.Stop()
	for {
		select {
		case <-jr.stop:
			return
		case <-tick.C:
			jr.commit()
		}
	}
}

// commit fsyncs every shard that took appends since the last round: one
// group commit. The write lock is held only to collect dirty files —
// fsync runs outside it, so appends keep landing while the disk syncs.
func (jr *journal) commit() {
	jr.mu.Lock()
	var files []*os.File
	if jr.err == nil {
		for _, sh := range jr.shards {
			if sh.dirty {
				sh.dirty = false
				files = append(files, sh.f)
			}
		}
	}
	jr.mu.Unlock()
	if len(files) == 0 {
		return
	}
	start := time.Now()
	for _, f := range files {
		if err := f.Sync(); err != nil {
			jr.fail(err)
			return
		}
	}
	jr.fsync.Observe(time.Since(start).Seconds())
	jr.commits.Inc()
}

// fail latches err as the journal's write error (encoding failures reach
// here): subsequent appends are dropped and the error surfaces on close.
func (jr *journal) fail(err error) {
	jr.mu.Lock()
	defer jr.mu.Unlock()
	jr.latch(err)
}

// latch records the first write error and counts it. Callers hold jr.mu.
func (jr *journal) latch(err error) {
	if err == nil || jr.err != nil {
		return
	}
	jr.err = err
	jr.errs.Inc()
}

// append journals one encoded record and returns its location. Without
// a group-commit window the record is flushed and fsynced before
// returning (transitions are rare relative to events, and durability is
// the point of the journal); with one, the record is flushed to the OS
// — surviving a process kill — and the background syncer batches the
// fsync.
func (jr *journal) append(id string, rec []byte) (RecLoc, bool) {
	jr.mu.Lock()
	defer jr.mu.Unlock()
	if jr.err != nil {
		return RecLoc{}, false
	}
	k := shardIndex(id, len(jr.shards))
	sh := jr.shards[k]
	loc := RecLoc{Shard: k, Off: sh.size, Len: len(rec)}
	var start time.Time
	grouped := jr.cfg.group > 0
	if !grouped && jr.fsync != nil {
		start = time.Now()
	}
	if err := writeRecord(sh.w, rec); err != nil {
		jr.latch(err)
		return RecLoc{}, false
	}
	sh.size += int64(len(rec)) + 1
	if err := sh.w.Flush(); err != nil {
		jr.latch(err)
		return RecLoc{}, false
	}
	if grouped {
		sh.dirty = true
	} else {
		if err := sh.f.Sync(); err != nil {
			jr.latch(err)
			return RecLoc{}, false
		}
		if jr.fsync != nil {
			jr.fsync.Observe(time.Since(start).Seconds())
		}
	}
	jr.appends.Inc()
	return loc, true
}

// readRecord reads the record at loc back out of the journal. The
// target shard's buffer is flushed first so a just-appended record is
// readable; the pread itself runs outside the lock.
func (jr *journal) readRecord(loc RecLoc) ([]byte, error) {
	jr.mu.Lock()
	if loc.Shard < 0 || loc.Shard >= len(jr.shards) {
		jr.mu.Unlock()
		return nil, fmt.Errorf("distwork: record shard %d out of range", loc.Shard)
	}
	sh := jr.shards[loc.Shard]
	if err := sh.w.Flush(); err != nil {
		jr.latch(err)
		jr.mu.Unlock()
		return nil, err
	}
	f := sh.f
	jr.mu.Unlock()
	buf := make([]byte, loc.Len)
	if _, err := f.ReadAt(buf, loc.Off); err != nil {
		return nil, fmt.Errorf("distwork: reading journal record at shard %d offset %d: %w", loc.Shard, loc.Off, err)
	}
	return buf, nil
}

func (jr *journal) closeFiles() {
	for _, sh := range jr.shards {
		if sh.f != nil {
			sh.f.Close()
			sh.f = nil
		}
	}
}

func (jr *journal) close() error {
	if jr.stop != nil {
		close(jr.stop)
		<-jr.done
		jr.stop = nil
	}
	jr.mu.Lock()
	defer jr.mu.Unlock()
	err := jr.err
	for _, sh := range jr.shards {
		if sh.f == nil {
			continue
		}
		if ferr := sh.w.Flush(); ferr != nil {
			jr.latch(ferr)
			if err == nil {
				err = ferr
			}
		}
		if serr := sh.f.Sync(); serr != nil {
			jr.latch(serr)
			if err == nil {
				err = serr
			}
		}
		if cerr := sh.f.Close(); cerr != nil {
			jr.latch(cerr)
			if err == nil {
				err = cerr
			}
		}
		sh.f = nil
	}
	return err
}
