package distwork

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// The journal is a JSONL file of task snapshots: every state transition
// appends the task's full record, so the last line per task id is its
// authoritative state. Recovery is a replay keeping the last record of
// each id; compaction rewrites the file with exactly one line per task.
//
// Full-record snapshots (rather than deltas) keep recovery trivial and
// make the journal greppable operational evidence: `grep t000017
// journal.jsonl` is the task's complete history.

// A Codec encodes and decodes one journal record. The default JSONCodec
// marshals Task[P] directly; a consumer with a pre-existing journal
// format (internal/jobqueue) supplies its own so old files keep
// replaying and new lines keep the old shape.
type Codec[P any] interface {
	Encode(t *Task[P]) ([]byte, error)
	Decode(data []byte) (Task[P], error)
}

// JSONCodec is the default Codec: the Task's JSON form, one object per
// line.
type JSONCodec[P any] struct{}

// Encode marshals the task as JSON.
func (JSONCodec[P]) Encode(t *Task[P]) ([]byte, error) { return json.Marshal(t) }

// Decode unmarshals one JSON record.
func (JSONCodec[P]) Decode(data []byte) (Task[P], error) {
	var t Task[P]
	err := json.Unmarshal(data, &t)
	return t, err
}

type journal struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	err   error          // first write error; subsequent appends are dropped
	fsync *obs.Histogram // per-append write+flush+fsync latency (nil = detached)
	errs  *obs.Counter   // journaled-write failures (latched once; nil = detached)
}

// replayJournal reads the journal at path (missing file = empty store)
// and reconstructs the task set: the last record per id wins, tasks that
// were active when the writing process died are requeued as pending, and
// the highest id sequence number is returned so new ids never collide.
func replayJournal[P any](path string, codec Codec[P], idPrefix string) (map[string]*Task[P], uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()
	tasks := make(map[string]*Task[P])
	var maxSeq uint64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // payloads can be large
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		t, err := codec.Decode([]byte(text))
		if err != nil {
			// A torn final line (crash mid-append) is expected; anything
			// else is corruption worth surfacing.
			if line == countLines(path) {
				break
			}
			return nil, 0, fmt.Errorf("distwork: journal %s line %d: %w", path, line, err)
		}
		if t.ID == "" || !t.State.Valid() {
			return nil, 0, fmt.Errorf("distwork: journal %s line %d: invalid record", path, line)
		}
		cp := t
		tasks[t.ID] = &cp
		if seq, ok := parseSeq(t.ID, idPrefix); ok && seq > maxSeq {
			maxSeq = seq
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("distwork: reading journal %s: %w", path, err)
	}
	// Requeue tasks the dead process still owned.
	for _, t := range tasks {
		if t.State.Active() {
			t.State = StatePending
			t.Worker = ""
			t.Lease = time.Time{}
			t.Note = "recovered after restart; requeued"
		}
	}
	return tasks, maxSeq, nil
}

// countLines counts newline-terminated plus trailing partial lines; used
// only to distinguish a torn final record from mid-file corruption.
func countLines(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return -1
	}
	n := strings.Count(string(data), "\n")
	if len(data) > 0 && !strings.HasSuffix(string(data), "\n") {
		n++
	}
	return n
}

func parseSeq(id, prefix string) (uint64, bool) {
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	n, err := strconv.ParseUint(id[len(prefix):], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// newJournal creates (or compacts) the journal at path, writing one
// snapshot line per existing task, and returns it ready for appends. The
// compacted file is written to a temp file and renamed into place, so a
// crash during compaction never loses the previous journal.
func newJournal(path string, records [][]byte) (*journal, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(f)
	for _, rec := range records {
		if err := writeRecord(w, rec); err != nil {
			f.Close()
			os.Remove(tmp)
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: af, w: bufio.NewWriter(af)}, nil
}

func writeRecord(w *bufio.Writer, rec []byte) error {
	if _, err := w.Write(rec); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// fail latches err as the journal's write error (encoding failures reach
// here): subsequent appends are dropped and the error surfaces on close.
func (jr *journal) fail(err error) {
	jr.mu.Lock()
	defer jr.mu.Unlock()
	jr.latch(err)
}

// latch records the first write error and counts it. Callers hold jr.mu.
func (jr *journal) latch(err error) {
	if err == nil || jr.err != nil {
		return
	}
	jr.err = err
	jr.errs.Inc()
}

// append journals one encoded record. Appends are flushed and synced per
// transition: transitions are rare (per task lifecycle, not per event)
// and durability is the point of the journal.
func (jr *journal) append(rec []byte) {
	jr.mu.Lock()
	defer jr.mu.Unlock()
	if jr.err != nil {
		return
	}
	var start time.Time
	if jr.fsync != nil {
		start = time.Now()
	}
	if err := writeRecord(jr.w, rec); err != nil {
		jr.latch(err)
		return
	}
	if err := jr.w.Flush(); err != nil {
		jr.latch(err)
		return
	}
	jr.latch(jr.f.Sync())
	if jr.fsync != nil {
		jr.fsync.Observe(time.Since(start).Seconds())
	}
}

func (jr *journal) close() error {
	jr.mu.Lock()
	defer jr.mu.Unlock()
	err := jr.err
	if ferr := jr.w.Flush(); ferr != nil {
		jr.latch(ferr)
		if err == nil {
			err = ferr
		}
	}
	if serr := jr.f.Sync(); serr != nil {
		jr.latch(serr)
		if err == nil {
			err = serr
		}
	}
	if cerr := jr.f.Close(); cerr != nil {
		jr.latch(cerr)
		if err == nil {
			err = cerr
		}
	}
	jr.f = nil
	return err
}
