package distwork

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkClaimFinish measures the core claim throughput the
// coordinator serves under: one submit+claim+finish cycle per op against
// a memory store that retains every terminal task (as a long-lived
// coordinator does). The pending min-heap and active-set bookkeeping
// keep the cycle O(log n) in pending tasks and independent of the
// accumulated terminal population; pinned by cmd/benchguard against
// BENCH_3.json.
func BenchmarkClaimFinish(b *testing.B) {
	s := New(Options[int]{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.Submit(i)
		if err != nil {
			b.Fatal(err)
		}
		c, ok := s.TryClaim("bench-worker")
		if !ok {
			b.Fatal("claim failed")
		}
		if err := s.Finish(c.ID, "bench-worker", "", nil); err != nil {
			b.Fatal(err)
		}
		_ = t
	}
}

// BenchmarkClaimContended measures claim throughput with 8 workers
// hammering TryClaim against a deep pending backlog.
func BenchmarkClaimContended(b *testing.B) {
	s := New(Options[int]{})
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(i); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var w int
	b.RunParallel(func(pb *testing.PB) {
		w++
		name := fmt.Sprintf("w%d", w)
		for pb.Next() {
			c, ok := s.TryClaim(name)
			if !ok {
				continue
			}
			_ = s.Finish(c.ID, name, "", nil)
		}
	})
}

// BenchmarkBatchClaimFinish measures the amortized settlement cycle the
// batch protocol exists for: claim 64 source-fed tasks in one locked
// pass, finish them in one locked pass, against an evicting journaled
// store with group commit — the coordinator configuration for
// million-cell sweeps. Reported per task, not per batch; pinned by
// cmd/benchguard against BENCH_4.json.
func BenchmarkBatchClaimFinish(b *testing.B) {
	const batch = 64
	dir := b.TempDir()
	s, err := Open(dir+"/journal.jsonl", Options[int]{
		Shards:      4,
		GroupCommit: 2 * time.Millisecond,
		Source:      func(seq uint64) (int, bool) { return int(seq), true },
		Evict:       true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	items := make([]FinishItem, 0, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		want := batch
		if rem := b.N - n; rem < want {
			want = rem
		}
		tasks := s.TryClaimBatch("bench-worker", want)
		if len(tasks) != want {
			b.Fatalf("claimed %d, want %d", len(tasks), want)
		}
		items = items[:0]
		for _, t := range tasks {
			items = append(items, FinishItem{ID: t.ID, Result: "r"})
		}
		for i, err := range s.FinishBatch("bench-worker", items) {
			if err != nil {
				b.Fatalf("finish %d: %v", i, err)
			}
		}
		n += want
	}
}

// BenchmarkSingleClaimFinishJournaled is the unbatched baseline for
// BenchmarkBatchClaimFinish on the identical store configuration: one
// lock round trip and one journal interaction per transition instead of
// per batch.
func BenchmarkSingleClaimFinishJournaled(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir+"/journal.jsonl", Options[int]{
		Shards:      4,
		GroupCommit: 2 * time.Millisecond,
		Source:      func(seq uint64) (int, bool) { return int(seq), true },
		Evict:       true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, ok := s.TryClaim("bench-worker")
		if !ok {
			b.Fatal("claim failed")
		}
		if err := s.Finish(c.ID, "bench-worker", "r", nil); err != nil {
			b.Fatal(err)
		}
	}
}
