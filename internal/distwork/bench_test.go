package distwork

import (
	"fmt"
	"testing"
)

// BenchmarkClaimFinish measures the core claim throughput the
// coordinator serves under: one submit+claim+finish cycle per op against
// a memory store that retains every terminal task (as a long-lived
// coordinator does). The pending min-heap and active-set bookkeeping
// keep the cycle O(log n) in pending tasks and independent of the
// accumulated terminal population; pinned by cmd/benchguard against
// BENCH_3.json.
func BenchmarkClaimFinish(b *testing.B) {
	s := New(Options[int]{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.Submit(i)
		if err != nil {
			b.Fatal(err)
		}
		c, ok := s.TryClaim("bench-worker")
		if !ok {
			b.Fatal("claim failed")
		}
		if err := s.Finish(c.ID, "bench-worker", "", nil); err != nil {
			b.Fatal(err)
		}
		_ = t
	}
}

// BenchmarkClaimContended measures claim throughput with 8 workers
// hammering TryClaim against a deep pending backlog.
func BenchmarkClaimContended(b *testing.B) {
	s := New(Options[int]{})
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(i); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var w int
	b.RunParallel(func(pb *testing.PB) {
		w++
		name := fmt.Sprintf("w%d", w)
		for pb.Next() {
			c, ok := s.TryClaim(name)
			if !ok {
				continue
			}
			_ = s.Finish(c.ID, name, "", nil)
		}
	})
}
