// Package distwork is the repository's work-distribution core: a
// payload-generic task store with lease+heartbeat claiming, a journaled
// (JSONL) lifecycle with compaction and torn-tail tolerance, and a
// fixed-size worker pool. It is the one machinery under both execution
// engines in the repo — the elastisimd job queue (internal/jobqueue is a
// thin json.RawMessage specialization with a legacy journal codec) and
// the distributed, resumable sweep grids of internal/experiments.
//
// The lifecycle is a small state machine:
//
//	pending ──claim──▶ claimed ──start──▶ running ◀─pause/resume─▶ paused
//	   ▲                  │                  │                        │
//	   └──lease expiry / release────────────┴───────┐                │
//	                                                 ▼                ▼
//	                                      done / failed / cancelled (terminal)
//
// Claims carry a lease: a worker that stops heartbeating (crashed, hung,
// killed) loses the task, which returns to pending for another worker —
// that re-claim is a *steal*, the mechanism behind both daemon crash
// recovery and straggler work-stealing in distributed sweeps. Every
// transition is journaled; Open replays the journal, requeues tasks that
// were mid-flight when the previous process died, keeps terminal tasks
// (and their result pointers) without re-running them, and compacts the
// file to one line per task.
package distwork

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// State is a task's lifecycle state.
type State string

// The task states. Pending tasks are claimable; claimed/running/paused
// tasks belong to a worker under a lease; done/failed/cancelled are
// terminal.
const (
	StatePending   State = "pending"
	StateClaimed   State = "claimed"
	StateRunning   State = "running"
	StatePaused    State = "paused"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// States lists every lifecycle state, in lifecycle order. Exported for
// consumers that enumerate per-state series (the /metrics exposition).
var States = []State{
	StatePending, StateClaimed, StateRunning, StatePaused,
	StateDone, StateFailed, StateCancelled,
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Active reports whether a worker currently owns the task.
func (s State) Active() bool {
	return s == StateClaimed || s == StateRunning || s == StatePaused
}

// Valid reports whether s is one of the defined states.
func (s State) Valid() bool {
	switch s {
	case StatePending, StateClaimed, StateRunning, StatePaused,
		StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Sentinel errors for ownership failures, so transports (the HTTP lease
// API) can map them to status codes without string matching.
var (
	// ErrNotFound reports an unknown task id.
	ErrNotFound = errors.New("distwork: no such task")
	// ErrNotOwner reports a transition attempted by a worker that does not
	// hold the task's claim (stale lease, already settled, never claimed).
	ErrNotOwner = errors.New("distwork: task not owned by worker")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("distwork: store is closed")
)

// NotFoundError is the concrete ErrNotFound: it carries the id so
// specializations can rephrase the message in their own vocabulary.
type NotFoundError struct{ ID string }

func (e *NotFoundError) Error() string { return fmt.Sprintf("distwork: no task %s", e.ID) }

// Unwrap makes errors.Is(err, ErrNotFound) true.
func (e *NotFoundError) Unwrap() error { return ErrNotFound }

// NotOwnerError is the concrete ErrNotOwner: the task's actual state and
// holder, plus the worker whose claim was rejected.
type NotOwnerError struct {
	ID       string
	State    State
	Worker   string // current holder ("" if unowned)
	Claimant string // the rejected worker
}

func (e *NotOwnerError) Error() string {
	return fmt.Sprintf("distwork: task %s is %s (worker %q), not owned by %q",
		e.ID, e.State, e.Worker, e.Claimant)
}

// Unwrap makes errors.Is(err, ErrNotOwner) true.
func (e *NotOwnerError) Unwrap() error { return ErrNotOwner }

// Task is one unit of work: a typed payload plus lifecycle bookkeeping.
// Methods on Store return copies; mutate only through the Store.
type Task[P any] struct {
	// ID is assigned by Submit (Options.IDPrefix + dense sequence number,
	// e.g. "t000001").
	ID string `json:"id"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Payload is the work description (for elastisimd, a combined
	// simulation document; for sweep grids, a cell spec).
	Payload P `json:"payload,omitempty"`
	// Submitted/Started/Finished are wall-clock transition times; Started
	// and Finished are zero until the transition happened.
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
	// Worker names the claim holder while the task is active.
	Worker string `json:"worker,omitempty"`
	// Lease is when the current claim expires unless renewed by
	// Heartbeat. Expired claims are requeued.
	Lease time.Time `json:"lease,omitempty"`
	// Attempts counts claims, including requeues after lost leases.
	Attempts int `json:"attempts,omitempty"`
	// Error holds the failure message for failed tasks.
	Error string `json:"error,omitempty"`
	// Result is an opaque pointer to the task's outcome (an artifact
	// directory, an encoded result document), set by Finish.
	Result string `json:"result,omitempty"`
	// Note carries auxiliary lifecycle information, e.g. partial-progress
	// details journaled when a shutdown interrupted the task.
	Note string `json:"note,omitempty"`
}

// Options tunes a Store.
type Options[P any] struct {
	// Lease is how long a claim stays valid without a heartbeat
	// (default 30s).
	Lease time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
	// Metrics, when set, receives the store's operational series: tasks by
	// state (callback gauges over the live store), submission/claim/steal/
	// lease counters, and journal fsync latency, compactions, and write
	// errors. Flight, when set, records every journaled state transition
	// into the crash flight recorder. Both nil (the default) detach
	// observability at zero cost.
	Metrics *obs.Registry
	Flight  *obs.FlightRecorder
	// MetricPrefix and Noun shape the series names: "<prefix>_<noun>s",
	// "<prefix>_<noun>_claims_total", ... The jobqueue specialization uses
	// ("elastisimd", "job") to keep its historical names; defaults are
	// ("distwork", "task").
	MetricPrefix string
	Noun         string
	// FlightTopic is the flight-recorder category for journaled
	// transitions (default: MetricPrefix).
	FlightTopic string
	// IDPrefix prefixes generated task ids (default "t").
	IDPrefix string
	// Codec encodes journal records (default: JSON of Task[P]). The
	// jobqueue specialization plugs in its legacy record shape here so
	// pre-existing daemon journals replay byte-compatibly.
	Codec Codec[P]
	// Shards splits the journal into N hash-sharded files (shard 0 at
	// path, shard k at path.s00k, each with a layout header line). 0
	// keeps the legacy single-file format byte-identical. Reopening with
	// a different count re-shards during the compaction rewrite.
	Shards int
	// GroupCommit batches journal fsyncs: appends are flushed to the OS
	// per transition (a killed process loses nothing) but fsynced once
	// per window by a background syncer, amortizing the dominant
	// per-settlement cost. 0 fsyncs every append (legacy).
	GroupCommit time.Duration
	// Meta is an opaque fingerprint of the work set stored in sharded
	// journal headers. Open refuses a journal whose stored meta differs —
	// the guard that keeps a resumed sweep from silently continuing a
	// different grid.
	Meta string
	// Source, when set, feeds the task sequence lazily instead of
	// explicit Submits (which are then rejected): the store asks for the
	// payload of sequence number seq (1-based) on demand, and ok=false
	// ends the set. Pending source-fed tasks are reproducible from
	// (Source, seq) and so are not journaled — a task's first journal
	// record is its first claim — which is what makes a million-task
	// journal O(progress), not O(tasks). Claims hand out tasks in
	// sequence order, so after a crash everything past the highest
	// journaled sequence is simply re-fed.
	Source func(seq uint64) (P, bool)
	// Evict drops terminal tasks from memory once journaled (requires
	// Open): the journal record — whose location is handed to OnSettled —
	// becomes the only copy of the result, readable via ReadRecord.
	// Evicted ids keep exactly-once semantics through a settled-sequence
	// bitmap: a stale worker's finish gets ErrNotOwner, not ErrNotFound.
	Evict bool
	// OnSettled, when set with Evict, is called (under the store lock —
	// do not call back into the store) for every task that reaches a
	// terminal state, live or during replay, with the journal location
	// of its authoritative record.
	OnSettled func(seq uint64, st State, loc RecLoc)
}

func (o Options[P]) withDefaults() Options[P] {
	if o.Lease <= 0 {
		o.Lease = 30 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.MetricPrefix == "" {
		o.MetricPrefix = "distwork"
	}
	if o.Noun == "" {
		o.Noun = "task"
	}
	if o.FlightTopic == "" {
		o.FlightTopic = o.MetricPrefix
	}
	if o.IDPrefix == "" {
		o.IDPrefix = "t"
	}
	if o.Codec == nil {
		o.Codec = JSONCodec[P]{}
	}
	return o
}

// pendEntry is one claimable task in the pending heap, keyed by its
// arrival order so claims always pick the oldest pending task — exactly
// the semantics of a linear submission-order scan, at O(log n) per claim.
// Entries are lazily invalidated: a task that left pending (claimed,
// cancelled) is skipped when popped, and a requeued task is re-pushed
// with its original key so it does not lose its place in line.
type pendEntry struct {
	key uint64
	id  string
}

type pendHeap []pendEntry

func (h pendHeap) Len() int           { return len(h) }
func (h pendHeap) Less(i, j int) bool { return h[i].key < h[j].key }
func (h pendHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pendHeap) Push(x any)        { *h = append(*h, x.(pendEntry)) }
func (h *pendHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h pendHeap) peek() pendEntry    { return h[0] }

// Store is an in-memory task store with optional journal persistence. All
// methods are safe for concurrent use; hundreds of submitters and a
// worker pool can share one Store.
type Store[P any] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tasks   map[string]*Task[P]
	order   []string            // submission order (not kept in source/evict mode)
	okey    map[string]uint64   // id → arrival-order key (claim priority)
	active  map[string]struct{} // tasks currently under a lease
	pending pendHeap            // claimable tasks, oldest first
	nextKey uint64
	seq     uint64 // highest sequence number assigned (or fed from Source)
	journal *journal
	opts    Options[P]
	closed  bool
	m       storeMetrics

	prevMeta   string // meta found in the journal before this open
	sourceDone bool   // Source returned ok=false; the work set is complete
	// settledSeqs is the evicted-terminal bitmap (bit seq-1): the
	// exactly-once memory of tasks whose records now live only in the
	// journal.
	settledSeqs []uint64
	evicted     map[State]uint64 // evicted terminal tasks by final state
}

// New creates a memory-only store (no journal).
func New[P any](opts Options[P]) *Store[P] {
	s := &Store[P]{
		tasks:   make(map[string]*Task[P]),
		okey:    make(map[string]uint64),
		active:  make(map[string]struct{}),
		evicted: make(map[State]uint64),
		opts:    opts.withDefaults(),
	}
	s.opts.Evict = false // eviction needs a journal to hold the results
	s.cond = sync.NewCond(&s.mu)
	s.m = newStoreMetrics(s, s.opts)
	return s
}

// Open creates a store journaled at path, replaying any existing journal
// first: terminal tasks are kept (with their result pointers) and are
// never re-run; tasks that were claimed, running, or paused when the
// previous process died return to pending. The journal is compacted on
// open (counted by the <prefix>_journal_compactions_total metric) into
// the layout opts requests — Shards=0 keeps the legacy single file;
// otherwise the rewrite hash-shards (or re-shards) the records.
//
// With Options.Evict the replay itself streams: terminal tasks are
// never materialized — their compacted records' locations go to
// OnSettled and their sequence numbers into the settled bitmap — so
// open memory is O(non-terminal tasks + one location per settled task),
// not O(tasks).
func Open[P any](path string, opts Options[P]) (*Store[P], error) {
	s := New(opts)
	s.opts.Evict = opts.Evict // New strips it; with a journal it is legal
	lay, err := detectLayout(path)
	if err != nil {
		return nil, err
	}
	if lay.meta != "" && s.opts.Meta != "" && lay.meta != s.opts.Meta {
		return nil, fmt.Errorf("distwork: journal %s was written for a different work set", path)
	}
	s.prevMeta = lay.meta
	meta := s.opts.Meta
	if meta == "" {
		meta = lay.meta // carry an existing fingerprint forward
	}
	cfg := journalConfig{
		path:    path,
		sharded: s.opts.Shards > 0,
		nsh:     s.opts.Shards,
		meta:    meta,
		group:   s.opts.GroupCommit,
	}
	if cfg.nsh < 1 {
		cfg.nsh = 1
	}
	var jr *journal
	if s.opts.Evict {
		jr, err = s.replayStreaming(path, lay, cfg)
	} else {
		jr, err = s.replayResident(path, lay, cfg)
	}
	if err != nil {
		return nil, err
	}
	jr.fsync = s.m.fsync
	jr.errs = s.m.journalErrors
	jr.appends = s.m.journalAppends
	jr.commits = s.m.groupCommits
	jr.start()
	s.journal = jr
	s.m.compactions.Inc()
	return s, nil
}

// replayResident is the classic open: every journaled task is rebuilt
// in memory, then the journal is compacted to one record per task.
func (s *Store[P]) replayResident(path string, lay journalLayout, cfg journalConfig) (*journal, error) {
	tasks, maxSeq, err := replayJournal(path, lay, s.opts.Codec, s.opts.IDPrefix)
	if err != nil {
		return nil, err
	}
	for _, t := range tasks {
		s.tasks[t.ID] = t
		s.order = append(s.order, t.ID)
	}
	sort.Slice(s.order, func(i, k int) bool {
		return s.tasks[s.order[i]].Submitted.Before(s.tasks[s.order[k]].Submitted) ||
			(s.tasks[s.order[i]].Submitted.Equal(s.tasks[s.order[k]].Submitted) &&
				s.order[i] < s.order[k])
	})
	for _, id := range s.order {
		s.okey[id] = s.nextKey
		s.nextKey++
		if s.tasks[id].State == StatePending {
			heap.Push(&s.pending, pendEntry{s.okey[id], id})
		}
	}
	s.seq = maxSeq
	ids := make([]string, 0, len(s.order))
	records := make([][]byte, 0, len(s.order))
	for _, id := range s.order {
		rec, err := s.opts.Codec.Encode(s.tasks[id])
		if err != nil {
			return nil, fmt.Errorf("distwork: encoding journal record for %s: %w", id, err)
		}
		ids = append(ids, id)
		records = append(records, rec)
	}
	return newJournal(cfg, ids, records)
}

// replayStreaming is the evicting open: one pass indexes the last
// record per sequence number (decoded tasks are retained only while
// non-terminal), a second pass streams the authoritative bytes of
// terminal records from the old files into the compacted layout —
// terminal results never live on the heap.
func (s *Store[P]) replayStreaming(path string, lay journalLayout, cfg journalConfig) (*journal, error) {
	type rmeta struct {
		loc      RecLoc
		state    State
		terminal bool
	}
	var metas []rmeta // indexed seq-1; zero-length loc = never journaled
	resident := make(map[uint64]*Task[P])
	var maxSeq uint64
	err := replayLayout(path, lay, s.opts.Codec, func(t Task[P], loc RecLoc) error {
		seq, ok := parseSeq(t.ID, s.opts.IDPrefix)
		if !ok || seq == 0 {
			return fmt.Errorf("distwork: journal %s: id %q has no sequence number; streaming replay requires dense ids", path, t.ID)
		}
		for uint64(len(metas)) < seq {
			metas = append(metas, rmeta{})
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		metas[seq-1] = rmeta{loc: loc, state: t.State, terminal: t.State.Terminal()}
		if t.State.Terminal() {
			delete(resident, seq)
		} else {
			cp := t
			resident[seq] = &cp
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Stream the compaction: fresh records for resident (requeued)
	// tasks, verbatim bytes for terminal ones.
	comp, err := newCompactor(cfg)
	if err != nil {
		return nil, err
	}
	readers := make([]*os.File, lay.nsh)
	defer func() {
		for _, f := range readers {
			if f != nil {
				f.Close()
			}
		}
	}()
	type settledCB struct {
		seq uint64
		st  State
		loc RecLoc
	}
	var settled []settledCB
	for seq := uint64(1); seq <= maxSeq; seq++ {
		m := metas[seq-1]
		if m.loc.Len == 0 && m.state == "" {
			comp.abort()
			return nil, fmt.Errorf("distwork: journal %s: no record for sequence %d (hole)", path, seq)
		}
		id := fmt.Sprintf("%s%06d", s.opts.IDPrefix, seq)
		if t, ok := resident[seq]; ok {
			if t.State.Active() {
				t.State = StatePending
				t.Worker = ""
				t.Lease = time.Time{}
				t.Note = "recovered after restart; requeued"
			}
			rec, err := s.opts.Codec.Encode(t)
			if err != nil {
				comp.abort()
				return nil, fmt.Errorf("distwork: encoding journal record for %s: %w", id, err)
			}
			if _, err := comp.add(id, rec); err != nil {
				comp.abort()
				return nil, err
			}
			continue
		}
		if readers[m.loc.Shard] == nil {
			f, err := os.Open(shardPath(path, m.loc.Shard))
			if err != nil {
				comp.abort()
				return nil, err
			}
			readers[m.loc.Shard] = f
		}
		raw := make([]byte, m.loc.Len)
		if _, err := readers[m.loc.Shard].ReadAt(raw, m.loc.Off); err != nil {
			comp.abort()
			return nil, fmt.Errorf("distwork: re-reading journal record for %s: %w", id, err)
		}
		loc, err := comp.add(id, raw)
		if err != nil {
			comp.abort()
			return nil, err
		}
		s.setSettledBit(seq)
		s.evicted[m.state]++
		settled = append(settled, settledCB{seq: seq, st: m.state, loc: loc})
	}
	jr, err := comp.finish()
	if err != nil {
		return nil, err
	}
	// Rebuild the resident (non-terminal) set in sequence order, which
	// is arrival order for source-fed stores.
	seqs := make([]uint64, 0, len(resident))
	for seq := range resident {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, k int) bool { return seqs[i] < seqs[k] })
	for _, seq := range seqs {
		t := resident[seq]
		s.tasks[t.ID] = t
		s.okey[t.ID] = s.nextKey
		s.nextKey++
		if t.State == StatePending {
			heap.Push(&s.pending, pendEntry{s.okey[t.ID], t.ID})
		}
	}
	s.seq = maxSeq
	if s.opts.OnSettled != nil {
		for _, c := range settled {
			s.opts.OnSettled(c.seq, c.st, c.loc)
		}
	}
	return jr, nil
}

// setSettledBit marks seq as settled-and-evicted. Callers hold s.mu (or
// run during Open, before the store is shared).
func (s *Store[P]) setSettledBit(seq uint64) {
	i := (seq - 1) / 64
	for uint64(len(s.settledSeqs)) <= i {
		s.settledSeqs = append(s.settledSeqs, 0)
	}
	s.settledSeqs[i] |= 1 << ((seq - 1) % 64)
}

func (s *Store[P]) settledBit(seq uint64) bool {
	if seq == 0 {
		return false
	}
	i := (seq - 1) / 64
	return i < uint64(len(s.settledSeqs)) && s.settledSeqs[i]&(1<<((seq-1)%64)) != 0
}

// PrevJournalMeta reports the work-set fingerprint found in the journal
// before this open ("" for a fresh or legacy journal).
func (s *Store[P]) PrevJournalMeta() string { return s.prevMeta }

// ReadRecord decodes the journal record at loc — the way a consumer of
// OnSettled streams evicted results back out of the compacted journal.
func (s *Store[P]) ReadRecord(loc RecLoc) (Task[P], error) {
	s.mu.Lock()
	jr := s.journal
	s.mu.Unlock()
	if jr == nil {
		return Task[P]{}, fmt.Errorf("distwork: store has no journal")
	}
	raw, err := jr.readRecord(loc)
	if err != nil {
		return Task[P]{}, err
	}
	return s.opts.Codec.Decode(raw)
}

// Lease reports the configured lease duration — the heartbeat contract a
// worker has to honor to keep its claims.
func (s *Store[P]) Lease() time.Duration { return s.opts.Lease }

// record journals the task's current state and mirrors the transition
// into the flight recorder, reporting the record's journal location
// (ok only when a journal is attached and the append landed). Callers
// hold s.mu.
func (s *Store[P]) record(t *Task[P]) (RecLoc, bool) {
	var loc RecLoc
	var ok bool
	if s.journal != nil {
		rec, err := s.opts.Codec.Encode(t)
		if err != nil {
			s.journal.fail(err)
		} else {
			loc, ok = s.journal.append(t.ID, rec)
		}
	}
	if s.m.flight != nil {
		if t.Worker != "" {
			s.m.flight.Recordf(s.opts.FlightTopic, "%s -> %s (%s, attempt %d)", t.ID, t.State, t.Worker, t.Attempts)
		} else {
			s.m.flight.Recordf(s.opts.FlightTopic, "%s -> %s", t.ID, t.State)
		}
	}
	return loc, ok
}

// feedLocked pulls tasks from Options.Source until the pending heap
// holds want claimables or the source is exhausted. Fed tasks are not
// journaled — they are reproducible from (Source, seq), and claims go
// out in sequence order, so the journal's highest sequence number is
// exactly the resume point. Callers hold s.mu.
func (s *Store[P]) feedLocked(want int) {
	if s.opts.Source == nil || s.sourceDone {
		return
	}
	for s.pending.Len() < want {
		p, ok := s.opts.Source(s.seq + 1)
		if !ok {
			s.sourceDone = true
			// The set is now finite and may already be settled; wake
			// WaitSettled so it can notice.
			s.cond.Broadcast()
			return
		}
		s.seq++
		t := &Task[P]{
			ID:        fmt.Sprintf("%s%06d", s.opts.IDPrefix, s.seq),
			State:     StatePending,
			Payload:   p,
			Submitted: s.opts.Now(),
		}
		s.tasks[t.ID] = t
		s.okey[t.ID] = s.nextKey
		s.nextKey++
		heap.Push(&s.pending, pendEntry{s.okey[t.ID], t.ID})
		s.m.submitted.Inc()
	}
}

// Submit enqueues a new task with the given payload and returns it.
// Stores with a Source reject external submissions — the source owns
// the sequence.
func (s *Store[P]) Submit(payload P) (Task[P], error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Task[P]{}, ErrClosed
	}
	if s.opts.Source != nil {
		return Task[P]{}, fmt.Errorf("distwork: store is source-fed; external submit not allowed")
	}
	s.seq++
	t := &Task[P]{
		ID:        fmt.Sprintf("%s%06d", s.opts.IDPrefix, s.seq),
		State:     StatePending,
		Payload:   payload,
		Submitted: s.opts.Now(),
	}
	s.tasks[t.ID] = t
	if !s.opts.Evict {
		s.order = append(s.order, t.ID)
	}
	s.okey[t.ID] = s.nextKey
	s.nextKey++
	heap.Push(&s.pending, pendEntry{s.okey[t.ID], t.ID})
	s.m.submitted.Inc()
	s.record(t)
	s.cond.Broadcast()
	return *t, nil
}

// Get returns a copy of the task, if it exists.
func (s *Store[P]) Get(id string) (Task[P], bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[id]
	if !ok {
		return Task[P]{}, false
	}
	return *t, true
}

// List returns copies of all resident tasks in submission order. In
// source/evict mode that is the non-terminal working set — evicted
// terminal tasks live only in the journal (ReadRecord).
func (s *Store[P]) List() []Task[P] {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.order != nil {
		out := make([]Task[P], 0, len(s.order))
		for _, id := range s.order {
			out = append(out, *s.tasks[id])
		}
		return out
	}
	out := make([]Task[P], 0, len(s.tasks))
	for _, t := range s.tasks {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, k int) bool { return s.okey[out[i].ID] < s.okey[out[k].ID] })
	return out
}

// requeueLocked returns a task to pending (lease expiry, restart,
// release) and re-arms its claimability. Callers hold s.mu.
func (s *Store[P]) requeueLocked(t *Task[P], note string) {
	t.State = StatePending
	t.Worker = ""
	t.Lease = time.Time{}
	t.Note = note
	delete(s.active, t.ID)
	heap.Push(&s.pending, pendEntry{s.okey[t.ID], t.ID})
	s.record(t)
}

// expireLocked requeues active tasks whose lease lapsed, in submission
// order so the journal stays deterministic. Only the active set is
// scanned — O(leased), not O(all tasks) — which keeps claim latency flat
// as terminal tasks accumulate over a long daemon lifetime. Callers hold
// s.mu.
func (s *Store[P]) expireLocked(now time.Time) int {
	var lapsed []string
	for id := range s.active {
		t := s.tasks[id]
		if t.State.Active() && now.After(t.Lease) {
			lapsed = append(lapsed, id)
		}
	}
	sort.Slice(lapsed, func(i, k int) bool { return s.okey[lapsed[i]] < s.okey[lapsed[k]] })
	n := 0
	for _, id := range lapsed {
		s.requeueLocked(s.tasks[id], "lease expired; requeued")
		n++
	}
	if n > 0 {
		s.m.expirations.Add(uint64(n))
		s.cond.Broadcast()
	}
	return n
}

// ExpireLeases requeues every active task whose lease has lapsed (the
// worker stopped heartbeating) and reports how many were requeued. A
// coordinator calls this on a timer; the expired tasks are then claimed —
// stolen — by whichever worker asks next.
func (s *Store[P]) ExpireLeases() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expireLocked(s.opts.Now())
}

// TryClaim claims the oldest pending task for worker, or reports none
// available. Expired leases are collected first, so a crashed worker's
// tasks become claimable here.
func (s *Store[P]) TryClaim(worker string) (Task[P], bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tryClaimLocked(worker)
}

func (s *Store[P]) tryClaimLocked(worker string) (Task[P], bool) {
	now := s.opts.Now()
	s.expireLocked(now)
	return s.claimOneLocked(worker, now)
}

// claimOneLocked pops the oldest claimable pending task (feeding the
// source as needed) and claims it. Callers hold s.mu and have already
// collected expired leases.
func (s *Store[P]) claimOneLocked(worker string, now time.Time) (Task[P], bool) {
	for {
		s.feedLocked(1)
		if s.pending.Len() == 0 {
			return Task[P]{}, false
		}
		e := s.pending.peek()
		t := s.tasks[e.id]
		heap.Pop(&s.pending)
		if t == nil || t.State != StatePending {
			continue // lazily dropped: claimed or cancelled since it was pushed
		}
		if t.Attempts > 0 {
			// A re-claim of a task some worker held before: a steal (lease
			// expiry, crash recovery, or an explicit release).
			s.m.steals.Inc()
		}
		t.State = StateClaimed
		t.Worker = worker
		t.Lease = now.Add(s.opts.Lease)
		t.Attempts++
		t.Note = ""
		s.active[t.ID] = struct{}{}
		s.m.claims.Inc()
		s.record(t)
		return *t, true
	}
}

// TryClaimBatch claims up to max pending tasks for worker in one lock
// acquisition — the server side of the batch lease protocol, amortizing
// lock traffic and (with group commit) journal fsyncs over the batch.
// Steal and exactly-once semantics are per task, identical to TryClaim.
func (s *Store[P]) TryClaimBatch(worker string, max int) []Task[P] {
	if max < 1 {
		max = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	now := s.opts.Now()
	s.expireLocked(now)
	var out []Task[P]
	for len(out) < max {
		t, ok := s.claimOneLocked(worker, now)
		if !ok {
			break
		}
		out = append(out, t)
	}
	if len(out) > 0 {
		s.m.batchClaims.Inc()
	}
	return out
}

// Claim blocks until a pending task is available (or ctx is done / the
// store closes) and claims it for worker.
func (s *Store[P]) Claim(ctx context.Context, worker string) (Task[P], error) {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return Task[P]{}, err
		}
		if s.closed {
			return Task[P]{}, ErrClosed
		}
		if t, ok := s.tryClaimLocked(worker); ok {
			return t, nil
		}
		s.cond.Wait()
	}
}

// owned fetches the task and verifies worker holds it. An evicted
// (settled, journal-only) id reports ErrNotOwner — the stale worker's
// late transition loses to the settled record, preserving exactly-once
// even though the task left memory. Callers hold s.mu.
func (s *Store[P]) owned(id, worker string) (*Task[P], error) {
	t, ok := s.tasks[id]
	if !ok {
		if seq, k := parseSeq(id, s.opts.IDPrefix); k && s.settledBit(seq) {
			return nil, &NotOwnerError{ID: id, State: StateDone, Claimant: worker}
		}
		return nil, &NotFoundError{ID: id}
	}
	if !t.State.Active() || t.Worker != worker {
		return nil, &NotOwnerError{ID: id, State: t.State, Worker: t.Worker, Claimant: worker}
	}
	return t, nil
}

// Heartbeat renews worker's lease on the task.
func (s *Store[P]) Heartbeat(id, worker string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heartbeatLocked(id, worker)
}

func (s *Store[P]) heartbeatLocked(id, worker string) error {
	t, err := s.owned(id, worker)
	if err != nil {
		return err
	}
	t.Lease = s.opts.Now().Add(s.opts.Lease)
	s.m.heartbeats.Inc()
	return nil
}

// HeartbeatBatch renews worker's lease on every id in one lock
// acquisition, reporting per-id errors positionally (nil = renewed).
func (s *Store[P]) HeartbeatBatch(worker string, ids []string) []error {
	out := make([]error, len(ids))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, id := range ids {
		out[i] = s.heartbeatLocked(id, worker)
	}
	return out
}

// setState moves an owned task to the given active state.
func (s *Store[P]) setState(id, worker string, st State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.owned(id, worker)
	if err != nil {
		return err
	}
	if t.State == st {
		return nil
	}
	t.State = st
	t.Lease = s.opts.Now().Add(s.opts.Lease)
	if st == StateRunning && t.Started.IsZero() {
		t.Started = s.opts.Now()
	}
	s.record(t)
	return nil
}

// MarkRunning transitions a claimed (or paused) task to running.
func (s *Store[P]) MarkRunning(id, worker string) error {
	return s.setState(id, worker, StateRunning)
}

// MarkPaused transitions a running task to paused. The worker keeps the
// claim and must keep heartbeating.
func (s *Store[P]) MarkPaused(id, worker string) error {
	return s.setState(id, worker, StatePaused)
}

// Finish moves an owned task to a terminal state: done when runErr is
// nil, failed otherwise. result is an opaque outcome pointer stored on
// the task and survives journal recovery.
func (s *Store[P]) Finish(id, worker, result string, runErr error) error {
	state := StateDone
	errMsg := ""
	if runErr != nil {
		state = StateFailed
		errMsg = runErr.Error()
	}
	return s.finish(id, worker, state, result, errMsg)
}

// FinishCancelled moves an owned task to cancelled (a cancel request was
// honored mid-run); result may point at partial output.
func (s *Store[P]) FinishCancelled(id, worker, result string) error {
	return s.finish(id, worker, StateCancelled, result, "")
}

func (s *Store[P]) finish(id, worker string, st State, result, errMsg string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.finishLocked(id, worker, st, result, errMsg)
	s.cond.Broadcast()
	return err
}

func (s *Store[P]) finishLocked(id, worker string, st State, result, errMsg string) error {
	t, err := s.owned(id, worker)
	if err != nil {
		return err
	}
	t.State = st
	t.Worker = ""
	t.Lease = time.Time{}
	t.Finished = s.opts.Now()
	t.Result = result
	t.Error = errMsg
	delete(s.active, id)
	s.m.finished[st].Inc()
	loc, journaled := s.record(t)
	if s.opts.Evict && s.journal != nil {
		if seq, ok := parseSeq(id, s.opts.IDPrefix); ok {
			// The journal record is now the authoritative copy; drop the
			// task from memory and remember only that its sequence settled.
			s.setSettledBit(seq)
			s.evicted[st]++
			delete(s.tasks, id)
			delete(s.okey, id)
			if s.opts.OnSettled != nil && journaled {
				s.opts.OnSettled(seq, st, loc)
			}
		}
	}
	return nil
}

// FinishItem is one settlement in a FinishBatch: done with Result when
// Error is empty, failed otherwise.
type FinishItem struct {
	ID     string
	Result string
	Error  string
}

// FinishBatch settles many owned tasks in one lock acquisition — the
// server side of the batch lease protocol. Per-item errors are
// positional (nil = settled); the usual stale-claim outcome is a
// NotOwnerError on just the stolen items.
func (s *Store[P]) FinishBatch(worker string, items []FinishItem) []error {
	out := make([]error, len(items))
	s.mu.Lock()
	for i, it := range items {
		st := StateDone
		if it.Error != "" {
			st = StateFailed
		}
		out[i] = s.finishLocked(it.ID, worker, st, it.Result, it.Error)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	return out
}

// Release returns an owned task to pending without finishing it — the
// graceful-shutdown path. note (e.g. partial-progress details) is
// journaled with the transition, so a restarted process sees how far the
// interrupted run got before it re-runs the task.
func (s *Store[P]) Release(id, worker, note string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.owned(id, worker)
	if err != nil {
		return err
	}
	s.requeueLocked(t, note)
	s.m.releases.Inc()
	s.cond.Broadcast()
	return nil
}

// Cancel requests cancellation. A pending task is cancelled immediately;
// for an active task the state is returned unchanged and the caller must
// signal the owning worker (which then calls FinishCancelled). Cancelling
// a terminal task is a no-op. The returned state is the task's state
// after the call.
func (s *Store[P]) Cancel(id string) (State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[id]
	if !ok {
		if seq, k := parseSeq(id, s.opts.IDPrefix); k && s.settledBit(seq) {
			return StateDone, nil // evicted terminal: cancel is a no-op
		}
		return "", &NotFoundError{ID: id}
	}
	if t.State == StatePending {
		if s.opts.Source != nil {
			// Source-fed pending tasks are normally unjournaled (re-fed on
			// resume from the highest journaled sequence). Journaling this
			// cancel would advance that watermark past still-unjournaled
			// earlier tasks, so journal those first — no resume holes.
			s.journalPendingBelowLocked(id)
		}
		t.State = StateCancelled
		t.Finished = s.opts.Now()
		s.m.finished[StateCancelled].Inc()
		s.record(t)
		s.cond.Broadcast()
	}
	return t.State, nil
}

// journalPendingBelowLocked records every resident pending task with a
// lower arrival key than id, oldest first. Callers hold s.mu.
func (s *Store[P]) journalPendingBelowLocked(id string) {
	limit := s.okey[id]
	var ids []string
	for tid, t := range s.tasks {
		if t.State == StatePending && s.okey[tid] < limit {
			ids = append(ids, tid)
		}
	}
	sort.Slice(ids, func(i, k int) bool { return s.okey[ids[i]] < s.okey[ids[k]] })
	for _, tid := range ids {
		s.record(s.tasks[tid])
	}
}

// Counts tallies tasks by state, including evicted terminal tasks.
func (s *Store[P]) Counts() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[State]int)
	for _, t := range s.tasks {
		out[t.State]++
	}
	for st, n := range s.evicted {
		out[st] += int(n)
	}
	return out
}

// countState tallies tasks currently in state st (sampled at scrape time
// by the per-state callback gauges — the gauge reads the store the queue
// already maintains instead of keeping a parallel count). Evicted
// terminal tasks stay counted under their final state.
func (s *Store[P]) countState(st State) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := int(s.evicted[st])
	for _, t := range s.tasks {
		if t.State == st {
			n++
		}
	}
	return n
}

// countJournalShards backs the <prefix>_journal_shard_count gauge.
func (s *Store[P]) countJournalShards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return 0
	}
	return len(s.journal.shards)
}

// settledLocked reports whether every task is terminal. Callers hold
// s.mu. An empty store is settled; a source-fed store is settled only
// once the source is drained (evicted tasks are terminal by
// construction).
func (s *Store[P]) settledLocked() bool {
	if s.opts.Source != nil && !s.sourceDone {
		// Probe the source before answering: an empty (or exactly
		// drained) source must settle even if no claim ever ran to
		// discover the exhaustion.
		s.feedLocked(1)
		if !s.sourceDone {
			return false
		}
	}
	for _, t := range s.tasks {
		if !t.State.Terminal() {
			return false
		}
	}
	return true
}

// Settled reports whether every task has reached a terminal state — the
// completion condition of a fixed work set such as a sweep grid.
func (s *Store[P]) Settled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.settledLocked()
}

// WaitSettled blocks until every task is terminal, ctx is done, or the
// store closes. It is how a grid coordinator knows the sweep is complete:
// workers finish (or fail) cells, lease expiry requeues stragglers, and
// settlement means nothing pending or leased remains.
func (s *Store[P]) WaitSettled(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if s.closed {
			return ErrClosed
		}
		if s.settledLocked() {
			return nil
		}
		s.cond.Wait()
	}
}

// Close flushes and closes the journal and wakes all blocked Claim and
// WaitSettled calls with an error. Tasks are not mutated: active tasks
// stay active in the journal and will be requeued by the next Open.
func (s *Store[P]) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	if s.journal != nil {
		return s.journal.close()
	}
	return nil
}
