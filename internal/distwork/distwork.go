// Package distwork is the repository's work-distribution core: a
// payload-generic task store with lease+heartbeat claiming, a journaled
// (JSONL) lifecycle with compaction and torn-tail tolerance, and a
// fixed-size worker pool. It is the one machinery under both execution
// engines in the repo — the elastisimd job queue (internal/jobqueue is a
// thin json.RawMessage specialization with a legacy journal codec) and
// the distributed, resumable sweep grids of internal/experiments.
//
// The lifecycle is a small state machine:
//
//	pending ──claim──▶ claimed ──start──▶ running ◀─pause/resume─▶ paused
//	   ▲                  │                  │                        │
//	   └──lease expiry / release────────────┴───────┐                │
//	                                                 ▼                ▼
//	                                      done / failed / cancelled (terminal)
//
// Claims carry a lease: a worker that stops heartbeating (crashed, hung,
// killed) loses the task, which returns to pending for another worker —
// that re-claim is a *steal*, the mechanism behind both daemon crash
// recovery and straggler work-stealing in distributed sweeps. Every
// transition is journaled; Open replays the journal, requeues tasks that
// were mid-flight when the previous process died, keeps terminal tasks
// (and their result pointers) without re-running them, and compacts the
// file to one line per task.
package distwork

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// State is a task's lifecycle state.
type State string

// The task states. Pending tasks are claimable; claimed/running/paused
// tasks belong to a worker under a lease; done/failed/cancelled are
// terminal.
const (
	StatePending   State = "pending"
	StateClaimed   State = "claimed"
	StateRunning   State = "running"
	StatePaused    State = "paused"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// States lists every lifecycle state, in lifecycle order. Exported for
// consumers that enumerate per-state series (the /metrics exposition).
var States = []State{
	StatePending, StateClaimed, StateRunning, StatePaused,
	StateDone, StateFailed, StateCancelled,
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Active reports whether a worker currently owns the task.
func (s State) Active() bool {
	return s == StateClaimed || s == StateRunning || s == StatePaused
}

// Valid reports whether s is one of the defined states.
func (s State) Valid() bool {
	switch s {
	case StatePending, StateClaimed, StateRunning, StatePaused,
		StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Sentinel errors for ownership failures, so transports (the HTTP lease
// API) can map them to status codes without string matching.
var (
	// ErrNotFound reports an unknown task id.
	ErrNotFound = errors.New("distwork: no such task")
	// ErrNotOwner reports a transition attempted by a worker that does not
	// hold the task's claim (stale lease, already settled, never claimed).
	ErrNotOwner = errors.New("distwork: task not owned by worker")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("distwork: store is closed")
)

// NotFoundError is the concrete ErrNotFound: it carries the id so
// specializations can rephrase the message in their own vocabulary.
type NotFoundError struct{ ID string }

func (e *NotFoundError) Error() string { return fmt.Sprintf("distwork: no task %s", e.ID) }

// Unwrap makes errors.Is(err, ErrNotFound) true.
func (e *NotFoundError) Unwrap() error { return ErrNotFound }

// NotOwnerError is the concrete ErrNotOwner: the task's actual state and
// holder, plus the worker whose claim was rejected.
type NotOwnerError struct {
	ID       string
	State    State
	Worker   string // current holder ("" if unowned)
	Claimant string // the rejected worker
}

func (e *NotOwnerError) Error() string {
	return fmt.Sprintf("distwork: task %s is %s (worker %q), not owned by %q",
		e.ID, e.State, e.Worker, e.Claimant)
}

// Unwrap makes errors.Is(err, ErrNotOwner) true.
func (e *NotOwnerError) Unwrap() error { return ErrNotOwner }

// Task is one unit of work: a typed payload plus lifecycle bookkeeping.
// Methods on Store return copies; mutate only through the Store.
type Task[P any] struct {
	// ID is assigned by Submit (Options.IDPrefix + dense sequence number,
	// e.g. "t000001").
	ID string `json:"id"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Payload is the work description (for elastisimd, a combined
	// simulation document; for sweep grids, a cell spec).
	Payload P `json:"payload,omitempty"`
	// Submitted/Started/Finished are wall-clock transition times; Started
	// and Finished are zero until the transition happened.
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
	// Worker names the claim holder while the task is active.
	Worker string `json:"worker,omitempty"`
	// Lease is when the current claim expires unless renewed by
	// Heartbeat. Expired claims are requeued.
	Lease time.Time `json:"lease,omitempty"`
	// Attempts counts claims, including requeues after lost leases.
	Attempts int `json:"attempts,omitempty"`
	// Error holds the failure message for failed tasks.
	Error string `json:"error,omitempty"`
	// Result is an opaque pointer to the task's outcome (an artifact
	// directory, an encoded result document), set by Finish.
	Result string `json:"result,omitempty"`
	// Note carries auxiliary lifecycle information, e.g. partial-progress
	// details journaled when a shutdown interrupted the task.
	Note string `json:"note,omitempty"`
}

// Options tunes a Store.
type Options[P any] struct {
	// Lease is how long a claim stays valid without a heartbeat
	// (default 30s).
	Lease time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
	// Metrics, when set, receives the store's operational series: tasks by
	// state (callback gauges over the live store), submission/claim/steal/
	// lease counters, and journal fsync latency, compactions, and write
	// errors. Flight, when set, records every journaled state transition
	// into the crash flight recorder. Both nil (the default) detach
	// observability at zero cost.
	Metrics *obs.Registry
	Flight  *obs.FlightRecorder
	// MetricPrefix and Noun shape the series names: "<prefix>_<noun>s",
	// "<prefix>_<noun>_claims_total", ... The jobqueue specialization uses
	// ("elastisimd", "job") to keep its historical names; defaults are
	// ("distwork", "task").
	MetricPrefix string
	Noun         string
	// FlightTopic is the flight-recorder category for journaled
	// transitions (default: MetricPrefix).
	FlightTopic string
	// IDPrefix prefixes generated task ids (default "t").
	IDPrefix string
	// Codec encodes journal records (default: JSON of Task[P]). The
	// jobqueue specialization plugs in its legacy record shape here so
	// pre-existing daemon journals replay byte-compatibly.
	Codec Codec[P]
}

func (o Options[P]) withDefaults() Options[P] {
	if o.Lease <= 0 {
		o.Lease = 30 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.MetricPrefix == "" {
		o.MetricPrefix = "distwork"
	}
	if o.Noun == "" {
		o.Noun = "task"
	}
	if o.FlightTopic == "" {
		o.FlightTopic = o.MetricPrefix
	}
	if o.IDPrefix == "" {
		o.IDPrefix = "t"
	}
	if o.Codec == nil {
		o.Codec = JSONCodec[P]{}
	}
	return o
}

// pendEntry is one claimable task in the pending heap, keyed by its
// arrival order so claims always pick the oldest pending task — exactly
// the semantics of a linear submission-order scan, at O(log n) per claim.
// Entries are lazily invalidated: a task that left pending (claimed,
// cancelled) is skipped when popped, and a requeued task is re-pushed
// with its original key so it does not lose its place in line.
type pendEntry struct {
	key uint64
	id  string
}

type pendHeap []pendEntry

func (h pendHeap) Len() int           { return len(h) }
func (h pendHeap) Less(i, j int) bool { return h[i].key < h[j].key }
func (h pendHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pendHeap) Push(x any)        { *h = append(*h, x.(pendEntry)) }
func (h *pendHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h pendHeap) peek() pendEntry    { return h[0] }

// Store is an in-memory task store with optional journal persistence. All
// methods are safe for concurrent use; hundreds of submitters and a
// worker pool can share one Store.
type Store[P any] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tasks   map[string]*Task[P]
	order   []string            // submission order
	okey    map[string]uint64   // id → arrival-order key (claim priority)
	active  map[string]struct{} // tasks currently under a lease
	pending pendHeap            // claimable tasks, oldest first
	nextKey uint64
	seq     uint64
	journal *journal
	opts    Options[P]
	closed  bool
	m       storeMetrics
}

// New creates a memory-only store (no journal).
func New[P any](opts Options[P]) *Store[P] {
	s := &Store[P]{
		tasks:  make(map[string]*Task[P]),
		okey:   make(map[string]uint64),
		active: make(map[string]struct{}),
		opts:   opts.withDefaults(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.m = newStoreMetrics(s, s.opts)
	return s
}

// Open creates a store journaled at path, replaying any existing journal
// first: terminal tasks are kept (with their result pointers) and are
// never re-run; tasks that were claimed, running, or paused when the
// previous process died return to pending. The journal is compacted on
// open (counted by the <prefix>_journal_compactions_total metric).
func Open[P any](path string, opts Options[P]) (*Store[P], error) {
	s := New(opts)
	tasks, maxSeq, err := replayJournal(path, s.opts.Codec, s.opts.IDPrefix)
	if err != nil {
		return nil, err
	}
	for _, t := range tasks {
		s.tasks[t.ID] = t
		s.order = append(s.order, t.ID)
	}
	sort.Slice(s.order, func(i, k int) bool {
		return s.tasks[s.order[i]].Submitted.Before(s.tasks[s.order[k]].Submitted) ||
			(s.tasks[s.order[i]].Submitted.Equal(s.tasks[s.order[k]].Submitted) &&
				s.order[i] < s.order[k])
	})
	for _, id := range s.order {
		s.okey[id] = s.nextKey
		s.nextKey++
		if s.tasks[id].State == StatePending {
			heap.Push(&s.pending, pendEntry{s.okey[id], id})
		}
	}
	s.seq = maxSeq
	records := make([][]byte, 0, len(s.order))
	for _, id := range s.order {
		rec, err := s.opts.Codec.Encode(s.tasks[id])
		if err != nil {
			return nil, fmt.Errorf("distwork: encoding journal record for %s: %w", id, err)
		}
		records = append(records, rec)
	}
	jr, err := newJournal(path, records)
	if err != nil {
		return nil, err
	}
	jr.fsync = s.m.fsync
	jr.errs = s.m.journalErrors
	s.journal = jr
	s.m.compactions.Inc()
	return s, nil
}

// Lease reports the configured lease duration — the heartbeat contract a
// worker has to honor to keep its claims.
func (s *Store[P]) Lease() time.Duration { return s.opts.Lease }

// record journals the task's current state and mirrors the transition
// into the flight recorder. Callers hold s.mu.
func (s *Store[P]) record(t *Task[P]) {
	if s.journal != nil {
		rec, err := s.opts.Codec.Encode(t)
		if err != nil {
			s.journal.fail(err)
		} else {
			s.journal.append(rec)
		}
	}
	if s.m.flight != nil {
		if t.Worker != "" {
			s.m.flight.Recordf(s.opts.FlightTopic, "%s -> %s (%s, attempt %d)", t.ID, t.State, t.Worker, t.Attempts)
		} else {
			s.m.flight.Recordf(s.opts.FlightTopic, "%s -> %s", t.ID, t.State)
		}
	}
}

// Submit enqueues a new task with the given payload and returns it.
func (s *Store[P]) Submit(payload P) (Task[P], error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Task[P]{}, ErrClosed
	}
	s.seq++
	t := &Task[P]{
		ID:        fmt.Sprintf("%s%06d", s.opts.IDPrefix, s.seq),
		State:     StatePending,
		Payload:   payload,
		Submitted: s.opts.Now(),
	}
	s.tasks[t.ID] = t
	s.order = append(s.order, t.ID)
	s.okey[t.ID] = s.nextKey
	s.nextKey++
	heap.Push(&s.pending, pendEntry{s.okey[t.ID], t.ID})
	s.m.submitted.Inc()
	s.record(t)
	s.cond.Broadcast()
	return *t, nil
}

// Get returns a copy of the task, if it exists.
func (s *Store[P]) Get(id string) (Task[P], bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[id]
	if !ok {
		return Task[P]{}, false
	}
	return *t, true
}

// List returns copies of all tasks in submission order.
func (s *Store[P]) List() []Task[P] {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Task[P], 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.tasks[id])
	}
	return out
}

// requeueLocked returns a task to pending (lease expiry, restart,
// release) and re-arms its claimability. Callers hold s.mu.
func (s *Store[P]) requeueLocked(t *Task[P], note string) {
	t.State = StatePending
	t.Worker = ""
	t.Lease = time.Time{}
	t.Note = note
	delete(s.active, t.ID)
	heap.Push(&s.pending, pendEntry{s.okey[t.ID], t.ID})
	s.record(t)
}

// expireLocked requeues active tasks whose lease lapsed, in submission
// order so the journal stays deterministic. Only the active set is
// scanned — O(leased), not O(all tasks) — which keeps claim latency flat
// as terminal tasks accumulate over a long daemon lifetime. Callers hold
// s.mu.
func (s *Store[P]) expireLocked(now time.Time) int {
	var lapsed []string
	for id := range s.active {
		t := s.tasks[id]
		if t.State.Active() && now.After(t.Lease) {
			lapsed = append(lapsed, id)
		}
	}
	sort.Slice(lapsed, func(i, k int) bool { return s.okey[lapsed[i]] < s.okey[lapsed[k]] })
	n := 0
	for _, id := range lapsed {
		s.requeueLocked(s.tasks[id], "lease expired; requeued")
		n++
	}
	if n > 0 {
		s.m.expirations.Add(uint64(n))
		s.cond.Broadcast()
	}
	return n
}

// ExpireLeases requeues every active task whose lease has lapsed (the
// worker stopped heartbeating) and reports how many were requeued. A
// coordinator calls this on a timer; the expired tasks are then claimed —
// stolen — by whichever worker asks next.
func (s *Store[P]) ExpireLeases() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expireLocked(s.opts.Now())
}

// TryClaim claims the oldest pending task for worker, or reports none
// available. Expired leases are collected first, so a crashed worker's
// tasks become claimable here.
func (s *Store[P]) TryClaim(worker string) (Task[P], bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tryClaimLocked(worker)
}

func (s *Store[P]) tryClaimLocked(worker string) (Task[P], bool) {
	now := s.opts.Now()
	s.expireLocked(now)
	for s.pending.Len() > 0 {
		e := s.pending.peek()
		t := s.tasks[e.id]
		heap.Pop(&s.pending)
		if t == nil || t.State != StatePending {
			continue // lazily dropped: claimed or cancelled since it was pushed
		}
		if t.Attempts > 0 {
			// A re-claim of a task some worker held before: a steal (lease
			// expiry, crash recovery, or an explicit release).
			s.m.steals.Inc()
		}
		t.State = StateClaimed
		t.Worker = worker
		t.Lease = now.Add(s.opts.Lease)
		t.Attempts++
		t.Note = ""
		s.active[t.ID] = struct{}{}
		s.m.claims.Inc()
		s.record(t)
		return *t, true
	}
	return Task[P]{}, false
}

// Claim blocks until a pending task is available (or ctx is done / the
// store closes) and claims it for worker.
func (s *Store[P]) Claim(ctx context.Context, worker string) (Task[P], error) {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return Task[P]{}, err
		}
		if s.closed {
			return Task[P]{}, ErrClosed
		}
		if t, ok := s.tryClaimLocked(worker); ok {
			return t, nil
		}
		s.cond.Wait()
	}
}

// owned fetches the task and verifies worker holds it. Callers hold s.mu.
func (s *Store[P]) owned(id, worker string) (*Task[P], error) {
	t, ok := s.tasks[id]
	if !ok {
		return nil, &NotFoundError{ID: id}
	}
	if !t.State.Active() || t.Worker != worker {
		return nil, &NotOwnerError{ID: id, State: t.State, Worker: t.Worker, Claimant: worker}
	}
	return t, nil
}

// Heartbeat renews worker's lease on the task.
func (s *Store[P]) Heartbeat(id, worker string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.owned(id, worker)
	if err != nil {
		return err
	}
	t.Lease = s.opts.Now().Add(s.opts.Lease)
	s.m.heartbeats.Inc()
	return nil
}

// setState moves an owned task to the given active state.
func (s *Store[P]) setState(id, worker string, st State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.owned(id, worker)
	if err != nil {
		return err
	}
	if t.State == st {
		return nil
	}
	t.State = st
	t.Lease = s.opts.Now().Add(s.opts.Lease)
	if st == StateRunning && t.Started.IsZero() {
		t.Started = s.opts.Now()
	}
	s.record(t)
	return nil
}

// MarkRunning transitions a claimed (or paused) task to running.
func (s *Store[P]) MarkRunning(id, worker string) error {
	return s.setState(id, worker, StateRunning)
}

// MarkPaused transitions a running task to paused. The worker keeps the
// claim and must keep heartbeating.
func (s *Store[P]) MarkPaused(id, worker string) error {
	return s.setState(id, worker, StatePaused)
}

// Finish moves an owned task to a terminal state: done when runErr is
// nil, failed otherwise. result is an opaque outcome pointer stored on
// the task and survives journal recovery.
func (s *Store[P]) Finish(id, worker, result string, runErr error) error {
	state := StateDone
	errMsg := ""
	if runErr != nil {
		state = StateFailed
		errMsg = runErr.Error()
	}
	return s.finish(id, worker, state, result, errMsg)
}

// FinishCancelled moves an owned task to cancelled (a cancel request was
// honored mid-run); result may point at partial output.
func (s *Store[P]) FinishCancelled(id, worker, result string) error {
	return s.finish(id, worker, StateCancelled, result, "")
}

func (s *Store[P]) finish(id, worker string, st State, result, errMsg string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.owned(id, worker)
	if err != nil {
		return err
	}
	t.State = st
	t.Worker = ""
	t.Lease = time.Time{}
	t.Finished = s.opts.Now()
	t.Result = result
	t.Error = errMsg
	delete(s.active, id)
	s.m.finished[st].Inc()
	s.record(t)
	s.cond.Broadcast()
	return nil
}

// Release returns an owned task to pending without finishing it — the
// graceful-shutdown path. note (e.g. partial-progress details) is
// journaled with the transition, so a restarted process sees how far the
// interrupted run got before it re-runs the task.
func (s *Store[P]) Release(id, worker, note string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.owned(id, worker)
	if err != nil {
		return err
	}
	s.requeueLocked(t, note)
	s.m.releases.Inc()
	s.cond.Broadcast()
	return nil
}

// Cancel requests cancellation. A pending task is cancelled immediately;
// for an active task the state is returned unchanged and the caller must
// signal the owning worker (which then calls FinishCancelled). Cancelling
// a terminal task is a no-op. The returned state is the task's state
// after the call.
func (s *Store[P]) Cancel(id string) (State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[id]
	if !ok {
		return "", &NotFoundError{ID: id}
	}
	if t.State == StatePending {
		t.State = StateCancelled
		t.Finished = s.opts.Now()
		s.m.finished[StateCancelled].Inc()
		s.record(t)
		s.cond.Broadcast()
	}
	return t.State, nil
}

// Counts tallies tasks by state.
func (s *Store[P]) Counts() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[State]int)
	for _, t := range s.tasks {
		out[t.State]++
	}
	return out
}

// countState tallies tasks currently in state st (sampled at scrape time
// by the per-state callback gauges — the gauge reads the store the queue
// already maintains instead of keeping a parallel count).
func (s *Store[P]) countState(st State) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, t := range s.tasks {
		if t.State == st {
			n++
		}
	}
	return n
}

// settledLocked reports whether every task is terminal. Callers hold
// s.mu. An empty store is settled.
func (s *Store[P]) settledLocked() bool {
	for _, t := range s.tasks {
		if !t.State.Terminal() {
			return false
		}
	}
	return true
}

// Settled reports whether every task has reached a terminal state — the
// completion condition of a fixed work set such as a sweep grid.
func (s *Store[P]) Settled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.settledLocked()
}

// WaitSettled blocks until every task is terminal, ctx is done, or the
// store closes. It is how a grid coordinator knows the sweep is complete:
// workers finish (or fail) cells, lease expiry requeues stragglers, and
// settlement means nothing pending or leased remains.
func (s *Store[P]) WaitSettled(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if s.closed {
			return ErrClosed
		}
		if s.settledLocked() {
			return nil
		}
		s.cond.Wait()
	}
}

// Close flushes and closes the journal and wakes all blocked Claim and
// WaitSettled calls with an error. Tasks are not mutated: active tasks
// stay active in the journal and will be requeued by the next Open.
func (s *Store[P]) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	if s.journal != nil {
		return s.journal.close()
	}
	return nil
}
