package distwork

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestShardedJournalRecovery pins the sharded layout end to end: records
// land hash-sharded across N header-carrying files, and a crash-reopen
// reconstructs the same task set the single-file journal would have.
func TestShardedJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	opts := Options[int]{Shards: 4}
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := s.Submit(i); err != nil {
			t.Fatal(err)
		}
	}
	done := map[string]bool{}
	for i := 0; i < n/2; i++ {
		c, ok := s.TryClaim("w1")
		if !ok {
			t.Fatal("claim failed")
		}
		if err := s.Finish(c.ID, "w1", fmt.Sprintf("r%d", c.Payload), nil); err != nil {
			t.Fatal(err)
		}
		done[c.ID] = true
	}
	// Crash: no Close. All four shard files must exist with headers.
	for k := 0; k < 4; k++ {
		fp := shardPath(path, k)
		data, err := os.ReadFile(fp)
		if err != nil {
			t.Fatalf("shard %d: %v", k, err)
		}
		first := strings.SplitN(string(data), "\n", 2)[0]
		h, ok := parseShardHeader(first)
		if !ok || h.Shards != 4 || h.Shard != k {
			t.Fatalf("shard %d header: %q", k, first)
		}
	}
	s2, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tasks := s2.List()
	if len(tasks) != n {
		t.Fatalf("recovered %d tasks, want %d", len(tasks), n)
	}
	for _, task := range tasks {
		if done[task.ID] {
			if task.State != StateDone || task.Result != fmt.Sprintf("r%d", task.Payload) {
				t.Fatalf("finished task lost its result: %+v", task)
			}
		} else if task.State != StatePending {
			t.Fatalf("unfinished task state: %+v", task)
		}
	}
}

// TestJournalReshardOnReopen pins that the compaction rewrite migrates
// between layouts: legacy → sharded, wider → narrower (removing the
// orphaned files), and back to legacy.
func TestJournalReshardOnReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	s, err := Open(path, Options[int]{}) // legacy single file
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Submit(i)
	}
	s.Close()

	s2, err := Open(path, Options[int]{Shards: 4})
	if err != nil {
		t.Fatalf("legacy -> sharded: %v", err)
	}
	if got := len(s2.List()); got != 10 {
		t.Fatalf("after resharding to 4: %d tasks, want 10", got)
	}
	s2.Close()
	if _, err := os.Stat(shardPath(path, 3)); err != nil {
		t.Fatalf("shard 3 missing after reshard: %v", err)
	}

	s3, err := Open(path, Options[int]{Shards: 2})
	if err != nil {
		t.Fatalf("4 -> 2 shards: %v", err)
	}
	if got := len(s3.List()); got != 10 {
		t.Fatalf("after narrowing to 2: %d tasks, want 10", got)
	}
	s3.Close()
	if _, err := os.Stat(shardPath(path, 2)); !os.IsNotExist(err) {
		t.Fatalf("stale shard 2 not removed: %v", err)
	}
	if _, err := os.Stat(shardPath(path, 3)); !os.IsNotExist(err) {
		t.Fatalf("stale shard 3 not removed: %v", err)
	}

	s4, err := Open(path, Options[int]{}) // back to legacy
	if err != nil {
		t.Fatalf("sharded -> legacy: %v", err)
	}
	defer s4.Close()
	if got := len(s4.List()); got != 10 {
		t.Fatalf("after collapsing to legacy: %d tasks, want 10", got)
	}
	if _, err := os.Stat(shardPath(path, 1)); !os.IsNotExist(err) {
		t.Fatalf("stale shard 1 not removed: %v", err)
	}
	data, _ := os.ReadFile(path)
	if strings.Contains(string(data), "journal_shards") {
		t.Fatal("legacy journal must carry no shard header")
	}
}

// TestShardedTornTailPerShard pins that torn-tail tolerance is per
// shard file: a crash mid-append corrupts at most the final line of one
// shard, and recovery drops only that line.
func TestShardedTornTailPerShard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	s, err := Open(path, Options[int]{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		s.Submit(i)
	}
	s.Close()
	// Tear the tail of every shard that has records.
	for k := 0; k < 3; k++ {
		f, err := os.OpenFile(shardPath(path, k), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString(`{"id":"t0000`)
		f.Close()
	}
	s2, err := Open(path, Options[int]{Shards: 3})
	if err != nil {
		t.Fatalf("torn shard tails should be tolerated: %v", err)
	}
	defer s2.Close()
	if got := len(s2.List()); got != 12 {
		t.Fatalf("recovered %d tasks, want 12", got)
	}
}

// TestGroupCommitDurableAgainstKill pins the group-commit durability
// contract: appends inside an unsynced window are still flushed to the
// OS per transition, so a process kill (simulated: drop the store
// without Close, never letting the syncer run) loses nothing.
func TestGroupCommitDurableAgainstKill(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	reg := obs.NewRegistry()
	s, err := Open(path, Options[int]{Shards: 2, GroupCommit: time.Hour, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		s.Submit(i)
	}
	c, _ := s.TryClaim("w1")
	if err := s.Finish(c.ID, "w1", "result", nil); err != nil {
		t.Fatal(err)
	}
	// Simulated kill: reopen without Close; the hour-long window means no
	// group commit ever ran.
	if v := reg.Counter("distwork_journal_group_commits_total").Value(); v != 0 {
		t.Fatalf("group commits before window: %v", v)
	}
	s2, err := Open(path, Options[int]{Shards: 2, GroupCommit: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.List()); got != 8 {
		t.Fatalf("recovered %d tasks, want 8", got)
	}
	fin, _ := s2.Get(c.ID)
	if fin.State != StateDone || fin.Result != "result" {
		t.Fatalf("finished task lost inside group-commit window: %+v", fin)
	}
}

// TestGroupCommitCrashMidCommitTornTail is the crash-mid-group-commit
// pin: a batch of appends lands, the process dies while the final
// record of the window is half-written (a torn tail on one shard), and
// recovery keeps every whole record while dropping the torn one.
func TestGroupCommitCrashMidCommitTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	s, err := Open(path, Options[int]{Shards: 2, GroupCommit: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var last Task[int]
	for i := 0; i < 6; i++ {
		last, _ = s.Submit(i)
	}
	// Crash mid-append of the next record: the shard that would have
	// taken it ends in a torn line.
	k := shardIndex("t000007", 2)
	f, err := os.OpenFile(shardPath(path, k), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":"t000007","sta`)
	f.Close()
	s2, err := Open(path, Options[int]{Shards: 2, GroupCommit: time.Hour})
	if err != nil {
		t.Fatalf("crash mid group commit should recover: %v", err)
	}
	defer s2.Close()
	if got := len(s2.List()); got != 6 {
		t.Fatalf("recovered %d tasks, want 6 (torn record dropped)", got)
	}
	if got, _ := s2.Get(last.ID); got.State != StatePending {
		t.Fatalf("last whole record lost: %+v", got)
	}
	// The sequence resumes after the highest recovered id.
	fresh, err := s2.Submit(99)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID != "t000007" {
		t.Fatalf("fresh id after torn tail: %s, want t000007", fresh.ID)
	}
}

// TestJournalMetaRefusal pins the work-set fingerprint guard.
func TestJournalMetaRefusal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	s, err := Open(path, Options[int]{Shards: 1, Meta: "grid-a"})
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(1)
	s.Close()
	if _, err := Open(path, Options[int]{Shards: 1, Meta: "grid-b"}); err == nil ||
		!strings.Contains(err.Error(), "different work set") {
		t.Fatalf("want different-work-set refusal, got %v", err)
	}
	// Same meta resumes; the fingerprint survives an open with no meta.
	s2, err := Open(path, Options[int]{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.PrevJournalMeta(); got != "grid-a" {
		t.Fatalf("prev meta: %q", got)
	}
	s2.Close()
	s3, err := Open(path, Options[int]{Shards: 1, Meta: "grid-a"})
	if err != nil {
		t.Fatalf("meta carried forward: %v", err)
	}
	s3.Close()
}

// TestBatchClaimHeartbeatFinish pins the batched lease operations:
// claim-N hands out oldest-first, heartbeat-many and finish-many report
// per-item outcomes, and settlement stays exactly-once per task.
func TestBatchClaimHeartbeatFinish(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	s := New(Options[int]{Lease: time.Minute, Now: clk.Now, Metrics: reg})
	for i := 0; i < 5; i++ {
		s.Submit(i)
	}
	batch := s.TryClaimBatch("w1", 3)
	if len(batch) != 3 {
		t.Fatalf("claimed %d, want 3", len(batch))
	}
	for i, task := range batch {
		if want := fmt.Sprintf("t%06d", i+1); task.ID != want {
			t.Fatalf("batch order: got %s at %d, want %s", task.ID, i, want)
		}
	}
	ids := []string{batch[0].ID, batch[1].ID, "t000099"}
	errs := s.HeartbeatBatch("w1", ids)
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("heartbeat own claims: %v", errs)
	}
	if !errors.Is(errs[2], ErrNotFound) {
		t.Fatalf("heartbeat unknown id: %v", errs[2])
	}
	fin := s.FinishBatch("w1", []FinishItem{
		{ID: batch[0].ID, Result: "r0"},
		{ID: batch[1].ID, Error: "boom"},
		{ID: batch[2].ID, Result: "r2"},
	})
	for i, err := range fin {
		if err != nil {
			t.Fatalf("finish %d: %v", i, err)
		}
	}
	// Double-finish is rejected per item.
	again := s.FinishBatch("w1", []FinishItem{{ID: batch[0].ID, Result: "dup"}})
	if !errors.Is(again[0], ErrNotOwner) {
		t.Fatalf("double finish: %v", again[0])
	}
	counts := s.Counts()
	if counts[StateDone] != 2 || counts[StateFailed] != 1 || counts[StatePending] != 2 {
		t.Fatalf("counts: %+v", counts)
	}
	if v := reg.Counter("distwork_task_batch_claims_total").Value(); v != 1 {
		t.Fatalf("batch claims counter: %v", v)
	}
	// A stale batch finish after a steal loses only the stolen items.
	rest := s.TryClaimBatch("w2", 10)
	if len(rest) != 2 {
		t.Fatalf("rest: %d", len(rest))
	}
	clk.Advance(2 * time.Minute)
	stolen := s.TryClaimBatch("w3", 10)
	if len(stolen) != 2 {
		t.Fatalf("stolen: %d", len(stolen))
	}
	late := s.FinishBatch("w2", []FinishItem{{ID: rest[0].ID, Result: "late"}})
	if !errors.Is(late[0], ErrNotOwner) {
		t.Fatalf("late finish after steal: %v", late[0])
	}
}

// TestSourceFedStore pins the streamed work set: tasks are fed lazily
// in sequence order, external submits are rejected, and the store
// settles once the source drains and every fed task is terminal.
func TestSourceFedStore(t *testing.T) {
	const n = 25
	var fedMax uint64
	s := New(Options[int]{Source: func(seq uint64) (int, bool) {
		if seq > n {
			return 0, false
		}
		if seq > fedMax {
			fedMax = seq
		}
		return int(seq) * 10, true
	}})
	if _, err := s.Submit(1); err == nil {
		t.Fatal("source-fed store must reject Submit")
	}
	if s.Settled() {
		t.Fatal("undrained source must not be settled")
	}
	seen := 0
	for {
		batch := s.TryClaimBatch("w1", 4)
		if len(batch) == 0 {
			break
		}
		if fedMax > uint64(seen+2*len(batch))+4 {
			t.Fatalf("feeding ran ahead of claims: fed %d, seen %d", fedMax, seen)
		}
		for _, task := range batch {
			if task.Payload != (seen+1)*10 {
				t.Fatalf("claim order: payload %d, want %d", task.Payload, (seen+1)*10)
			}
			seen++
			if err := s.Finish(task.ID, "w1", "", nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	if seen != n {
		t.Fatalf("claimed %d tasks, want %d", seen, n)
	}
	if !s.Settled() {
		t.Fatal("drained and finished source should settle")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.WaitSettled(ctx); err != nil {
		t.Fatalf("WaitSettled: %v", err)
	}
}

// TestEvictingStoreJournalIsTheResult pins the O(active)-memory mode:
// terminal tasks leave the heap, their journal records (via OnSettled
// locations) remain readable, late finishes get the exactly-once 409,
// and a resume re-feeds only what was never journaled.
func TestEvictingStoreJournalIsTheResult(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	const n = 30
	source := func(seq uint64) (int, bool) {
		if seq > n {
			return 0, false
		}
		return int(seq) * 7, true
	}
	settled := map[uint64]RecLoc{}
	opts := Options[int]{
		Shards:      3,
		GroupCommit: time.Millisecond,
		Source:      source,
		Evict:       true,
		OnSettled:   func(seq uint64, st State, loc RecLoc) { settled[seq] = loc },
	}
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Run the first 18 to terminal, leave 2 claimed, crash.
	batch := s.TryClaimBatch("w1", 20)
	if len(batch) != 20 {
		t.Fatalf("claimed %d, want 20", len(batch))
	}
	var items []FinishItem
	for _, task := range batch[:18] {
		items = append(items, FinishItem{ID: task.ID, Result: fmt.Sprintf("res-%d", task.Payload)})
	}
	if errs := s.FinishBatch("w1", items); errs[0] != nil {
		t.Fatalf("finish: %v", errs)
	}
	if len(settled) != 18 {
		t.Fatalf("OnSettled fired %d times, want 18", len(settled))
	}
	if got := len(s.List()); got != 2 {
		t.Fatalf("resident after eviction: %d tasks, want 2 (the claimed pair)", got)
	}
	// Evicted results stream back out of the journal.
	task, err := s.ReadRecord(settled[5])
	if err != nil {
		t.Fatal(err)
	}
	if task.ID != "t000005" || task.State != StateDone || task.Result != "res-35" {
		t.Fatalf("ReadRecord: %+v", task)
	}
	// Late transitions on evicted ids: conflict, not not-found.
	if err := s.Finish("t000003", "w1", "dup", nil); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("finish on evicted id: %v", err)
	}
	if st, err := s.Cancel("t000003"); err != nil || !st.Terminal() {
		t.Fatalf("cancel on evicted id: %v %v", st, err)
	}

	// Crash (no Close) and resume: replay hands the settled set back via
	// OnSettled, the two claimed tasks requeue, and the remainder re-feed.
	resumed := map[uint64]RecLoc{}
	opts2 := opts
	opts2.OnSettled = func(seq uint64, st State, loc RecLoc) { resumed[seq] = loc }
	s2, err := Open(path, opts2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(resumed) != 18 {
		t.Fatalf("replay OnSettled fired %d times, want 18", len(resumed))
	}
	seen := map[int]bool{}
	for {
		c, ok := s2.TryClaim("w2")
		if !ok {
			break
		}
		seen[c.Payload] = true
		if err := s2.Finish(c.ID, "w2", fmt.Sprintf("res-%d", c.Payload), nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != n-18 {
		t.Fatalf("resumed run claimed %d tasks, want %d", len(seen), n-18)
	}
	for seq := uint64(19); seq <= n; seq++ {
		if !seen[int(seq)*7] {
			t.Fatalf("sequence %d never re-fed after resume", seq)
		}
	}
	if !s2.Settled() {
		t.Fatal("store should settle after resume finishes the remainder")
	}
	// Every result — pre-crash and post-resume — reads back from the journal.
	got, err := s2.ReadRecord(resumed[11])
	if err != nil {
		t.Fatal(err)
	}
	if got.Result != "res-77" {
		t.Fatalf("resumed ReadRecord: %+v", got)
	}
	counts := s2.Counts()
	if counts[StateDone] != n {
		t.Fatalf("done count across eviction and resume: %+v", counts)
	}
}

// TestEmptySourceSettles pins that a source with zero items settles
// immediately: a coordinator waiting on an empty grid must not hang.
func TestEmptySourceSettles(t *testing.T) {
	s := New(Options[int]{Source: func(seq uint64) (int, bool) { return 0, false }})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.WaitSettled(ctx); err != nil {
		t.Fatalf("empty source must settle: %v", err)
	}
}
