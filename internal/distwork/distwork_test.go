package distwork

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is a settable test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

type cellSpec struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
}

func TestLifecycle(t *testing.T) {
	s := New(Options[cellSpec]{})
	task, err := s.Submit(cellSpec{Index: 7, Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if task.ID != "t000001" || task.State != StatePending {
		t.Fatalf("submit: got %q %q", task.ID, task.State)
	}
	got, ok := s.TryClaim("w1")
	if !ok || got.ID != task.ID || got.State != StateClaimed || got.Attempts != 1 {
		t.Fatalf("claim: got %+v ok=%v", got, ok)
	}
	if got.Payload.Index != 7 || got.Payload.Name != "a" {
		t.Fatalf("claim payload: got %+v", got.Payload)
	}
	if err := s.MarkRunning(task.ID, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Finish(task.ID, "w1", "out", nil); err != nil {
		t.Fatal(err)
	}
	fin, _ := s.Get(task.ID)
	if fin.State != StateDone || fin.Result != "out" || fin.Worker != "" {
		t.Fatalf("finished: got %+v", fin)
	}
	if !s.Settled() {
		t.Fatal("store with only terminal tasks should be settled")
	}
}

func TestOwnershipErrors(t *testing.T) {
	s := New(Options[int]{})
	if err := s.Heartbeat("t000099", "w1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	task, _ := s.Submit(1)
	if _, ok := s.TryClaim("w1"); !ok {
		t.Fatal("claim failed")
	}
	err := s.MarkRunning(task.ID, "w2")
	if !errors.Is(err, ErrNotOwner) {
		t.Fatalf("want ErrNotOwner, got %v", err)
	}
	var no *NotOwnerError
	if !errors.As(err, &no) || no.Worker != "w1" || no.Claimant != "w2" || no.State != StateClaimed {
		t.Fatalf("NotOwnerError fields: %+v", no)
	}
}

func TestLeaseExpiryIsASteal(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	s := New(Options[int]{Lease: time.Minute, Now: clk.Now, Metrics: reg})
	task, _ := s.Submit(42)
	if _, ok := s.TryClaim("w-dead"); !ok {
		t.Fatal("first claim failed")
	}
	// Fresh lease: nothing expires, no steal possible.
	if n := s.ExpireLeases(); n != 0 {
		t.Fatalf("premature expiry: %d", n)
	}
	if _, ok := s.TryClaim("w-live"); ok {
		t.Fatal("claimed a leased task")
	}
	clk.Advance(2 * time.Minute)
	got, ok := s.TryClaim("w-live")
	if !ok || got.ID != task.ID || got.Attempts != 2 || got.Worker != "w-live" {
		t.Fatalf("steal: got %+v ok=%v", got, ok)
	}
	if v := reg.Counter("distwork_task_steals_total").Value(); v != 1 {
		t.Fatalf("steals counter: got %v, want 1", v)
	}
	if v := reg.Counter("distwork_lease_expirations_total").Value(); v != 1 {
		t.Fatalf("expirations counter: got %v, want 1", v)
	}
	if v := reg.Counter("distwork_task_claims_total").Value(); v != 2 {
		t.Fatalf("claims counter: got %v, want 2", v)
	}
}

// TestClaimOrder pins that claims hand out tasks oldest-first, and that
// a requeued task goes back to its original place in line (the pending
// heap keys by arrival, not by requeue time).
func TestClaimOrder(t *testing.T) {
	clk := newFakeClock()
	s := New(Options[int]{Lease: time.Minute, Now: clk.Now})
	for i := 0; i < 4; i++ {
		clk.Advance(time.Second)
		if _, err := s.Submit(i); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := s.TryClaim("w1") // t000001
	b, _ := s.TryClaim("w1") // t000002
	if a.ID != "t000001" || b.ID != "t000002" {
		t.Fatalf("claim order: %s, %s", a.ID, b.ID)
	}
	// Release the oldest: it must be claimed again before t000003.
	if err := s.Release(a.ID, "w1", "putting it back"); err != nil {
		t.Fatal(err)
	}
	c, _ := s.TryClaim("w2")
	if c.ID != "t000001" {
		t.Fatalf("requeued task lost its place: got %s, want t000001", c.ID)
	}
	d, _ := s.TryClaim("w2")
	if d.ID != "t000003" {
		t.Fatalf("claim order after requeue: got %s, want t000003", d.ID)
	}
}

func TestCancelPendingAndWaitSettled(t *testing.T) {
	s := New(Options[int]{})
	a, _ := s.Submit(1)
	b, _ := s.Submit(2)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	doneCh := make(chan error, 1)
	go func() { doneCh <- s.WaitSettled(ctx) }()

	if st, err := s.Cancel(a.ID); err != nil || st != StateCancelled {
		t.Fatalf("cancel pending: %v %v", st, err)
	}
	got, _ := s.TryClaim("w1")
	if got.ID != b.ID {
		t.Fatalf("claimed %s, want %s (a cancelled)", got.ID, b.ID)
	}
	if st, err := s.Cancel(b.ID); err != nil || st != StateClaimed {
		t.Fatalf("cancel active: %v %v (want state unchanged)", st, err)
	}
	if err := s.Finish(b.ID, "w1", "", nil); err != nil {
		t.Fatal(err)
	}
	if err := <-doneCh; err != nil {
		t.Fatalf("WaitSettled: %v", err)
	}
}

func TestJournalRecoveryGenericPayload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	s, err := Open(path, Options[cellSpec]{})
	if err != nil {
		t.Fatal(err)
	}
	done, _ := s.Submit(cellSpec{Index: 0, Name: "done"})
	mid, _ := s.Submit(cellSpec{Index: 1, Name: "mid"})
	_, _ = s.Submit(cellSpec{Index: 2, Name: "queued"})
	s.TryClaim("w1") // done
	s.TryClaim("w1") // mid
	if err := s.Finish(done.ID, "w1", `{"ok":true}`, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning(mid.ID, "w1"); err != nil {
		t.Fatal(err)
	}
	// Simulated crash: no Close, reopen from the journal.
	s2, err := Open(path, Options[cellSpec]{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	d, _ := s2.Get(done.ID)
	if d.State != StateDone || d.Result != `{"ok":true}` || d.Payload.Name != "done" {
		t.Fatalf("terminal task not preserved: %+v", d)
	}
	m, _ := s2.Get(mid.ID)
	if m.State != StatePending || m.Note != "recovered after restart; requeued" {
		t.Fatalf("mid-flight task not requeued: %+v", m)
	}
	// Recovery claims resume oldest-first: mid (index 1) before queued.
	c1, _ := s2.TryClaim("w2")
	c2, _ := s2.TryClaim("w2")
	if c1.Payload.Index != 1 || c2.Payload.Index != 2 {
		t.Fatalf("recovered claim order: %d then %d", c1.Payload.Index, c2.Payload.Index)
	}
	// New ids continue past the journaled sequence.
	fresh, _ := s2.Submit(cellSpec{Index: 3})
	if fresh.ID != "t000004" {
		t.Fatalf("fresh id: got %s, want t000004", fresh.ID)
	}
}

func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	s, err := Open(path, Options[int]{})
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(1)
	s.Submit(2)
	s.Close()
	// Crash mid-append: a torn, non-JSON final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":"t0000`)
	f.Close()
	s2, err := Open(path, Options[int]{})
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	defer s2.Close()
	if got := len(s2.List()); got != 2 {
		t.Fatalf("recovered %d tasks, want 2", got)
	}
}

func TestJournalMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	os.WriteFile(path, []byte("not json\n{\"id\":\"t000001\",\"state\":\"pending\"}\n"), 0o644)
	if _, err := Open(path, Options[int]{}); err == nil {
		t.Fatal("mid-file corruption should fail Open")
	}
}

// legacyRecord mimics a consumer with a pre-existing journal shape: the
// payload lives under a differently-named field.
type legacyRecord struct {
	ID        string    `json:"id"`
	State     State     `json:"state"`
	Config    int       `json:"config,omitempty"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
	Worker    string    `json:"worker,omitempty"`
	Lease     time.Time `json:"lease,omitempty"`
	Attempts  int       `json:"attempts,omitempty"`
	Error     string    `json:"error,omitempty"`
	Result    string    `json:"result,omitempty"`
	Note      string    `json:"note,omitempty"`
}

type legacyCodec struct{}

func (legacyCodec) Encode(t *Task[int]) ([]byte, error) {
	return json.Marshal(legacyRecord{
		ID: t.ID, State: t.State, Config: t.Payload,
		Submitted: t.Submitted, Started: t.Started, Finished: t.Finished,
		Worker: t.Worker, Lease: t.Lease, Attempts: t.Attempts,
		Error: t.Error, Result: t.Result, Note: t.Note,
	})
}

func (legacyCodec) Decode(data []byte) (Task[int], error) {
	var r legacyRecord
	if err := json.Unmarshal(data, &r); err != nil {
		return Task[int]{}, err
	}
	return Task[int]{
		ID: r.ID, State: r.State, Payload: r.Config,
		Submitted: r.Submitted, Started: r.Started, Finished: r.Finished,
		Worker: r.Worker, Lease: r.Lease, Attempts: r.Attempts,
		Error: r.Error, Result: r.Result, Note: r.Note,
	}, nil
}

// TestCustomCodec pins the pluggable-codec contract: journal lines carry
// the codec's record shape, and replay round-trips through it.
func TestCustomCodec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	s, err := Open(path, Options[int]{Codec: legacyCodec{}})
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(99)
	s.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"config":99`) {
		t.Fatalf("journal should use the codec's field names, got: %s", data)
	}
	s2, err := Open(path, Options[int]{Codec: legacyCodec{}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, _ := s2.Get("t000001")
	if got.Payload != 99 {
		t.Fatalf("replayed payload: got %d, want 99", got.Payload)
	}
}

func TestCompactionAndMetrics(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	reg := obs.NewRegistry()
	s, err := Open(path, Options[int]{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	task, _ := s.Submit(5)
	s.TryClaim("w1")
	s.MarkRunning(task.ID, "w1")
	s.Finish(task.ID, "w1", "r", nil)
	s.Close()
	// Four transitions → four journal lines before compaction.
	if lines := countLines(path); lines != 4 {
		t.Fatalf("journal lines before compaction: got %d, want 4", lines)
	}
	if v := reg.Counter("distwork_journal_compactions_total").Value(); v != 1 {
		t.Fatalf("compactions after first open: got %v, want 1", v)
	}
	reg2 := obs.NewRegistry()
	s2, err := Open(path, Options[int]{Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if lines := countLines(path); lines != 1 {
		t.Fatalf("journal lines after compaction: got %d, want 1", lines)
	}
	if v := reg2.Counter("distwork_journal_compactions_total").Value(); v != 1 {
		t.Fatalf("compactions on reopen: got %v, want 1", v)
	}
	if v := reg2.Counter("distwork_journal_errors_total").Value(); v != 0 {
		t.Fatalf("journal errors: got %v, want 0", v)
	}
}

// TestJournalErrorCounter pins that a failed journal write latches the
// error and increments <prefix>_journal_errors_total exactly once.
func TestJournalErrorCounter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	reg := obs.NewRegistry()
	s, err := Open(path, Options[int]{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(1)
	// Yank the file descriptor out from under the journal: subsequent
	// fsyncs fail, the first failure latches and is counted.
	s.journal.mu.Lock()
	s.journal.shards[0].f.Close()
	s.journal.mu.Unlock()
	s.Submit(2)
	s.Submit(3)
	if v := reg.Counter("distwork_journal_errors_total").Value(); v != 1 {
		t.Fatalf("journal errors: got %v, want 1 (latched once)", v)
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close should surface the latched journal error")
	}
}

func TestMetricNamesParameterized(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options[int]{Metrics: reg, MetricPrefix: "sweep", Noun: "cell"})
	task, _ := s.Submit(1)
	s.TryClaim("w1")
	s.Finish(task.ID, "w1", "", nil)
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{
		`sweep_cells{state="done"} 1`,
		`sweep_cells_submitted_total 1`,
		`sweep_cell_claims_total 1`,
		`sweep_cell_steals_total 0`,
		`sweep_cells_finished_total{state="done"} 1`,
		`sweep_journal_compactions_total 0`,
		`sweep_journal_errors_total 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if _, err := obs.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
}

func TestPoolRunsAndSettles(t *testing.T) {
	s := New(Options[int]{})
	var mu sync.Mutex
	ran := map[int]bool{}
	pool := NewPool(s, 3, func(ctx context.Context, st *Store[int], task Task[int]) (string, error) {
		mu.Lock()
		ran[task.Payload] = true
		mu.Unlock()
		if task.Payload == 2 {
			return "", fmt.Errorf("boom %d", task.Payload)
		}
		return fmt.Sprintf("r%d", task.Payload), nil
	})
	for i := 0; i < 5; i++ {
		s.Submit(i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	pool.Start(ctx)
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	if err := s.WaitSettled(waitCtx); err != nil {
		t.Fatalf("WaitSettled: %v", err)
	}
	cancel()
	pool.Wait()
	counts := s.Counts()
	if counts[StateDone] != 4 || counts[StateFailed] != 1 {
		t.Fatalf("counts: %+v", counts)
	}
	if len(ran) != 5 {
		t.Fatalf("ran %d tasks, want 5", len(ran))
	}
}

func TestPoolInterruption(t *testing.T) {
	s := New(Options[int]{})
	started := make(chan struct{})
	pool := NewPool(s, 1, func(ctx context.Context, st *Store[int], task Task[int]) (string, error) {
		close(started)
		<-ctx.Done()
		return "", fmt.Errorf("stopped at step 3: %w", ErrInterrupted)
	})
	task, _ := s.Submit(1)
	ctx, cancel := context.WithCancel(context.Background())
	pool.Start(ctx)
	<-started
	cancel()
	pool.Wait()
	got, _ := s.Get(task.ID)
	if got.State != StatePending {
		t.Fatalf("interrupted task state: %s, want pending", got.State)
	}
	if got.Note != "stopped at step 3: distwork: interrupted by shutdown" {
		t.Fatalf("interrupted note: %q", got.Note)
	}
}

func TestConcurrentClaimExactlyOnce(t *testing.T) {
	s := New(Options[int]{})
	const n = 50
	for i := 0; i < n; i++ {
		s.Submit(i)
	}
	var mu sync.Mutex
	claimed := map[string]int{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", w)
			for {
				task, ok := s.TryClaim(name)
				if !ok {
					return
				}
				mu.Lock()
				claimed[task.ID]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(claimed) != n {
		t.Fatalf("claimed %d distinct tasks, want %d", len(claimed), n)
	}
	for id, c := range claimed {
		if c != 1 {
			t.Fatalf("task %s claimed %d times", id, c)
		}
	}
}
