package distwork

import (
	"fmt"

	"repro/internal/obs"
)

// storeMetrics holds the store's precreated instruments. Every field is
// nil when observability is detached, and every obs method is nil-safe,
// so the hot paths carry no conditionals.
//
// Instruments are created here, up front, and never from inside a store
// method: per-state gauges are callback-backed and take s.mu at scrape
// time, so creating a series while holding s.mu would invert the lock
// order against a concurrent scrape.
//
// Series names are parameterized by Options.MetricPrefix and
// Options.Noun so each specialization keeps its own families: the
// jobqueue store exports elastisimd_jobs / elastisimd_job_claims_total /
// ..., the sweep grid sweep_cells / sweep_cell_claims_total / ...
type storeMetrics struct {
	flight         *obs.FlightRecorder
	submitted      *obs.Counter
	claims         *obs.Counter
	batchClaims    *obs.Counter // claim-batch operations that claimed >= 1 task
	steals         *obs.Counter // re-claims of tasks a previous worker held
	expirations    *obs.Counter
	heartbeats     *obs.Counter
	releases       *obs.Counter
	finished       map[State]*obs.Counter // terminal-state transitions
	fsync          *obs.Histogram
	compactions    *obs.Counter // journal rewrites (one per successful Open)
	journalErrors  *obs.Counter // latched journal write failures
	journalAppends *obs.Counter // records appended across all journal shards
	groupCommits   *obs.Counter // batched fsync rounds (group-commit mode)
}

func newStoreMetrics[P any](s *Store[P], o Options[P]) storeMetrics {
	m := storeMetrics{flight: o.Flight}
	reg := o.Metrics
	if reg == nil {
		return m
	}
	p, n := o.MetricPrefix, o.Noun
	reg.Help(fmt.Sprintf("%s_%ss", p, n), fmt.Sprintf("%ss currently in each lifecycle state", n))
	reg.Help(fmt.Sprintf("%s_%ss_finished_total", p, n), fmt.Sprintf("%ss that reached a terminal state", n))
	reg.Help(fmt.Sprintf("%s_lease_expirations_total", p), "claims lost to a lapsed lease and requeued")
	reg.Help(fmt.Sprintf("%s_%s_steals_total", p, n), fmt.Sprintf("%ss re-claimed after a previous worker lost or released them", n))
	reg.Help(fmt.Sprintf("%s_journal_fsync_seconds", p), "latency of one journaled transition (write+flush+fsync) or one group commit")
	reg.Help(fmt.Sprintf("%s_journal_compactions_total", p), "journal compactions (rewrite to one record per task on open)")
	reg.Help(fmt.Sprintf("%s_journal_errors_total", p), "journal write failures; after the first the journal stops appending")
	reg.Help(fmt.Sprintf("%s_journal_shard_count", p), "hash-sharded journal files in the active layout (0 = no journal)")
	reg.Help(fmt.Sprintf("%s_journal_shard_appends_total", p), "journal records appended across all shards")
	reg.Help(fmt.Sprintf("%s_journal_group_commits_total", p), "batched journal fsync rounds (group-commit mode)")
	reg.Help(fmt.Sprintf("%s_%s_batch_claims_total", p, n), "claim-batch operations that handed out at least one "+n)
	for _, st := range States {
		st := st
		reg.Gauge(fmt.Sprintf("%s_%ss{state=%q}", p, n, st), func() float64 {
			return float64(s.countState(st))
		})
	}
	reg.Gauge(fmt.Sprintf("%s_journal_shard_count", p), func() float64 {
		return float64(s.countJournalShards())
	})
	m.submitted = reg.Counter(fmt.Sprintf("%s_%ss_submitted_total", p, n))
	m.claims = reg.Counter(fmt.Sprintf("%s_%s_claims_total", p, n))
	m.batchClaims = reg.Counter(fmt.Sprintf("%s_%s_batch_claims_total", p, n))
	m.steals = reg.Counter(fmt.Sprintf("%s_%s_steals_total", p, n))
	m.expirations = reg.Counter(fmt.Sprintf("%s_lease_expirations_total", p))
	m.heartbeats = reg.Counter(fmt.Sprintf("%s_heartbeats_total", p))
	m.releases = reg.Counter(fmt.Sprintf("%s_%s_releases_total", p, n))
	m.finished = make(map[State]*obs.Counter)
	for _, st := range []State{StateDone, StateFailed, StateCancelled} {
		m.finished[st] = reg.Counter(fmt.Sprintf("%s_%ss_finished_total{state=%q}", p, n, st))
	}
	m.fsync = reg.Histogram(fmt.Sprintf("%s_journal_fsync_seconds", p), obs.DefLatencyBuckets)
	m.compactions = reg.Counter(fmt.Sprintf("%s_journal_compactions_total", p))
	m.journalErrors = reg.Counter(fmt.Sprintf("%s_journal_errors_total", p))
	m.journalAppends = reg.Counter(fmt.Sprintf("%s_journal_shard_appends_total", p))
	m.groupCommits = reg.Counter(fmt.Sprintf("%s_journal_group_commits_total", p))
	return m
}
