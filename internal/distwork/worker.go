package distwork

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrInterrupted is returned by a Runner whose task was interrupted by
// shutdown (the run context was cancelled without a task-level cancel).
// The pool releases such tasks back to pending — journaled with the
// runner's partial-progress note — so a restarted process re-runs them.
var ErrInterrupted = errors.New("distwork: interrupted by shutdown")

// ErrFinished tells the pool the runner already moved the task to a
// terminal state (e.g. FinishCancelled) and no settlement is needed.
var ErrFinished = errors.New("distwork: task already settled by runner")

// A Runner executes one claimed task. It must return promptly when ctx
// is cancelled (shutdown). Contract:
//
//   - return (result, nil) for success → task done;
//   - return (partial, ErrInterrupted) — optionally wrapped — when ctx
//     stopped the run → task released back to pending;
//   - call s.FinishCancelled itself for an application-level cancel, and
//     return (_, ErrFinished) to tell the pool the task is already
//     settled;
//   - any other error → task failed.
//
// The Runner is responsible for calling s.MarkRunning/MarkPaused and
// s.Heartbeat as it executes; the pool only claims and settles.
type Runner[P any] func(ctx context.Context, s *Store[P], task Task[P]) (result string, err error)

// Pool runs claimed tasks on a fixed set of worker goroutines, sized to
// GOMAXPROCS by default, so hundreds of concurrent submissions share the
// machine fairly instead of each spawning its own goroutine.
type Pool[P any] struct {
	store   *Store[P]
	run     Runner[P]
	workers int
	busy    atomic.Int64 // workers currently executing a claimed task

	wg sync.WaitGroup
}

// NewPool creates a pool of n workers (n <= 0 selects GOMAXPROCS). When
// the store carries a metrics registry, the pool exports its size and a
// live occupancy gauge (<prefix>_workers, <prefix>_workers_busy).
func NewPool[P any](s *Store[P], n int, run Runner[P]) *Pool[P] {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool[P]{store: s, run: run, workers: n}
	if reg := s.opts.Metrics; reg != nil {
		reg.Help(fmt.Sprintf("%s_workers_busy", s.opts.MetricPrefix),
			"pool workers currently executing a claimed "+s.opts.Noun)
		reg.Gauge(fmt.Sprintf("%s_workers", s.opts.MetricPrefix), nil).Set(float64(n))
		reg.Gauge(fmt.Sprintf("%s_workers_busy", s.opts.MetricPrefix),
			func() float64 { return float64(p.busy.Load()) })
	}
	return p
}

// Workers reports the pool size.
func (p *Pool[P]) Workers() int { return p.workers }

// Start launches the workers. They claim and execute tasks until ctx is
// cancelled, then settle their current task (release-to-pending on
// interruption) and exit. Use Wait to block until all workers drained.
func (p *Pool[P]) Start(ctx context.Context) {
	for i := 0; i < p.workers; i++ {
		name := fmt.Sprintf("worker-%d", i)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.work(ctx, name)
		}()
	}
}

// Wait blocks until every worker exited (after Start's ctx is
// cancelled).
func (p *Pool[P]) Wait() { p.wg.Wait() }

func (p *Pool[P]) work(ctx context.Context, name string) {
	for {
		task, err := p.store.Claim(ctx, name)
		if err != nil {
			return // ctx done or store closed
		}
		p.busy.Add(1)
		result, runErr := p.run(ctx, p.store, task)
		p.busy.Add(-1)
		Settle(p.store, task.ID, name, result, runErr)
	}
}

// Settle applies the Runner error contract to a finished run: nil →
// done, ErrFinished → already settled by the runner, ErrInterrupted →
// released back to pending with the runner's note, anything else →
// failed. Exported so out-of-process workers (the sweep -connect loop)
// settle claims under the same contract as the in-process pool.
//
// Settlement errors are tolerated: the only way these transitions fail
// is the benign race where the task's lease expired mid-run and a newer
// claim owns it — then the newer claim wins.
func Settle[P any](s *Store[P], id, worker, result string, runErr error) {
	switch {
	case runErr == nil:
		_ = s.Finish(id, worker, result, nil)
	case errors.Is(runErr, ErrFinished):
		// Runner already settled the task (e.g. cancelled).
	case errors.Is(runErr, ErrInterrupted):
		note := "interrupted by shutdown; requeued"
		if msg := runErr.Error(); msg != ErrInterrupted.Error() {
			note = msg
		}
		_ = s.Release(id, worker, note)
	default:
		_ = s.Finish(id, worker, result, runErr)
	}
}
