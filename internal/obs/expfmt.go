package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ExpositionStats summarizes a validated Prometheus text exposition.
type ExpositionStats struct {
	// Families maps each metric family to its declared TYPE ("untyped"
	// when samples appeared without a TYPE line).
	Families map[string]string
	// Series is the number of sample lines.
	Series int
}

// HasFamily reports whether the exposition contains the family (counting
// histogram families by their base name).
func (s ExpositionStats) HasFamily(name string) bool {
	_, ok := s.Families[name]
	return ok
}

// SortedFamilies lists family names in order.
func (s ExpositionStats) SortedFamilies() []string {
	out := make([]string, 0, len(s.Families))
	for f := range s.Families {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// ValidateExposition machine-checks a Prometheus text exposition
// (version 0.0.4): metric and label name syntax, quoted label values,
// parseable sample values, TYPE declared at most once per family and
// before its samples, no duplicate series, and histogram sample names
// (_bucket/_sum/_count) consistent with their TYPE. It is the validator
// behind cmd/obscheck and the CI /metrics scrape.
func ValidateExposition(r io.Reader) (ExpositionStats, error) {
	stats := ExpositionStats{Families: make(map[string]string)}
	seen := make(map[string]bool) // full series incl. labels
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkCommentLine(line, stats.Families); err != nil {
				return stats, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, value, err := splitSample(line)
		if err != nil {
			return stats, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return stats, fmt.Errorf("line %d: sample value %q: %w", lineNo, value, err)
		}
		fam, err := sampleFamily(name, labels, stats.Families)
		if err != nil {
			return stats, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, ok := stats.Families[fam]; !ok {
			stats.Families[fam] = "untyped"
		}
		key := name + "{" + labels + "}"
		if seen[key] {
			return stats, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		stats.Series++
	}
	if err := sc.Err(); err != nil {
		return stats, err
	}
	return stats, nil
}

// checkCommentLine validates # HELP / # TYPE lines and records TYPEs.
func checkCommentLine(line string, families map[string]string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validMetricName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if prev, ok := families[name]; ok {
			if prev != "untyped" {
				return fmt.Errorf("family %s declared TYPE twice (or TYPE after samples)", name)
			}
			return fmt.Errorf("family %s: TYPE line after its samples", name)
		}
		families[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		if !validMetricName(fields[2]) {
			return fmt.Errorf("HELP for invalid metric name %q", fields[2])
		}
	}
	return nil
}

// splitSample splits "name{labels} value [timestamp]" into parts,
// validating name and label syntax.
func splitSample(line string) (name, labels, value string, err error) {
	rest := line
	if open := strings.IndexByte(rest, '{'); open >= 0 {
		closeIdx := closingBrace(rest, open)
		if closeIdx < 0 {
			return "", "", "", fmt.Errorf("unbalanced label braces in %q", line)
		}
		name, labels, rest = rest[:open], rest[open+1:closeIdx], rest[closeIdx+1:]
		if err := validateSampleLabels(labels); err != nil {
			return "", "", "", err
		}
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", "", "", fmt.Errorf("sample %q has no value", line)
		}
		name, rest = rest[:sp], rest[sp:]
	}
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", "", fmt.Errorf("sample %q: want 'name value [timestamp]'", line)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", "", "", fmt.Errorf("sample %q: bad timestamp %q", line, fields[1])
		}
	}
	return name, labels, fields[0], nil
}

// closingBrace finds the index of the '}' ending the label block that
// opens at s[open], skipping braces inside double-quoted label values
// (route patterns like "/v1/sessions/{id}" are legal values). Returns -1
// when the block never closes.
func closingBrace(s string, open int) int {
	inQuote := false
	for i := open + 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// validateSampleLabels is validateLabels plus permission for the reserved
// le label (histogram buckets carry it).
func validateSampleLabels(block string) error {
	rest := block
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return fmt.Errorf("label %q: missing '='", rest)
		}
		key := rest[:eq]
		if key != "le" && !validLabelName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("label %q: value must be double-quoted", key)
		}
		end := strings.IndexByte(rest[1:], '"')
		if end < 0 {
			return fmt.Errorf("label %q: unterminated value", key)
		}
		rest = rest[end+2:]
		if rest != "" {
			if rest[0] != ',' {
				return fmt.Errorf("labels: expected ',' at %q", rest)
			}
			rest = rest[1:]
		}
	}
	return nil
}

// sampleFamily resolves a sample name to its family: histogram samples
// end in _bucket/_sum/_count and belong to the declared histogram family;
// everything else is its own family. A _bucket sample without a histogram
// TYPE (or without an le label) is an error.
func sampleFamily(name, labels string, families map[string]string) (string, error) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if typ, ok := families[base]; ok && (typ == "histogram" || typ == "summary") {
			if suffix == "_bucket" && !strings.Contains(labels, `le="`) {
				return "", fmt.Errorf("histogram sample %s lacks an le label", name)
			}
			return base, nil
		}
	}
	if strings.HasSuffix(name, "_bucket") {
		return "", fmt.Errorf("sample %s: _bucket series without a histogram TYPE", name)
	}
	if typ, ok := families[name]; ok && (typ == "histogram" || typ == "summary") {
		return "", fmt.Errorf("family %s is a %s but has a bare sample line", name, typ)
	}
	return name, nil
}
