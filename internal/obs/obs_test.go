package obs

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestRegistryRendersValidExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Help("jobs_submitted_total", "jobs ever submitted")
	reg.Counter("jobs_submitted_total").Add(3)
	reg.Gauge(`jobs{state="pending"}`, nil).Set(2)
	reg.Gauge(`jobs{state="running"}`, nil).Set(1.5)
	reg.Gauge("queue_depth", func() float64 { return 42 })
	h := reg.Histogram("fsync_seconds", DefLatencyBuckets)
	h.Observe(0.002)
	h.Observe(0.0002)
	h.Observe(5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	stats, err := ValidateExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("registry output fails its own validator: %v\n%s", err, text)
	}
	for fam, typ := range map[string]string{
		"jobs_submitted_total": "counter",
		"jobs":                 "gauge",
		"queue_depth":          "gauge",
		"fsync_seconds":        "histogram",
	} {
		if got := stats.Families[fam]; got != typ {
			t.Errorf("family %s: type %q, want %q\n%s", fam, got, typ, text)
		}
	}
	// 1 counter + 3 gauges + (len(buckets)+1 + sum + count) histogram lines.
	want := 4 + len(DefLatencyBuckets) + 1 + 2
	if stats.Series != want {
		t.Errorf("series = %d, want %d\n%s", stats.Series, want, text)
	}
	for _, frag := range []string{
		"# HELP jobs_submitted_total jobs ever submitted",
		"jobs_submitted_total 3",
		`jobs{state="pending"} 2`,
		"queue_depth 42",
		`fsync_seconds_bucket{le="+Inf"} 3`,
		"fsync_seconds_count 3",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("exposition missing %q:\n%s", frag, text)
		}
	}
}

func TestRegistryGetOrCreateAndNilSafety(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("x_total")
	c1.Inc()
	if c2 := reg.Counter("x_total"); c2 != c1 {
		t.Error("Counter is not get-or-create")
	}
	if reg.Counter("x_total").Value() != 1 {
		t.Error("counter value lost across get-or-create")
	}

	// The nil registry hands out nil instruments and every call no-ops.
	var nilReg *Registry
	nilReg.Counter("a_total").Inc()
	nilReg.Gauge("b", nil).Set(1)
	nilReg.Gauge("b", nil).Add(1)
	nilReg.Histogram("c", DefLatencyBuckets).Observe(1)
	nilReg.Help("a_total", "h")
	if err := nilReg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Error(err)
	}
	var nilFlight *FlightRecorder
	nilFlight.Record("cat", "msg")
	nilFlight.Recordf("cat", "%d", 1)
	if nilFlight.Snapshot() != nil || nilFlight.Total() != 0 {
		t.Error("nil flight recorder is not empty")
	}
}

func TestRegistryPanicsOnBadNames(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []string{
		"", "1leading", "has space", `x{le="0.1"}`, `x{bad-label="v"}`,
		`x{unterminated="v}`, `x{k=unquoted}`, `x{k="v"`,
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Counter(%q) did not panic", bad)
				}
			}()
			reg.Counter(bad)
		}()
	}
	// Type mismatch on an existing name must panic too.
	reg.Counter("taken_total")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("gauge over existing counter name did not panic")
			}
		}()
		reg.Gauge("taken_total", nil)
	}()
}

func TestGaugeSetMaxAndAdd(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("peak", nil)
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Errorf("SetMax: got %v, want 5", g.Value())
	}
	g.Add(2.5)
	if g.Value() != 7.5 {
		t.Errorf("Add: got %v, want 7.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %v, want 106", h.Sum())
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		`lat_bucket{le="1"} 2`, // 0.5 and the boundary value 1 (le is inclusive)
		`lat_bucket{le="2"} 3`,
		`lat_bucket{le="4"} 4`,
		`lat_bucket{le="+Inf"} 5`,
	} {
		if !strings.Contains(sb.String(), frag) {
			t.Errorf("missing %q in:\n%s", frag, sb.String())
		}
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("c_total").Inc()
				reg.Gauge("g", nil).Add(1)
				reg.Histogram("h_seconds", DefLatencyBuckets).Observe(0.001)
			}
		}()
	}
	// Concurrent scrapes must not race with mutation.
	for i := 0; i < 10; i++ {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Error(err)
		}
	}
	wg.Wait()
	if got := reg.Counter("c_total").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := reg.Histogram("h_seconds", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Recordf("test", "entry %d", i)
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	for i, e := range snap {
		want := i + 6 // entries 6..9 survive
		if e.Msg != "" && e.Msg != strings.TrimSpace(e.Msg) {
			t.Errorf("entry %d has padded message %q", i, e.Msg)
		}
		if e.Msg != "entry "+string(rune('0'+want)) {
			t.Errorf("entry %d = %q, want %q", i, e.Msg, "entry "+string(rune('0'+want)))
		}
		if e.Seq != uint64(want) {
			t.Errorf("entry %d seq = %d, want %d", i, e.Seq, want)
		}
	}
	if f.Total() != 10 {
		t.Errorf("total = %d, want 10", f.Total())
	}
}

func TestPostmortemDump(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("events_total").Add(7)
	f := NewFlightRecorder(16)
	f.Record("kernel", "t=100 events=4096")
	f.Record("jobqueue", "job j000001 → running (worker-0)")

	dir := t.TempDir()
	path, err := f.DumpFile(dir, "sigquit", "operator-requested dump", reg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		`"reason": "sigquit"`,
		`"detail": "operator-requested dump"`,
		"job j000001",
		"events_total 7",
	} {
		if !strings.Contains(string(data), frag) {
			t.Errorf("postmortem missing %q:\n%s", frag, data)
		}
	}
	if base := filepath.Base(path); !strings.HasPrefix(base, "postmortem-sigquit-") {
		t.Errorf("unexpected artifact name %s", base)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Recordf("w", "worker %d entry %d", w, i)
				if i%100 == 0 {
					_ = f.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if f.Total() != 4000 {
		t.Errorf("total = %d, want 4000", f.Total())
	}
	if len(f.Snapshot()) != 64 {
		t.Errorf("snapshot len = %d, want 64", len(f.Snapshot()))
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	for _, tc := range []struct{ name, text string }{
		{"bad name", "1bad 3\n"},
		{"no value", "lonely\n"},
		{"bad value", "x notanumber\n"},
		{"duplicate series", "x 1\nx 2\n"},
		{"type after samples", "x 1\n# TYPE x counter\n"},
		{"unknown type", "# TYPE x countre\nx 1\n"},
		{"orphan bucket", `x_bucket{le="1"} 1` + "\n"},
		{"bucket sans le", "# TYPE x histogram\nx_bucket 1\n"},
		{"unquoted label", `x{k=v} 1` + "\n"},
	} {
		if _, err := ValidateExposition(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: accepted:\n%s", tc.name, tc.text)
		}
	}
	// A well-formed document with comments, timestamps, and escapes passes.
	good := `# plain comment
# HELP up whether the daemon is up
# TYPE up gauge
up 1
# TYPE req_total counter
req_total{route="GET /v1/sessions",code="200"} 12 1722470400000
`
	stats, err := ValidateExposition(strings.NewReader(good))
	if err != nil {
		t.Fatalf("rejected valid exposition: %v", err)
	}
	if stats.Series != 2 || !stats.HasFamily("up") || !stats.HasFamily("req_total") {
		t.Errorf("stats = %+v", stats)
	}
}
