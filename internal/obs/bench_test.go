package obs_test

import (
	"testing"

	"repro/internal/des"
	"repro/internal/obs"
)

// BenchmarkScheduleFireObserved mirrors des.BenchmarkScheduleFire with a
// metrics registry attached the way elastisimd attaches one: kernel
// counters exported through callback gauges sampled at scrape time. The
// benchmark pins (via benchguard, tight allocs margin) that observation
// costs the DES hot path nothing — 0 allocs/op, same as the bare kernel —
// because the registry only ever *reads* the kernel's existing counters.
func BenchmarkScheduleFireObserved(b *testing.B) {
	k := des.NewKernel()
	reg := obs.NewRegistry()
	reg.Gauge("sim_events_fired", func() float64 { return float64(k.Stats().Fired) })
	reg.Gauge("sim_events_pending", func() float64 { return float64(k.Pending()) })
	reg.Gauge("sim_queue_peak", func() float64 { return float64(k.Stats().PeakQueue) })
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ScheduleTransient(k.Now(), des.PriorityDefault, fn)
		k.Step()
	}
}

// BenchmarkCounterInc pins the cost of the registry's hottest mutation.
func BenchmarkCounterInc(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve pins that Observe is allocation-free.
func BenchmarkHistogramObserve(b *testing.B) {
	reg := obs.NewRegistry()
	h := reg.Histogram("bench_seconds", obs.DefLatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}
