package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// FlightEntry is one recorded system event: a wall-clock timestamp, a
// category (the subsystem that recorded it), and a preformatted message.
type FlightEntry struct {
	Wall time.Time `json:"t"`
	Seq  uint64    `json:"seq"`
	Cat  string    `json:"cat"`
	Msg  string    `json:"msg"`
}

// FlightRecorder keeps the last N system events — kernel progress
// samples, scheduler decisions, job-queue state transitions, HTTP
// anomalies — in a fixed ring, cheap enough to leave on permanently.
// When the process panics, aborts, or receives SIGQUIT, the ring is
// dumped as a postmortem JSON artifact: the black box that explains what
// the system was doing in its final moments.
//
// Recording is lock-cheap: messages are formatted *outside* the critical
// section, the ring is preallocated, and the lock is held only to copy
// one entry. The nil recorder ignores every call, so instrumented code
// needs no guards (the PR 3 nil-Tracer idiom).
type FlightRecorder struct {
	mu   sync.Mutex
	ring []FlightEntry
	next uint64 // total entries ever recorded; ring index = next % len
}

// DefaultFlightSize is the ring capacity NewFlightRecorder uses for n<=0.
const DefaultFlightSize = 512

// NewFlightRecorder creates a recorder keeping the last n entries
// (DefaultFlightSize when n <= 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightSize
	}
	return &FlightRecorder{ring: make([]FlightEntry, n)}
}

// Record appends one entry. Safe for concurrent use; never blocks beyond
// the one-entry copy.
func (f *FlightRecorder) Record(cat, msg string) {
	if f == nil {
		return
	}
	now := time.Now()
	f.mu.Lock()
	i := f.next % uint64(len(f.ring))
	f.ring[i] = FlightEntry{Wall: now, Seq: f.next, Cat: cat, Msg: msg}
	f.next++
	f.mu.Unlock()
}

// Recordf formats and appends one entry. The formatting happens before
// the lock is taken.
func (f *FlightRecorder) Recordf(cat, format string, args ...any) {
	if f == nil {
		return
	}
	f.Record(cat, fmt.Sprintf(format, args...))
}

// Total returns how many entries were ever recorded (including ones the
// ring has since overwritten).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Snapshot returns the retained entries, oldest first.
func (f *FlightRecorder) Snapshot() []FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := uint64(len(f.ring))
	start := uint64(0)
	count := f.next
	if f.next > n {
		start = f.next - n
		count = n
	}
	out := make([]FlightEntry, 0, count)
	for s := start; s < f.next; s++ {
		out = append(out, f.ring[s%n])
	}
	return out
}

// Postmortem is the JSON artifact a dump produces: why it was written,
// when, the retained flight entries, and (optionally) a full metrics
// exposition so counters survive the crash alongside the event ring.
type Postmortem struct {
	Reason   string        `json:"reason"`
	Detail   string        `json:"detail,omitempty"`
	At       time.Time     `json:"at"`
	Recorded uint64        `json:"recorded_total"`
	Entries  []FlightEntry `json:"entries"`
	Metrics  string        `json:"metrics,omitempty"`
}

// WritePostmortem renders the postmortem artifact to w. reg may be nil.
func (f *FlightRecorder) WritePostmortem(w io.Writer, reason, detail string, reg *Registry) error {
	pm := Postmortem{
		Reason:   reason,
		Detail:   detail,
		At:       time.Now(),
		Recorded: f.Total(),
		Entries:  f.Snapshot(),
	}
	if reg != nil {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err == nil {
			pm.Metrics = sb.String()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pm)
}

// DumpFile writes the postmortem artifact into dir (created if needed) as
// postmortem-<reason>-<unixnano>.json and returns the path.
func (f *FlightRecorder) DumpFile(dir, reason, detail string, reg *Registry) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("postmortem-%s-%d.json", reason, time.Now().UnixNano()))
	file, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := f.WritePostmortem(file, reason, detail, reg); err != nil {
		file.Close()
		return "", err
	}
	return path, file.Close()
}
