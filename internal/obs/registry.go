// Package obs is the operational observability layer of the repository:
// a zero-dependency, allocation-conscious metrics registry that renders
// the Prometheus text exposition format, and a bounded flight recorder
// whose last-N ring of system events is dumped to a postmortem JSON
// artifact when something goes wrong.
//
// The registry observes the *system running the simulator* — the daemon,
// its job queue, its HTTP surface — where PR 3's telemetry layer observes
// the *simulation*. The same zero-interference discipline applies: every
// hook is nil-safe (a nil *Registry or nil *FlightRecorder makes every
// instrumentation call a no-op), instrumented code never branches on
// whether observation is attached, and attaching a registry changes no
// simulated byte (pinned by TestObsDoesNotChangeOutputs).
//
// Series are named in full Prometheus notation, labels included:
//
//	reg.Counter(`elastisimd_jobs_submitted_total`).Inc()
//	reg.Gauge(`elastisimd_jobs{state="pending"}`, func() float64 { ... })
//	reg.Histogram(`elastisimd_journal_fsync_seconds`, obs.DefLatencyBuckets).Observe(dt)
//
// Creation is get-or-create: calling Counter with a name that already
// exists returns the same counter, so independent subsystems (or many
// sessions sharing one daemon registry) can grab their series without
// coordination. Mutation is lock-free (atomics); the registry lock is
// taken only on series creation and on scrape.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing series. The nil counter (from a
// nil registry) accepts Inc/Add as no-ops, so call sites need no guards.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for the nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a series that can go up and down. It is either *settable*
// (Set/Add/SetMax mutate an atomic float) or *callback-backed* (a
// function sampled at scrape time — the idiom for exporting an existing
// counter without re-counting it). The nil gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64 // settable value, math.Float64bits
	fn   func() float64
}

// Set stores v. It is ignored on callback gauges.
func (g *Gauge) Set(v float64) {
	if g == nil || g.fn != nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (atomically, via CAS). Ignored on callback gauges.
func (g *Gauge) Add(d float64) {
	if g == nil || g.fn != nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger — a high-water mark.
func (g *Gauge) SetMax(v float64) {
	if g == nil || g.fn != nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the gauge's current value, sampling the callback if one
// is attached.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// DefLatencyBuckets are histogram bounds tuned for I/O and request
// latencies in seconds: 100µs to ~10s, roughly ×3 per step.
var DefLatencyBuckets = []float64{0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10}

// Histogram is a fixed-bucket histogram. Observe is lock-free and
// allocation-free: one linear bucket scan (buckets are few), two atomic
// adds, one CAS loop for the sum. The nil histogram is a no-op.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; +Inf bucket is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // math.Float64bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// series is one named time series of any kind.
type series struct {
	name   string // full name including labels
	family string // name up to the label block
	labels string // label block without braces ("" when unlabeled)
	c      *Counter
	g      *Gauge
	h      *Histogram
}

func (s *series) typ() string {
	switch {
	case s.c != nil:
		return "counter"
	case s.h != nil:
		return "histogram"
	default:
		return "gauge"
	}
}

// Registry holds named series and renders them in Prometheus text
// exposition format. The zero value is not usable; create with
// NewRegistry. All methods are safe for concurrent use, and every method
// on a nil *Registry returns a nil (no-op) instrument, which is how
// instrumented packages support "observability detached" at zero cost.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
	help   map[string]string // family → HELP text
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series), help: make(map[string]string)}
}

// Help attaches HELP text to a metric family (the series name without its
// label block). Safe to call before or after the series exist.
func (r *Registry) Help(family, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[family] = text
	r.mu.Unlock()
}

// Counter returns the counter named name (full Prometheus notation,
// labels included), creating it on first use. It panics if the name is
// malformed or already names a different metric kind — both are
// programmer errors, caught by the first scrape in any test.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	s := r.get(name, "counter")
	return s.c
}

// Gauge returns the gauge named name, creating it on first use. A non-nil
// fn makes it callback-backed: the function is sampled at scrape time,
// which is how existing counters (kernel stats, queue depths) are
// exported without re-counting. fn is ignored when the gauge exists.
func (r *Registry) Gauge(name string, fn func() float64) *Gauge {
	if r == nil {
		return nil
	}
	s := r.getOrCreate(name, func(se *series) { se.g = &Gauge{fn: fn} }, "gauge")
	return s.g
}

// Histogram returns the fixed-bucket histogram named name, creating it on
// first use with the given sorted upper bounds (a +Inf bucket is
// implicit). bounds are ignored when the histogram exists.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	s := r.getOrCreate(name, func(se *series) {
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
			}
		}
		se.h = &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
	}, "histogram")
	return s.h
}

func (r *Registry) get(name, typ string) *series {
	return r.getOrCreate(name, func(se *series) { se.c = &Counter{} }, typ)
}

func (r *Registry) getOrCreate(name string, init func(*series), typ string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[name]; ok {
		if s.typ() != typ {
			panic(fmt.Sprintf("obs: series %q already registered as %s, requested as %s", name, s.typ(), typ))
		}
		return s
	}
	family, labels, err := splitName(name)
	if err != nil {
		panic(fmt.Sprintf("obs: %v", err))
	}
	s := &series{name: name, family: family, labels: labels}
	init(s)
	r.series[name] = s
	return s
}

// splitName validates a full series name and splits it into the family
// name and the label block (without braces).
func splitName(name string) (family, labels string, err error) {
	open := strings.IndexByte(name, '{')
	family = name
	if open >= 0 {
		if !strings.HasSuffix(name, "}") {
			return "", "", fmt.Errorf("series %q: unterminated label block", name)
		}
		family = name[:open]
		labels = name[open+1 : len(name)-1]
		if err := validateLabels(labels); err != nil {
			return "", "", fmt.Errorf("series %q: %v", name, err)
		}
	}
	if !validMetricName(family) {
		return "", "", fmt.Errorf("series %q: invalid metric name %q", name, family)
	}
	return family, labels, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "le" { // le is reserved for histogram buckets
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validateLabels checks a label block of the form k="v",k2="v2". Values
// must not contain raw double quotes, backslashes, or newlines — keep
// label values simple instead of escaping them.
func validateLabels(block string) error {
	rest := block
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return fmt.Errorf("label %q: missing '='", rest)
		}
		key := rest[:eq]
		if !validLabelName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("label %q: value must be double-quoted", key)
		}
		end := strings.IndexByte(rest[1:], '"')
		if end < 0 {
			return fmt.Errorf("label %q: unterminated value", key)
		}
		val := rest[1 : 1+end]
		if strings.ContainsAny(val, "\\\n") {
			return fmt.Errorf("label %q: value %q contains unsupported escapes", key, val)
		}
		rest = rest[end+2:]
		if rest != "" {
			if rest[0] != ',' {
				return fmt.Errorf("labels: expected ',' at %q", rest)
			}
			rest = rest[1:]
		}
	}
	return nil
}

// WritePrometheus renders every series in Prometheus text exposition
// format (version 0.0.4): families sorted by name, one # HELP / # TYPE
// header each, histogram families expanded into cumulative _bucket series
// plus _sum and _count. Scrape-time allocation is fine; mutation-time
// allocation is what the instruments avoid.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	byFamily := make(map[string][]*series)
	families := make([]string, 0, len(r.series))
	for _, s := range r.series {
		if _, ok := byFamily[s.family]; !ok {
			families = append(families, s.family)
		}
		byFamily[s.family] = append(byFamily[s.family], s)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	sort.Strings(families)
	bw := bufio.NewWriter(w)
	for _, fam := range families {
		ss := byFamily[fam]
		sort.Slice(ss, func(i, j int) bool { return ss[i].name < ss[j].name })
		if h := help[fam]; h != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam, h)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam, ss[0].typ())
		for _, s := range ss {
			if s.typ() != ss[0].typ() {
				return fmt.Errorf("obs: family %s mixes %s and %s series", fam, ss[0].typ(), s.typ())
			}
			writeSeries(bw, s)
		}
	}
	return bw.Flush()
}

func writeSeries(w *bufio.Writer, s *series) {
	switch {
	case s.c != nil:
		fmt.Fprintf(w, "%s %s\n", s.name, formatFloat(float64(s.c.Value())))
	case s.g != nil:
		fmt.Fprintf(w, "%s %s\n", s.name, formatFloat(s.g.Value()))
	case s.h != nil:
		cum := uint64(0)
		for i := range s.h.buckets {
			cum += s.h.buckets[i].Load()
			le := "+Inf"
			if i < len(s.h.bounds) {
				le = formatFloat(s.h.bounds[i])
			}
			fmt.Fprintf(w, "%s %d\n", labeledName(s, "_bucket", `le="`+le+`"`), cum)
		}
		fmt.Fprintf(w, "%s %s\n", labeledName(s, "_sum", ""), formatFloat(s.h.Sum()))
		fmt.Fprintf(w, "%s %d\n", labeledName(s, "_count", ""), s.h.Count())
	}
}

// labeledName builds family+suffix with the series' labels plus an extra
// label merged in.
func labeledName(s *series, suffix, extra string) string {
	labels := s.labels
	if extra != "" {
		if labels != "" {
			labels += ","
		}
		labels += extra
	}
	if labels == "" {
		return s.family + suffix
	}
	return s.family + suffix + "{" + labels + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
