package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGridEmitCSVMatchesCollect pins that the streaming CSV emitter is
// byte-identical to collecting the grid and writing it wholesale — the
// equivalence that lets million-cell sweeps skip materialization.
func TestGridEmitCSVMatchesCollect(t *testing.T) {
	cfg := smallGrid()
	var mu sync.Mutex
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	grid, err := OpenGrid(path, cfg, GridOptions{Workers: 2, runCell: fakeCells(t, map[int]int{}, &mu, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer grid.Close()
	if err := grid.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	pts, done, err := grid.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteSweepCSV(&want, FilterCompleted(pts, done)); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	rows, err := grid.EmitCSV(&got, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows != len(pts) {
		t.Fatalf("EmitCSV wrote %d rows, want %d", rows, len(pts))
	}
	if got.String() != want.String() {
		t.Fatalf("EmitCSV differs from WriteSweepCSV:\n got:\n%s\nwant:\n%s", got.String(), want.String())
	}
}

// TestGridShardedCrashMidGroupCommit is the grid-level torn-tail pin: a
// sharded, group-committed grid journal is killed mid-run with a
// half-written record on one shard, and the resumed sweep re-runs only
// the lost cells, producing a byte-identical CSV.
func TestGridShardedCrashMidGroupCommit(t *testing.T) {
	cfg := smallGrid()
	size := GridSize(cfg)
	var mu sync.Mutex

	// Reference CSV from an uninterrupted sharded run.
	refPath := filepath.Join(t.TempDir(), "ref.jsonl")
	refGrid, err := OpenGrid(refPath, cfg, GridOptions{
		Workers: 1, Shards: 2, GroupCommit: time.Millisecond,
		runCell: fakeCells(t, map[int]int{}, &mu, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := refGrid.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if _, err := refGrid.EmitCSV(&refCSV, nil); err != nil {
		t.Fatal(err)
	}
	refGrid.Close()

	// Interrupted run: the third cell cancels (the "kill"), then a torn
	// record lands on every shard tail, as a crash mid group commit would
	// leave it.
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	runs := map[int]int{}
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	killAt := 2
	grid1, err := OpenGrid(path, cfg, GridOptions{
		Workers: 1, Shards: 2, GroupCommit: time.Millisecond,
		runCell: fakeCells(t, runs, &mu, func(ctx context.Context, c GridCell) error {
			if c.Index == killAt {
				cancel1()
				return fmt.Errorf("cell stopped: %w", ctx.Err())
			}
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := grid1.Run(ctx1); err == nil {
		t.Fatal("interrupted run should report an error")
	}
	grid1.Close()
	for _, fp := range []string{path, path + ".s001"} {
		f, err := os.OpenFile(fp, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"id":"c00`); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	grid2, err := OpenGrid(path, cfg, GridOptions{
		Workers: 1, Resume: true, Shards: 2, GroupCommit: time.Millisecond,
		runCell: fakeCells(t, runs, &mu, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer grid2.Close()
	if err := grid2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < size; i++ {
		wantRuns := 1
		if i == killAt {
			wantRuns = 2 // the interrupted cell itself re-runs
		}
		if runs[i] != wantRuns {
			t.Fatalf("cell %d ran %d times, want %d", i, runs[i], wantRuns)
		}
	}
	var gotCSV bytes.Buffer
	if _, err := grid2.EmitCSV(&gotCSV, nil); err != nil {
		t.Fatal(err)
	}
	if gotCSV.String() != refCSV.String() {
		t.Fatalf("resumed CSV differs:\n got:\n%s\nwant:\n%s", gotCSV.String(), refCSV.String())
	}
}

// TestGridReshardResume pins that a grid journal can change shard
// layout between sessions: written with one shard, resumed with four.
func TestGridReshardResume(t *testing.T) {
	cfg := smallGrid()
	var mu sync.Mutex
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	grid, err := OpenGrid(path, cfg, GridOptions{Workers: 1, runCell: fakeCells(t, map[int]int{}, &mu, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if _, err := grid.EmitCSV(&refCSV, nil); err != nil {
		t.Fatal(err)
	}
	grid.Close()
	runs := map[int]int{}
	grid2, err := OpenGrid(path, cfg, GridOptions{
		Workers: 1, Resume: true, Shards: 4,
		runCell: fakeCells(t, runs, &mu, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer grid2.Close()
	if err := grid2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Fatalf("resharded resume re-ran cells: %v", runs)
	}
	var gotCSV bytes.Buffer
	if _, err := grid2.EmitCSV(&gotCSV, nil); err != nil {
		t.Fatal(err)
	}
	if gotCSV.String() != refCSV.String() {
		t.Fatal("resharded CSV differs")
	}
}

// TestLargeGridStreamedMemory is the O(active)-memory smoke: a 50k-cell
// grid runs through a sharded, group-committed journal with fake
// instant cells, and the live heap never grows with the grid — the
// budget below is far under what 50k resident results would take, and
// holds again across a resume that replays the whole journal.
func TestLargeGridStreamedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("large-grid smoke skipped in -short")
	}
	if raceEnabled {
		t.Skip("memory pin, not a concurrency test; too slow under -race")
	}
	seeds := make([]uint64, 2500)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	cfg := SweepConfig{
		Algorithms: []string{"a", "b", "c", "d", "e"},
		Shares:     []float64{0, 0.25, 0.5, 0.75},
		Seeds:      seeds,
		Jobs:       10,
		Nodes:      16,
	}
	size := GridSize(cfg)
	if size != 50000 {
		t.Fatalf("grid size %d, want 50000", size)
	}
	// Synthetic instant cells with a payload big enough (~1KB encoded)
	// that keeping 50k of them resident would cost ~50MB.
	pad := strings.Repeat("x", 900)
	runCell := func(ctx context.Context, c GridCell) (SweepPoint, error) {
		return SweepPoint{
			Algorithm:      c.Algorithm + pad,
			MalleableShare: c.Share,
			Seed:           c.Seed,
			Jobs:           c.Jobs,
			Events:         uint64(c.Index),
		}, nil
	}
	var mem runtime.MemStats
	heapNow := func() uint64 {
		runtime.GC()
		runtime.ReadMemStats(&mem)
		return mem.HeapAlloc
	}
	base := heapNow()

	path := filepath.Join(t.TempDir(), "grid.jsonl")
	grid, err := OpenGrid(path, cfg, GridOptions{
		Workers: 4, Shards: 4, GroupCommit: 5 * time.Millisecond,
		runCell: runCell,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := grid.Completed(); got != size {
		t.Fatalf("completed %d cells, want %d", got, size)
	}
	const budget = 24 << 20 // ~1/2 of what resident results would take
	if grown := heapNow() - base; grown > budget {
		t.Fatalf("heap grew %d bytes during 50k-cell run, budget %d", grown, budget)
	}
	grid.Close()

	// Resume replays 50k settled records; the index (state byte + record
	// location per cell) is all that may stay resident.
	grid2, err := OpenGrid(path, cfg, GridOptions{
		Workers: 4, Resume: true, Shards: 4, GroupCommit: 5 * time.Millisecond,
		runCell: func(ctx context.Context, c GridCell) (SweepPoint, error) {
			t.Errorf("cell %d re-ran on resume", c.Index)
			return SweepPoint{}, fmt.Errorf("re-run")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer grid2.Close()
	if err := grid2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if grown := heapNow() - base; grown > budget {
		t.Fatalf("heap grew %d bytes after resume replay, budget %d", grown, budget)
	}
	// The streamed CSV still sees every row.
	var n int
	count := &countingWriter{}
	if n, err = grid2.EmitCSV(count, nil); err != nil {
		t.Fatal(err)
	}
	if n != size {
		t.Fatalf("EmitCSV rows %d, want %d", n, size)
	}
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}
