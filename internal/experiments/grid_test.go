package experiments

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFilterCompletedIndexOrder pins the partial-grid merge contract:
// completed rows come out in cell-index order, never in completion
// order, so a partial flush is a prefix-stable subset of the full grid.
func TestFilterCompletedIndexOrder(t *testing.T) {
	pts := []string{"c0", "c1", "c2", "c3", "c4"}
	// Completion arrived out of order (4 finished first, then 1, then 3);
	// the done bitmap is the only record of what completed.
	done := []bool{false, true, false, true, true}
	got := FilterCompleted(pts, done)
	want := []string{"c1", "c3", "c4"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v (index order, not completion order)", got, want)
		}
	}
	if all := FilterCompleted(pts, []bool{true, true, true, true, true}); len(all) != 5 || all[0] != "c0" {
		t.Fatalf("full grid: got %v", all)
	}
}

// smallGrid is a 4-cell config cheap enough to simulate for real.
func smallGrid() SweepConfig {
	return SweepConfig{
		Algorithms: []string{"fcfs", "easy"},
		Shares:     []float64{0, 1},
		Seeds:      []uint64{1},
		Jobs:       6,
		Nodes:      16,
	}
}

// fakeCells returns a runCell seam producing deterministic synthetic
// results and counting executions per cell index.
func fakeCells(t *testing.T, runs map[int]int, mu *sync.Mutex, hook func(ctx context.Context, c GridCell) error) func(ctx context.Context, c GridCell) (SweepPoint, error) {
	t.Helper()
	return func(ctx context.Context, c GridCell) (SweepPoint, error) {
		mu.Lock()
		runs[c.Index]++
		mu.Unlock()
		if hook != nil {
			if err := hook(ctx, c); err != nil {
				return SweepPoint{}, err
			}
		}
		return SweepPoint{
			Algorithm:      c.Algorithm,
			MalleableShare: c.Share,
			Seed:           c.Seed,
			Jobs:           c.Jobs,
			Events:         uint64(1000 + c.Index),
		}, nil
	}
}

// TestGridRunMatchesSweep pins that a journaled grid run over real
// simulations produces the same grid as SweepContext, modulo the
// canonicalized wall clock (journal results carry wall_ms=0).
func TestGridRunMatchesSweep(t *testing.T) {
	cfg := smallGrid()
	direct, done, err := SweepContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if !d {
			t.Fatalf("direct cell %d incomplete", i)
		}
	}
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	grid, err := OpenGrid(path, cfg, GridOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer grid.Close()
	if err := grid.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	pts, gdone, err := grid.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(direct) {
		t.Fatalf("grid returned %d points, want %d", len(pts), len(direct))
	}
	for i := range pts {
		if !gdone[i] {
			t.Fatalf("grid cell %d incomplete", i)
		}
		want, err := EncodeCellResult(direct[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := EncodeCellResult(pts[i])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("cell %d differs:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestGridResumeNoRerun pins resume semantics: a grid interrupted
// mid-run and reopened with Resume re-runs only the unfinished cells —
// completed cells replay from the journal — and the merged CSV is
// byte-identical to an uninterrupted run.
func TestGridResumeNoRerun(t *testing.T) {
	cfg := smallGrid()
	cells := GridCells(cfg)

	// Reference: uninterrupted run with the same fake cells.
	var mu sync.Mutex
	refRuns := map[int]int{}
	refPath := filepath.Join(t.TempDir(), "ref.jsonl")
	refGrid, err := OpenGrid(refPath, cfg, GridOptions{Workers: 1, runCell: fakeCells(t, refRuns, &mu, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if err := refGrid.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if _, err := refGrid.EmitCSV(&refCSV, nil); err != nil {
		t.Fatal(err)
	}
	refGrid.Close()

	// Interrupted run: sequential workers, the third cell aborts the ctx
	// (standing in for the process being killed mid-cell).
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	runs := map[int]int{}
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	killAt := 2
	grid1, err := OpenGrid(path, cfg, GridOptions{
		Workers: 1,
		runCell: fakeCells(t, runs, &mu, func(ctx context.Context, c GridCell) error {
			if c.Index == killAt {
				cancel1()
				return fmt.Errorf("cell stopped: %w", ctx.Err())
			}
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := grid1.Run(ctx1); err == nil {
		t.Fatal("interrupted run should report an error")
	}
	_, done1, err := grid1.Collect()
	if err != nil {
		t.Fatal(err)
	}
	grid1.Close()
	if !done1[0] || !done1[1] || done1[killAt] {
		t.Fatalf("first run done bitmap: %v", done1)
	}

	// Resume: only unfinished cells run.
	grid2, err := OpenGrid(path, cfg, GridOptions{
		Workers: 1, Resume: true,
		runCell: fakeCells(t, runs, &mu, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer grid2.Close()
	if err := grid2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, done2, err := grid2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if !done2[i] {
			t.Fatalf("cell %d incomplete after resume", i)
		}
		wantRuns := 1
		if i == killAt {
			wantRuns = 2 // the interrupted cell itself re-runs
		}
		if runs[i] != wantRuns {
			t.Fatalf("cell %d ran %d times, want %d (completed cells must not re-run)", i, runs[i], wantRuns)
		}
	}
	var gotCSV bytes.Buffer
	if _, err := grid2.EmitCSV(&gotCSV, nil); err != nil {
		t.Fatal(err)
	}
	if gotCSV.String() != refCSV.String() {
		t.Fatalf("resumed CSV differs from uninterrupted run:\n got:\n%s\nwant:\n%s", gotCSV.String(), refCSV.String())
	}
}

// TestGridRefusesMismatch pins the journal-vs-grid safety checks.
func TestGridRefusesMismatch(t *testing.T) {
	cfg := smallGrid()
	var mu sync.Mutex
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	g, err := OpenGrid(path, cfg, GridOptions{Workers: 1, runCell: fakeCells(t, map[int]int{}, &mu, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.Close()

	// Existing journal without Resume is refused.
	if _, err := OpenGrid(path, cfg, GridOptions{}); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("want already-exists refusal, got %v", err)
	}
	// Resume with a different grid is refused.
	other := cfg
	other.Seeds = []uint64{1, 2}
	if _, err := OpenGrid(path, other, GridOptions{Resume: true}); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("want different-sweep refusal, got %v", err)
	}
}

// TestGridFailedCellLowestIndexWins pins the deterministic error
// contract shared with runIndexedCtx.
func TestGridFailedCellLowestIndexWins(t *testing.T) {
	cfg := smallGrid()
	var mu sync.Mutex
	grid, err := OpenGrid("", cfg, GridOptions{
		Workers: 2,
		runCell: fakeCells(t, map[int]int{}, &mu, func(_ context.Context, c GridCell) error {
			if c.Index == 1 || c.Index == 3 {
				return fmt.Errorf("boom %d", c.Index)
			}
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer grid.Close()
	if err := grid.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "cell 1") {
		t.Fatalf("want lowest failing index in error, got %v", err)
	}
	pts, done, err := grid.Collect()
	if err == nil || !strings.Contains(err.Error(), "cell 1") {
		t.Fatalf("want lowest failing index from Collect, got %v", err)
	}
	if !done[0] || done[1] || !done[2] || done[3] {
		t.Fatalf("done bitmap: %v", done)
	}
	if len(FilterCompleted(pts, done)) != 2 {
		t.Fatalf("completed count: %d", len(FilterCompleted(pts, done)))
	}
}

// TestGridLeaseExpiryReclaims exercises the work-stealing path through
// the store underneath a grid: a claim that never heartbeats lapses and
// the cell is claimed again.
func TestGridLeaseExpiryReclaims(t *testing.T) {
	cfg := smallGrid()
	grid, err := OpenGrid("", cfg, GridOptions{Lease: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer grid.Close()
	st := grid.Store()
	first, ok := st.TryClaim("w-dead")
	if !ok {
		t.Fatal("claim failed")
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.ExpireLeases() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stolen, ok := st.TryClaim("w-live")
	if !ok || stolen.ID != first.ID || stolen.Attempts != 2 {
		t.Fatalf("steal: %+v ok=%v", stolen, ok)
	}
}
