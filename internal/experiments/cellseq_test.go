package experiments

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomSweepConfig builds an arbitrary SweepConfig, including degenerate
// shapes: empty axes (which withDefaults fills), single-cell grids, and
// duplicate axis values.
func randomSweepConfig(rng *rand.Rand) SweepConfig {
	algos := []string{"fcfs", "easy", "adaptive", "packed", "packed+easy"}
	var cfg SweepConfig
	if rng.Intn(4) > 0 { // 1 in 4 keeps the empty default
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			cfg.Algorithms = append(cfg.Algorithms, algos[rng.Intn(len(algos))])
		}
	}
	if rng.Intn(4) > 0 {
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			cfg.Shares = append(cfg.Shares, float64(rng.Intn(11))/10)
		}
	}
	if rng.Intn(4) > 0 {
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			cfg.Seeds = append(cfg.Seeds, rng.Uint64()%1000)
		}
	}
	if rng.Intn(2) == 0 {
		cfg.Jobs = 1 + rng.Intn(500)
	}
	if rng.Intn(2) == 0 {
		cfg.Nodes = 1 + rng.Intn(256)
	}
	return cfg
}

// TestCellSeqMatchesGridCells is the streamed-enumeration contract: for
// arbitrary configs, the cursor (Next and At), CellAt, and GridSize agree
// exactly — same cells, same canonical order, same indices — with the
// slurped GridCells slice.
func TestCellSeqMatchesGridCells(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		cfg := randomSweepConfig(rng)
		name := fmt.Sprintf("trial %d cfg %+v", trial, cfg)

		slurped := GridCells(cfg)
		if got := GridSize(cfg); got != len(slurped) {
			t.Fatalf("%s: GridSize = %d, len(GridCells) = %d", name, got, len(slurped))
		}
		seq := NewCellSeq(cfg)
		if seq.Size() != len(slurped) {
			t.Fatalf("%s: CellSeq.Size = %d, len(GridCells) = %d", name, seq.Size(), len(slurped))
		}
		for i, want := range slurped {
			got, ok := seq.Next()
			if !ok {
				t.Fatalf("%s: cursor exhausted at %d of %d", name, i, len(slurped))
			}
			if got != want {
				t.Fatalf("%s: cursor cell %d = %+v, want %+v", name, i, got, want)
			}
			if at := CellAt(cfg, i); at != want {
				t.Fatalf("%s: CellAt(%d) = %+v, want %+v", name, i, at, want)
			}
			if at := seq.At(i); at != want {
				t.Fatalf("%s: seq.At(%d) = %+v, want %+v", name, i, at, want)
			}
			if want.Index != i {
				t.Fatalf("%s: cell %d carries Index %d", name, i, want.Index)
			}
		}
		if c, ok := seq.Next(); ok {
			t.Fatalf("%s: cursor yielded %+v past the end", name, c)
		}
		if c, ok := seq.Next(); ok { // stays exhausted
			t.Fatalf("%s: exhausted cursor revived with %+v", name, c)
		}
	}
}

// TestCellSeqSingleCell pins the smallest possible grid end to end.
func TestCellSeqSingleCell(t *testing.T) {
	cfg := SweepConfig{Algorithms: []string{"fcfs"}, Shares: []float64{0.5}, Seeds: []uint64{7}, Jobs: 3, Nodes: 8}
	if n := GridSize(cfg); n != 1 {
		t.Fatalf("GridSize = %d, want 1", n)
	}
	want := GridCell{Index: 0, Algorithm: "fcfs", Share: 0.5, Seed: 7, Jobs: 3, Nodes: 8}
	if got := CellAt(cfg, 0); got != want {
		t.Fatalf("CellAt = %+v, want %+v", got, want)
	}
	seq := NewCellSeq(cfg)
	c, ok := seq.Next()
	if !ok || c != want {
		t.Fatalf("Next = %+v, %v; want %+v, true", c, ok, want)
	}
	if _, ok := seq.Next(); ok {
		t.Fatal("single-cell cursor not exhausted after one cell")
	}
}
