package experiments

import (
	"runtime"
	"sync"
)

// Simulations within an experiment grid are independent: each cell builds
// its own workload, platform, and engine from value parameters, so cells
// can run on separate goroutines without sharing mutable state. runIndexed
// is the worker-pool driver all grid experiments (Sweep, the E-series
// drivers, the ablations) fan out through. Results land in a slice indexed
// by cell, so the output order — and every simulated value in it — is
// bit-identical to a sequential run regardless of scheduling.

// resolveWorkers maps a worker-count knob to an effective pool size:
// 0 means one worker per CPU, and the pool never exceeds the cell count.
func resolveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// runIndexed evaluates fn(0..n-1) on a pool of workers and returns the
// results in index order. Errors are deterministic too: the error from the
// lowest failing index wins, however the goroutines interleave. With
// workers <= 1 (or a single cell) everything runs inline on the caller's
// goroutine.
func runIndexed[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers = resolveWorkers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			var err error
			if out[i], err = fn(i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
