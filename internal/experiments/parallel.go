package experiments

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Simulations within an experiment grid are independent: each cell builds
// its own workload, platform, and engine from value parameters, so cells
// can run on separate goroutines without sharing mutable state. runIndexed
// is the worker-pool driver all grid experiments (Sweep, the E-series
// drivers, the ablations) fan out through. Results land in a slice indexed
// by cell, so the output order — and every simulated value in it — is
// bit-identical to a sequential run regardless of scheduling.

// resolveWorkers maps a worker-count knob to an effective pool size:
// 0 means one worker per CPU, and the pool never exceeds the cell count.
func resolveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// runIndexed evaluates fn(0..n-1) on a pool of workers and returns the
// results in index order. Errors are deterministic too: the error from the
// lowest failing index wins, however the goroutines interleave. With
// workers <= 1 (or a single cell) everything runs inline on the caller's
// goroutine.
func runIndexed[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out, _, err := runIndexedCtx(context.Background(), workers, n,
		func(_ context.Context, i int) (T, error) { return fn(i) })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runIndexedCtx is runIndexed with cooperative cancellation: once ctx is
// done no further cell is dispatched, and in-flight cells receive the ctx
// so they can stop mid-simulation. It returns the per-cell results, a
// bitmap of cells that completed without error, and the first real error
// in index order. Cell errors caused by the cancellation itself (errors
// wrapping ctx.Err()) are attributed to the cancellation, not the cell:
// when no cell genuinely failed, the returned error is ctx.Err() — nil
// for a run that was never cancelled. Completed cells in the result slice
// stay valid either way, so callers can flush partial grids.
func runIndexedCtx[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, []bool, error) {
	out := make([]T, n)
	done := make([]bool, n)
	if n == 0 {
		return out, done, ctx.Err()
	}
	errs := make([]error, n)
	workers = resolveWorkers(workers, n)
	if workers <= 1 {
		for i := 0; i < n && ctx.Err() == nil; i++ {
			out[i], errs[i] = fn(ctx, i)
			done[i] = errs[i] == nil
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					out[i], errs[i] = fn(ctx, i)
					done[i] = errs[i] == nil
				}
			}()
		}
	dispatch:
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(next)
		wg.Wait()
	}
	cancelled := ctx.Err()
	for _, err := range errs {
		if err != nil && !(cancelled != nil && errors.Is(err, cancelled)) {
			return out, done, err
		}
	}
	return out, done, cancelled
}

// FilterCompleted merges a partial grid deterministically: it keeps the
// entries whose done bit is set, in cell-index order — never in worker
// completion order. This is the single merge path for every partial
// flush (interrupted sweeps, resumed journals, distributed grids), so
// the emitted rows for any given completed set are byte-identical no
// matter which workers finished which cells first.
func FilterCompleted[T any](pts []T, done []bool) []T {
	out := pts[:0:0]
	for i, d := range done {
		if d {
			out = append(out, pts[i])
		}
	}
	return out
}
