//go:build race

package experiments

// raceEnabled reports that this binary was built with the race detector;
// the large-grid smoke skips itself there (it is a memory pin, not a
// concurrency test, and 50k journaled cells under race take minutes).
const raceEnabled = true
