package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/elastisim"
	"repro/internal/job"
)

// SweepPoint is one cell of a parameter-grid study.
type SweepPoint struct {
	Algorithm      string
	MalleableShare float64
	Seed           uint64
	Jobs           int
	Summary        elastisim.Summary
	Events         uint64
	WallMillis     int64
	// Snapshot is the cell's self-profiling telemetry (kernel, solver,
	// scheduler counters). Everything except the wall/heap fields is
	// deterministic across worker counts.
	Snapshot elastisim.TelemetrySnapshot
}

// AggregateSnapshots sums the per-cell telemetry snapshots in grid order.
// Because cells land in a slice indexed by cell, the aggregate (after
// StripWall) is bit-identical for any worker count.
func AggregateSnapshots(pts []SweepPoint) elastisim.TelemetrySnapshot {
	var agg elastisim.TelemetrySnapshot
	for _, p := range pts {
		agg.Add(p.Snapshot)
	}
	return agg
}

// SweepConfig spans the grid. Zero-valued fields get defaults matching the
// standard experiment machine.
type SweepConfig struct {
	// Algorithms by registry name (default: fcfs, easy, adaptive).
	Algorithms []string
	// Shares of malleable jobs (default: 0, 0.5, 1).
	Shares []float64
	// Seeds for workload generation (default: 1).
	Seeds []uint64
	// Jobs per run (default 100).
	Jobs int
	// Nodes is the machine size (default 128).
	Nodes int
	// Workers caps how many grid cells run concurrently: 0 means one per
	// CPU, 1 forces sequential execution. Cells are independent
	// simulations, so every simulated value is bit-identical across
	// worker counts; only wall-clock measurements vary.
	Workers int
	// OnCellDone, when set, is called once per finished grid cell, possibly
	// from concurrent worker goroutines (progress reporting hook).
	OnCellDone func()
}

func (c *SweepConfig) withDefaults() SweepConfig {
	out := *c
	if len(out.Algorithms) == 0 {
		out.Algorithms = []string{"fcfs", "easy", "adaptive"}
	}
	if len(out.Shares) == 0 {
		out.Shares = []float64{0, 0.5, 1}
	}
	if len(out.Seeds) == 0 {
		out.Seeds = []uint64{1}
	}
	if out.Jobs <= 0 {
		out.Jobs = 100
	}
	if out.Nodes <= 0 {
		out.Nodes = stdNodes
	}
	return out
}

// GridCell is one addressable cell of a sweep grid: the full parameter
// set needed to run it anywhere — in-process, after a resume, or on a
// remote worker that never saw the SweepConfig. Index is the cell's
// position in canonical grid order, which is what keeps merged output
// deterministic regardless of completion order. GridCell is comparable
// and JSON-round-trippable, so it doubles as the distwork payload of
// journaled and distributed sweeps.
type GridCell struct {
	Index     int     `json:"index"`
	Algorithm string  `json:"algorithm"`
	Share     float64 `json:"share"`
	Seed      uint64  `json:"seed"`
	Jobs      int     `json:"jobs"`
	Nodes     int     `json:"nodes"`
}

// GridSize returns the number of cells in cfg's grid without
// materializing any of them.
func GridSize(cfg SweepConfig) int {
	cfg = cfg.withDefaults()
	return len(cfg.Seeds) * len(cfg.Shares) * len(cfg.Algorithms)
}

// CellAt returns cell i of cfg's grid — canonical order: seed-major, then
// share, then algorithm — by O(1) index arithmetic. It is the random-access
// form of the cursor: CellAt(cfg, i) equals GridCells(cfg)[i] for every
// valid i, which is what lets million-cell grids be enumerated, resumed,
// and journaled without ever holding the cell slice on the heap. i must be
// in [0, GridSize(cfg)).
func CellAt(cfg SweepConfig, i int) GridCell {
	return cellAt(cfg.withDefaults(), i)
}

// cellAt is CellAt for a cfg whose defaults are already applied.
func cellAt(cfg SweepConfig, i int) GridCell {
	na, ns := len(cfg.Algorithms), len(cfg.Shares)
	return GridCell{
		Index:     i,
		Algorithm: cfg.Algorithms[i%na],
		Share:     cfg.Shares[(i/na)%ns],
		Seed:      cfg.Seeds[i/(na*ns)],
		Jobs:      cfg.Jobs,
		Nodes:     cfg.Nodes,
	}
}

// CellSeq is a deterministic streaming cursor over a sweep grid in
// canonical order. It holds the (defaults-applied) config and a position —
// O(1) memory regardless of grid size — and yields exactly the cells
// GridCells would have materialized, in the same order.
type CellSeq struct {
	cfg  SweepConfig
	next int
	size int
}

// NewCellSeq positions a cursor at cfg's first cell.
func NewCellSeq(cfg SweepConfig) *CellSeq {
	cfg = cfg.withDefaults()
	return &CellSeq{cfg: cfg, size: len(cfg.Seeds) * len(cfg.Shares) * len(cfg.Algorithms)}
}

// Size returns the total number of cells the cursor spans.
func (s *CellSeq) Size() int { return s.size }

// Next yields the next cell in canonical order; ok is false once the grid
// is exhausted.
func (s *CellSeq) Next() (cell GridCell, ok bool) {
	if s.next >= s.size {
		return GridCell{}, false
	}
	c := cellAt(s.cfg, s.next)
	s.next++
	return c, true
}

// At returns cell i without moving the cursor.
func (s *CellSeq) At(i int) GridCell { return cellAt(s.cfg, i) }

// GridCells enumerates cfg's grid in canonical order: seed-major, then
// share, then algorithm — the row order of the emitted CSV. It slurps the
// whole grid into a slice; million-cell callers should stream with
// NewCellSeq / CellAt instead.
func GridCells(cfg SweepConfig) []GridCell {
	seq := NewCellSeq(cfg)
	cells := make([]GridCell, 0, seq.Size())
	for c, ok := seq.Next(); ok; c, ok = seq.Next() {
		cells = append(cells, c)
	}
	return cells
}

// RunCell executes one grid cell: generate the cell's workload, simulate
// it, and summarize. Cells are self-contained — every simulated value is
// a pure function of the GridCell — which is what makes sweep output
// bit-identical across worker counts, process restarts, and machines.
func RunCell(ctx context.Context, c GridCell) (SweepPoint, error) {
	algo, err := elastisim.NewAlgorithm(c.Algorithm)
	if err != nil {
		return SweepPoint{}, err
	}
	shares := map[job.Type]float64{}
	if c.Share < 1 {
		shares[job.Rigid] = 1 - c.Share
	}
	if c.Share > 0 {
		shares[job.Malleable] = c.Share
	}
	wl, err := elastisim.GenerateWorkload(elastisim.WorkloadConfig{
		Name: "sweep", Seed: c.Seed, Count: c.Jobs,
		Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: float64(c.Nodes) / 2304.0},
		Nodes:        [2]int{2, min(64, c.Nodes)},
		MachineNodes: c.Nodes,
		NodeSpeed:    stdNodeSpeed,
		TypeShares:   shares,
	})
	if err != nil {
		return SweepPoint{}, err
	}
	s, err := elastisim.NewSession(elastisim.Config{
		Platform:  StandardPlatform(c.Nodes),
		Workload:  wl,
		Algorithm: algo,
	})
	if err != nil {
		return SweepPoint{}, fmt.Errorf("sweep cell (%s, %.2f, %d): %w", c.Algorithm, c.Share, c.Seed, err)
	}
	res, err := s.Run(ctx)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("sweep cell (%s, %.2f, %d): %w", c.Algorithm, c.Share, c.Seed, err)
	}
	return SweepPoint{
		Algorithm:      c.Algorithm,
		MalleableShare: c.Share,
		Seed:           c.Seed,
		Jobs:           c.Jobs,
		Summary:        res.Summary,
		Events:         res.Events,
		WallMillis:     res.WallClock.Milliseconds(),
		Snapshot:       res.Telemetry,
	}, nil
}

// Sweep runs the full grid: every algorithm on every (share, seed)
// workload. Cells are independent simulations fanned across the worker
// pool (cfg.Workers); the returned points are in grid order and
// bit-identical to a sequential run.
func Sweep(cfg SweepConfig) ([]SweepPoint, error) {
	pts, _, err := SweepContext(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// SweepContext is Sweep with cooperative cancellation. Once ctx is done,
// no further cell starts and in-flight simulations stop between events
// (each cell runs through an elastisim.Session driven by ctx). It returns
// every point computed so far — cells that completed are valid in grid
// order, the done bitmap says which — plus ctx.Err() when the sweep was
// cut short, so callers can flush partial grids on interrupt.
func SweepContext(ctx context.Context, cfg SweepConfig) ([]SweepPoint, []bool, error) {
	cfg = cfg.withDefaults()
	size := len(cfg.Seeds) * len(cfg.Shares) * len(cfg.Algorithms)
	return runIndexedCtx(ctx, cfg.Workers, size, func(ctx context.Context, i int) (SweepPoint, error) {
		p, err := RunCell(ctx, cellAt(cfg, i))
		if err == nil && cfg.OnCellDone != nil {
			cfg.OnCellDone()
		}
		return p, err
	})
}

// EncodeCellResult canonicalizes a cell's result for the sweep journal
// (and the distributed finish call): wall-clock and memory measurements
// are zeroed — WallMillis and the snapshot's wall/heap fields are the
// only machine-dependent values in a SweepPoint — so the encoding, and
// therefore every resumed or distributed sweep's CSV, is a pure function
// of the grid cell. json.Marshal is deterministic (fixed field order,
// sorted map keys), which makes "byte-identical to an uninterrupted
// sequential run" an invariant rather than an aspiration.
func EncodeCellResult(p SweepPoint) (string, error) {
	p.WallMillis = 0
	p.Snapshot = p.Snapshot.StripWall()
	data, err := json.Marshal(p)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// DecodeCellResult parses a result produced by EncodeCellResult.
func DecodeCellResult(s string) (SweepPoint, error) {
	var p SweepPoint
	if err := json.Unmarshal([]byte(s), &p); err != nil {
		return SweepPoint{}, fmt.Errorf("decoding cell result: %w", err)
	}
	return p, nil
}

// WriteSweepCSV emits the grid as CSV for external analysis.
func WriteSweepCSV(w io.Writer, pts []SweepPoint) error {
	if err := writeSweepCSVHeader(w); err != nil {
		return err
	}
	for _, p := range pts {
		if err := writeSweepCSVRow(w, p); err != nil {
			return err
		}
	}
	return nil
}

func writeSweepCSVHeader(w io.Writer) error {
	_, err := fmt.Fprintln(w, "algorithm,malleable_share,seed,jobs,makespan,utilization,mean_wait,p95_wait,mean_turnaround,mean_slowdown,reconfigs,completed,killed,sim_events,wall_ms")
	return err
}

func writeSweepCSVRow(w io.Writer, p SweepPoint) error {
	s := p.Summary
	_, err := fmt.Fprintf(w, "%s,%g,%d,%d,%g,%g,%g,%g,%g,%g,%d,%d,%d,%d,%d\n",
		p.Algorithm, p.MalleableShare, p.Seed, p.Jobs,
		s.Makespan, s.Utilization, s.MeanWait, s.P95Wait, s.MeanTurnaround,
		s.MeanSlowdown, s.Reconfigs, s.Completed, s.Killed, p.Events, p.WallMillis)
	return err
}
