package experiments

import (
	"fmt"

	"repro/elastisim"
	"repro/internal/fluid"
	"repro/internal/job"
	"repro/internal/sched"
)

// AblationInvocation compares scheduler invocation strategies on the same
// 50% malleable workload: event-driven (the default), and periodic-only at
// two intervals. Event-driven reacts instantly to completions and
// scheduling points; coarse periodic invocation leaves nodes idle between
// ticks.
func AblationInvocation(seed uint64, count int) (*Table, error) {
	wlGen := func() (*elastisim.Workload, error) { return standardWorkload(seed, count, 0.5) }
	t := &Table{
		ID:     "A1",
		Title:  "ablation: scheduler invocation strategy (adaptive policy)",
		Header: []string{"strategy", "makespan", "mean_wait", "utilization", "invocations"},
	}
	run := func(name string, opts elastisim.Options) error {
		wl, err := wlGen()
		if err != nil {
			return err
		}
		res, err := mustRun(elastisim.Config{
			Platform:  StandardPlatform(stdNodes),
			Workload:  wl,
			Algorithm: elastisim.NewAdaptive(),
			Options:   opts,
		})
		if err != nil {
			return err
		}
		s := res.Summary
		t.AddRow(name, f1(s.Makespan), f1(s.MeanWait), pct(s.Utilization),
			fmt.Sprintf("%d", res.Invocations))
		return nil
	}
	if err := run("event-driven", elastisim.Options{}); err != nil {
		return nil, err
	}
	if err := run("periodic 30s", elastisim.Options{InvocationInterval: 30, DisableEventDriven: true}); err != nil {
		return nil, err
	}
	if err := run("periodic 300s", elastisim.Options{InvocationInterval: 300, DisableEventDriven: true}); err != nil {
		return nil, err
	}
	t.AddNote("event-driven invocation dominates; coarse periodic ticks waste capacity between events")
	return t, nil
}

// AblationFairness compares max–min fair sharing against naive equal
// splitting of contended resources on a microbenchmark where the policies
// visibly diverge: a 1-node reader (bound by its 10 GB/s injection link)
// and a 16-node reader share the 80 GB/s PFS. Max–min gives the narrow
// job its link limit (10 GB/s) and the rest (70 GB/s) to the wide job;
// equal split caps both at 40 GB/s, stranding PFS bandwidth the narrow
// job can never use.
func AblationFairness(seed uint64, count int) (*Table, error) {
	_ = seed // the microbenchmark is deterministic
	_ = count
	mk := func(id int, nodes int, bytes string) *elastisim.Job {
		return &elastisim.Job{
			ID: job.ID(id), Type: elastisim.Rigid, NumNodes: nodes,
			App: &elastisim.Application{Phases: []elastisim.Phase{{
				Tasks: []elastisim.Task{{Kind: job.TaskRead, Model: job.MustExprModel(bytes), Target: job.TargetPFS}},
			}}},
		}
	}
	t := &Table{
		ID:     "A2",
		Title:  "ablation: contended-resource sharing policy (PFS microbenchmark)",
		Header: []string{"sharing", "narrow_read_s", "wide_read_s", "agg_pfs_GBps"},
	}
	for _, mode := range []fluid.Fairness{fluid.MaxMin, fluid.EqualSplit} {
		// Narrow: 1 node, 40 GB (link-bound at 10 GB/s -> 4 s either way).
		// Wide: 16 nodes, 280 GB (max-min: 70 GB/s -> 4 s; equal split:
		// 40 GB/s -> 7 s, then the remainder alone).
		wl := &elastisim.Workload{Jobs: []*elastisim.Job{
			mk(0, 1, "40G"), mk(1, 16, "280G"),
		}}
		wl.Sort()
		res, err := mustRun(elastisim.Config{
			Platform:  StandardPlatform(stdNodes),
			Workload:  wl,
			Algorithm: elastisim.NewFCFS(),
			Options:   elastisim.Options{Fairness: mode},
		})
		if err != nil {
			return nil, err
		}
		narrow, wide := res.Records[0].Runtime(), res.Records[1].Runtime()
		agg := (40.0 + 280.0) / res.Summary.Makespan
		t.AddRow(mode.String(), f2(narrow), f2(wide), f1(agg))
	}
	t.AddNote("equal split strands PFS bandwidth behind the narrow job's link bottleneck; max-min hands it to the wide reader")
	return t, nil
}

// AblationMoldable compares moldable sizing policies on an all-moldable
// workload under EASY: requested size, minimum, maximum, and the
// efficiency-bounded analytic sizer (largest size with >= 70% parallel
// efficiency). Oversizing wastes capacity on Amdahl-limited jobs;
// undersizing stretches runtimes.
func AblationMoldable(seed uint64, count int) (*Table, error) {
	gen := func() (*elastisim.Workload, error) {
		return elastisim.GenerateWorkload(elastisim.WorkloadConfig{
			Name: "moldable", Seed: seed, Count: count,
			Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 1.0 / 18},
			Nodes:        [2]int{2, 64},
			MachineNodes: stdNodes,
			NodeSpeed:    stdNodeSpeed,
			TypeShares:   map[job.Type]float64{job.Moldable: 1},
		})
	}
	ref := job.PlatformRef{
		NodeSpeed:  stdNodeSpeed,
		LinkBW:     stdLinkBW,
		PFSReadBW:  stdPFSRead,
		PFSWriteBW: stdPFSWrite,
		BBReadBW:   4e9,
		BBWriteBW:  4e9,
	}
	t := &Table{
		ID:     "A3",
		Title:  "ablation: moldable sizing policy (all-moldable workload, EASY)",
		Header: []string{"sizing", "makespan", "mean_turnaround", "mean_wait", "utilization"},
	}
	policies := []struct {
		name string
		algo elastisim.Algorithm
	}{
		{"requested", &sched.EASY{Sizing: sched.SizeRequested}},
		{"minimum", &sched.EASY{Sizing: sched.SizeMin}},
		{"maximum", &sched.EASY{Sizing: sched.SizeMax}},
		{"efficiency>=0.7", &sched.EASY{SizeFn: sched.EfficiencySizer(ref, 0.7)}},
	}
	for _, p := range policies {
		wl, err := gen()
		if err != nil {
			return nil, err
		}
		res, err := mustRun(elastisim.Config{
			Platform:  StandardPlatform(stdNodes),
			Workload:  wl,
			Algorithm: p.algo,
		})
		if err != nil {
			return nil, err
		}
		s := res.Summary
		t.AddRow(p.name, f1(s.Makespan), f1(s.MeanTurnaround), f1(s.MeanWait), pct(s.Utilization))
	}
	t.AddNote("the analytic efficiency bound sizes Amdahl-limited jobs where extra nodes still pay off")
	return t, nil
}

// AblationFairShare compares FCFS against fair-share scheduling on a
// workload where one account floods the queue and three others submit
// lightly: per-user mean waits should converge under fair share.
func AblationFairShare(seed uint64, count int) (*Table, error) {
	gen := func() (*elastisim.Workload, error) {
		wl, err := elastisim.GenerateWorkload(elastisim.WorkloadConfig{
			Name: "users", Seed: seed, Count: count,
			Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 1.0 / 12},
			Nodes:        [2]int{2, 32},
			MachineNodes: stdNodes,
			NodeSpeed:    stdNodeSpeed,
			Users:        4,
		})
		if err != nil {
			return nil, err
		}
		// Make user0 the hog: two thirds of all jobs.
		for i, j := range wl.Jobs {
			if i%3 != 0 {
				j.User = "user0"
			}
		}
		return wl, nil
	}
	t := &Table{
		ID:     "A4",
		Title:  "ablation: fair-share scheduling under a flooding user",
		Header: []string{"algorithm", "wait_hog", "wait_others", "others/hog", "makespan"},
	}
	for _, name := range []string{"fcfs", "easy", "fairshare"} {
		algo, err := elastisim.NewAlgorithm(name)
		if err != nil {
			return nil, err
		}
		wl, err := gen()
		if err != nil {
			return nil, err
		}
		res, err := mustRun(elastisim.Config{
			Platform:  StandardPlatform(stdNodes),
			Workload:  wl,
			Algorithm: algo,
		})
		if err != nil {
			return nil, err
		}
		var hogSum, otherSum float64
		var hogN, otherN int
		for _, r := range res.Records {
			if r.Start < 0 || r.End < 0 {
				continue
			}
			if r.User == "user0" {
				hogSum += r.Wait()
				hogN++
			} else {
				otherSum += r.Wait()
				otherN++
			}
		}
		hog, others := hogSum/float64(maxi(hogN, 1)), otherSum/float64(maxi(otherN, 1))
		ratio := 0.0
		if hog > 0 {
			ratio = others / hog
		}
		t.AddRow(name, f1(hog), f1(others), f2(ratio), f1(res.Summary.Makespan))
	}
	t.AddNote("fair share pushes the light users' waits well below the hog's (ratio falls)")
	return t, nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AblationFastPath measures the dedicated-resource fast path: work on
// job-private resources (own nodes, links, node-local buffers) has a
// closed-form duration and can bypass the fluid solver without changing
// any result (equivalence is proven by the engine's property tests).
// The table reports simulator wall-clock with the fast path on and off.
func AblationFastPath(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "A5",
		Title:  "ablation: dedicated-resource fast path (simulator performance)",
		Header: []string{"nodes", "jobs", "mode", "wall_ms", "events_per_s", "sim_makespan"},
	}
	for _, scale := range []struct{ nodes, jobs int }{{256, 200}, {1024, 400}} {
		for _, disable := range []bool{false, true} {
			wl, err := elastisim.GenerateWorkload(elastisim.WorkloadConfig{
				Name: "fp", Seed: seed, Count: scale.jobs,
				Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: float64(scale.nodes) / 1200.0},
				Nodes:        [2]int{1, 64},
				MachineNodes: scale.nodes,
				NodeSpeed:    stdNodeSpeed,
				TypeShares:   map[job.Type]float64{job.Rigid: 0.5, job.Malleable: 0.5},
			})
			if err != nil {
				return nil, err
			}
			res, err := mustRun(elastisim.Config{
				Platform:  StandardPlatform(scale.nodes),
				Workload:  wl,
				Algorithm: elastisim.NewAdaptive(),
				Options:   elastisim.Options{DisableFastPath: disable},
			})
			if err != nil {
				return nil, err
			}
			mode := "fast-path"
			if disable {
				mode = "full-fluid"
			}
			t.AddRow(fmt.Sprintf("%d", scale.nodes), fmt.Sprintf("%d", scale.jobs), mode,
				fmt.Sprintf("%d", res.WallClock.Milliseconds()),
				fmt.Sprintf("%.0f", float64(res.Events)/res.WallClock.Seconds()),
				f1(res.Summary.Makespan))
		}
	}
	t.AddNote("identical simulation results (see TestFastPathEquivalence); only wall-clock differs")
	return t, nil
}
