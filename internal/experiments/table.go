// Package experiments contains the drivers that regenerate every table and
// figure of the reconstructed evaluation (E1–E8 in DESIGN.md), plus the
// design-choice ablations. The same drivers back `cmd/expreport` and the
// root-level benchmarks, so the numbers in EXPERIMENTS.md are reproducible
// with either tool.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "E2").
	ID string
	// Title describes the paper artefact the table reconstructs.
	Title string
	// Header and Rows hold the tabular data.
	Header []string
	Rows   [][]string
	// Notes carry qualitative observations (the "shape" checks).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a qualitative note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// Markdown renders the table as GitHub-flavored markdown (for
// EXPERIMENTS.md generation).
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n> %s\n", n)
	}
	sb.WriteString("\n")
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
