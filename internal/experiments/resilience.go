package experiments

import (
	"fmt"

	"repro/elastisim"
	"repro/internal/job"
)

// E10 failure-model constants: repairs take ten minutes on average, and
// the stochastic streams derive from a fixed offset of the workload seed
// so the outage pattern is reproducible per seed but independent of it.
const (
	e10MTTR     = 600.0
	e10SeedSalt = 0x9e3779b9
)

// e10Workload is the shared resilience workload: fully malleable (so the
// recovery policy is the only knob between the two arms) with the given
// checkpoint-interval expression ("" = no checkpoints).
func e10Workload(seed uint64, count int, ckpt string) (*elastisim.Workload, error) {
	return elastisim.GenerateWorkload(elastisim.WorkloadConfig{
		Name:               "resilience",
		Seed:               seed,
		Count:              count,
		Arrival:            job.Arrival{Kind: job.ArrivalPoisson, Rate: 1.0 / 18},
		Nodes:              [2]int{2, 64},
		MachineNodes:       stdNodes,
		NodeSpeed:          stdNodeSpeed,
		TypeShares:         map[job.Type]float64{job.Malleable: 1},
		CheckpointInterval: ckpt,
	})
}

func e10Run(seed uint64, count int, ckpt string, mtbf float64, rec elastisim.RecoveryPolicy, maxRequeues int) (*elastisim.Result, error) {
	wl, err := e10Workload(seed, count, ckpt)
	if err != nil {
		return nil, err
	}
	cfg := elastisim.Config{
		Platform:  StandardPlatform(stdNodes),
		Workload:  wl,
		Algorithm: elastisim.NewAdaptive(),
	}
	if mtbf > 0 {
		cfg.Failures = &elastisim.FailureSpec{
			Model:       elastisim.FailureWeibull,
			Seed:        seed + e10SeedSalt,
			MTBF:        elastisim.Quantity(mtbf),
			MTTR:        e10MTTR,
			Recovery:    rec,
			MaxRequeues: maxRequeues,
		}
	}
	return mustRun(cfg)
}

// E10Resilience reconstructs the failure-aware comparison: the same fully
// malleable workload under Weibull node failures, recovered either by
// shrinking through the failure (graceful degradation) or by killing and
// requeueing from the last checkpoint. At short MTBF shrink wastes less
// work (only the interrupted iteration) and keeps the machine busier, so
// it wins on badput and makespan; as MTBF grows the arms converge on the
// failure-free schedule. A second sweep varies the checkpoint interval at
// the shortest MTBF: coarser checkpoints mean more work redone per kill.
func E10Resilience(seed uint64, count int) (*Table, map[string]*elastisim.Result, error) {
	t := &Table{
		ID:     "E10",
		Title:  "resilience under node failures: shrink-through-failure vs kill-and-requeue",
		Header: []string{"mtbf_s", "ckpt_s", "recovery", "makespan", "badput_nh", "requeues", "failed", "availability"},
	}
	results := map[string]*elastisim.Result{}
	const stdCkpt = "300"
	policies := []elastisim.RecoveryPolicy{elastisim.RecoverShrink, elastisim.RecoverRequeue}

	addRow := func(mtbfLabel, ckptLabel string, rec elastisim.RecoveryPolicy, res *elastisim.Result) {
		s := res.Summary
		t.AddRow(mtbfLabel, ckptLabel, string(rec),
			f1(s.Makespan), f2(s.BadputNodeSeconds/3600),
			fmt.Sprintf("%d", s.Requeues), fmt.Sprintf("%d", s.FailedNode),
			pct(s.Availability))
	}

	// Both sweeps flatten into one cell list so the worker pool sees all
	// eleven independent runs at once; rows are still emitted in the
	// original order afterwards.
	//
	// MTBF sweep at a fixed checkpoint interval. MTBF 0 disables failures
	// entirely — the MTBF -> infinity limit, where both arms must agree.
	// Resubmission is unbounded here: a terminally failed job would drop
	// its remaining work and bias the makespan comparison.
	type cell struct {
		key, mtbfLabel, ckptLabel string
		ckpt                      string
		mtbf                      float64
		rec                       elastisim.RecoveryPolicy
		maxRequeues               int
	}
	var cells []cell
	for _, mtbf := range []float64{6000, 24000, 96000, 0} {
		label := f1(mtbf)
		if mtbf == 0 {
			label = "inf"
		}
		for _, rec := range policies {
			cells = append(cells, cell{
				key: fmt.Sprintf("mtbf=%s/%s", label, rec), mtbfLabel: label,
				ckptLabel: stdCkpt, ckpt: stdCkpt, mtbf: mtbf, rec: rec, maxRequeues: 1 << 20,
			})
		}
	}
	// Checkpoint-interval sweep at the shortest MTBF under the requeue
	// policy, where checkpoint density directly bounds the badput. The
	// default requeue budget applies: with coarse or missing checkpoints,
	// big jobs restart from too far back, fail again before finishing,
	// and eventually exhaust their resubmissions (the "failed" column) —
	// unbounded they would livelock.
	for _, ckpt := range []string{"60", "1800", ""} {
		label := ckpt
		if ckpt == "" {
			label = "none"
		}
		cells = append(cells, cell{
			key: "ckpt=" + label, mtbfLabel: f1(6000), ckptLabel: label,
			ckpt: ckpt, mtbf: 6000, rec: elastisim.RecoverRequeue, maxRequeues: 0,
		})
	}
	runs, err := runIndexed(0, len(cells), func(i int) (*elastisim.Result, error) {
		c := cells[i]
		return e10Run(seed, count, c.ckpt, c.mtbf, c.rec, c.maxRequeues)
	})
	if err != nil {
		return nil, nil, err
	}
	for i, res := range runs {
		results[cells[i].key] = res
		addRow(cells[i].mtbfLabel, cells[i].ckptLabel, cells[i].rec, res)
	}

	shrink := results["mtbf=6000.0/shrink"].Summary
	requeue := results["mtbf=6000.0/requeue"].Summary
	t.AddNote("MTBF 6000 s: shrink beats requeue on badput (%s vs %s node-hours) and makespan (%s vs %s)",
		f2(shrink.BadputNodeSeconds/3600), f2(requeue.BadputNodeSeconds/3600),
		f1(shrink.Makespan), f1(requeue.Makespan))
	inf0 := results["mtbf=inf/shrink"].Summary
	inf1 := results["mtbf=inf/requeue"].Summary
	t.AddNote("MTBF -> inf: both arms collapse onto the failure-free schedule (makespan %s = %s)",
		f1(inf0.Makespan), f1(inf1.Makespan))
	return t, results, nil
}
