package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/distwork"
	"repro/internal/obs"
)

// The journaled grid runner puts a sweep's cells through the same
// work-distribution core as elastisimd's job queue: every cell is a
// distwork task, every completion is journaled with its canonical
// encoded result, and a killed sweep reopened with Resume picks up at
// the first incomplete cell — completed cells replay from the journal
// and never re-run. The same store serves the distributed mode: a
// coordinator leases cells to HTTP workers (internal/httpapi.LeaseAPI)
// instead of a local pool, with lease expiry returning a dead worker's
// cells to the pool for the survivors to steal.

// GridOptions tunes a journaled grid run.
type GridOptions struct {
	// Workers sizes the local pool for Run (0 = one per CPU).
	Workers int
	// Lease is the claim lease for cells (default 1m: cells are minutes-
	// scale at most, and a dead worker's cells should requeue quickly).
	Lease time.Duration
	// Resume permits opening a journal that already has entries. Without
	// it, an existing journal is an error — refusing to silently append a
	// new sweep onto an old one.
	Resume bool
	// Metrics/Flight attach observability (sweep_* series).
	Metrics *obs.Registry
	Flight  *obs.FlightRecorder
	// OnCellDone, when set, is called once per newly finished cell,
	// possibly from concurrent worker goroutines.
	OnCellDone func()

	// runCell overrides cell execution (tests: fake slow/failing cells).
	runCell func(ctx context.Context, c GridCell) (SweepPoint, error)
}

func (o GridOptions) withDefaults() GridOptions {
	if o.Lease <= 0 {
		o.Lease = time.Minute
	}
	if o.runCell == nil {
		o.runCell = RunCell
	}
	return o
}

// Grid is a sweep grid journaled through a distwork store.
type Grid struct {
	store *distwork.Store[GridCell]
	cells []GridCell
	opts  GridOptions
}

// gridStoreOptions is the one place the sweep specialization of the
// distwork core is configured; cells journal under ids c000001… with
// sweep_* metric families.
func gridStoreOptions(opts GridOptions) distwork.Options[GridCell] {
	return distwork.Options[GridCell]{
		Lease:        opts.Lease,
		Metrics:      opts.Metrics,
		Flight:       opts.Flight,
		MetricPrefix: "sweep",
		Noun:         "cell",
		FlightTopic:  "sweepgrid",
		IDPrefix:     "c",
	}
}

// OpenGrid opens (or creates) the grid journal at path for cfg's grid;
// an empty path makes the grid memory-only (a coordinator that doesn't
// need restart durability). A fresh journal gets every cell submitted in
// canonical order. An existing journal requires opts.Resume and must
// have been written for the same grid — same cells in the same order —
// otherwise OpenGrid refuses rather than merge incompatible sweeps.
func OpenGrid(path string, cfg SweepConfig, opts GridOptions) (*Grid, error) {
	opts = opts.withDefaults()
	cells := GridCells(cfg)
	var store *distwork.Store[GridCell]
	if path == "" {
		store = distwork.New(gridStoreOptions(opts))
	} else {
		if _, err := os.Stat(path); err == nil && !opts.Resume {
			return nil, fmt.Errorf("journal %s already exists; pass resume to continue it", path)
		} else if err != nil && !os.IsNotExist(err) {
			return nil, err
		}
		var err error
		store, err = distwork.Open(path, gridStoreOptions(opts))
		if err != nil {
			return nil, err
		}
	}
	tasks := store.List()
	if len(tasks) == 0 {
		for _, c := range cells {
			if _, err := store.Submit(c); err != nil {
				store.Close()
				return nil, err
			}
		}
	} else {
		if len(tasks) != len(cells) {
			store.Close()
			return nil, fmt.Errorf("journal %s holds %d cells, grid has %d: refusing to resume a different sweep", path, len(tasks), len(cells))
		}
		for i, t := range tasks {
			if t.Payload != cells[i] {
				store.Close()
				return nil, fmt.Errorf("journal %s cell %d is %+v, grid expects %+v: refusing to resume a different sweep", path, i, t.Payload, cells[i])
			}
		}
	}
	return &Grid{store: store, cells: cells, opts: opts}, nil
}

// Store exposes the underlying distwork store — the coordinator mode
// serves it over HTTP (lease endpoints, ExpireLeases ticker,
// WaitSettled).
func (g *Grid) Store() *distwork.Store[GridCell] { return g.store }

// Cells returns the grid's cells in canonical order.
func (g *Grid) Cells() []GridCell { return g.cells }

// Close closes the underlying store and journal.
func (g *Grid) Close() error { return g.store.Close() }

// Runner returns the distwork runner that executes one claimed cell
// in-process: mark running, heartbeat at a third of the lease while the
// simulation runs, and finish with the canonically encoded result. On
// ctx cancellation the cell is released back to pending (journaled), so
// a subsequent resume re-runs only that cell.
func (g *Grid) Runner() distwork.Runner[GridCell] {
	return func(ctx context.Context, s *distwork.Store[GridCell], t distwork.Task[GridCell]) (string, error) {
		if err := s.MarkRunning(t.ID, t.Worker); err != nil {
			return "", err
		}
		hbCtx, stopHB := context.WithCancel(ctx)
		defer stopHB()
		go func() {
			tick := time.NewTicker(s.Lease() / 3)
			defer tick.Stop()
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-tick.C:
					if err := s.Heartbeat(t.ID, t.Worker); err != nil {
						return // lease lost: a newer claim owns the cell
					}
				}
			}
		}()
		p, err := g.opts.runCell(ctx, t.Payload)
		if err != nil {
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				return "", fmt.Errorf("interrupted at cell %d (%s, %g, %d): %w",
					t.Payload.Index, t.Payload.Algorithm, t.Payload.Share, t.Payload.Seed, distwork.ErrInterrupted)
			}
			return "", err
		}
		enc, err := EncodeCellResult(p)
		if err != nil {
			return "", err
		}
		if g.opts.OnCellDone != nil {
			g.opts.OnCellDone()
		}
		return enc, nil
	}
}

// Run executes the grid's remaining cells on a local pool and blocks
// until every cell is terminal or ctx is cancelled, then reports the
// merged grid like SweepContext: points and done bitmap in cell-index
// order, with ctx.Err() when the run was cut short. Cells already
// finished in the journal are not re-run — their results come from the
// replay.
func (g *Grid) Run(ctx context.Context) ([]SweepPoint, []bool, error) {
	poolCtx, stopPool := context.WithCancel(ctx)
	defer stopPool()
	pool := distwork.NewPool(g.store, resolveWorkers(g.opts.Workers, len(g.cells)), g.Runner())
	pool.Start(poolCtx)
	err := g.store.WaitSettled(ctx)
	stopPool()
	pool.Wait()
	pts, done, cerr := g.Collect()
	if cerr != nil {
		return pts, done, cerr
	}
	if err != nil && ctx.Err() != nil {
		return pts, done, ctx.Err()
	}
	return pts, done, err
}

// Collect merges the store's terminal cells into grid order: the points
// slice and done bitmap are indexed by cell, with failed cells reported
// as the error of the lowest failing index — the same determinism
// contract as runIndexedCtx, regardless of which worker finished which
// cell in what order.
func (g *Grid) Collect() ([]SweepPoint, []bool, error) {
	pts := make([]SweepPoint, len(g.cells))
	done := make([]bool, len(g.cells))
	errs := make([]error, len(g.cells))
	for _, t := range g.store.List() {
		i := t.Payload.Index
		if i < 0 || i >= len(g.cells) {
			return nil, nil, fmt.Errorf("journal cell index %d out of range", i)
		}
		switch t.State {
		case distwork.StateDone:
			p, err := DecodeCellResult(t.Result)
			if err != nil {
				return nil, nil, fmt.Errorf("cell %d: %w", i, err)
			}
			pts[i] = p
			done[i] = true
		case distwork.StateFailed:
			errs[i] = fmt.Errorf("cell %d (%s, %g, %d): %s",
				i, t.Payload.Algorithm, t.Payload.Share, t.Payload.Seed, t.Error)
		}
	}
	for _, err := range errs {
		if err != nil {
			return pts, done, err
		}
	}
	return pts, done, nil
}
