package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"repro/elastisim"
	"repro/internal/distwork"
	"repro/internal/obs"
)

// The journaled grid runner puts a sweep's cells through the same
// work-distribution core as elastisimd's job queue: every cell is a
// distwork task, every completion is journaled with its canonical
// encoded result, and a killed sweep reopened with Resume picks up at
// the first incomplete cell — completed cells replay from the journal
// and never re-run. The same store serves the distributed mode: a
// coordinator leases cells to HTTP workers (internal/httpapi.LeaseAPI)
// instead of a local pool, with lease expiry returning a dead worker's
// cells to the pool for the survivors to steal.
//
// The grid never materializes its cells: the store is fed from the
// CellAt cursor one claim at a time, and journaled grids run in the
// store's evicting mode — a settled cell's result lives only in the
// journal, indexed by a per-cell record location. Coordinator memory is
// O(active leases) + O(one record location per cell), which is what
// makes million-cell grids feasible.

// GridOptions tunes a journaled grid run.
type GridOptions struct {
	// Workers sizes the local pool for Run (0 = one per CPU).
	Workers int
	// Lease is the claim lease for cells (default 1m: cells are minutes-
	// scale at most, and a dead worker's cells should requeue quickly).
	Lease time.Duration
	// Resume permits opening a journal that already has entries. Without
	// it, an existing journal is an error — refusing to silently append a
	// new sweep onto an old one.
	Resume bool
	// Shards splits the journal into this many hash-sharded files
	// (0 = single legacy file). See distwork.Options.Shards.
	Shards int
	// GroupCommit batches journal fsyncs into one flush per window
	// (0 = fsync every transition). See distwork.Options.GroupCommit.
	GroupCommit time.Duration
	// Metrics/Flight attach observability (sweep_* series).
	Metrics *obs.Registry
	Flight  *obs.FlightRecorder
	// OnCellDone, when set, is called once per newly finished cell,
	// possibly from concurrent worker goroutines.
	OnCellDone func()

	// runCell overrides cell execution (tests: fake slow/failing cells).
	runCell func(ctx context.Context, c GridCell) (SweepPoint, error)
}

func (o GridOptions) withDefaults() GridOptions {
	if o.Lease <= 0 {
		o.Lease = time.Minute
	}
	if o.runCell == nil {
		o.runCell = RunCell
	}
	return o
}

// Grid is a sweep grid journaled through a distwork store.
type Grid struct {
	store *distwork.Store[GridCell]
	cfg   SweepConfig // defaults applied
	size  int
	opts  GridOptions

	// Settled-cell index for journaled grids: one state code and journal
	// record location per cell. This — not the results — is the only
	// per-cell memory the coordinator holds. Nil for memory-only grids,
	// whose terminal tasks stay resident in the store.
	mu     sync.Mutex
	states []byte // indexed by cell: 0 unsettled, else a cellState code
	locs   []distwork.RecLoc
	done   int    // cells settled done
	badSeq uint64 // journal sequence outside the grid (mismatch evidence)
}

// cellState codes compress distwork.State to a byte for the per-cell index.
const (
	cellUnsettled = byte(iota)
	cellDone
	cellFailed
	cellCancelled
)

func stateCode(st distwork.State) byte {
	switch st {
	case distwork.StateDone:
		return cellDone
	case distwork.StateFailed:
		return cellFailed
	default:
		return cellCancelled
	}
}

func codeState(c byte) distwork.State {
	switch c {
	case cellDone:
		return distwork.StateDone
	case cellFailed:
		return distwork.StateFailed
	default:
		return distwork.StateCancelled
	}
}

// gridStoreOptions is the one place the sweep specialization of the
// distwork core is configured; cells journal under ids c000001… with
// sweep_* metric families.
func gridStoreOptions(opts GridOptions) distwork.Options[GridCell] {
	return distwork.Options[GridCell]{
		Lease:        opts.Lease,
		Metrics:      opts.Metrics,
		Flight:       opts.Flight,
		MetricPrefix: "sweep",
		Noun:         "cell",
		FlightTopic:  "sweepgrid",
		IDPrefix:     "c",
	}
}

// gridMeta fingerprints the work set a journal was written for: the
// canonical JSON of the grid-shaping fields. Workers and hooks are
// execution detail, not identity, so a resume may change them.
func gridMeta(cfg SweepConfig) string {
	data, err := json.Marshal(struct {
		Algorithms []string  `json:"algorithms"`
		Shares     []float64 `json:"shares"`
		Seeds      []uint64  `json:"seeds"`
		Jobs       int       `json:"jobs"`
		Nodes      int       `json:"nodes"`
	}{cfg.Algorithms, cfg.Shares, cfg.Seeds, cfg.Jobs, cfg.Nodes})
	if err != nil {
		panic(err) // plain slices and ints cannot fail to marshal
	}
	return string(data)
}

// OpenGrid opens (or creates) the grid journal at path for cfg's grid;
// an empty path makes the grid memory-only (a coordinator that doesn't
// need restart durability). Cells are fed to the store lazily from the
// CellAt cursor — the grid slice is never materialized. An existing
// journal requires opts.Resume and must have been written for the same
// grid — same cells in the same order — otherwise OpenGrid refuses
// rather than merge incompatible sweeps.
func OpenGrid(path string, cfg SweepConfig, opts GridOptions) (*Grid, error) {
	opts = opts.withDefaults()
	dcfg := cfg.withDefaults()
	size := len(dcfg.Seeds) * len(dcfg.Shares) * len(dcfg.Algorithms)
	g := &Grid{cfg: dcfg, size: size, opts: opts}
	sopts := gridStoreOptions(opts)
	sopts.Source = func(seq uint64) (GridCell, bool) {
		if seq == 0 || seq > uint64(size) {
			return GridCell{}, false
		}
		return cellAt(dcfg, int(seq)-1), true
	}
	if path == "" {
		g.store = distwork.New(sopts)
		return g, nil
	}
	existed := false
	if _, err := os.Stat(path); err == nil {
		existed = true
		if !opts.Resume {
			return nil, fmt.Errorf("journal %s already exists; pass resume to continue it", path)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	g.states = make([]byte, size)
	g.locs = make([]distwork.RecLoc, size)
	// Grids always journal in the headered (sharded) layout, even with a
	// single shard: the header carries the grid fingerprint that makes
	// resume-mismatch detection exact. Pre-header legacy journals are
	// still readable and migrate on open.
	sopts.Shards = opts.Shards
	if sopts.Shards < 1 {
		sopts.Shards = 1
	}
	sopts.GroupCommit = opts.GroupCommit
	sopts.Meta = gridMeta(dcfg)
	sopts.Evict = true
	sopts.OnSettled = g.noteSettled
	store, err := distwork.Open(path, sopts)
	if err != nil {
		if strings.Contains(err.Error(), "different work set") {
			return nil, fmt.Errorf("journal %s: refusing to resume a different sweep (%w)", path, err)
		}
		return nil, err
	}
	g.store = store
	if err := g.validateJournal(path, existed); err != nil {
		store.Close()
		return nil, err
	}
	return g, nil
}

// noteSettled is the store's OnSettled hook: it records the journal
// location of a cell's terminal record in the per-cell index. Called
// under the store lock (both at replay and at finish), so it must not
// call back into the store.
func (g *Grid) noteSettled(seq uint64, st distwork.State, loc distwork.RecLoc) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if seq == 0 || seq > uint64(g.size) {
		if g.badSeq == 0 {
			g.badSeq = seq
		}
		return
	}
	i := int(seq) - 1
	if g.states[i] == cellUnsettled && st == distwork.StateDone {
		g.done++
	}
	g.states[i] = stateCode(st)
	g.locs[i] = loc
}

// validateJournal refuses to resume a journal that does not describe
// cfg's grid. New-style journals carry the grid fingerprint in their
// shard headers and were checked by distwork.Open; this catches replay
// evidence of a mismatch (sequences outside the grid) and pre-header
// legacy journals, whose only identity is their cell set.
func (g *Grid) validateJournal(path string, existed bool) error {
	g.mu.Lock()
	badSeq, settled := g.badSeq, 0
	for _, c := range g.states {
		if c != cellUnsettled {
			settled++
		}
	}
	g.mu.Unlock()
	if badSeq != 0 {
		return fmt.Errorf("journal %s holds cell sequence %d, grid has %d cells: refusing to resume a different sweep", path, badSeq, g.size)
	}
	resident := g.store.List()
	for _, t := range resident {
		i := t.Payload.Index
		if i < 0 || i >= g.size || t.Payload != cellAt(g.cfg, i) {
			return fmt.Errorf("journal %s cell %+v does not match the grid: refusing to resume a different sweep", path, t.Payload)
		}
	}
	if existed && g.store.PrevJournalMeta() == "" {
		// Legacy journal (every cell submitted up front, no fingerprint):
		// the cell count is the only shape check available.
		if settled+len(resident) != g.size {
			return fmt.Errorf("journal %s holds %d cells, grid has %d: refusing to resume a different sweep", path, settled+len(resident), g.size)
		}
	}
	return nil
}

// Store exposes the underlying distwork store — the coordinator mode
// serves it over HTTP (lease endpoints, ExpireLeases ticker,
// WaitSettled).
func (g *Grid) Store() *distwork.Store[GridCell] { return g.store }

// Size returns the number of cells in the grid.
func (g *Grid) Size() int { return g.size }

// Completed returns how many cells have settled done so far. For
// memory-only grids it counts the store's terminal tasks.
func (g *Grid) Completed() int {
	if g.states == nil {
		n := 0
		for _, t := range g.store.List() {
			if t.State == distwork.StateDone {
				n++
			}
		}
		return n
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.done
}

// Close closes the underlying store and journal.
func (g *Grid) Close() error { return g.store.Close() }

// Runner returns the distwork runner that executes one claimed cell
// in-process: mark running, heartbeat at a third of the lease while the
// simulation runs, and finish with the canonically encoded result. On
// ctx cancellation the cell is released back to pending (journaled), so
// a subsequent resume re-runs only that cell.
func (g *Grid) Runner() distwork.Runner[GridCell] {
	return func(ctx context.Context, s *distwork.Store[GridCell], t distwork.Task[GridCell]) (string, error) {
		if err := s.MarkRunning(t.ID, t.Worker); err != nil {
			return "", err
		}
		hbCtx, stopHB := context.WithCancel(ctx)
		defer stopHB()
		go func() {
			tick := time.NewTicker(s.Lease() / 3)
			defer tick.Stop()
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-tick.C:
					if err := s.Heartbeat(t.ID, t.Worker); err != nil {
						return // lease lost: a newer claim owns the cell
					}
				}
			}
		}()
		p, err := g.opts.runCell(ctx, t.Payload)
		if err != nil {
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				return "", fmt.Errorf("interrupted at cell %d (%s, %g, %d): %w",
					t.Payload.Index, t.Payload.Algorithm, t.Payload.Share, t.Payload.Seed, distwork.ErrInterrupted)
			}
			return "", err
		}
		enc, err := EncodeCellResult(p)
		if err != nil {
			return "", err
		}
		if g.opts.OnCellDone != nil {
			g.opts.OnCellDone()
		}
		return enc, nil
	}
}

// Run executes the grid's remaining cells on a local pool and blocks
// until every cell is terminal or ctx is cancelled. Cells already
// finished in the journal are not re-run. It returns ctx's error when
// the run was cut short, otherwise the grid's cell error (Err) — nil
// when every cell completed.
func (g *Grid) Run(ctx context.Context) error {
	poolCtx, stopPool := context.WithCancel(ctx)
	defer stopPool()
	pool := distwork.NewPool(g.store, resolveWorkers(g.opts.Workers, g.size), g.Runner())
	pool.Start(poolCtx)
	err := g.store.WaitSettled(ctx)
	stopPool()
	pool.Wait()
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return g.Err()
}

// forEachTerminal streams every terminal cell in grid order: journaled
// grids read each cell's settling record back from the journal (the
// results are not on the heap); memory grids walk the resident tasks.
// fn runs with one task at a time — total memory is O(1) per cell.
func (g *Grid) forEachTerminal(fn func(i int, t distwork.Task[GridCell]) error) error {
	if g.states == nil {
		for _, t := range g.store.List() {
			if !t.State.Terminal() {
				continue
			}
			i := t.Payload.Index
			if i < 0 || i >= g.size {
				return fmt.Errorf("journal cell index %d out of range", i)
			}
			if err := fn(i, t); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < g.size; i++ {
		g.mu.Lock()
		code, loc := g.states[i], g.locs[i]
		g.mu.Unlock()
		if code == cellUnsettled {
			continue
		}
		t, err := g.store.ReadRecord(loc)
		if err != nil {
			return fmt.Errorf("cell %d: reading journal record: %w", i, err)
		}
		if t.State != codeState(code) {
			return fmt.Errorf("cell %d: journal record state %s does not match index %s", i, t.State, codeState(code))
		}
		if err := fn(i, t); err != nil {
			return err
		}
	}
	return nil
}

// Err returns the deterministic cell-failure error: the failed cell
// with the lowest index, regardless of completion order — the same
// contract as runIndexedCtx. Nil when no cell failed.
func (g *Grid) Err() error {
	var ferr error
	err := g.forEachTerminal(func(i int, t distwork.Task[GridCell]) error {
		if t.State == distwork.StateFailed && ferr == nil {
			ferr = fmt.Errorf("cell %d (%s, %g, %d): %s",
				i, t.Payload.Algorithm, t.Payload.Share, t.Payload.Seed, t.Error)
			return errStopIteration
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopIteration) {
		return err
	}
	return ferr
}

var errStopIteration = errors.New("stop iteration")

// Collect merges the store's terminal cells into grid order: the points
// slice and done bitmap are indexed by cell, with failed cells reported
// as the error of the lowest failing index. Collect materializes the
// whole grid — million-cell callers should stream with EmitCSV instead.
func (g *Grid) Collect() ([]SweepPoint, []bool, error) {
	pts := make([]SweepPoint, g.size)
	done := make([]bool, g.size)
	var ferr error
	err := g.forEachTerminal(func(i int, t distwork.Task[GridCell]) error {
		switch t.State {
		case distwork.StateDone:
			p, err := DecodeCellResult(t.Result)
			if err != nil {
				return fmt.Errorf("cell %d: %w", i, err)
			}
			pts[i] = p
			done[i] = true
		case distwork.StateFailed:
			if ferr == nil {
				ferr = fmt.Errorf("cell %d (%s, %g, %d): %s",
					i, t.Payload.Algorithm, t.Payload.Share, t.Payload.Seed, t.Error)
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return pts, done, ferr
}

// EmitCSV streams the completed cells as CSV rows in grid order —
// byte-identical to WriteSweepCSV over the collected grid, without ever
// holding more than one decoded cell. When agg is non-nil each cell's
// telemetry snapshot is summed into it (the streaming form of
// AggregateSnapshots). Returns the number of rows written.
func (g *Grid) EmitCSV(w io.Writer, agg *elastisim.TelemetrySnapshot) (int, error) {
	if err := writeSweepCSVHeader(w); err != nil {
		return 0, err
	}
	rows := 0
	err := g.forEachTerminal(func(i int, t distwork.Task[GridCell]) error {
		if t.State != distwork.StateDone {
			return nil
		}
		p, err := DecodeCellResult(t.Result)
		if err != nil {
			return fmt.Errorf("cell %d: %w", i, err)
		}
		if err := writeSweepCSVRow(w, p); err != nil {
			return err
		}
		if agg != nil {
			agg.Add(p.Snapshot)
		}
		rows++
		return nil
	})
	return rows, err
}
