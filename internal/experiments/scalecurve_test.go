package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/distwork"
)

// TestCoordinatorScaleCurve is the measurement harness behind
// BENCH_4.json's coordinator curves: it settles a synthetic grid
// through the coordinator machinery (no simulations — the cell result
// is precomputed) and reports wall clock, settlement throughput, and
// peak live heap as one JSON line. It only runs when SWEEP_BENCH_CELLS
// is set; run it manually per mode and size:
//
//	SWEEP_BENCH_CELLS=1000000 SWEEP_BENCH_MODE=streamed \
//	  go test -run TestCoordinatorScaleCurve -v ./internal/experiments/
//
// Modes:
//
//	streamed      cursor-fed evicting store, 4 journal shards, 2ms group
//	              commit, 256-cell batched claim/finish — this PR's path
//	resident      every cell submitted up front and every result kept
//	              resident, single journal file, single-cell claims, with
//	              the same 2ms group commit — isolates the memory effect
//	resident-sync resident plus an fsync per transition — the PR 9
//	              configuration, for the throughput baseline
func TestCoordinatorScaleCurve(t *testing.T) {
	cellsEnv := os.Getenv("SWEEP_BENCH_CELLS")
	if cellsEnv == "" {
		t.Skip("set SWEEP_BENCH_CELLS (and SWEEP_BENCH_MODE) to run the scale-curve harness")
	}
	nCells, err := strconv.Atoi(cellsEnv)
	if err != nil || nCells < 1 {
		t.Fatalf("SWEEP_BENCH_CELLS: %q", cellsEnv)
	}
	mode := os.Getenv("SWEEP_BENCH_MODE")
	if mode == "" {
		mode = "streamed"
	}

	// One algorithm × one share × nCells seeds: grid size == nCells.
	seeds := make([]uint64, nCells)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	cfg := (&SweepConfig{
		Algorithms: []string{"fcfs"}, Shares: []float64{0.5},
		Seeds: seeds, Jobs: 100, Nodes: 128,
	}).withDefaults()

	// A realistic canonical result (~600 bytes encoded) so journal and
	// resident-memory costs match a real sweep's.
	result := func(c GridCell) string {
		p := SweepPoint{
			Algorithm: c.Algorithm, MalleableShare: c.Share, Seed: c.Seed,
			Jobs: c.Jobs, Events: uint64(3000 + c.Index),
		}
		p.Summary.Makespan = 143726.6
		p.Summary.Utilization = 0.83
		p.Summary.MeanWait = 512.4
		p.Summary.Completed = c.Jobs
		enc, err := EncodeCellResult(p)
		if err != nil {
			panic(err)
		}
		return enc
	}

	// Peak-live-heap sampler.
	var peak atomic.Uint64
	stopSample := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		var mem runtime.MemStats
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSample:
				return
			case <-tick.C:
				runtime.ReadMemStats(&mem)
				if h := mem.HeapAlloc; h > peak.Load() {
					peak.Store(h)
				}
			}
		}
	}()

	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	workers := runtime.GOMAXPROCS(0)
	start := time.Now()
	switch mode {
	case "streamed":
		grid, err := OpenGrid(path, cfg, GridOptions{Shards: 4, GroupCommit: 2 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		store := grid.Store()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				name := fmt.Sprintf("w%d", w)
				items := make([]distwork.FinishItem, 0, 256)
				for {
					batch := store.TryClaimBatch(name, 256)
					if len(batch) == 0 {
						return
					}
					items = items[:0]
					for _, task := range batch {
						items = append(items, distwork.FinishItem{ID: task.ID, Result: result(task.Payload)})
					}
					for _, err := range store.FinishBatch(name, items) {
						if err != nil {
							t.Error(err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if got := grid.Completed(); got != nCells {
			t.Fatalf("settled %d cells, want %d", got, nCells)
		}
		grid.Close()
	case "resident", "resident-sync":
		opts := distwork.Options[GridCell]{
			MetricPrefix: "sweep", Noun: "cell", IDPrefix: "c",
		}
		if mode == "resident" {
			opts.GroupCommit = 2 * time.Millisecond
		}
		store, err := distwork.Open(path, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nCells; i++ {
			if _, err := store.Submit(cellAt(cfg, i)); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				name := fmt.Sprintf("w%d", w)
				for {
					task, ok := store.TryClaim(name)
					if !ok {
						return
					}
					if err := store.Finish(task.ID, name, result(task.Payload), nil); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		store.Close()
	default:
		t.Fatalf("SWEEP_BENCH_MODE: %q", mode)
	}
	wall := time.Since(start)
	close(stopSample)
	sampleWG.Wait()
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	fmt.Printf("scalecurve: {\"mode\":%q,\"cells\":%d,\"wall_s\":%.2f,\"cells_per_s\":%.0f,\"peak_heap_mb\":%.1f,\"sys_mb\":%.1f}\n",
		mode, nCells, wall.Seconds(), float64(nCells)/wall.Seconds(),
		float64(peak.Load())/(1<<20), float64(mem.Sys)/(1<<20))
}
