package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// Experiment tests use small job counts to stay fast; the benches and
// cmd/expreport run the full-size versions.
const testJobs = 40

func parseCell(t *testing.T, cell string) float64 {
	t.Helper()
	cell = strings.TrimSuffix(cell, "%")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestE1UtilizationShape(t *testing.T) {
	tab, rigid, mall, err := E1Utilization(1, testJobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 20 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// Malleability must not hurt overall utilization or makespan.
	if mall.Summary.Utilization < rigid.Summary.Utilization-0.02 {
		t.Errorf("malleable utilization %.3f < rigid %.3f",
			mall.Summary.Utilization, rigid.Summary.Utilization)
	}
	if mall.Summary.Makespan > rigid.Summary.Makespan*1.02 {
		t.Errorf("malleable makespan %.1f > rigid %.1f",
			mall.Summary.Makespan, rigid.Summary.Makespan)
	}
}

func TestE2MalleableShareShape(t *testing.T) {
	tab, results, err := E2MalleableShare(1, testJobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results %d", len(results))
	}
	// The headline claim: a fully malleable workload beats the rigid one.
	first, last := results[0].Summary, results[4].Summary
	if last.Makespan >= first.Makespan {
		t.Errorf("makespan did not improve: %.1f -> %.1f", first.Makespan, last.Makespan)
	}
	if last.Utilization <= first.Utilization {
		t.Errorf("utilization did not improve: %.3f -> %.3f", first.Utilization, last.Utilization)
	}
	// Reconfigurations only happen when malleable jobs exist.
	if results[0].Summary.Reconfigs != 0 {
		t.Error("rigid workload reconfigured")
	}
	if results[4].Summary.Reconfigs == 0 {
		t.Error("malleable workload never reconfigured")
	}
	if len(tab.Rows) != 5 {
		t.Errorf("table rows %d", len(tab.Rows))
	}
}

func TestE3SchedulersShape(t *testing.T) {
	tab, results, err := E3Schedulers(1, testJobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// Backfilling's guarantee is on waiting time, not makespan (which is
	// noisy on small finite workloads): EASY must improve FCFS's mean
	// wait, and the adaptive policy must be at least as good as EASY.
	fcfs := results["fcfs"].Summary
	easy := results["easy"].Summary
	adaptive := results["adaptive"].Summary
	if easy.MeanWait > fcfs.MeanWait {
		t.Errorf("EASY mean wait %.1f worse than FCFS %.1f", easy.MeanWait, fcfs.MeanWait)
	}
	if adaptive.MeanWait > easy.MeanWait*1.05 {
		t.Errorf("adaptive mean wait %.1f worse than EASY %.1f", adaptive.MeanWait, easy.MeanWait)
	}
	if adaptive.Makespan > fcfs.Makespan {
		t.Errorf("adaptive makespan %.1f worse than FCFS %.1f", adaptive.Makespan, fcfs.Makespan)
	}
	// Every algorithm finished the whole workload.
	for name, res := range results {
		if res.Summary.Completed+res.Summary.Killed != testJobs {
			t.Errorf("%s finished %d/%d", name, res.Summary.Completed+res.Summary.Killed, testJobs)
		}
	}
}

func TestE4BurstBufferShape(t *testing.T) {
	_, pfs, bb, err := E4BurstBuffer(1, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Burst buffers must relieve PFS contention.
	if bb.Summary.Makespan >= pfs.Summary.Makespan {
		t.Errorf("burst buffer makespan %.1f did not beat PFS %.1f",
			bb.Summary.Makespan, pfs.Summary.Makespan)
	}
}

func TestE5ScalabilityRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep in short mode")
	}
	tab, err := E5Scalability(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("rows %d, want 9", len(tab.Rows))
	}
	// Events grow with job count within a machine size.
	for base := 0; base < 9; base += 3 {
		e1 := parseCell(t, tab.Rows[base][2])
		e3 := parseCell(t, tab.Rows[base+2][2])
		if e3 <= e1 {
			t.Errorf("events did not grow with jobs: %v -> %v", e1, e3)
		}
	}
}

func TestE6ValidationExact(t *testing.T) {
	tab, cases, err := E6Validation()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 7 {
		t.Fatalf("cases %d", len(cases))
	}
	for _, c := range cases {
		if c.Error() > 0.01 {
			t.Errorf("%s: simulated %.4f vs analytic %.4f (err %.2f%%)",
				c.Name, c.Simulated, c.Analytic, c.Error()*100)
		}
	}
	if len(tab.Rows) != 7 {
		t.Errorf("table rows %d", len(tab.Rows))
	}
}

func TestE7EvolvingShape(t *testing.T) {
	tab, res, err := E7Evolving(1)
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]string = map[string]string{}
	for _, row := range tab.Rows {
		rec[row[0]] = row[1]
	}
	if rec["requests issued"] == "0" {
		t.Error("no evolving requests issued")
	}
	if rec["requests granted"] == "0" {
		t.Error("no requests granted")
	}
	peak := parseCell(t, rec["peak nodes"])
	initial := parseCell(t, rec["initial nodes"])
	if peak <= initial {
		t.Errorf("allocation never grew: initial %v, peak %v", initial, peak)
	}
	finalN := parseCell(t, rec["final nodes"])
	if finalN >= peak {
		t.Errorf("allocation never shrank: peak %v, final %v", peak, finalN)
	}
	_ = res
}

func TestE8ReconfigCostShape(t *testing.T) {
	_, results, err := E8ReconfigCost(1, testJobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results %d", len(results))
	}
	// Expensive reconfiguration must not make things better than free
	// reconfiguration.
	free := results[0].Summary.Makespan
	costly := results[len(results)-1].Summary.Makespan
	if costly < free*0.99 {
		t.Errorf("300s reconfig cost beat free reconfig: %.1f vs %.1f", costly, free)
	}
}

func TestAblationInvocation(t *testing.T) {
	tab, err := AblationInvocation(1, testJobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// Event-driven should beat coarse periodic scheduling on makespan.
	ev := parseCell(t, tab.Rows[0][1])
	coarse := parseCell(t, tab.Rows[2][1])
	if ev > coarse {
		t.Errorf("event-driven makespan %v worse than periodic-300s %v", ev, coarse)
	}
}

func TestAblationFairness(t *testing.T) {
	tab, err := AblationFairness(1, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// Analytic expectations: narrow read takes 4 s under both policies;
	// the wide read takes 4 s under max-min and 7 s under equal split
	// (40 GB/s instead of 70 GB/s until the narrow job finishes, then
	// the remainder alone at min(80, 160) = 80 GB/s:
	// 4s*40 = 160 GB done, 120 GB left at 80 GB/s -> 5.5 s total).
	maxminWide := parseCell(t, tab.Rows[0][2])
	equalWide := parseCell(t, tab.Rows[1][2])
	if maxminWide > 4.001 || maxminWide < 3.999 {
		t.Errorf("max-min wide read %v, want 4", maxminWide)
	}
	if equalWide <= maxminWide {
		t.Errorf("equal split (%v) should be slower than max-min (%v)", equalWide, maxminWide)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "bb"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("longer", "x")
	tab.AddNote("note %d", 7)
	s := tab.String()
	for _, want := range []string{"X — demo", "a       bb", "longer", "note: note 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	md := tab.Markdown()
	for _, want := range []string{"### X — demo", "| a | bb |", "| longer | x |", "> note 7"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestAblationMoldable(t *testing.T) {
	tab, err := AblationMoldable(1, testJobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// All four policies must finish the workload (cells parse as numbers).
	for _, row := range tab.Rows {
		if parseCell(t, row[1]) <= 0 {
			t.Errorf("%s makespan %s", row[0], row[1])
		}
	}
}

func TestAblationFairShare(t *testing.T) {
	tab, err := AblationFairShare(1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// Fair share must give the light users a better wait ratio than FCFS.
	fcfsRatio := parseCell(t, tab.Rows[0][3])
	fairRatio := parseCell(t, tab.Rows[2][3])
	if fairRatio >= fcfsRatio {
		t.Errorf("fairshare ratio %v not below fcfs %v", fairRatio, fcfsRatio)
	}
}

func TestE9TopologyShape(t *testing.T) {
	tab, results, err := E9Topology(1, testJobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results %d", len(results))
	}
	star := results[0].Summary.Makespan
	tree1 := results[1].Summary.Makespan
	tree16 := results[3].Summary.Makespan
	// A non-tapered tree must match the star exactly.
	if math.Abs(star-tree1) > 1e-6*star {
		t.Errorf("non-blocking tree %.1f != star %.1f", tree1, star)
	}
	// A 1:16 taper must hurt.
	if tree16 <= star*1.05 {
		t.Errorf("1:16 taper makespan %.1f not above star %.1f", tree16, star)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("rows %d", len(tab.Rows))
	}
}

func TestSweepGrid(t *testing.T) {
	pts, err := Sweep(SweepConfig{
		Algorithms: []string{"fcfs", "adaptive"},
		Shares:     []float64{0, 1},
		Seeds:      []uint64{1, 2},
		Jobs:       20,
		Nodes:      32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("cells %d, want 8", len(pts))
	}
	// Determinism: identical cells from a second run match exactly.
	pts2, err := Sweep(SweepConfig{
		Algorithms: []string{"fcfs", "adaptive"},
		Shares:     []float64{0, 1},
		Seeds:      []uint64{1, 2},
		Jobs:       20,
		Nodes:      32,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if pts[i].Summary != pts2[i].Summary {
			t.Errorf("cell %d not deterministic", i)
		}
	}
	var buf strings.Builder
	if err := WriteSweepCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 9 {
		t.Errorf("CSV lines %d, want 9 (header + 8)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "algorithm,malleable_share") {
		t.Errorf("header: %s", lines[0])
	}
}

func TestSweepDefaults(t *testing.T) {
	cfg := (&SweepConfig{Jobs: 5, Nodes: 16}).withDefaults()
	if len(cfg.Algorithms) != 3 || len(cfg.Shares) != 3 || len(cfg.Seeds) != 1 {
		t.Errorf("defaults: %+v", cfg)
	}
	if _, err := Sweep(SweepConfig{Algorithms: []string{"bogus"}, Jobs: 5, Nodes: 16}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
