package experiments

import (
	"fmt"
	"math"

	"repro/elastisim"
	"repro/internal/job"
	"repro/internal/platform"
)

// Standard experiment machine: 128 nodes, 100 Gflop/s each, 10 GB/s links,
// 80/60 GB/s PFS — a small tier-2 cluster, the scale such papers evaluate
// at.
const (
	stdNodes     = 128
	stdNodeSpeed = 100e9
	stdLinkBW    = 10e9
	stdPFSRead   = 80e9
	stdPFSWrite  = 60e9
)

// StandardPlatform returns the experiment cluster.
func StandardPlatform(nodes int) *elastisim.PlatformSpec {
	return elastisim.HomogeneousPlatform("exp", nodes, stdNodeSpeed, stdLinkBW, stdPFSRead, stdPFSWrite)
}

// standardWorkload generates the shared batch workload: mixed profiles,
// Poisson arrivals sized to keep the machine busy, with the given malleable
// share (the remainder is rigid).
func standardWorkload(seed uint64, count int, malleableShare float64) (*elastisim.Workload, error) {
	shares := map[job.Type]float64{}
	if malleableShare < 1 {
		shares[job.Rigid] = 1 - malleableShare
	}
	if malleableShare > 0 {
		shares[job.Malleable] = malleableShare
	}
	return elastisim.GenerateWorkload(elastisim.WorkloadConfig{
		Name:         fmt.Sprintf("std-%.0f%%", malleableShare*100),
		Seed:         seed,
		Count:        count,
		Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 1.0 / 18},
		Nodes:        [2]int{2, 64},
		MachineNodes: stdNodes,
		NodeSpeed:    stdNodeSpeed,
		TypeShares:   shares,
	})
}

func mustRun(cfg elastisim.Config) (*elastisim.Result, error) {
	res, err := elastisim.Run(cfg)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// E1Utilization reproduces the utilization-over-time figure: the same
// workload scheduled rigid-only (EASY) versus fully malleable (adaptive).
// It returns the table of time-bucketed utilization plus both results.
func E1Utilization(seed uint64, count int) (*Table, *elastisim.Result, *elastisim.Result, error) {
	arms := []struct {
		share float64
		algo  func() elastisim.Algorithm
	}{
		{0, elastisim.NewEASY},
		{1, elastisim.NewAdaptive},
	}
	results, err := runIndexed(0, len(arms), func(i int) (*elastisim.Result, error) {
		wl, err := standardWorkload(seed, count, arms[i].share)
		if err != nil {
			return nil, err
		}
		return mustRun(elastisim.Config{
			Platform: StandardPlatform(stdNodes), Workload: wl, Algorithm: arms[i].algo(),
		})
	})
	if err != nil {
		return nil, nil, nil, err
	}
	rigid, mall := results[0], results[1]
	t := &Table{
		ID:     "E1",
		Title:  "cluster utilization over time, rigid (EASY) vs malleable (adaptive)",
		Header: []string{"time", "util_rigid", "util_malleable"},
	}
	horizon := math.Max(rigid.Summary.Makespan, mall.Summary.Makespan)
	const buckets = 20
	for i := 0; i < buckets; i++ {
		a := horizon * float64(i) / buckets
		b := horizon * float64(i+1) / buckets
		ur := rigid.Recorder.BusyTimeline().Mean(a, b) / stdNodes
		um := mall.Recorder.BusyTimeline().Mean(a, b) / stdNodes
		t.AddRow(f1(a), pct(ur), pct(um))
	}
	t.AddNote("mean utilization: rigid %s, malleable %s; makespan: rigid %s, malleable %s",
		pct(rigid.Summary.Utilization), pct(mall.Summary.Utilization),
		f1(rigid.Summary.Makespan), f1(mall.Summary.Makespan))
	return t, rigid, mall, nil
}

// E2MalleableShare reproduces the makespan/turnaround-vs-malleable-share
// figure: 0..100% in 25% steps under the adaptive policy.
func E2MalleableShare(seed uint64, count int) (*Table, []*elastisim.Result, error) {
	t := &Table{
		ID:     "E2",
		Title:  "batch metrics vs malleable job share (adaptive policy)",
		Header: []string{"malleable", "makespan", "mean_turnaround", "mean_wait", "utilization", "reconfigs"},
	}
	shares := []float64{0, 0.25, 0.5, 0.75, 1.0}
	results, err := runIndexed(0, len(shares), func(i int) (*elastisim.Result, error) {
		wl, err := standardWorkload(seed, count, shares[i])
		if err != nil {
			return nil, err
		}
		return mustRun(elastisim.Config{
			Platform: StandardPlatform(stdNodes), Workload: wl, Algorithm: elastisim.NewAdaptive(),
		})
	})
	if err != nil {
		return nil, nil, err
	}
	for i, res := range results {
		s := res.Summary
		t.AddRow(pct(shares[i]), f1(s.Makespan), f1(s.MeanTurnaround), f1(s.MeanWait),
			pct(s.Utilization), fmt.Sprintf("%d", s.Reconfigs))
	}
	first, last := results[0].Summary, results[len(results)-1].Summary
	t.AddNote("makespan %s -> %s (%.1f%% change) as malleable share goes 0%% -> 100%%",
		f1(first.Makespan), f1(last.Makespan), 100*(last.Makespan-first.Makespan)/first.Makespan)
	return t, results, nil
}

// E3Schedulers reproduces the scheduling-algorithm comparison table on one
// fixed mixed workload (50% malleable).
func E3Schedulers(seed uint64, count int) (*Table, map[string]*elastisim.Result, error) {
	t := &Table{
		ID:     "E3",
		Title:  "scheduler comparison on a 50% malleable workload",
		Header: []string{"algorithm", "makespan", "mean_wait", "p95_wait", "mean_slowdown", "utilization"},
	}
	names := []string{"fcfs", "sjf", "conservative", "easy", "adaptive"}
	runs, err := runIndexed(0, len(names), func(i int) (*elastisim.Result, error) {
		// Algorithms are stateful and workloads carry per-run bookkeeping,
		// so each worker constructs its own copies.
		algo, err := elastisim.NewAlgorithm(names[i])
		if err != nil {
			return nil, err
		}
		wl, err := standardWorkload(seed, count, 0.5)
		if err != nil {
			return nil, err
		}
		return mustRun(elastisim.Config{
			Platform: StandardPlatform(stdNodes), Workload: wl, Algorithm: algo,
		})
	})
	if err != nil {
		return nil, nil, err
	}
	results := map[string]*elastisim.Result{}
	for i, res := range runs {
		results[names[i]] = res
		s := res.Summary
		t.AddRow(names[i], f1(s.Makespan), f1(s.MeanWait), f1(s.P95Wait), f2(s.MeanSlowdown), pct(s.Utilization))
	}
	t.AddNote("expected shape: EASY <= FCFS makespan; adaptive best (exploits malleability)")
	return t, results, nil
}

// E4BurstBuffer reproduces the I/O-offloading figure: an I/O-heavy
// checkpointing workload with checkpoints to the shared PFS vs node-local
// burst buffers.
func E4BurstBuffer(seed uint64, count int) (*Table, *elastisim.Result, *elastisim.Result, error) {
	ioProfiles := []job.Profile{{
		Name: "ckpt", Weight: 1, Kind: job.ProfileIOBound,
		Iterations:     [2]int{5, 15},
		ComputeSecs:    [2]float64{20, 60},
		IOBytes:        [2]float64{64e9, 256e9},
		SerialFraction: [2]float64{0.01, 0.05},
	}}
	gen := func(target job.IOTarget) (*elastisim.Workload, error) {
		return elastisim.GenerateWorkload(elastisim.WorkloadConfig{
			Name: "io-" + string(target), Seed: seed, Count: count,
			Arrival:          job.Arrival{Kind: job.ArrivalPoisson, Rate: 1.0 / 25},
			Nodes:            [2]int{2, 32},
			MachineNodes:     stdNodes,
			NodeSpeed:        stdNodeSpeed,
			Profiles:         ioProfiles,
			CheckpointTarget: target,
		})
	}
	targets := []job.IOTarget{job.TargetPFS, job.TargetBB}
	runs, err := runIndexed(0, len(targets), func(i int) (*elastisim.Result, error) {
		spec := StandardPlatform(stdNodes)
		spec.BurstBuffer = &platform.BurstBufferSpec{
			Kind: platform.BBNodeLocal, ReadBandwidth: 4e9, WriteBandwidth: 4e9,
		}
		wl, err := gen(targets[i])
		if err != nil {
			return nil, err
		}
		return mustRun(elastisim.Config{Platform: spec, Workload: wl, Algorithm: elastisim.NewEASY()})
	})
	if err != nil {
		return nil, nil, nil, err
	}
	pfs, bb := runs[0], runs[1]
	t := &Table{
		ID:     "E4",
		Title:  "checkpoint target: shared PFS vs node-local burst buffers",
		Header: []string{"target", "makespan", "mean_runtime", "mean_slowdown", "utilization"},
	}
	for _, e := range []struct {
		name string
		res  *elastisim.Result
	}{{"pfs", pfs}, {"burst-buffer", bb}} {
		meanRun := 0.0
		n := 0
		for _, r := range e.res.Records {
			if r.End >= 0 && r.Start >= 0 {
				meanRun += r.Runtime()
				n++
			}
		}
		if n > 0 {
			meanRun /= float64(n)
		}
		s := e.res.Summary
		t.AddRow(e.name, f1(s.Makespan), f1(meanRun), f2(s.MeanSlowdown), pct(s.Utilization))
	}
	t.AddNote("burst buffers decongest the shared PFS: makespan and slowdown improve even though small jobs may checkpoint slower on their local tier")
	return t, pfs, bb, nil
}

// E5Scalability reproduces the simulator-performance figure: wall-clock
// time and event counts versus number of jobs and machine size.
func E5Scalability(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "simulator performance: wall-clock vs jobs and machine size",
		Header: []string{"nodes", "jobs", "sim_events", "wall_ms", "events_per_s", "sim_makespan"},
	}
	type cell struct{ nodes, jobs int }
	var cells []cell
	for _, nodes := range []int{64, 256, 1024} {
		for _, jobs := range []int{100, 200, 400} {
			cells = append(cells, cell{nodes, jobs})
		}
	}
	results, err := runIndexed(0, len(cells), func(i int) (*elastisim.Result, error) {
		c := cells[i]
		wl, err := elastisim.GenerateWorkload(elastisim.WorkloadConfig{
			Name: "scal", Seed: seed, Count: c.jobs,
			Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: float64(c.nodes) / 1200.0},
			Nodes:        [2]int{1, min(64, c.nodes)},
			MachineNodes: c.nodes,
			NodeSpeed:    stdNodeSpeed,
			TypeShares:   map[job.Type]float64{job.Rigid: 0.5, job.Malleable: 0.5},
		})
		if err != nil {
			return nil, err
		}
		return mustRun(elastisim.Config{
			Platform:  StandardPlatform(c.nodes),
			Workload:  wl,
			Algorithm: elastisim.NewAdaptive(),
		})
	})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		evPerSec := float64(res.Events) / res.WallClock.Seconds()
		t.AddRow(fmt.Sprintf("%d", cells[i].nodes), fmt.Sprintf("%d", cells[i].jobs),
			fmt.Sprintf("%d", res.Events),
			fmt.Sprintf("%d", res.WallClock.Milliseconds()),
			fmt.Sprintf("%.0f", evPerSec),
			f1(res.Summary.Makespan))
	}
	t.AddNote("wall-clock grows with event count; events grow near-linearly with job count")
	return t, nil
}

// ValidationCase is one analytic microbenchmark of E6.
type ValidationCase struct {
	Name      string
	Simulated float64
	Analytic  float64
}

// Error returns the relative error.
func (c ValidationCase) Error() float64 {
	if c.Analytic == 0 {
		return math.Abs(c.Simulated)
	}
	return math.Abs(c.Simulated-c.Analytic) / c.Analytic
}

// E6Validation reproduces the validation table: simulated phase durations
// against closed-form expectations on a 1 Gflop/s, 1 GB/s, 2 GB/s-PFS
// reference platform.
func E6Validation() (*Table, []ValidationCase, error) {
	spec := elastisim.HomogeneousPlatform("val", 8, 1e9, 1e9, 2e9, 2e9)
	single := func(name string, j *elastisim.Job, want float64) (ValidationCase, error) {
		wl := &elastisim.Workload{Jobs: []*elastisim.Job{j}}
		wl.Sort()
		res, err := mustRun(elastisim.Config{Platform: spec, Workload: wl, Algorithm: elastisim.NewFCFS()})
		if err != nil {
			return ValidationCase{}, err
		}
		return ValidationCase{Name: name, Simulated: res.Records[0].Runtime(), Analytic: want}, nil
	}
	mk := func(nodes int, task elastisim.Task) *elastisim.Job {
		return &elastisim.Job{
			Type: elastisim.Rigid, NumNodes: nodes,
			App: &elastisim.Application{Phases: []elastisim.Phase{{Tasks: []elastisim.Task{task}}}},
		}
	}
	cases := []struct {
		name string
		j    *elastisim.Job
		want float64
	}{
		{"compute 1e10 flops, 4 nodes", mk(4, elastisim.Task{Kind: job.TaskCompute, Model: job.MustExprModel("1e10/num_nodes")}), 2.5},
		{"allreduce 1GB, 4 nodes", mk(4, elastisim.Task{Kind: job.TaskComm, Model: job.MustExprModel("1G"), Pattern: job.PatternAllReduce}), 1.5},
		{"alltoall 1GB, 4 nodes", mk(4, elastisim.Task{Kind: job.TaskComm, Model: job.MustExprModel("1G"), Pattern: job.PatternAllToAll}), 3},
		{"pfs read 8GB, 2 nodes", mk(2, elastisim.Task{Kind: job.TaskRead, Model: job.MustExprModel("8G"), Target: job.TargetPFS}), 4},
		{"pfs read 8GB, 1 node (link-bound)", mk(1, elastisim.Task{Kind: job.TaskRead, Model: job.MustExprModel("8G"), Target: job.TargetPFS}), 8},
		{"delay 12.5s", mk(1, elastisim.Task{Kind: job.TaskDelay, Model: job.MustExprModel("12.5")}), 12.5},
	}
	t := &Table{
		ID:     "E6",
		Title:  "validation: simulated vs analytic durations",
		Header: []string{"case", "simulated_s", "analytic_s", "rel_error"},
	}
	out, err := runIndexed(0, len(cases), func(i int) (ValidationCase, error) {
		return single(cases[i].name, cases[i].j, cases[i].want)
	})
	if err != nil {
		return nil, nil, err
	}
	for _, vc := range out {
		t.AddRow(vc.Name, f3(vc.Simulated), f3(vc.Analytic), pct(vc.Error()))
	}
	// Contention case needs two jobs.
	two := &elastisim.Workload{Jobs: []*elastisim.Job{
		mk(1, elastisim.Task{Kind: job.TaskWrite, Model: job.MustExprModel("2G"), Target: job.TargetPFS}),
		mk(1, elastisim.Task{Kind: job.TaskWrite, Model: job.MustExprModel("2G"), Target: job.TargetPFS}),
	}}
	two.Jobs[1].ID = 1
	two.Sort()
	res, err := mustRun(elastisim.Config{Platform: spec, Workload: two, Algorithm: elastisim.NewFCFS()})
	if err != nil {
		return nil, nil, err
	}
	// Each job: 2 GB at min(link 1 GB/s, PFS share 1 GB/s) = 2 s... but
	// alone the link already caps at 1 GB/s, so contention on the 2 GB/s
	// PFS is invisible: expected 2 s. (The fair-share case with visible
	// contention is covered in E4 and the core tests.)
	vc := ValidationCase{Name: "2x pfs write 2GB, 1 node each", Simulated: res.Records[0].Runtime(), Analytic: 2}
	out = append(out, vc)
	t.AddRow(vc.Name, f3(vc.Simulated), f3(vc.Analytic), pct(vc.Error()))
	worst := 0.0
	for _, c := range out {
		if c.Error() > worst {
			worst = c.Error()
		}
	}
	t.AddNote("worst relative error %s (fluid model is exact for these closed forms)", pct(worst))
	return t, out, nil
}

// E7Evolving reproduces the evolving-jobs figure: one evolving job's
// allocation over time under background load, plus grant statistics.
func E7Evolving(seed uint64) (*Table, *elastisim.Result, error) {
	// Background: rigid jobs leaving some headroom.
	bg, err := elastisim.GenerateWorkload(elastisim.WorkloadConfig{
		Name: "bg", Seed: seed, Count: 30,
		Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 1.0 / 40},
		Nodes:        [2]int{2, 32},
		MachineNodes: stdNodes,
		NodeSpeed:    stdNodeSpeed,
	})
	if err != nil {
		return nil, nil, err
	}
	evolving := &elastisim.Job{
		Name: "amr", Type: elastisim.Evolving,
		NumNodesMin: 4, NumNodesMax: 64, NumNodes: 8,
		SubmitTime: 1,
		Args:       map[string]float64{"w": 40 * stdNodeSpeed},
		App: &elastisim.Application{Phases: []elastisim.Phase{{
			Iterations:      20,
			SchedulingPoint: true,
			Tasks: []elastisim.Task{
				{Kind: job.TaskEvolvingRequest, Model: job.MustExprModel(
					"iteration < 5 ? 8 : (iteration < 15 ? 64 : 4)")},
				{Kind: job.TaskCompute, Model: job.MustExprModel("w / num_nodes")},
			},
		}}},
	}
	wl := &elastisim.Workload{Jobs: append(bg.Jobs, evolving)}
	wl.Sort()
	res, err := mustRun(elastisim.Config{
		Platform: StandardPlatform(stdNodes), Workload: wl,
		Algorithm: elastisim.NewAdaptive(),
		Options:   elastisim.Options{Trace: true},
	})
	if err != nil {
		return nil, nil, err
	}
	// Find the evolving job's record by name.
	var rec *elastisim.JobRecord
	for _, r := range res.Records {
		if r.Name == "amr" {
			rec = r
			break
		}
	}
	if rec == nil {
		return nil, nil, fmt.Errorf("evolving job record missing")
	}
	requests, grants, denies := 0, 0, 0
	for _, ev := range res.Trace {
		switch ev.Kind {
		case "evolving-request":
			requests++
		case "granted":
			grants++
		case "denied":
			denies++
		}
	}
	t := &Table{
		ID:     "E7",
		Title:  "evolving job adaptivity under background load",
		Header: []string{"metric", "value"},
	}
	t.AddRow("requests issued", fmt.Sprintf("%d", requests))
	t.AddRow("requests granted", fmt.Sprintf("%d", grants))
	t.AddRow("requests denied", fmt.Sprintf("%d", denies))
	t.AddRow("initial nodes", fmt.Sprintf("%d", rec.InitialNodes))
	t.AddRow("peak nodes", fmt.Sprintf("%d", rec.PeakNodes))
	t.AddRow("final nodes", fmt.Sprintf("%d", rec.FinalNodes))
	t.AddRow("reconfigurations", fmt.Sprintf("%d", rec.Reconfigs))
	t.AddRow("runtime", f1(rec.Runtime()))
	t.AddNote("allocation follows the application's demand curve (8 -> up to 64 -> 4)")
	return t, res, nil
}

// E8ReconfigCost reproduces the reconfiguration-cost sensitivity table:
// the fully malleable workload with the per-reconfiguration cost forced to
// fixed values.
func E8ReconfigCost(seed uint64, count int) (*Table, []*elastisim.Result, error) {
	t := &Table{
		ID:     "E8",
		Title:  "sensitivity to reconfiguration cost (100% malleable, adaptive)",
		Header: []string{"cost_s", "makespan", "mean_turnaround", "utilization", "reconfigs"},
	}
	costs := []float64{0, 1, 10, 60, 300}
	results, err := runIndexed(0, len(costs), func(i int) (*elastisim.Result, error) {
		wl, err := standardWorkload(seed, count, 1)
		if err != nil {
			return nil, err
		}
		for _, j := range wl.Jobs {
			j.ReconfigCost = job.ConstModel(costs[i])
		}
		return mustRun(elastisim.Config{
			Platform: StandardPlatform(stdNodes), Workload: wl, Algorithm: elastisim.NewAdaptive(),
		})
	})
	if err != nil {
		return nil, nil, err
	}
	for i, res := range results {
		s := res.Summary
		t.AddRow(f1(costs[i]), f1(s.Makespan), f1(s.MeanTurnaround), pct(s.Utilization),
			fmt.Sprintf("%d", s.Reconfigs))
	}
	first, last := results[0].Summary, results[len(results)-1].Summary
	t.AddNote("makespan degrades from %s to %s as reconfiguration cost grows 0 -> 300 s",
		f1(first.Makespan), f1(last.Makespan))
	return t, results, nil
}

// E9Topology reproduces a network-sensitivity figure: the same
// communication-heavy workload on a non-blocking star network versus
// tree topologies with increasingly tapered uplinks. Jobs spanning leaf
// switches contend on uplinks, so batch metrics degrade with the taper.
func E9Topology(seed uint64, count int) (*Table, []*elastisim.Result, error) {
	gen := func() (*elastisim.Workload, error) {
		wl, err := elastisim.GenerateWorkload(elastisim.WorkloadConfig{
			Name: "comm-heavy", Seed: seed, Count: count,
			Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 1.0 / 18},
			Nodes:        [2]int{2, 64},
			MachineNodes: stdNodes,
			NodeSpeed:    stdNodeSpeed,
			Profiles: []job.Profile{{
				Name: "halo", Weight: 1, Kind: job.ProfileComputeBound,
				Iterations:     [2]int{10, 30},
				ComputeSecs:    [2]float64{5, 20},
				CommBytes:      [2]float64{0.5e9, 4e9}, // heavy collectives
				IOBytes:        [2]float64{1e9, 8e9},
				SerialFraction: [2]float64{0.01, 0.05},
			}},
		})
		if err != nil {
			return nil, err
		}
		// Alltoall exchanges stress cross-switch uplinks quadratically
		// (k*(n-k) per uplink vs n-1 per link); allreduce would hide the
		// taper entirely (its uplink weight, 2, never exceeds its link
		// weight).
		for _, j := range wl.Jobs {
			for pi := range j.App.Phases {
				for ti := range j.App.Phases[pi].Tasks {
					if j.App.Phases[pi].Tasks[ti].Kind == job.TaskComm {
						j.App.Phases[pi].Tasks[ti].Pattern = job.PatternAllToAll
					}
				}
			}
		}
		return wl, nil
	}
	type variant struct {
		name     string
		uplinkBW float64 // 0 = star topology
	}
	variants := []variant{
		{"star (non-blocking)", 0},
		{"tree 1:1", 16 * stdLinkBW},
		{"tree 1:4", 4 * stdLinkBW},
		{"tree 1:16", stdLinkBW},
	}
	t := &Table{
		ID:     "E9",
		Title:  "network sensitivity: star vs tapered tree (comm-heavy workload, EASY)",
		Header: []string{"network", "makespan", "mean_turnaround", "mean_slowdown", "utilization"},
	}
	results, err := runIndexed(0, len(variants), func(i int) (*elastisim.Result, error) {
		v := variants[i]
		spec := StandardPlatform(stdNodes)
		if v.uplinkBW > 0 {
			spec.Network.Topology = platform.TopologyTree
			spec.Network.GroupSize = 16
			spec.Network.UplinkBandwidth = platform.Quantity(v.uplinkBW)
		}
		wl, err := gen()
		if err != nil {
			return nil, err
		}
		return mustRun(elastisim.Config{
			Platform: spec, Workload: wl, Algorithm: elastisim.NewEASY(),
		})
	})
	if err != nil {
		return nil, nil, err
	}
	for i, res := range results {
		s := res.Summary
		t.AddRow(variants[i].name, f1(s.Makespan), f1(s.MeanTurnaround), f2(s.MeanSlowdown), pct(s.Utilization))
	}
	t.AddNote("tapering the uplinks stretches cross-switch collectives; a 1:16 taper visibly hurts turnaround")
	return t, results, nil
}
