package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunIndexedOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 100} {
		out, err := runIndexed(workers, 17, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 17 {
			t.Fatalf("workers=%d: len %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Errorf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunIndexedEmpty(t *testing.T) {
	out, err := runIndexed(4, 0, func(i int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

// The error from the lowest failing index must win regardless of how the
// worker goroutines interleave, so error reporting is deterministic.
func TestRunIndexedLowestErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for range 20 {
		_, err := runIndexed(4, 32, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errLow
			case 20:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("got %v, want the error from index 3", err)
		}
	}
}

// Every index must be evaluated exactly once.
func TestRunIndexedEachOnce(t *testing.T) {
	var calls [64]atomic.Int32
	_, err := runIndexed(8, len(calls), func(i int) (struct{}, error) {
		calls[i].Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Errorf("index %d evaluated %d times", i, n)
		}
	}
}

// TestSweepParallelEquivalence pins the parallel-runner invariant: any
// worker count produces the same grid, cell for cell, as a sequential
// run — summaries and event counts identical; only wall-clock may vary.
func TestSweepParallelEquivalence(t *testing.T) {
	cfg := SweepConfig{
		Algorithms: []string{"easy", "adaptive"},
		Shares:     []float64{0, 1},
		Seeds:      []uint64{7},
		Jobs:       25,
		Nodes:      32,
	}
	seqCfg := cfg
	seqCfg.Workers = 1
	seq, err := Sweep(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := cfg
	parCfg.Workers = 4
	par, err := Sweep(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("cell counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Algorithm != par[i].Algorithm || seq[i].MalleableShare != par[i].MalleableShare ||
			seq[i].Seed != par[i].Seed {
			t.Fatalf("cell %d identity differs: %+v vs %+v", i, seq[i], par[i])
		}
		if seq[i].Summary != par[i].Summary {
			t.Errorf("cell %d summary differs between sequential and parallel runs", i)
		}
		if seq[i].Events != par[i].Events {
			t.Errorf("cell %d events: sequential %d, parallel %d", i, seq[i].Events, par[i].Events)
		}
		// Per-cell telemetry must be deterministic too (wall/heap aside).
		ss, ps := seq[i].Snapshot.StripWall(), par[i].Snapshot.StripWall()
		if fmt.Sprintf("%+v", ss) != fmt.Sprintf("%+v", ps) {
			t.Errorf("cell %d telemetry snapshot differs:\nseq: %+v\npar: %+v", i, ss, ps)
		}
	}
	// The grid-order aggregate is therefore deterministic as well.
	aggSeq := AggregateSnapshots(seq).StripWall()
	aggPar := AggregateSnapshots(par).StripWall()
	if fmt.Sprintf("%+v", aggSeq) != fmt.Sprintf("%+v", aggPar) {
		t.Errorf("aggregated snapshots differ:\nseq: %+v\npar: %+v", aggSeq, aggPar)
	}
	if aggSeq.Runs != len(seq) || aggSeq.Kernel.Fired == 0 {
		t.Errorf("aggregate implausible: %+v", aggSeq)
	}
}

// runIndexedCtx must stop dispatching once the context is cancelled,
// report which cells completed, and return ctx.Err() — while attributing
// cell errors that merely wrap the cancellation to the cancellation, not
// the cell.
func TestRunIndexedCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		out, done, err := runIndexedCtx(ctx, workers, 64, func(ctx context.Context, i int) (int, error) {
			if ran.Add(1) == 5 {
				cancel()
			}
			if ctx.Err() != nil {
				return 0, fmt.Errorf("cell %d: %w", i, ctx.Err())
			}
			return i, nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if int(ran.Load()) >= 64 {
			t.Errorf("workers=%d: all 64 cells dispatched despite cancellation", workers)
		}
		completed := 0
		for i, d := range done {
			if d {
				completed++
				if out[i] != i {
					t.Errorf("workers=%d: done cell %d has value %d", workers, i, out[i])
				}
			}
		}
		if completed == 0 {
			t.Errorf("workers=%d: no cell completed before cancellation", workers)
		}
	}
}

// A genuine cell failure beats the cancellation in the returned error.
func TestRunIndexedCtxRealErrorWins(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, _, err := runIndexedCtx(ctx, 4, 16, func(ctx context.Context, i int) (int, error) {
		if i == 2 {
			cancel()
			return 0, boom
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the cell failure", err)
	}
}

// TestSweepContextPartialFlush pins the interrupt contract of sweeps:
// cancelling mid-grid yields the completed cells (bit-identical to the
// same cells of a full run) plus ctx.Err().
func TestSweepContextPartialFlush(t *testing.T) {
	cfg := SweepConfig{
		Algorithms: []string{"easy", "adaptive"},
		Shares:     []float64{0, 1},
		Seeds:      []uint64{7},
		Jobs:       15,
		Nodes:      32,
		Workers:    1,
	}
	full, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cells := 0
	cfgCancel := cfg
	cfgCancel.OnCellDone = func() {
		if cells++; cells == 2 {
			cancel()
		}
	}
	pts, done, err := SweepContext(ctx, cfgCancel)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(pts) != len(full) || len(done) != len(full) {
		t.Fatalf("partial sweep sized %d/%d, want full grid shape %d", len(pts), len(done), len(full))
	}
	completed := 0
	for i, d := range done {
		if !d {
			continue
		}
		completed++
		if pts[i].Summary != full[i].Summary || pts[i].Events != full[i].Events {
			t.Errorf("cell %d diverges between partial and full sweep", i)
		}
	}
	if completed < 2 || completed >= len(full) {
		t.Errorf("completed %d cells, want a strict subset of %d with at least 2", completed, len(full))
	}
}
