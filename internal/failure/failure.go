// Package failure models node failures and repairs: deterministic,
// seed-driven outage processes that the simulation engine turns into
// node-down/node-up events.
//
// The package is deliberately self-contained (it depends only on the DES
// RNG and the unit quantities) so the platform spec, the engine, and the
// public facade can all share one Spec type without import cycles.
//
// Determinism: every node draws its outages from its own RNG stream,
// split off the spec seed by node index. Consuming an outage for node 3
// never perturbs the sequence node 7 sees, so simulations stay
// reproducible regardless of how the engine interleaves events.
package failure

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/des"
	"repro/internal/unit"
)

// Model selects the outage process.
type Model string

// Outage process models.
const (
	// ModelExponential draws uptimes and repair times from exponential
	// distributions (memoryless failures, the classic MTBF/MTTR model).
	ModelExponential Model = "exponential"
	// ModelWeibull draws uptimes from a Weibull distribution with the
	// given shape (shape < 1 models infant mortality / bursty failures,
	// the empirical shape of HPC failure traces); repairs stay
	// exponential.
	ModelWeibull Model = "weibull"
	// ModelTrace replays an explicit list of scripted outages.
	ModelTrace Model = "trace"
)

// RecoveryPolicy selects what happens to a job that loses a node.
type RecoveryPolicy string

// Recovery policies.
const (
	// RecoverShrink lets adaptive (malleable/evolving) jobs shrink through
	// the failure when the surviving allocation still satisfies their
	// minimum; all other jobs — and shrinks that would fall below the
	// minimum — fall back to kill-and-requeue. This is the default.
	RecoverShrink RecoveryPolicy = "shrink"
	// RecoverRequeue kills every affected job and resubmits it, restarting
	// from its last checkpoint (see the job checkpoint_interval model).
	RecoverRequeue RecoveryPolicy = "requeue"
	// RecoverKill kills affected jobs outright, no resubmission.
	RecoverKill RecoveryPolicy = "kill"
)

// DefaultMaxRequeues bounds resubmissions per job so a pathological
// MTBF (shorter than the restart time) cannot loop a job forever.
const DefaultMaxRequeues = 10

// Outage is one scripted node outage of the trace model. Times are
// absolute simulation seconds.
type Outage struct {
	// Node is the failing node's index.
	Node int `json:"node"`
	// Down is when the node fails.
	Down unit.Quantity `json:"down"`
	// Up is when the node comes back; it must be strictly after Down.
	Up unit.Quantity `json:"up"`
}

// Spec is the serializable description of a failure model, embeddable in
// platform JSON (a "failures" object) or passed programmatically.
type Spec struct {
	// Model selects the outage process.
	Model Model `json:"model"`
	// Seed drives the stochastic models (per-node streams are split off
	// it deterministically).
	Seed uint64 `json:"seed,omitempty"`
	// MTBF is each node's mean uptime between failures, in seconds
	// (exponential and weibull models).
	MTBF unit.Quantity `json:"mtbf,omitempty"`
	// MTTR is the mean repair time, in seconds.
	MTTR unit.Quantity `json:"mttr,omitempty"`
	// Shape is the Weibull uptime shape (default 0.7, the bursty regime
	// observed in production failure traces).
	Shape float64 `json:"shape,omitempty"`
	// Outages lists scripted outages (trace model only).
	Outages []Outage `json:"outages,omitempty"`
	// Start suppresses failures before this time (seconds), e.g. to let a
	// warm-up period run clean.
	Start unit.Quantity `json:"start,omitempty"`

	// Recovery selects the engine's job-recovery policy ("" = shrink).
	Recovery RecoveryPolicy `json:"recovery,omitempty"`
	// MaxRequeues bounds resubmissions per job (0 = DefaultMaxRequeues).
	MaxRequeues int `json:"max_requeues,omitempty"`
}

// Enabled reports whether the spec describes an active failure model.
func (s *Spec) Enabled() bool { return s != nil && s.Model != "" }

// EffectiveShape returns the Weibull shape, defaulted.
func (s *Spec) EffectiveShape() float64 {
	if s.Shape > 0 {
		return s.Shape
	}
	return 0.7
}

// EffectiveMaxRequeues returns the requeue bound, defaulted.
func (s *Spec) EffectiveMaxRequeues() int {
	if s.MaxRequeues > 0 {
		return s.MaxRequeues
	}
	return DefaultMaxRequeues
}

// EffectiveRecovery returns the recovery policy, defaulted.
func (s *Spec) EffectiveRecovery() RecoveryPolicy {
	if s.Recovery == "" {
		return RecoverShrink
	}
	return s.Recovery
}

// Validate checks the spec for structural errors. It does not know the
// machine size; scripted node indices are range-checked by NewInjector.
func (s *Spec) Validate() error {
	if s == nil || s.Model == "" {
		return nil // disabled
	}
	switch s.Model {
	case ModelExponential, ModelWeibull:
		if s.MTBF <= 0 || math.IsNaN(float64(s.MTBF)) || math.IsInf(float64(s.MTBF), 0) {
			return fmt.Errorf("failure: %s model requires a positive finite mtbf, got %v", s.Model, float64(s.MTBF))
		}
		if s.MTTR <= 0 || math.IsNaN(float64(s.MTTR)) || math.IsInf(float64(s.MTTR), 0) {
			return fmt.Errorf("failure: %s model requires a positive finite mttr, got %v", s.Model, float64(s.MTTR))
		}
		if s.Model == ModelWeibull && s.Shape < 0 {
			return fmt.Errorf("failure: negative weibull shape %v", s.Shape)
		}
	case ModelTrace:
		if len(s.Outages) == 0 {
			return fmt.Errorf("failure: trace model without outages")
		}
		for i, o := range s.Outages {
			if o.Node < 0 {
				return fmt.Errorf("failure: outage %d has negative node %d", i, o.Node)
			}
			if down := float64(o.Down); math.IsNaN(down) || math.IsInf(down, 0) {
				return fmt.Errorf("failure: outage %d has non-finite down time %v", i, down)
			}
			if up := float64(o.Up); math.IsNaN(up) || math.IsInf(up, 0) {
				return fmt.Errorf("failure: outage %d has non-finite up time %v", i, up)
			}
			if o.Down < 0 {
				return fmt.Errorf("failure: outage %d has negative down time", i)
			}
			if o.Up <= o.Down {
				return fmt.Errorf("failure: outage %d repairs at %v, not after failing at %v", i, float64(o.Up), float64(o.Down))
			}
		}
	default:
		return fmt.Errorf("failure: unknown model %q", s.Model)
	}
	switch s.Recovery {
	case "", RecoverShrink, RecoverRequeue, RecoverKill:
	default:
		return fmt.Errorf("failure: unknown recovery policy %q", s.Recovery)
	}
	if s.Start < 0 {
		return fmt.Errorf("failure: negative start time")
	}
	if s.MaxRequeues < 0 {
		return fmt.Errorf("failure: negative max_requeues")
	}
	return nil
}

// ValidateFor checks the spec both structurally and against a machine of
// numNodes nodes, so that a scripted outage naming a node the platform
// does not have is a config-time error — not a panic deep inside the
// engine's node accounting once the outage fires.
func (s *Spec) ValidateFor(numNodes int) error {
	if !s.Enabled() {
		return nil
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if numNodes <= 0 {
		return fmt.Errorf("failure: machine with %d nodes", numNodes)
	}
	for i, o := range s.Outages {
		if o.Node >= numNodes {
			return fmt.Errorf("failure: outage %d names node %d, machine has %d", i, o.Node, numNodes)
		}
	}
	return nil
}

// window is one outage interval.
type window struct{ down, up float64 }

// Injector produces each node's outage sequence. It is created per
// simulation run (it consumes per-node RNG state as outages are drawn).
type Injector struct {
	spec     Spec
	rngs     []*des.RNG // per-node streams (stochastic models)
	scale    float64    // Weibull scale realizing the requested MTBF
	scripted [][]window // per-node windows, sorted by down time
	pos      []int      // next scripted window per node
}

// NewInjector validates the spec against the machine size and builds the
// per-node outage streams. A nil or disabled spec yields a nil injector.
func NewInjector(spec *Spec, numNodes int) (*Injector, error) {
	if !spec.Enabled() {
		return nil, nil
	}
	if err := spec.ValidateFor(numNodes); err != nil {
		return nil, err
	}
	in := &Injector{spec: *spec}
	switch spec.Model {
	case ModelTrace:
		in.scripted = make([][]window, numNodes)
		in.pos = make([]int, numNodes)
		for _, o := range spec.Outages {
			in.scripted[o.Node] = append(in.scripted[o.Node], window{float64(o.Down), float64(o.Up)})
		}
		for n := range in.scripted {
			ws := in.scripted[n]
			sort.Slice(ws, func(i, j int) bool { return ws[i].down < ws[j].down })
			for i := 1; i < len(ws); i++ {
				if ws[i].down < ws[i-1].up {
					return nil, fmt.Errorf("failure: node %d outages overlap ([%g,%g] then down at %g)",
						n, ws[i-1].down, ws[i-1].up, ws[i].down)
				}
			}
		}
	default:
		root := des.NewRNG(spec.Seed)
		in.rngs = make([]*des.RNG, numNodes)
		for n := range in.rngs {
			in.rngs[n] = root.Split()
		}
		if spec.Model == ModelWeibull {
			shape := spec.EffectiveShape()
			// Choose the scale so the mean uptime equals the requested
			// MTBF: E[Weibull(k, λ)] = λ·Γ(1+1/k).
			in.scale = float64(spec.MTBF) / math.Gamma(1+1/shape)
		}
	}
	return in, nil
}

// Spec returns the injector's (validated) spec.
func (in *Injector) Spec() *Spec { return &in.spec }

// NextOutage returns node's next outage window beginning strictly after
// time t: the failure instant and the repair instant (down < up). ok is
// false when the node will not fail again (trace model exhausted).
// Windows are consumed: each call advances the node's stream.
func (in *Injector) NextOutage(node int, t float64) (down, up float64, ok bool) {
	if in.scripted != nil {
		ws := in.scripted[node]
		for in.pos[node] < len(ws) {
			w := ws[in.pos[node]]
			in.pos[node]++
			if w.down > t {
				return w.down, w.up, true
			}
		}
		return 0, 0, false
	}
	rng := in.rngs[node]
	start := float64(in.spec.Start)
	for {
		var uptime float64
		switch in.spec.Model {
		case ModelWeibull:
			uptime = rng.Weibull(in.spec.EffectiveShape(), in.scale)
		default:
			uptime = rng.Exp(1 / float64(in.spec.MTBF))
		}
		down = t + uptime
		up = down + rng.Exp(1/float64(in.spec.MTTR))
		if down <= t { // zero-length uptime draw; redraw
			continue
		}
		if down < start {
			// Warm-up window: skip outages before Start, keeping the
			// stream position consistent across runs.
			t = down
			continue
		}
		return down, up, true
	}
}
