package failure

import (
	"math"
	"strings"
	"testing"

	"repro/internal/unit"
)

func expSpec(seed uint64, mtbf, mttr float64) *Spec {
	return &Spec{Model: ModelExponential, Seed: seed, MTBF: unit.Quantity(mtbf), MTTR: unit.Quantity(mttr)}
}

func TestValidate(t *testing.T) {
	good := []*Spec{
		nil,
		{},
		expSpec(1, 1000, 60),
		{Model: ModelWeibull, MTBF: 1000, MTTR: 60, Shape: 0.5},
		{Model: ModelTrace, Outages: []Outage{{Node: 0, Down: 10, Up: 20}}},
		{Model: ModelExponential, MTBF: 1, MTTR: 1, Recovery: RecoverRequeue, MaxRequeues: 3},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %d: unexpected error %v", i, err)
		}
	}
	bad := []*Spec{
		{Model: "gamma"},
		{Model: ModelExponential},                            // no mtbf
		{Model: ModelExponential, MTBF: 1000},                // no mttr
		{Model: ModelExponential, MTBF: -5, MTTR: 10},        // negative
		{Model: ModelWeibull, MTBF: 100, MTTR: 1, Shape: -1}, // bad shape
		{Model: ModelTrace},                                  // no outages
		{Model: ModelTrace, Outages: []Outage{{Node: -1, Down: 1, Up: 2}}},
		{Model: ModelTrace, Outages: []Outage{{Node: 0, Down: 5, Up: 5}}}, // empty window
		{Model: ModelExponential, MTBF: 10, MTTR: 1, Recovery: "reboot"},
		{Model: ModelExponential, MTBF: 10, MTTR: 1, MaxRequeues: -2},
		{Model: ModelExponential, MTBF: 10, MTTR: 1, Start: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

func TestInjectorDisabled(t *testing.T) {
	for _, s := range []*Spec{nil, {}} {
		in, err := NewInjector(s, 8)
		if err != nil || in != nil {
			t.Fatalf("disabled spec: injector %v, err %v", in, err)
		}
	}
}

func TestInjectorRejectsOutOfRangeNode(t *testing.T) {
	s := &Spec{Model: ModelTrace, Outages: []Outage{{Node: 8, Down: 1, Up: 2}}}
	if _, err := NewInjector(s, 8); err == nil {
		t.Fatal("node 8 on an 8-node machine accepted")
	}
}

func TestInjectorRejectsOverlap(t *testing.T) {
	s := &Spec{Model: ModelTrace, Outages: []Outage{
		{Node: 0, Down: 10, Up: 30},
		{Node: 0, Down: 20, Up: 40},
	}}
	if _, err := NewInjector(s, 4); err == nil {
		t.Fatal("overlapping outages accepted")
	}
}

// Determinism: two injectors with the same seed produce identical
// sequences, and draws for one node never perturb another node's stream.
func TestDeterminismPerNodeStreams(t *testing.T) {
	mk := func() *Injector {
		in, err := NewInjector(expSpec(42, 5000, 120), 4)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	// Reference: node 2's first three windows, drawn in isolation.
	ref := mk()
	type w struct{ down, up float64 }
	var want []w
	tt := 0.0
	for i := 0; i < 3; i++ {
		d, u, ok := ref.NextOutage(2, tt)
		if !ok {
			t.Fatal("stochastic model ran dry")
		}
		want = append(want, w{d, u})
		tt = u
	}
	// Same seed, but interleaved with heavy draws on other nodes.
	in := mk()
	for i := 0; i < 50; i++ {
		in.NextOutage(0, float64(i))
		in.NextOutage(3, float64(i))
	}
	tt = 0.0
	for i := 0; i < 3; i++ {
		d, u, ok := in.NextOutage(2, tt)
		if !ok || d != want[i].down || u != want[i].up {
			t.Fatalf("window %d: got (%v,%v,%v), want %+v", i, d, u, ok, want[i])
		}
		tt = u
	}
}

// The exponential model's mean uptime and repair time must match MTBF and
// MTTR to within sampling error.
func TestExponentialMeans(t *testing.T) {
	const mtbf, mttr = 3000.0, 150.0
	in, err := NewInjector(expSpec(7, mtbf, mttr), 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	var upSum, repairSum float64
	tt := 0.0
	for i := 0; i < n; i++ {
		d, u, ok := in.NextOutage(0, tt)
		if !ok {
			t.Fatal("ran dry")
		}
		upSum += d - tt
		repairSum += u - d
		tt = u
	}
	if got := upSum / n; math.Abs(got-mtbf)/mtbf > 0.05 {
		t.Errorf("mean uptime %v, want ~%v", got, mtbf)
	}
	if got := repairSum / n; math.Abs(got-mttr)/mttr > 0.05 {
		t.Errorf("mean repair %v, want ~%v", got, mttr)
	}
}

// The Weibull scale calibration must keep the mean uptime equal to MTBF
// for any shape.
func TestWeibullMeanMatchesMTBF(t *testing.T) {
	for _, shape := range []float64{0.5, 0.7, 1.0, 2.0} {
		s := &Spec{Model: ModelWeibull, Seed: 11, MTBF: 4000, MTTR: 100, Shape: shape}
		in, err := NewInjector(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		const n = 30000
		sum := 0.0
		tt := 0.0
		for i := 0; i < n; i++ {
			d, u, _ := in.NextOutage(0, tt)
			sum += d - tt
			tt = u
		}
		if got := sum / n; math.Abs(got-4000)/4000 > 0.06 {
			t.Errorf("shape %v: mean uptime %v, want ~4000", shape, got)
		}
	}
}

func TestScriptedOrderingAndExhaustion(t *testing.T) {
	s := &Spec{Model: ModelTrace, Outages: []Outage{
		{Node: 1, Down: 300, Up: 360},
		{Node: 1, Down: 100, Up: 150}, // out of order on purpose
		{Node: 0, Down: 50, Up: 60},
	}}
	in, err := NewInjector(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, u, ok := in.NextOutage(1, 0)
	if !ok || d != 100 || u != 150 {
		t.Fatalf("first window (%v,%v,%v), want (100,150,true)", d, u, ok)
	}
	d, u, ok = in.NextOutage(1, u)
	if !ok || d != 300 || u != 360 {
		t.Fatalf("second window (%v,%v,%v), want (300,360,true)", d, u, ok)
	}
	if _, _, ok = in.NextOutage(1, u); ok {
		t.Fatal("exhausted node still failing")
	}
	if _, _, ok = in.NextOutage(0, 0); !ok {
		t.Fatal("node 0 lost its window")
	}
}

func TestStartSuppressesEarlyFailures(t *testing.T) {
	s := expSpec(3, 100, 10)
	s.Start = 5000
	in, err := NewInjector(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, _, ok := in.NextOutage(0, 0)
	if !ok {
		t.Fatal("ran dry")
	}
	if d < 5000 {
		t.Fatalf("outage at %v before start=5000", d)
	}
}

func TestDefaults(t *testing.T) {
	s := &Spec{Model: ModelExponential, MTBF: 10, MTTR: 1}
	if s.EffectiveRecovery() != RecoverShrink {
		t.Errorf("default recovery %q", s.EffectiveRecovery())
	}
	if s.EffectiveMaxRequeues() != DefaultMaxRequeues {
		t.Errorf("default max requeues %d", s.EffectiveMaxRequeues())
	}
	if s.EffectiveShape() != 0.7 {
		t.Errorf("default shape %v", s.EffectiveShape())
	}
	if (&Spec{}).Enabled() || (*Spec)(nil).Enabled() {
		t.Error("empty spec reports enabled")
	}
}

func TestValidateForReportsNodeAndMachineSize(t *testing.T) {
	s := &Spec{Model: ModelTrace, Outages: []Outage{
		{Node: 2, Down: 1, Up: 2},
		{Node: 12, Down: 5, Up: 9},
	}}
	err := s.ValidateFor(8)
	if err == nil {
		t.Fatal("outage naming node 12 on an 8-node machine validated")
	}
	for _, want := range []string{"outage 1", "node 12", "machine has 8"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if err := s.ValidateFor(13); err != nil {
		t.Errorf("same spec on a 13-node machine: %v", err)
	}
	if err := s.ValidateFor(0); err == nil {
		t.Error("zero-node machine validated")
	}
}

func TestValidateForSkipsStructuralChecksWhenDisabled(t *testing.T) {
	for _, s := range []*Spec{nil, {}} {
		if err := s.ValidateFor(0); err != nil {
			t.Errorf("disabled spec %v: %v", s, err)
		}
	}
}

func TestValidateRejectsNonFiniteTimes(t *testing.T) {
	nan, inf := unit.Quantity(math.NaN()), unit.Quantity(math.Inf(1))
	bad := []*Spec{
		{Model: ModelExponential, MTBF: nan, MTTR: 60},
		{Model: ModelExponential, MTBF: 1000, MTTR: inf},
		{Model: ModelWeibull, MTBF: inf, MTTR: 60, Shape: 1},
		{Model: ModelTrace, Outages: []Outage{{Node: 0, Down: nan, Up: 2}}},
		{Model: ModelTrace, Outages: []Outage{{Node: 0, Down: 1, Up: inf}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("non-finite spec %d validated", i)
		}
	}
}
