// Package fluid implements a rate-based ("fluid") resource-sharing model in
// the style of SimGrid's LMM solver, which the original ElastiSim builds on.
//
// Work in the simulator — compute phases, communication, file I/O — is
// represented as activities. An activity has an amount of remaining work
// (flops, bytes) and a set of resource usages. Each usage says: while this
// activity progresses at rate r, it consumes weight*r capacity on that
// resource. Resources (node cores, NIC links, the parallel file system)
// have finite capacity shared by all activities using them.
//
// The solver assigns each activity the max–min fair rate: all activities
// grow their rates equally until a resource saturates, activities bound by
// that resource are frozen, and filling continues for the rest
// (progressive filling). An alternative equal-split policy is provided for
// the fairness ablation experiment.
package fluid

import (
	"fmt"
	"math"

	"repro/internal/des"
)

// Fairness selects how contended capacity is divided.
type Fairness int

const (
	// MaxMin is progressive-filling max–min fairness (the default, matching
	// SimGrid's behaviour).
	MaxMin Fairness = iota
	// EqualSplit divides every resource evenly among the activities using
	// it, ignoring bottlenecks elsewhere. Kept for the ablation bench; it
	// under-utilizes multi-resource activities.
	EqualSplit
)

func (f Fairness) String() string {
	switch f {
	case MaxMin:
		return "max-min"
	case EqualSplit:
		return "equal-split"
	default:
		return fmt.Sprintf("Fairness(%d)", int(f))
	}
}

// Resource is a capacity-limited entity: a node's compute capability
// (flops/s), a link (bytes/s), or a storage target (bytes/s).
type Resource struct {
	name     string
	capacity float64
	id       int

	// solver scratch state
	remaining float64
	weightSum float64
	nActive   int
	saturated bool
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource's capacity in units per second.
func (r *Resource) Capacity() float64 { return r.capacity }

// usage couples an activity to a resource with a consumption weight.
type usage struct {
	res    *Resource
	weight float64
}

// Activity is a unit of fluid work. Create with NewActivity, add usages,
// then hand it to Pool.Start.
type Activity struct {
	name       string
	remaining  float64
	usages     []usage
	onComplete func()

	rate    float64
	maxRate float64 // 0 = unlimited
	frozen  bool
	event   *des.Event
	pool    *Pool
	index   int // position in pool.active, -1 when not active
}

// NewActivity creates an activity with the given total work (in resource
// units, e.g. flops or bytes). onComplete runs when the work reaches zero;
// it may start new activities.
func NewActivity(name string, work float64, onComplete func()) *Activity {
	if work < 0 || math.IsNaN(work) {
		panic(fmt.Sprintf("fluid: invalid work %v for activity %s", work, name))
	}
	return &Activity{name: name, remaining: work, onComplete: onComplete, index: -1}
}

// AddUsage declares that the activity consumes weight units of res capacity
// per unit of activity progress. Must be called before Start.
func (a *Activity) AddUsage(res *Resource, weight float64) {
	if a.pool != nil {
		panic("fluid: AddUsage after Start")
	}
	if weight <= 0 || math.IsNaN(weight) {
		panic(fmt.Sprintf("fluid: invalid usage weight %v on %s", weight, res.name))
	}
	a.usages = append(a.usages, usage{res: res, weight: weight})
}

// SetMaxRate caps the activity's progress rate. It expresses constraints
// from resources private to the activity's owner (e.g. a job's own node
// links bounding its PFS transfer) without registering those resources in
// the solver. Must be called before Start.
func (a *Activity) SetMaxRate(r float64) {
	if a.pool != nil {
		panic("fluid: SetMaxRate after Start")
	}
	if r <= 0 || math.IsNaN(r) {
		panic(fmt.Sprintf("fluid: invalid max rate %v", r))
	}
	a.maxRate = r
}

// Name returns the activity's diagnostic name.
func (a *Activity) Name() string { return a.name }

// Remaining returns the work left, valid only between pool updates (the
// pool lazily advances progress); use Pool.RemainingOf for an exact value.
func (a *Activity) Remaining() float64 { return a.remaining }

// Rate returns the currently assigned progress rate.
func (a *Activity) Rate() float64 { return a.rate }

// Active reports whether the activity is registered in a pool.
func (a *Activity) Active() bool { return a.index >= 0 }

// Pool manages the set of running activities on top of a DES kernel. All
// methods must be called from the kernel's event loop (single-threaded).
type Pool struct {
	kernel     *des.Kernel
	fairness   Fairness
	resources  []*Resource
	active     []*Activity
	lastUpdate des.Time
	epsilon    float64
	solves     uint64
}

// NewPool creates a pool bound to the kernel.
func NewPool(k *des.Kernel) *Pool {
	return &Pool{kernel: k, epsilon: 1e-9}
}

// SetFairness selects the sharing policy. Call before starting activities.
func (p *Pool) SetFairness(f Fairness) { p.fairness = f }

// Solves returns how many rate recomputations have run (for perf metrics).
func (p *Pool) Solves() uint64 { return p.solves }

// NewResource registers a resource with the pool.
func (p *Pool) NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("fluid: invalid capacity %v for resource %s", capacity, name))
	}
	r := &Resource{name: name, capacity: capacity, id: len(p.resources)}
	p.resources = append(p.resources, r)
	return r
}

// Start registers the activity and recomputes rates. Zero-work activities
// complete at the current timestamp (via an immediate event, so that the
// caller's stack unwinds first).
func (p *Pool) Start(a *Activity) {
	if a.pool != nil {
		panic(fmt.Sprintf("fluid: activity %s started twice", a.name))
	}
	if len(a.usages) == 0 {
		panic(fmt.Sprintf("fluid: activity %s has no resource usages", a.name))
	}
	a.pool = p
	p.advanceProgress()
	a.index = len(p.active)
	p.active = append(p.active, a)
	p.recompute()
}

// Cancel removes an activity without running its completion callback.
func (p *Pool) Cancel(a *Activity) {
	if a.index < 0 || a.pool != p {
		return
	}
	p.advanceProgress()
	p.remove(a)
	p.recompute()
}

// RemainingOf returns the exact remaining work of an active activity at the
// current kernel time.
func (p *Pool) RemainingOf(a *Activity) float64 {
	if a.index < 0 {
		return a.remaining
	}
	elapsed := float64(p.kernel.Now() - p.lastUpdate)
	rem := a.remaining - a.rate*elapsed
	if rem < 0 {
		rem = 0
	}
	return rem
}

// ActiveCount returns the number of running activities.
func (p *Pool) ActiveCount() int { return len(p.active) }

// remove unlinks the activity and cancels its completion event.
func (p *Pool) remove(a *Activity) {
	last := len(p.active) - 1
	i := a.index
	p.active[i] = p.active[last]
	p.active[i].index = i
	p.active = p.active[:last]
	a.index = -1
	if a.event != nil {
		p.kernel.Cancel(a.event)
		a.event = nil
	}
}

// advanceProgress applies the elapsed time since the last update to all
// active activities' remaining work.
func (p *Pool) advanceProgress() {
	now := p.kernel.Now()
	elapsed := float64(now - p.lastUpdate)
	if elapsed > 0 {
		for _, a := range p.active {
			a.remaining -= a.rate * elapsed
			if a.remaining < 0 {
				a.remaining = 0
			}
		}
	}
	p.lastUpdate = now
}

// recompute solves for rates and reschedules completion events.
func (p *Pool) recompute() {
	p.solves++
	switch p.fairness {
	case MaxMin:
		p.solveMaxMin()
	case EqualSplit:
		p.solveEqualSplit()
	}
	// Reschedule completions.
	now := p.kernel.Now()
	for _, a := range p.active {
		var due des.Time
		switch {
		case a.remaining <= 0:
			due = now
		case a.rate <= 0:
			due = des.Infinity
		default:
			due = now + des.Time(a.remaining/a.rate)
		}
		if a.event != nil {
			p.kernel.Cancel(a.event)
			a.event = nil
		}
		if due < des.Infinity {
			act := a
			a.event = p.kernel.Schedule(due, des.PriorityActivity, func() {
				p.complete(act)
			})
		}
	}
}

// complete finalizes an activity whose work reached zero.
func (p *Pool) complete(a *Activity) {
	a.event = nil
	p.advanceProgress()
	// Guard against float drift: force remaining to zero at completion.
	a.remaining = 0
	p.remove(a)
	p.recompute()
	if a.onComplete != nil {
		a.onComplete()
	}
}

// solveMaxMin assigns progressive-filling max–min fair rates.
func (p *Pool) solveMaxMin() {
	if len(p.active) == 0 {
		return
	}
	// Reset scratch state on the resources actually in use.
	touched := touchedResources(p.active)
	for _, r := range touched {
		r.remaining = r.capacity
		r.weightSum = 0
		r.saturated = false
	}
	unfrozen := 0
	for _, a := range p.active {
		a.rate = 0
		a.frozen = false
		unfrozen++
		for _, u := range a.usages {
			u.res.weightSum += u.weight
		}
	}
	for unfrozen > 0 {
		// Find the bottleneck increment: the tightest resource, or the
		// nearest per-activity rate cap.
		delta := math.Inf(1)
		for _, r := range touched {
			if r.saturated || r.weightSum <= 0 {
				continue
			}
			if d := r.remaining / r.weightSum; d < delta {
				delta = d
			}
		}
		for _, a := range p.active {
			if a.frozen || a.maxRate <= 0 {
				continue
			}
			if d := a.maxRate - a.rate; d < delta {
				delta = d
			}
		}
		if math.IsInf(delta, 1) {
			// No unfrozen activity is constrained — cannot happen since
			// every activity has at least one usage, but guard anyway.
			break
		}
		// Apply the increment.
		for _, a := range p.active {
			if a.frozen {
				continue
			}
			a.rate += delta
		}
		for _, r := range touched {
			if r.saturated || r.weightSum <= 0 {
				continue
			}
			r.remaining -= delta * r.weightSum
			if r.remaining <= p.epsilon*r.capacity {
				r.remaining = 0
				r.saturated = true
			}
		}
		// Freeze activities that touch a saturated resource or hit their
		// rate cap; either way their consumption stops growing.
		for _, a := range p.active {
			if a.frozen {
				continue
			}
			freeze := a.maxRate > 0 && a.rate >= a.maxRate-p.epsilon*a.maxRate
			if !freeze {
				for _, u := range a.usages {
					if u.res.saturated {
						freeze = true
						break
					}
				}
			}
			if freeze {
				a.frozen = true
				unfrozen--
				// Its weight no longer grows on other resources.
				for _, u2 := range a.usages {
					u2.res.weightSum -= u2.weight
				}
			}
		}
	}
	// Convert the uniform fill level into per-activity progress rates:
	// the fill is already the progress rate (weights scale consumption,
	// not progress).
}

// solveEqualSplit divides each resource evenly among its users; an
// activity's rate is its most restrictive per-resource share.
func (p *Pool) solveEqualSplit() {
	touched := touchedResources(p.active)
	for _, r := range touched {
		r.nActive = 0
	}
	for _, a := range p.active {
		for _, u := range a.usages {
			u.res.nActive++
		}
	}
	for _, a := range p.active {
		rate := math.Inf(1)
		for _, u := range a.usages {
			share := u.res.capacity / float64(u.res.nActive) / u.weight
			if share < rate {
				rate = share
			}
		}
		if a.maxRate > 0 && a.maxRate < rate {
			rate = a.maxRate
		}
		a.rate = rate
	}
}

// touchedResources returns the distinct resources used by the activities,
// in deterministic (id) order of first appearance.
func touchedResources(activities []*Activity) []*Resource {
	seen := map[int]bool{}
	var out []*Resource
	for _, a := range activities {
		for _, u := range a.usages {
			if !seen[u.res.id] {
				seen[u.res.id] = true
				out = append(out, u.res)
			}
		}
	}
	return out
}
