// Package fluid implements a rate-based ("fluid") resource-sharing model in
// the style of SimGrid's LMM solver, which the original ElastiSim builds on.
//
// Work in the simulator — compute phases, communication, file I/O — is
// represented as activities. An activity has an amount of remaining work
// (flops, bytes) and a set of resource usages. Each usage says: while this
// activity progresses at rate r, it consumes weight*r capacity on that
// resource. Resources (node cores, NIC links, the parallel file system)
// have finite capacity shared by all activities using them.
//
// The solver assigns each activity the max–min fair rate: all activities
// grow their rates equally until a resource saturates, activities bound by
// that resource are frozen, and filling continues for the rest
// (progressive filling). An alternative equal-split policy is provided for
// the fairness ablation experiment.
//
// # Incremental solving
//
// Rates are solved per connected component of the bipartite
// activity–resource graph: two activities interact only if they are
// linked by a chain of shared resources, so a Start, Cancel, or completion
// can only change rates inside the touched component(s). The pool
// maintains per-resource membership lists, discovers the affected
// component(s) by traversal on each state change, and re-solves just
// those, leaving every other activity's rate — and, crucially, its
// scheduled completion event — untouched. Activities within a component
// are always solved in start order, so the arithmetic (and therefore every
// bit of the result) is independent of how the component was discovered.
// The ForceFullSolve debug knob re-solves every component on every change
// instead; because untouched components re-solve to bit-identical rates
// and unchanged rates never reschedule events, both modes produce
// bit-identical simulations (asserted by the equivalence regression
// tests).
package fluid

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/des"
)

// Fairness selects how contended capacity is divided.
type Fairness int

const (
	// MaxMin is progressive-filling max–min fairness (the default, matching
	// SimGrid's behaviour).
	MaxMin Fairness = iota
	// EqualSplit divides every resource evenly among the activities using
	// it, ignoring bottlenecks elsewhere. Kept for the ablation bench; it
	// under-utilizes multi-resource activities.
	EqualSplit
)

func (f Fairness) String() string {
	switch f {
	case MaxMin:
		return "max-min"
	case EqualSplit:
		return "equal-split"
	default:
		return fmt.Sprintf("Fairness(%d)", int(f))
	}
}

// actRef is a back-reference from a resource to an active activity using
// it; ui is the index of the corresponding usage in act.usages, so that
// swap-removal can fix the moved entry's position in O(1).
type actRef struct {
	act *Activity
	ui  int
}

// Resource is a capacity-limited entity: a node's compute capability
// (flops/s), a link (bytes/s), or a storage target (bytes/s).
type Resource struct {
	name     string
	capacity float64
	id       int

	// acts lists the active activities using this resource (the resource
	// side of the component graph's adjacency).
	acts []actRef

	// solver scratch state
	remaining float64
	weightSum float64
	nActive   int
	saturated bool
	mark      uint64 // component-traversal stamp
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource's capacity in units per second.
func (r *Resource) Capacity() float64 { return r.capacity }

// usage couples an activity to a resource with a consumption weight.
type usage struct {
	res    *Resource
	weight float64
	pos    int // index of this activity's entry in res.acts while active
}

// Activity is a unit of fluid work. Create with NewActivity, add usages,
// then hand it to Pool.Start.
type Activity struct {
	name       string
	remaining  float64
	usages     []usage
	onComplete func()

	rate     float64
	prevRate float64 // rate before the current solve (elision check)
	maxRate  float64 // 0 = unlimited
	frozen   bool
	event    *des.Event
	pool     *Pool
	index    int    // position in pool.active, -1 when not active
	seq      uint64 // start order; canonical within-component solve order
	mark     uint64 // component-traversal stamp
}

// NewActivity creates an activity with the given total work (in resource
// units, e.g. flops or bytes). onComplete runs when the work reaches zero;
// it may start new activities.
func NewActivity(name string, work float64, onComplete func()) *Activity {
	if work < 0 || math.IsNaN(work) {
		panic(fmt.Sprintf("fluid: invalid work %v for activity %s", work, name))
	}
	return &Activity{name: name, remaining: work, onComplete: onComplete, index: -1}
}

// AddUsage declares that the activity consumes weight units of res capacity
// per unit of activity progress. Must be called before Start.
func (a *Activity) AddUsage(res *Resource, weight float64) {
	if a.pool != nil {
		panic("fluid: AddUsage after Start")
	}
	if weight <= 0 || math.IsNaN(weight) {
		panic(fmt.Sprintf("fluid: invalid usage weight %v on %s", weight, res.name))
	}
	a.usages = append(a.usages, usage{res: res, weight: weight})
}

// SetMaxRate caps the activity's progress rate. It expresses constraints
// from resources private to the activity's owner (e.g. a job's own node
// links bounding its PFS transfer) without registering those resources in
// the solver. Must be called before Start.
func (a *Activity) SetMaxRate(r float64) {
	if a.pool != nil {
		panic("fluid: SetMaxRate after Start")
	}
	if r <= 0 || math.IsNaN(r) {
		panic(fmt.Sprintf("fluid: invalid max rate %v", r))
	}
	a.maxRate = r
}

// Name returns the activity's diagnostic name.
func (a *Activity) Name() string { return a.name }

// Remaining returns the work left, valid only between pool updates (the
// pool lazily advances progress); use Pool.RemainingOf for an exact value.
func (a *Activity) Remaining() float64 { return a.remaining }

// Rate returns the currently assigned progress rate.
func (a *Activity) Rate() float64 { return a.rate }

// Active reports whether the activity is registered in a pool.
func (a *Activity) Active() bool { return a.index >= 0 }

// Pool manages the set of running activities on top of a DES kernel. All
// methods must be called from the kernel's event loop (single-threaded).
type Pool struct {
	kernel     *des.Kernel
	fairness   Fairness
	resources  []*Resource
	active     []*Activity
	lastUpdate des.Time
	epsilon    float64
	forceFull  bool

	startSeq uint64 // next Activity.seq
	stamp    uint64 // traversal stamp generator

	// comp is the scratch buffer component traversals collect into;
	// compRes collects the component's distinct resources.
	comp    []*Activity
	compRes []*Resource

	// Performance counters (see the accessors for meanings).
	solves      uint64
	solvedActs  uint64
	reschedules uint64
	elided      uint64
}

// NewPool creates a pool bound to the kernel. Pools share no state with
// each other — any number of simulations can run concurrently in one
// process — so the full-recompute debug mode is strictly per-pool
// (SetForceFullSolve), never a process-wide switch.
func NewPool(k *des.Kernel) *Pool {
	return &Pool{kernel: k, epsilon: 1e-9}
}

// SetFairness selects the sharing policy. Call before starting activities.
func (p *Pool) SetFairness(f Fairness) { p.fairness = f }

// SetForceFullSolve toggles the full-recompute debug mode for this pool.
// Call before starting activities.
func (p *Pool) SetForceFullSolve(v bool) { p.forceFull = v }

// Solves returns how many rate recomputations have run (for perf metrics).
func (p *Pool) Solves() uint64 { return p.solves }

// SolvedActivities returns the cumulative number of activities passed
// through the solver — the work metric incremental solving reduces.
func (p *Pool) SolvedActivities() uint64 { return p.solvedActs }

// Reschedules returns how many completion events were (re)scheduled.
func (p *Pool) Reschedules() uint64 { return p.reschedules }

// ElidedReschedules returns how many completion-event reschedules were
// skipped because the activity's solved rate did not change.
func (p *Pool) ElidedReschedules() uint64 { return p.elided }

// NewResource registers a resource with the pool.
func (p *Pool) NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("fluid: invalid capacity %v for resource %s", capacity, name))
	}
	r := &Resource{name: name, capacity: capacity, id: len(p.resources)}
	p.resources = append(p.resources, r)
	return r
}

// Start registers the activity and recomputes rates in its component.
// Zero-work activities complete at the current timestamp (via an immediate
// event, so that the caller's stack unwinds first).
func (p *Pool) Start(a *Activity) {
	if a.pool != nil {
		panic(fmt.Sprintf("fluid: activity %s started twice", a.name))
	}
	if len(a.usages) == 0 {
		panic(fmt.Sprintf("fluid: activity %s has no resource usages", a.name))
	}
	a.pool = p
	a.seq = p.startSeq
	p.startSeq++
	p.advanceProgress()
	a.index = len(p.active)
	p.active = append(p.active, a)
	for ui := range a.usages {
		u := &a.usages[ui]
		u.pos = len(u.res.acts)
		u.res.acts = append(u.res.acts, actRef{act: a, ui: ui})
	}
	p.solves++
	if p.forceFull {
		p.solveAll()
		return
	}
	// The new activity bridges every component it touches into one.
	p.stamp++
	p.collectFrom(a)
	p.solveComponent()
}

// Cancel removes an activity without running its completion callback.
func (p *Pool) Cancel(a *Activity) {
	if a.index < 0 || a.pool != p {
		return
	}
	p.advanceProgress()
	p.remove(a)
	p.solveAfterRemoval(a)
}

// solveAfterRemoval re-solves the activities the removed activity was
// sharing resources with. Removal can split its old component, so each of
// its resources seeds an independent traversal (seeds reached by an
// earlier seed's traversal are skipped): every post-removal component is
// solved exactly once, in isolation.
func (p *Pool) solveAfterRemoval(a *Activity) {
	p.solves++
	if p.forceFull {
		p.solveAll()
		return
	}
	p.stamp++
	for ui := range a.usages {
		res := a.usages[ui].res
		if res.mark == p.stamp { // visited by a previous seed's traversal
			continue
		}
		p.comp = p.comp[:0]
		p.compRes = p.compRes[:0]
		p.visitResource(res)
		p.drainQueue()
		if len(p.comp) > 0 {
			p.solveComponent()
		}
	}
}

// RemainingOf returns the exact remaining work of an active activity at the
// current kernel time.
func (p *Pool) RemainingOf(a *Activity) float64 {
	if a.index < 0 {
		return a.remaining
	}
	elapsed := float64(p.kernel.Now() - p.lastUpdate)
	rem := a.remaining - a.rate*elapsed
	if rem < 0 {
		rem = 0
	}
	return rem
}

// ActiveCount returns the number of running activities.
func (p *Pool) ActiveCount() int { return len(p.active) }

// remove unlinks the activity from the pool and from every resource's
// membership list, and retires its completion event.
func (p *Pool) remove(a *Activity) {
	last := len(p.active) - 1
	i := a.index
	p.active[i] = p.active[last]
	p.active[i].index = i
	p.active[last] = nil
	p.active = p.active[:last]
	a.index = -1
	for ui := range a.usages {
		u := &a.usages[ui]
		acts := u.res.acts
		end := len(acts) - 1
		if u.pos != end {
			moved := acts[end]
			acts[u.pos] = moved
			moved.act.usages[moved.ui].pos = u.pos
		}
		acts[end] = actRef{}
		u.res.acts = acts[:end]
	}
	if a.event != nil {
		p.kernel.Cancel(a.event)
		p.kernel.Release(a.event)
		a.event = nil
	}
}

// advanceProgress applies the elapsed time since the last update to all
// active activities' remaining work.
func (p *Pool) advanceProgress() {
	now := p.kernel.Now()
	elapsed := float64(now - p.lastUpdate)
	if elapsed > 0 {
		for _, a := range p.active {
			a.remaining -= a.rate * elapsed
			if a.remaining < 0 {
				a.remaining = 0
			}
		}
	}
	p.lastUpdate = now
}

// complete finalizes an activity whose work reached zero.
func (p *Pool) complete(a *Activity) {
	p.kernel.Release(a.event)
	a.event = nil
	p.advanceProgress()
	// Guard against float drift: force remaining to zero at completion.
	a.remaining = 0
	p.remove(a)
	p.solveAfterRemoval(a)
	if a.onComplete != nil {
		a.onComplete()
	}
}

// collectFrom gathers the connected component containing a into p.comp /
// p.compRes (breadth-first over the bipartite activity–resource graph).
// The caller must have advanced p.stamp to open a fresh visited set.
func (p *Pool) collectFrom(a *Activity) {
	p.comp = p.comp[:0]
	p.compRes = p.compRes[:0]
	a.mark = p.stamp
	p.comp = append(p.comp, a)
	p.drainQueue()
}

// drainQueue expands p.comp transitively: for every collected activity,
// visit its resources; for every visited resource, collect its activities.
func (p *Pool) drainQueue() {
	s := p.stamp
	for head := 0; head < len(p.comp); head++ {
		a := p.comp[head]
		for ui := range a.usages {
			if res := a.usages[ui].res; res.mark != s {
				p.visitResource(res)
			}
		}
	}
}

// visitResource marks res and enqueues its unvisited activities.
func (p *Pool) visitResource(res *Resource) {
	s := p.stamp
	res.mark = s
	p.compRes = append(p.compRes, res)
	for _, ref := range res.acts {
		if ref.act.mark != s {
			ref.act.mark = s
			p.comp = append(p.comp, ref.act)
		}
	}
}

// solveAll re-solves every component (the ForceFullSolve path). Component
// enumeration order is irrelevant: components are disjoint and each is
// solved in canonical (start-order) sequence.
func (p *Pool) solveAll() {
	p.stamp++
	s := p.stamp
	for i := 0; i < len(p.active); i++ {
		a := p.active[i]
		if a.mark == s {
			continue
		}
		p.collectFrom(a)
		p.solveComponent()
	}
}

// solveComponent solves rates for the activities in p.comp (one connected
// component) and reschedules the completion events whose rates changed.
// Activities are solved in start order, making the floating-point
// arithmetic — and hence the solved rates — independent of the traversal
// order that discovered the component.
func (p *Pool) solveComponent() {
	comp := p.comp
	slices.SortFunc(comp, func(a, b *Activity) int {
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
	p.solvedActs += uint64(len(comp))
	for _, a := range comp {
		a.prevRate = a.rate
	}
	switch p.fairness {
	case MaxMin:
		p.solveMaxMin(comp, p.compRes)
	case EqualSplit:
		p.solveEqualSplit(comp, p.compRes)
	}
	p.reschedule(comp)
}

// reschedule updates completion events for the just-solved activities. An
// activity whose rate is exactly unchanged keeps its event: the previously
// scheduled completion time is the same closed form evaluated earlier, so
// skipping the cancel+reschedule cannot alter the simulation (completion
// forces remaining to zero, absorbing sub-ulp drift). This elision is what
// lets untouched components skip event churn entirely.
func (p *Pool) reschedule(comp []*Activity) {
	now := p.kernel.Now()
	for _, a := range comp {
		if a.event != nil && a.rate == a.prevRate {
			p.elided++
			continue
		}
		var due des.Time
		switch {
		case a.remaining <= 0:
			due = now
		case a.rate <= 0:
			due = des.Infinity
		default:
			due = now + des.Time(a.remaining/a.rate)
		}
		if a.event != nil {
			p.kernel.Cancel(a.event)
			p.kernel.Release(a.event)
			a.event = nil
		}
		if due < des.Infinity {
			act := a
			a.event = p.kernel.Schedule(due, des.PriorityActivity, func() {
				p.complete(act)
			})
			p.reschedules++
		}
	}
}

// solveMaxMin assigns progressive-filling max–min fair rates within one
// component.
func (p *Pool) solveMaxMin(comp []*Activity, touched []*Resource) {
	if len(comp) == 0 {
		return
	}
	for _, r := range touched {
		r.remaining = r.capacity
		r.weightSum = 0
		r.saturated = false
	}
	unfrozen := 0
	for _, a := range comp {
		a.rate = 0
		a.frozen = false
		unfrozen++
		for _, u := range a.usages {
			u.res.weightSum += u.weight
		}
	}
	for unfrozen > 0 {
		// Find the bottleneck increment: the tightest resource, or the
		// nearest per-activity rate cap.
		delta := math.Inf(1)
		for _, r := range touched {
			if r.saturated || r.weightSum <= 0 {
				continue
			}
			if d := r.remaining / r.weightSum; d < delta {
				delta = d
			}
		}
		for _, a := range comp {
			if a.frozen || a.maxRate <= 0 {
				continue
			}
			if d := a.maxRate - a.rate; d < delta {
				delta = d
			}
		}
		if math.IsInf(delta, 1) {
			// No unfrozen activity is constrained — cannot happen since
			// every activity has at least one usage, but guard anyway.
			break
		}
		// Apply the increment.
		for _, a := range comp {
			if a.frozen {
				continue
			}
			a.rate += delta
		}
		for _, r := range touched {
			if r.saturated || r.weightSum <= 0 {
				continue
			}
			r.remaining -= delta * r.weightSum
			if r.remaining <= p.epsilon*r.capacity {
				r.remaining = 0
				r.saturated = true
			}
		}
		// Freeze activities that touch a saturated resource or hit their
		// rate cap; either way their consumption stops growing.
		for _, a := range comp {
			if a.frozen {
				continue
			}
			freeze := a.maxRate > 0 && a.rate >= a.maxRate-p.epsilon*a.maxRate
			if !freeze {
				for _, u := range a.usages {
					if u.res.saturated {
						freeze = true
						break
					}
				}
			}
			if freeze {
				a.frozen = true
				unfrozen--
				// Its weight no longer grows on other resources.
				for _, u2 := range a.usages {
					u2.res.weightSum -= u2.weight
				}
			}
		}
	}
	// The uniform fill level IS the progress rate (weights scale
	// consumption, not progress).
}

// solveEqualSplit divides each resource evenly among its users; an
// activity's rate is its most restrictive per-resource share. Every user
// of a touched resource is in the component by construction, so the
// per-resource counts are globally correct.
func (p *Pool) solveEqualSplit(comp []*Activity, touched []*Resource) {
	for _, r := range touched {
		r.nActive = 0
	}
	for _, a := range comp {
		for _, u := range a.usages {
			u.res.nActive++
		}
	}
	for _, a := range comp {
		rate := math.Inf(1)
		for _, u := range a.usages {
			share := u.res.capacity / float64(u.res.nActive) / u.weight
			if share < rate {
				rate = share
			}
		}
		if a.maxRate > 0 && a.maxRate < rate {
			rate = a.maxRate
		}
		a.rate = rate
	}
}
