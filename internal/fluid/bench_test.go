package fluid

import (
	"testing"

	"repro/internal/des"
)

// benchPool builds a pool with n long-running background activities. When
// shared is true they all contend on one global resource (one connected
// component); otherwise each runs on a private resource (n singleton
// components — the job-private case the fast-path ablation exploits).
func benchPool(b *testing.B, n int, shared bool) (*des.Kernel, *Pool, *Resource) {
	b.Helper()
	k := des.NewKernel()
	p := NewPool(k)
	var global *Resource
	if shared {
		global = p.NewResource("global", float64(n))
	}
	for i := 0; i < n; i++ {
		a := NewActivity("bg", 1e18, nil)
		if shared {
			a.AddUsage(global, 1)
		} else {
			a.AddUsage(p.NewResource("private", 100), 1)
		}
		p.Start(a)
	}
	extra := p.NewResource("extra", 100)
	return k, p, extra
}

// BenchmarkSolveDisjoint measures one Start+Cancel cycle of an activity
// whose resource is disjoint from 256 running background activities. The
// incremental solver only touches the one-activity component; the full
// solver re-solves and reschedules all 257.
func BenchmarkSolveDisjoint(b *testing.B) {
	_, p, extra := benchPool(b, 256, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewActivity("probe", 1e18, nil)
		a.AddUsage(extra, 1)
		p.Start(a)
		p.Cancel(a)
	}
}

// BenchmarkSolveShared is the adversarial case: the churning activity
// shares one resource with all 256 background activities, so the touched
// component is the whole pool and incrementality cannot help. It bounds
// the overhead of the component machinery.
func BenchmarkSolveShared(b *testing.B) {
	_, p, _ := benchPool(b, 256, true)
	shared := p.resources[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewActivity("probe", 1e18, nil)
		a.AddUsage(shared, 1)
		p.Start(a)
		p.Cancel(a)
	}
}

// BenchmarkChurn runs a full simulation: 200 activities with staggered
// amounts of work across 32 resources, executed to completion. Every
// completion triggers a re-solve and rescheduling, exercising the event
// cancel/reuse path end to end.
func BenchmarkChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := des.NewKernel()
		p := NewPool(k)
		resources := make([]*Resource, 32)
		for j := range resources {
			resources[j] = p.NewResource("r", 100)
		}
		rng := des.NewRNG(1)
		for j := 0; j < 200; j++ {
			a := NewActivity("a", rng.Range(1e3, 1e5), nil)
			a.AddUsage(resources[rng.Intn(len(resources))], 1)
			p.Start(a)
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		if p.ActiveCount() != 0 {
			b.Fatal("activities left over")
		}
	}
}
