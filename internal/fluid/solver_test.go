package fluid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/des"
)

const tol = 1e-6

func almost(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1)
}

func TestSingleActivityDuration(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	cpu := p.NewResource("cpu", 100) // 100 flops/s
	var done des.Time
	a := NewActivity("compute", 500, func() { done = k.Now() })
	a.AddUsage(cpu, 1)
	p.Start(a)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(done), 5) {
		t.Errorf("completed at %v, want 5s", done)
	}
}

func TestFairShareTwoActivities(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	link := p.NewResource("link", 10)
	var t1, t2 des.Time
	a := NewActivity("a", 10, func() { t1 = k.Now() })
	a.AddUsage(link, 1)
	b := NewActivity("b", 20, func() { t2 = k.Now() })
	b.AddUsage(link, 1)
	p.Start(a)
	p.Start(b)
	// Processor sharing: both at rate 5 until t=2 (a done), then b alone at
	// 10 with 10 remaining -> done at t=3.
	if got := a.Rate(); !almost(got, 5) {
		t.Errorf("a rate %v, want 5", got)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(t1), 2) {
		t.Errorf("a done at %v, want 2", t1)
	}
	if !almost(float64(t2), 3) {
		t.Errorf("b done at %v, want 3", t2)
	}
}

func TestWeightedUsage(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	res := p.NewResource("r", 10)
	var done des.Time
	// Weight 2: consumes 2 units of capacity per unit of progress.
	a := NewActivity("a", 10, func() { done = k.Now() })
	a.AddUsage(res, 2)
	p.Start(a)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(done), 2) {
		t.Errorf("done at %v, want 2 (rate 5)", done)
	}
}

// The classic three-activity bottleneck example from max-min fairness texts:
// A uses r1 only, B uses r1 and r2, C uses r2 only, cap(r1)=1, cap(r2)=10.
// Max-min gives A=B=0.5 and C=9.5; equal split gives C=5.
func TestMaxMinBottleneck(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	r1 := p.NewResource("r1", 1)
	r2 := p.NewResource("r2", 10)
	a := NewActivity("a", 1e9, nil)
	a.AddUsage(r1, 1)
	b := NewActivity("b", 1e9, nil)
	b.AddUsage(r1, 1)
	b.AddUsage(r2, 1)
	c := NewActivity("c", 1e9, nil)
	c.AddUsage(r2, 1)
	p.Start(a)
	p.Start(b)
	p.Start(c)
	if !almost(a.Rate(), 0.5) {
		t.Errorf("A rate %v, want 0.5", a.Rate())
	}
	if !almost(b.Rate(), 0.5) {
		t.Errorf("B rate %v, want 0.5", b.Rate())
	}
	if !almost(c.Rate(), 9.5) {
		t.Errorf("C rate %v, want 9.5", c.Rate())
	}
}

func TestEqualSplitAblation(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	p.SetFairness(EqualSplit)
	r1 := p.NewResource("r1", 1)
	r2 := p.NewResource("r2", 10)
	a := NewActivity("a", 1e9, nil)
	a.AddUsage(r1, 1)
	b := NewActivity("b", 1e9, nil)
	b.AddUsage(r1, 1)
	b.AddUsage(r2, 1)
	c := NewActivity("c", 1e9, nil)
	c.AddUsage(r2, 1)
	p.Start(a)
	p.Start(b)
	p.Start(c)
	if !almost(c.Rate(), 5) {
		t.Errorf("C rate %v, want 5 under equal split", c.Rate())
	}
	if !almost(b.Rate(), 0.5) {
		t.Errorf("B rate %v, want 0.5 under equal split", b.Rate())
	}
}

func TestCancelFreesCapacity(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	res := p.NewResource("r", 10)
	var done des.Time
	a := NewActivity("a", 100, func() { done = k.Now() })
	a.AddUsage(res, 1)
	b := NewActivity("b", 100, nil)
	b.AddUsage(res, 1)
	p.Start(a)
	p.Start(b)
	// At t=1 cancel b; a then runs at full rate.
	k.Schedule(1, des.PriorityDefault, func() { p.Cancel(b) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// a does 5 units in [0,1], then 95 at rate 10 -> 9.5s more.
	if !almost(float64(done), 10.5) {
		t.Errorf("a done at %v, want 10.5", done)
	}
	if b.Active() {
		t.Error("cancelled activity still active")
	}
}

func TestZeroWorkCompletesImmediately(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	res := p.NewResource("r", 10)
	fired := false
	k.Schedule(3, des.PriorityDefault, func() {
		a := NewActivity("zero", 0, func() {
			fired = true
			if k.Now() != 3 {
				t.Errorf("zero-work completion at %v, want 3", k.Now())
			}
		})
		a.AddUsage(res, 1)
		p.Start(a)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("zero-work activity never completed")
	}
}

func TestCompletionChain(t *testing.T) {
	// onComplete starting follow-up activities models sequential tasks.
	k := des.NewKernel()
	p := NewPool(k)
	res := p.NewResource("r", 1)
	var finished des.Time
	second := NewActivity("second", 2, func() { finished = k.Now() })
	second.AddUsage(res, 1)
	first := NewActivity("first", 3, func() { p.Start(second) })
	first.AddUsage(res, 1)
	p.Start(first)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(finished), 5) {
		t.Errorf("chain finished at %v, want 5", finished)
	}
}

func TestRemainingOf(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	res := p.NewResource("r", 10)
	a := NewActivity("a", 100, nil)
	a.AddUsage(res, 1)
	p.Start(a)
	k.Schedule(4, des.PriorityDefault, func() {
		if got := p.RemainingOf(a); !almost(got, 60) {
			t.Errorf("remaining %v at t=4, want 60", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestManyActivitiesShareEvenly(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	res := p.NewResource("pfs", 100)
	const n = 20
	var doneCount int
	for i := 0; i < n; i++ {
		a := NewActivity("io", 50, func() { doneCount++ })
		a.AddUsage(res, 1)
		p.Start(a)
	}
	for _, a := range p.active {
		if !almost(a.Rate(), 100.0/n) {
			t.Fatalf("rate %v, want %v", a.Rate(), 100.0/n)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if doneCount != n {
		t.Errorf("%d completions, want %d", doneCount, n)
	}
	// All finish together: n*50 units at 100/s total = 10s.
	if !almost(float64(k.Now()), 10) {
		t.Errorf("finished at %v, want 10", k.Now())
	}
}

func TestStaggeredArrivalsProcessorSharing(t *testing.T) {
	// Second activity arrives halfway through the first. Validates lazy
	// progress accounting across recomputations.
	k := des.NewKernel()
	p := NewPool(k)
	res := p.NewResource("r", 2)
	var t1, t2 des.Time
	a := NewActivity("a", 8, func() { t1 = k.Now() })
	a.AddUsage(res, 1)
	p.Start(a)
	k.Schedule(2, des.PriorityDefault, func() {
		b := NewActivity("b", 2, func() { t2 = k.Now() })
		b.AddUsage(res, 1)
		p.Start(b)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// a: 4 units in [0,2] at rate 2, then shares at rate 1.
	// b: 2 units at rate 1 -> done at t=4. a: 4 left at t=2, 2 done by t=4,
	// 2 left, alone at rate 2 -> done at t=5.
	if !almost(float64(t2), 4) {
		t.Errorf("b done at %v, want 4", t2)
	}
	if !almost(float64(t1), 5) {
		t.Errorf("a done at %v, want 5", t1)
	}
}

func TestStartTwicePanics(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	res := p.NewResource("r", 1)
	a := NewActivity("a", 1, nil)
	a.AddUsage(res, 1)
	p.Start(a)
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	p.Start(a)
}

func TestNoUsagesPanics(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	a := NewActivity("a", 1, nil)
	defer func() {
		if recover() == nil {
			t.Error("Start without usages did not panic")
		}
	}()
	p.Start(a)
}

func TestInvalidWorkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative work did not panic")
		}
	}()
	NewActivity("bad", -1, nil)
}

// Property: for random activity sets, the max-min solution never
// oversubscribes a resource and gives every activity a positive rate.
func TestMaxMinFeasibilityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := des.NewRNG(seed)
		k := des.NewKernel()
		p := NewPool(k)
		nRes := 1 + rng.Intn(5)
		resources := make([]*Resource, nRes)
		for i := range resources {
			resources[i] = p.NewResource("r", rng.Range(1, 100))
		}
		nAct := 1 + rng.Intn(10)
		acts := make([]*Activity, nAct)
		for i := range acts {
			a := NewActivity("a", rng.Range(1, 100), nil)
			used := map[int]bool{}
			for j := 0; j <= rng.Intn(nRes); j++ {
				ri := rng.Intn(nRes)
				if used[ri] {
					continue
				}
				used[ri] = true
				a.AddUsage(resources[ri], rng.Range(0.1, 3))
			}
			if len(used) == 0 {
				a.AddUsage(resources[0], 1)
			}
			acts[i] = a
			p.Start(a)
		}
		// Check feasibility.
		load := make(map[*Resource]float64)
		for _, a := range acts {
			if a.rate <= 0 {
				return false
			}
			for _, u := range a.usages {
				load[u.res] += u.weight * a.rate
			}
		}
		for r, l := range load {
			if l > r.capacity*(1+1e-6) {
				return false
			}
		}
		// Max-min optimality (weak check): every activity is bottlenecked,
		// i.e. uses at least one resource that is (nearly) saturated.
		for _, a := range acts {
			bottlenecked := false
			for _, u := range a.usages {
				if load[u.res] >= u.res.capacity*(1-1e-6) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: total work conservation — the sum of work completed equals the
// sum of work submitted, and all activities eventually complete.
func TestWorkConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := des.NewRNG(seed)
		k := des.NewKernel()
		p := NewPool(k)
		res := p.NewResource("r", rng.Range(1, 10))
		n := 1 + rng.Intn(20)
		completed := 0
		for i := 0; i < n; i++ {
			a := NewActivity("a", rng.Range(0.1, 50), func() { completed++ })
			a.AddUsage(res, rng.Range(0.5, 2))
			delay := des.Time(rng.Range(0, 10))
			aa := a
			k.Schedule(delay, des.PriorityDefault, func() { p.Start(aa) })
		}
		if err := k.Run(); err != nil {
			return false
		}
		return completed == n && p.ActiveCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolverRecompute(b *testing.B) {
	k := des.NewKernel()
	p := NewPool(k)
	resources := make([]*Resource, 64)
	for i := range resources {
		resources[i] = p.NewResource("r", 100)
	}
	rng := des.NewRNG(1)
	for i := 0; i < 200; i++ {
		a := NewActivity("a", 1e12, nil)
		a.AddUsage(resources[rng.Intn(64)], 1)
		a.AddUsage(resources[rng.Intn(64)], 0.5)
		p.Start(a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.solveAll()
	}
}

func TestMaxRateAlone(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	res := p.NewResource("r", 100)
	var done des.Time
	a := NewActivity("capped", 50, func() { done = k.Now() })
	a.AddUsage(res, 1)
	a.SetMaxRate(10)
	p.Start(a)
	if !almost(a.Rate(), 10) {
		t.Errorf("rate %v, want 10 (capped)", a.Rate())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(done), 5) {
		t.Errorf("done at %v, want 5", done)
	}
}

func TestMaxRateFreesCapacityForOthers(t *testing.T) {
	// A capped activity must not hold back an uncapped one: max-min gives
	// the capped one its cap and the rest to the other (this is exactly
	// the "narrow reader behind its private link" scenario).
	k := des.NewKernel()
	p := NewPool(k)
	res := p.NewResource("pfs", 80)
	a := NewActivity("narrow", 1e9, nil)
	a.AddUsage(res, 1)
	a.SetMaxRate(10)
	b := NewActivity("wide", 1e9, nil)
	b.AddUsage(res, 1)
	p.Start(a)
	p.Start(b)
	if !almost(a.Rate(), 10) {
		t.Errorf("narrow rate %v, want 10", a.Rate())
	}
	if !almost(b.Rate(), 70) {
		t.Errorf("wide rate %v, want 70", b.Rate())
	}
}

func TestMaxRateAboveBottleneckIsInert(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	res := p.NewResource("r", 10)
	a := NewActivity("a", 1e9, nil)
	a.AddUsage(res, 1)
	a.SetMaxRate(1000)
	b := NewActivity("b", 1e9, nil)
	b.AddUsage(res, 1)
	p.Start(a)
	p.Start(b)
	if !almost(a.Rate(), 5) || !almost(b.Rate(), 5) {
		t.Errorf("rates %v/%v, want 5/5", a.Rate(), b.Rate())
	}
}

func TestMaxRateEqualSplit(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	p.SetFairness(EqualSplit)
	res := p.NewResource("r", 100)
	a := NewActivity("a", 1e9, nil)
	a.AddUsage(res, 1)
	a.SetMaxRate(10)
	b := NewActivity("b", 1e9, nil)
	b.AddUsage(res, 1)
	p.Start(a)
	p.Start(b)
	if !almost(a.Rate(), 10) {
		t.Errorf("capped equal-split rate %v, want 10", a.Rate())
	}
	if !almost(b.Rate(), 50) {
		t.Errorf("uncapped equal-split rate %v, want 50", b.Rate())
	}
}

func TestSetMaxRateValidation(t *testing.T) {
	a := NewActivity("a", 1, nil)
	defer func() {
		if recover() == nil {
			t.Error("non-positive max rate accepted")
		}
	}()
	a.SetMaxRate(0)
}

func TestAccessors(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	r := p.NewResource("disk", 42)
	if r.Name() != "disk" || r.Capacity() != 42 {
		t.Errorf("resource accessors: %q %v", r.Name(), r.Capacity())
	}
	a := NewActivity("job.read", 10, nil)
	a.AddUsage(r, 1)
	if a.Name() != "job.read" || a.Remaining() != 10 {
		t.Errorf("activity accessors: %q %v", a.Name(), a.Remaining())
	}
	p.Start(a)
	if p.Solves() == 0 {
		t.Error("no solves counted")
	}
	if MaxMin.String() != "max-min" || EqualSplit.String() != "equal-split" {
		t.Errorf("fairness strings: %q %q", MaxMin.String(), EqualSplit.String())
	}
	if Fairness(9).String() == "" {
		t.Error("unknown fairness stringer empty")
	}
}

func TestAddUsageValidation(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	r := p.NewResource("r", 1)
	a := NewActivity("a", 1, nil)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero weight", func() { a.AddUsage(r, 0) })
	mustPanic("bad capacity", func() { p.NewResource("x", 0) })
	b := NewActivity("b", 1, nil)
	b.AddUsage(r, 1)
	p.Start(b)
	mustPanic("AddUsage after Start", func() { b.AddUsage(r, 1) })
	mustPanic("SetMaxRate after Start", func() { b.SetMaxRate(1) })
}

func TestCancelInactiveIsNoop(t *testing.T) {
	k := des.NewKernel()
	p := NewPool(k)
	r := p.NewResource("r", 1)
	a := NewActivity("a", 1, nil)
	a.AddUsage(r, 1)
	p.Cancel(a) // never started: no-op
	if a.Active() {
		t.Error("inactive activity reports active")
	}
}
