package core

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/expr"
	"repro/internal/fluid"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sched"
)

// jobState is the engine-internal lifecycle state of a job.
type jobState int

const (
	stateHeld    jobState = iota // submitted, waiting on dependencies
	statePending                 // schedulable
	stateRunning
	stateAtSchedPoint  // paused at a scheduling point, waiting for resume
	stateReconfiguring // paying the reconfiguration cost
	stateDone
)

func (s jobState) String() string {
	switch s {
	case stateHeld:
		return "held"
	case statePending:
		return "pending"
	case stateRunning:
		return "running"
	case stateAtSchedPoint:
		return "at-scheduling-point"
	case stateReconfiguring:
		return "reconfiguring"
	case stateDone:
		return "done"
	default:
		return fmt.Sprintf("jobState(%d)", int(s))
	}
}

// jobRun is the mutable execution state of one job.
type jobRun struct {
	job   *job.Job
	state jobState

	// owner is the job's allocator key, formatted once at submission —
	// allocator calls on hot paths must not re-render it.
	owner string

	nodes     []platform.NodeID
	startTime float64

	// Program counter over the application model.
	phaseIdx int
	iter     int
	taskIdx  int

	// In-flight work: exactly one of activity/timer is set while running.
	activity *fluid.Activity
	timer    *des.Event

	// Walltime enforcement.
	killEvent *des.Event

	// Evolving support: outstanding request and granted-but-unapplied
	// target (applied at the next scheduling point).
	evolvingRequest int
	grantedTarget   int

	// pendingResize holds the PREVIOUS allocation size after a scheduler
	// resize was applied at the current scheduling point (0 = none); the
	// reconfiguration cost is charged when the job resumes.
	pendingResize int

	// Gantt bookkeeping.
	segStart float64

	// depsLeft counts unfinished dependencies; the job is held until it
	// reaches zero.
	depsLeft int

	// listPos is the job's index in the engine's pending queue or running
	// list (it is in at most one at a time), -1 when in neither. Owned by
	// runList; enables O(1) tombstoned removal.
	listPos int

	// Resilience bookkeeping: the checkpointed program-counter position a
	// restart resumes from, when it was taken, when the current iteration
	// began, and how often the job was requeued after node failures.
	ckptPhase int
	ckptIter  int
	lastCkpt  float64
	iterStart float64
	requeues  int

	// Telemetry span bookkeeping: whether a task/reconfigure span is open
	// on the job's track (so kills and failures can close them cleanly).
	telTaskOpen   bool
	telReconfOpen bool

	argsEnv expr.Vars // job args, fixed
}

func (jr *jobRun) phase() *job.Phase { return &jr.job.App.Phases[jr.phaseIdx] }
func (jr *jobRun) task() *job.Task   { return &jr.phase().Tasks[jr.taskIdx] }

// env builds the expression environment for the job's current position.
func (e *Engine) env(jr *jobRun) expr.Env {
	p := jr.phase()
	base := expr.Vars{
		"num_nodes":   float64(len(jr.nodes)),
		"total_nodes": float64(e.alloc.Total()),
		"iteration":   float64(jr.iter),
		"iterations":  float64(p.EffectiveIterations()),
		"phase":       float64(jr.phaseIdx),
		"walltime":    jr.job.WallTimeLimit,
	}
	if jr.argsEnv == nil {
		jr.argsEnv = expr.Vars{}
		for k, v := range jr.job.Args {
			jr.argsEnv[k] = v
		}
	}
	return expr.ChainEnv{jr.argsEnv, base}
}

// start launches a pending job on the given allocation. A restart after a
// node-failure requeue resumes at the checkpointed position with a fresh
// walltime budget for the remaining work.
func (e *Engine) start(jr *jobRun, nodes []platform.NodeID) {
	now := e.Now()
	jr.nodes = nodes
	jr.state = stateRunning
	jr.startTime = now
	jr.segStart = now
	jr.phaseIdx, jr.iter, jr.taskIdx = jr.ckptPhase, jr.ckptIter, 0
	jr.lastCkpt = now
	e.running.add(jr)
	e.rec.JobStarted(jr.job.ID, now, len(nodes))
	detail := fmt.Sprintf("nodes=%d", len(nodes))
	if jr.requeues > 0 {
		detail += fmt.Sprintf(" restart=%d ckpt=%d/%d", jr.requeues, jr.ckptPhase, jr.ckptIter)
	}
	e.traceEvent(EvStart, jr.job.ID, detail)
	e.telNodesAllocated(jr, jr.nodes)
	if jr.job.WallTimeLimit > 0 {
		jr.killEvent = e.kernel.Schedule(des.Time(now+jr.job.WallTimeLimit), des.PriorityEngine, func() {
			e.kill(jr, metrics.StatusKilledWalltime)
		})
	}
	e.startTask(jr)
}

// startTask dispatches the current task. Precondition: jr.state == running.
func (e *Engine) startTask(jr *jobRun) {
	if jr.taskIdx == 0 {
		jr.iterStart = e.Now()
	}
	t := jr.task()
	n := len(jr.nodes)
	magnitude, err := t.Model.Eval(e.env(jr), n)
	if err != nil {
		// Validation makes this unreachable; degrade to zero work.
		e.warnf("job %s task %s model error: %v", jr.job.Label(), t.Kind, err)
		magnitude = 0
	}
	if magnitude < 0 {
		magnitude = 0
	}
	done := func() { e.taskDone(jr) }
	if e.opts.TraceTasks && (e.opts.Trace || e.opts.Telemetry.Enabled()) {
		began := e.Now()
		detail := fmt.Sprintf("phase=%d iter=%d task=%d kind=%s", jr.phaseIdx, jr.iter, jr.taskIdx, t.Kind)
		e.traceEvent(EvTaskStart, jr.job.ID, detail)
		inner := done
		done = func() {
			e.traceEvent(EvTaskEnd, jr.job.ID, fmt.Sprintf("%s dur=%.6f", detail, e.Now()-began))
			inner()
		}
	}
	switch t.Kind {
	case job.TaskCompute:
		// Nodes are exclusively allocated, so compute never contends: the
		// duration is magnitude over the slowest node's speed. The fluid
		// path below realizes exactly the same value.
		if !e.opts.DisableFastPath {
			e.completeAfter(jr, magnitude/e.minSpeed(jr), done)
			return
		}
		a := fluid.NewActivity(fmt.Sprintf("%s.compute", jr.job.Label()), magnitude, done)
		for _, id := range jr.nodes {
			a.AddUsage(e.plat.Compute(id), 1)
		}
		jr.activity = a
		e.pool.Start(a)
	case job.TaskDelay:
		jr.timer = e.kernel.ScheduleAfter(des.Time(magnitude), des.PriorityEngine, done)
	case job.TaskComm:
		e.startComm(jr, t, magnitude, done)
	case job.TaskRead, job.TaskWrite:
		e.startIO(jr, t, magnitude, done)
	case job.TaskEvolvingRequest:
		e.registerEvolvingRequest(jr, magnitude)
		// Asynchronous: the task completes immediately.
		jr.timer = e.kernel.ScheduleAfter(0, des.PriorityEngine, done)
	default:
		e.warnf("job %s: unknown task kind %q", jr.job.Label(), t.Kind)
		jr.timer = e.kernel.ScheduleAfter(0, des.PriorityEngine, done)
	}
}

// startComm models a collective operation. The payload is scaled onto each
// participant's injection link (and the backbone, if present) with
// pattern-specific weights; the activity completes when the slowest
// participant is done.
func (e *Engine) startComm(jr *jobRun, t *job.Task, payload float64, done func()) {
	n := len(jr.nodes)
	if n <= 1 || payload <= 0 {
		jr.timer = e.kernel.ScheduleAfter(0, des.PriorityEngine, done)
		return
	}
	linkW, rootW, backboneW := job.CommWeights(t.Pattern, n)
	// The slowest participant's link bounds the operation: the maximum of
	// weight/capacity over participants is the per-payload-byte time.
	linkBound := 0.0 // seconds per payload byte
	for i, id := range jr.nodes {
		w := linkW
		if i == 0 {
			w = rootW
		}
		if b := w / e.plat.Link(id).Capacity(); b > linkBound {
			linkBound = b
		}
	}
	// Collect the SHARED resources this collective crosses: per-group
	// uplinks and the core (tree), or the backbone. The job's private
	// links are handled either as explicit usages (full-fluid mode) or as
	// a rate cap (fast path).
	type sharedUsage struct {
		res    *fluid.Resource
		weight float64
	}
	var shared []sharedUsage
	backbone := e.plat.Backbone()
	if e.plat.IsTree() {
		uplinkW, coreW := job.UplinkWeights(t.Pattern, n, e.plat.GroupCounts(jr.nodes))
		groups := make([]int, 0, len(uplinkW))
		for g := range uplinkW {
			groups = append(groups, g)
		}
		sort.Ints(groups) // deterministic usage order
		for _, g := range groups {
			shared = append(shared, sharedUsage{e.plat.Uplink(g), uplinkW[g]})
		}
		if backbone != nil && coreW > 0 {
			shared = append(shared, sharedUsage{backbone, coreW})
		}
	} else if backbone != nil && backboneW > 0 {
		shared = append(shared, sharedUsage{backbone, backboneW})
	}
	if !e.opts.DisableFastPath && len(shared) == 0 {
		// Only the job's own links are involved — no cross-job
		// contention, closed-form duration.
		e.completeAfter(jr, e.plat.Latency()+payload*linkBound, done)
		return
	}
	begin := func() {
		a := fluid.NewActivity(fmt.Sprintf("%s.%s", jr.job.Label(), t.Pattern), payload, done)
		for _, u := range shared {
			a.AddUsage(u.res, u.weight)
		}
		if !e.opts.DisableFastPath {
			// The private links become a rate cap.
			a.SetMaxRate(1 / linkBound)
		} else {
			for i, id := range jr.nodes {
				w := linkW
				if i == 0 {
					w = rootW
				}
				a.AddUsage(e.plat.Link(id), w)
			}
		}
		jr.activity = a
		e.pool.Start(a)
	}
	if lat := e.plat.Latency(); lat > 0 {
		jr.timer = e.kernel.ScheduleAfter(des.Time(lat), des.PriorityEngine, func() {
			e.kernel.Release(jr.timer)
			jr.timer = nil
			begin()
		})
		return
	}
	begin()
}

// completeAfter finishes the current task after a closed-form duration.
// The timer runs at activity priority so intra-timestamp ordering matches
// the fluid path.
func (e *Engine) completeAfter(jr *jobRun, seconds float64, done func()) {
	if seconds < 0 {
		seconds = 0
	}
	jr.timer = e.kernel.ScheduleAfter(des.Time(seconds), des.PriorityActivity, done)
}

// minSpeed returns the slowest allocated node's compute speed.
func (e *Engine) minSpeed(jr *jobRun) float64 {
	speed := e.plat.Node(jr.nodes[0]).Speed
	for _, id := range jr.nodes[1:] {
		if s := e.plat.Node(id).Speed; s < speed {
			speed = s
		}
	}
	return speed
}

// minLinkCap returns the slowest allocated node's link bandwidth.
func (e *Engine) minLinkCap(jr *jobRun) float64 {
	cap0 := e.plat.Link(jr.nodes[0]).Capacity()
	for _, id := range jr.nodes[1:] {
		if c := e.plat.Link(id).Capacity(); c < cap0 {
			cap0 = c
		}
	}
	return cap0
}

// startIO models a parallel read/write of `total` bytes striped over the
// allocation. PFS and shared burst buffers are single contended resources;
// node-local burst buffers drain independently per node. PFS traffic also
// loads each node's injection link with its 1/n share.
func (e *Engine) startIO(jr *jobRun, t *job.Task, total float64, done func()) {
	n := len(jr.nodes)
	if total <= 0 {
		jr.timer = e.kernel.ScheduleAfter(0, des.PriorityEngine, done)
		return
	}
	fast := !e.opts.DisableFastPath
	share := 1 / float64(n)
	a := fluid.NewActivity(fmt.Sprintf("%s.%s", jr.job.Label(), t.Kind), total, done)
	switch t.Target {
	case job.TargetPFS:
		var res *fluid.Resource
		if t.Kind == job.TaskRead {
			res = e.plat.PFSRead()
		} else {
			res = e.plat.PFSWrite()
		}
		a.AddUsage(res, 1)
		e.addTreeIOUsages(a, jr)
		if fast {
			// Each node moves a 1/n share through its private link:
			// aggregate cap n * slowest link.
			a.SetMaxRate(float64(n) * e.minLinkCap(jr))
		} else {
			for _, id := range jr.nodes {
				a.AddUsage(e.plat.Link(id), share)
			}
		}
	case job.TargetBB:
		if e.plat.BurstBufferKind() == platform.BBNodeLocal {
			// Node-local buffers are private to the allocation: every node
			// drains its 1/n share independently; the slowest bounds the
			// task. No cross-job contention is possible, so the fluid
			// solver is only needed when the fast path is disabled.
			if fast {
				minBB := e.minBBCap(jr, t.Kind == job.TaskRead)
				e.completeAfter(jr, total/(float64(n)*minBB), done)
				return
			}
			for _, id := range jr.nodes {
				a.AddUsage(e.bbResource(id, t.Kind == job.TaskRead), share)
			}
		} else {
			// Shared (network-attached) burst buffer: contended across
			// jobs; traffic also crosses the private links.
			a.AddUsage(e.bbResource(jr.nodes[0], t.Kind == job.TaskRead), 1)
			e.addTreeIOUsages(a, jr)
			if fast {
				a.SetMaxRate(float64(n) * e.minLinkCap(jr))
			} else {
				for _, id := range jr.nodes {
					a.AddUsage(e.plat.Link(id), share)
				}
			}
		}
	}
	jr.activity = a
	e.pool.Start(a)
}

// addTreeIOUsages routes PFS / shared-burst-buffer traffic over the tree
// topology: each group's uplink carries its members' share of the bytes,
// and everything crosses the core (the storage attaches there).
func (e *Engine) addTreeIOUsages(a *fluid.Activity, jr *jobRun) {
	if !e.plat.IsTree() {
		return
	}
	n := float64(len(jr.nodes))
	counts := e.plat.GroupCounts(jr.nodes)
	groups := make([]int, 0, len(counts))
	for g := range counts {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	for _, g := range groups {
		a.AddUsage(e.plat.Uplink(g), float64(counts[g])/n)
	}
	if core := e.plat.Backbone(); core != nil {
		a.AddUsage(core, 1)
	}
}

func (e *Engine) bbResource(id platform.NodeID, read bool) *fluid.Resource {
	if read {
		return e.plat.BBRead(id)
	}
	return e.plat.BBWrite(id)
}

// minBBCap returns the slowest allocated node's burst-buffer bandwidth.
func (e *Engine) minBBCap(jr *jobRun, read bool) float64 {
	cap0 := e.bbResource(jr.nodes[0], read).Capacity()
	for _, id := range jr.nodes[1:] {
		if c := e.bbResource(id, read).Capacity(); c < cap0 {
			cap0 = c
		}
	}
	return cap0
}

// registerEvolvingRequest records the application's desired size and pokes
// the scheduler.
func (e *Engine) registerEvolvingRequest(jr *jobRun, desired float64) {
	want := int(desired + 0.5)
	minN, maxN := jr.job.MinNodes(), jr.job.MaxNodes()
	if want < minN {
		want = minN
	}
	if want > maxN {
		want = maxN
	}
	if want == len(jr.nodes) && jr.grantedTarget == 0 {
		return // nothing to ask for
	}
	if want == jr.evolvingRequest || want == jr.grantedTarget {
		return // already outstanding or already granted
	}
	jr.evolvingRequest = want
	e.traceEvent(EvEvolvingRequest, jr.job.ID, fmt.Sprintf("want=%d have=%d", want, len(jr.nodes)))
	e.requestInvocation(sched.ReasonEvolvingRequest)
}

// taskDone advances the job's program counter.
func (e *Engine) taskDone(jr *jobRun) {
	jr.activity = nil
	if jr.timer != nil {
		// The timer that just fired is ours alone; hand its allocation back
		// to the kernel. (When taskDone is reached via the fluid solver the
		// timer is already nil.)
		e.kernel.Release(jr.timer)
		jr.timer = nil
	}
	if jr.state == stateDone {
		return
	}
	jr.taskIdx++
	if jr.taskIdx < len(jr.phase().Tasks) {
		e.startTask(jr)
		return
	}
	// Iteration finished.
	jr.taskIdx = 0
	jr.iter++
	p := jr.phase()
	if jr.iter < p.EffectiveIterations() {
		e.maybeCheckpoint(jr)
		if p.SchedulingPoint {
			e.enterSchedulingPoint(jr)
			return
		}
		e.startTask(jr)
		return
	}
	// Phase finished. A scheduling point after the last iteration also
	// fires, giving the scheduler one more reconfiguration opportunity
	// before the next phase (matching the "between iterations" contract
	// only within a phase would starve single-iteration phases).
	jr.iter = 0
	jr.phaseIdx++
	if jr.phaseIdx < len(jr.job.App.Phases) {
		e.maybeCheckpoint(jr)
		if p.SchedulingPoint {
			e.enterSchedulingPoint(jr)
			return
		}
		e.startTask(jr)
		return
	}
	e.finish(jr, metrics.StatusCompleted)
}

// enterSchedulingPoint pauses the job, pokes the scheduler, and arranges
// resumption after the scheduler had its chance at this timestamp.
func (e *Engine) enterSchedulingPoint(jr *jobRun) {
	jr.state = stateAtSchedPoint
	jr.pendingResize = 0
	e.traceEvent(EvSchedulingPoint, jr.job.ID, fmt.Sprintf("phase=%d iter=%d", jr.phaseIdx, jr.iter))
	e.requestInvocation(sched.ReasonSchedulingPoint)
	e.kernel.ScheduleTransientAfter(0, PriorityResume, func() {
		e.resumeFromSchedulingPoint(jr)
	})
}

// resumeFromSchedulingPoint charges any pending reconfiguration (scheduler
// resize applied at decision time, or an evolving grant applied now) and
// continues execution.
func (e *Engine) resumeFromSchedulingPoint(jr *jobRun) {
	if jr.state != stateAtSchedPoint {
		return // killed meanwhile
	}
	oldSize := jr.pendingResize
	jr.pendingResize = 0
	if oldSize == 0 && jr.grantedTarget != 0 {
		// Apply an evolving grant, bounded by what is free right now.
		target := jr.grantedTarget
		cur := len(jr.nodes)
		if target > cur {
			if maxGrow := cur + e.alloc.Free(); target > maxGrow {
				target = maxGrow
			}
		}
		jr.grantedTarget = 0
		jr.evolvingRequest = 0
		if target != 0 && target != cur {
			e.traceEvent(EvGrantApplied, jr.job.ID, fmt.Sprintf("target=%d", target))
			e.adjustAllocation(jr, target)
			oldSize = cur
		}
	}
	if oldSize != 0 && oldSize != len(jr.nodes) {
		e.chargeReconfiguration(jr, oldSize)
		return
	}
	jr.state = stateRunning
	e.startTask(jr)
}

// adjustAllocation grows or shrinks a paused job's node set immediately.
// Precondition: target is feasible (enough free nodes for growth).
func (e *Engine) adjustAllocation(jr *jobRun, target int) {
	now := e.Now()
	cur := len(jr.nodes)
	owner := jr.owner
	if target > cur {
		added, err := e.alloc.Allocate(owner, target-cur)
		if err != nil {
			panic(fmt.Sprintf("core: validated expand of %s failed: %v", jr.job.Label(), err))
		}
		jr.nodes = append(jr.nodes, added...)
		e.telNodesAllocated(jr, added)
	} else {
		// Release the highest-numbered nodes.
		platform.SortNodeIDs(jr.nodes)
		released := jr.nodes[target:]
		jr.nodes = jr.nodes[:target]
		if err := e.alloc.Release(owner, released); err != nil {
			panic(fmt.Sprintf("core: inconsistent allocation for %s: %v", jr.job.Label(), err))
		}
		e.telNodesReleased(jr, released)
	}
	e.rec.AddGantt(jr.job.ID, jr.job.Label(), cur, jr.segStart, now)
	jr.segStart = now
	e.rec.JobReconfigured(jr.job.ID, now, len(jr.nodes))
	e.traceEvent(EvReconfigured, jr.job.ID, fmt.Sprintf("%d->%d", cur, target))
}

// chargeReconfiguration pays the job's reconfiguration cost (if any) and
// resumes execution afterwards.
func (e *Engine) chargeReconfiguration(jr *jobRun, oldSize int) {
	cost := 0.0
	if jr.job.ReconfigCost != nil {
		env := expr.ChainEnv{
			expr.Vars{"num_nodes_old": float64(oldSize), "num_nodes_new": float64(len(jr.nodes))},
			e.env(jr),
		}
		v, err := jr.job.ReconfigCost.Eval(env, len(jr.nodes))
		if err != nil {
			e.warnf("job %s: reconfig cost error: %v", jr.job.Label(), err)
		} else if v > 0 {
			cost = v
		}
	}
	if cost > 0 {
		jr.state = stateReconfiguring
		e.telBeginReconfig(jr, oldSize)
		jr.timer = e.kernel.ScheduleAfter(des.Time(cost), des.PriorityEngine, func() {
			e.kernel.Release(jr.timer)
			jr.timer = nil
			if jr.state != stateReconfiguring {
				return
			}
			e.telEndReconfig(jr)
			jr.state = stateRunning
			e.startTask(jr)
		})
		return
	}
	jr.state = stateRunning
	e.startTask(jr)
}

// finish completes a running job with the given terminal status.
func (e *Engine) finish(jr *jobRun, status metrics.JobStatus) {
	now := e.Now()
	jr.state = stateDone
	e.cancelWork(jr)
	e.rec.AddGantt(jr.job.ID, jr.job.Label(), len(jr.nodes), jr.segStart, now)
	if n := e.alloc.Owned(jr.owner); n != len(jr.nodes) {
		panic(fmt.Sprintf("core: job %s released %d nodes, held %d", jr.job.Label(), n, len(jr.nodes)))
	}
	if err := e.alloc.Release(jr.owner, jr.nodes); err != nil {
		panic(fmt.Sprintf("core: releasing %s: %v", jr.job.Label(), err))
	}
	e.telNodesReleased(jr, jr.nodes)
	jr.nodes = nil
	e.running.remove(jr)
	e.rec.JobFinished(jr.job.ID, now, status)
	e.traceEvent(EvFinish, jr.job.ID, fmt.Sprintf("status=%s", status))
	e.outstanding--
	e.markFinished(jr.job.ID)
	e.requestInvocation(sched.ReasonCompletion)
}

// kill terminates a running job (walltime limit or scheduler decision).
func (e *Engine) kill(jr *jobRun, status metrics.JobStatus) {
	if jr.state == stateDone || jr.state == statePending {
		return
	}
	e.finish(jr, status)
}

// cancelTask tears down the in-flight activity or timer, leaving the
// walltime kill event armed. An open telemetry task span ends here: the
// task stops at this instant. Cancelled timers are released back to the
// kernel — jr.timer was the only reference.
func (e *Engine) cancelTask(jr *jobRun) {
	e.telCloseTask(jr)
	if jr.activity != nil {
		e.pool.Cancel(jr.activity)
		jr.activity = nil
	}
	if jr.timer != nil {
		e.kernel.Cancel(jr.timer)
		e.kernel.Release(jr.timer)
		jr.timer = nil
	}
}

// cancelWork tears down in-flight activity, timers, and the kill event.
// The kill event may be the one currently firing (a walltime kill reaches
// here through finish): Cancel is then a no-op and Release recycles the
// just-fired allocation.
func (e *Engine) cancelWork(jr *jobRun) {
	e.cancelTask(jr)
	if jr.killEvent != nil {
		e.kernel.Cancel(jr.killEvent)
		e.kernel.Release(jr.killEvent)
		jr.killEvent = nil
	}
}

func ownerKey(id job.ID) string { return fmt.Sprintf("job%d", id) }
