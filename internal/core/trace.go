package core

import (
	"fmt"

	"repro/internal/job"
)

// TraceEventKind labels entries of the engine's event log.
type TraceEventKind string

// Trace event kinds.
const (
	EvSubmit          TraceEventKind = "submit"
	EvHeld            TraceEventKind = "held"
	EvReleased        TraceEventKind = "released"
	EvStart           TraceEventKind = "start"
	EvFinish          TraceEventKind = "finish"
	EvSchedulingPoint TraceEventKind = "scheduling-point"
	EvReconfigured    TraceEventKind = "reconfigured"
	EvEvolvingRequest TraceEventKind = "evolving-request"
	EvGranted         TraceEventKind = "granted"
	EvGrantApplied    TraceEventKind = "grant-applied"
	EvDenied          TraceEventKind = "denied"
	EvTaskStart       TraceEventKind = "task-start"
	EvTaskEnd         TraceEventKind = "task-end"
	// Failure subsystem events. Node events carry Job == NoJob and the
	// affected node in the Node field (they concern the machine, not a job).
	EvNodeDown   TraceEventKind = "node-down"
	EvNodeUp     TraceEventKind = "node-up"
	EvCheckpoint TraceEventKind = "checkpoint"
	EvRequeued   TraceEventKind = "requeued"
	EvFailShrink TraceEventKind = "shrink-on-failure"
)

// NoJob is the Job value of machine-level trace events (node failures and
// repairs), which concern no particular job.
const NoJob job.ID = -1

// NoNode is the Node value of job-level trace events.
const NoNode = -1

// TraceEvent is one entry of the optional event log.
type TraceEvent struct {
	T    float64
	Kind TraceEventKind
	Job  job.ID // NoJob for machine-level events
	// Node is the affected node for machine-level events, NoNode otherwise.
	Node   int
	Detail string
}

func (ev TraceEvent) String() string {
	subject := fmt.Sprintf("job%d", ev.Job)
	if ev.Job == NoJob {
		subject = fmt.Sprintf("node%d", ev.Node)
	}
	if ev.Detail == "" {
		return fmt.Sprintf("%.3f %s %s", ev.T, ev.Kind, subject)
	}
	return fmt.Sprintf("%.3f %s %s %s", ev.T, ev.Kind, subject, ev.Detail)
}

// traceEvent is the unified event hook: the in-memory TraceEvent log and
// the telemetry span adapter are both consumers, so either can be enabled
// without the other and the log stays bit-identical when telemetry is off.
func (e *Engine) traceEvent(kind TraceEventKind, id job.ID, detail string) {
	if e.opts.Telemetry.Enabled() {
		e.telJobEvent(kind, id, detail)
	}
	if !e.opts.Trace {
		return
	}
	e.trace = append(e.trace, TraceEvent{T: e.Now(), Kind: kind, Job: id, Node: NoNode, Detail: detail})
}

// traceNodeEvent is traceEvent for machine-level events (node down/up).
func (e *Engine) traceNodeEvent(kind TraceEventKind, node int, detail string) {
	if e.opts.Telemetry.Enabled() {
		e.telNodeEvent(kind, node)
	}
	if !e.opts.Trace {
		return
	}
	e.trace = append(e.trace, TraceEvent{T: e.Now(), Kind: kind, Job: NoJob, Node: node, Detail: detail})
}
