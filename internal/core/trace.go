package core

import (
	"fmt"

	"repro/internal/job"
)

// TraceEventKind labels entries of the engine's event log.
type TraceEventKind string

// Trace event kinds.
const (
	EvSubmit          TraceEventKind = "submit"
	EvHeld            TraceEventKind = "held"
	EvReleased        TraceEventKind = "released"
	EvStart           TraceEventKind = "start"
	EvFinish          TraceEventKind = "finish"
	EvSchedulingPoint TraceEventKind = "scheduling-point"
	EvReconfigured    TraceEventKind = "reconfigured"
	EvEvolvingRequest TraceEventKind = "evolving-request"
	EvGranted         TraceEventKind = "granted"
	EvGrantApplied    TraceEventKind = "grant-applied"
	EvDenied          TraceEventKind = "denied"
	EvTaskStart       TraceEventKind = "task-start"
	EvTaskEnd         TraceEventKind = "task-end"
	// Failure subsystem events. Node events carry job id -1 (they concern
	// the machine, not a job).
	EvNodeDown   TraceEventKind = "node-down"
	EvNodeUp     TraceEventKind = "node-up"
	EvCheckpoint TraceEventKind = "checkpoint"
	EvRequeued   TraceEventKind = "requeued"
	EvFailShrink TraceEventKind = "shrink-on-failure"
)

// TraceEvent is one entry of the optional event log.
type TraceEvent struct {
	T      float64
	Kind   TraceEventKind
	Job    job.ID
	Detail string
}

func (ev TraceEvent) String() string {
	if ev.Detail == "" {
		return fmt.Sprintf("%.3f %s job%d", ev.T, ev.Kind, ev.Job)
	}
	return fmt.Sprintf("%.3f %s job%d %s", ev.T, ev.Kind, ev.Job, ev.Detail)
}

func (e *Engine) traceEvent(kind TraceEventKind, id job.ID, detail string) {
	if !e.opts.Trace {
		return
	}
	e.trace = append(e.trace, TraceEvent{T: e.Now(), Kind: kind, Job: id, Detail: detail})
}
