package core

import (
	"runtime"
	"strings"

	"repro/internal/job"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// This file adapts engine lifecycle events onto telemetry spans. Each job
// gets a track carrying a "wait" span (submit → start, reopened on
// requeue), a "run" span (start → finish), nested "reconfigure" and "task"
// spans, and instants for scheduling points, grants, and checkpoints. Each
// node gets a track whose spans are the jobs allocated to it and its
// outages. Execution order guarantees well-nested spans: a job always
// releases a node (span end) before the node's outage span begins, and a
// finishing job closes its open task/reconfigure spans first.

// telJobEvent maps one job-level trace event onto the job's span track.
// Only called with telemetry enabled.
func (e *Engine) telJobEvent(kind TraceEventKind, id job.ID, detail string) {
	tel := e.opts.Telemetry
	tr := telemetry.JobTrack(int(id))
	now := e.Now()
	switch kind {
	case EvSubmit:
		tel.Begin(tr, "wait", now, telemetry.Arg{Key: "type", Value: strings.TrimPrefix(detail, "type=")})
	case EvStart:
		tel.End(tr, "wait", now)
		nodes := 0
		if jr := e.runs.get(id); jr != nil {
			nodes = len(jr.nodes)
		}
		tel.Begin(tr, "run", now, telemetry.Arg{Key: "nodes", Value: nodes})
	case EvFinish:
		if detail == "killed-pending" {
			tel.End(tr, "wait", now)
			return
		}
		e.telCloseNested(id)
		tel.End(tr, "run", now, telemetry.Arg{Key: "status", Value: strings.TrimPrefix(detail, "status=")})
	case EvRequeued:
		e.telCloseNested(id)
		tel.End(tr, "run", now)
		tel.Begin(tr, "wait", now, telemetry.Arg{Key: "detail", Value: detail})
	case EvTaskStart:
		tel.Begin(tr, "task", now, telemetry.Arg{Key: "detail", Value: detail})
		if jr := e.runs.get(id); jr != nil {
			jr.telTaskOpen = true
		}
	case EvTaskEnd:
		tel.End(tr, "task", now)
		if jr := e.runs.get(id); jr != nil {
			jr.telTaskOpen = false
		}
	default:
		// Everything else is a point event on the job's track.
		if detail == "" {
			tel.Instant(tr, string(kind), now)
			return
		}
		tel.Instant(tr, string(kind), now, telemetry.Arg{Key: "detail", Value: detail})
	}
}

// telCloseNested ends any task/reconfigure span still open when a job's
// run span closes (kill, walltime, node failure), keeping spans nested.
func (e *Engine) telCloseNested(id job.ID) {
	jr := e.runs.get(id)
	if jr == nil {
		return
	}
	e.telCloseTask(jr)
	e.telEndReconfig(jr)
}

// telCloseTask ends the job's open task span, if any (tasks cancelled by
// kills and failures stop at the cancellation instant).
func (e *Engine) telCloseTask(jr *jobRun) {
	tel := e.opts.Telemetry
	if !tel.Enabled() || !jr.telTaskOpen {
		return
	}
	tel.End(telemetry.JobTrack(int(jr.job.ID)), "task", e.Now())
	jr.telTaskOpen = false
}

// telNodeEvent maps node failures and repairs onto outage spans on the
// node's track. Only called with telemetry enabled.
func (e *Engine) telNodeEvent(kind TraceEventKind, node int) {
	tel := e.opts.Telemetry
	tr := telemetry.NodeTrack(node)
	switch kind {
	case EvNodeDown:
		tel.Begin(tr, "outage", e.Now())
	case EvNodeUp:
		tel.End(tr, "outage", e.Now())
	}
}

// telNodesAllocated opens a job span on each newly allocated node's track.
func (e *Engine) telNodesAllocated(jr *jobRun, nodes []platform.NodeID) {
	tel := e.opts.Telemetry
	if !tel.Enabled() {
		return
	}
	now := e.Now()
	label := jr.job.Label()
	for _, n := range nodes {
		tel.Begin(telemetry.NodeTrack(int(n)), label, now)
	}
}

// telNodesReleased closes the job span on each released node's track.
func (e *Engine) telNodesReleased(jr *jobRun, nodes []platform.NodeID) {
	tel := e.opts.Telemetry
	if !tel.Enabled() {
		return
	}
	now := e.Now()
	label := jr.job.Label()
	for _, n := range nodes {
		tel.End(telemetry.NodeTrack(int(n)), label, now)
	}
}

// telBeginReconfig opens the job's reconfigure span (cost charging).
func (e *Engine) telBeginReconfig(jr *jobRun, oldSize int) {
	tel := e.opts.Telemetry
	if !tel.Enabled() {
		return
	}
	tel.Begin(telemetry.JobTrack(int(jr.job.ID)), "reconfigure", e.Now(),
		telemetry.Arg{Key: "from", Value: oldSize},
		telemetry.Arg{Key: "to", Value: len(jr.nodes)})
	jr.telReconfOpen = true
}

// telEndReconfig closes the job's reconfigure span.
func (e *Engine) telEndReconfig(jr *jobRun) {
	tel := e.opts.Telemetry
	if !tel.Enabled() || !jr.telReconfOpen {
		return
	}
	tel.End(telemetry.JobTrack(int(jr.job.ID)), "reconfigure", e.Now())
	jr.telReconfOpen = false
}

// FinalizeTelemetry force-closes every telemetry span still open — waiting
// and running jobs, in-flight tasks and reconfigurations, per-node job and
// outage spans — at the current simulation time. A completed run has no
// open spans, so this is only meaningful (and only called) after an abort:
// it keeps Chrome/JSONL sinks well-nested and machine-validatable even
// when the simulation was cut short. Idempotent; the span ends carry an
// "aborted" argument so post-processors can tell them from real
// completions.
func (e *Engine) FinalizeTelemetry() {
	tel := e.opts.Telemetry
	if !tel.Enabled() || e.telFinalized {
		return
	}
	e.telFinalized = true
	now := e.Now()
	aborted := telemetry.Arg{Key: "aborted", Value: true}
	e.runs.forEachByID(func(jr *jobRun) {
		tr := telemetry.JobTrack(int(jr.job.ID))
		switch jr.state {
		case stateHeld, statePending:
			tel.End(tr, "wait", now, aborted)
		case stateRunning, stateAtSchedPoint, stateReconfiguring:
			e.telCloseTask(jr)
			e.telEndReconfig(jr)
			tel.End(tr, "run", now, aborted)
			label := jr.job.Label()
			for _, n := range jr.nodes {
				tel.End(telemetry.NodeTrack(int(n)), label, now, aborted)
			}
		}
	})
	for n, down := range e.nodeDown {
		if down {
			tel.End(telemetry.NodeTrack(n), "outage", now, aborted)
		}
	}
}

// TelemetrySnapshot samples every internal counter into the self-profiling
// artifact. Valid after Run; wall-clock and heap fields are the only
// non-deterministic data and never feed back into simulation outputs.
func (e *Engine) TelemetrySnapshot() telemetry.Snapshot {
	ks := e.kernel.Stats()
	snap := telemetry.Snapshot{
		Runs: 1,
		Jobs: len(e.workload.Jobs),
		Kernel: telemetry.KernelStats{
			Scheduled: ks.Scheduled,
			Fired:     ks.Fired,
			Cancelled: ks.Cancelled,
			Recycled:  ks.Recycled,
			PeakQueue: ks.PeakQueue,
		},
		Solver: telemetry.SolverStats{
			Solves:           e.pool.Solves(),
			SolvedActivities: e.pool.SolvedActivities(),
		},
		Scheduler: telemetry.SchedulerStats{
			Invocations: e.invocations,
			Elided:      e.invocationsElided,
			Applied:     e.decisionsApplied,
			Rejected:    e.decisionsRejected,
		},
		Wall: telemetry.WallStats{
			RunNS:       e.wallRun.Nanoseconds(),
			SchedulerNS: e.wallSched.Nanoseconds(),
		},
	}
	for kind, n := range e.decisionsByKind {
		if n == 0 {
			continue
		}
		if snap.Scheduler.ByKind == nil {
			snap.Scheduler.ByKind = map[string]uint64{}
		}
		snap.Scheduler.ByKind[sched.DecisionKind(kind).String()] = n
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap.Mem = telemetry.MemStats{HeapAllocBytes: ms.HeapAlloc, TotalAllocs: ms.Mallocs}
	return snap
}
