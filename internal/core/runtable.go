package core

import (
	"sort"

	"repro/internal/job"
)

// This file holds the engine's struct-of-arrays job-state kernel: an
// arena-allocated run table replacing the per-job heap allocations and the
// runs map, and tombstoned index lists replacing the shift-remove pending
// and running slices. Together they turn the per-job bookkeeping that
// dominated million-job simulations — one allocation plus one map insert
// per submit, an O(n) scan per queue removal — into amortised O(1)
// operations on dense memory.

// runChunk is the arena's allocation granularity: one make([]jobRun)
// serves this many submits.
const runChunk = 2048

// runTable owns every jobRun of a simulation. Runs are carved out of
// chunked slabs in submission order (a finished run is never reclaimed:
// terminal state stays addressable for decision validation and dependency
// checks), and indexed by job ID — through a dense slice when the
// workload's IDs are compact (the invariant ParseWorkload and
// Workload.Sort establish), through a map for hand-assembled workloads
// with arbitrary IDs.
type runTable struct {
	chunks [][]jobRun
	count  int
	total  int // workload size; bounds the arena

	dense  []*jobRun
	sparse map[job.ID]*jobRun
}

func newRunTable(w *job.Workload) *runTable {
	t := &runTable{total: len(w.Jobs)}
	minID, maxID := job.ID(0), job.ID(-1)
	for _, j := range w.Jobs {
		if j.ID > maxID {
			maxID = j.ID
		}
		if j.ID < minID {
			minID = j.ID
		}
	}
	if minID >= 0 && int(maxID) < 2*len(w.Jobs)+1024 {
		t.dense = make([]*jobRun, int(maxID)+1)
	} else {
		t.sparse = make(map[job.ID]*jobRun, len(w.Jobs))
	}
	return t
}

// alloc carves a fresh run for j out of the arena and indexes it.
func (t *runTable) alloc(j *job.Job) *jobRun {
	slot := t.count % runChunk
	if slot == 0 {
		size := runChunk
		if rest := t.total - t.count; rest > 0 && rest < size {
			size = rest
		}
		t.chunks = append(t.chunks, make([]jobRun, size))
	}
	c := t.chunks[len(t.chunks)-1]
	jr := &c[slot]
	t.count++
	*jr = jobRun{job: j, owner: ownerKey(j.ID), listPos: -1}
	if t.dense != nil {
		t.dense[j.ID] = jr
	} else {
		t.sparse[j.ID] = jr
	}
	return jr
}

// get returns the run for id, or nil before its submission.
func (t *runTable) get(id job.ID) *jobRun {
	if t.dense != nil {
		if int(id) >= len(t.dense) || id < 0 {
			return nil
		}
		return t.dense[id]
	}
	return t.sparse[id]
}

// len returns the number of submitted jobs.
func (t *runTable) len() int { return t.count }

// forEachByID visits every run in ascending job-ID order (deterministic
// regardless of the index representation).
func (t *runTable) forEachByID(fn func(*jobRun)) {
	if t.dense != nil {
		for _, jr := range t.dense {
			if jr != nil {
				fn(jr)
			}
		}
		return
	}
	ids := make([]int, 0, len(t.sparse))
	for id := range t.sparse {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		fn(t.sparse[job.ID(id)])
	}
}

// runList is an order-preserving job list with O(1) removal: removing
// leaves a nil tombstone at the job's recorded position, and the list
// compacts in place — preserving order, unlike a swap-remove, because the
// snapshot handed to scheduling algorithms iterates it — once tombstones
// outnumber live entries. Iteration must skip nils.
type runList struct {
	items []*jobRun
	count int
}

// add appends jr, recording its position for later O(1) removal. A job is
// in at most one list at a time (pending or running, never both), so one
// position field suffices.
func (l *runList) add(jr *jobRun) {
	jr.listPos = len(l.items)
	l.items = append(l.items, jr)
	l.count++
}

// remove tombstones jr in O(1); absent jobs are a no-op.
func (l *runList) remove(jr *jobRun) {
	if jr.listPos < 0 {
		return
	}
	l.items[jr.listPos] = nil
	jr.listPos = -1
	l.count--
	if holes := len(l.items) - l.count; holes > 64 && holes > l.count {
		l.compact()
	}
}

// compact squeezes out tombstones in place, preserving order.
func (l *runList) compact() {
	w := 0
	for _, jr := range l.items {
		if jr == nil {
			continue
		}
		jr.listPos = w
		l.items[w] = jr
		w++
	}
	clear(l.items[w:])
	l.items = l.items[:w]
}
