// Package core implements the batch-system simulation engine — the
// reproduction's primary contribution. It couples the platform model
// (fluid resources), the workload model (jobs with phase/task
// applications), and a scheduling algorithm into a deterministic
// discrete-event simulation with first-class support for rigid, moldable,
// malleable, and evolving jobs.
//
// The engine owns all mutable state. The scheduling algorithm only ever
// sees read-only snapshots and answers with decisions, every one of which
// is validated before being applied (node accounting, flexibility-class
// rules, scheduling-point legality). Invalid decisions are dropped and
// recorded as warnings, so buggy algorithms degrade loudly but safely.
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/des"
	"repro/internal/failure"
	"repro/internal/fluid"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// PriorityResume orders job-resume events after scheduler invocations at
// the same timestamp, so that a job pausing at a scheduling point gives the
// algorithm a chance to reconfigure it before it continues.
const PriorityResume = des.PriorityScheduler + 10

// Options tune engine behaviour.
type Options struct {
	// InvocationInterval adds periodic scheduler invocations every given
	// number of seconds (0 = purely event-driven).
	InvocationInterval float64
	// EventDriven disables event-triggered invocations when false is NOT
	// what you want — it defaults to true; set DisableEventDriven to turn
	// them off (ablation: periodic-only scheduling).
	DisableEventDriven bool
	// Fairness selects the fluid sharing policy (ablation).
	Fairness fluid.Fairness
	// Trace enables the event log (memory-proportional to event count).
	Trace bool
	// TraceTasks additionally logs every task start/end with its phase,
	// iteration, kind, and duration — the raw material for calibrating
	// application models. Implies substantial log volume; requires Trace.
	TraceTasks bool
	// Horizon aborts the simulation at this virtual time (0 = none).
	Horizon float64
	// DisableFastPath forces every task through the fluid solver, even
	// work on job-private resources (own nodes, own links) that cannot
	// contend and whose duration is therefore a closed form. The fast
	// path is exactly equivalent (tested) and much cheaper on large
	// machines; this switch exists for the equivalence tests and the
	// simulator-performance ablation.
	DisableFastPath bool
	// ForceFullSolve disables the fluid solver's incremental component
	// solving: every activity state change re-solves every component and
	// re-examines every completion event. Results are bit-identical
	// either way (asserted by the equivalence regression tests); the
	// switch exists for those tests and performance comparisons.
	ForceFullSolve bool
	// Failures injects node failures and repairs (nil = none). It takes
	// precedence over the platform spec's "failures" object, letting one
	// platform file drive both clean and degraded runs.
	Failures *failure.Spec
	// Telemetry attaches the observability layer (nil = disabled, the
	// zero-overhead default). Spans for jobs, nodes, and the scheduler
	// stream to the tracer's sinks; an attached audit log records every
	// scheduler invocation. Telemetry never alters simulation outputs.
	Telemetry *telemetry.Tracer
	// Progress attaches a live progress sink driven from the kernel's
	// event loop (nil = disabled): a telemetry.RunProgress for a stderr
	// ticker, or a telemetry.ProgressFanOut to broadcast to multiple
	// concurrent observers.
	Progress telemetry.Progress
}

// Engine is a single-run batch-system simulator. Create with New, run with
// Run, inspect with Recorder/Summary. An Engine is not reusable.
type Engine struct {
	kernel *des.Kernel
	pool   *fluid.Pool
	plat   *platform.Platform
	alloc  *platform.Allocator
	algo   sched.Algorithm
	opts   Options
	rec    *metrics.Recorder

	workload *job.Workload
	runs     map[job.ID]*jobRun
	queue    []*jobRun // pending, submission order
	running  []*jobRun // start order

	// Dependency tracking: finished marks completed/killed jobs,
	// dependents maps a job to the held jobs waiting on it.
	finished   map[job.ID]bool
	dependents map[job.ID][]*jobRun

	// Failure injection: injector is nil when disabled, and every other
	// field stays untouched in that case (runs are bit-identical to an
	// engine without the subsystem).
	injector  *failure.Injector
	nodeDown  []bool
	downCount int

	invocationScheduled bool
	pendingReasons      sched.Reason
	invocations         uint64
	decisionsApplied    uint64
	decisionsRejected   uint64
	decisionsByKind     [5]uint64 // applied decisions, indexed by sched.DecisionKind
	wallRun             time.Duration
	wallSched           time.Duration
	warnings            []string
	trace               []TraceEvent
	outstanding         int // jobs not yet finished
	ran                 bool
	started             bool // Start armed the initial events
	progressDone        bool // Options.Progress ticker already terminated
	telFinalized        bool // open telemetry spans force-closed after abort
}

// CancelCheckEvents is how many kernel events fire between context polls
// during RunCtx/RunUntilCtx. Batched so a pending ctx.Done() costs one
// integer compare per event on the hot path; coarse enough that the select
// is noise, fine enough that cancellation lands within microseconds of
// wall time on realistic event rates.
const CancelCheckEvents = 1024

// New builds an engine for one simulation run. The workload must already
// validate against the platform.
func New(spec *platform.Spec, w *job.Workload, algo sched.Algorithm, opts Options) (*Engine, error) {
	if algo == nil {
		return nil, fmt.Errorf("core: nil scheduling algorithm")
	}
	kernel := des.NewKernel()
	pool := fluid.NewPool(kernel)
	pool.SetFairness(opts.Fairness)
	if opts.ForceFullSolve {
		pool.SetForceFullSolve(true)
	}
	plat, err := platform.Build(spec, pool)
	if err != nil {
		return nil, err
	}
	if err := w.Validate(plat.NumNodes()); err != nil {
		return nil, err
	}
	for _, j := range w.Jobs {
		if err := checkPlatformSupport(plat, j); err != nil {
			return nil, err
		}
	}
	e := &Engine{
		kernel:     kernel,
		pool:       pool,
		plat:       plat,
		alloc:      platform.NewAllocator(plat.NumNodes()),
		algo:       algo,
		opts:       opts,
		rec:        metrics.NewRecorder(plat.NumNodes()),
		workload:   w,
		runs:       make(map[job.ID]*jobRun, len(w.Jobs)),
		finished:   make(map[job.ID]bool),
		dependents: make(map[job.ID][]*jobRun),
	}
	fs := opts.Failures
	if fs == nil {
		fs = spec.Failures
	}
	inj, err := failure.NewInjector(fs, plat.NumNodes())
	if err != nil {
		return nil, err
	}
	if inj != nil {
		e.injector = inj
		e.nodeDown = make([]bool, plat.NumNodes())
	}
	return e, nil
}

// checkPlatformSupport rejects workloads using storage tiers the platform
// does not provide; failing early beats a mid-simulation panic.
func checkPlatformSupport(plat *platform.Platform, j *job.Job) error {
	for pi := range j.App.Phases {
		for ti := range j.App.Phases[pi].Tasks {
			t := &j.App.Phases[pi].Tasks[ti]
			switch t.Kind {
			case job.TaskRead, job.TaskWrite:
				if t.Target == job.TargetPFS && !plat.HasPFS() {
					return fmt.Errorf("core: job %s uses the PFS but the platform has none", j.Label())
				}
				if t.Target == job.TargetBB && !plat.HasBurstBuffer() {
					return fmt.Errorf("core: job %s uses burst buffers but the platform has none", j.Label())
				}
			}
		}
	}
	return nil
}

// Run executes the simulation to completion and returns the metrics
// recorder. It may only be called once; session-style drivers use the
// resumable Start/RunCtx/RunUntilCtx/StepN/Finish primitives instead.
func (e *Engine) Run() (*metrics.Recorder, error) {
	if e.ran {
		return nil, fmt.Errorf("core: engine already ran")
	}
	e.ran = true
	e.RunCtx(context.Background())
	return e.Finish()
}

// Start arms the initial event set — job submissions, failure injection,
// periodic scheduler invocations, the horizon, and the progress hook —
// without executing anything. It is idempotent; every bounded-run entry
// point calls it, so explicit use is only needed to observe the pre-run
// state (e.g. Pending before the first event).
func (e *Engine) Start() {
	if e.started {
		return
	}
	e.started = true
	e.ran = true
	e.outstanding = len(e.workload.Jobs)
	for _, j := range e.workload.Jobs {
		jj := j
		e.kernel.Schedule(des.Time(j.SubmitTime), des.PriorityEngine, func() {
			e.submit(jj)
		})
	}
	if e.injector != nil {
		for n := 0; n < e.plat.NumNodes(); n++ {
			e.scheduleOutage(n, 0)
		}
	}
	if e.opts.InvocationInterval > 0 && e.outstanding > 0 {
		e.schedulePeriodic()
	}
	if e.opts.Horizon > 0 {
		e.kernel.SetHorizon(des.Time(e.opts.Horizon))
	}
	if p := e.opts.Progress; p != nil {
		e.kernel.SetProgress(telemetry.EveryEvents, func() {
			p.Tick(e.Now(), e.kernel.Steps())
		})
	}
}

// RunCtx executes events until the queue drains, the options horizon is
// reached, or ctx is done, and reports which of those stopped it. The
// engine stays resumable after a cancelled or horizon-bounded return:
// calling RunCtx (or RunUntilCtx/StepN) again continues exactly where the
// previous call stopped, and the resulting simulation is bit-identical to
// an uninterrupted run regardless of how execution was sliced.
func (e *Engine) RunCtx(ctx context.Context) AbortReason {
	return e.runBounded(ctx, des.Infinity)
}

// RunUntilCtx executes events with time <= t (clamped to the options
// horizon) and then advances the clock to the bound, unless ctx stops the
// run first.
func (e *Engine) RunUntilCtx(ctx context.Context, t float64) AbortReason {
	return e.runBounded(ctx, des.Time(t))
}

// runBounded is the shared bounded-execution loop behind RunCtx and
// RunUntilCtx. A bound of des.Infinity means "no bound beyond the options
// horizon" and leaves the clock at the last event executed; a finite bound
// advances the clock to the bound on a clean return (RunUntil contract).
func (e *Engine) runBounded(ctx context.Context, bound des.Time) AbortReason {
	e.Start()
	if e.Drained() {
		// Already complete: report that truthfully even under a
		// cancelled context.
		return AbortDrained
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return abortReasonForCtx(err)
	}
	if done := ctx.Done(); done != nil {
		e.kernel.SetStopCheck(CancelCheckEvents, func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		})
		defer e.kernel.SetStopCheck(0, nil)
	}
	t0 := time.Now()
	var err error
	if bound == des.Infinity {
		err = e.kernel.Run()
	} else {
		err = e.kernel.RunUntil(bound)
	}
	e.wallRun += time.Since(t0)
	switch err {
	case des.ErrStopped:
		return abortReasonForCtx(ctx.Err())
	case nil, des.ErrHalted:
	}
	if e.Drained() {
		return AbortDrained
	}
	return AbortHorizon
}

// StepN executes up to n events and returns how many fired. Zero means the
// queue is drained (or past the horizon): the simulation cannot advance.
func (e *Engine) StepN(n int) int {
	e.Start()
	t0 := time.Now()
	fired := e.kernel.StepN(n)
	e.wallRun += time.Since(t0)
	return fired
}

// Drained reports whether the event queue is empty — no further event can
// ever fire, bounded or not. Before Start nothing is armed yet, so a
// fresh engine is not drained.
func (e *Engine) Drained() bool { return e.started && e.kernel.Pending() == 0 }

// Finish terminates the progress ticker and returns the metrics recorder,
// diagnosing a drained-but-unfinished workload as a deadlock (an algorithm
// that never starts some jobs) unless a horizon legitimately cut the run
// short. It is safe to call on an aborted engine: the recorder then holds
// the partial metrics accumulated so far.
func (e *Engine) Finish() (*metrics.Recorder, error) {
	if p := e.opts.Progress; p != nil && !e.progressDone {
		e.progressDone = true
		p.Done()
	}
	if e.Drained() && e.outstanding > 0 && e.opts.Horizon == 0 {
		return nil, fmt.Errorf("core: simulation deadlocked with %d unfinished jobs (algorithm %q never started them?)", e.outstanding, e.algo.Name())
	}
	return e.rec, nil
}

// Recorder returns the metrics recorder (valid after Run).
func (e *Engine) Recorder() *metrics.Recorder { return e.rec }

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return float64(e.kernel.Now()) }

// Steps returns the number of kernel events executed.
func (e *Engine) Steps() uint64 { return e.kernel.Steps() }

// Invocations returns how many times the algorithm was invoked.
func (e *Engine) Invocations() uint64 { return e.invocations }

// TotalJobs returns the workload size.
func (e *Engine) TotalJobs() int { return len(e.workload.Jobs) }

// Outstanding returns the number of jobs not yet finished (including jobs
// not yet submitted). Valid mid-run; it reaches zero exactly when the
// workload completed. Before Start the whole workload is outstanding.
func (e *Engine) Outstanding() int {
	if !e.started {
		return len(e.workload.Jobs)
	}
	return e.outstanding
}

// QueuedJobs returns the number of jobs currently pending in the queue.
func (e *Engine) QueuedJobs() int { return len(e.queue) }

// RunningJobs returns the number of jobs currently holding nodes.
func (e *Engine) RunningJobs() int { return len(e.running) }

// Solves returns how many fluid-solver recomputations ran.
func (e *Engine) Solves() uint64 { return e.pool.Solves() }

// SolvedActivities returns the cumulative number of activities the fluid
// solver re-solved — the work metric incremental component solving cuts
// relative to the full-recompute baseline.
func (e *Engine) SolvedActivities() uint64 { return e.pool.SolvedActivities() }

// DecisionsApplied returns how many decisions passed validation.
func (e *Engine) DecisionsApplied() uint64 { return e.decisionsApplied }

// Warnings lists rejected decisions and other non-fatal anomalies.
func (e *Engine) Warnings() []string { return e.warnings }

// Trace returns the event log (empty unless Options.Trace).
func (e *Engine) Trace() []TraceEvent { return e.trace }

// Platform exposes the built platform (read-only use).
func (e *Engine) Platform() *platform.Platform { return e.plat }

func (e *Engine) warnf(format string, args ...any) {
	e.warnings = append(e.warnings, fmt.Sprintf("t=%.3f: ", e.Now())+fmt.Sprintf(format, args...))
}

// submit registers a job. Jobs with unfinished dependencies are held;
// the rest enter the pending queue immediately.
func (e *Engine) submit(j *job.Job) {
	jr := &jobRun{job: j, state: statePending, grantedTarget: 0}
	e.runs[j.ID] = jr
	e.rec.JobSubmitted(j, e.Now())
	e.traceEvent(EvSubmit, j.ID, fmt.Sprintf("type=%s", j.Type))
	for _, dep := range j.Dependencies {
		if !e.finished[dep] {
			jr.depsLeft++
			e.dependents[dep] = append(e.dependents[dep], jr)
		}
	}
	if jr.depsLeft > 0 {
		jr.state = stateHeld
		e.traceEvent(EvHeld, j.ID, fmt.Sprintf("deps=%d", jr.depsLeft))
		return
	}
	e.queue = append(e.queue, jr)
	e.requestInvocation(sched.ReasonSubmit)
}

// markFinished records a terminal job and releases dependents whose last
// dependency this was ("afterany": killed jobs satisfy dependencies too).
func (e *Engine) markFinished(id job.ID) {
	e.finished[id] = true
	for _, jr := range e.dependents[id] {
		jr.depsLeft--
		if jr.depsLeft == 0 && jr.state == stateHeld {
			jr.state = statePending
			e.queue = append(e.queue, jr)
			e.traceEvent(EvReleased, jr.job.ID, "")
			e.requestInvocation(sched.ReasonSubmit)
		}
	}
	delete(e.dependents, id)
}

// schedulePeriodic arms the next periodic invocation while work remains.
func (e *Engine) schedulePeriodic() {
	e.kernel.ScheduleAfter(des.Time(e.opts.InvocationInterval), des.PriorityScheduler, func() {
		if e.outstanding == 0 {
			return
		}
		e.pendingReasons |= sched.ReasonPeriodic
		e.invoke()
		e.schedulePeriodic()
	})
}

// requestInvocation coalesces event-driven scheduler invocations: all
// triggers at one timestamp yield a single invocation that runs after
// activity completions (priority ordering).
func (e *Engine) requestInvocation(reason sched.Reason) {
	e.pendingReasons |= reason
	if e.opts.DisableEventDriven {
		return
	}
	if e.invocationScheduled {
		return
	}
	e.invocationScheduled = true
	e.kernel.ScheduleAfter(0, des.PriorityScheduler, func() {
		e.invocationScheduled = false
		e.invoke()
	})
}

// invoke snapshots the state, runs the algorithm, applies its decisions.
// With telemetry attached it additionally emits scheduler-track events and
// an audit record: everything the scheduler saw, everything it decided,
// and why rejected decisions were rejected.
func (e *Engine) invoke() {
	reasons := e.pendingReasons
	e.pendingReasons = 0
	inv := e.snapshot(reasons)
	e.invocations++
	t0 := time.Now()
	decisions := e.algo.Schedule(inv)
	e.wallSched += time.Since(t0)

	tel := e.opts.Telemetry
	var audit *telemetry.AuditRecord
	if tel.Enabled() {
		tel.Counter(telemetry.SchedulerTrack, "queue_depth", inv.Now, float64(len(inv.Pending)))
		tel.Counter(telemetry.SchedulerTrack, "free_nodes", inv.Now, float64(inv.FreeNodes))
		tel.Instant(telemetry.SchedulerTrack, "invoke", inv.Now,
			telemetry.Arg{Key: "reasons", Value: reasons.String()},
			telemetry.Arg{Key: "decisions", Value: len(decisions)})
		if tel.Audit() != nil {
			audit = &telemetry.AuditRecord{
				T:          inv.Now,
				Invocation: e.invocations,
				Reasons:    reasons.String(),
				QueueDepth: len(inv.Pending),
				Running:    len(inv.Running),
				FreeNodes:  inv.FreeNodes,
				DownNodes:  len(inv.DownNodes),
			}
		}
	}
	for _, d := range decisions {
		err := e.apply(d)
		if audit != nil {
			ad := telemetry.AuditDecision{
				Kind: d.Kind.String(), Job: int(d.Job), NumNodes: d.NumNodes, Applied: err == nil,
			}
			if err != nil {
				ad.Reason = err.Error()
			}
			audit.Decisions = append(audit.Decisions, ad)
		}
		if err != nil {
			e.warnf("rejected %v: %v", d, err)
			e.decisionsRejected++
			continue
		}
		e.decisionsApplied++
		if k := int(d.Kind); k >= 0 && k < len(e.decisionsByKind) {
			e.decisionsByKind[k]++
		}
	}
	if audit != nil {
		tel.Audit().Record(*audit)
	}
}

// snapshot builds the read-only invocation view.
func (e *Engine) snapshot(reasons sched.Reason) *sched.Invocation {
	inv := &sched.Invocation{
		Now:        e.Now(),
		Reasons:    reasons,
		FreeNodes:  e.alloc.Free(),
		TotalNodes: e.alloc.Total(),
	}
	for _, id := range e.alloc.FreeNodes() {
		inv.FreeList = append(inv.FreeList, int(id))
	}
	if e.plat.IsTree() {
		inv.GroupSize = e.plat.Spec().Network.GroupSize
	}
	if e.downCount > 0 {
		for n, d := range e.nodeDown {
			if d {
				inv.DownNodes = append(inv.DownNodes, n)
			}
		}
	}
	for _, jr := range e.queue {
		inv.Pending = append(inv.Pending, e.view(jr))
	}
	for _, jr := range e.running {
		inv.Running = append(inv.Running, e.view(jr))
	}
	return inv
}

func (e *Engine) view(jr *jobRun) *sched.JobView {
	v := &sched.JobView{
		ID:         jr.job.ID,
		Job:        jr.job,
		SubmitTime: jr.job.SubmitTime,
	}
	switch jr.state {
	case statePending:
		v.State = sched.StatePending
	default:
		v.State = sched.StateRunning
		v.Nodes = len(jr.nodes)
		v.StartTime = jr.startTime
		v.AtSchedulingPoint = jr.state == stateAtSchedPoint
		v.EvolvingRequest = jr.evolvingRequest
		if jr.job.WallTimeLimit > 0 {
			v.ExpectedEnd = jr.startTime + jr.job.WallTimeLimit
		} else {
			v.ExpectedEnd = math.Inf(1)
		}
	}
	return v
}
