// Package core implements the batch-system simulation engine — the
// reproduction's primary contribution. It couples the platform model
// (fluid resources), the workload model (jobs with phase/task
// applications), and a scheduling algorithm into a deterministic
// discrete-event simulation with first-class support for rigid, moldable,
// malleable, and evolving jobs.
//
// The engine owns all mutable state. The scheduling algorithm only ever
// sees read-only snapshots and answers with decisions, every one of which
// is validated before being applied (node accounting, flexibility-class
// rules, scheduling-point legality). Invalid decisions are dropped and
// recorded as warnings, so buggy algorithms degrade loudly but safely.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/des"
	"repro/internal/failure"
	"repro/internal/fluid"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// PriorityResume orders job-resume events after scheduler invocations at
// the same timestamp, so that a job pausing at a scheduling point gives the
// algorithm a chance to reconfigure it before it continues.
const PriorityResume = des.PriorityScheduler + 10

// prioritySubmit orders job-submission events between activity completions
// and engine bookkeeping at a shared timestamp. It pins the ordering the
// original one-event-per-job arming produced structurally (submission
// events were scheduled first, so their sequence numbers were globally
// smallest): submissions at a timestamp run after activity completions but
// before every other engine event, independent of scheduling history.
const prioritySubmit = des.PriorityEngine - 5

// Options tune engine behaviour.
type Options struct {
	// InvocationInterval adds periodic scheduler invocations every given
	// number of seconds (0 = purely event-driven).
	InvocationInterval float64
	// EventDriven disables event-triggered invocations when false is NOT
	// what you want — it defaults to true; set DisableEventDriven to turn
	// them off (ablation: periodic-only scheduling).
	DisableEventDriven bool
	// Fairness selects the fluid sharing policy (ablation).
	Fairness fluid.Fairness
	// Trace enables the event log (memory-proportional to event count).
	Trace bool
	// TraceTasks additionally logs every task start/end with its phase,
	// iteration, kind, and duration — the raw material for calibrating
	// application models. Implies substantial log volume; requires Trace.
	TraceTasks bool
	// Horizon aborts the simulation at this virtual time (0 = none).
	Horizon float64
	// DisableFastPath forces every task through the fluid solver, even
	// work on job-private resources (own nodes, own links) that cannot
	// contend and whose duration is therefore a closed form. The fast
	// path is exactly equivalent (tested) and much cheaper on large
	// machines; this switch exists for the equivalence tests and the
	// simulator-performance ablation.
	DisableFastPath bool
	// ForceFullSolve disables the fluid solver's incremental component
	// solving: every activity state change re-solves every component and
	// re-examines every completion event. Results are bit-identical
	// either way (asserted by the equivalence regression tests); the
	// switch exists for those tests and performance comparisons.
	ForceFullSolve bool
	// ForceHeapQueue drives the DES kernel with the reference binary-heap
	// event queue instead of the default ladder queue. Results are
	// bit-identical either way (asserted by the equivalence regression
	// tests); the switch exists for those tests and performance
	// comparisons, mirroring ForceFullSolve.
	ForceHeapQueue bool
	// Failures injects node failures and repairs (nil = none). It takes
	// precedence over the platform spec's "failures" object, letting one
	// platform file drive both clean and degraded runs.
	Failures *failure.Spec
	// Telemetry attaches the observability layer (nil = disabled, the
	// zero-overhead default). Spans for jobs, nodes, and the scheduler
	// stream to the tracer's sinks; an attached audit log records every
	// scheduler invocation. Telemetry never alters simulation outputs.
	Telemetry *telemetry.Tracer
	// Progress attaches a live progress sink driven from the kernel's
	// event loop (nil = disabled): a telemetry.RunProgress for a stderr
	// ticker, or a telemetry.ProgressFanOut to broadcast to multiple
	// concurrent observers.
	Progress telemetry.Progress
}

// Engine is a single-run batch-system simulator. Create with New, run with
// Run, inspect with Recorder/Summary. An Engine is not reusable.
type Engine struct {
	kernel *des.Kernel
	pool   *fluid.Pool
	plat   *platform.Platform
	alloc  *platform.Allocator
	algo   sched.Algorithm
	opts   Options
	rec    *metrics.Recorder

	workload *job.Workload
	runs     *runTable
	queue    runList // pending, submission order
	running  runList // start order

	// Dependency tracking: dependents maps a job to the held jobs waiting
	// on it (finished-ness is read off the run table's terminal state).
	dependents map[job.ID][]*jobRun

	// Failure injection: injector is nil when disabled, and every other
	// field stays untouched in that case (runs are bit-identical to an
	// engine without the subsystem).
	injector  *failure.Injector
	nodeDown  []bool
	downCount int

	invocationScheduled bool
	pendingReasons      sched.Reason
	invocations         uint64
	invocationsElided   uint64

	// Same-timestamp invocation batching: stateEpoch counts every mutation
	// a scheduler snapshot could observe (each coincides with either a
	// requestInvocation call or an applied decision). An invocation whose
	// timestamp and epoch both match the previous one would hand the
	// algorithm a bit-identical snapshot, so it is elided.
	stateEpoch      uint64
	lastInvokeT     float64
	lastInvokeEpoch uint64

	// Snapshot reuse: the invocation view handed to the algorithm is
	// rebuilt in place each time (algorithms must not retain it — see
	// sched.Algorithm), so steady-state invocations allocate nothing.
	snapInv     sched.Invocation
	snapViews   []sched.JobView
	snapPending []*sched.JobView
	snapRunning []*sched.JobView
	snapFree    []int
	snapDown    []int
	// wantFreeList gates the O(total nodes) FreeList materialisation per
	// snapshot to algorithms that declare they read it (sched.FreeListUser).
	wantFreeList      bool
	decisionsApplied  uint64
	decisionsRejected uint64
	decisionsByKind   [5]uint64 // applied decisions, indexed by sched.DecisionKind
	wallRun           time.Duration
	wallSched         time.Duration
	warnings          []string
	trace             []TraceEvent
	outstanding       int // jobs not yet finished
	ran               bool
	started           bool // Start armed the initial events
	progressDone      bool // Options.Progress ticker already terminated
	telFinalized      bool // open telemetry spans force-closed after abort
}

// CancelCheckEvents is how many kernel events fire between context polls
// during RunCtx/RunUntilCtx. Batched so a pending ctx.Done() costs one
// integer compare per event on the hot path; coarse enough that the select
// is noise, fine enough that cancellation lands within microseconds of
// wall time on realistic event rates.
const CancelCheckEvents = 1024

// New builds an engine for one simulation run. The workload must already
// validate against the platform.
func New(spec *platform.Spec, w *job.Workload, algo sched.Algorithm, opts Options) (*Engine, error) {
	if algo == nil {
		return nil, fmt.Errorf("core: nil scheduling algorithm")
	}
	kernel := des.NewKernel()
	if opts.ForceHeapQueue {
		kernel = des.NewHeapKernel()
	}
	pool := fluid.NewPool(kernel)
	pool.SetFairness(opts.Fairness)
	if opts.ForceFullSolve {
		pool.SetForceFullSolve(true)
	}
	plat, err := platform.Build(spec, pool)
	if err != nil {
		return nil, err
	}
	if err := w.Validate(plat.NumNodes()); err != nil {
		return nil, err
	}
	for _, j := range w.Jobs {
		if err := checkPlatformSupport(plat, j); err != nil {
			return nil, err
		}
	}
	e := &Engine{
		kernel:      kernel,
		pool:        pool,
		plat:        plat,
		alloc:       platform.NewAllocator(plat.NumNodes()),
		algo:        algo,
		opts:        opts,
		rec:         metrics.NewRecorder(plat.NumNodes()),
		workload:    w,
		runs:        newRunTable(w),
		dependents:  make(map[job.ID][]*jobRun),
		lastInvokeT: math.Inf(-1),
	}
	if u, ok := algo.(sched.FreeListUser); ok && u.WantsFreeList() {
		e.wantFreeList = true
	}
	fs := opts.Failures
	if fs == nil {
		fs = spec.Failures
	}
	inj, err := failure.NewInjector(fs, plat.NumNodes())
	if err != nil {
		return nil, err
	}
	if inj != nil {
		e.injector = inj
		e.nodeDown = make([]bool, plat.NumNodes())
	}
	return e, nil
}

// checkPlatformSupport rejects workloads using storage tiers the platform
// does not provide; failing early beats a mid-simulation panic.
func checkPlatformSupport(plat *platform.Platform, j *job.Job) error {
	for pi := range j.App.Phases {
		for ti := range j.App.Phases[pi].Tasks {
			t := &j.App.Phases[pi].Tasks[ti]
			switch t.Kind {
			case job.TaskRead, job.TaskWrite:
				if t.Target == job.TargetPFS && !plat.HasPFS() {
					return fmt.Errorf("core: job %s uses the PFS but the platform has none", j.Label())
				}
				if t.Target == job.TargetBB && !plat.HasBurstBuffer() {
					return fmt.Errorf("core: job %s uses burst buffers but the platform has none", j.Label())
				}
			}
		}
	}
	return nil
}

// Run executes the simulation to completion and returns the metrics
// recorder. It may only be called once; session-style drivers use the
// resumable Start/RunCtx/RunUntilCtx/StepN/Finish primitives instead.
func (e *Engine) Run() (*metrics.Recorder, error) {
	if e.ran {
		return nil, fmt.Errorf("core: engine already ran")
	}
	e.ran = true
	e.RunCtx(context.Background())
	return e.Finish()
}

// Start arms the initial event set — job submissions, failure injection,
// periodic scheduler invocations, the horizon, and the progress hook —
// without executing anything. It is idempotent; every bounded-run entry
// point calls it, so explicit use is only needed to observe the pre-run
// state (e.g. Pending before the first event).
func (e *Engine) Start() {
	if e.started {
		return
	}
	e.started = true
	e.ran = true
	e.outstanding = len(e.workload.Jobs)
	e.armSubmissions()
	if e.injector != nil {
		for n := 0; n < e.plat.NumNodes(); n++ {
			e.scheduleOutage(n, 0)
		}
	}
	if e.opts.InvocationInterval > 0 && e.outstanding > 0 {
		e.schedulePeriodic()
	}
	if e.opts.Horizon > 0 {
		e.kernel.SetHorizon(des.Time(e.opts.Horizon))
	}
	if p := e.opts.Progress; p != nil {
		e.kernel.SetProgress(telemetry.EveryEvents, func() {
			p.Tick(e.Now(), e.kernel.Steps())
		})
	}
}

// armSubmissions schedules the workload's submissions as a chain of batch
// events — one transient kernel event per distinct submit time, each
// submitting every job due at its timestamp and arming the next link —
// instead of one closure-carrying event per job. A million-job workload
// thus arms in O(1) queue space and allocates nothing per job beyond its
// run-table slot. Submissions run at prioritySubmit, reproducing the exact
// intra-timestamp ordering of per-job arming.
func (e *Engine) armSubmissions() {
	jobs := e.workload.Jobs
	if len(jobs) == 0 {
		return
	}
	// Workloads from ParseWorkload/Generate are sorted by submit time; a
	// hand-assembled one may not be, so fall back to a stably-sorted index
	// (preserving workload order within a timestamp, which is the order
	// per-job arming would have fired in).
	at := func(i int) *job.Job { return jobs[i] }
	for i := 1; i < len(jobs); i++ {
		if jobs[i].SubmitTime < jobs[i-1].SubmitTime {
			idx := make([]int, len(jobs))
			for k := range idx {
				idx[k] = k
			}
			sort.SliceStable(idx, func(a, b int) bool {
				return jobs[idx[a]].SubmitTime < jobs[idx[b]].SubmitTime
			})
			at = func(i int) *job.Job { return jobs[idx[i]] }
			break
		}
	}
	next := 0
	var step func()
	step = func() {
		now := float64(e.kernel.Now())
		for next < len(jobs) && at(next).SubmitTime <= now {
			j := at(next)
			next++
			e.submit(j)
		}
		if next < len(jobs) {
			e.kernel.ScheduleTransient(des.Time(at(next).SubmitTime), prioritySubmit, step)
		}
	}
	e.kernel.ScheduleTransient(des.Time(at(0).SubmitTime), prioritySubmit, step)
}

// RunCtx executes events until the queue drains, the options horizon is
// reached, or ctx is done, and reports which of those stopped it. The
// engine stays resumable after a cancelled or horizon-bounded return:
// calling RunCtx (or RunUntilCtx/StepN) again continues exactly where the
// previous call stopped, and the resulting simulation is bit-identical to
// an uninterrupted run regardless of how execution was sliced.
func (e *Engine) RunCtx(ctx context.Context) AbortReason {
	return e.runBounded(ctx, des.Infinity)
}

// RunUntilCtx executes events with time <= t (clamped to the options
// horizon) and then advances the clock to the bound, unless ctx stops the
// run first.
func (e *Engine) RunUntilCtx(ctx context.Context, t float64) AbortReason {
	return e.runBounded(ctx, des.Time(t))
}

// runBounded is the shared bounded-execution loop behind RunCtx and
// RunUntilCtx. A bound of des.Infinity means "no bound beyond the options
// horizon" and leaves the clock at the last event executed; a finite bound
// advances the clock to the bound on a clean return (RunUntil contract).
func (e *Engine) runBounded(ctx context.Context, bound des.Time) AbortReason {
	e.Start()
	if e.Drained() {
		// Already complete: report that truthfully even under a
		// cancelled context.
		return AbortDrained
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return abortReasonForCtx(err)
	}
	if done := ctx.Done(); done != nil {
		e.kernel.SetStopCheck(CancelCheckEvents, func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		})
		defer e.kernel.SetStopCheck(0, nil)
	}
	t0 := time.Now()
	var err error
	if bound == des.Infinity {
		err = e.kernel.Run()
	} else {
		err = e.kernel.RunUntil(bound)
	}
	e.wallRun += time.Since(t0)
	switch err {
	case des.ErrStopped:
		return abortReasonForCtx(ctx.Err())
	case nil, des.ErrHalted:
	}
	if e.Drained() {
		return AbortDrained
	}
	return AbortHorizon
}

// StepN executes up to n events and returns how many fired. Zero means the
// queue is drained (or past the horizon): the simulation cannot advance.
func (e *Engine) StepN(n int) int {
	e.Start()
	t0 := time.Now()
	fired := e.kernel.StepN(n)
	e.wallRun += time.Since(t0)
	return fired
}

// Drained reports whether the event queue is empty — no further event can
// ever fire, bounded or not. Before Start nothing is armed yet, so a
// fresh engine is not drained.
func (e *Engine) Drained() bool { return e.started && e.kernel.Pending() == 0 }

// Finish terminates the progress ticker and returns the metrics recorder,
// diagnosing a drained-but-unfinished workload as a deadlock (an algorithm
// that never starts some jobs) unless a horizon legitimately cut the run
// short. It is safe to call on an aborted engine: the recorder then holds
// the partial metrics accumulated so far.
func (e *Engine) Finish() (*metrics.Recorder, error) {
	if p := e.opts.Progress; p != nil && !e.progressDone {
		e.progressDone = true
		p.Done()
	}
	if e.Drained() && e.outstanding > 0 && e.opts.Horizon == 0 {
		return nil, fmt.Errorf("core: simulation deadlocked with %d unfinished jobs (algorithm %q never started them?)", e.outstanding, e.algo.Name())
	}
	return e.rec, nil
}

// Recorder returns the metrics recorder (valid after Run).
func (e *Engine) Recorder() *metrics.Recorder { return e.rec }

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return float64(e.kernel.Now()) }

// Steps returns the number of kernel events executed.
func (e *Engine) Steps() uint64 { return e.kernel.Steps() }

// KernelStats samples the DES kernel's lifetime counters (events
// scheduled/fired/cancelled, queue high-water mark, ladder re-bucketing
// activity). Operational metrics export these directly instead of
// re-counting on the hot path.
func (e *Engine) KernelStats() des.KernelStats { return e.kernel.Stats() }

// Invocations returns how many times the algorithm was invoked.
func (e *Engine) Invocations() uint64 { return e.invocations }

// TotalJobs returns the workload size.
func (e *Engine) TotalJobs() int { return len(e.workload.Jobs) }

// Outstanding returns the number of jobs not yet finished (including jobs
// not yet submitted). Valid mid-run; it reaches zero exactly when the
// workload completed. Before Start the whole workload is outstanding.
func (e *Engine) Outstanding() int {
	if !e.started {
		return len(e.workload.Jobs)
	}
	return e.outstanding
}

// QueuedJobs returns the number of jobs currently pending in the queue.
func (e *Engine) QueuedJobs() int { return e.queue.count }

// RunningJobs returns the number of jobs currently holding nodes.
func (e *Engine) RunningJobs() int { return e.running.count }

// InvocationsElided returns how many scheduler invocations were batched
// away because an invocation at the same timestamp had already seen a
// bit-identical snapshot.
func (e *Engine) InvocationsElided() uint64 { return e.invocationsElided }

// Solves returns how many fluid-solver recomputations ran.
func (e *Engine) Solves() uint64 { return e.pool.Solves() }

// SolvedActivities returns the cumulative number of activities the fluid
// solver re-solved — the work metric incremental component solving cuts
// relative to the full-recompute baseline.
func (e *Engine) SolvedActivities() uint64 { return e.pool.SolvedActivities() }

// DecisionsApplied returns how many decisions passed validation.
func (e *Engine) DecisionsApplied() uint64 { return e.decisionsApplied }

// Warnings lists rejected decisions and other non-fatal anomalies.
func (e *Engine) Warnings() []string { return e.warnings }

// Trace returns the event log (empty unless Options.Trace).
func (e *Engine) Trace() []TraceEvent { return e.trace }

// Platform exposes the built platform (read-only use).
func (e *Engine) Platform() *platform.Platform { return e.plat }

func (e *Engine) warnf(format string, args ...any) {
	e.warnings = append(e.warnings, fmt.Sprintf("t=%.3f: ", e.Now())+fmt.Sprintf(format, args...))
}

// submit registers a job. Jobs with unfinished dependencies are held;
// the rest enter the pending queue immediately.
func (e *Engine) submit(j *job.Job) {
	jr := e.runs.alloc(j)
	jr.state = statePending
	e.rec.JobSubmitted(j, e.Now())
	e.traceEvent(EvSubmit, j.ID, fmt.Sprintf("type=%s", j.Type))
	for _, dep := range j.Dependencies {
		if !e.isFinished(dep) {
			jr.depsLeft++
			e.dependents[dep] = append(e.dependents[dep], jr)
		}
	}
	if jr.depsLeft > 0 {
		jr.state = stateHeld
		e.traceEvent(EvHeld, j.ID, fmt.Sprintf("deps=%d", jr.depsLeft))
		return
	}
	e.queue.add(jr)
	e.requestInvocation(sched.ReasonSubmit)
}

// isFinished reports whether id reached a terminal state ("afterany"
// dependency semantics: completed and killed both count). A job that was
// never submitted is not finished.
func (e *Engine) isFinished(id job.ID) bool {
	jr := e.runs.get(id)
	return jr != nil && jr.state == stateDone
}

// markFinished releases dependents whose last dependency this was
// ("afterany": killed jobs satisfy dependencies too).
func (e *Engine) markFinished(id job.ID) {
	for _, jr := range e.dependents[id] {
		jr.depsLeft--
		if jr.depsLeft == 0 && jr.state == stateHeld {
			jr.state = statePending
			e.queue.add(jr)
			e.traceEvent(EvReleased, jr.job.ID, "")
			e.requestInvocation(sched.ReasonSubmit)
		}
	}
	delete(e.dependents, id)
}

// schedulePeriodic arms the next periodic invocation while work remains.
func (e *Engine) schedulePeriodic() {
	e.kernel.ScheduleTransientAfter(des.Time(e.opts.InvocationInterval), des.PriorityScheduler, func() {
		if e.outstanding == 0 {
			return
		}
		e.pendingReasons |= sched.ReasonPeriodic
		e.invoke()
		e.schedulePeriodic()
	})
}

// requestInvocation coalesces event-driven scheduler invocations: all
// triggers at one timestamp yield a single invocation that runs after
// activity completions (priority ordering). Every call marks a state
// change, which is what lets invoke batch away a redundant same-timestamp
// re-invocation (see stateEpoch).
func (e *Engine) requestInvocation(reason sched.Reason) {
	e.stateEpoch++
	e.pendingReasons |= reason
	if e.opts.DisableEventDriven {
		return
	}
	if e.invocationScheduled {
		return
	}
	e.invocationScheduled = true
	e.kernel.ScheduleTransientAfter(0, des.PriorityScheduler, func() {
		e.invocationScheduled = false
		e.invoke()
	})
}

// invoke snapshots the state, runs the algorithm, applies its decisions.
// With telemetry attached it additionally emits scheduler-track events and
// an audit record: everything the scheduler saw, everything it decided,
// and why rejected decisions were rejected.
func (e *Engine) invoke() {
	now := e.Now()
	if e.invocations > 0 && now == e.lastInvokeT && e.stateEpoch == e.lastInvokeEpoch {
		// An invocation already ran at this exact timestamp and nothing it
		// could observe has changed since (no new trigger, no applied
		// decision): a second call would hand the algorithm a bit-identical
		// snapshot — the pending reasons are the only delta — and apply the
		// same outcome. Batch it away. This collapses the periodic tick and
		// the event-driven invocation landing on one timestamp into a
		// single algorithm call.
		e.pendingReasons = 0
		e.invocationsElided++
		return
	}
	reasons := e.pendingReasons
	e.pendingReasons = 0
	inv := e.snapshot(reasons)
	e.invocations++
	t0 := time.Now()
	decisions := e.algo.Schedule(inv)
	e.wallSched += time.Since(t0)

	tel := e.opts.Telemetry
	var audit *telemetry.AuditRecord
	if tel.Enabled() {
		tel.Counter(telemetry.SchedulerTrack, "queue_depth", inv.Now, float64(len(inv.Pending)))
		tel.Counter(telemetry.SchedulerTrack, "free_nodes", inv.Now, float64(inv.FreeNodes))
		tel.Instant(telemetry.SchedulerTrack, "invoke", inv.Now,
			telemetry.Arg{Key: "reasons", Value: reasons.String()},
			telemetry.Arg{Key: "decisions", Value: len(decisions)})
		if tel.Audit() != nil {
			audit = &telemetry.AuditRecord{
				T:          inv.Now,
				Invocation: e.invocations,
				Reasons:    reasons.String(),
				QueueDepth: len(inv.Pending),
				Running:    len(inv.Running),
				FreeNodes:  inv.FreeNodes,
				DownNodes:  len(inv.DownNodes),
			}
		}
	}
	for _, d := range decisions {
		err := e.apply(d)
		if audit != nil {
			ad := telemetry.AuditDecision{
				Kind: d.Kind.String(), Job: int(d.Job), NumNodes: d.NumNodes, Applied: err == nil,
			}
			if err != nil {
				ad.Reason = err.Error()
			}
			audit.Decisions = append(audit.Decisions, ad)
		}
		if err != nil {
			e.warnf("rejected %v: %v", d, err)
			e.decisionsRejected++
			continue
		}
		e.stateEpoch++ // applied decisions change what a snapshot would see
		e.decisionsApplied++
		if k := int(d.Kind); k >= 0 && k < len(e.decisionsByKind) {
			e.decisionsByKind[k]++
		}
	}
	if audit != nil {
		tel.Audit().Record(*audit)
	}
	e.lastInvokeT = now
	e.lastInvokeEpoch = e.stateEpoch
}

// snapshot builds the read-only invocation view. The Invocation, its
// JobViews, and every slice hang off reusable engine buffers (algorithms
// must not retain them — the sched.Algorithm contract), so a steady-state
// invocation performs no allocation at all.
func (e *Engine) snapshot(reasons sched.Reason) *sched.Invocation {
	inv := &e.snapInv
	*inv = sched.Invocation{
		Now:        e.Now(),
		Reasons:    reasons,
		FreeNodes:  e.alloc.Free(),
		TotalNodes: e.alloc.Total(),
	}
	if e.wantFreeList {
		e.snapFree = e.snapFree[:0]
		for _, id := range e.alloc.FreeNodes() {
			e.snapFree = append(e.snapFree, int(id))
		}
		inv.FreeList = e.snapFree
	}
	if e.plat.IsTree() {
		inv.GroupSize = e.plat.Spec().Network.GroupSize
	}
	if e.downCount > 0 {
		e.snapDown = e.snapDown[:0]
		for n, d := range e.nodeDown {
			if d {
				e.snapDown = append(e.snapDown, n)
			}
		}
		inv.DownNodes = e.snapDown
	}
	// Size the view slab up front: pointers into it must stay stable while
	// the pending/running lists are filled.
	need := e.queue.count + e.running.count
	if cap(e.snapViews) < need {
		e.snapViews = make([]sched.JobView, need+need/2)
	}
	views := e.snapViews[:cap(e.snapViews)]
	vi := 0
	e.snapPending = e.snapPending[:0]
	for _, jr := range e.queue.items {
		if jr == nil {
			continue
		}
		v := &views[vi]
		vi++
		e.fillView(v, jr)
		e.snapPending = append(e.snapPending, v)
	}
	e.snapRunning = e.snapRunning[:0]
	for _, jr := range e.running.items {
		if jr == nil {
			continue
		}
		v := &views[vi]
		vi++
		e.fillView(v, jr)
		e.snapRunning = append(e.snapRunning, v)
	}
	inv.Pending = e.snapPending
	inv.Running = e.snapRunning
	return inv
}

func (e *Engine) fillView(v *sched.JobView, jr *jobRun) {
	*v = sched.JobView{
		ID:         jr.job.ID,
		Job:        jr.job,
		SubmitTime: jr.job.SubmitTime,
	}
	switch jr.state {
	case statePending:
		v.State = sched.StatePending
	default:
		v.State = sched.StateRunning
		v.Nodes = len(jr.nodes)
		v.StartTime = jr.startTime
		v.AtSchedulingPoint = jr.state == stateAtSchedPoint
		v.EvolvingRequest = jr.evolvingRequest
		if jr.job.WallTimeLimit > 0 {
			v.ExpectedEnd = jr.startTime + jr.job.WallTimeLimit
		} else {
			v.ExpectedEnd = math.Inf(1)
		}
	}
}
