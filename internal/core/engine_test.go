package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sched"
)

const (
	speed  = 1e9 // 1 Gflop/s nodes
	linkBW = 1e9 // 1 GB/s links
	pfsBW  = 2e9 // 2 GB/s PFS (both directions)
)

func testPlatform(nodes int) *platform.Spec {
	return platform.Homogeneous("test", nodes, speed, linkBW, pfsBW, pfsBW)
}

func computeJob(id int, nodes int, flops float64) *job.Job {
	return &job.Job{
		ID: job.ID(id), Type: job.Rigid, NumNodes: nodes,
		Args: map[string]float64{"flops": flops},
		App: &job.Application{Phases: []job.Phase{{
			Tasks: []job.Task{{Kind: job.TaskCompute, Model: job.MustExprModel("flops / num_nodes")}},
		}}},
	}
}

func runSim(t *testing.T, spec *platform.Spec, jobs []*job.Job, algo sched.Algorithm, opts Options) (*metrics.Recorder, *Engine) {
	t.Helper()
	w := &job.Workload{Jobs: jobs}
	w.Sort()
	e, err := New(spec, w, algo, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rec, e
}

func wantClose(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %v, want %v", what, got, want)
	}
}

func TestSingleComputeJobAnalytic(t *testing.T) {
	// 1e12 flops over 4 nodes at 1e9 flops/s: 250 s.
	rec, _ := runSim(t, testPlatform(8), []*job.Job{computeJob(0, 4, 1e12)}, &sched.FCFS{}, Options{})
	r := rec.Record(0)
	wantClose(t, "wait", r.Wait(), 0)
	wantClose(t, "runtime", r.Runtime(), 250)
	s := rec.Summary()
	wantClose(t, "makespan", s.Makespan, 250)
	// 4 of 8 nodes busy the whole time.
	wantClose(t, "utilization", s.Utilization, 0.5)
}

func TestCommJobAnalytic(t *testing.T) {
	// Ring allreduce of 1 GB on 4 nodes at 1 GB/s links:
	// 2*(4-1)/4 = 1.5 GB per link -> 1.5 s.
	j := &job.Job{
		ID: 0, Type: job.Rigid, NumNodes: 4,
		App: &job.Application{Phases: []job.Phase{{
			Tasks: []job.Task{{Kind: job.TaskComm, Model: job.MustExprModel("1G"), Pattern: job.PatternAllReduce}},
		}}},
	}
	rec, _ := runSim(t, testPlatform(8), []*job.Job{j}, &sched.FCFS{}, Options{})
	wantClose(t, "allreduce runtime", rec.Record(0).Runtime(), 1.5)
}

func TestCommPatternsAnalytic(t *testing.T) {
	cases := []struct {
		pattern job.CommPattern
		nodes   int
		want    float64 // seconds for 1 GB payload on 1 GB/s links
	}{
		{job.PatternAllReduce, 4, 1.5}, // 2(n-1)/n
		{job.PatternAllToAll, 4, 3},    // n-1
		{job.PatternRing, 4, 1},        // 1
		{job.PatternBroadcast, 8, 3},   // root log2(8)=3 is the bottleneck
		{job.PatternGather, 5, 4},      // root receives n-1
	}
	for _, tc := range cases {
		j := &job.Job{
			ID: 0, Type: job.Rigid, NumNodes: tc.nodes,
			App: &job.Application{Phases: []job.Phase{{
				Tasks: []job.Task{{Kind: job.TaskComm, Model: job.MustExprModel("1G"), Pattern: tc.pattern}},
			}}},
		}
		rec, _ := runSim(t, testPlatform(8), []*job.Job{j}, &sched.FCFS{}, Options{})
		wantClose(t, string(tc.pattern), rec.Record(0).Runtime(), tc.want)
	}
}

func TestCommSingleNodeIsFree(t *testing.T) {
	j := &job.Job{
		ID: 0, Type: job.Rigid, NumNodes: 1,
		App: &job.Application{Phases: []job.Phase{{
			Tasks: []job.Task{{Kind: job.TaskComm, Model: job.MustExprModel("1G"), Pattern: job.PatternAllReduce}},
		}}},
	}
	rec, _ := runSim(t, testPlatform(2), []*job.Job{j}, &sched.FCFS{}, Options{})
	wantClose(t, "single-node comm", rec.Record(0).Runtime(), 0)
}

func TestIOJobAnalytic(t *testing.T) {
	// Read 8 GB on 2 nodes: PFS 2 GB/s vs links 2*1 GB/s -> 2 GB/s -> 4 s.
	j := &job.Job{
		ID: 0, Type: job.Rigid, NumNodes: 2,
		App: &job.Application{Phases: []job.Phase{{
			Tasks: []job.Task{{Kind: job.TaskRead, Model: job.MustExprModel("8G"), Target: job.TargetPFS}},
		}}},
	}
	rec, _ := runSim(t, testPlatform(4), []*job.Job{j}, &sched.FCFS{}, Options{})
	wantClose(t, "read runtime", rec.Record(0).Runtime(), 4)
	// On 1 node the link (1 GB/s) is the bottleneck: 8 s.
	j2 := &job.Job{
		ID: 0, Type: job.Rigid, NumNodes: 1,
		App: &job.Application{Phases: []job.Phase{{
			Tasks: []job.Task{{Kind: job.TaskRead, Model: job.MustExprModel("8G"), Target: job.TargetPFS}},
		}}},
	}
	rec2, _ := runSim(t, testPlatform(4), []*job.Job{j2}, &sched.FCFS{}, Options{})
	wantClose(t, "link-bound read", rec2.Record(0).Runtime(), 8)
}

func TestPFSContentionFairShare(t *testing.T) {
	// Two 1-node jobs each writing 4 GB to a 2 GB/s PFS simultaneously:
	// links allow 1 GB/s each, PFS allows 1 GB/s each -> both take 4 s.
	// With 2 GB/s links the PFS at 2 GB/s is the contended resource: each
	// job gets 1 GB/s -> 4 s; alone each would take 2 s.
	spec := platform.Homogeneous("c", 2, speed, 2e9, 2e9, 2e9)
	mk := func(id int) *job.Job {
		return &job.Job{
			ID: job.ID(id), Type: job.Rigid, NumNodes: 1,
			App: &job.Application{Phases: []job.Phase{{
				Tasks: []job.Task{{Kind: job.TaskWrite, Model: job.MustExprModel("4G"), Target: job.TargetPFS}},
			}}},
		}
	}
	rec, _ := runSim(t, spec, []*job.Job{mk(0), mk(1)}, &sched.FCFS{}, Options{})
	wantClose(t, "contended write 0", rec.Record(0).Runtime(), 4)
	wantClose(t, "contended write 1", rec.Record(1).Runtime(), 4)
}

func TestBurstBufferAvoidsContention(t *testing.T) {
	// Same two writers, but node-local burst buffers at 2 GB/s: no
	// contention, 2 s each.
	spec := platform.Homogeneous("c", 2, speed, 2e9, 2e9, 2e9)
	spec.BurstBuffer = &platform.BurstBufferSpec{
		Kind: platform.BBNodeLocal, ReadBandwidth: 2e9, WriteBandwidth: 2e9,
	}
	mk := func(id int) *job.Job {
		return &job.Job{
			ID: job.ID(id), Type: job.Rigid, NumNodes: 1,
			App: &job.Application{Phases: []job.Phase{{
				Tasks: []job.Task{{Kind: job.TaskWrite, Model: job.MustExprModel("4G"), Target: job.TargetBB}},
			}}},
		}
	}
	rec, _ := runSim(t, spec, []*job.Job{mk(0), mk(1)}, &sched.FCFS{}, Options{})
	wantClose(t, "bb write 0", rec.Record(0).Runtime(), 2)
	wantClose(t, "bb write 1", rec.Record(1).Runtime(), 2)
}

func TestDelayTask(t *testing.T) {
	j := &job.Job{
		ID: 0, Type: job.Rigid, NumNodes: 1,
		App: &job.Application{Phases: []job.Phase{{
			Tasks: []job.Task{{Kind: job.TaskDelay, Model: job.MustExprModel("12.5")}},
		}}},
	}
	rec, _ := runSim(t, testPlatform(1), []*job.Job{j}, &sched.FCFS{}, Options{})
	wantClose(t, "delay runtime", rec.Record(0).Runtime(), 12.5)
}

func TestMultiPhaseSequencing(t *testing.T) {
	// read 2 GB (PFS 2 GB/s, 2 nodes: 1 s) + compute 1e10/node (10 s)
	// + allreduce 1 GB (1 s) repeated twice + write 2 GB (1 s):
	// total = 1 + 2*(10+1) + 1 = 24 s.
	j := &job.Job{
		ID: 0, Type: job.Rigid, NumNodes: 2,
		Args: map[string]float64{"w": 1e10},
		App: &job.Application{Phases: []job.Phase{
			{Tasks: []job.Task{{Kind: job.TaskRead, Model: job.MustExprModel("2G"), Target: job.TargetPFS}}},
			{Iterations: 2, Tasks: []job.Task{
				{Kind: job.TaskCompute, Model: job.MustExprModel("w")},
				{Kind: job.TaskComm, Model: job.MustExprModel("1G"), Pattern: job.PatternAllReduce},
			}},
			{Tasks: []job.Task{{Kind: job.TaskWrite, Model: job.MustExprModel("2G"), Target: job.TargetPFS}}},
		}},
	}
	rec, _ := runSim(t, testPlatform(2), []*job.Job{j}, &sched.FCFS{}, Options{})
	wantClose(t, "multi-phase runtime", rec.Record(0).Runtime(), 24)
}

func TestFCFSQueueing(t *testing.T) {
	// 4-node machine, three 4-node jobs of 100 s: strictly serialized.
	jobs := []*job.Job{}
	for i := 0; i < 3; i++ {
		j := computeJob(i, 4, 4e11) // 100 s on 4 nodes
		j.SubmitTime = float64(i)
		jobs = append(jobs, j)
	}
	rec, _ := runSim(t, testPlatform(4), jobs, &sched.FCFS{}, Options{})
	wantClose(t, "job0 start", rec.Record(0).Start, 0)
	wantClose(t, "job1 start", rec.Record(1).Start, 100)
	wantClose(t, "job2 start", rec.Record(2).Start, 200)
	s := rec.Summary()
	wantClose(t, "makespan", s.Makespan, 300)
	wantClose(t, "utilization", s.Utilization, 1)
}

func TestWalltimeKill(t *testing.T) {
	j := computeJob(0, 2, 1e12) // would run 500 s
	j.WallTimeLimit = 100
	rec, _ := runSim(t, testPlatform(2), []*job.Job{j}, &sched.FCFS{}, Options{})
	r := rec.Record(0)
	if !r.Killed {
		t.Fatal("job not killed at walltime")
	}
	wantClose(t, "kill time", r.End, 100)
	s := rec.Summary()
	if s.Killed != 1 || s.Completed != 0 {
		t.Errorf("summary %+v", s)
	}
}

func malleableJob(id int, minN, maxN, start, iters int, flopsPerIter float64) *job.Job {
	return &job.Job{
		ID: job.ID(id), Type: job.Malleable,
		NumNodesMin: minN, NumNodesMax: maxN, NumNodes: start,
		Args: map[string]float64{"w": flopsPerIter},
		App: &job.Application{Phases: []job.Phase{{
			Iterations:      iters,
			SchedulingPoint: true,
			Tasks:           []job.Task{{Kind: job.TaskCompute, Model: job.MustExprModel("w / num_nodes")}},
		}}},
	}
}

func TestMalleableExpansion(t *testing.T) {
	// Alone on 8 nodes, starting at 2: after iteration 0 the adaptive
	// policy expands to 8. Work 4.8e10/iter:
	// iter0: 4.8e10/2/1e9 = 24 s; iter1, iter2: 6 s each. Total 36 s.
	j := malleableJob(0, 2, 8, 2, 3, 4.8e10)
	rec, e := runSim(t, testPlatform(8), []*job.Job{j}, &sched.Adaptive{}, Options{})
	r := rec.Record(0)
	wantClose(t, "runtime", r.Runtime(), 36)
	if r.Reconfigs != 1 {
		t.Errorf("reconfigs = %d, want 1", r.Reconfigs)
	}
	if r.PeakNodes != 8 || r.InitialNodes != 2 {
		t.Errorf("allocation history %d..%d", r.InitialNodes, r.PeakNodes)
	}
	if len(e.Warnings()) != 0 {
		t.Errorf("warnings: %v", e.Warnings())
	}
}

func TestMalleableReconfigCost(t *testing.T) {
	j := malleableJob(0, 2, 8, 2, 3, 4.8e10)
	j.ReconfigCost = job.MustExprModel("10")
	rec, _ := runSim(t, testPlatform(8), []*job.Job{j}, &sched.Adaptive{}, Options{})
	// 36 s of work + 10 s reconfiguration.
	wantClose(t, "runtime with cost", rec.Record(0).Runtime(), 46)
}

func TestMalleableShrinkToAdmit(t *testing.T) {
	// Malleable at 8/8 nodes with 20 s iterations; rigid 4-node job
	// arrives at t=5. At the next scheduling point (t=20) the policy
	// shrinks the malleable job to 4 and starts the rigid one.
	m := malleableJob(0, 2, 8, 8, 5, 1.6e11) // 20 s per iter at 8 nodes
	r := computeJob(1, 4, 4e10)              // 10 s on 4 nodes
	r.SubmitTime = 5
	rec, _ := runSim(t, testPlatform(8), []*job.Job{m, r}, &sched.Adaptive{}, Options{})
	rr := rec.Record(1)
	wantClose(t, "rigid start", rr.Start, 20)
	mr := rec.Record(0)
	if mr.Reconfigs < 1 {
		t.Errorf("malleable job never reconfigured")
	}
	// After the rigid job ends (t=30), the next scheduling point gives
	// the nodes back: peak returns to 8.
	if mr.FinalNodes != 8 {
		t.Errorf("malleable end allocation %d, want 8 (re-expanded)", mr.FinalNodes)
	}
}

func TestEvolvingGrantFlow(t *testing.T) {
	// Evolving job: phase 1 requests growth to 8, applied at the next
	// scheduling point; engine + adaptive policy grant it fully (machine
	// empty).
	j := &job.Job{
		ID: 0, Type: job.Evolving,
		NumNodesMin: 2, NumNodesMax: 8, NumNodes: 2,
		Args: map[string]float64{"w": 2e10},
		App: &job.Application{Phases: []job.Phase{{
			Iterations:      3,
			SchedulingPoint: true,
			Tasks: []job.Task{
				{Kind: job.TaskEvolvingRequest, Model: job.MustExprModel("8")},
				{Kind: job.TaskCompute, Model: job.MustExprModel("w / num_nodes")},
			},
		}}},
	}
	rec, e := runSim(t, testPlatform(8), []*job.Job{j}, &sched.Adaptive{}, Options{Trace: true})
	r := rec.Record(0)
	if r.PeakNodes != 8 {
		t.Errorf("evolving job peak %d, want 8", r.PeakNodes)
	}
	if r.Reconfigs < 1 {
		t.Error("grant never applied")
	}
	// iter0 on 2 nodes: 10 s; iter1, iter2 on 8: 2.5 s each = 15 s.
	wantClose(t, "runtime", r.Runtime(), 15)
	sawRequest, sawGrant := false, false
	for _, ev := range e.Trace() {
		switch ev.Kind {
		case EvEvolvingRequest:
			sawRequest = true
		case EvGranted:
			sawGrant = true
		}
	}
	if !sawRequest || !sawGrant {
		t.Errorf("trace missing request/grant: %v", e.Trace())
	}
}

func TestMoldableSizing(t *testing.T) {
	j := &job.Job{
		ID: 0, Type: job.Moldable,
		NumNodesMin: 1, NumNodesMax: 8, NumNodes: 2,
		Args: map[string]float64{"w": 8e10},
		App: &job.Application{Phases: []job.Phase{{
			Tasks: []job.Task{{Kind: job.TaskCompute, Model: job.MustExprModel("w / num_nodes")}},
		}}},
	}
	// SizeMax starts it on all 8 free nodes: 10 s.
	rec, _ := runSim(t, testPlatform(8), []*job.Job{j}, &sched.FCFS{Sizing: sched.SizeMax}, Options{})
	wantClose(t, "moldable max runtime", rec.Record(0).Runtime(), 10)
	if rec.Record(0).InitialNodes != 8 {
		t.Errorf("moldable started on %d nodes", rec.Record(0).InitialNodes)
	}
}

func TestPeriodicOnlyInvocation(t *testing.T) {
	// With event-driven invocation disabled, jobs start only on the
	// periodic tick (every 10 s).
	j := computeJob(0, 2, 2e10) // 10 s
	j.SubmitTime = 1
	rec, e := runSim(t, testPlatform(2), []*job.Job{j}, &sched.FCFS{}, Options{
		InvocationInterval: 10,
		DisableEventDriven: true,
	})
	wantClose(t, "start on tick", rec.Record(0).Start, 10)
	if e.Invocations() == 0 {
		t.Error("no invocations")
	}
}

// badAlgorithm exercises the engine's decision validation.
type badAlgorithm struct {
	fcfs FCFSRef
}

// FCFSRef avoids an import cycle in the test by aliasing sched.FCFS.
type FCFSRef = sched.FCFS

func (b *badAlgorithm) Name() string { return "bad" }

func (b *badAlgorithm) Schedule(inv *sched.Invocation) []sched.Decision {
	var out []sched.Decision
	// Nonsense first: unknown job, rigid resize, oversized start.
	out = append(out,
		sched.Decision{Kind: sched.DecisionStart, Job: 999, NumNodes: 1},
		sched.Decision{Kind: sched.DecisionResize, Job: 0, NumNodes: 4},
	)
	for _, v := range inv.Pending {
		out = append(out, sched.Start(v.ID, v.Job.NumNodes*100)) // too big
	}
	// Then legitimate decisions so the simulation completes.
	out = append(out, b.fcfs.Schedule(inv)...)
	return out
}

func TestEngineRejectsInvalidDecisions(t *testing.T) {
	j := computeJob(0, 2, 2e10)
	rec, e := runSim(t, testPlatform(4), []*job.Job{j}, &badAlgorithm{}, Options{})
	if rec.Summary().Completed != 1 {
		t.Fatal("job did not complete")
	}
	if len(e.Warnings()) == 0 {
		t.Fatal("invalid decisions produced no warnings")
	}
	joined := strings.Join(e.Warnings(), "\n")
	for _, want := range []string{"unknown job", "only malleable", "requested 2"} {
		if !strings.Contains(joined, want) {
			t.Errorf("warnings missing %q:\n%s", want, joined)
		}
	}
}

// idleAlgorithm never starts anything: the engine must detect deadlock.
type idleAlgorithm struct{}

func (idleAlgorithm) Name() string                                { return "idle" }
func (idleAlgorithm) Schedule(*sched.Invocation) []sched.Decision { return nil }

func TestEngineDetectsDeadlock(t *testing.T) {
	w := &job.Workload{Jobs: []*job.Job{computeJob(0, 2, 1e10)}}
	e, err := New(testPlatform(4), w, idleAlgorithm{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("deadlocked run returned no error")
	}
}

func TestEngineRejectsUnsupportedStorage(t *testing.T) {
	spec := testPlatform(4)
	spec.PFS = nil
	j := &job.Job{
		ID: 0, Type: job.Rigid, NumNodes: 1,
		App: &job.Application{Phases: []job.Phase{{
			Tasks: []job.Task{{Kind: job.TaskRead, Model: job.MustExprModel("1G"), Target: job.TargetPFS}},
		}}},
	}
	w := &job.Workload{Jobs: []*job.Job{j}}
	if _, err := New(spec, w, &sched.FCFS{}, Options{}); err == nil {
		t.Fatal("PFS-less platform accepted a PFS workload")
	}
}

func TestEngineDeterminism(t *testing.T) {
	gen := func() *job.Workload {
		w, err := job.Generate(job.Config{
			Seed: 11, Count: 40,
			Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 0.02},
			Nodes:        [2]int{1, 8},
			MachineNodes: 16,
			NodeSpeed:    speed,
			TypeShares:   map[job.Type]float64{job.Rigid: 0.5, job.Malleable: 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	run := func() metrics.Summary {
		rec, _ := runSim(t, testPlatform(16), gen().Jobs, &sched.Adaptive{}, Options{})
		return rec.Summary()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestEngineRunTwiceFails(t *testing.T) {
	w := &job.Workload{Jobs: []*job.Job{computeJob(0, 1, 1e9)}}
	e, err := New(testPlatform(2), w, &sched.FCFS{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("second Run succeeded")
	}
}

func TestGanttSegments(t *testing.T) {
	j := malleableJob(0, 2, 8, 2, 3, 4.8e10)
	rec, _ := runSim(t, testPlatform(8), []*job.Job{j}, &sched.Adaptive{}, Options{})
	g := rec.Gantt()
	if len(g) != 2 {
		t.Fatalf("gantt segments %d, want 2 (before/after expand)", len(g))
	}
	if g[0].Nodes != 2 || g[1].Nodes != 8 {
		t.Errorf("segment sizes %d,%d", g[0].Nodes, g[1].Nodes)
	}
	wantClose(t, "seg0 end", g[0].End, g[1].Start)
}

func TestBackboneContention(t *testing.T) {
	// Backbone at 1 GB/s shared by two 2-node jobs doing alltoall of 1 GB:
	// per-link demand 1 GB/s*1, backbone demand n^2/4 = 1 per payload byte.
	// Each job's backbone share: 0.5 GB/s -> duration 2 s (vs 1 s alone).
	spec := testPlatform(4)
	spec.Network.Topology = platform.TopologyBackbone
	spec.Network.BackboneBandwidth = 1e9
	mk := func(id int) *job.Job {
		return &job.Job{
			ID: job.ID(id), Type: job.Rigid, NumNodes: 2,
			App: &job.Application{Phases: []job.Phase{{
				Tasks: []job.Task{{Kind: job.TaskComm, Model: job.MustExprModel("1G"), Pattern: job.PatternAllToAll}},
			}}},
		}
	}
	rec, _ := runSim(t, spec, []*job.Job{mk(0), mk(1)}, &sched.FCFS{}, Options{})
	wantClose(t, "backbone-contended alltoall", rec.Record(0).Runtime(), 2)
}

func TestNetworkLatency(t *testing.T) {
	spec := testPlatform(2)
	spec.Network.Latency = 0.25
	j := &job.Job{
		ID: 0, Type: job.Rigid, NumNodes: 2,
		App: &job.Application{Phases: []job.Phase{{
			Tasks: []job.Task{{Kind: job.TaskComm, Model: job.MustExprModel("1G"), Pattern: job.PatternRing}},
		}}},
	}
	rec, _ := runSim(t, spec, []*job.Job{j}, &sched.FCFS{}, Options{})
	wantClose(t, "latency + transfer", rec.Record(0).Runtime(), 1.25)
}

func TestTaskTracing(t *testing.T) {
	j := &job.Job{
		ID: 0, Type: job.Rigid, NumNodes: 2,
		App: &job.Application{Phases: []job.Phase{{
			Iterations: 3,
			Tasks: []job.Task{
				{Kind: job.TaskCompute, Model: job.MustExprModel("2e9/num_nodes")},
				{Kind: job.TaskComm, Model: job.MustExprModel("1G"), Pattern: job.PatternRing},
			},
		}}},
	}
	_, e := runSim(t, testPlatform(2), []*job.Job{j}, &sched.FCFS{},
		Options{Trace: true, TraceTasks: true})
	starts, ends := 0, 0
	for _, ev := range e.Trace() {
		switch ev.Kind {
		case EvTaskStart:
			starts++
		case EvTaskEnd:
			ends++
			if !strings.Contains(ev.Detail, "dur=") {
				t.Errorf("task-end without duration: %s", ev.Detail)
			}
		}
	}
	// 3 iterations x 2 tasks.
	if starts != 6 || ends != 6 {
		t.Errorf("task events %d/%d, want 6/6", starts, ends)
	}
	// Without TraceTasks the log has none.
	_, e2 := runSim(t, testPlatform(2), []*job.Job{&job.Job{
		ID: 0, Type: job.Rigid, NumNodes: 1,
		App: j.App,
	}}, &sched.FCFS{}, Options{Trace: true})
	for _, ev := range e2.Trace() {
		if ev.Kind == EvTaskStart || ev.Kind == EvTaskEnd {
			t.Fatal("task events leaked without TraceTasks")
		}
	}
}

func TestSharedBurstBufferContention(t *testing.T) {
	// Network-attached burst buffer (4 GB/s) shared by two 1-node jobs
	// writing 4 GB each over 4 GB/s links: the BB is the contended
	// resource, 2 GB/s per job -> 2 s. A third configuration with slow
	// links (1 GB/s) is link-bound instead: 4 s.
	mk := func(id int) *job.Job {
		return &job.Job{
			ID: job.ID(id), Type: job.Rigid, NumNodes: 1,
			App: &job.Application{Phases: []job.Phase{{
				Tasks: []job.Task{{Kind: job.TaskWrite, Model: job.MustExprModel("4G"), Target: job.TargetBB}},
			}}},
		}
	}
	spec := platform.Homogeneous("c", 2, speed, 4e9, 4e9, 4e9)
	spec.BurstBuffer = &platform.BurstBufferSpec{Kind: platform.BBShared, ReadBandwidth: 4e9, WriteBandwidth: 4e9}
	rec, _ := runSim(t, spec, []*job.Job{mk(0), mk(1)}, &sched.FCFS{}, Options{})
	wantClose(t, "bb-contended write", rec.Record(0).Runtime(), 2)

	slow := platform.Homogeneous("c", 2, speed, 1e9, 4e9, 4e9)
	slow.BurstBuffer = &platform.BurstBufferSpec{Kind: platform.BBShared, ReadBandwidth: 4e9, WriteBandwidth: 4e9}
	rec2, _ := runSim(t, slow, []*job.Job{mk(0), mk(1)}, &sched.FCFS{}, Options{})
	wantClose(t, "link-bound shared bb", rec2.Record(0).Runtime(), 4)
}
