package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/failure"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// iterJob builds a rigid job running iters iterations of flopsIter flops
// each, optionally with a checkpoint-interval model.
func iterJob(id, nodes, iters int, flopsIter float64, ckpt string) *job.Job {
	j := &job.Job{
		ID: job.ID(id), Type: job.Rigid, NumNodes: nodes,
		Args: map[string]float64{"flops_iter": flopsIter},
		App: &job.Application{Phases: []job.Phase{{
			Iterations: iters,
			Tasks:      []job.Task{{Kind: job.TaskCompute, Model: job.MustExprModel("flops_iter / num_nodes")}},
		}}},
	}
	if ckpt != "" {
		j.CheckpointInterval = job.MustExprModel(ckpt)
	}
	return j
}

func traceSpec(recovery failure.RecoveryPolicy, outages ...failure.Outage) *failure.Spec {
	return &failure.Spec{Model: failure.ModelTrace, Outages: outages, Recovery: recovery}
}

// A rigid job hit by a node failure is requeued and restarts from its last
// checkpoint: only the interrupted iteration is badput.
func TestNodeFailureRequeueWithCheckpointCredit(t *testing.T) {
	// 10 iterations x 10 s on 2 of 4 nodes, checkpointing every iteration.
	// Node 0 fails at t=35 (mid iteration 3, checkpointed at t=30).
	j := iterJob(0, 2, 10, 2e10, "0")
	opts := Options{Failures: traceSpec("", failure.Outage{Node: 0, Down: 35, Up: 45})}
	rec, _ := runSim(t, testPlatform(4), []*job.Job{j}, &sched.FCFS{}, opts)
	r := rec.Record(0)
	if r.Status != metrics.StatusCompleted {
		t.Fatalf("status %q", r.Status)
	}
	if r.Requeues != 1 {
		t.Errorf("requeues = %d", r.Requeues)
	}
	// Restarted at t=35 on the surviving free nodes with 7 iterations left.
	wantClose(t, "end", r.End, 105)
	wantClose(t, "badput", r.BadputNodeSeconds, 10) // 5 s x 2 nodes
	s := rec.Summary()
	if s.NodeFailures != 1 || s.Requeues != 1 {
		t.Errorf("summary failures=%d requeues=%d", s.NodeFailures, s.Requeues)
	}
	wantClose(t, "down node-seconds", s.DownNodeSeconds, 10) // down 35..45
	wantClose(t, "goodput", s.GoodputNodeSeconds, s.NodeSeconds-10)
}

// Without a checkpoint model the same failure loses everything: the job
// restarts from the beginning.
func TestNodeFailureRequeueWithoutCheckpoint(t *testing.T) {
	j := iterJob(0, 2, 10, 2e10, "")
	opts := Options{Failures: traceSpec("", failure.Outage{Node: 0, Down: 35, Up: 45})}
	rec, _ := runSim(t, testPlatform(4), []*job.Job{j}, &sched.FCFS{}, opts)
	r := rec.Record(0)
	wantClose(t, "end", r.End, 135)                 // restart at 35 + full 100 s
	wantClose(t, "badput", r.BadputNodeSeconds, 70) // 35 s x 2 nodes
}

// A malleable job shrinks through the failure: the failed node leaves the
// allocation, the interrupted iteration is redone on the survivors, and
// the job never requeues.
func TestMalleableShrinksThroughFailure(t *testing.T) {
	j := &job.Job{
		ID: 0, Type: job.Malleable, NumNodes: 4, NumNodesMin: 2, NumNodesMax: 4,
		Args: map[string]float64{"flops_iter": 4e10},
		App: &job.Application{Phases: []job.Phase{{
			Iterations:      10,
			SchedulingPoint: true,
			Tasks:           []job.Task{{Kind: job.TaskCompute, Model: job.MustExprModel("flops_iter / num_nodes")}},
		}}},
	}
	opts := Options{Failures: traceSpec(failure.RecoverShrink, failure.Outage{Node: 2, Down: 35, Up: 10000})}
	rec, _ := runSim(t, testPlatform(4), []*job.Job{j}, &sched.FCFS{}, opts)
	r := rec.Record(0)
	if r.Status != metrics.StatusCompleted || r.Requeues != 0 {
		t.Fatalf("status %q requeues %d", r.Status, r.Requeues)
	}
	if r.Reconfigs != 1 || r.FinalNodes != 3 {
		t.Errorf("reconfigs=%d final=%d", r.Reconfigs, r.FinalNodes)
	}
	// Iterations 0-2 at 10 s on 4 nodes, then iterations 3-9 redone/run at
	// 40/3 s on 3 nodes starting from the failure at t=35.
	wantClose(t, "end", r.End, 35+7*40.0/3)
	wantClose(t, "badput", r.BadputNodeSeconds, 20) // 5 s x 4 nodes
	if s := rec.Summary(); s.Requeues != 0 || s.NodeFailures != 1 {
		t.Errorf("summary requeues=%d failures=%d", s.Requeues, s.NodeFailures)
	}
}

// Under the kill policy an affected job terminates as failed-node.
func TestKillPolicyTerminatesJob(t *testing.T) {
	j := iterJob(0, 2, 10, 2e10, "0")
	opts := Options{Failures: traceSpec(failure.RecoverKill, failure.Outage{Node: 1, Down: 15, Up: 20})}
	rec, _ := runSim(t, testPlatform(4), []*job.Job{j}, &sched.FCFS{}, opts)
	r := rec.Record(0)
	if r.Status != metrics.StatusFailedNode || !r.Killed {
		t.Fatalf("status %q killed %t", r.Status, r.Killed)
	}
	wantClose(t, "end", r.End, 15)
	s := rec.Summary()
	if s.FailedNode != 1 || s.Completed != 0 {
		t.Errorf("summary failed=%d completed=%d", s.FailedNode, s.Completed)
	}
}

// MaxRequeues bounds resubmissions: once exhausted the next failure is
// terminal.
func TestMaxRequeuesExhaustion(t *testing.T) {
	j := iterJob(0, 1, 1, 1e11, "") // 100 s, restarted from scratch
	spec := traceSpec(failure.RecoverRequeue,
		failure.Outage{Node: 0, Down: 5, Up: 6},
		failure.Outage{Node: 0, Down: 12, Up: 13})
	spec.MaxRequeues = 1
	rec, _ := runSim(t, testPlatform(1), []*job.Job{j}, &sched.FCFS{}, Options{Failures: spec})
	r := rec.Record(0)
	if r.Status != metrics.StatusFailedNode {
		t.Fatalf("status %q", r.Status)
	}
	if r.Requeues != 1 {
		t.Errorf("requeues = %d", r.Requeues)
	}
	wantClose(t, "end", r.End, 12)
	wantClose(t, "badput", r.BadputNodeSeconds, 11) // 5 s + 6 s on 1 node
	if s := rec.Summary(); s.NodeFailures != 2 {
		t.Errorf("node failures = %d", s.NodeFailures)
	}
}

// pinDownAlgo tries to place every pending job on node 0 first, then falls
// back to an unpinned start; it also records the DownNodes it was shown.
type pinDownAlgo struct{ sawDown []int }

func (a *pinDownAlgo) Name() string { return "pin-down" }

func (a *pinDownAlgo) Schedule(inv *sched.Invocation) []sched.Decision {
	if len(inv.DownNodes) > 0 {
		a.sawDown = append([]int(nil), inv.DownNodes...)
	}
	var out []sched.Decision
	for _, v := range inv.Pending {
		out = append(out, sched.Decision{Kind: sched.DecisionStart, Job: v.ID, NumNodes: 1, Nodes: []int{0}})
		out = append(out, sched.Start(v.ID, 1))
	}
	return out
}

// The validator rejects placements on a down node, and algorithms see the
// down set in the invocation snapshot.
func TestValidatorRejectsDownNodePlacement(t *testing.T) {
	j := computeJob(0, 1, 1e10)
	j.SubmitTime = 2
	algo := &pinDownAlgo{}
	opts := Options{Failures: traceSpec("", failure.Outage{Node: 0, Down: 1, Up: 1e6})}
	rec, e := runSim(t, testPlatform(2), []*job.Job{j}, algo, opts)
	if !reflect.DeepEqual(algo.sawDown, []int{0}) {
		t.Errorf("algorithm saw DownNodes %v", algo.sawDown)
	}
	found := false
	for _, w := range e.Warnings() {
		if strings.Contains(w, "is down") {
			found = true
		}
	}
	if !found {
		t.Errorf("no rejection warning, got %q", e.Warnings())
	}
	r := rec.Record(0)
	if r.Status != metrics.StatusCompleted {
		t.Fatalf("status %q", r.Status)
	}
	wantClose(t, "end", r.End, 12) // started at t=2 on node 1
}

// A disabled failure spec is indistinguishable from none at all: traces,
// records, and summaries are identical (pay-for-what-you-use).
func TestDisabledFailuresBitIdentical(t *testing.T) {
	mk := func(opts Options) ([]string, metrics.Summary, []*metrics.JobRecord) {
		jobs := []*job.Job{
			iterJob(0, 2, 5, 2e10, "60"),
			computeJob(1, 3, 5e10),
			iterJob(2, 4, 3, 4e10, ""),
		}
		jobs[1].SubmitTime = 30
		jobs[2].SubmitTime = 60
		opts.Trace = true
		rec, e := runSim(t, testPlatform(4), jobs, &sched.FCFS{}, opts)
		var lines []string
		for _, ev := range e.Trace() {
			lines = append(lines, ev.String())
		}
		return lines, rec.Summary(), rec.Records()
	}
	traceA, sumA, recsA := mk(Options{})
	traceB, sumB, recsB := mk(Options{Failures: &failure.Spec{}})
	if !reflect.DeepEqual(traceA, traceB) {
		t.Fatalf("traces differ: %d vs %d lines", len(traceA), len(traceB))
	}
	if sumA != sumB {
		t.Errorf("summaries differ:\n%+v\n%+v", sumA, sumB)
	}
	if !reflect.DeepEqual(recsA, recsB) {
		t.Errorf("records differ")
	}
}
