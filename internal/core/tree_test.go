package core

import (
	"testing"

	"repro/internal/job"
	"repro/internal/platform"
	"repro/internal/sched"
)

// treePlatform: 4 nodes in groups of 2, 1 GB/s links, configurable uplink.
func treePlatform(nodes, groupSize int, uplinkBW, coreBW float64) *platform.Spec {
	s := platform.Homogeneous("tree", nodes, speed, linkBW, pfsBW, pfsBW)
	s.Network.Topology = platform.TopologyTree
	s.Network.GroupSize = groupSize
	s.Network.UplinkBandwidth = platform.Quantity(uplinkBW)
	s.Network.BackboneBandwidth = platform.Quantity(coreBW)
	return s
}

func commJob(id, nodes int, pattern job.CommPattern, bytes string) *job.Job {
	return &job.Job{
		ID: job.ID(id), Type: job.Rigid, NumNodes: nodes,
		App: &job.Application{Phases: []job.Phase{{
			Tasks: []job.Task{{Kind: job.TaskComm, Model: job.MustExprModel(bytes), Pattern: pattern}},
		}}},
	}
}

func TestTreeUplinkBoundsAllToAll(t *testing.T) {
	// 4 nodes over 2 groups, 1 GB/s uplinks. Alltoall of 1 GB spanning
	// both groups: links carry 3 GB (3 s), each uplink carries
	// k*(n-k) = 4 GB (4 s) -> uplink-bound at 4 s.
	spec := treePlatform(4, 2, 1e9, 0)
	rec, _ := runSim(t, spec, []*job.Job{commJob(0, 4, job.PatternAllToAll, "1G")}, &sched.FCFS{}, Options{})
	wantClose(t, "tree alltoall", rec.Record(0).Runtime(), 4)
}

func TestTreeLocalityMatters(t *testing.T) {
	// A 2-node alltoall inside one group never touches the uplink (1 s);
	// the same job split across groups is bound by the 0.5 GB/s uplinks
	// (k*(n-k) = 1 -> 1 GB per uplink -> 2 s).
	spec := treePlatform(4, 2, 0.5e9, 0)
	// Local: the allocator packs the first job into nodes {0,1}.
	recLocal, _ := runSim(t, spec, []*job.Job{commJob(0, 2, job.PatternAllToAll, "1G")}, &sched.FCFS{}, Options{})
	wantClose(t, "intra-group alltoall", recLocal.Record(0).Runtime(), 1)

	// Spanning: a 1-node filler first claims node 0, pushing the comm job
	// onto nodes {1,2} — one in each group.
	filler := &job.Job{
		ID: 0, Type: job.Rigid, NumNodes: 1,
		App: &job.Application{Phases: []job.Phase{{
			Tasks: []job.Task{{Kind: job.TaskDelay, Model: job.MustExprModel("100")}},
		}}},
	}
	span := commJob(1, 2, job.PatternAllToAll, "1G")
	recSpan, _ := runSim(t, spec, []*job.Job{filler, span}, &sched.FCFS{}, Options{})
	wantClose(t, "cross-group alltoall", recSpan.Record(1).Runtime(), 2)
}

func TestTreeCoreBoundsTraffic(t *testing.T) {
	// Capacity-limited core: alltoall on 4 nodes crosses the core with
	// weight k*(n-k) summed / 2 = 4. Core at 0.5 GB/s -> 4 GB / 0.5 = 8 s,
	// dominating links (3 s) and uplinks (4 s at 1 GB/s).
	spec := treePlatform(4, 2, 1e9, 0.5e9)
	rec, _ := runSim(t, spec, []*job.Job{commJob(0, 4, job.PatternAllToAll, "1G")}, &sched.FCFS{}, Options{})
	wantClose(t, "core-bound alltoall", rec.Record(0).Runtime(), 8)
}

func TestTreeUplinkContentionOnPFS(t *testing.T) {
	// Two 2-node jobs in separate groups each read 4 GB. The PFS
	// (2 GB/s) is the shared bottleneck: 1 GB/s each -> 4 s. Each group's
	// uplink carries only its own job (k/n = 1), no extra slowdown.
	spec := treePlatform(4, 2, 2e9, 0)
	mk := func(id int) *job.Job {
		return &job.Job{
			ID: job.ID(id), Type: job.Rigid, NumNodes: 2,
			App: &job.Application{Phases: []job.Phase{{
				Tasks: []job.Task{{Kind: job.TaskRead, Model: job.MustExprModel("4G"), Target: job.TargetPFS}},
			}}},
		}
	}
	rec, _ := runSim(t, spec, []*job.Job{mk(0), mk(1)}, &sched.FCFS{}, Options{})
	wantClose(t, "pfs-shared read 0", rec.Record(0).Runtime(), 4)
	wantClose(t, "pfs-shared read 1", rec.Record(1).Runtime(), 4)

	// Slow uplinks (0.5 GB/s) become the bottleneck instead: 8 s each.
	spec2 := treePlatform(4, 2, 0.5e9, 0)
	rec2, _ := runSim(t, spec2, []*job.Job{mk(0), mk(1)}, &sched.FCFS{}, Options{})
	wantClose(t, "uplink-bound read", rec2.Record(0).Runtime(), 8)
}

func TestTreeIntraGroupJobUnaffectedByUplink(t *testing.T) {
	// Allreduce contained in one group ignores even a tiny uplink.
	spec := treePlatform(4, 2, 0.01e9, 0)
	rec, _ := runSim(t, spec, []*job.Job{commJob(0, 2, job.PatternAllReduce, "1G")}, &sched.FCFS{}, Options{})
	// 2*(2-1)/2 = 1 GB per link at 1 GB/s.
	wantClose(t, "intra-group allreduce", rec.Record(0).Runtime(), 1)
}

func TestUplinkWeights(t *testing.T) {
	counts := map[int]int{0: 2, 1: 2}
	per, core := job.UplinkWeights(job.PatternAllToAll, 4, counts)
	if per[0] != 4 || per[1] != 4 {
		t.Errorf("alltoall uplink weights %v", per)
	}
	if core != 4 {
		t.Errorf("alltoall core weight %v", core)
	}
	per, core = job.UplinkWeights(job.PatternGather, 4, map[int]int{0: 1, 1: 3})
	// Root sits in group 0: its uplink receives n - k_root = 3; group 1
	// sends its 3 members' payloads.
	if per[0] != 3 || per[1] != 3 {
		t.Errorf("gather uplink weights %v", per)
	}
	if core != 3 {
		t.Errorf("gather core weight %v", core)
	}
	// Single group: no uplink traffic.
	if per, core := job.UplinkWeights(job.PatternAllToAll, 4, map[int]int{2: 4}); per != nil || core != 0 {
		t.Errorf("single-group weights %v %v", per, core)
	}
	// Broadcast: root group fans out once per other group.
	per, _ = job.UplinkWeights(job.PatternBroadcast, 6, map[int]int{0: 2, 1: 2, 2: 2})
	if per[0] != 2 || per[1] != 1 || per[2] != 1 {
		t.Errorf("bcast uplink weights %v", per)
	}
}

func TestPinnedPlacement(t *testing.T) {
	// An algorithm that pins a job to specific nodes: the engine must
	// honor the exact set.
	pinner := algoFunc(func(inv *sched.Invocation) []sched.Decision {
		var out []sched.Decision
		for _, v := range inv.Pending {
			out = append(out, sched.Decision{
				Kind: sched.DecisionStart, Job: v.ID,
				NumNodes: 2, Nodes: []int{1, 3},
			})
		}
		return out
	})
	j := commJob(0, 2, job.PatternAllToAll, "1G")
	spec := treePlatform(4, 2, 0.5e9, 0)
	rec, e := runSim(t, spec, []*job.Job{j}, pinner, Options{})
	if len(e.Warnings()) != 0 {
		t.Fatalf("warnings: %v", e.Warnings())
	}
	// Nodes 1 and 3 span both groups: the 0.5 GB/s uplinks bound the
	// alltoall at 2 s (vs 1 s packed).
	wantClose(t, "pinned cross-group alltoall", rec.Record(0).Runtime(), 2)
}

func TestPinnedPlacementValidation(t *testing.T) {
	cases := []struct {
		name  string
		nodes []int
	}{
		{"out of range", []int{0, 99}},
		{"duplicate", []int{1, 1}},
		{"wrong count", []int{1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := algoFunc(func(inv *sched.Invocation) []sched.Decision {
				var out []sched.Decision
				for _, v := range inv.Pending {
					// First a bad pinned start, then a good fallback so the
					// simulation completes.
					out = append(out, sched.Decision{
						Kind: sched.DecisionStart, Job: v.ID,
						NumNodes: 2, Nodes: tc.nodes,
					})
					out = append(out, sched.Start(v.ID, 2))
				}
				return out
			})
			j := computeJob(0, 2, 1e9)
			_, e := runSim(t, testPlatform(4), []*job.Job{j}, bad, Options{})
			if len(e.Warnings()) == 0 {
				t.Error("invalid pinned placement accepted")
			}
		})
	}
}

func TestPackedAlgorithmReducesSpanning(t *testing.T) {
	// Fragmented free list: a 1-node filler sits in group 0. The default
	// (lowest-first) placement puts a 2-node alltoall job on nodes {1,2}
	// across groups (2 s on 0.5 GB/s uplinks); the packed wrapper puts it
	// on {2,3} inside group 1 (1 s).
	spec := treePlatform(4, 2, 0.5e9, 0)
	mkJobs := func() []*job.Job {
		filler := &job.Job{
			ID: 0, Type: job.Rigid, NumNodes: 1,
			App: &job.Application{Phases: []job.Phase{{
				Tasks: []job.Task{{Kind: job.TaskDelay, Model: job.MustExprModel("100")}},
			}}},
		}
		return []*job.Job{filler, commJob(1, 2, job.PatternAllToAll, "1G")}
	}
	recDefault, _ := runSim(t, spec, mkJobs(), &sched.EASY{}, Options{})
	wantClose(t, "default placement", recDefault.Record(1).Runtime(), 2)
	recPacked, _ := runSim(t, spec, mkJobs(), &sched.Packed{Base: &sched.EASY{}}, Options{})
	wantClose(t, "packed placement", recPacked.Record(1).Runtime(), 1)
}
