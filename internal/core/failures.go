package core

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/failure"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sched"
)

// downOwner is the allocator owner key claiming failed nodes, so that the
// regular free-node accounting (Free, FreeNodes, Allocate) naturally
// excludes them without any special cases.
const downOwner = "__down__"

// scheduleOutage arms node's next failure event strictly after time t.
func (e *Engine) scheduleOutage(node int, t float64) {
	down, up, ok := e.injector.NextOutage(node, t)
	if !ok {
		return
	}
	e.kernel.ScheduleTransient(des.Time(down), des.PriorityEngine, func() {
		e.nodeFail(node, up)
	})
}

// nodeFail takes a node down until time up: the job running there (if any)
// is shrunk, requeued, or killed per the recovery policy, the node is
// claimed out of the free pool, and the scheduler is poked.
func (e *Engine) nodeFail(node int, up float64) {
	if e.outstanding == 0 {
		return // workload done: stop injecting events
	}
	now := e.Now()
	id := platform.NodeID(node)
	if jr := e.runOnNode(id); jr != nil {
		e.handleJobNodeFailure(jr, id)
	}
	if err := e.alloc.AllocateNodes(downOwner, []platform.NodeID{id}); err != nil {
		panic(fmt.Sprintf("core: marking node %d down: %v", node, err))
	}
	e.nodeDown[node] = true
	e.downCount++
	e.rec.NodeDown(node, now)
	e.traceNodeEvent(EvNodeDown, node, "")
	e.requestInvocation(sched.ReasonNodeDown)
	e.kernel.ScheduleTransient(des.Time(up), des.PriorityEngine, func() {
		e.nodeRepair(node)
	})
}

// nodeRepair returns a failed node to the free pool (as good as new) and
// arms its next outage while work remains.
func (e *Engine) nodeRepair(node int) {
	now := e.Now()
	id := platform.NodeID(node)
	if err := e.alloc.Release(downOwner, []platform.NodeID{id}); err != nil {
		panic(fmt.Sprintf("core: repairing node %d: %v", node, err))
	}
	e.nodeDown[node] = false
	e.downCount--
	e.rec.NodeUp(node, now)
	e.traceNodeEvent(EvNodeUp, node, "")
	e.requestInvocation(sched.ReasonNodeUp)
	if e.outstanding > 0 {
		e.scheduleOutage(node, now)
	}
}

// runOnNode finds the running job allocated the node, or nil.
func (e *Engine) runOnNode(id platform.NodeID) *jobRun {
	for _, jr := range e.running.items {
		if jr == nil {
			continue
		}
		for _, n := range jr.nodes {
			if n == id {
				return jr
			}
		}
	}
	return nil
}

// handleJobNodeFailure applies the recovery policy to a job losing one of
// its nodes: adaptive jobs shrink through the failure when the survivors
// still satisfy their minimum (shrink policy), everything else is killed
// and — unless the policy forbids it — requeued from its last checkpoint.
func (e *Engine) handleJobNodeFailure(jr *jobRun, id platform.NodeID) {
	policy := e.injector.Spec().EffectiveRecovery()
	if policy == failure.RecoverShrink && jr.job.Type.Adaptive() && len(jr.nodes)-1 >= jr.job.MinNodes() {
		e.shrinkThroughFailure(jr, id)
		return
	}
	e.killByNodeFailure(jr, policy != failure.RecoverKill)
}

// shrinkThroughFailure removes the failed node from the job's allocation
// and redoes the interrupted iteration on the survivors (graceful
// degradation). The interrupted iteration's work is badput; the usual
// reconfiguration cost is charged before execution continues.
func (e *Engine) shrinkThroughFailure(jr *jobRun, id platform.NodeID) {
	now := e.Now()
	oldSize := len(jr.nodes)
	if jr.state == stateRunning {
		if lost := (now - jr.iterStart) * float64(oldSize); lost > 0 {
			e.rec.JobLostWork(jr.job.ID, lost)
		}
	}
	e.cancelTask(jr)
	for i, n := range jr.nodes {
		if n == id {
			jr.nodes = append(jr.nodes[:i], jr.nodes[i+1:]...)
			break
		}
	}
	if err := e.alloc.Release(jr.owner, []platform.NodeID{id}); err != nil {
		panic(fmt.Sprintf("core: releasing failed node %d of %s: %v", int(id), jr.job.Label(), err))
	}
	e.telNodesReleased(jr, []platform.NodeID{id})
	e.rec.AddGantt(jr.job.ID, jr.job.Label(), oldSize, jr.segStart, now)
	jr.segStart = now
	e.rec.JobReconfigured(jr.job.ID, now, len(jr.nodes))
	e.traceEvent(EvFailShrink, jr.job.ID, fmt.Sprintf("%d->%d node=%d", oldSize, len(jr.nodes), int(id)))
	if jr.state == stateAtSchedPoint {
		// The pending resume event charges the reconfiguration cost; no
		// iteration was in flight, so nothing is redone.
		if jr.pendingResize == 0 {
			jr.pendingResize = oldSize
		}
		return
	}
	jr.taskIdx = 0
	jr.state = stateRunning
	e.chargeReconfiguration(jr, oldSize)
}

// killByNodeFailure tears a job off its nodes. Work since the last
// checkpoint is badput. When requeue is allowed and the per-job bound not
// yet exhausted, the job re-enters the pending queue and will restart from
// its checkpointed position; otherwise it terminates as failed-node.
func (e *Engine) killByNodeFailure(jr *jobRun, requeue bool) {
	now := e.Now()
	lost := (now - jr.lastCkpt) * float64(len(jr.nodes))
	if lost < 0 {
		lost = 0
	}
	e.cancelWork(jr)
	e.rec.AddGantt(jr.job.ID, jr.job.Label(), len(jr.nodes), jr.segStart, now)
	if n := e.alloc.Owned(jr.owner); n != len(jr.nodes) {
		panic(fmt.Sprintf("core: job %s released %d nodes, held %d", jr.job.Label(), n, len(jr.nodes)))
	}
	if err := e.alloc.Release(jr.owner, jr.nodes); err != nil {
		panic(fmt.Sprintf("core: releasing %s: %v", jr.job.Label(), err))
	}
	e.telNodesReleased(jr, jr.nodes)
	jr.nodes = nil
	e.running.remove(jr)
	e.rec.JobFailed(jr.job.ID, now, lost)
	if requeue && jr.requeues < e.injector.Spec().EffectiveMaxRequeues() {
		jr.requeues++
		jr.state = statePending
		jr.evolvingRequest, jr.grantedTarget, jr.pendingResize = 0, 0, 0
		e.rec.JobRequeued(jr.job.ID, now)
		e.traceEvent(EvRequeued, jr.job.ID, fmt.Sprintf("requeue=%d ckpt=%d/%d", jr.requeues, jr.ckptPhase, jr.ckptIter))
		e.queue.add(jr)
		return
	}
	jr.state = stateDone
	e.rec.JobFinished(jr.job.ID, now, metrics.StatusFailedNode)
	e.traceEvent(EvFinish, jr.job.ID, "status=failed-node")
	e.outstanding--
	e.markFinished(jr.job.ID)
}

// maybeCheckpoint takes a program-counter checkpoint at an iteration
// boundary when the job's checkpoint_interval model says one is due. The
// position checkpointed is the one about to execute: a later restart
// resumes there. Without a failure model checkpoints are pure overhead, so
// none are taken (pay-for-what-you-use).
func (e *Engine) maybeCheckpoint(jr *jobRun) {
	if e.injector == nil || jr.job.CheckpointInterval == nil {
		return
	}
	now := e.Now()
	interval, err := jr.job.CheckpointInterval.Eval(e.env(jr), len(jr.nodes))
	if err != nil {
		e.warnf("job %s: checkpoint interval error: %v", jr.job.Label(), err)
		return
	}
	if interval > 0 && now-jr.lastCkpt < interval {
		return
	}
	jr.ckptPhase, jr.ckptIter = jr.phaseIdx, jr.iter
	jr.lastCkpt = now
	e.traceEvent(EvCheckpoint, jr.job.ID, fmt.Sprintf("phase=%d iter=%d", jr.phaseIdx, jr.iter))
}
