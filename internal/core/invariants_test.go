package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sched"
)

// Engine-level property tests: random workloads are pushed through every
// algorithm and the run is checked against system invariants that must
// hold regardless of scheduling policy:
//
//  1. every job finishes exactly once and all nodes are released;
//  2. the busy-node timeline never exceeds the machine or goes negative;
//  3. allocation sizes always stay within each job's [min,max] bounds;
//  4. reconfigurations happen only for adaptive job types;
//  5. identical runs are bit-identical (determinism);
//  6. walltime kills happen exactly at the limit, never after.

func randomWorkload(t *testing.T, seed uint64, count int) *job.Workload {
	t.Helper()
	w, err := job.Generate(job.Config{
		Seed:  seed,
		Count: count,
		Arrival: job.Arrival{
			Kind: job.ArrivalPoisson,
			Rate: 0.02,
		},
		Nodes:        [2]int{1, 8},
		MachineNodes: 16,
		NodeSpeed:    100e9,
		TypeShares: map[job.Type]float64{
			job.Rigid: 1, job.Moldable: 1, job.Malleable: 1, job.Evolving: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func allAlgorithms() []sched.Algorithm {
	return []sched.Algorithm{
		&sched.FCFS{},
		&sched.SJF{},
		&sched.EASY{},
		&sched.Conservative{},
		&sched.Adaptive{},
	}
}

func TestInvariantsAcrossAlgorithms(t *testing.T) {
	check := func(seed uint64) bool {
		w := randomWorkload(t, seed, 25)
		for _, algo := range allAlgorithms() {
			w := randomWorkload(t, seed, 25) // fresh copy per run
			e, err := New(testPlatform(16), w, algo, Options{})
			if err != nil {
				t.Logf("seed %d %s: New: %v", seed, algo.Name(), err)
				return false
			}
			rec, err := e.Run()
			if err != nil {
				t.Logf("seed %d %s: Run: %v", seed, algo.Name(), err)
				return false
			}
			s := rec.Summary()
			// (1) every job finished.
			if s.Completed+s.Killed != len(w.Jobs) {
				t.Logf("seed %d %s: finished %d/%d", seed, algo.Name(), s.Completed+s.Killed, len(w.Jobs))
				return false
			}
			// All nodes free at the end.
			busy := rec.BusyTimeline()
			if busy.Current() != 0 {
				t.Logf("seed %d %s: %v nodes busy at end", seed, algo.Name(), busy.Current())
				return false
			}
			// (2) busy-node bounds over the whole run.
			for _, p := range busy.Points() {
				if p.V < 0 || p.V > 16 {
					t.Logf("seed %d %s: busy=%v at t=%v", seed, algo.Name(), p.V, p.T)
					return false
				}
			}
			// (3)+(4) per-job allocation bounds and reconfiguration rules.
			for _, r := range rec.Records() {
				j := w.Jobs[r.ID]
				if r.Start < 0 {
					continue
				}
				if r.InitialNodes < j.MinNodes() || r.InitialNodes > j.MaxNodes() {
					t.Logf("seed %d %s: job %d started at %d outside [%d,%d]",
						seed, algo.Name(), r.ID, r.InitialNodes, j.MinNodes(), j.MaxNodes())
					return false
				}
				if r.PeakNodes > j.MaxNodes() || r.FinalNodes < j.MinNodes() && !r.Killed {
					t.Logf("seed %d %s: job %d allocation out of bounds (peak %d, final %d)",
						seed, algo.Name(), r.ID, r.PeakNodes, r.FinalNodes)
					return false
				}
				if r.Reconfigs > 0 && !j.Type.Adaptive() {
					t.Logf("seed %d %s: non-adaptive job %d reconfigured", seed, algo.Name(), r.ID)
					return false
				}
				// (6) kills exactly at the walltime limit.
				if r.Killed && j.WallTimeLimit > 0 {
					if diff := r.Runtime() - j.WallTimeLimit; diff > 1e-9 || diff < -1e-6 {
						t.Logf("seed %d %s: job %d killed at runtime %v, limit %v",
							seed, algo.Name(), r.ID, r.Runtime(), j.WallTimeLimit)
						return false
					}
				}
			}
			_ = w
		}
		_ = w
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestDeterminismAcrossAlgorithms(t *testing.T) {
	for _, algo := range allAlgorithms() {
		run := func() string {
			w := randomWorkload(t, 99, 30)
			var a sched.Algorithm
			switch algo.(type) {
			case *sched.FCFS:
				a = &sched.FCFS{}
			case *sched.SJF:
				a = &sched.SJF{}
			case *sched.EASY:
				a = &sched.EASY{}
			case *sched.Conservative:
				a = &sched.Conservative{}
			case *sched.Adaptive:
				a = &sched.Adaptive{}
			}
			e, err := New(testPlatform(16), w, a, Options{})
			if err != nil {
				t.Fatal(err)
			}
			rec, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			// Fingerprint: every job's start/end/nodes.
			out := ""
			for _, r := range rec.Records() {
				out += fingerprint(r)
			}
			return out
		}
		if a, b := run(), run(); a != b {
			t.Errorf("%s: two identical runs diverged", algo.Name())
		}
	}
}

func fingerprint(r any) string {
	return fmt.Sprintf("%+v;", r)
}

func TestSchedulingPointCountMatchesTrace(t *testing.T) {
	// The engine must visit exactly the scheduling points the application
	// declares (iterations-1 interior points + 1 at each phase boundary
	// following a scheduling-point phase, except at job end).
	j := malleableJob(0, 2, 8, 2, 5, 1e10)
	_, e := runSim(t, testPlatform(8), []*job.Job{j}, &sched.FCFS{}, Options{Trace: true})
	points := 0
	for _, ev := range e.Trace() {
		if ev.Kind == EvSchedulingPoint {
			points++
		}
	}
	// 5 iterations, single phase: scheduling points after iterations
	// 1..4 (the phase ends after the 5th, job completes).
	if points != 4 {
		t.Errorf("scheduling points %d, want 4", points)
	}
}

func TestNoEventDrivenNoIntervalDeadlocks(t *testing.T) {
	// Disabling event-driven invocation without a periodic interval can
	// never start anything: the engine must detect it.
	w := &job.Workload{Jobs: []*job.Job{computeJob(0, 2, 1e10)}}
	e, err := New(testPlatform(4), w, &sched.FCFS{}, Options{DisableEventDriven: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestHorizonStopsEarly(t *testing.T) {
	j := computeJob(0, 2, 1e12) // 500 s
	w := &job.Workload{Jobs: []*job.Job{j}}
	e, err := New(testPlatform(4), w, &sched.FCFS{}, Options{Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if e.Now() > 100 {
		t.Errorf("simulation ran past the horizon: %v", e.Now())
	}
	if rec.Summary().Completed != 0 {
		t.Error("job completed despite horizon")
	}
}

func TestKillDecisionOnPendingAndRunning(t *testing.T) {
	// An algorithm that kills everything: both pending and running paths.
	killAll := algoFunc(func(inv *sched.Invocation) []sched.Decision {
		var out []sched.Decision
		for i, v := range inv.Pending {
			if i == 0 {
				out = append(out, sched.Start(v.ID, v.Job.NumNodes))
			} else {
				out = append(out, sched.Decision{Kind: sched.DecisionKill, Job: v.ID})
			}
		}
		for _, v := range inv.Running {
			if inv.Now >= 10 {
				out = append(out, sched.Decision{Kind: sched.DecisionKill, Job: v.ID})
			}
		}
		return out
	})
	a := computeJob(0, 2, 1e13) // long
	b := computeJob(1, 2, 1e10)
	b.SubmitTime = 0
	rec, e := runSim(t, testPlatform(4), []*job.Job{a, b}, killAll, Options{InvocationInterval: 10})
	s := rec.Summary()
	if s.Killed != 2 {
		t.Errorf("killed %d, want 2: %+v", s.Killed, s)
	}
	if len(e.Warnings()) > 0 {
		t.Errorf("warnings: %v", e.Warnings())
	}
	// The pending kill must not have started.
	if rec.Record(1).Start >= 0 {
		t.Error("killed-pending job has a start time")
	}
}

// algoFunc adapts a function to sched.Algorithm.
type algoFunc func(inv *sched.Invocation) []sched.Decision

func (algoFunc) Name() string                                      { return "func" }
func (f algoFunc) Schedule(inv *sched.Invocation) []sched.Decision { return f(inv) }

// The dedicated-resource fast path must be EXACTLY equivalent to running
// everything through the fluid solver: same per-job starts, ends, and
// allocations on arbitrary workloads, platforms with and without
// backbones and burst buffers.
func TestFastPathEquivalence(t *testing.T) {
	specs := map[string]func() *platform.Spec{
		"star": func() *platform.Spec { return testPlatform(16) },
		"backbone": func() *platform.Spec {
			s := testPlatform(16)
			s.Network.Topology = platform.TopologyBackbone
			s.Network.BackboneBandwidth = 5e9
			return s
		},
		"node-local-bb": func() *platform.Spec {
			s := testPlatform(16)
			s.BurstBuffer = &platform.BurstBufferSpec{
				Kind: platform.BBNodeLocal, ReadBandwidth: 2e9, WriteBandwidth: 2e9,
			}
			return s
		},
		"tree": func() *platform.Spec {
			s := testPlatform(16)
			s.Network.Topology = platform.TopologyTree
			s.Network.GroupSize = 4
			s.Network.UplinkBandwidth = 2e9
			s.Network.BackboneBandwidth = 6e9
			return s
		},
		"shared-bb": func() *platform.Spec {
			s := testPlatform(16)
			s.BurstBuffer = &platform.BurstBufferSpec{
				Kind: platform.BBShared, ReadBandwidth: 8e9, WriteBandwidth: 8e9,
			}
			return s
		},
	}
	gen := func(seed uint64, bb bool) *job.Workload {
		target := job.TargetPFS
		if bb {
			target = job.TargetBB
		}
		w, err := job.Generate(job.Config{
			Seed: seed, Count: 25,
			Arrival:          job.Arrival{Kind: job.ArrivalPoisson, Rate: 0.03},
			Nodes:            [2]int{1, 8},
			MachineNodes:     16,
			NodeSpeed:        100e9,
			TypeShares:       map[job.Type]float64{job.Rigid: 1, job.Malleable: 1, job.Evolving: 1},
			CheckpointTarget: target,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	for name, mk := range specs {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 4; seed++ {
				bb := name == "node-local-bb" || name == "shared-bb"
				run := func(disable bool) []*metrics.JobRecord {
					e, err := New(mk(), gen(seed, bb), &sched.Adaptive{}, Options{DisableFastPath: disable})
					if err != nil {
						t.Fatal(err)
					}
					rec, err := e.Run()
					if err != nil {
						t.Fatal(err)
					}
					return rec.Records()
				}
				fast, slow := run(false), run(true)
				for i := range fast {
					f, s := fast[i], slow[i]
					if math.Abs(f.Start-s.Start) > 1e-6 || math.Abs(f.End-s.End) > 1e-6 ||
						f.InitialNodes != s.InitialNodes || f.PeakNodes != s.PeakNodes ||
						f.Reconfigs != s.Reconfigs || f.Killed != s.Killed {
						t.Errorf("seed %d job %d diverged:\nfast %+v\nslow %+v", seed, i, f, s)
					}
				}
			}
		})
	}
}
