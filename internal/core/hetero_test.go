package core

import (
	"testing"

	"repro/internal/job"
	"repro/internal/platform"
	"repro/internal/sched"
)

func TestHeterogeneousComputeBoundBySlowest(t *testing.T) {
	// Two node groups: 4 slow (1 Gflop/s) + 4 fast (4 Gflop/s). A rigid
	// job spanning both runs at the slow nodes' pace.
	spec := &platform.Spec{
		Name: "hetero",
		Nodes: []platform.NodeGroupSpec{
			{Count: 4, Speed: 1e9, NamePrefix: "slow"},
			{Count: 4, Speed: 4e9, NamePrefix: "fast"},
		},
		Network: platform.NetworkSpec{LinkBandwidth: 1e9},
		PFS:     &platform.StorageSpec{ReadBandwidth: 2e9, WriteBandwidth: 2e9},
	}
	// 6 nodes: 4 slow + 2 fast (allocator picks lowest IDs first).
	j := computeJob(0, 6, 6e10) // 1e10 per node at "flops/num_nodes"
	rec, _ := runSim(t, spec, []*job.Job{j}, &sched.FCFS{}, Options{})
	// Per-node work 1e10 at the slowest speed 1e9 -> 10 s.
	wantClose(t, "hetero compute", rec.Record(0).Runtime(), 10)

	// A job pinned entirely onto the fast nodes finishes 4x faster.
	pinner := algoFunc(func(inv *sched.Invocation) []sched.Decision {
		var out []sched.Decision
		for _, v := range inv.Pending {
			out = append(out, sched.Decision{
				Kind: sched.DecisionStart, Job: v.ID,
				NumNodes: 4, Nodes: []int{4, 5, 6, 7},
			})
		}
		return out
	})
	jf := computeJob(0, 4, 4e10)
	recFast, _ := runSim(t, spec, []*job.Job{jf}, pinner, Options{})
	wantClose(t, "fast-node compute", recFast.Record(0).Runtime(), 2.5)
}

func TestHeterogeneousFastPathEquivalence(t *testing.T) {
	spec := &platform.Spec{
		Name: "hetero",
		Nodes: []platform.NodeGroupSpec{
			{Count: 8, Speed: 1e9},
			{Count: 8, Speed: 3e9},
		},
		Network: platform.NetworkSpec{LinkBandwidth: 1e9},
		PFS:     &platform.StorageSpec{ReadBandwidth: 2e9, WriteBandwidth: 2e9},
	}
	gen := func() *job.Workload {
		w, err := job.Generate(job.Config{
			Seed: 3, Count: 20,
			Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 0.05},
			Nodes:        [2]int{1, 8},
			MachineNodes: 16,
			NodeSpeed:    1e9,
			TypeShares:   map[job.Type]float64{job.Rigid: 1, job.Malleable: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	run := func(disable bool) []float64 {
		e, err := New(spec, gen(), &sched.Adaptive{}, Options{DisableFastPath: disable})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		var ends []float64
		for _, r := range rec.Records() {
			ends = append(ends, r.End)
		}
		return ends
	}
	fast, slow := run(false), run(true)
	for i := range fast {
		if diff := fast[i] - slow[i]; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("job %d end diverged: %v vs %v", i, fast[i], slow[i])
		}
	}
}

func TestShrinkReserve(t *testing.T) {
	// ShrinkReserve 2 keeps malleable jobs two nodes above their minimum:
	// the reclaimable capacity is min+reserve, so a pending job needing
	// more cannot be admitted by shrinking.
	m := malleableJob(0, 2, 8, 8, 5, 1.6e11)
	r := computeJob(1, 6, 6e10)
	r.SubmitTime = 5
	rec, _ := runSim(t, testPlatform(8), []*job.Job{m, r},
		&sched.Adaptive{ShrinkReserve: 2}, Options{})
	// Floor is min(2)+reserve(2) = 4, so at most 4 nodes are reclaimable
	// and the 6-node job must wait for the malleable job to end.
	mr := rec.Record(0)
	rr := rec.Record(1)
	if rr.Start < mr.End-1e-9 {
		t.Errorf("reserved nodes were reclaimed: rigid started at %v before malleable ended at %v",
			rr.Start, mr.End)
	}
	// Without the reserve it is admitted at the first scheduling point.
	rec2, _ := runSim(t, testPlatform(8), []*job.Job{malleableJob(0, 2, 8, 8, 5, 1.6e11), func() *job.Job {
		j := computeJob(1, 6, 6e10)
		j.SubmitTime = 5
		return j
	}()}, &sched.Adaptive{}, Options{})
	wantClose(t, "unreserved admission", rec2.Record(1).Start, 20)
}

func TestLatencyWithFastPath(t *testing.T) {
	// Star topology + latency goes through the closed form: latency is
	// included exactly once.
	spec := testPlatform(4)
	spec.Network.Latency = 0.5
	j := &job.Job{
		ID: 0, Type: job.Rigid, NumNodes: 2,
		App: &job.Application{Phases: []job.Phase{{
			Iterations: 3,
			Tasks:      []job.Task{{Kind: job.TaskComm, Model: job.MustExprModel("1G"), Pattern: job.PatternRing}},
		}}},
	}
	rec, _ := runSim(t, spec, []*job.Job{j}, &sched.FCFS{}, Options{})
	// Per iteration: 0.5 latency + 1 s transfer; 3 iterations.
	wantClose(t, "latency fast path", rec.Record(0).Runtime(), 4.5)
}
