package core

import "context"

// AbortReason reports why a bounded engine run returned control. It is the
// typed answer to "did the simulation finish, and if not, what stopped
// it?" — callers branch on it instead of parsing errors.
type AbortReason int

const (
	// AbortDrained means the event queue is empty: the simulation ran to
	// natural completion (or deadlocked with jobs outstanding, which
	// Finish reports as an error).
	AbortDrained AbortReason = iota
	// AbortCancelled means the context was cancelled between events.
	AbortCancelled
	// AbortDeadline means the context's deadline expired between events.
	AbortDeadline
	// AbortHorizon means the run hit a virtual-time bound — Options.
	// Horizon or the RunUntil target — with events still queued.
	AbortHorizon
)

func (r AbortReason) String() string {
	switch r {
	case AbortDrained:
		return "drained"
	case AbortCancelled:
		return "cancelled"
	case AbortDeadline:
		return "deadline"
	case AbortHorizon:
		return "horizon"
	default:
		return "unknown"
	}
}

// Finished reports whether the simulation ran to natural completion.
func (r AbortReason) Finished() bool { return r == AbortDrained }

// abortReasonForCtx maps a context error to the matching abort reason.
func abortReasonForCtx(err error) AbortReason {
	if err == context.DeadlineExceeded {
		return AbortDeadline
	}
	return AbortCancelled
}
