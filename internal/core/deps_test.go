package core

import (
	"testing"

	"repro/internal/job"
	"repro/internal/sched"
)

func TestDependencyChainSerializes(t *testing.T) {
	// Three 1-node 10 s jobs with a -> b -> c dependencies on an empty
	// 8-node machine: they must run strictly back to back despite free
	// nodes.
	mk := func(id int, deps ...job.ID) *job.Job {
		j := computeJob(id, 1, 1e10) // 10 s on 1 node
		j.Dependencies = deps
		return j
	}
	jobs := []*job.Job{mk(0), mk(1, 0), mk(2, 1)}
	rec, e := runSim(t, testPlatform(8), jobs, &sched.FCFS{}, Options{Trace: true})
	wantClose(t, "a start", rec.Record(0).Start, 0)
	wantClose(t, "b start", rec.Record(1).Start, 10)
	wantClose(t, "c start", rec.Record(2).Start, 20)
	held, released := 0, 0
	for _, ev := range e.Trace() {
		switch ev.Kind {
		case EvHeld:
			held++
		case EvReleased:
			released++
		}
	}
	if held != 2 || released != 2 {
		t.Errorf("held=%d released=%d, want 2/2", held, released)
	}
}

func TestDependencyDiamond(t *testing.T) {
	// a -> (b, c) -> d: d starts only after BOTH b and c finish.
	a := computeJob(0, 1, 1e10) // 10 s
	b := computeJob(1, 1, 1e10) // 10 s
	c := computeJob(2, 1, 2e10) // 20 s (the straggler)
	d := computeJob(3, 1, 1e10)
	b.Dependencies = []job.ID{0}
	c.Dependencies = []job.ID{0}
	d.Dependencies = []job.ID{1, 2}
	rec, _ := runSim(t, testPlatform(8), []*job.Job{a, b, c, d}, &sched.FCFS{}, Options{})
	wantClose(t, "b start", rec.Record(1).Start, 10)
	wantClose(t, "c start", rec.Record(2).Start, 10)
	wantClose(t, "d start", rec.Record(3).Start, 30) // after c at t=30
}

func TestDependencyOnAlreadyFinishedJob(t *testing.T) {
	// The dependency finishes long before the dependent submits: no hold.
	a := computeJob(0, 1, 1e9) // 1 s
	b := computeJob(1, 1, 1e9)
	b.SubmitTime = 100
	b.Dependencies = []job.ID{0}
	rec, _ := runSim(t, testPlatform(2), []*job.Job{a, b}, &sched.FCFS{}, Options{})
	wantClose(t, "b start", rec.Record(1).Start, 100)
}

func TestDependencySatisfiedByKill(t *testing.T) {
	// afterany: a walltime-killed dependency still releases the dependent.
	a := computeJob(0, 1, 1e12) // would run 1000 s
	a.WallTimeLimit = 50
	b := computeJob(1, 1, 1e9)
	b.Dependencies = []job.ID{0}
	rec, _ := runSim(t, testPlatform(2), []*job.Job{a, b}, &sched.FCFS{}, Options{})
	if !rec.Record(0).Killed {
		t.Fatal("dependency not killed")
	}
	wantClose(t, "b start", rec.Record(1).Start, 50)
}

func TestHeldJobsInvisibleToScheduler(t *testing.T) {
	// While held, a job must not appear in the scheduler's pending list.
	var sawHeldJob bool
	spy := algoFunc(func(inv *sched.Invocation) []sched.Decision {
		for _, v := range inv.Pending {
			if v.ID == 1 && inv.Now < 10 {
				sawHeldJob = true
			}
		}
		return (&sched.FCFS{}).Schedule(inv)
	})
	a := computeJob(0, 1, 1e10) // 10 s
	b := computeJob(1, 1, 1e9)
	b.Dependencies = []job.ID{0}
	runSim(t, testPlatform(2), []*job.Job{a, b}, spy, Options{})
	if sawHeldJob {
		t.Error("held job leaked into the pending queue")
	}
}
