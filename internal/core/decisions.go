package core

import (
	"fmt"

	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sched"
)

// apply validates and executes one scheduling decision. Errors mean the
// decision was rejected with no side effects.
func (e *Engine) apply(d sched.Decision) error {
	jr := e.runs.get(d.Job)
	if jr == nil {
		return fmt.Errorf("unknown job %d", d.Job)
	}
	switch d.Kind {
	case sched.DecisionStart:
		return e.applyStart(jr, d.NumNodes, d.Nodes)
	case sched.DecisionResize:
		return e.applyResizeDecision(jr, d.NumNodes)
	case sched.DecisionGrant:
		return e.applyGrant(jr, d.NumNodes)
	case sched.DecisionDeny:
		return e.applyDeny(jr)
	case sched.DecisionKill:
		return e.applyKill(jr)
	default:
		return fmt.Errorf("unknown decision kind %v", d.Kind)
	}
}

func (e *Engine) applyStart(jr *jobRun, n int, pinned []int) error {
	if jr.state != statePending {
		return fmt.Errorf("job %s is %s, not pending", jr.job.Label(), jr.state)
	}
	j := jr.job
	if len(pinned) > 0 && n == 0 {
		n = len(pinned)
	}
	if j.Type == job.Rigid {
		if n != j.NumNodes {
			return fmt.Errorf("rigid job %s started with %d nodes, requested %d", j.Label(), n, j.NumNodes)
		}
	} else if n < j.MinNodes() || n > j.MaxNodes() {
		return fmt.Errorf("job %s started with %d nodes outside [%d,%d]", j.Label(), n, j.MinNodes(), j.MaxNodes())
	}
	if n > e.alloc.Free() {
		return fmt.Errorf("job %s needs %d nodes, only %d free", j.Label(), n, e.alloc.Free())
	}
	var nodes []platform.NodeID
	if len(pinned) > 0 {
		// Explicit placement: the algorithm names the nodes.
		if len(pinned) != n {
			return fmt.Errorf("job %s: %d pinned nodes but num_nodes %d", j.Label(), len(pinned), n)
		}
		nodes = make([]platform.NodeID, 0, n)
		for _, id := range pinned {
			if id < 0 || id >= e.alloc.Total() {
				return fmt.Errorf("job %s: pinned node %d out of range", j.Label(), id)
			}
			if e.nodeDown != nil && e.nodeDown[id] {
				return fmt.Errorf("job %s: pinned node %d is down", j.Label(), id)
			}
			nodes = append(nodes, platform.NodeID(id))
		}
		if err := e.alloc.AllocateNodes(jr.owner, nodes); err != nil {
			return fmt.Errorf("job %s: pinned placement: %w", j.Label(), err)
		}
	} else {
		var err error
		nodes, err = e.alloc.Allocate(jr.owner, n)
		if err != nil {
			return err
		}
	}
	e.queue.remove(jr)
	e.start(jr, nodes)
	return nil
}

func (e *Engine) applyResizeDecision(jr *jobRun, n int) error {
	j := jr.job
	if j.Type != job.Malleable {
		return fmt.Errorf("job %s is %s; only malleable jobs accept scheduler resizes", j.Label(), j.Type)
	}
	if jr.state != stateAtSchedPoint {
		return fmt.Errorf("job %s is not at a scheduling point", j.Label())
	}
	if n < j.MinNodes() || n > j.MaxNodes() {
		return fmt.Errorf("resize of %s to %d outside [%d,%d]", j.Label(), n, j.MinNodes(), j.MaxNodes())
	}
	cur := len(jr.nodes)
	if n == cur {
		return nil // no-op resize
	}
	if grow := n - cur; grow > 0 && grow > e.alloc.Free() {
		return fmt.Errorf("resize of %s to %d needs %d free nodes, have %d", j.Label(), n, grow, e.alloc.Free())
	}
	// Adjust the allocation immediately so nodes freed by a shrink are
	// available to later decisions in the same invocation; the
	// reconfiguration cost is charged when the job resumes.
	e.adjustAllocation(jr, n)
	jr.pendingResize = cur // remembers the old size for the cost model
	return nil
}

func (e *Engine) applyGrant(jr *jobRun, n int) error {
	j := jr.job
	if j.Type != job.Evolving {
		return fmt.Errorf("job %s is %s; grants answer evolving requests", j.Label(), j.Type)
	}
	if jr.evolvingRequest == 0 {
		return fmt.Errorf("job %s has no outstanding evolving request", j.Label())
	}
	if n < j.MinNodes() || n > j.MaxNodes() {
		return fmt.Errorf("grant of %d to %s outside [%d,%d]", n, j.Label(), j.MinNodes(), j.MaxNodes())
	}
	jr.grantedTarget = n
	// The request is answered: clear it so later invocations do not see a
	// stale outstanding request (and grant it twice).
	jr.evolvingRequest = 0
	e.traceEvent(EvGranted, j.ID, fmt.Sprintf("target=%d", n))
	// If the job is paused at a scheduling point right now, the pending
	// resume event will pick the grant up at this timestamp.
	return nil
}

func (e *Engine) applyDeny(jr *jobRun) error {
	if jr.job.Type != job.Evolving {
		return fmt.Errorf("job %s is %s; deny answers evolving requests", jr.job.Label(), jr.job.Type)
	}
	if jr.evolvingRequest == 0 {
		return fmt.Errorf("job %s has no outstanding evolving request", jr.job.Label())
	}
	jr.evolvingRequest = 0
	jr.grantedTarget = 0
	e.traceEvent(EvDenied, jr.job.ID, "")
	return nil
}

func (e *Engine) applyKill(jr *jobRun) error {
	switch jr.state {
	case statePending, stateHeld:
		if jr.state == statePending {
			e.queue.remove(jr)
		}
		jr.state = stateDone
		e.rec.JobAbandoned(jr.job.ID, e.Now())
		e.traceEvent(EvFinish, jr.job.ID, "killed-pending")
		e.outstanding--
		e.markFinished(jr.job.ID)
		return nil
	case stateDone:
		return fmt.Errorf("job %s already finished", jr.job.Label())
	default:
		e.kill(jr, metrics.StatusKilledScheduler)
		return nil
	}
}
