// Package jobqueue is a store-backed job engine for simulation-as-a-
// service: typed job states, worker claiming with lease + heartbeat
// semantics, and a JSONL journal that lets a restarted daemon recover
// queued and completed jobs without re-running finished work.
//
// Since the work-distribution core was extracted into internal/distwork,
// this package is a thin specialization of it: a Job is a
// distwork.Task[json.RawMessage] under its historical field names, the
// journal keeps its original record shape through a legacy Codec (old
// daemon journals replay unchanged), and the metric families keep their
// elastisimd_* names. The lifecycle state machine, lease/steal contract,
// and journal format are documented on package distwork.
//
//	pending ──claim──▶ claimed ──start──▶ running ◀─pause/resume─▶ paused
//	   ▲                  │                  │                        │
//	   └──lease expiry / release────────────┴───────┐                │
//	                                                 ▼                ▼
//	                                      done / failed / cancelled (terminal)
package jobqueue

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/distwork"
	"repro/internal/obs"
)

// State is a job's lifecycle state.
type State = distwork.State

// The job states. Pending jobs are claimable; claimed/running/paused jobs
// belong to a worker under a lease; done/failed/cancelled are terminal.
const (
	StatePending   = distwork.StatePending
	StateClaimed   = distwork.StateClaimed
	StateRunning   = distwork.StateRunning
	StatePaused    = distwork.StatePaused
	StateDone      = distwork.StateDone
	StateFailed    = distwork.StateFailed
	StateCancelled = distwork.StateCancelled
)

// States lists every lifecycle state, in lifecycle order. Exported for
// consumers that enumerate per-state series (the daemon's /metrics).
var States = []State{
	StatePending, StateClaimed, StateRunning, StatePaused,
	StateDone, StateFailed, StateCancelled,
}

// Job is one unit of work: an opaque config payload plus lifecycle
// bookkeeping. Methods on Queue return copies; mutate only through Queue.
type Job struct {
	// ID is assigned by Submit ("j000001", dense per queue lifetime).
	ID string `json:"id"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Config is the opaque payload (for elastisimd, a combined
	// simulation document).
	Config json.RawMessage `json:"config,omitempty"`
	// Submitted/Started/Finished are wall-clock transition times; Started
	// and Finished are zero until the transition happened.
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
	// Worker names the claim holder while the job is active.
	Worker string `json:"worker,omitempty"`
	// Lease is when the current claim expires unless renewed by
	// Heartbeat. Expired claims are requeued.
	Lease time.Time `json:"lease,omitempty"`
	// Attempts counts claims, including requeues after lost leases.
	Attempts int `json:"attempts,omitempty"`
	// Error holds the failure message for failed jobs.
	Error string `json:"error,omitempty"`
	// Result is an opaque pointer to the job's artifacts (for elastisimd,
	// the artifact directory), set by Finish.
	Result string `json:"result,omitempty"`
	// Note carries auxiliary lifecycle information, e.g. partial-progress
	// details journaled when a shutdown interrupted the job.
	Note string `json:"note,omitempty"`
}

// task/job conversions: a Job and a distwork.Task[json.RawMessage] are
// the same record under different field names (Config vs Payload).

func jobOf(t distwork.Task[json.RawMessage]) Job {
	return Job{
		ID: t.ID, State: t.State, Config: t.Payload,
		Submitted: t.Submitted, Started: t.Started, Finished: t.Finished,
		Worker: t.Worker, Lease: t.Lease, Attempts: t.Attempts,
		Error: t.Error, Result: t.Result, Note: t.Note,
	}
}

func taskOf(j Job) distwork.Task[json.RawMessage] {
	return distwork.Task[json.RawMessage]{
		ID: j.ID, State: j.State, Payload: j.Config,
		Submitted: j.Submitted, Started: j.Started, Finished: j.Finished,
		Worker: j.Worker, Lease: j.Lease, Attempts: j.Attempts,
		Error: j.Error, Result: j.Result, Note: j.Note,
	}
}

// jobCodec journals records in the pre-distwork shape (the Job struct's
// JSON: "config", not "payload"), so journals written by older daemons
// replay unchanged and new journals stay greppable with the same field
// names operators already know.
type jobCodec struct{}

func (jobCodec) Encode(t *distwork.Task[json.RawMessage]) ([]byte, error) {
	j := jobOf(*t)
	return json.Marshal(&j)
}

func (jobCodec) Decode(data []byte) (distwork.Task[json.RawMessage], error) {
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return distwork.Task[json.RawMessage]{}, err
	}
	return taskOf(j), nil
}

// Options tunes a Queue.
type Options struct {
	// Lease is how long a claim stays valid without a heartbeat
	// (default 30s).
	Lease time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
	// Metrics, when set, receives the queue's operational series: jobs by
	// state (callback gauges over the live store), submission/claim/lease
	// counters, and journal fsync latency. Flight, when set, records every
	// journaled state transition into the crash flight recorder. Both nil
	// (the default) detach observability at zero cost.
	Metrics *obs.Registry
	Flight  *obs.FlightRecorder
	// JournalShards splits the journal across this many hash-sharded
	// files (0 = single legacy file); GroupCommit batches journal fsyncs
	// into one flush per window (0 = fsync every transition). See
	// distwork.Options.Shards and distwork.Options.GroupCommit.
	JournalShards int
	GroupCommit   time.Duration
}

func (o Options) core() distwork.Options[json.RawMessage] {
	return distwork.Options[json.RawMessage]{
		Lease:        o.Lease,
		Now:          o.Now,
		Metrics:      o.Metrics,
		Flight:       o.Flight,
		Shards:       o.JournalShards,
		GroupCommit:  o.GroupCommit,
		MetricPrefix: "elastisimd",
		Noun:         "job",
		FlightTopic:  "jobqueue",
		IDPrefix:     "j",
		Codec:        jobCodec{},
	}
}

// Queue is an in-memory job store with optional journal persistence. All
// methods are safe for concurrent use; hundreds of submitters and a
// worker pool can share one Queue. It is a Job-typed view over a
// distwork.Store.
type Queue struct {
	s *distwork.Store[json.RawMessage]
}

// New creates a memory-only queue (no journal).
func New(opts Options) *Queue {
	return &Queue{s: distwork.New(opts.core())}
}

// Open creates a queue journaled at path, replaying any existing journal
// first: terminal jobs are kept (with their result pointers) and are
// never re-run; jobs that were claimed, running, or paused when the
// previous process died return to pending. The journal is compacted on
// open.
func Open(path string, opts Options) (*Queue, error) {
	s, err := distwork.Open(path, opts.core())
	if err != nil {
		return nil, err
	}
	return &Queue{s: s}, nil
}

// legacyErr rephrases distwork's structured errors in this package's
// historical vocabulary, keeping daemon error responses unchanged.
func legacyErr(err error) error {
	if err == nil {
		return nil
	}
	var nf *distwork.NotFoundError
	if errors.As(err, &nf) {
		return fmt.Errorf("jobqueue: no job %s", nf.ID)
	}
	var no *distwork.NotOwnerError
	if errors.As(err, &no) {
		return fmt.Errorf("jobqueue: job %s is %s (worker %q), not owned by %q",
			no.ID, no.State, no.Worker, no.Claimant)
	}
	if errors.Is(err, distwork.ErrClosed) {
		return errors.New("jobqueue: queue is closed")
	}
	return err
}

// Submit enqueues a new job with the given payload and returns it.
func (q *Queue) Submit(config json.RawMessage) (Job, error) {
	t, err := q.s.Submit(append(json.RawMessage(nil), config...))
	if err != nil {
		return Job{}, legacyErr(err)
	}
	return jobOf(t), nil
}

// Get returns a copy of the job, if it exists.
func (q *Queue) Get(id string) (Job, bool) {
	t, ok := q.s.Get(id)
	if !ok {
		return Job{}, false
	}
	return jobOf(t), true
}

// List returns copies of all jobs in submission order.
func (q *Queue) List() []Job {
	tasks := q.s.List()
	out := make([]Job, 0, len(tasks))
	for _, t := range tasks {
		out = append(out, jobOf(t))
	}
	return out
}

// ExpireLeases requeues every active job whose lease has lapsed (the
// worker stopped heartbeating) and reports how many were requeued.
func (q *Queue) ExpireLeases() int { return q.s.ExpireLeases() }

// TryClaim claims the oldest pending job for worker, or reports none
// available. Expired leases are collected first, so a crashed worker's
// jobs become claimable here.
func (q *Queue) TryClaim(worker string) (Job, bool) {
	t, ok := q.s.TryClaim(worker)
	if !ok {
		return Job{}, false
	}
	return jobOf(t), true
}

// Claim blocks until a pending job is available (or ctx is done / the
// queue closes) and claims it for worker.
func (q *Queue) Claim(ctx context.Context, worker string) (Job, error) {
	t, err := q.s.Claim(ctx, worker)
	if err != nil {
		return Job{}, legacyErr(err)
	}
	return jobOf(t), nil
}

// Heartbeat renews worker's lease on the job.
func (q *Queue) Heartbeat(id, worker string) error {
	return legacyErr(q.s.Heartbeat(id, worker))
}

// MarkRunning transitions a claimed (or paused) job to running.
func (q *Queue) MarkRunning(id, worker string) error {
	return legacyErr(q.s.MarkRunning(id, worker))
}

// MarkPaused transitions a running job to paused. The worker keeps the
// claim and must keep heartbeating.
func (q *Queue) MarkPaused(id, worker string) error {
	return legacyErr(q.s.MarkPaused(id, worker))
}

// Finish moves an owned job to a terminal state: done when runErr is nil,
// failed otherwise. result is an opaque artifact pointer stored on the
// job and survives journal recovery.
func (q *Queue) Finish(id, worker, result string, runErr error) error {
	return legacyErr(q.s.Finish(id, worker, result, runErr))
}

// FinishCancelled moves an owned job to cancelled (a cancel request was
// honored mid-run); result may point at partial artifacts.
func (q *Queue) FinishCancelled(id, worker, result string) error {
	return legacyErr(q.s.FinishCancelled(id, worker, result))
}

// Release returns an owned job to pending without finishing it — the
// graceful-shutdown path. note (e.g. partial-progress details) is
// journaled with the transition, so a restarted daemon sees how far the
// interrupted run got before it re-runs the job.
func (q *Queue) Release(id, worker, note string) error {
	return legacyErr(q.s.Release(id, worker, note))
}

// Cancel requests cancellation. A pending job is cancelled immediately;
// for an active job the state is returned unchanged and the caller must
// signal the owning worker (which then calls FinishCancelled). Cancelling
// a terminal job is a no-op. The returned state is the job's state after
// the call.
func (q *Queue) Cancel(id string) (State, error) {
	st, err := q.s.Cancel(id)
	return st, legacyErr(err)
}

// Counts tallies jobs by state.
func (q *Queue) Counts() map[State]int { return q.s.Counts() }

// Close flushes and closes the journal and wakes all blocked Claim calls
// with an error. Jobs are not mutated: active jobs stay active in the
// journal and will be requeued by the next Open.
func (q *Queue) Close() error { return q.s.Close() }
