// Package jobqueue is a store-backed job engine for simulation-as-a-
// service: typed job states, worker claiming with lease + heartbeat
// semantics, and a JSONL journal that lets a restarted daemon recover
// queued and completed jobs without re-running finished work.
//
// The lifecycle is a small state machine:
//
//	pending ──claim──▶ claimed ──start──▶ running ◀─pause/resume─▶ paused
//	   ▲                  │                  │                        │
//	   └──lease expiry / release────────────┴───────┐                │
//	                                                 ▼                ▼
//	                                      done / failed / cancelled (terminal)
//
// Claims carry a lease: a worker that stops heartbeating (crashed, hung,
// killed) loses the job, which returns to pending for another worker.
// Every transition is journaled; Open replays the journal, requeues jobs
// that were mid-flight when the previous process died, and keeps terminal
// jobs (and their result pointers) without re-running them.
package jobqueue

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// State is a job's lifecycle state.
type State string

// The job states. Pending jobs are claimable; claimed/running/paused jobs
// belong to a worker under a lease; done/failed/cancelled are terminal.
const (
	StatePending   State = "pending"
	StateClaimed   State = "claimed"
	StateRunning   State = "running"
	StatePaused    State = "paused"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Active reports whether a worker currently owns the job.
func (s State) Active() bool {
	return s == StateClaimed || s == StateRunning || s == StatePaused
}

// Valid reports whether s is one of the defined states.
func (s State) Valid() bool {
	switch s {
	case StatePending, StateClaimed, StateRunning, StatePaused,
		StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Job is one unit of work: an opaque config payload plus lifecycle
// bookkeeping. Methods on Queue return copies; mutate only through Queue.
type Job struct {
	// ID is assigned by Submit ("j000001", dense per queue lifetime).
	ID string `json:"id"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Config is the opaque payload (for elastisimd, a combined
	// simulation document).
	Config json.RawMessage `json:"config,omitempty"`
	// Submitted/Started/Finished are wall-clock transition times; Started
	// and Finished are zero until the transition happened.
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
	// Worker names the claim holder while the job is active.
	Worker string `json:"worker,omitempty"`
	// Lease is when the current claim expires unless renewed by
	// Heartbeat. Expired claims are requeued.
	Lease time.Time `json:"lease,omitempty"`
	// Attempts counts claims, including requeues after lost leases.
	Attempts int `json:"attempts,omitempty"`
	// Error holds the failure message for failed jobs.
	Error string `json:"error,omitempty"`
	// Result is an opaque pointer to the job's artifacts (for elastisimd,
	// the artifact directory), set by Finish.
	Result string `json:"result,omitempty"`
	// Note carries auxiliary lifecycle information, e.g. partial-progress
	// details journaled when a shutdown interrupted the job.
	Note string `json:"note,omitempty"`
}

// Options tunes a Queue.
type Options struct {
	// Lease is how long a claim stays valid without a heartbeat
	// (default 30s).
	Lease time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
	// Metrics, when set, receives the queue's operational series: jobs by
	// state (callback gauges over the live store), submission/claim/lease
	// counters, and journal fsync latency. Flight, when set, records every
	// journaled state transition into the crash flight recorder. Both nil
	// (the default) detach observability at zero cost.
	Metrics *obs.Registry
	Flight  *obs.FlightRecorder
}

func (o Options) withDefaults() Options {
	if o.Lease <= 0 {
		o.Lease = 30 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Queue is an in-memory job store with optional journal persistence. All
// methods are safe for concurrent use; hundreds of submitters and a
// worker pool can share one Queue.
type Queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*Job
	order   []string // submission order
	seq     uint64
	journal *journal
	opts    Options
	closed  bool
	m       queueMetrics
}

// New creates a memory-only queue (no journal).
func New(opts Options) *Queue {
	q := &Queue{jobs: make(map[string]*Job), opts: opts.withDefaults()}
	q.cond = sync.NewCond(&q.mu)
	q.m = newQueueMetrics(q, q.opts)
	return q
}

// Open creates a queue journaled at path, replaying any existing journal
// first: terminal jobs are kept (with their result pointers) and are
// never re-run; jobs that were claimed, running, or paused when the
// previous process died return to pending. The journal is compacted on
// open.
func Open(path string, opts Options) (*Queue, error) {
	q := New(opts)
	jobs, maxSeq, err := replayJournal(path)
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		q.jobs[j.ID] = j
		q.order = append(q.order, j.ID)
	}
	sort.Slice(q.order, func(i, k int) bool {
		return q.jobs[q.order[i]].Submitted.Before(q.jobs[q.order[k]].Submitted) ||
			(q.jobs[q.order[i]].Submitted.Equal(q.jobs[q.order[k]].Submitted) &&
				q.order[i] < q.order[k])
	})
	q.seq = maxSeq
	jr, err := newJournal(path, q.snapshotLocked())
	if err != nil {
		return nil, err
	}
	jr.fsync = q.m.fsync
	q.journal = jr
	return q, nil
}

// snapshotLocked returns the current jobs in submission order. Callers
// must hold q.mu (or have exclusive access, as in Open).
func (q *Queue) snapshotLocked() []*Job {
	out := make([]*Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.jobs[id])
	}
	return out
}

// record journals the job's current state and mirrors the transition
// into the flight recorder. Callers hold q.mu.
func (q *Queue) record(j *Job) {
	if q.journal != nil {
		q.journal.append(j)
	}
	if q.m.flight != nil {
		if j.Worker != "" {
			q.m.flight.Recordf("jobqueue", "%s -> %s (%s, attempt %d)", j.ID, j.State, j.Worker, j.Attempts)
		} else {
			q.m.flight.Recordf("jobqueue", "%s -> %s", j.ID, j.State)
		}
	}
}

// Submit enqueues a new job with the given payload and returns it.
func (q *Queue) Submit(config json.RawMessage) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Job{}, fmt.Errorf("jobqueue: queue is closed")
	}
	q.seq++
	j := &Job{
		ID:        fmt.Sprintf("j%06d", q.seq),
		State:     StatePending,
		Config:    append(json.RawMessage(nil), config...),
		Submitted: q.opts.Now(),
	}
	q.jobs[j.ID] = j
	q.order = append(q.order, j.ID)
	q.m.submitted.Inc()
	q.record(j)
	q.cond.Broadcast()
	return *j, nil
}

// Get returns a copy of the job, if it exists.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns copies of all jobs in submission order.
func (q *Queue) List() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, *q.jobs[id])
	}
	return out
}

// expireLocked requeues active jobs whose lease lapsed. Callers hold q.mu.
func (q *Queue) expireLocked(now time.Time) int {
	n := 0
	for _, id := range q.order {
		j := q.jobs[id]
		if j.State.Active() && now.After(j.Lease) {
			j.State = StatePending
			j.Worker = ""
			j.Lease = time.Time{}
			j.Note = "lease expired; requeued"
			q.record(j)
			n++
		}
	}
	if n > 0 {
		q.m.expirations.Add(uint64(n))
		q.cond.Broadcast()
	}
	return n
}

// ExpireLeases requeues every active job whose lease has lapsed (the
// worker stopped heartbeating) and reports how many were requeued.
func (q *Queue) ExpireLeases() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.expireLocked(q.opts.Now())
}

// TryClaim claims the oldest pending job for worker, or reports none
// available. Expired leases are collected first, so a crashed worker's
// jobs become claimable here.
func (q *Queue) TryClaim(worker string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.tryClaimLocked(worker)
}

func (q *Queue) tryClaimLocked(worker string) (Job, bool) {
	now := q.opts.Now()
	q.expireLocked(now)
	for _, id := range q.order {
		j := q.jobs[id]
		if j.State == StatePending {
			j.State = StateClaimed
			j.Worker = worker
			j.Lease = now.Add(q.opts.Lease)
			j.Attempts++
			j.Note = ""
			q.m.claims.Inc()
			q.record(j)
			return *j, true
		}
	}
	return Job{}, false
}

// Claim blocks until a pending job is available (or ctx is done / the
// queue closes) and claims it for worker.
func (q *Queue) Claim(ctx context.Context, worker string) (Job, error) {
	stop := context.AfterFunc(ctx, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	defer stop()
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return Job{}, err
		}
		if q.closed {
			return Job{}, fmt.Errorf("jobqueue: queue is closed")
		}
		if j, ok := q.tryClaimLocked(worker); ok {
			return j, nil
		}
		q.cond.Wait()
	}
}

// owned fetches the job and verifies worker holds it. Callers hold q.mu.
func (q *Queue) owned(id, worker string) (*Job, error) {
	j, ok := q.jobs[id]
	if !ok {
		return nil, fmt.Errorf("jobqueue: no job %s", id)
	}
	if !j.State.Active() || j.Worker != worker {
		return nil, fmt.Errorf("jobqueue: job %s is %s (worker %q), not owned by %q", id, j.State, j.Worker, worker)
	}
	return j, nil
}

// Heartbeat renews worker's lease on the job.
func (q *Queue) Heartbeat(id, worker string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, err := q.owned(id, worker)
	if err != nil {
		return err
	}
	j.Lease = q.opts.Now().Add(q.opts.Lease)
	q.m.heartbeats.Inc()
	return nil
}

// setState moves an owned job to the given active state.
func (q *Queue) setState(id, worker string, s State) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, err := q.owned(id, worker)
	if err != nil {
		return err
	}
	if j.State == s {
		return nil
	}
	j.State = s
	j.Lease = q.opts.Now().Add(q.opts.Lease)
	if s == StateRunning && j.Started.IsZero() {
		j.Started = q.opts.Now()
	}
	q.record(j)
	return nil
}

// MarkRunning transitions a claimed (or paused) job to running.
func (q *Queue) MarkRunning(id, worker string) error {
	return q.setState(id, worker, StateRunning)
}

// MarkPaused transitions a running job to paused. The worker keeps the
// claim and must keep heartbeating.
func (q *Queue) MarkPaused(id, worker string) error {
	return q.setState(id, worker, StatePaused)
}

// Finish moves an owned job to a terminal state: done when runErr is nil,
// failed otherwise. result is an opaque artifact pointer stored on the
// job and survives journal recovery.
func (q *Queue) Finish(id, worker, result string, runErr error) error {
	state := StateDone
	errMsg := ""
	if runErr != nil {
		state = StateFailed
		errMsg = runErr.Error()
	}
	return q.finish(id, worker, state, result, errMsg)
}

// FinishCancelled moves an owned job to cancelled (a cancel request was
// honored mid-run); result may point at partial artifacts.
func (q *Queue) FinishCancelled(id, worker, result string) error {
	return q.finish(id, worker, StateCancelled, result, "")
}

func (q *Queue) finish(id, worker string, s State, result, errMsg string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, err := q.owned(id, worker)
	if err != nil {
		return err
	}
	j.State = s
	j.Worker = ""
	j.Lease = time.Time{}
	j.Finished = q.opts.Now()
	j.Result = result
	j.Error = errMsg
	q.m.finished[s].Inc()
	q.record(j)
	q.cond.Broadcast()
	return nil
}

// Release returns an owned job to pending without finishing it — the
// graceful-shutdown path. note (e.g. partial-progress details) is
// journaled with the transition, so a restarted daemon sees how far the
// interrupted run got before it re-runs the job.
func (q *Queue) Release(id, worker, note string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, err := q.owned(id, worker)
	if err != nil {
		return err
	}
	j.State = StatePending
	j.Worker = ""
	j.Lease = time.Time{}
	j.Note = note
	q.m.releases.Inc()
	q.record(j)
	q.cond.Broadcast()
	return nil
}

// Cancel requests cancellation. A pending job is cancelled immediately;
// for an active job the state is returned unchanged and the caller must
// signal the owning worker (which then calls FinishCancelled). Cancelling
// a terminal job is a no-op. The returned state is the job's state after
// the call.
func (q *Queue) Cancel(id string) (State, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return "", fmt.Errorf("jobqueue: no job %s", id)
	}
	if j.State == StatePending {
		j.State = StateCancelled
		j.Finished = q.opts.Now()
		q.m.finished[StateCancelled].Inc()
		q.record(j)
	}
	return j.State, nil
}

// Counts tallies jobs by state.
func (q *Queue) Counts() map[State]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[State]int)
	for _, j := range q.jobs {
		out[j.State]++
	}
	return out
}

// Close flushes and closes the journal and wakes all blocked Claim calls
// with an error. Jobs are not mutated: active jobs stay active in the
// journal and will be requeued by the next Open.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	q.cond.Broadcast()
	if q.journal != nil {
		return q.journal.close()
	}
	return nil
}
