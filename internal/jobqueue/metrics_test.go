package jobqueue

import (
	"bytes"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestQueueMetrics drives a journaled queue through submit, claim, lease
// expiry, reclaim, heartbeat, and both terminal outcomes, and checks the
// exposition reflects every transition — including the journal fsync
// histogram, which must have observed one sample per journaled record.
func TestQueueMetrics(t *testing.T) {
	now := time.Unix(1000, 0)
	reg := obs.NewRegistry()
	flight := obs.NewFlightRecorder(64)
	q, err := Open(filepath.Join(t.TempDir(), "journal.jsonl"), Options{
		Lease:   time.Minute,
		Now:     func() time.Time { return now },
		Metrics: reg,
		Flight:  flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	a, _ := q.Submit([]byte(`{"a":1}`))
	b, _ := q.Submit([]byte(`{"b":2}`))

	if _, ok := q.TryClaim("w1"); !ok {
		t.Fatal("claim failed")
	}
	// Lose the lease: the job returns to pending and the expiry counts.
	now = now.Add(2 * time.Minute)
	if n := q.ExpireLeases(); n != 1 {
		t.Fatalf("expired %d leases, want 1", n)
	}
	// Reclaim and finish one job each way.
	j, ok := q.TryClaim("w2")
	if !ok || j.ID != a.ID {
		t.Fatalf("reclaim = (%v, %v), want job %s", j.ID, ok, a.ID)
	}
	if err := q.MarkRunning(j.ID, "w2"); err != nil {
		t.Fatal(err)
	}
	if err := q.Heartbeat(j.ID, "w2"); err != nil {
		t.Fatal(err)
	}
	if err := q.Finish(j.ID, "w2", "artifacts/a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"elastisimd_jobs_submitted_total 2",
		"elastisimd_job_claims_total 2",
		"elastisimd_lease_expirations_total 1",
		"elastisimd_heartbeats_total 1",
		`elastisimd_jobs_finished_total{state="done"} 1`,
		`elastisimd_jobs_finished_total{state="cancelled"} 1`,
		`elastisimd_jobs{state="done"} 1`,
		`elastisimd_jobs{state="cancelled"} 1`,
		`elastisimd_jobs{state="pending"} 0`,
		"elastisimd_journal_fsync_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if _, err := obs.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Errorf("queue exposition invalid: %v", err)
	}
	// One fsync observation per journaled transition: 2 submits, 2 claims,
	// 1 expiry, 1 running, 1 done, 1 cancel. (Heartbeats only renew the
	// lease and are not journaled.)
	if n := histCount(t, text, "elastisimd_journal_fsync_seconds_count"); n != 8 {
		t.Errorf("journal fsync count = %d, want 8", n)
	}
	if flight.Total() < 8 {
		t.Errorf("flight recorded %d transitions, want >= 8", flight.Total())
	}
}

// histCount extracts the integer value of a _count sample line.
func histCount(t *testing.T, text, name string) int {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			n, err := strconv.Atoi(strings.TrimSpace(line[len(name)+1:]))
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return n
		}
	}
	t.Fatalf("no %s sample in exposition", name)
	return 0
}
