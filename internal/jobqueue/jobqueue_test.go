package jobqueue

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLifecycle(t *testing.T) {
	q := New(Options{})
	j, err := q.Submit(json.RawMessage(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StatePending || j.ID == "" {
		t.Fatalf("submitted job = %+v", j)
	}

	claimed, ok := q.TryClaim("w1")
	if !ok || claimed.ID != j.ID || claimed.State != StateClaimed || claimed.Attempts != 1 {
		t.Fatalf("claim = %+v ok=%v", claimed, ok)
	}
	if _, ok := q.TryClaim("w2"); ok {
		t.Fatal("second claim succeeded on an owned job")
	}
	if err := q.MarkRunning(j.ID, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := q.MarkPaused(j.ID, "w1"); err != nil {
		t.Fatal(err)
	}
	if got, _ := q.Get(j.ID); got.State != StatePaused {
		t.Fatalf("state = %s, want paused", got.State)
	}
	if err := q.MarkRunning(j.ID, "w1"); err != nil {
		t.Fatal(err)
	}
	// Wrong worker cannot drive the job.
	if err := q.MarkPaused(j.ID, "w2"); err == nil {
		t.Fatal("foreign worker drove the job")
	}
	if err := q.Finish(j.ID, "w1", "artifacts/1", nil); err != nil {
		t.Fatal(err)
	}
	got, _ := q.Get(j.ID)
	if got.State != StateDone || got.Result != "artifacts/1" || got.Worker != "" {
		t.Fatalf("finished job = %+v", got)
	}
	// Terminal jobs are not claimable.
	if _, ok := q.TryClaim("w1"); ok {
		t.Fatal("claimed a terminal job")
	}
}

func TestFailAndCancel(t *testing.T) {
	q := New(Options{})
	a, _ := q.Submit(nil)
	b, _ := q.Submit(nil)

	// Pending cancel is immediate.
	if st, err := q.Cancel(b.ID); err != nil || st != StateCancelled {
		t.Fatalf("cancel pending: state=%s err=%v", st, err)
	}

	cl, _ := q.TryClaim("w")
	if cl.ID != a.ID {
		t.Fatalf("claimed %s, want %s (cancelled job must be skipped)", cl.ID, a.ID)
	}
	// Active cancel leaves the state for the worker to settle.
	if st, err := q.Cancel(a.ID); err != nil || st != StateClaimed {
		t.Fatalf("cancel active: state=%s err=%v", st, err)
	}
	if err := q.FinishCancelled(a.ID, "w", "partial"); err != nil {
		t.Fatal(err)
	}
	got, _ := q.Get(a.ID)
	if got.State != StateCancelled || got.Result != "partial" {
		t.Fatalf("cancelled job = %+v", got)
	}

	c, _ := q.Submit(nil)
	q.TryClaim("w")
	if err := q.Finish(c.ID, "w", "", errors.New("boom")); err != nil {
		t.Fatal(err)
	}
	if got, _ := q.Get(c.ID); got.State != StateFailed || got.Error != "boom" {
		t.Fatalf("failed job = %+v", got)
	}
}

// TestLeaseExpiry pins the crash-recovery semantics of claims: a worker
// that stops heartbeating loses the job; a worker that heartbeats keeps
// it; the stale worker's late transitions are rejected.
func TestLeaseExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	q := New(Options{Lease: 10 * time.Second, Now: clock})

	j, _ := q.Submit(nil)
	if _, ok := q.TryClaim("dead"); !ok {
		t.Fatal("claim failed")
	}

	// Within the lease nothing expires.
	now = now.Add(5 * time.Second)
	if n := q.ExpireLeases(); n != 0 {
		t.Fatalf("expired %d jobs inside lease", n)
	}
	// Heartbeat extends the lease.
	if err := q.Heartbeat(j.ID, "dead"); err != nil {
		t.Fatal(err)
	}
	now = now.Add(8 * time.Second)
	if n := q.ExpireLeases(); n != 0 {
		t.Fatalf("expired %d jobs after heartbeat", n)
	}
	// Silence past the lease loses the claim.
	now = now.Add(11 * time.Second)
	reclaimed, ok := q.TryClaim("alive")
	if !ok || reclaimed.ID != j.ID || reclaimed.Attempts != 2 {
		t.Fatalf("reclaim = %+v ok=%v", reclaimed, ok)
	}
	// The dead worker's late operations bounce.
	if err := q.Heartbeat(j.ID, "dead"); err == nil {
		t.Fatal("stale heartbeat accepted")
	}
	if err := q.Finish(j.ID, "dead", "", nil); err == nil {
		t.Fatal("stale finish accepted")
	}
	if err := q.Finish(j.ID, "alive", "ok", nil); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentClaiming hammers one queue with concurrent submitters and
// a worker pool under -race: every job must be executed exactly once.
func TestConcurrentClaiming(t *testing.T) {
	q := New(Options{Lease: time.Minute})
	const jobs = 200

	var executed atomic.Int64
	seen := make(map[string]int)
	var seenMu sync.Mutex
	pool := NewPool(q, 8, func(ctx context.Context, q *Queue, job Job) (string, error) {
		seenMu.Lock()
		seen[job.ID]++
		seenMu.Unlock()
		executed.Add(1)
		return "r:" + job.ID, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pool.Start(ctx)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < jobs/8; k++ {
				if _, err := q.Submit(json.RawMessage(fmt.Sprintf(`{"i":%d,"k":%d}`, i, k))); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c := q.Counts(); c[StateDone] == jobs {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	pool.Wait()

	if c := q.Counts(); c[StateDone] != jobs {
		t.Fatalf("counts = %v, want %d done", c, jobs)
	}
	if executed.Load() != jobs {
		t.Fatalf("executed %d times, want %d", executed.Load(), jobs)
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("job %s executed %d times", id, n)
		}
	}
	for _, j := range q.List() {
		if j.Result != "r:"+j.ID {
			t.Errorf("job %s result = %q", j.ID, j.Result)
		}
	}
}

// TestJournalRecovery pins the restart contract: done/failed/cancelled
// jobs survive with their results and are NOT re-run; jobs that were
// pending or mid-flight (claimed/running/paused) when the process died
// come back as pending and ARE re-run; new ids never collide with
// journaled ones.
func TestJournalRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")

	q1, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	done, _ := q1.Submit(json.RawMessage(`{"job":"done"}`))
	failed, _ := q1.Submit(json.RawMessage(`{"job":"failed"}`))
	running, _ := q1.Submit(json.RawMessage(`{"job":"running"}`))
	pending, _ := q1.Submit(json.RawMessage(`{"job":"pending"}`))

	q1.TryClaim("w")
	if err := q1.Finish(done.ID, "w", "artifacts/done", nil); err != nil {
		t.Fatal(err)
	}
	q1.TryClaim("w")
	if err := q1.Finish(failed.ID, "w", "", errors.New("exploded")); err != nil {
		t.Fatal(err)
	}
	q1.TryClaim("w")
	if err := q1.MarkRunning(running.ID, "w"); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: no Close, no settlement of the running job.

	q2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()

	if got, _ := q2.Get(done.ID); got.State != StateDone || got.Result != "artifacts/done" {
		t.Fatalf("done job after recovery = %+v", got)
	}
	if got, _ := q2.Get(failed.ID); got.State != StateFailed || got.Error != "exploded" {
		t.Fatalf("failed job after recovery = %+v", got)
	}
	if got, _ := q2.Get(running.ID); got.State != StatePending || got.Worker != "" {
		t.Fatalf("running job after recovery = %+v (want requeued)", got)
	}
	if got, _ := q2.Get(pending.ID); got.State != StatePending {
		t.Fatalf("pending job after recovery = %+v", got)
	}
	// Config payloads survive.
	if got, _ := q2.Get(running.ID); string(got.Config) != `{"job":"running"}` {
		t.Fatalf("config after recovery = %s", got.Config)
	}

	// Exactly the two non-terminal jobs are claimable, in order.
	first, ok1 := q2.TryClaim("w2")
	second, ok2 := q2.TryClaim("w2")
	_, ok3 := q2.TryClaim("w2")
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("claimable after recovery: %v %v %v, want true true false", ok1, ok2, ok3)
	}
	if first.ID != running.ID || second.ID != pending.ID {
		t.Fatalf("claim order after recovery: %s, %s", first.ID, second.ID)
	}

	// New ids continue past journaled ones.
	fresh, _ := q2.Submit(nil)
	if fresh.ID <= pending.ID {
		t.Fatalf("fresh id %s does not continue after %s", fresh.ID, pending.ID)
	}
}

// TestJournalTornTail pins that a crash mid-append (torn last line) does
// not poison recovery: the torn record is dropped, everything before it
// survives.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	q1, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := q1.Submit(json.RawMessage(`{"x":1}`))
	if err := q1.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"j000002","state":"pend`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	q2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("recovery choked on torn tail: %v", err)
	}
	defer q2.Close()
	if got, ok := q2.Get(a.ID); !ok || got.State != StatePending {
		t.Fatalf("job after torn-tail recovery = %+v ok=%v", got, ok)
	}
	if _, ok := q2.Get("j000002"); ok {
		t.Fatal("torn record resurrected")
	}
}

// TestPoolInterruption pins the graceful-shutdown path: a runner that
// reports ErrInterrupted gets its job released back to pending with the
// partial-progress note journaled.
func TestPoolInterruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	q, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := q.Submit(nil)

	started := make(chan struct{})
	pool := NewPool(q, 1, func(ctx context.Context, q *Queue, job Job) (string, error) {
		_ = q.MarkRunning(job.ID, "worker-0")
		close(started)
		<-ctx.Done()
		return "", fmt.Errorf("stopped at t=42 after 1000 events: %w", ErrInterrupted)
	})
	ctx, cancel := context.WithCancel(context.Background())
	pool.Start(ctx)
	<-started
	cancel()
	pool.Wait()

	got, _ := q.Get(j.ID)
	if got.State != StatePending {
		t.Fatalf("interrupted job state = %s, want pending", got.State)
	}
	if got.Note == "" || got.Worker != "" {
		t.Fatalf("interrupted job = %+v, want note and no worker", got)
	}
	q.Close()

	// The restarted queue re-runs it.
	q2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if re, ok := q2.TryClaim("w"); !ok || re.ID != j.ID {
		t.Fatalf("interrupted job not claimable after restart: %+v ok=%v", re, ok)
	}
}

// TestClaimBlocksUntilSubmit pins the blocking Claim path used by idle
// pool workers.
func TestClaimBlocksUntilSubmit(t *testing.T) {
	q := New(Options{})
	got := make(chan Job, 1)
	go func() {
		j, err := q.Claim(context.Background(), "w")
		if err != nil {
			t.Error(err)
		}
		got <- j
	}()
	time.Sleep(20 * time.Millisecond) // let the claimer block
	want, _ := q.Submit(nil)
	select {
	case j := <-got:
		if j.ID != want.ID {
			t.Fatalf("claimed %s, want %s", j.ID, want.ID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Claim did not wake on Submit")
	}

	// Claim respects context cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := q.Claim(ctx, "w")
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Claim did not wake on cancellation")
	}
}
