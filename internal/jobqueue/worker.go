package jobqueue

import (
	"context"
	"encoding/json"
	"errors"

	"repro/internal/distwork"
)

// ErrInterrupted is returned by a Runner whose job was interrupted by
// shutdown (the run context was cancelled without a job-level cancel).
// The pool releases such jobs back to pending — journaled with the
// runner's partial-progress note — so a restarted daemon re-runs them.
var ErrInterrupted = errors.New("jobqueue: interrupted by shutdown")

// A Runner executes one claimed job. It must return promptly when ctx is
// cancelled (shutdown). Contract:
//
//   - return (result, nil) for success → job done;
//   - return (partial, ErrInterrupted) — optionally wrapped — when ctx
//     stopped the run → job released back to pending;
//   - call q.FinishCancelled itself for an application-level cancel, and
//     return (_, ErrFinished) to tell the pool the job is already settled;
//   - any other error → job failed.
//
// The Runner is responsible for calling q.MarkRunning/MarkPaused and
// q.Heartbeat as it executes; the pool only claims and settles.
type Runner func(ctx context.Context, q *Queue, job Job) (result string, err error)

// ErrFinished tells the pool the runner already moved the job to a
// terminal state (e.g. FinishCancelled) and no settlement is needed.
var ErrFinished = errors.New("jobqueue: job already settled by runner")

// Pool runs claimed jobs on a fixed set of worker goroutines, sized to
// GOMAXPROCS by default, so hundreds of concurrent submissions share the
// machine fairly instead of each spawning its own simulation goroutine.
// It is a thin adapter over distwork.Pool translating this package's
// Runner contract (Job, jobqueue sentinels) to the core's.
type Pool struct {
	p *distwork.Pool[json.RawMessage]
}

// interruptNote carries a wrapped ErrInterrupted's message across the
// distwork boundary so the journaled partial-progress note keeps the
// runner's exact wording.
type interruptNote struct{ msg string }

func (e *interruptNote) Error() string { return e.msg }
func (e *interruptNote) Unwrap() error { return distwork.ErrInterrupted }

// NewPool creates a pool of n workers (n <= 0 selects GOMAXPROCS). When
// the queue carries a metrics registry, the pool exports its size and a
// live occupancy gauge.
func NewPool(q *Queue, n int, run Runner) *Pool {
	adapted := func(ctx context.Context, _ *distwork.Store[json.RawMessage], t distwork.Task[json.RawMessage]) (string, error) {
		result, err := run(ctx, q, jobOf(t))
		switch {
		case err == nil:
			return result, nil
		case errors.Is(err, ErrFinished):
			return result, distwork.ErrFinished
		case errors.Is(err, ErrInterrupted):
			if err.Error() == ErrInterrupted.Error() {
				return result, distwork.ErrInterrupted
			}
			return result, &interruptNote{msg: err.Error()}
		default:
			return result, err
		}
	}
	return &Pool{p: distwork.NewPool(q.s, n, adapted)}
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.p.Workers() }

// Start launches the workers. They claim and execute jobs until ctx is
// cancelled, then settle their current job (release-to-pending on
// interruption) and exit. Use Wait to block until all workers drained.
func (p *Pool) Start(ctx context.Context) { p.p.Start(ctx) }

// Wait blocks until every worker exited (after Start's ctx is cancelled).
func (p *Pool) Wait() { p.p.Wait() }
