package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrInterrupted is returned by a Runner whose job was interrupted by
// shutdown (the run context was cancelled without a job-level cancel).
// The pool releases such jobs back to pending — journaled with the
// runner's partial-progress note — so a restarted daemon re-runs them.
var ErrInterrupted = errors.New("jobqueue: interrupted by shutdown")

// A Runner executes one claimed job. It must return promptly when ctx is
// cancelled (shutdown). Contract:
//
//   - return (result, nil) for success → job done;
//   - return (partial, ErrInterrupted) — optionally wrapped — when ctx
//     stopped the run → job released back to pending;
//   - call q.FinishCancelled itself for an application-level cancel, and
//     return (_, ErrFinished) to tell the pool the job is already settled;
//   - any other error → job failed.
//
// The Runner is responsible for calling q.MarkRunning/MarkPaused and
// q.Heartbeat as it executes; the pool only claims and settles.
type Runner func(ctx context.Context, q *Queue, job Job) (result string, err error)

// ErrFinished tells the pool the runner already moved the job to a
// terminal state (e.g. FinishCancelled) and no settlement is needed.
var ErrFinished = errors.New("jobqueue: job already settled by runner")

// Pool runs claimed jobs on a fixed set of worker goroutines, sized to
// GOMAXPROCS by default, so hundreds of concurrent submissions share the
// machine fairly instead of each spawning its own simulation goroutine.
type Pool struct {
	queue   *Queue
	run     Runner
	workers int
	busy    atomic.Int64 // workers currently executing a claimed job

	wg sync.WaitGroup
}

// NewPool creates a pool of n workers (n <= 0 selects GOMAXPROCS). When
// the queue carries a metrics registry, the pool exports its size and a
// live occupancy gauge.
func NewPool(q *Queue, n int, run Runner) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{queue: q, run: run, workers: n}
	if reg := q.opts.Metrics; reg != nil {
		reg.Help("elastisimd_workers_busy", "pool workers currently executing a claimed job")
		reg.Gauge("elastisimd_workers", nil).Set(float64(n))
		reg.Gauge("elastisimd_workers_busy", func() float64 { return float64(p.busy.Load()) })
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Start launches the workers. They claim and execute jobs until ctx is
// cancelled, then settle their current job (release-to-pending on
// interruption) and exit. Use Wait to block until all workers drained.
func (p *Pool) Start(ctx context.Context) {
	for i := 0; i < p.workers; i++ {
		name := fmt.Sprintf("worker-%d", i)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.work(ctx, name)
		}()
	}
}

// Wait blocks until every worker exited (after Start's ctx is cancelled).
func (p *Pool) Wait() { p.wg.Wait() }

func (p *Pool) work(ctx context.Context, name string) {
	for {
		job, err := p.queue.Claim(ctx, name)
		if err != nil {
			return // ctx done or queue closed
		}
		p.busy.Add(1)
		result, runErr := p.run(ctx, p.queue, job)
		p.busy.Add(-1)
		// Settlement errors are tolerated: the only way these transitions
		// fail is the benign race where the job's lease expired mid-run
		// and a newer claim owns it — then the newer claim wins.
		switch {
		case runErr == nil:
			_ = p.queue.Finish(job.ID, name, result, nil)
		case errors.Is(runErr, ErrFinished):
			// Runner already settled the job (e.g. cancelled).
		case errors.Is(runErr, ErrInterrupted):
			note := "interrupted by shutdown; requeued"
			if msg := runErr.Error(); msg != ErrInterrupted.Error() {
				note = msg
			}
			_ = p.queue.Release(job.ID, name, note)
		default:
			_ = p.queue.Finish(job.ID, name, result, runErr)
		}
	}
}
