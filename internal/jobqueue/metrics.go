package jobqueue

import (
	"fmt"

	"repro/internal/obs"
)

// States lists every lifecycle state, in lifecycle order. Exported for
// consumers that enumerate per-state series (the daemon's /metrics).
var States = []State{
	StatePending, StateClaimed, StateRunning, StatePaused,
	StateDone, StateFailed, StateCancelled,
}

// queueMetrics holds the queue's precreated instruments. Every field is
// nil when observability is detached, and every obs method is nil-safe,
// so the hot paths carry no conditionals.
//
// Instruments are created here, up front, and never from inside a queue
// method: per-state gauges are callback-backed and take q.mu at scrape
// time, so creating a series while holding q.mu would invert the lock
// order against a concurrent scrape.
type queueMetrics struct {
	flight      *obs.FlightRecorder
	submitted   *obs.Counter
	claims      *obs.Counter
	expirations *obs.Counter
	heartbeats  *obs.Counter
	releases    *obs.Counter
	finished    map[State]*obs.Counter // terminal-state transitions
	fsync       *obs.Histogram
}

func newQueueMetrics(q *Queue, o Options) queueMetrics {
	m := queueMetrics{flight: o.Flight}
	reg := o.Metrics
	if reg == nil {
		return m
	}
	reg.Help("elastisimd_jobs", "jobs currently in each lifecycle state")
	reg.Help("elastisimd_jobs_finished_total", "jobs that reached a terminal state")
	reg.Help("elastisimd_lease_expirations_total", "claims lost to a lapsed lease and requeued")
	reg.Help("elastisimd_journal_fsync_seconds", "latency of one journaled transition (write+flush+fsync)")
	for _, st := range States {
		st := st
		reg.Gauge(fmt.Sprintf("elastisimd_jobs{state=%q}", st), func() float64 {
			return float64(q.countState(st))
		})
	}
	m.submitted = reg.Counter("elastisimd_jobs_submitted_total")
	m.claims = reg.Counter("elastisimd_job_claims_total")
	m.expirations = reg.Counter("elastisimd_lease_expirations_total")
	m.heartbeats = reg.Counter("elastisimd_heartbeats_total")
	m.releases = reg.Counter("elastisimd_job_releases_total")
	m.finished = make(map[State]*obs.Counter)
	for _, st := range []State{StateDone, StateFailed, StateCancelled} {
		m.finished[st] = reg.Counter(fmt.Sprintf("elastisimd_jobs_finished_total{state=%q}", st))
	}
	m.fsync = reg.Histogram("elastisimd_journal_fsync_seconds", obs.DefLatencyBuckets)
	return m
}

// countState tallies jobs currently in state st (sampled at scrape time
// by the per-state callback gauges — the gauge reads the store the queue
// already maintains instead of keeping a parallel count).
func (q *Queue) countState(st State) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, j := range q.jobs {
		if j.State == st {
			n++
		}
	}
	return n
}
