package jobqueue

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// The journal is a JSONL file of job snapshots: every state transition
// appends the job's full record, so the last line per job id is its
// authoritative state. Recovery is a replay keeping the last record of
// each id; compaction rewrites the file with exactly one line per job.
//
// Full-record snapshots (rather than deltas) keep recovery trivial and
// make the journal greppable operational evidence: `grep j000017
// journal.jsonl` is the job's complete history.

type journal struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	err   error          // first write error; subsequent appends are dropped
	fsync *obs.Histogram // per-append write+flush+fsync latency (nil = detached)
}

// replayJournal reads the journal at path (missing file = empty queue)
// and reconstructs the job set: the last record per id wins, jobs that
// were active when the writing process died are requeued as pending, and
// the highest id sequence number is returned so new ids never collide.
func replayJournal(path string) (map[string]*Job, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()
	jobs := make(map[string]*Job)
	var maxSeq uint64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // configs can be large
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var j Job
		if err := json.Unmarshal([]byte(text), &j); err != nil {
			// A torn final line (crash mid-append) is expected; anything
			// else is corruption worth surfacing.
			if line == countLines(path) {
				break
			}
			return nil, 0, fmt.Errorf("jobqueue: journal %s line %d: %w", path, line, err)
		}
		if j.ID == "" || !j.State.Valid() {
			return nil, 0, fmt.Errorf("jobqueue: journal %s line %d: invalid record", path, line)
		}
		cp := j
		jobs[j.ID] = &cp
		if seq, ok := parseSeq(j.ID); ok && seq > maxSeq {
			maxSeq = seq
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("jobqueue: reading journal %s: %w", path, err)
	}
	// Requeue jobs the dead process still owned.
	for _, j := range jobs {
		if j.State.Active() {
			j.State = StatePending
			j.Worker = ""
			j.Lease = time.Time{}
			j.Note = "recovered after restart; requeued"
		}
	}
	return jobs, maxSeq, nil
}

// countLines counts newline-terminated plus trailing partial lines; used
// only to distinguish a torn final record from mid-file corruption.
func countLines(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return -1
	}
	n := strings.Count(string(data), "\n")
	if len(data) > 0 && !strings.HasSuffix(string(data), "\n") {
		n++
	}
	return n
}

func parseSeq(id string) (uint64, bool) {
	if !strings.HasPrefix(id, "j") {
		return 0, false
	}
	n, err := strconv.ParseUint(id[1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// newJournal creates (or compacts) the journal at path, writing one
// snapshot line per existing job, and returns it ready for appends. The
// compacted file is written to a temp file and renamed into place, so a
// crash during compaction never loses the previous journal.
func newJournal(path string, jobs []*Job) (*journal, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(f)
	for _, j := range jobs {
		if err := writeRecord(w, j); err != nil {
			f.Close()
			os.Remove(tmp)
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: af, w: bufio.NewWriter(af)}, nil
}

func writeRecord(w *bufio.Writer, j *Job) error {
	data, err := json.Marshal(j)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// append journals the job's current state. Appends are flushed and synced
// per transition: transitions are rare (per job lifecycle, not per event)
// and durability is the point of the journal.
func (jr *journal) append(j *Job) {
	jr.mu.Lock()
	defer jr.mu.Unlock()
	if jr.err != nil {
		return
	}
	var start time.Time
	if jr.fsync != nil {
		start = time.Now()
	}
	if err := writeRecord(jr.w, j); err != nil {
		jr.err = err
		return
	}
	if err := jr.w.Flush(); err != nil {
		jr.err = err
		return
	}
	jr.err = jr.f.Sync()
	if jr.fsync != nil {
		jr.fsync.Observe(time.Since(start).Seconds())
	}
}

func (jr *journal) close() error {
	jr.mu.Lock()
	defer jr.mu.Unlock()
	err := jr.err
	if ferr := jr.w.Flush(); err == nil {
		err = ferr
	}
	if serr := jr.f.Sync(); err == nil {
		err = serr
	}
	if cerr := jr.f.Close(); err == nil {
		err = cerr
	}
	jr.f = nil
	return err
}
