package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/job"
)

// JobStatus is a job's terminal outcome.
type JobStatus string

// Job completion statuses.
const (
	// StatusCompleted: the job ran its application to the end.
	StatusCompleted JobStatus = "completed"
	// StatusKilledWalltime: the engine killed the job at its walltime
	// limit.
	StatusKilledWalltime JobStatus = "killed-walltime"
	// StatusKilledScheduler: a scheduler kill decision terminated the job
	// (running or still pending).
	StatusKilledScheduler JobStatus = "killed-by-scheduler"
	// StatusFailedNode: a node failure killed the job and it was not (or
	// could no longer be) requeued.
	StatusFailedNode JobStatus = "failed-node"
	// StatusRequeued: the job lost a node and is back in the queue; this
	// is a transient status, overwritten by the terminal one when the job
	// eventually finishes.
	StatusRequeued JobStatus = "requeued"
)

// Failed reports whether the status is a terminal non-success.
func (s JobStatus) Failed() bool {
	return s != "" && s != StatusCompleted && s != StatusRequeued
}

// JobRecord is the per-job outcome of a simulation.
type JobRecord struct {
	ID   job.ID   `json:"id"`
	Name string   `json:"name"`
	Type job.Type `json:"type"`
	// User is the submitting account ("" when unattributed).
	User string `json:"user,omitempty"`
	// Submit, Start and End are simulation timestamps in seconds. Start is
	// negative while the job has not started, End while it has not ended.
	Submit float64 `json:"submit"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	// Killed reports any non-completed termination (walltime, scheduler
	// kill, node failure). Status carries the distinction.
	Killed bool `json:"killed,omitempty"`
	// Status is the job's completion status ("" while unfinished,
	// "requeued" while waiting to restart after a node failure).
	Status JobStatus `json:"status,omitempty"`
	// Requeues counts node-failure resubmissions of this job.
	Requeues int `json:"requeues,omitempty"`
	// BadputNodeSeconds is capacity the job consumed and lost to node
	// failures (work since the last checkpoint at each kill, and the
	// current iteration at each shrink-through-failure).
	BadputNodeSeconds float64 `json:"badput_node_seconds,omitempty"`
	// NodeSeconds integrates the allocation size over the job's runtime.
	NodeSeconds float64 `json:"node_seconds"`
	// Reconfigs counts applied allocation changes.
	Reconfigs int `json:"reconfigs,omitempty"`
	// InitialNodes/FinalNodes/PeakNodes describe the allocation history.
	InitialNodes int `json:"initial_nodes"`
	FinalNodes   int `json:"final_nodes"`
	PeakNodes    int `json:"peak_nodes"`
	// RequestedNodes and WallTime echo the request (for SWF export).
	RequestedNodes int     `json:"requested_nodes"`
	WallTime       float64 `json:"walltime,omitempty"`

	lastChange float64
	curNodes   int
}

// Wait returns the queueing delay.
func (r *JobRecord) Wait() float64 { return r.Start - r.Submit }

// Runtime returns the execution time.
func (r *JobRecord) Runtime() float64 { return r.End - r.Start }

// Turnaround returns submission-to-completion time.
func (r *JobRecord) Turnaround() float64 { return r.End - r.Submit }

// BoundedSlowdown returns the bounded slowdown with the conventional
// 10-second threshold: max(1, turnaround / max(runtime, 10)).
func (r *JobRecord) BoundedSlowdown() float64 {
	const tau = 10.0
	denom := r.Runtime()
	if denom < tau {
		denom = tau
	}
	s := r.Turnaround() / denom
	if s < 1 {
		return 1
	}
	return s
}

// GanttEntry is one allocation segment of a job (between reconfigurations).
type GanttEntry struct {
	Job   job.ID  `json:"job"`
	Name  string  `json:"name"`
	Nodes int     `json:"nodes"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Outage is one failure/repair interval of a node. End is negative while
// the outage is still open at the end of the simulation.
type Outage struct {
	Node  int     `json:"node"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// ReconfigMark is one applied allocation change, for overlaying
// reconfiguration markers on visualizations.
type ReconfigMark struct {
	Job  job.ID  `json:"job"`
	T    float64 `json:"t"`
	From int     `json:"from"`
	To   int     `json:"to"`
}

// Recorder accumulates statistics during a simulation run. It is driven by
// the engine's lifecycle callbacks.
type Recorder struct {
	totalNodes int
	records    map[job.ID]*JobRecord
	order      []job.ID
	busy       Timeline // allocated nodes
	queued     Timeline // jobs waiting
	down       Timeline // failed nodes (availability)
	gantt      []GanttEntry
	reconfigs  int
	finalTime  float64

	// Resilience counters.
	nodeFailures int
	requeues     int
	badput       float64
	outages      []Outage
	reconfMarks  []ReconfigMark
}

// NewRecorder creates a recorder for a machine of totalNodes nodes.
func NewRecorder(totalNodes int) *Recorder {
	return &Recorder{totalNodes: totalNodes, records: map[job.ID]*JobRecord{}}
}

func (rec *Recorder) get(id job.ID) *JobRecord {
	r, ok := rec.records[id]
	if !ok {
		panic(fmt.Sprintf("metrics: unknown job %d", id))
	}
	return r
}

// JobSubmitted registers a job entering the queue.
func (rec *Recorder) JobSubmitted(j *job.Job, t float64) {
	if _, dup := rec.records[j.ID]; dup {
		panic(fmt.Sprintf("metrics: job %d submitted twice", j.ID))
	}
	rec.records[j.ID] = &JobRecord{
		ID: j.ID, Name: j.Label(), Type: j.Type, User: j.User,
		Submit: t, Start: -1, End: -1,
		RequestedNodes: j.MinNodes(), WallTime: j.WallTimeLimit,
	}
	rec.order = append(rec.order, j.ID)
	rec.queued.Add(t, 1)
}

// JobStarted registers a job beginning execution on nodes. A restart
// after a node-failure requeue keeps the original Start and InitialNodes
// (Wait measures the initial queueing delay).
func (rec *Recorder) JobStarted(id job.ID, t float64, nodes int) {
	r := rec.get(id)
	if r.Start < 0 {
		r.Start = t
		r.InitialNodes = nodes
	}
	if nodes > r.PeakNodes {
		r.PeakNodes = nodes
	}
	r.curNodes = nodes
	r.lastChange = t
	rec.queued.Add(t, -1)
	rec.busy.Add(t, float64(nodes))
}

// JobReconfigured registers an applied allocation change.
func (rec *Recorder) JobReconfigured(id job.ID, t float64, newNodes int) {
	r := rec.get(id)
	rec.reconfMarks = append(rec.reconfMarks, ReconfigMark{Job: id, T: t, From: r.curNodes, To: newNodes})
	r.NodeSeconds += float64(r.curNodes) * (t - r.lastChange)
	rec.busy.Add(t, float64(newNodes-r.curNodes))
	r.curNodes = newNodes
	r.lastChange = t
	r.Reconfigs++
	rec.reconfigs++
	if newNodes > r.PeakNodes {
		r.PeakNodes = newNodes
	}
}

// JobFinished registers a terminal outcome with the given status.
func (rec *Recorder) JobFinished(id job.ID, t float64, status JobStatus) {
	r := rec.get(id)
	r.NodeSeconds += float64(r.curNodes) * (t - r.lastChange)
	rec.busy.Add(t, -float64(r.curNodes))
	r.End = t
	r.Status = status
	r.Killed = status != StatusCompleted
	r.FinalNodes = r.curNodes
	r.curNodes = 0
	if t > rec.finalTime {
		rec.finalTime = t
	}
}

// JobFailed registers a running job being torn off its nodes by a node
// failure. lost is the badput (node-seconds of work that must be redone,
// i.e. consumed since the last checkpoint). The job is NOT terminal yet:
// follow with JobRequeued (resubmission) or JobFinished with
// StatusFailedNode (dropped).
func (rec *Recorder) JobFailed(id job.ID, t float64, lost float64) {
	r := rec.get(id)
	r.NodeSeconds += float64(r.curNodes) * (t - r.lastChange)
	rec.busy.Add(t, -float64(r.curNodes))
	r.curNodes = 0
	r.lastChange = t
	if lost > 0 {
		r.BadputNodeSeconds += lost
		rec.badput += lost
	}
}

// JobLostWork charges badput without touching the allocation (a shrink
// through a failure redoes the interrupted iteration in place).
func (rec *Recorder) JobLostWork(id job.ID, lost float64) {
	if lost <= 0 {
		return
	}
	r := rec.get(id)
	r.BadputNodeSeconds += lost
	rec.badput += lost
}

// JobRequeued registers a failed job re-entering the queue.
func (rec *Recorder) JobRequeued(id job.ID, t float64) {
	r := rec.get(id)
	r.Requeues++
	r.Status = StatusRequeued
	rec.requeues++
	rec.queued.Add(t, 1)
}

// NodeDown registers a node failure (availability timeline, counter, and
// the node's outage interval).
func (rec *Recorder) NodeDown(node int, t float64) {
	rec.nodeFailures++
	rec.down.Add(t, 1)
	rec.outages = append(rec.outages, Outage{Node: node, Start: t, End: -1})
}

// NodeUp registers a node repair, closing the node's open outage.
func (rec *Recorder) NodeUp(node int, t float64) {
	rec.down.Add(t, -1)
	for i := len(rec.outages) - 1; i >= 0; i-- {
		if rec.outages[i].Node == node && rec.outages[i].End < 0 {
			rec.outages[i].End = t
			return
		}
	}
}

// JobAbandoned registers a job killed while still pending (never started).
func (rec *Recorder) JobAbandoned(id job.ID, t float64) {
	r := rec.get(id)
	if r.Start >= 0 {
		panic(fmt.Sprintf("metrics: job %d abandoned after start", id))
	}
	rec.queued.Add(t, -1)
	r.End = t
	r.Killed = true
	r.Status = StatusKilledScheduler
	if t > rec.finalTime {
		rec.finalTime = t
	}
}

// AddGantt records one allocation segment for trace export.
func (rec *Recorder) AddGantt(id job.ID, name string, nodes int, start, end float64) {
	rec.gantt = append(rec.gantt, GanttEntry{Job: id, Name: name, Nodes: nodes, Start: start, End: end})
}

// Records returns all job records in submission order.
func (rec *Recorder) Records() []*JobRecord {
	out := make([]*JobRecord, 0, len(rec.order))
	for _, id := range rec.order {
		out = append(out, rec.records[id])
	}
	return out
}

// Record returns one job's record, or nil.
func (rec *Recorder) Record(id job.ID) *JobRecord { return rec.records[id] }

// BusyTimeline returns the allocated-nodes step function.
func (rec *Recorder) BusyTimeline() *Timeline { return &rec.busy }

// QueueTimeline returns the queued-jobs step function.
func (rec *Recorder) QueueTimeline() *Timeline { return &rec.queued }

// DownTimeline returns the failed-nodes step function (all zeros without a
// failure model).
func (rec *Recorder) DownTimeline() *Timeline { return &rec.down }

// Gantt returns the recorded allocation segments.
func (rec *Recorder) Gantt() []GanttEntry { return rec.gantt }

// Outages returns the recorded node failure intervals, in failure order.
func (rec *Recorder) Outages() []Outage { return rec.outages }

// ReconfigMarks returns the applied allocation changes, in time order.
func (rec *Recorder) ReconfigMarks() []ReconfigMark { return rec.reconfMarks }

// TotalNodes returns the machine size.
func (rec *Recorder) TotalNodes() int { return rec.totalNodes }

// Summary aggregates the run.
type Summary struct {
	// Jobs is the number of submitted jobs; Completed/Killed partition the
	// finished ones.
	Jobs      int `json:"jobs"`
	Completed int `json:"completed"`
	Killed    int `json:"killed"`
	// Makespan is the completion time of the last job.
	Makespan float64 `json:"makespan"`
	// Utilization is busy node-seconds over totalNodes * makespan.
	Utilization float64 `json:"utilization"`
	// MeanWait/P95Wait describe queueing delay (finished jobs only).
	MeanWait float64 `json:"mean_wait"`
	P95Wait  float64 `json:"p95_wait"`
	// MeanTurnaround is submission-to-completion.
	MeanTurnaround float64 `json:"mean_turnaround"`
	// MeanSlowdown and MaxSlowdown are bounded slowdowns.
	MeanSlowdown float64 `json:"mean_slowdown"`
	MaxSlowdown  float64 `json:"max_slowdown"`
	// Reconfigs counts malleable/evolving allocation changes.
	Reconfigs int `json:"reconfigs"`
	// NodeSeconds is total busy capacity.
	NodeSeconds float64 `json:"node_seconds"`

	// Resilience aggregates (all zero without a failure model).
	// KilledWalltime/KilledByScheduler/FailedNode break Killed down by
	// status.
	KilledWalltime    int `json:"killed_walltime,omitempty"`
	KilledByScheduler int `json:"killed_by_scheduler,omitempty"`
	FailedNode        int `json:"failed_node,omitempty"`
	// NodeFailures counts node-down events; Requeues counts job
	// resubmissions after failures.
	NodeFailures int `json:"node_failures,omitempty"`
	Requeues     int `json:"requeues,omitempty"`
	// DownNodeSeconds integrates lost capacity (down nodes × time);
	// Availability is 1 − DownNodeSeconds/(totalNodes × makespan).
	DownNodeSeconds float64 `json:"down_node_seconds,omitempty"`
	Availability    float64 `json:"availability"`
	// BadputNodeSeconds is consumed-then-lost capacity (work redone after
	// failures); GoodputNodeSeconds = NodeSeconds − BadputNodeSeconds.
	BadputNodeSeconds  float64 `json:"badput_node_seconds,omitempty"`
	GoodputNodeSeconds float64 `json:"goodput_node_seconds,omitempty"`
}

// Summary computes aggregates over finished jobs.
func (rec *Recorder) Summary() Summary {
	s := Summary{Jobs: len(rec.records), Reconfigs: rec.reconfigs, Makespan: rec.finalTime}
	var waits, slowdowns []float64
	var turnSum float64
	for _, id := range rec.order {
		r := rec.records[id]
		if r.End < 0 {
			continue
		}
		if r.Killed {
			s.Killed++
		} else {
			s.Completed++
		}
		switch r.Status {
		case StatusKilledWalltime:
			s.KilledWalltime++
		case StatusKilledScheduler:
			s.KilledByScheduler++
		case StatusFailedNode:
			s.FailedNode++
		}
		if r.Start < 0 {
			continue // abandoned before starting: no wait/slowdown stats
		}
		waits = append(waits, r.Wait())
		slowdowns = append(slowdowns, r.BoundedSlowdown())
		turnSum += r.Turnaround()
		s.NodeSeconds += r.NodeSeconds
	}
	n := len(waits)
	if n > 0 {
		s.MeanWait = mean(waits)
		s.P95Wait = percentile(waits, 0.95)
		s.MeanTurnaround = turnSum / float64(n)
		s.MeanSlowdown = mean(slowdowns)
		s.MaxSlowdown = maxOf(slowdowns)
	}
	s.NodeFailures = rec.nodeFailures
	s.Requeues = rec.requeues
	s.BadputNodeSeconds = rec.badput
	s.GoodputNodeSeconds = s.NodeSeconds - s.BadputNodeSeconds
	s.Availability = 1
	if rec.finalTime > 0 && rec.totalNodes > 0 {
		s.Utilization = rec.busy.Integral(0, rec.finalTime) / (float64(rec.totalNodes) * rec.finalTime)
		s.DownNodeSeconds = rec.down.Integral(0, rec.finalTime)
		s.Availability = 1 - s.DownNodeSeconds/(float64(rec.totalNodes)*rec.finalTime)
	}
	return s
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// percentile returns the p-quantile (0..1) using nearest-rank on a sorted
// copy.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// WriteJobsCSV emits one row per finished job.
func (rec *Recorder) WriteJobsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "id,name,type,submit,start,end,wait,runtime,turnaround,slowdown,nodes_initial,nodes_final,nodes_peak,reconfigs,node_seconds,killed,status,requeues,badput_node_seconds"); err != nil {
		return err
	}
	for _, id := range rec.order {
		r := rec.records[id]
		if r.End < 0 {
			continue
		}
		status := r.Status
		if status == "" {
			status = StatusCompleted
		}
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%g,%g,%g,%g,%g,%g,%g,%d,%d,%d,%d,%g,%t,%s,%d,%g\n",
			r.ID, r.Name, r.Type, r.Submit, r.Start, r.End,
			r.Wait(), r.Runtime(), r.Turnaround(), r.BoundedSlowdown(),
			r.InitialNodes, r.FinalNodes, r.PeakNodes, r.Reconfigs, r.NodeSeconds, r.Killed,
			status, r.Requeues, r.BadputNodeSeconds); err != nil {
			return err
		}
	}
	return nil
}

// WriteGanttJSON emits the allocation segments as JSON.
func (rec *Recorder) WriteGanttJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec.gantt)
}

// GroupStats aggregates finished jobs within one group (see GroupSummary).
type GroupStats struct {
	Jobs           int     `json:"jobs"`
	Completed      int     `json:"completed"`
	Killed         int     `json:"killed"`
	MeanWait       float64 `json:"mean_wait"`
	MeanTurnaround float64 `json:"mean_turnaround"`
	MeanSlowdown   float64 `json:"mean_slowdown"`
	NodeSeconds    float64 `json:"node_seconds"`
}

// GroupSummary aggregates finished jobs by an arbitrary key — pass
// ByType or ByUser (or your own function) to break batch metrics down by
// flexibility class or account.
func (rec *Recorder) GroupSummary(key func(*JobRecord) string) map[string]GroupStats {
	acc := map[string]*GroupStats{}
	for _, id := range rec.order {
		r := rec.records[id]
		if r.End < 0 {
			continue
		}
		k := key(r)
		g := acc[k]
		if g == nil {
			g = &GroupStats{}
			acc[k] = g
		}
		g.Jobs++
		if r.Killed {
			g.Killed++
		} else {
			g.Completed++
		}
		if r.Start < 0 {
			continue
		}
		g.MeanWait += r.Wait()
		g.MeanTurnaround += r.Turnaround()
		g.MeanSlowdown += r.BoundedSlowdown()
		g.NodeSeconds += r.NodeSeconds
	}
	out := make(map[string]GroupStats, len(acc))
	for k, g := range acc {
		started := float64(g.Jobs - abandonedCount(rec, k, key))
		if started > 0 {
			g.MeanWait /= started
			g.MeanTurnaround /= started
			g.MeanSlowdown /= started
		}
		out[k] = *g
	}
	return out
}

func abandonedCount(rec *Recorder, k string, key func(*JobRecord) string) int {
	n := 0
	for _, id := range rec.order {
		r := rec.records[id]
		if r.End >= 0 && r.Start < 0 && key(r) == k {
			n++
		}
	}
	return n
}

// ByType keys GroupSummary by flexibility class.
func ByType(r *JobRecord) string { return string(r.Type) }

// ByUser keys GroupSummary by account ("(none)" when unattributed).
func ByUser(r *JobRecord) string {
	if r.User == "" {
		return "(none)"
	}
	return r.User
}

// WriteSWF exports finished jobs in the Standard Workload Format, the
// interchange format other batch simulators and the Parallel Workloads
// Archive consume. Node counts are scaled by coresPerNode into processor
// counts; killed jobs carry status 0 (failed), completed ones status 1.
// Adaptive jobs report their initial allocation as used processors (SWF
// has no notion of reconfiguration).
func (rec *Recorder) WriteSWF(w io.Writer, coresPerNode int) error {
	if coresPerNode <= 0 {
		coresPerNode = 1
	}
	if _, err := fmt.Fprintln(w, "; generated by elastisim-go"); err != nil {
		return err
	}
	for _, id := range rec.order {
		r := rec.records[id]
		if r.End < 0 || r.Start < 0 {
			continue
		}
		status := 1
		if r.Killed {
			status = 0
		}
		reqTime := -1.0
		if r.WallTime > 0 {
			reqTime = r.WallTime
		}
		// Fields: id submit wait run usedProcs avgCPU usedMem reqProcs
		// reqTime reqMem status user group app queue partition preceding
		// think.
		if _, err := fmt.Fprintf(w, "%d %.0f %.0f %.0f %d -1 -1 %d %.0f -1 %d -1 -1 -1 -1 -1 -1 -1\n",
			int(r.ID)+1, r.Submit, r.Wait(), r.Runtime(),
			r.InitialNodes*coresPerNode, r.RequestedNodes*coresPerNode,
			reqTime, status); err != nil {
			return err
		}
	}
	return nil
}
