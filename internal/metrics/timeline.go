// Package metrics collects and summarizes batch-system statistics:
// per-job records (wait, turnaround, slowdown), cluster utilization
// timelines, Gantt traces, and the aggregate summaries the experiment
// harness prints.
package metrics

import (
	"fmt"
	"io"
	"sort"
)

// Timeline is a right-continuous step function of time, built by applying
// deltas at timestamps. It tracks quantities like "busy nodes" or "queued
// jobs".
type Timeline struct {
	times  []float64
	values []float64 // value from times[i] (inclusive) until times[i+1]
	cur    float64
}

// Add applies a delta at time t. Calls must use non-decreasing t.
func (tl *Timeline) Add(t, delta float64) {
	if n := len(tl.times); n > 0 && t < tl.times[n-1] {
		panic(fmt.Sprintf("metrics: timeline update at %v before %v", t, tl.times[n-1]))
	}
	tl.cur += delta
	if n := len(tl.times); n > 0 && tl.times[n-1] == t {
		tl.values[n-1] = tl.cur
		return
	}
	tl.times = append(tl.times, t)
	tl.values = append(tl.values, tl.cur)
}

// Set records an absolute value at time t.
func (tl *Timeline) Set(t, value float64) {
	tl.Add(t, value-tl.cur)
}

// Current returns the latest value.
func (tl *Timeline) Current() float64 { return tl.cur }

// Len returns the number of change points.
func (tl *Timeline) Len() int { return len(tl.times) }

// At returns the value at time t (0 before the first change point).
func (tl *Timeline) At(t float64) float64 {
	i := sort.SearchFloat64s(tl.times, t)
	// i is the first index with times[i] >= t.
	if i < len(tl.times) && tl.times[i] == t {
		return tl.values[i]
	}
	if i == 0 {
		return 0
	}
	return tl.values[i-1]
}

// Integral returns the integral of the step function over [a, b].
func (tl *Timeline) Integral(a, b float64) float64 {
	if b <= a || len(tl.times) == 0 {
		return 0
	}
	total := 0.0
	for i := range tl.times {
		segStart := tl.times[i]
		segEnd := b
		if i+1 < len(tl.times) {
			segEnd = tl.times[i+1]
		}
		lo := max(segStart, a)
		hi := min(segEnd, b)
		if hi > lo {
			total += tl.values[i] * (hi - lo)
		}
		if segStart >= b {
			break
		}
	}
	return total
}

// Mean returns the time-weighted average over [a, b].
func (tl *Timeline) Mean(a, b float64) float64 {
	if b <= a {
		return 0
	}
	return tl.Integral(a, b) / (b - a)
}

// Max returns the maximum value attained in [a, b].
func (tl *Timeline) Max(a, b float64) float64 {
	maxV := tl.At(a)
	for i, t := range tl.times {
		if t >= a && t < b && tl.values[i] > maxV {
			maxV = tl.values[i]
		}
	}
	return maxV
}

// Sample evaluates the timeline at n+1 evenly spaced points across [a, b],
// for plotting.
func (tl *Timeline) Sample(a, b float64, n int) []Point {
	if n < 1 {
		n = 1
	}
	out := make([]Point, 0, n+1)
	for i := 0; i <= n; i++ {
		t := a + (b-a)*float64(i)/float64(n)
		out = append(out, Point{T: t, V: tl.At(t)})
	}
	return out
}

// Points returns the raw change points.
func (tl *Timeline) Points() []Point {
	out := make([]Point, len(tl.times))
	for i := range tl.times {
		out[i] = Point{T: tl.times[i], V: tl.values[i]}
	}
	return out
}

// Point is one (time, value) pair.
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// WriteCSV emits the change points as "time,value" rows.
func (tl *Timeline) WriteCSV(w io.Writer, header string) error {
	if _, err := fmt.Fprintf(w, "time,%s\n", header); err != nil {
		return err
	}
	for i := range tl.times {
		if _, err := fmt.Fprintf(w, "%g,%g\n", tl.times[i], tl.values[i]); err != nil {
			return err
		}
	}
	return nil
}
