package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/job"
)

func TestTimelineBasics(t *testing.T) {
	var tl Timeline
	tl.Add(0, 4)
	tl.Add(10, -2)
	tl.Add(20, 6)
	if tl.Current() != 8 {
		t.Errorf("Current = %v", tl.Current())
	}
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 4}, {5, 4}, {10, 2}, {15, 2}, {20, 8}, {100, 8},
	}
	for _, tc := range cases {
		if got := tl.At(tc.t); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestTimelineIntegral(t *testing.T) {
	var tl Timeline
	tl.Add(0, 4)
	tl.Add(10, -2) // value 2 on [10,20)
	tl.Add(20, 6)  // value 8 from 20
	if got := tl.Integral(0, 10); got != 40 {
		t.Errorf("Integral(0,10) = %v, want 40", got)
	}
	if got := tl.Integral(0, 20); got != 60 {
		t.Errorf("Integral(0,20) = %v, want 60", got)
	}
	if got := tl.Integral(5, 15); got != 30 {
		t.Errorf("Integral(5,15) = %v, want 30", got)
	}
	if got := tl.Integral(0, 25); got != 100 {
		t.Errorf("Integral(0,25) = %v, want 100", got)
	}
	if got := tl.Integral(25, 25); got != 0 {
		t.Errorf("empty integral = %v", got)
	}
	if got := tl.Mean(0, 20); got != 3 {
		t.Errorf("Mean(0,20) = %v, want 3", got)
	}
}

func TestTimelineSameTimestampMerges(t *testing.T) {
	var tl Timeline
	tl.Add(5, 3)
	tl.Add(5, 2)
	if tl.Len() != 1 {
		t.Errorf("Len = %d, want 1 (merged)", tl.Len())
	}
	if tl.At(5) != 5 {
		t.Errorf("At(5) = %v, want 5", tl.At(5))
	}
}

func TestTimelineOutOfOrderPanics(t *testing.T) {
	var tl Timeline
	tl.Add(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Add did not panic")
		}
	}()
	tl.Add(4, 1)
}

func TestTimelineSetAndMax(t *testing.T) {
	var tl Timeline
	tl.Set(0, 3)
	tl.Set(10, 7)
	tl.Set(20, 1)
	if tl.Max(0, 30) != 7 {
		t.Errorf("Max = %v", tl.Max(0, 30))
	}
	if tl.Max(0, 9) != 3 {
		t.Errorf("Max(0,9) = %v", tl.Max(0, 9))
	}
}

func TestTimelineSample(t *testing.T) {
	var tl Timeline
	tl.Add(0, 1)
	tl.Add(50, 1)
	pts := tl.Sample(0, 100, 4)
	if len(pts) != 5 {
		t.Fatalf("samples %d, want 5", len(pts))
	}
	want := []float64{1, 1, 2, 2, 2}
	for i := range pts {
		if pts[i].V != want[i] {
			t.Errorf("sample %d = %v, want %v", i, pts[i].V, want[i])
		}
	}
}

func TestTimelineCSV(t *testing.T) {
	var tl Timeline
	tl.Add(0, 2)
	tl.Add(1.5, 1)
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf, "busy"); err != nil {
		t.Fatal(err)
	}
	want := "time,busy\n0,2\n1.5,3\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

// Property: the integral over [0,T] equals the sum of deltas weighted by
// their remaining duration.
func TestTimelineIntegralProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := des.NewRNG(seed)
		var tl Timeline
		type delta struct{ t, v float64 }
		var deltas []delta
		now := 0.0
		for i := 0; i < 20; i++ {
			now += rng.Range(0, 5)
			v := rng.Range(-3, 3)
			tl.Add(now, v)
			deltas = append(deltas, delta{now, v})
		}
		horizon := now + 10
		want := 0.0
		for _, d := range deltas {
			want += d.v * (horizon - d.t)
		}
		got := tl.Integral(0, horizon)
		return math.Abs(got-want) < 1e-6*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func makeJob(id int, typ job.Type) *job.Job {
	return &job.Job{ID: job.ID(id), Name: "", Type: typ}
}

func TestRecorderLifecycle(t *testing.T) {
	rec := NewRecorder(16)
	j := makeJob(0, job.Rigid)
	rec.JobSubmitted(j, 0)
	rec.JobStarted(j.ID, 10, 4)
	rec.JobFinished(j.ID, 110, StatusCompleted)
	r := rec.Record(j.ID)
	if r.Wait() != 10 {
		t.Errorf("Wait = %v", r.Wait())
	}
	if r.Runtime() != 100 {
		t.Errorf("Runtime = %v", r.Runtime())
	}
	if r.Turnaround() != 110 {
		t.Errorf("Turnaround = %v", r.Turnaround())
	}
	if r.NodeSeconds != 400 {
		t.Errorf("NodeSeconds = %v", r.NodeSeconds)
	}
	s := rec.Summary()
	if s.Completed != 1 || s.Killed != 0 || s.Jobs != 1 {
		t.Errorf("summary counts: %+v", s)
	}
	if s.Makespan != 110 {
		t.Errorf("makespan %v", s.Makespan)
	}
	// Utilization: 400 node-seconds over 16*110.
	want := 400.0 / (16 * 110)
	if math.Abs(s.Utilization-want) > 1e-12 {
		t.Errorf("utilization %v, want %v", s.Utilization, want)
	}
}

func TestRecorderReconfiguration(t *testing.T) {
	rec := NewRecorder(32)
	j := makeJob(0, job.Malleable)
	rec.JobSubmitted(j, 0)
	rec.JobStarted(j.ID, 0, 4)
	rec.JobReconfigured(j.ID, 50, 12)
	rec.JobReconfigured(j.ID, 80, 2)
	rec.JobFinished(j.ID, 100, StatusCompleted)
	r := rec.Record(j.ID)
	// 4*50 + 12*30 + 2*20 = 200 + 360 + 40 = 600.
	if r.NodeSeconds != 600 {
		t.Errorf("NodeSeconds = %v, want 600", r.NodeSeconds)
	}
	if r.InitialNodes != 4 || r.FinalNodes != 2 || r.PeakNodes != 12 {
		t.Errorf("allocation history %d/%d/%d", r.InitialNodes, r.FinalNodes, r.PeakNodes)
	}
	if r.Reconfigs != 2 {
		t.Errorf("Reconfigs = %d", r.Reconfigs)
	}
	if rec.Summary().Reconfigs != 2 {
		t.Errorf("summary reconfigs = %d", rec.Summary().Reconfigs)
	}
	// Busy timeline follows the allocation.
	busy := rec.BusyTimeline()
	if busy.At(25) != 4 || busy.At(60) != 12 || busy.At(90) != 2 || busy.At(100) != 0 {
		t.Errorf("busy timeline wrong: %v %v %v %v",
			busy.At(25), busy.At(60), busy.At(90), busy.At(100))
	}
}

func TestRecorderKilled(t *testing.T) {
	rec := NewRecorder(8)
	j := makeJob(0, job.Rigid)
	rec.JobSubmitted(j, 0)
	rec.JobStarted(j.ID, 0, 2)
	rec.JobFinished(j.ID, 50, StatusKilledWalltime)
	s := rec.Summary()
	if s.Killed != 1 || s.Completed != 0 {
		t.Errorf("killed accounting: %+v", s)
	}
}

func TestRecorderUnfinishedExcluded(t *testing.T) {
	rec := NewRecorder(8)
	a, b := makeJob(0, job.Rigid), makeJob(1, job.Rigid)
	rec.JobSubmitted(a, 0)
	rec.JobSubmitted(b, 0)
	rec.JobStarted(a.ID, 0, 2)
	rec.JobFinished(a.ID, 10, StatusCompleted)
	// b never starts.
	s := rec.Summary()
	if s.Jobs != 2 || s.Completed != 1 {
		t.Errorf("summary %+v", s)
	}
	if rec.QueueTimeline().Current() != 1 {
		t.Errorf("queued = %v, want 1", rec.QueueTimeline().Current())
	}
}

func TestBoundedSlowdown(t *testing.T) {
	r := &JobRecord{Submit: 0, Start: 90, End: 100}
	// runtime 10, turnaround 100 -> slowdown 10.
	if got := r.BoundedSlowdown(); got != 10 {
		t.Errorf("slowdown = %v, want 10", got)
	}
	// Short job: runtime 1 bounded to 10 -> turnaround 91 / 10.
	r2 := &JobRecord{Submit: 0, Start: 90, End: 91}
	if got := r2.BoundedSlowdown(); math.Abs(got-9.1) > 1e-12 {
		t.Errorf("bounded slowdown = %v, want 9.1", got)
	}
	// No wait: slowdown clamps to 1.
	r3 := &JobRecord{Submit: 0, Start: 0, End: 1000}
	if got := r3.BoundedSlowdown(); got != 1 {
		t.Errorf("slowdown = %v, want 1", got)
	}
}

func TestSummaryStatistics(t *testing.T) {
	rec := NewRecorder(100)
	for i := 0; i < 10; i++ {
		rec.JobSubmitted(makeJob(i, job.Rigid), 0)
	}
	for i := 0; i < 10; i++ {
		rec.JobStarted(job.ID(i), float64(i*10), 1)
	}
	for i := 0; i < 10; i++ {
		rec.JobFinished(job.ID(i), float64(i*10+100), StatusCompleted)
	}
	s := rec.Summary()
	if s.MeanWait != 45 { // waits 0,10,...,90
		t.Errorf("MeanWait = %v, want 45", s.MeanWait)
	}
	if s.P95Wait != 90 {
		t.Errorf("P95Wait = %v, want 90", s.P95Wait)
	}
	if s.MeanTurnaround != 145 {
		t.Errorf("MeanTurnaround = %v, want 145", s.MeanTurnaround)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := percentile(xs, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := percentile(xs, 1.0); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := percentile(xs, 0.0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	// Original slice must not be reordered.
	if xs[0] != 5 {
		t.Error("percentile mutated input")
	}
}

func TestJobsCSV(t *testing.T) {
	rec := NewRecorder(8)
	j := makeJob(0, job.Rigid)
	j.Name = "alpha"
	rec.JobSubmitted(j, 0)
	rec.JobStarted(j.ID, 5, 2)
	rec.JobFinished(j.ID, 25, StatusCompleted)
	var buf bytes.Buffer
	if err := rec.WriteJobsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "id,name,type,") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "0,alpha,rigid,0,5,25,5,20,25,") {
		t.Errorf("row missing: %q", out)
	}
}

func TestGanttExport(t *testing.T) {
	rec := NewRecorder(8)
	rec.AddGantt(0, "j", 4, 0, 10)
	rec.AddGantt(0, "j", 8, 10, 20)
	var buf bytes.Buffer
	if err := rec.WriteGanttJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"nodes": 8`) {
		t.Errorf("gantt JSON: %s", buf.String())
	}
	if len(rec.Gantt()) != 2 {
		t.Errorf("gantt entries %d", len(rec.Gantt()))
	}
}

func TestDuplicateSubmitPanics(t *testing.T) {
	rec := NewRecorder(8)
	j := makeJob(0, job.Rigid)
	rec.JobSubmitted(j, 0)
	defer func() {
		if recover() == nil {
			t.Error("duplicate submit did not panic")
		}
	}()
	rec.JobSubmitted(j, 1)
}

func TestGroupSummary(t *testing.T) {
	rec := NewRecorder(16)
	mk := func(id int, typ job.Type, user string) *job.Job {
		return &job.Job{ID: job.ID(id), Type: typ, User: user}
	}
	rec.JobSubmitted(mk(0, job.Rigid, "alice"), 0)
	rec.JobSubmitted(mk(1, job.Rigid, "bob"), 0)
	rec.JobSubmitted(mk(2, job.Malleable, "alice"), 0)
	rec.JobSubmitted(mk(3, job.Rigid, ""), 0)
	rec.JobStarted(0, 10, 2)
	rec.JobStarted(1, 20, 2)
	rec.JobStarted(2, 30, 4)
	rec.JobFinished(0, 110, StatusCompleted)
	rec.JobFinished(1, 120, StatusKilledWalltime)
	rec.JobFinished(2, 130, StatusCompleted)
	rec.JobAbandoned(3, 140)

	byType := rec.GroupSummary(ByType)
	if byType["rigid"].Jobs != 3 || byType["malleable"].Jobs != 1 {
		t.Errorf("type groups: %+v", byType)
	}
	// Rigid started jobs: waits 10 and 20 -> mean 15 (abandoned job 3
	// excluded from means but counted as killed).
	if got := byType["rigid"].MeanWait; got != 15 {
		t.Errorf("rigid mean wait %v, want 15", got)
	}
	if byType["rigid"].Killed != 2 { // walltime kill + abandoned
		t.Errorf("rigid killed %d", byType["rigid"].Killed)
	}
	byUser := rec.GroupSummary(ByUser)
	if byUser["alice"].Jobs != 2 || byUser["bob"].Jobs != 1 || byUser["(none)"].Jobs != 1 {
		t.Errorf("user groups: %+v", byUser)
	}
	if got := byUser["alice"].MeanWait; got != 20 { // (10+30)/2
		t.Errorf("alice mean wait %v", got)
	}
}

func TestWriteSWFRoundTripsThroughParser(t *testing.T) {
	rec := NewRecorder(16)
	j := &job.Job{ID: 0, Type: job.Rigid, NumNodes: 4, WallTimeLimit: 500}
	j2 := &job.Job{ID: 1, Type: job.Rigid, NumNodes: 2, WallTimeLimit: 50}
	rec.JobSubmitted(j, 10)
	rec.JobSubmitted(j2, 20)
	rec.JobStarted(0, 30, 4)
	rec.JobStarted(1, 40, 2)
	rec.JobFinished(1, 90, StatusKilledWalltime) // killed
	rec.JobFinished(0, 130, StatusCompleted)
	var buf bytes.Buffer
	if err := rec.WriteSWF(&buf, 2); err != nil {
		t.Fatal(err)
	}
	// The exported trace must parse back via the SWF reader; the killed
	// job (status 0) is dropped by the standard cleaning step.
	wl, err := job.ParseSWF(strings.NewReader(buf.String()), job.SWFOptions{NodeSpeed: 1e9, CoresPerNode: 2})
	if err != nil {
		t.Fatalf("exported SWF unparseable: %v\n%s", err, buf.String())
	}
	if len(wl.Jobs) != 1 {
		t.Fatalf("kept %d jobs, want 1 (killed job filtered)", len(wl.Jobs))
	}
	back := wl.Jobs[0]
	if back.NumNodes != 4 {
		t.Errorf("nodes %d, want 4", back.NumNodes)
	}
	if back.SubmitTime != 10 || back.WallTimeLimit != 500 {
		t.Errorf("submit %v walltime %v", back.SubmitTime, back.WallTimeLimit)
	}
}
