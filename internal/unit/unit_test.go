package unit

import (
	"encoding/json"
	"testing"
)

func TestQuantityNumber(t *testing.T) {
	var q Quantity
	if err := json.Unmarshal([]byte(`2.5`), &q); err != nil {
		t.Fatal(err)
	}
	if float64(q) != 2.5 {
		t.Errorf("q = %v", float64(q))
	}
}

func TestQuantityExpressionString(t *testing.T) {
	cases := map[string]float64{
		`"100G"`:  1e11,
		`"64*1M"`: 6.4e7,
		`"2^20"`:  1 << 20,
		`"1.5k"`:  1500,
		`"0"`:     0,
	}
	for src, want := range cases {
		var q Quantity
		if err := json.Unmarshal([]byte(src), &q); err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if float64(q) != want {
			t.Errorf("%s = %v, want %v", src, float64(q), want)
		}
	}
}

func TestQuantityErrors(t *testing.T) {
	for _, src := range []string{`"x+1"`, `"("`, `[1,2]`, `{}`, `true`} {
		var q Quantity
		if err := json.Unmarshal([]byte(src), &q); err == nil {
			t.Errorf("%s accepted", src)
		}
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		v    float64
		suf  string
		want string
	}{
		{2.5e9, "B/s", "2.50GB/s"},
		{1e12, "F", "1.00TF"},
		{999, "B", "999.00B"},
		{1500, "B", "1.50kB"},
		{3e15, "F", "3.00PF"},
		{0, "B", "0.00B"},
	}
	for _, tc := range cases {
		if got := Format(tc.v, tc.suf); got != tc.want {
			t.Errorf("Format(%v, %q) = %q, want %q", tc.v, tc.suf, got, tc.want)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0:00:00.00"},
		{61.5, "0:01:01.50"},
		{3661, "1:01:01.00"},
		{-90, "-0:01:30.00"},
		{7325.25, "2:02:05.25"},
	}
	for _, tc := range cases {
		if got := FormatSeconds(tc.v); got != tc.want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
