// Package unit provides a JSON-friendly numeric quantity type and
// human-readable formatting for the magnitudes the simulator deals in
// (flops, bytes, bandwidths, durations).
package unit

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/expr"
)

// Quantity is a float64 that unmarshals from either a JSON number or a
// constant expression string such as "100G" or "64*1M". It lets platform
// and workload files write magnitudes the way papers do.
type Quantity float64

// UnmarshalJSON implements json.Unmarshaler.
func (q *Quantity) UnmarshalJSON(data []byte) error {
	var num float64
	if err := json.Unmarshal(data, &num); err == nil {
		*q = Quantity(num)
		return nil
	}
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("unit: quantity must be a number or expression string, got %s", data)
	}
	e, err := expr.Compile(s)
	if err != nil {
		return fmt.Errorf("unit: bad quantity %q: %w", s, err)
	}
	if !e.IsConstant() {
		return fmt.Errorf("unit: quantity %q must be constant", s)
	}
	v, err := e.Eval(nil)
	if err != nil {
		return err
	}
	*q = Quantity(v)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (q Quantity) MarshalJSON() ([]byte, error) {
	return json.Marshal(float64(q))
}

var prefixes = []struct {
	factor float64
	symbol string
}{
	{1e15, "P"},
	{1e12, "T"},
	{1e9, "G"},
	{1e6, "M"},
	{1e3, "k"},
}

// Format renders v with an engineering prefix and the given suffix, e.g.
// Format(2.5e9, "B/s") == "2.50GB/s".
func Format(v float64, suffix string) string {
	a := math.Abs(v)
	for _, p := range prefixes {
		if a >= p.factor {
			return fmt.Sprintf("%.2f%s%s", v/p.factor, p.symbol, suffix)
		}
	}
	return fmt.Sprintf("%.2f%s", v, suffix)
}

// FormatBytes renders a byte count.
func FormatBytes(v float64) string { return Format(v, "B") }

// FormatFlops renders a flop count.
func FormatFlops(v float64) string { return Format(v, "F") }

// FormatSeconds renders a duration as h:mm:ss for report tables.
func FormatSeconds(s float64) string {
	if math.IsInf(s, 0) || math.IsNaN(s) {
		return fmt.Sprintf("%v", s)
	}
	neg := ""
	if s < 0 {
		neg, s = "-", -s
	}
	h := int(s) / 3600
	m := (int(s) % 3600) / 60
	sec := s - float64(h*3600+m*60)
	return fmt.Sprintf("%s%d:%02d:%05.2f", neg, h, m, sec)
}
