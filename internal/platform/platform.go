package platform

import (
	"fmt"

	"repro/internal/fluid"
)

// NodeID identifies a compute node. IDs are dense, starting at zero.
type NodeID int

// Node is a runtime compute node.
type Node struct {
	// ID is the node's index in the platform.
	ID NodeID
	// Name is the node's human-readable name.
	Name string
	// Speed is the node's compute capability in flops/s.
	Speed float64

	compute *fluid.Resource
	link    *fluid.Resource
	bbRead  *fluid.Resource // node-local burst buffer, nil otherwise
	bbWrite *fluid.Resource
}

// Platform is an instantiated cluster whose components are fluid resources.
// It is created from a Spec via Build.
type Platform struct {
	spec  *Spec
	pool  *fluid.Pool
	nodes []*Node

	backbone     *fluid.Resource   // nil for star topology (optional core for tree)
	uplinks      []*fluid.Resource // per-group uplinks (tree topology)
	pfsRead      *fluid.Resource
	pfsWrite     *fluid.Resource
	sharedBBRead *fluid.Resource
	sharedBBWr   *fluid.Resource
}

// Build instantiates the spec's resources into the pool.
func Build(spec *Spec, pool *fluid.Pool) (*Platform, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &Platform{spec: spec, pool: pool}
	id := NodeID(0)
	for _, g := range spec.Nodes {
		prefix := g.NamePrefix
		if prefix == "" {
			prefix = "node"
		}
		for i := 0; i < g.Count; i++ {
			name := fmt.Sprintf("%s%d", prefix, int(id))
			n := &Node{
				ID:      id,
				Name:    name,
				Speed:   float64(g.Speed),
				compute: pool.NewResource(name+".cpu", float64(g.Speed)),
				link:    pool.NewResource(name+".link", float64(spec.Network.LinkBandwidth)),
			}
			if bb := spec.BurstBuffer; bb != nil && bb.Kind == BBNodeLocal {
				n.bbRead = pool.NewResource(name+".bb.read", float64(bb.ReadBandwidth))
				n.bbWrite = pool.NewResource(name+".bb.write", float64(bb.WriteBandwidth))
			}
			p.nodes = append(p.nodes, n)
			id++
		}
	}
	if spec.Network.Topology == TopologyBackbone {
		p.backbone = pool.NewResource("backbone", float64(spec.Network.BackboneBandwidth))
	}
	if spec.Network.Topology == TopologyTree {
		groups := (len(p.nodes) + spec.Network.GroupSize - 1) / spec.Network.GroupSize
		for g := 0; g < groups; g++ {
			p.uplinks = append(p.uplinks,
				pool.NewResource(fmt.Sprintf("uplink%d", g), float64(spec.Network.UplinkBandwidth)))
		}
		if spec.Network.BackboneBandwidth > 0 {
			p.backbone = pool.NewResource("core", float64(spec.Network.BackboneBandwidth))
		}
	}
	if spec.PFS != nil {
		p.pfsRead = pool.NewResource("pfs.read", float64(spec.PFS.ReadBandwidth))
		p.pfsWrite = pool.NewResource("pfs.write", float64(spec.PFS.WriteBandwidth))
	}
	if bb := spec.BurstBuffer; bb != nil && bb.Kind == BBShared {
		p.sharedBBRead = pool.NewResource("bb.read", float64(bb.ReadBandwidth))
		p.sharedBBWr = pool.NewResource("bb.write", float64(bb.WriteBandwidth))
	}
	return p, nil
}

// Spec returns the description this platform was built from.
func (p *Platform) Spec() *Spec { return p.spec }

// Pool returns the fluid pool holding the platform's resources.
func (p *Platform) Pool() *fluid.Pool { return p.pool }

// NumNodes returns the machine size.
func (p *Platform) NumNodes() int { return len(p.nodes) }

// Node returns the node with the given ID.
func (p *Platform) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(p.nodes) {
		panic(fmt.Sprintf("platform: node %d out of range [0,%d)", id, len(p.nodes)))
	}
	return p.nodes[id]
}

// Nodes returns all nodes in ID order. The caller must not mutate the slice.
func (p *Platform) Nodes() []*Node { return p.nodes }

// Latency returns the per-operation network latency in seconds.
func (p *Platform) Latency() float64 { return float64(p.spec.Network.Latency) }

// Compute returns the compute resource of a node.
func (p *Platform) Compute(id NodeID) *fluid.Resource { return p.Node(id).compute }

// Link returns the injection-link resource of a node.
func (p *Platform) Link(id NodeID) *fluid.Resource { return p.Node(id).link }

// Backbone returns the shared core resource, or nil for star topologies
// (and trees with a non-blocking core).
func (p *Platform) Backbone() *fluid.Resource { return p.backbone }

// IsTree reports whether the platform uses the tree topology.
func (p *Platform) IsTree() bool { return len(p.uplinks) > 0 }

// NumGroups returns the number of leaf-switch groups (0 unless tree).
func (p *Platform) NumGroups() int { return len(p.uplinks) }

// GroupOf returns the leaf-switch group a node belongs to (tree only).
func (p *Platform) GroupOf(id NodeID) int {
	return int(id) / p.spec.Network.GroupSize
}

// Uplink returns a group's uplink resource (tree only).
func (p *Platform) Uplink(group int) *fluid.Resource { return p.uplinks[group] }

// GroupCounts tallies how many of the given nodes fall into each group;
// the map is keyed by group index. Returns nil unless the topology is a
// tree.
func (p *Platform) GroupCounts(nodes []NodeID) map[int]int {
	if !p.IsTree() {
		return nil
	}
	out := map[int]int{}
	for _, id := range nodes {
		out[p.GroupOf(id)]++
	}
	return out
}

// HasPFS reports whether the platform has a parallel file system.
func (p *Platform) HasPFS() bool { return p.pfsRead != nil }

// PFSRead returns the PFS read-bandwidth resource; nil if absent.
func (p *Platform) PFSRead() *fluid.Resource { return p.pfsRead }

// PFSWrite returns the PFS write-bandwidth resource; nil if absent.
func (p *Platform) PFSWrite() *fluid.Resource { return p.pfsWrite }

// HasBurstBuffer reports whether any burst-buffer tier exists.
func (p *Platform) HasBurstBuffer() bool {
	return p.spec.BurstBuffer != nil
}

// BurstBufferKind returns the configured kind, or "" when absent.
func (p *Platform) BurstBufferKind() BurstBufferKind {
	if p.spec.BurstBuffer == nil {
		return ""
	}
	return p.spec.BurstBuffer.Kind
}

// BBRead returns the burst-buffer read resource serving the given node:
// the node-local resource or the shared pool. Nil when no burst buffer.
func (p *Platform) BBRead(id NodeID) *fluid.Resource {
	if p.sharedBBRead != nil {
		return p.sharedBBRead
	}
	return p.Node(id).bbRead
}

// BBWrite returns the burst-buffer write resource serving the given node.
func (p *Platform) BBWrite(id NodeID) *fluid.Resource {
	if p.sharedBBWr != nil {
		return p.sharedBBWr
	}
	return p.Node(id).bbWrite
}
