package platform

import (
	"fmt"
	"sort"
)

// Allocator tracks node ownership. Node selection is deterministic
// (lowest-numbered free nodes first) so simulations are reproducible.
type Allocator struct {
	total int
	// owner[i] == "" means free; otherwise the owning job's key.
	owner []string
	free  int
}

// NewAllocator creates an allocator for a platform with n nodes.
func NewAllocator(n int) *Allocator {
	return &Allocator{total: n, owner: make([]string, n), free: n}
}

// Total returns the machine size.
func (a *Allocator) Total() int { return a.total }

// Free returns the number of unallocated nodes.
func (a *Allocator) Free() int { return a.free }

// Used returns the number of allocated nodes.
func (a *Allocator) Used() int { return a.total - a.free }

// Owner returns the owner of a node, or "" when free.
func (a *Allocator) Owner(id NodeID) string {
	return a.owner[a.check(id)]
}

func (a *Allocator) check(id NodeID) int {
	if int(id) < 0 || int(id) >= a.total {
		panic(fmt.Sprintf("platform: node %d out of range [0,%d)", id, a.total))
	}
	return int(id)
}

// FreeNodes returns the IDs of all free nodes in ascending order.
func (a *Allocator) FreeNodes() []NodeID {
	out := make([]NodeID, 0, a.free)
	for i, o := range a.owner {
		if o == "" {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// NodesOf returns the nodes owned by the given owner, in ascending order.
func (a *Allocator) NodesOf(owner string) []NodeID {
	var out []NodeID
	for i, o := range a.owner {
		if o == owner {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Allocate claims count free nodes (lowest IDs first) for owner.
func (a *Allocator) Allocate(owner string, count int) ([]NodeID, error) {
	if owner == "" {
		return nil, fmt.Errorf("platform: empty owner")
	}
	if count <= 0 {
		return nil, fmt.Errorf("platform: allocation of %d nodes", count)
	}
	if count > a.free {
		return nil, fmt.Errorf("platform: %d nodes requested, %d free", count, a.free)
	}
	out := make([]NodeID, 0, count)
	for i := 0; i < a.total && len(out) < count; i++ {
		if a.owner[i] == "" {
			a.owner[i] = owner
			out = append(out, NodeID(i))
		}
	}
	a.free -= count
	return out, nil
}

// AllocateNodes claims the specific nodes for owner. It fails without side
// effects if any node is taken.
func (a *Allocator) AllocateNodes(owner string, ids []NodeID) error {
	if owner == "" {
		return fmt.Errorf("platform: empty owner")
	}
	if len(ids) == 0 {
		return fmt.Errorf("platform: empty node list")
	}
	seen := make(map[NodeID]bool, len(ids))
	for _, id := range ids {
		i := a.check(id)
		if seen[id] {
			return fmt.Errorf("platform: node %d listed twice", id)
		}
		seen[id] = true
		if a.owner[i] != "" {
			return fmt.Errorf("platform: node %d already owned by %s", id, a.owner[i])
		}
	}
	for _, id := range ids {
		a.owner[int(id)] = owner
	}
	a.free -= len(ids)
	return nil
}

// Release frees the given nodes, verifying ownership.
func (a *Allocator) Release(owner string, ids []NodeID) error {
	for _, id := range ids {
		i := a.check(id)
		if a.owner[i] != owner {
			return fmt.Errorf("platform: node %d owned by %q, not %q", id, a.owner[i], owner)
		}
	}
	for _, id := range ids {
		a.owner[int(id)] = ""
	}
	a.free += len(ids)
	return nil
}

// ReleaseAll frees every node held by owner and returns how many there were.
func (a *Allocator) ReleaseAll(owner string) int {
	n := 0
	for i, o := range a.owner {
		if o == owner {
			a.owner[i] = ""
			n++
		}
	}
	a.free += n
	return n
}

// SortNodeIDs sorts a node-ID slice ascending, in place, and returns it.
func SortNodeIDs(ids []NodeID) []NodeID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
