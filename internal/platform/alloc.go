package platform

import (
	"fmt"
	"math/bits"
	"sort"
)

// Allocator tracks node ownership. Node selection is deterministic
// (lowest-numbered free nodes first) so simulations are reproducible.
//
// Internally owner names are interned to small integer handles and the
// free pool is a bitset: Allocate pops the lowest set bits, Release and
// AllocateNodes touch only the named nodes, and ownership checks compare
// integers instead of strings. Handles are recycled when an owner's last
// node is released, so the intern table is bounded by the number of
// concurrent owners, not workload length. The string API is unchanged.
type Allocator struct {
	total int
	free  int
	// owner[i] == 0 means free; otherwise an index into names.
	owner []int32
	// words is the free-node bitset (bit set = free).
	words []uint64
	// hint is the lowest word index that may contain a free bit.
	hint int

	names   []string         // handle -> owner name; names[0] = ""
	handles map[string]int32 // owner name -> handle
	held    []int32          // handle -> node count (recycled at zero)
	spare   []int32          // free handles
}

// NewAllocator creates an allocator for a platform with n nodes.
func NewAllocator(n int) *Allocator {
	a := &Allocator{
		total:   n,
		free:    n,
		owner:   make([]int32, n),
		words:   make([]uint64, (n+63)/64),
		names:   []string{""},
		held:    []int32{0},
		handles: map[string]int32{},
	}
	for i := range a.words {
		a.words[i] = ^uint64(0)
	}
	if r := n & 63; r != 0 {
		a.words[len(a.words)-1] = 1<<uint(r) - 1
	}
	return a
}

// intern returns the owner's handle, assigning one on first sight.
func (a *Allocator) intern(owner string) int32 {
	if h, ok := a.handles[owner]; ok {
		return h
	}
	var h int32
	if n := len(a.spare); n > 0 {
		h = a.spare[n-1]
		a.spare = a.spare[:n-1]
		a.names[h] = owner
	} else {
		h = int32(len(a.names))
		a.names = append(a.names, owner)
		a.held = append(a.held, 0)
	}
	a.handles[owner] = h
	return h
}

// unref drops n nodes from the handle's count, retiring it at zero.
func (a *Allocator) unref(h int32, n int) {
	a.held[h] -= int32(n)
	if a.held[h] == 0 {
		delete(a.handles, a.names[h])
		a.names[h] = ""
		a.spare = append(a.spare, h)
	}
}

// freeNode returns node i to the free pool.
func (a *Allocator) freeNode(i int) {
	a.owner[i] = 0
	a.words[i>>6] |= 1 << (uint(i) & 63)
	if i>>6 < a.hint {
		a.hint = i >> 6
	}
}

// Total returns the machine size.
func (a *Allocator) Total() int { return a.total }

// Free returns the number of unallocated nodes.
func (a *Allocator) Free() int { return a.free }

// Used returns the number of allocated nodes.
func (a *Allocator) Used() int { return a.total - a.free }

// Owner returns the owner of a node, or "" when free.
func (a *Allocator) Owner(id NodeID) string {
	return a.names[a.owner[a.check(id)]]
}

// Owned returns how many nodes owner currently holds, in O(1).
func (a *Allocator) Owned(owner string) int {
	return int(a.held[a.handles[owner]])
}

func (a *Allocator) check(id NodeID) int {
	if int(id) < 0 || int(id) >= a.total {
		panic(fmt.Sprintf("platform: node %d out of range [0,%d)", id, a.total))
	}
	return int(id)
}

// FreeNodes returns the IDs of all free nodes in ascending order.
func (a *Allocator) FreeNodes() []NodeID {
	out := make([]NodeID, 0, a.free)
	for w, word := range a.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			out = append(out, NodeID(w<<6|b))
		}
	}
	return out
}

// NodesOf returns the nodes owned by the given owner, in ascending order.
func (a *Allocator) NodesOf(owner string) []NodeID {
	h, ok := a.handles[owner]
	if !ok {
		return nil
	}
	out := make([]NodeID, 0, a.held[h])
	for i, o := range a.owner {
		if o == h {
			out = append(out, NodeID(i))
			if len(out) == cap(out) {
				break
			}
		}
	}
	return out
}

// Allocate claims count free nodes (lowest IDs first) for owner.
func (a *Allocator) Allocate(owner string, count int) ([]NodeID, error) {
	if owner == "" {
		return nil, fmt.Errorf("platform: empty owner")
	}
	if count <= 0 {
		return nil, fmt.Errorf("platform: allocation of %d nodes", count)
	}
	if count > a.free {
		return nil, fmt.Errorf("platform: %d nodes requested, %d free", count, a.free)
	}
	h := a.intern(owner)
	out := make([]NodeID, 0, count)
	for w := a.hint; len(out) < count; w++ {
		word := a.words[w]
		for word != 0 && len(out) < count {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			i := w<<6 | b
			a.owner[i] = h
			out = append(out, NodeID(i))
		}
		a.words[w] = word
	}
	a.free -= count
	a.held[h] += int32(count)
	for a.hint < len(a.words) && a.words[a.hint] == 0 {
		a.hint++
	}
	return out, nil
}

// AllocateNodes claims the specific nodes for owner. It fails without side
// effects if any node is taken.
func (a *Allocator) AllocateNodes(owner string, ids []NodeID) error {
	if owner == "" {
		return fmt.Errorf("platform: empty owner")
	}
	if len(ids) == 0 {
		return fmt.Errorf("platform: empty node list")
	}
	for _, id := range ids {
		a.check(id)
	}
	// Claim free bits one at a time; a bit already clear means the node is
	// either owned or a duplicate earlier in ids. Roll back on failure.
	for k, id := range ids {
		i := int(id)
		w, mask := i>>6, uint64(1)<<(uint(i)&63)
		if a.words[w]&mask == 0 {
			for _, prev := range ids[:k] {
				p := int(prev)
				a.words[p>>6] |= 1 << (uint(p) & 63)
			}
			if a.owner[i] != 0 {
				return fmt.Errorf("platform: node %d already owned by %s", id, a.names[a.owner[i]])
			}
			return fmt.Errorf("platform: node %d listed twice", id)
		}
		a.words[w] &^= mask
	}
	h := a.intern(owner)
	for _, id := range ids {
		a.owner[int(id)] = h
	}
	a.free -= len(ids)
	a.held[h] += int32(len(ids))
	return nil
}

// Release frees the given nodes, verifying ownership.
func (a *Allocator) Release(owner string, ids []NodeID) error {
	h, ok := a.handles[owner]
	if !ok {
		h = -1 // owner holds nothing; any non-empty ids fail below
	}
	for _, id := range ids {
		i := a.check(id)
		if a.owner[i] != h {
			return fmt.Errorf("platform: node %d owned by %q, not %q", id, a.names[a.owner[i]], owner)
		}
	}
	for _, id := range ids {
		a.freeNode(int(id))
	}
	a.free += len(ids)
	if h >= 0 && len(ids) > 0 {
		a.unref(h, len(ids))
	}
	return nil
}

// ReleaseAll frees every node held by owner and returns how many there were.
func (a *Allocator) ReleaseAll(owner string) int {
	h, ok := a.handles[owner]
	if !ok {
		return 0
	}
	want := int(a.held[h])
	n := 0
	for i, o := range a.owner {
		if o == h {
			a.freeNode(i)
			n++
			if n == want {
				break
			}
		}
	}
	a.free += n
	a.unref(h, n)
	return n
}

// SortNodeIDs sorts a node-ID slice ascending, in place, and returns it.
func SortNodeIDs(ids []NodeID) []NodeID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
