// Package platform models the simulated cluster: compute nodes, the
// interconnect, the parallel file system (PFS), and burst buffers.
//
// A platform is described by a serializable Spec (typically loaded from
// JSON) and instantiated into a runtime Platform whose components are
// resources of a fluid.Pool. Quantities in a Spec may use engineering
// suffixes ("100G" = 1e11) via the expression language.
package platform

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/failure"
	"repro/internal/unit"
)

// Topology selects how the interconnect is modelled.
type Topology string

const (
	// TopologyStar gives every node a dedicated up/down link into a
	// contention-free core. Only the node links constrain transfers.
	TopologyStar Topology = "star"
	// TopologyBackbone adds a shared backbone (bisection) resource that all
	// traffic crosses, modelling a tapered fat-tree at machine granularity.
	TopologyBackbone Topology = "backbone"
	// TopologyTree groups nodes under leaf switches: traffic between
	// groups (and to the PFS) crosses per-group uplinks and optionally a
	// shared core. Allocation locality matters: jobs spanning groups
	// contend on uplinks.
	TopologyTree Topology = "tree"
)

// BurstBufferKind distinguishes the two deployment models of burst buffers.
type BurstBufferKind string

const (
	// BBNodeLocal places an independent buffer on every compute node
	// (e.g. node-local NVMe).
	BBNodeLocal BurstBufferKind = "node_local"
	// BBShared is a network-attached burst buffer pool shared by all nodes.
	BBShared BurstBufferKind = "shared"
)

// Quantity aliases unit.Quantity: a float64 that unmarshals from either a
// JSON number or a constant expression string such as "100G" or "64*1G".
type Quantity = unit.Quantity

// NodeGroupSpec describes a homogeneous group of compute nodes.
type NodeGroupSpec struct {
	// Count is the number of nodes in the group.
	Count int `json:"count"`
	// Speed is the compute capability of each node in flops/s.
	Speed Quantity `json:"speed"`
	// NamePrefix names nodes "<prefix><index>"; defaults to "node".
	NamePrefix string `json:"name_prefix,omitempty"`
}

// NetworkSpec describes the interconnect.
type NetworkSpec struct {
	// Topology is "star" (default) or "backbone".
	Topology Topology `json:"topology,omitempty"`
	// LinkBandwidth is each node's injection bandwidth in bytes/s.
	LinkBandwidth Quantity `json:"link_bandwidth"`
	// BackboneBandwidth is the shared core bandwidth in bytes/s
	// (required for the backbone topology; optional — non-blocking core —
	// for the tree topology).
	BackboneBandwidth Quantity `json:"backbone_bandwidth,omitempty"`
	// GroupSize is the number of nodes per leaf switch (tree topology).
	GroupSize int `json:"group_size,omitempty"`
	// UplinkBandwidth is each leaf switch's uplink capacity in bytes/s
	// (tree topology). UplinkBandwidth < GroupSize*LinkBandwidth gives a
	// tapered network.
	UplinkBandwidth Quantity `json:"uplink_bandwidth,omitempty"`
	// Latency is the per-transfer base latency in seconds, added once per
	// communication operation.
	Latency Quantity `json:"latency,omitempty"`
}

// StorageSpec describes a bandwidth-limited storage target.
type StorageSpec struct {
	// ReadBandwidth in bytes/s aggregated over all concurrent readers.
	ReadBandwidth Quantity `json:"read_bandwidth"`
	// WriteBandwidth in bytes/s aggregated over all concurrent writers.
	WriteBandwidth Quantity `json:"write_bandwidth"`
}

// BurstBufferSpec describes the burst-buffer tier, if present.
type BurstBufferSpec struct {
	// Kind is "node_local" or "shared".
	Kind BurstBufferKind `json:"kind"`
	// ReadBandwidth/WriteBandwidth are per node for node_local, aggregate
	// for shared.
	ReadBandwidth  Quantity `json:"read_bandwidth"`
	WriteBandwidth Quantity `json:"write_bandwidth"`
}

// Spec is the serializable description of a platform.
type Spec struct {
	// Name labels the platform in reports.
	Name string `json:"name"`
	// Nodes lists the node groups making up the machine.
	Nodes []NodeGroupSpec `json:"nodes"`
	// Network describes the interconnect.
	Network NetworkSpec `json:"network"`
	// PFS describes the parallel file system; nil disables file I/O.
	PFS *StorageSpec `json:"pfs,omitempty"`
	// BurstBuffer describes the burst-buffer tier; nil disables it.
	BurstBuffer *BurstBufferSpec `json:"burst_buffer,omitempty"`
	// Failures describes the node failure/repair model; nil means nodes
	// never fail. An engine-level failure spec overrides this one.
	Failures *failure.Spec `json:"failures,omitempty"`
}

// TotalNodes returns the machine size.
func (s *Spec) TotalNodes() int {
	total := 0
	for _, g := range s.Nodes {
		total += g.Count
	}
	return total
}

// Validate checks the spec for structural errors.
func (s *Spec) Validate() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("platform %q: no node groups", s.Name)
	}
	for i, g := range s.Nodes {
		if g.Count <= 0 {
			return fmt.Errorf("platform %q: node group %d has count %d", s.Name, i, g.Count)
		}
		if g.Speed <= 0 || math.IsNaN(float64(g.Speed)) {
			return fmt.Errorf("platform %q: node group %d has speed %v", s.Name, i, float64(g.Speed))
		}
	}
	if s.Network.LinkBandwidth <= 0 {
		return fmt.Errorf("platform %q: link bandwidth must be positive", s.Name)
	}
	switch s.Network.Topology {
	case "", TopologyStar:
	case TopologyBackbone:
		if s.Network.BackboneBandwidth <= 0 {
			return fmt.Errorf("platform %q: backbone topology requires backbone_bandwidth", s.Name)
		}
	case TopologyTree:
		if s.Network.GroupSize <= 0 {
			return fmt.Errorf("platform %q: tree topology requires group_size", s.Name)
		}
		if s.Network.UplinkBandwidth <= 0 {
			return fmt.Errorf("platform %q: tree topology requires uplink_bandwidth", s.Name)
		}
	default:
		return fmt.Errorf("platform %q: unknown topology %q", s.Name, s.Network.Topology)
	}
	if s.Network.Latency < 0 {
		return fmt.Errorf("platform %q: negative latency", s.Name)
	}
	if s.PFS != nil {
		if s.PFS.ReadBandwidth <= 0 || s.PFS.WriteBandwidth <= 0 {
			return fmt.Errorf("platform %q: PFS bandwidths must be positive", s.Name)
		}
	}
	if s.BurstBuffer != nil {
		switch s.BurstBuffer.Kind {
		case BBNodeLocal, BBShared:
		default:
			return fmt.Errorf("platform %q: unknown burst buffer kind %q", s.Name, s.BurstBuffer.Kind)
		}
		if s.BurstBuffer.ReadBandwidth <= 0 || s.BurstBuffer.WriteBandwidth <= 0 {
			return fmt.Errorf("platform %q: burst buffer bandwidths must be positive", s.Name)
		}
	}
	if err := s.Failures.Validate(); err != nil {
		return fmt.Errorf("platform %q: %w", s.Name, err)
	}
	return nil
}

// ParseSpec decodes and validates a JSON platform description.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("platform: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Homogeneous is a convenience constructor for the common case of a uniform
// cluster with a star network and a PFS.
func Homogeneous(name string, nodes int, nodeSpeed, linkBW, pfsReadBW, pfsWriteBW float64) *Spec {
	return &Spec{
		Name:  name,
		Nodes: []NodeGroupSpec{{Count: nodes, Speed: Quantity(nodeSpeed)}},
		Network: NetworkSpec{
			Topology:      TopologyStar,
			LinkBandwidth: Quantity(linkBW),
		},
		PFS: &StorageSpec{
			ReadBandwidth:  Quantity(pfsReadBW),
			WriteBandwidth: Quantity(pfsWriteBW),
		},
	}
}
