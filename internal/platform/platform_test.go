package platform

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/fluid"
)

func testSpecJSON() string {
	return `{
		"name": "testcluster",
		"nodes": [
			{"count": 4, "speed": "100G"},
			{"count": 2, "speed": "200G", "name_prefix": "fat"}
		],
		"network": {
			"topology": "backbone",
			"link_bandwidth": "10G",
			"backbone_bandwidth": "25G",
			"latency": 1e-6
		},
		"pfs": {"read_bandwidth": "80G", "write_bandwidth": "40G"},
		"burst_buffer": {"kind": "node_local", "read_bandwidth": "2G", "write_bandwidth": "1G"}
	}`
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec([]byte(testSpecJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalNodes() != 6 {
		t.Errorf("TotalNodes = %d, want 6", s.TotalNodes())
	}
	if float64(s.Nodes[0].Speed) != 100e9 {
		t.Errorf("speed = %v, want 1e11", float64(s.Nodes[0].Speed))
	}
	if float64(s.Network.BackboneBandwidth) != 25e9 {
		t.Errorf("backbone = %v", float64(s.Network.BackboneBandwidth))
	}
	if float64(s.Network.Latency) != 1e-6 {
		t.Errorf("latency = %v", float64(s.Network.Latency))
	}
	if s.BurstBuffer.Kind != BBNodeLocal {
		t.Errorf("bb kind = %q", s.BurstBuffer.Kind)
	}
}

func TestQuantityExpression(t *testing.T) {
	var q Quantity
	if err := json.Unmarshal([]byte(`"64*1G"`), &q); err != nil {
		t.Fatal(err)
	}
	if float64(q) != 64e9 {
		t.Errorf("64*1G = %v", float64(q))
	}
	if err := json.Unmarshal([]byte(`123.5`), &q); err != nil {
		t.Fatal(err)
	}
	if float64(q) != 123.5 {
		t.Errorf("number = %v", float64(q))
	}
	if err := json.Unmarshal([]byte(`"num_nodes*2"`), &q); err == nil {
		t.Error("non-constant quantity accepted")
	}
	if err := json.Unmarshal([]byte(`"%%%"`), &q); err == nil {
		t.Error("garbage quantity accepted")
	}
	if err := json.Unmarshal([]byte(`[1]`), &q); err == nil {
		t.Error("array quantity accepted")
	}
}

func TestQuantityRoundTrip(t *testing.T) {
	out, err := json.Marshal(Quantity(5e9))
	if err != nil {
		t.Fatal(err)
	}
	var q Quantity
	if err := json.Unmarshal(out, &q); err != nil {
		t.Fatal(err)
	}
	if float64(q) != 5e9 {
		t.Errorf("round trip = %v", float64(q))
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		substr string
	}{
		{"no groups", func(s *Spec) { s.Nodes = nil }, "no node groups"},
		{"zero count", func(s *Spec) { s.Nodes[0].Count = 0 }, "count"},
		{"zero speed", func(s *Spec) { s.Nodes[0].Speed = 0 }, "speed"},
		{"zero link", func(s *Spec) { s.Network.LinkBandwidth = 0 }, "link bandwidth"},
		{"bad topology", func(s *Spec) { s.Network.Topology = "torus" }, "topology"},
		{"backbone missing bw", func(s *Spec) {
			s.Network.Topology = TopologyBackbone
			s.Network.BackboneBandwidth = 0
		}, "backbone"},
		{"negative latency", func(s *Spec) { s.Network.Latency = -1 }, "latency"},
		{"bad pfs", func(s *Spec) { s.PFS = &StorageSpec{ReadBandwidth: 0, WriteBandwidth: 1} }, "PFS"},
		{"bad bb kind", func(s *Spec) {
			s.BurstBuffer = &BurstBufferSpec{Kind: "weird", ReadBandwidth: 1, WriteBandwidth: 1}
		}, "burst buffer kind"},
		{"bad bb bw", func(s *Spec) {
			s.BurstBuffer = &BurstBufferSpec{Kind: BBShared, ReadBandwidth: 0, WriteBandwidth: 1}
		}, "bandwidths"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Homogeneous("x", 4, 1e9, 1e9, 1e9, 1e9)
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate passed, want error")
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Errorf("error %q does not mention %q", err, tc.substr)
			}
		})
	}
}

func TestBuild(t *testing.T) {
	s, err := ParseSpec([]byte(testSpecJSON()))
	if err != nil {
		t.Fatal(err)
	}
	pool := fluid.NewPool(des.NewKernel())
	p, err := Build(s, pool)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d", p.NumNodes())
	}
	if p.Node(0).Name != "node0" || p.Node(4).Name != "fat4" {
		t.Errorf("node names: %q, %q", p.Node(0).Name, p.Node(4).Name)
	}
	if p.Node(4).Speed != 200e9 {
		t.Errorf("fat node speed %v", p.Node(4).Speed)
	}
	if p.Backbone() == nil {
		t.Error("backbone missing")
	}
	if p.Backbone().Capacity() != 25e9 {
		t.Errorf("backbone capacity %v", p.Backbone().Capacity())
	}
	if !p.HasPFS() || p.PFSRead().Capacity() != 80e9 || p.PFSWrite().Capacity() != 40e9 {
		t.Error("pfs resources wrong")
	}
	if !p.HasBurstBuffer() || p.BurstBufferKind() != BBNodeLocal {
		t.Error("burst buffer missing")
	}
	// Node-local burst buffers are per node and distinct.
	if p.BBRead(0) == nil || p.BBRead(0) == p.BBRead(1) {
		t.Error("node-local BB not distinct per node")
	}
	if p.Compute(0).Capacity() != 100e9 {
		t.Errorf("compute capacity %v", p.Compute(0).Capacity())
	}
	if p.Link(0).Capacity() != 10e9 {
		t.Errorf("link capacity %v", p.Link(0).Capacity())
	}
	if p.Latency() != 1e-6 {
		t.Errorf("latency %v", p.Latency())
	}
}

func TestBuildSharedBB(t *testing.T) {
	s := Homogeneous("x", 2, 1e9, 1e9, 1e9, 1e9)
	s.BurstBuffer = &BurstBufferSpec{Kind: BBShared, ReadBandwidth: 5e9, WriteBandwidth: 3e9}
	p, err := Build(s, fluid.NewPool(des.NewKernel()))
	if err != nil {
		t.Fatal(err)
	}
	if p.BBRead(0) != p.BBRead(1) {
		t.Error("shared BB should be one resource for all nodes")
	}
	if p.BBWrite(0).Capacity() != 3e9 {
		t.Errorf("shared BB write capacity %v", p.BBWrite(0).Capacity())
	}
}

func TestBuildStarHasNoBackbone(t *testing.T) {
	s := Homogeneous("x", 2, 1e9, 1e9, 1e9, 1e9)
	p, err := Build(s, fluid.NewPool(des.NewKernel()))
	if err != nil {
		t.Fatal(err)
	}
	if p.Backbone() != nil {
		t.Error("star topology should have no backbone resource")
	}
	if p.HasBurstBuffer() {
		t.Error("no burst buffer configured")
	}
	if p.BBRead(0) != nil {
		t.Error("BBRead should be nil without burst buffer")
	}
}

func TestAllocatorBasics(t *testing.T) {
	a := NewAllocator(8)
	if a.Free() != 8 || a.Used() != 0 {
		t.Fatalf("fresh allocator free=%d used=%d", a.Free(), a.Used())
	}
	got, err := a.Allocate("job1", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Allocate = %v, want %v", got, want)
		}
	}
	if a.Free() != 5 {
		t.Errorf("free = %d, want 5", a.Free())
	}
	if a.Owner(0) != "job1" || a.Owner(3) != "" {
		t.Error("ownership wrong")
	}
	// Deterministic: next allocation takes the next lowest IDs.
	got2, err := a.Allocate("job2", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got2[0] != 3 || got2[1] != 4 {
		t.Errorf("second allocation %v, want [3 4]", got2)
	}
	if err := a.Release("job1", got); err != nil {
		t.Fatal(err)
	}
	if a.Free() != 6 {
		t.Errorf("free after release = %d", a.Free())
	}
	// Released nodes are reused lowest-first.
	got3, _ := a.Allocate("job3", 1)
	if got3[0] != 0 {
		t.Errorf("reuse allocation %v, want [0]", got3)
	}
}

func TestAllocatorErrors(t *testing.T) {
	a := NewAllocator(4)
	if _, err := a.Allocate("j", 5); err == nil {
		t.Error("overallocation succeeded")
	}
	if _, err := a.Allocate("", 1); err == nil {
		t.Error("empty owner accepted")
	}
	if _, err := a.Allocate("j", 0); err == nil {
		t.Error("zero-size allocation accepted")
	}
	if err := a.AllocateNodes("j", nil); err == nil {
		t.Error("empty node list accepted")
	}
	if err := a.AllocateNodes("j", []NodeID{1, 1}); err == nil {
		t.Error("duplicate node accepted")
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(a.AllocateNodes("j1", []NodeID{1, 2}))
	if err := a.AllocateNodes("j2", []NodeID{2, 3}); err == nil {
		t.Error("conflicting allocation accepted")
	}
	// Failed AllocateNodes must not leave partial state: node 3 still free.
	if a.Owner(3) != "" {
		t.Error("partial allocation leaked")
	}
	if err := a.Release("j2", []NodeID{1}); err == nil {
		t.Error("release by non-owner accepted")
	}
	if err := a.Release("j1", []NodeID{1, 2}); err != nil {
		t.Error(err)
	}
}

func TestAllocatorReleaseAll(t *testing.T) {
	a := NewAllocator(6)
	if _, err := a.Allocate("j1", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Allocate("j2", 2); err != nil {
		t.Fatal(err)
	}
	if n := a.ReleaseAll("j1"); n != 2 {
		t.Errorf("ReleaseAll freed %d, want 2", n)
	}
	if a.Free() != 4 {
		t.Errorf("free = %d, want 4", a.Free())
	}
	if n := a.ReleaseAll("j1"); n != 0 {
		t.Errorf("second ReleaseAll freed %d, want 0", n)
	}
}

// Property: allocate/release sequences conserve node count and never
// double-assign.
func TestAllocatorConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := des.NewRNG(seed)
		const total = 16
		a := NewAllocator(total)
		live := map[string][]NodeID{}
		names := []string{"a", "b", "c", "d"}
		for step := 0; step < 200; step++ {
			name := names[rng.Intn(len(names))]
			if nodes, ok := live[name]; ok {
				if err := a.Release(name, nodes); err != nil {
					return false
				}
				delete(live, name)
			} else {
				want := 1 + rng.Intn(6)
				nodes, err := a.Allocate(name, want)
				if err != nil {
					if want <= a.Free() {
						return false // spurious failure
					}
					continue
				}
				live[name] = nodes
			}
			// Invariant: free + sum(live) == total.
			sum := 0
			for _, ns := range live {
				sum += len(ns)
			}
			if a.Free()+sum != total {
				return false
			}
			// Invariant: owners agree.
			for name, ns := range live {
				for _, id := range ns {
					if a.Owner(id) != name {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHomogeneous(t *testing.T) {
	s := Homogeneous("h", 16, 1e12, 1e10, 8e10, 4e10)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.TotalNodes() != 16 {
		t.Errorf("TotalNodes = %d", s.TotalNodes())
	}
}

func TestTreeTopologySpec(t *testing.T) {
	s := Homogeneous("t", 8, 1e9, 1e9, 1e9, 1e9)
	s.Network.Topology = TopologyTree
	if err := s.Validate(); err == nil {
		t.Error("tree without group_size accepted")
	}
	s.Network.GroupSize = 4
	if err := s.Validate(); err == nil {
		t.Error("tree without uplink_bandwidth accepted")
	}
	s.Network.UplinkBandwidth = 2e9
	if err := s.Validate(); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	p, err := Build(s, fluid.NewPool(des.NewKernel()))
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsTree() || p.NumGroups() != 2 {
		t.Errorf("tree=%v groups=%d", p.IsTree(), p.NumGroups())
	}
	if p.GroupOf(0) != 0 || p.GroupOf(3) != 0 || p.GroupOf(4) != 1 {
		t.Error("GroupOf wrong")
	}
	if p.Uplink(0) == p.Uplink(1) {
		t.Error("uplinks not distinct")
	}
	if p.Uplink(0).Capacity() != 2e9 {
		t.Errorf("uplink capacity %v", p.Uplink(0).Capacity())
	}
	// No core configured: Backbone nil.
	if p.Backbone() != nil {
		t.Error("unexpected core resource")
	}
	counts := p.GroupCounts([]NodeID{0, 1, 4})
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("GroupCounts %v", counts)
	}
	// With a core:
	s.Network.BackboneBandwidth = 8e9
	p2, err := Build(s, fluid.NewPool(des.NewKernel()))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Backbone() == nil {
		t.Error("core missing")
	}
	// Non-tree platforms report no groups.
	flat := Homogeneous("f", 4, 1e9, 1e9, 1e9, 1e9)
	pf, _ := Build(flat, fluid.NewPool(des.NewKernel()))
	if pf.IsTree() || pf.GroupCounts([]NodeID{0}) != nil {
		t.Error("star platform reports tree structure")
	}
}
