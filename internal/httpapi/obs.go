package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Observe attaches a metrics registry and flight recorder to the server.
// Call it before Handler(): per-route series are created at registration
// time. Both arguments may be nil (each side detaches independently).
func (s *Server) Observe(reg *obs.Registry, flight *obs.FlightRecorder) {
	s.reg = reg
	s.flight = flight
	if reg != nil {
		reg.Help("elastisimd_http_requests_total", "HTTP requests served, by route and status code")
		reg.Help("elastisimd_http_request_seconds", "HTTP request latency, by route")
		reg.Help("elastisimd_http_inflight", "HTTP requests currently being served")
		reg.Help("elastisimd_sse_subscribers", "SSE progress streams currently open")
		reg.Help("elastisimd_active_runs", "simulation sessions currently executing in this process")
		reg.Gauge("elastisimd_http_inflight", func() float64 { return float64(s.inflight.Load()) })
		reg.Gauge("elastisimd_sse_subscribers", func() float64 { return float64(s.sse.Load()) })
		reg.Gauge("elastisimd_active_runs", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.live))
		})
	}
}

// SetAccessLog directs structured access logging (one JSON line per
// request) to w. The caller keeps ownership of w; writes are serialized.
func (s *Server) SetAccessLog(w io.Writer) { s.access = w }

// SetDraining flips the readiness probe: once draining, GET /readyz
// returns 503 so load balancers stop routing new work here, while
// /healthz keeps reporting the process itself alive.
func (s *Server) SetDraining() { s.draining.Store(true) }

// Draining reports whether the server was marked draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// accessRecord is one access-log line.
type accessRecord struct {
	Time    time.Time `json:"t"`
	ID      string    `json:"id"`
	Method  string    `json:"method"`
	Path    string    `json:"path"`
	Route   string    `json:"route"`
	Status  int       `json:"status"`
	Bytes   int64     `json:"bytes"`
	Millis  float64   `json:"ms"`
	Remote  string    `json:"remote,omitempty"`
	ReqBody int64     `json:"req_bytes,omitempty"`
}

// statusWriter records the status code and body size of a response. It
// forwards Flush so SSE streaming keeps working through the wrapper (the
// underlying writer of every real server supports it; a non-Flusher
// writer turns Flush into a no-op rather than breaking the stream).
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestID returns the caller-provided X-Request-ID or generates one:
// a per-process boot tag plus a dense sequence number, unique within and
// across daemon restarts.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" && len(id) <= 128 {
		return id
	}
	return fmt.Sprintf("%s-%06d", s.bootID, s.reqSeq.Add(1))
}

// instrument wraps one route's handler with the full observability
// stack: request ID generation and echo (set before the handler runs, so
// streaming responses carry it too), per-route request counting and
// latency histogram, the inflight gauge, and the access log.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	var hist *obs.Histogram
	if s.reg != nil {
		hist = s.reg.Histogram(fmt.Sprintf("elastisimd_http_request_seconds{route=%q}", route), obs.DefLatencyBuckets)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		id := s.requestID(r)
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		s.inflight.Add(1)
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)
		s.inflight.Add(-1)
		if sw.status == 0 {
			// The handler wrote nothing (e.g. client went away mid-SSE
			// before anything was emitted): net/http would send 200.
			sw.status = http.StatusOK
		}
		if s.reg != nil {
			s.reg.Counter(fmt.Sprintf("elastisimd_http_requests_total{route=%q,code=\"%d\"}", route, sw.status)).Inc()
			hist.Observe(elapsed.Seconds())
		}
		if sw.status >= 500 {
			s.flight.Recordf("httpapi", "%s %s -> %d (%s)", r.Method, r.URL.Path, sw.status, id)
		}
		if s.access != nil {
			line, _ := json.Marshal(accessRecord{
				Time:   start.UTC(),
				ID:     id,
				Method: r.Method,
				Path:   r.URL.Path,
				Route:  route,
				Status: sw.status,
				Bytes:  sw.bytes,
				Millis: float64(elapsed.Microseconds()) / 1000,
				Remote: r.RemoteAddr,
			})
			s.accessMu.Lock()
			_, _ = s.access.Write(append(line, '\n'))
			s.accessMu.Unlock()
		}
	}
}

// handleMetrics renders the registry in Prometheus text exposition
// format. With no registry attached the endpoint serves an empty
// (still valid) exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// handleHealthz is liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 200 while accepting work, 503 once the
// graceful drain began (healthz stays 200 throughout — the process is
// alive, it just should not receive new traffic).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// obsState is the observability-related server state, embedded in Server.
type obsState struct {
	reg      *obs.Registry
	flight   *obs.FlightRecorder
	access   io.Writer
	accessMu sync.Mutex
	draining atomic.Bool
	inflight atomic.Int64
	sse      atomic.Int64
	bootID   string
	reqSeq   atomic.Uint64
}
