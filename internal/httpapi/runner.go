package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/elastisim"
	"repro/internal/jobqueue"
)

// stepChunk bounds how many events one Step slice executes. The session
// mutex is held for the duration of a slice, so the chunk size is the
// latency bound on Peek, pause, and cancel: small enough that control
// interleaves promptly, large enough that the mutex round-trip is noise.
const stepChunk = 4096

// liveRun is the in-memory side of an executing job: the session (for
// Peek), the progress fan-out (for SSE subscribers), and the control
// channel the HTTP handlers use to reach the worker between Step slices.
type liveRun struct {
	session *elastisim.Session
	fan     *elastisim.ProgressFanOut
	ctrl    chan ctrlMsg
}

type ctrlOp string

const (
	opPause  ctrlOp = "pause"
	opResume ctrlOp = "resume"
	opStep   ctrlOp = "step"
)

type ctrlMsg struct {
	op    ctrlOp
	n     int        // opStep: number of events
	reply chan error // closed/sent once the worker applied the op
}

// RunJob is the jobqueue.Runner that executes one simulation job: it
// parses the journaled config, drives a Session in bounded Step slices —
// so Peek, SSE progress, and pause/resume/cancel control interleave
// between slices — and writes the result artifacts under the server's
// data directory. The artifact directory path becomes the job's Result.
func (s *Server) RunJob(ctx context.Context, q *jobqueue.Queue, job jobqueue.Job) (string, error) {
	cfg, err := elastisim.ParseConfig(job.Config)
	if err != nil {
		return "", fmt.Errorf("invalid config: %w", err)
	}
	fan := &elastisim.ProgressFanOut{}
	cfg.Options.Progress = fan
	cfg.Metrics = s.reg
	cfg.Flight = s.flight
	session, err := elastisim.NewSession(cfg)
	if err != nil {
		return "", err
	}
	lr := &liveRun{session: session, fan: fan, ctrl: make(chan ctrlMsg, 16)}
	s.register(job.ID, lr)
	defer s.deregister(job.ID)
	defer fan.Done() // idempotent; covers error paths before the engine's own Done

	if err := q.MarkRunning(job.ID, job.Worker); err != nil {
		return "", err
	}

	paused := false
	for {
		// Apply queued control requests first so a pause or cancel never
		// waits behind another full chunk.
		for applied := true; applied; {
			select {
			case msg := <-lr.ctrl:
				s.applyCtrl(q, job, msg, &paused)
			default:
				applied = false
			}
		}
		if s.cancelRequested(job.ID) {
			dir, werr := s.writeArtifacts(job.ID, session, cfg)
			if werr != nil {
				dir = ""
			}
			if err := q.FinishCancelled(job.ID, job.Worker, dir); err != nil {
				return "", err
			}
			return "", jobqueue.ErrFinished
		}
		if ctx.Err() != nil {
			// Shutdown: journal how far we got and requeue. Partial
			// artifacts are flushed too, so operators can inspect the
			// interrupted run; a restart re-runs the job from scratch.
			p := session.Peek()
			_, _ = s.writeArtifacts(job.ID, session, cfg)
			return "", fmt.Errorf("interrupted at sim t=%.3fs after %d events (%d/%d jobs): %w",
				p.Now, p.Events, p.Completed, p.Total, jobqueue.ErrInterrupted)
		}
		if paused {
			// Parked: keep the lease alive and wait for control.
			select {
			case msg := <-lr.ctrl:
				s.applyCtrl(q, job, msg, &paused)
			case <-ctx.Done():
			case <-time.After(s.pausePoll):
				_ = q.Heartbeat(job.ID, job.Worker)
			}
			continue
		}
		fired, err := session.Step(s.chunk)
		if err != nil {
			s.dumpPostmortem(job.ID, err)
			return "", err
		}
		_ = q.Heartbeat(job.ID, job.Worker)
		if fired == 0 {
			break // drained (or horizon): the simulation cannot advance
		}
		if s.chunkDelay > 0 {
			time.Sleep(s.chunkDelay)
		}
	}

	if _, err := session.Result(); err != nil {
		s.dumpPostmortem(job.ID, err)
		return "", err
	}
	return s.writeArtifacts(job.ID, session, cfg)
}

// dumpPostmortem writes the flight recorder's postmortem artifact next to
// the job's other artifacts when a run died of an engine invariant panic
// (*elastisim.InternalError). Failures to write are swallowed: the
// postmortem is best-effort evidence, the job error is authoritative.
func (s *Server) dumpPostmortem(id string, runErr error) {
	var ie *elastisim.InternalError
	if s.flight == nil || !errors.As(runErr, &ie) {
		return
	}
	dir := filepath.Join(s.dataDir, "jobs", id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	f, err := os.Create(filepath.Join(dir, "postmortem.json"))
	if err != nil {
		return
	}
	defer f.Close()
	_ = s.flight.WritePostmortem(f, "panic", fmt.Sprintf("job %s: %v", id, ie), s.reg)
}

// applyCtrl executes one control request on behalf of the worker.
func (s *Server) applyCtrl(q *jobqueue.Queue, job jobqueue.Job, msg ctrlMsg, paused *bool) {
	var err error
	switch msg.op {
	case opPause:
		if !*paused {
			err = q.MarkPaused(job.ID, job.Worker)
			*paused = err == nil
		}
	case opResume:
		if *paused {
			err = q.MarkRunning(job.ID, job.Worker)
			if err == nil {
				*paused = false
			}
		}
	case opStep:
		if !*paused {
			err = fmt.Errorf("job %s is not paused", job.ID)
			break
		}
		n := msg.n
		if n <= 0 {
			n = 1
		}
		_, err = s.liveSession(job.ID).Step(n)
		_ = q.Heartbeat(job.ID, job.Worker)
	default:
		err = fmt.Errorf("unknown control op %q", msg.op)
	}
	if msg.reply != nil {
		msg.reply <- err
	}
}

// liveSession returns the registered session for id (nil if gone).
func (s *Server) liveSession(id string) *elastisim.Session {
	if lr := s.liveRun(id); lr != nil {
		return lr.session
	}
	return nil
}

// writeArtifacts flushes the session's current result to
// dataDir/jobs/<id>/: result.json always, gantt.svg always, and
// trace.json when the config enabled event tracing. It returns the
// artifact directory. Called both at completion and — with a partial
// result — on cancel and shutdown.
func (s *Server) writeArtifacts(id string, session *elastisim.Session, cfg elastisim.Config) (string, error) {
	res, err := session.Result()
	if err != nil {
		return "", err
	}
	dir := filepath.Join(s.dataDir, "jobs", id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	if err := writeFile(filepath.Join(dir, "result.json"), res.WriteJSON); err != nil {
		return "", err
	}
	if err := writeFile(filepath.Join(dir, "gantt.svg"), func(w io.Writer) error {
		return res.WriteGanttSVG(w, "job "+id)
	}); err != nil {
		return "", err
	}
	if cfg.Options.Trace && len(res.Trace) > 0 {
		if err := writeFile(filepath.Join(dir, "trace.json"), func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(res.Trace)
		}); err != nil {
			return "", err
		}
	}
	return dir, nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
