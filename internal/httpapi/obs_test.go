package httpapi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/jobqueue"
	"repro/internal/obs"
)

// TestMetricsEndpoint runs a job to completion and checks that /metrics
// serves a valid Prometheus exposition carrying all three instrumented
// layers: the job queue, the HTTP API, and the simulation kernel.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, "", 1)
	id := submit(t, ts, fastConfigDoc)
	waitState(t, ts, id, jobqueue.StateDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := obs.ValidateExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	text := string(body)
	for _, family := range []string{
		// jobqueue layer
		"elastisimd_jobs", "elastisimd_jobs_submitted_total", "elastisimd_journal_fsync_seconds",
		"elastisimd_workers", "elastisimd_workers_busy",
		// http layer
		"elastisimd_http_requests_total", "elastisimd_http_request_seconds",
		"elastisimd_sse_subscribers", "elastisimd_active_runs",
		// simulation layer
		"elastisim_sessions_started_total", "elastisim_sim_events_total",
	} {
		if !stats.HasFamily(family) {
			t.Errorf("exposition missing family %q (families: %v)", family, stats.SortedFamilies())
		}
	}
	if !strings.Contains(text, `elastisimd_jobs_finished_total{state="done"} 1`) {
		t.Errorf("finished counter missing:\n%s", text)
	}
	if !strings.Contains(text, `elastisimd_http_requests_total{route="POST /v1/sessions",code="202"} 1`) {
		t.Errorf("per-route request counter missing:\n%s", text)
	}
}

// TestHealthProbes pins the probe contract: healthz is liveness and
// always 200; readyz flips to 503 the moment the drain begins.
func TestHealthProbes(t *testing.T) {
	s, ts := testServer(t, "", 1)

	if code, body := fetch(t, ts, "/healthz"); code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := fetch(t, ts, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", code)
	}
	s.SetDraining()
	if code, body := fetch(t, ts, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("/readyz during drain = %d %q, want 503 draining", code, body)
	}
	// Liveness is unaffected: the process is healthy, just not accepting.
	if code, _ := fetch(t, ts, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", code)
	}
}

// TestRequestIDEcho pins that every response carries X-Request-ID: a
// generated one by default, the caller's verbatim when provided, and on
// the SSE stream the header arrives before the first event.
func TestRequestIDEcho(t *testing.T) {
	_, ts := testServer(t, "", 1)
	id := submit(t, ts, fastConfigDoc)

	resp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("list response has no X-Request-ID")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/sessions/"+id, nil)
	req.Header.Set("X-Request-ID", "caller-chosen-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-chosen-7" {
		t.Errorf("caller request id not echoed: got %q", got)
	}

	// SSE: the header must be set before streaming begins.
	sseResp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	if sseResp.Header.Get("X-Request-ID") == "" {
		t.Error("SSE response has no X-Request-ID")
	}
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE content type through middleware = %q", ct)
	}
	// The stream still works through the instrumented writer: the fast job
	// settles, so a "done" event must arrive.
	sc := bufio.NewScanner(sseResp.Body)
	deadline := time.AfterFunc(30*time.Second, func() { sseResp.Body.Close() })
	defer deadline.Stop()
	seenDone := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: done") {
			seenDone = true
			break
		}
	}
	if !seenDone {
		t.Fatal("no done event through instrumented SSE stream")
	}
}

// TestAccessLog pins the structured access log: one JSON line per
// request with route, status, latency, and the same request id the
// client saw.
func TestAccessLog(t *testing.T) {
	var mu syncBuffer
	s, ts := testServer(t, "", 1)
	s.SetAccessLog(&mu)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/sessions", nil)
	req.Header.Set("X-Request-ID", "log-probe-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if code, _ := fetch(t, ts, "/v1/sessions/j999999"); code != http.StatusNotFound {
		t.Fatalf("probe fetch = %d", code)
	}

	lines := strings.Split(strings.TrimSpace(mu.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), mu.String())
	}
	var rec struct {
		ID     string  `json:"id"`
		Route  string  `json:"route"`
		Status int     `json:"status"`
		Millis float64 `json:"ms"`
		Path   string  `json:"path"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("access line not JSON: %v: %s", err, lines[0])
	}
	if rec.ID != "log-probe-1" || rec.Route != "GET /v1/sessions" || rec.Status != 200 {
		t.Errorf("first access line = %+v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Status != 404 || rec.Route != "GET /v1/sessions/{id}" || rec.Path != "/v1/sessions/j999999" {
		t.Errorf("second access line = %+v", rec)
	}
}

// syncBuffer is an access-log sink safe to read after the requests
// completed (the server serializes writes; the test reads only after).
type syncBuffer struct{ bytes.Buffer }

// TestStalledSSESubscriber pins the isolation contract for slow
// consumers: a subscriber that opens the progress stream and never reads
// a byte must not stall the worker executing the job, other subscribers,
// or job settlement. Run under -race in the service e2e CI step.
func TestStalledSSESubscriber(t *testing.T) {
	_, ts := testServer(t, "", 1)
	id := submit(t, ts, slowConfigDoc)
	waitState(t, ts, id, jobqueue.StateRunning)

	// The stalled client: a raw TCP connection that sends the request and
	// then never reads, so the server-side writes back up once the kernel
	// socket buffer fills.
	addr := strings.TrimPrefix(ts.URL, "http://")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /v1/sessions/%s/events HTTP/1.1\r\nHost: %s\r\nAccept: text/event-stream\r\n\r\n", id, addr)

	// A healthy subscriber on the same run must keep receiving progress
	// and observe settlement.
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "event: ") {
				events <- strings.TrimPrefix(line, "event: ")
			}
		}
		close(events)
	}()
	sawProgress, sawDone := false, false
	deadline := time.After(60 * time.Second)
	for !sawDone {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("healthy subscriber's stream closed before done")
			}
			switch ev {
			case "progress":
				sawProgress = true
			case "done":
				sawDone = true
			}
		case <-deadline:
			t.Fatal("healthy subscriber starved while another subscriber stalled")
		}
	}
	if !sawProgress {
		t.Error("healthy subscriber saw no progress events")
	}
	// The worker was never blocked on the stalled client: the job settled.
	if v := getView(t, ts, id); v.State != jobqueue.StateDone {
		t.Errorf("job state = %s, want done", v.State)
	}
}
