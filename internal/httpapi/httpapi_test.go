package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"

	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/elastisim"
	"repro/internal/jobqueue"
	"repro/internal/obs"
)

// fastConfigDoc finishes in milliseconds — used wherever the test only
// needs a completed job.
const fastConfigDoc = `{
  "platform": {"name": "tiny", "nodes": [{"count": 8, "speed": "100G"}],
    "network": {"topology": "star", "link_bandwidth": "10G", "latency": 1e-6},
    "pfs": {"read_bandwidth": "40G", "write_bandwidth": "40G"}},
  "workload": {"name": "fast", "jobs": [
    {"name": "a", "type": "rigid", "submit_time": 0, "num_nodes": 2, "walltime": 10000,
     "phases": [{"tasks": [{"type": "compute", "flops": "1T / num_nodes"}]}]},
    {"name": "b", "type": "malleable", "submit_time": 5, "num_nodes_min": 1, "num_nodes_max": 4,
     "walltime": 10000,
     "phases": [{"name": "iter", "iterations": 20, "scheduling_point": true,
       "tasks": [{"type": "compute", "flops": "50G / num_nodes"},
                 {"type": "comm", "pattern": "allreduce", "bytes": "1M"}]}]},
    {"name": "c", "type": "moldable", "submit_time": 10, "num_nodes_min": 1, "num_nodes_max": 2,
     "phases": [{"tasks": [{"type": "compute", "flops": "200G / num_nodes"}]}]}
  ]},
  "algorithm": "adaptive"
}`

// slowConfigDoc produces enough events (tens of thousands) that control
// requests reliably land mid-run when the server steps in small chunks.
const slowConfigDoc = `{
  "platform": {"name": "tiny", "nodes": [{"count": 8, "speed": "100G"}],
    "network": {"topology": "star", "link_bandwidth": "10G", "latency": 1e-6},
    "pfs": {"read_bandwidth": "40G", "write_bandwidth": "40G"}},
  "workload": {"name": "slow", "jobs": [
    {"name": "grind0", "type": "rigid", "submit_time": 0, "num_nodes": 2, "walltime": 1e9,
     "phases": [{"name": "iter", "iterations": 4000,
       "tasks": [{"type": "compute", "flops": "10G / num_nodes"},
                 {"type": "comm", "pattern": "allreduce", "bytes": "1M"}]}]},
    {"name": "grind1", "type": "rigid", "submit_time": 0, "num_nodes": 2, "walltime": 1e9,
     "phases": [{"name": "iter", "iterations": 4000,
       "tasks": [{"type": "compute", "flops": "10G / num_nodes"},
                 {"type": "comm", "pattern": "allreduce", "bytes": "1M"}]}]}
  ]},
  "algorithm": "fcfs"
}`

// testServer wires a queue, a Server, a worker pool, and an httptest
// frontend, torn down in reverse order on cleanup.
func testServer(t *testing.T, journal string, workers int) (*Server, *httptest.Server) {
	t.Helper()
	// Observability is attached in every test: the instrumented paths run
	// under the full e2e suite (including -race), and the lifecycle test's
	// byte-identical result check doubles as the service-level pin that
	// metrics collection does not perturb simulations.
	qopts := jobqueue.Options{Metrics: obs.NewRegistry(), Flight: obs.NewFlightRecorder(256)}
	var q *jobqueue.Queue
	var err error
	if journal != "" {
		q, err = jobqueue.Open(journal, qopts)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		q = jobqueue.New(qopts)
	}
	s := New(q, t.TempDir())
	s.chunk = 256
	s.pausePoll = 10 * time.Millisecond
	s.chunkDelay = 3 * time.Millisecond
	s.Observe(qopts.Metrics, qopts.Flight)
	pool := jobqueue.NewPool(q, workers, s.RunJob)
	ctx, cancel := context.WithCancel(context.Background())
	pool.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		pool.Wait()
		q.Close()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, doc string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("submit response %s: %v", body, err)
	}
	if v.ID == "" {
		t.Fatalf("submit response has no id: %s", body)
	}
	return v.ID
}

func getView(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: status %d: %s", id, resp.StatusCode, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitState(t *testing.T, ts *httptest.Server, id string, want ...jobqueue.State) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var v jobView
	for time.Now().Before(deadline) {
		v = getView(t, ts, id)
		for _, s := range want {
			if v.State == s {
				return v
			}
		}
		if v.State.Terminal() {
			t.Fatalf("job %s settled as %s (error %q), want %v", id, v.State, v.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %v", id, v.State, want)
	return v
}

func post(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func fetch(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// directResult runs the config in-process and returns the canonical
// result document — the reference the HTTP artifact must match.
func directResult(t *testing.T, doc string) []byte {
	t.Helper()
	cfg, err := elastisim.ParseConfig([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := elastisim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLifecycleE2E drives the full service lifecycle over HTTP: submit →
// SSE progress → pause (with live Peek) → step → resume → completion →
// result artifact byte-identical to an in-process run of the same config.
func TestLifecycleE2E(t *testing.T) {
	_, ts := testServer(t, "", 1)
	id := submit(t, ts, slowConfigDoc)

	// Open the SSE stream and wait for the first progress event, which
	// proves the simulation is genuinely mid-run.
	sseCtx, sseCancel := context.WithCancel(context.Background())
	defer sseCancel()
	req, _ := http.NewRequestWithContext(sseCtx, "GET", ts.URL+"/v1/sessions/"+id+"/events", nil)
	sseResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	events := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(sseResp.Body)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "event: ") {
				events <- strings.TrimPrefix(line, "event: ")
			}
		}
		close(events)
	}()
	waitEvent := func(want string) {
		t.Helper()
		deadline := time.After(30 * time.Second)
		for {
			select {
			case ev, ok := <-events:
				if !ok {
					t.Fatalf("SSE stream closed before %q event", want)
				}
				if ev == want {
					return
				}
			case <-deadline:
				t.Fatalf("no %q SSE event", want)
			}
		}
	}
	waitEvent("progress")

	// Pause between step chunks; the acknowledged view reports paused
	// with a live Peek.
	code, body := post(t, ts, "/v1/sessions/"+id+"/pause")
	if code != http.StatusOK {
		t.Fatalf("pause: status %d: %s", code, body)
	}
	var paused jobView
	if err := json.Unmarshal(body, &paused); err != nil {
		t.Fatal(err)
	}
	if paused.State != jobqueue.StatePaused || paused.Peek == nil {
		t.Fatalf("pause ack = %+v, want paused with peek", paused)
	}
	if paused.Peek.Done {
		t.Fatal("paused mid-run but Peek.Done is true")
	}

	// A paused simulation does not advance.
	ev0 := paused.Peek.Events
	time.Sleep(50 * time.Millisecond)
	if v := getView(t, ts, id); v.Peek == nil || v.Peek.Events != ev0 {
		t.Fatalf("paused session advanced: %+v", v.Peek)
	}

	// Step executes exactly bounded work while paused.
	code, body = post(t, ts, "/v1/sessions/"+id+"/step?n=100")
	if code != http.StatusOK {
		t.Fatalf("step: status %d: %s", code, body)
	}
	var stepped jobView
	if err := json.Unmarshal(body, &stepped); err != nil {
		t.Fatal(err)
	}
	if stepped.Peek == nil || stepped.Peek.Events != ev0+100 {
		t.Fatalf("after step(100): peek = %+v, want events %d", stepped.Peek, ev0+100)
	}
	// Stepping a running (non-paused) session is rejected later; pausing
	// twice is idempotent.
	code, _ = post(t, ts, "/v1/sessions/"+id+"/pause")
	if code != http.StatusOK {
		t.Fatalf("second pause: status %d", code)
	}

	code, body = post(t, ts, "/v1/sessions/"+id+"/resume")
	if code != http.StatusOK {
		t.Fatalf("resume: status %d: %s", code, body)
	}
	code, body = post(t, ts, "/v1/sessions/"+id+"/step")
	if code != http.StatusConflict {
		t.Fatalf("step while running: status %d: %s", code, body)
	}

	waitEvent("done")
	v := waitState(t, ts, id, jobqueue.StateDone)
	if v.Error != "" {
		t.Fatalf("done job carries error %q", v.Error)
	}

	// The HTTP result is byte-identical to the in-process run: pausing,
	// stepping, and chunked execution are invisible to the simulation.
	code, got := fetch(t, ts, "/v1/sessions/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: status %d: %s", code, got)
	}
	if want := directResult(t, slowConfigDoc); !bytes.Equal(got, want) {
		t.Errorf("HTTP result differs from direct run:\nhttp:\n%s\ndirect:\n%s", got, want)
	}

	code, svg := fetch(t, ts, "/v1/sessions/"+id+"/gantt.svg")
	if code != http.StatusOK || !bytes.Contains(svg, []byte("<svg")) {
		t.Fatalf("gantt: status %d, body %.80s", code, svg)
	}
}

// TestConcurrentSubmissions floods the service from 8 concurrent clients
// and requires every job to complete with a result byte-identical to the
// in-process reference — the malleable-workload equivalent of a load test,
// run under -race in CI.
func TestConcurrentSubmissions(t *testing.T) {
	_, ts := testServer(t, "", 4)
	want := directResult(t, fastConfigDoc)

	const clients = 8
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(fastConfigDoc))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("client %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var v jobView
			if err := json.Unmarshal(body, &v); err != nil {
				t.Error(err)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	seen := make(map[string]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate job id %s", id)
		}
		seen[id] = true
		waitState(t, ts, id, jobqueue.StateDone)
		code, got := fetch(t, ts, "/v1/sessions/"+id+"/result")
		if code != http.StatusOK {
			t.Fatalf("result %s: status %d", id, code)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("job %s result differs from reference", id)
		}
	}
}

// TestCancelMidRun cancels an executing job: the worker settles it as
// cancelled between step chunks and flushes partial artifacts.
func TestCancelMidRun(t *testing.T) {
	_, ts := testServer(t, "", 1)
	id := submit(t, ts, slowConfigDoc)
	waitState(t, ts, id, jobqueue.StateRunning)

	code, body := post(t, ts, "/v1/sessions/"+id+"/cancel")
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("cancel: status %d: %s", code, body)
	}
	v := waitState(t, ts, id, jobqueue.StateCancelled)
	if v.Error != "" {
		t.Fatalf("cancelled job carries error %q", v.Error)
	}
	// Partial artifacts exist and parse.
	code, got := fetch(t, ts, "/v1/sessions/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("partial result: status %d: %s", code, got)
	}
	if _, _, err := elastisim.UnmarshalResultSummary(got); err != nil {
		t.Fatalf("partial result does not parse: %v", err)
	}
}

// TestCancelPending cancels a job that never started (single worker busy
// with a slow job): it settles immediately without artifacts.
func TestCancelPending(t *testing.T) {
	_, ts := testServer(t, "", 1)
	blocker := submit(t, ts, slowConfigDoc)
	waitState(t, ts, blocker, jobqueue.StateRunning)
	victim := submit(t, ts, fastConfigDoc)

	code, body := post(t, ts, "/v1/sessions/"+victim+"/cancel")
	if code != http.StatusOK {
		t.Fatalf("cancel pending: status %d: %s", code, body)
	}
	if v := getView(t, ts, victim); v.State != jobqueue.StateCancelled {
		t.Fatalf("victim state = %s, want cancelled", v.State)
	}
	if code, _ := fetch(t, ts, "/v1/sessions/"+victim+"/result"); code != http.StatusConflict {
		t.Fatalf("result of never-run job: status %d, want 409", code)
	}
	// The blocker is unaffected.
	post(t, ts, "/v1/sessions/"+blocker+"/cancel")
}

// TestSubmitValidation pins that malformed configs are rejected at the
// door with 400, never becoming failed jobs.
func TestSubmitValidation(t *testing.T) {
	_, ts := testServer(t, "", 1)
	for _, doc := range []string{
		`not json`,
		`{"platform": {}}`,
		`{"platfrom": {}, "workload": {}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("doc %.30q: status %d (%s), want 400", doc, resp.StatusCode, body)
		}
	}
	if code, _ := fetch(t, ts, "/v1/sessions/j999999"); code != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", code)
	}
	// Nothing was enqueued.
	code, body := fetch(t, ts, "/v1/sessions")
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	var views []jobView
	if err := json.Unmarshal(body, &views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 0 {
		t.Errorf("queue has %d jobs after rejected submissions", len(views))
	}
}

// TestRestartRecovery kills the daemon mid-run and restarts it on the
// same journal: the completed job survives untouched (same artifacts, not
// re-executed) and the interrupted job is re-run to completion.
func TestRestartRecovery(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	dataDir := t.TempDir()

	q1, err := jobqueue.Open(journal, jobqueue.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(q1, dataDir)
	s1.chunk = 256
	s1.chunkDelay = 3 * time.Millisecond
	pool1 := jobqueue.NewPool(q1, 1, s1.RunJob)
	ctx1, cancel1 := context.WithCancel(context.Background())
	pool1.Start(ctx1)
	ts1 := httptest.NewServer(s1.Handler())

	done := submit(t, ts1, fastConfigDoc)
	waitState(t, ts1, done, jobqueue.StateDone)
	doneBefore := getView(t, ts1, done)
	_, resultBefore := fetch(t, ts1, "/v1/sessions/"+done+"/result")

	interrupted := submit(t, ts1, slowConfigDoc)
	waitState(t, ts1, interrupted, jobqueue.StateRunning)

	// Kill: cancel the pool (workers release their jobs) and close the
	// queue, as the daemon's SIGINT path does.
	ts1.Close()
	cancel1()
	pool1.Wait()
	q1.Close()

	// Restart on the same journal and data directory.
	q2, err := jobqueue.Open(journal, jobqueue.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(q2, dataDir)
	s2.chunk = 256
	s2.chunkDelay = 3 * time.Millisecond
	pool2 := jobqueue.NewPool(q2, 1, s2.RunJob)
	ctx2, cancel2 := context.WithCancel(context.Background())
	pool2.Start(ctx2)
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		cancel2()
		pool2.Wait()
		q2.Close()
	})

	// The completed job was not re-run: same attempt count, same start
	// time, same artifact bytes.
	doneAfter := getView(t, ts2, done)
	if doneAfter.State != jobqueue.StateDone {
		t.Fatalf("done job recovered as %s", doneAfter.State)
	}
	if doneAfter.Attempts != doneBefore.Attempts {
		t.Errorf("done job re-attempted: %d → %d", doneBefore.Attempts, doneAfter.Attempts)
	}
	if doneBefore.Started != nil && doneAfter.Started != nil && !doneAfter.Started.Equal(*doneBefore.Started) {
		t.Errorf("done job re-started: %v → %v", doneBefore.Started, doneAfter.Started)
	}
	code, resultAfter := fetch(t, ts2, "/v1/sessions/"+done+"/result")
	if code != http.StatusOK || !bytes.Equal(resultAfter, resultBefore) {
		t.Errorf("done job artifacts changed across restart (status %d)", code)
	}

	// The interrupted job was requeued and completes on the new daemon.
	v := waitState(t, ts2, interrupted, jobqueue.StateDone)
	if v.Attempts < 2 {
		t.Errorf("interrupted job attempts = %d, want >= 2 (re-run after recovery)", v.Attempts)
	}
	code, got := fetch(t, ts2, "/v1/sessions/"+interrupted+"/result")
	if code != http.StatusOK {
		t.Fatalf("recovered result: status %d", code)
	}
	if want := directResult(t, slowConfigDoc); !bytes.Equal(got, want) {
		t.Errorf("recovered job result differs from direct run")
	}
}

// TestListAndPeek exercises the listing endpoint while a job runs.
func TestListAndPeek(t *testing.T) {
	_, ts := testServer(t, "", 1)
	id := submit(t, ts, slowConfigDoc)
	waitState(t, ts, id, jobqueue.StateRunning)

	code, body := fetch(t, ts, "/v1/sessions")
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	var views []jobView
	if err := json.Unmarshal(body, &views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0].ID != id {
		t.Fatalf("list = %+v", views)
	}
	if views[0].State == jobqueue.StateRunning && views[0].Peek == nil {
		t.Error("running job listed without a live peek")
	}
	post(t, ts, "/v1/sessions/"+id+"/cancel")
	waitState(t, ts, id, jobqueue.StateCancelled)
}
